#!/bin/sh
# Runs the headline simulation benchmarks and writes BENCH_PR2.json
# (ns/op, B/op, allocs/op per benchmark, plus deltas against the
# recorded pre-pooling baseline). Pass -quick to skip the long
# TablesSweep runs; any arguments are forwarded to qabench.
set -eu
cd "$(dirname "$0")/.."
exec go run ./cmd/qabench -out BENCH_PR2.json "$@"
