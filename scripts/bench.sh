#!/bin/sh
# Runs the headline simulation benchmarks and writes BENCH_PR8.json
# (ns/op, B/op, allocs/op per benchmark, plus deltas against the
# recorded baselines; the Fleet/1000 entry carries events/sec and
# packets/sec with the map-scoreboard run as its baseline, and the
# Fleet/10000 entries measure the same 10000-flow workload at shard
# counts 1, 2, and 4 with the shards4 run paired against the serial run
# so the parallel speedup — or, on a single-core host, the barrier
# overhead — reads as a delta). Also archives BENCH_REPORT.json, an
# instrumented reference-run report (the Figure 11 scenario's full
# metrics snapshot: engine, queue-delay quantiles, transports, QA), so
# behavioural drift diffs alongside the perf numbers. Pass -quick to
# skip the long TablesSweep, 1000-flow, and 10000-flow Fleet runs; any
# arguments are forwarded to qabench (the qaload leg takes no extra
# arguments).
#
# After the simulation benchmarks, runs the serving-path soak: qaload
# drives 1000 concurrent loopback clients against an in-process
# MultiServer in its default configuration (reuseport sockets where
# available, timing-wheel pacer, mmsg batch) and archives
# BENCH_SERVE.json — goodput, Jain fairness, allocs/packet, and heap
# stability, asserted by -soak (which also requires zero inbox sheds in
# reuseport mode). -ab records the generic-I/O, scan-pacer, and
# demux-socket legs alongside for the A/B pairs.
set -eu
cd "$(dirname "$0")/.."
go run ./cmd/qabench -out BENCH_PR8.json -report BENCH_REPORT.json "$@"
go run ./cmd/qaload -clients 1000 -dur 10s -ab -soak -out BENCH_SERVE.json
