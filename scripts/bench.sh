#!/bin/sh
# Runs the headline simulation benchmarks and writes BENCH_PR4.json
# (ns/op, B/op, allocs/op per benchmark, plus deltas against the
# recorded pre-pooling baseline). Also archives BENCH_REPORT.json, an
# instrumented reference-run report (the Figure 11 scenario's full
# metrics snapshot: engine, queue-delay quantiles, transports, QA), so
# behavioural drift diffs alongside the perf numbers. Pass -quick to
# skip the long TablesSweep runs; any arguments are forwarded to
# qabench.
set -eu
cd "$(dirname "$0")/.."
exec go run ./cmd/qabench -out BENCH_PR4.json -report BENCH_REPORT.json "$@"
