#!/bin/sh
# Runs the headline simulation benchmarks and writes BENCH_PR5.json
# (ns/op, B/op, allocs/op per benchmark, plus deltas against the
# recorded pre-pooling baseline; the Fleet/1000 entry carries events/sec
# and packets/sec with the map-scoreboard run as its baseline). Also
# archives BENCH_REPORT.json, an instrumented reference-run report (the
# Figure 11 scenario's full metrics snapshot: engine, queue-delay
# quantiles, transports, QA), so behavioural drift diffs alongside the
# perf numbers. Pass -quick to skip the long TablesSweep and 1000-flow
# Fleet runs; any arguments are forwarded to qabench.
set -eu
cd "$(dirname "$0")/.."
exec go run ./cmd/qabench -out BENCH_PR5.json -report BENCH_REPORT.json "$@"
