// Package qav reproduces "Quality Adaptation for Congestion Controlled
// Video Playback over the Internet" (Rejaie, Handley, Estrin — SIGCOMM
// 1999): layered video streamed over a TCP-friendly, rate-based AIMD
// transport (RAP), with receiver buffering distributed across layers
// along the paper's maximally efficient path so that short-term
// congestion backoffs are absorbed without visible quality changes.
//
// This root package is the public facade. The pieces live in internal
// packages and are re-exported here:
//
//   - the quality adaptation engine (buffer-requirement formulas, state
//     ladder, filling and draining allocators, add/drop rules),
//   - the RAP congestion control state machine,
//   - a discrete-event network simulator with Sack-TCP and CBR cross
//     traffic (the evaluation substrate),
//   - a real-UDP transport plus network emulator,
//   - scenario builders and figure/table generators for every experiment
//     in the paper's evaluation section.
//
// Quick start:
//
//	res, err := qav.Simulate(qav.SingleQA(2))
//	fmt.Println(res.Stats.Adds, res.Stats.Drops, res.StallSec)
package qav

import (
	"context"
	"net"
	"time"

	"qav/internal/core"
	"qav/internal/metrics"
	"qav/internal/netio"
	"qav/internal/rap"
	"qav/internal/scenario"
	"qav/internal/trace"
	"qav/internal/video"
)

// Re-exported core types: the quality adaptation engine.
type (
	// Params configures a quality adaptation controller (per-layer rate
	// C, smoothing factor Kmax, maximum layers, startup buffering).
	Params = core.Params
	// Controller is the server-side quality adaptation engine.
	Controller = core.Controller
	// Event is one controller decision (add, drop, backoff, stall...).
	Event = core.Event
	// EventKind classifies controller events.
	EventKind = core.EventKind
	// Scenario identifies the two extreme multi-backoff loss patterns.
	Scenario = core.Scenario
)

// Controller event kinds.
const (
	EvPlayStart  = core.EvPlayStart
	EvAddLayer   = core.EvAddLayer
	EvDropLayer  = core.EvDropLayer
	EvBackoff    = core.EvBackoff
	EvStallStart = core.EvStallStart
	EvStallEnd   = core.EvStallEnd
)

// NewController returns a quality adaptation controller for integration
// with a custom transport: feed it Tick/PickLayer/OnDelivered/OnBackoff.
func NewController(p Params) (*Controller, error) { return core.NewController(p) }

// Simulation types.
type (
	// SimConfig describes one simulated evaluation run.
	SimConfig = scenario.Config
	// SimResult carries traces, events, and statistics from a run.
	SimResult = scenario.Result
	// DropStats summarizes drop events (Tables 1 and 2 metrics).
	DropStats = trace.DropStats
	// Series is a named time series collected during a run.
	Series = trace.Series
)

// Metrics types: the instrumentation layer shared by the simulator, the
// transports, and the UDP endpoints.
type (
	// MetricsRegistry owns named counters, gauges, and histograms.
	// Attach one to SimConfig.Metrics to instrument a run; sharing one
	// registry across runs aggregates their counts.
	MetricsRegistry = metrics.Registry
	// MetricsSnapshot is a point-in-time copy of a registry, ready for
	// JSON encoding.
	MetricsSnapshot = metrics.Snapshot
	// RunReport is the structured JSON summary of one simulated run
	// (effective config, quality numbers, metrics snapshot).
	RunReport = scenario.RunReport
)

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return metrics.NewRegistry() }

// Simulate runs one simulated scenario to completion.
func Simulate(cfg SimConfig) (*SimResult, error) { return scenario.Run(cfg) }

// SimulateAll runs independent scenarios concurrently on a bounded
// worker pool (workers <= 0 means one per CPU). Results come back in
// input order and are identical to sequential Simulate calls: each run
// owns its engine and seeded RNGs, so scheduling cannot change outcomes.
func SimulateAll(cfgs []SimConfig, workers int) ([]*SimResult, error) {
	return scenario.RunAll(cfgs, workers)
}

// PresetOption adjusts a named preset (see WithKmax, WithScale).
type PresetOption = scenario.PresetOption

// WithKmax sets a preset's smoothing factor (default 2).
func WithKmax(k int) PresetOption { return scenario.WithKmax(k) }

// WithScale multiplies a preset's bottleneck bandwidth and per-layer
// consumption rate (default 1; 8 reproduces the paper's figure axes).
func WithScale(s float64) PresetOption { return scenario.WithScale(s) }

// Preset builds a named evaluation setup ("T1", "T2", "SingleRAP",
// "SingleQA") with functional options:
//
//	cfg, err := qav.Preset("T1", qav.WithKmax(2), qav.WithScale(8))
func Preset(name string, opts ...PresetOption) (SimConfig, error) {
	return scenario.Preset(name, opts...)
}

// Presets returns the available preset names, sorted.
func Presets() []string { return scenario.Presets() }

// T1 returns the paper's first test: the QA flow sharing a bottleneck
// with 9 RAP and 10 Sack-TCP flows. scale=8 reproduces the paper's
// figure axes (C = 10 KB/s).
func T1(kmax int, scale float64) SimConfig {
	return scenario.MustPreset("T1", scenario.WithKmax(kmax), scenario.WithScale(scale))
}

// T2 returns T1 plus a CBR burst at half the bottleneck bandwidth
// between t=30s and t=60s (the responsiveness experiment).
func T2(kmax int, scale float64) SimConfig {
	return scenario.MustPreset("T2", scenario.WithKmax(kmax), scenario.WithScale(scale))
}

// SingleRAP returns the single-flow sawtooth demonstration (Fig 1).
func SingleRAP() SimConfig { return scenario.MustPreset("SingleRAP") }

// SingleQA returns a single quality-adaptive flow on a private
// bottleneck (Fig 2's filling/draining demonstration).
func SingleQA(kmax int) SimConfig {
	return scenario.MustPreset("SingleQA", scenario.WithKmax(kmax))
}

// Real-transport types: RAP + quality adaptation over UDP.
type (
	// ServerConfig parameterizes a UDP streaming server.
	ServerConfig = netio.ServerConfig
	// Server streams layered data over UDP with RAP congestion control.
	Server = netio.Server
	// Client requests and acknowledges a UDP stream.
	Client = netio.Client
	// ClientStats summarizes what a client received per layer.
	ClientStats = netio.ClientStats
	// PipeConfig describes one direction of an emulated network path.
	PipeConfig = netio.PipeConfig
	// Pipe is a UDP relay imposing bandwidth, delay, and loss.
	Pipe = netio.Pipe
	// RAPConfig parameterizes the RAP congestion control sender.
	RAPConfig = rap.Config
	// VideoConfig parameterizes the client-side playout model
	// (hierarchical decoding, startup buffering, stall accounting).
	VideoConfig = video.Config
	// PlaybackStats are the viewer-facing quality metrics the playout
	// model produces (decodable layer-seconds, stalls, per-layer gaps).
	PlaybackStats = video.Stats
)

// NewServer wraps a bound UDP socket in a streaming server.
func NewServer(conn *net.UDPConn, cfg ServerConfig) (*Server, error) {
	return netio.NewServer(conn, cfg)
}

// DialStream connects to a server (or pipe), streams for dur, and
// returns the per-layer receive statistics.
func DialStream(ctx context.Context, addr string, dur time.Duration) (ClientStats, error) {
	cl, err := netio.Dial(addr)
	if err != nil {
		return ClientStats{}, err
	}
	defer cl.Close()
	if err := cl.Stream(ctx, dur); err != nil {
		return cl.Stats(), err
	}
	return cl.Stats(), nil
}

// NewPipe starts a bidirectional UDP relay with impairments; clients
// dial its Addr() instead of the server's.
func NewPipe(listenAddr, serverAddr string, up, down PipeConfig, seed int64) (*Pipe, error) {
	return netio.NewPipe(listenAddr, serverAddr, up, down, seed)
}

// DialVideoStream is DialStream with the playout model attached: the
// returned stats include decodable-quality metrics, and base-layer loss
// holes are repaired via selective retransmission NACKs.
func DialVideoStream(ctx context.Context, addr string, dur time.Duration, cfg VideoConfig) (ClientStats, error) {
	cl, err := netio.DialVideo(addr, cfg)
	if err != nil {
		return ClientStats{}, err
	}
	defer cl.Close()
	if err := cl.Stream(ctx, dur); err != nil {
		return cl.Stats(), err
	}
	return cl.Stats(), nil
}
