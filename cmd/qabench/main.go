// Command qabench runs the headline simulation benchmarks in-process and
// writes a machine-readable JSON report (ns/op, B/op, allocs/op per
// benchmark), for tracking the per-packet hot path across changes.
//
// Usage:
//
//	qabench                      # run everything, print JSON to stdout
//	qabench -out BENCH_PR5.json  # write the report to a file
//	qabench -quick               # skip the ~2-minute TablesSweep runs
//	qabench -check BENCH_PR5.json   # fail on alloc/ns regressions vs a recorded report
//	qabench -report runs.json    # also write an instrumented reference-run report
//	qabench -sched heap          # A/B: run everything on the reference binary heap
//
// Each entry carries the recorded pre-change baseline (the allocating
// hot path before packet pooling and closure-free scheduling) alongside
// the measured numbers, plus the relative deltas, so a single run
// documents the regression or improvement without a second checkout.
//
// -check compares the freshly measured numbers against the "current"
// values recorded in an earlier qabench report and exits non-zero if any
// benchmark allocates more than recorded or runs more than 5% slower —
// the instrumentation budget CI enforces for the metrics layer.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"testing"

	"qav/internal/figures"
	"qav/internal/metrics"
	"qav/internal/scenario"
	"qav/internal/sim"
	"qav/internal/tcp"
	"qav/internal/transport"
)

// baseline is the pre-optimization measurement (allocating hot path:
// per-packet Packet and closure allocations, two events per link hop),
// recorded on the commit before the pooled path landed, same scenario
// parameters, one run each.
type measurement struct {
	NsPerOp     int64 `json:"ns_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
	// Extra carries the benchmark's custom metrics (b.ReportMetric), e.g.
	// the Fleet benchmarks' events/sec and packets/sec throughput.
	Extra map[string]float64 `json:"extra,omitempty"`
}

type entry struct {
	Name     string       `json:"name"`
	Iters    int          `json:"iterations"`
	Current  measurement  `json:"current"`
	Baseline *measurement `json:"baseline,omitempty"`
	// Deltas are (current-baseline)/baseline; negative = improvement.
	DeltaNsPct     *float64 `json:"delta_ns_pct,omitempty"`
	DeltaAllocsPct *float64 `json:"delta_allocs_pct,omitempty"`
}

type report struct {
	Note       string  `json:"note"`
	Benchmarks []entry `json:"benchmarks"`
}

var baselines = map[string]measurement{
	"Figure11":               {NsPerOp: 3018892681, BytesPerOp: 154514376, AllocsPerOp: 626620},
	"TablesSweep/sequential": {NsPerOp: 74715330671, BytesPerOp: 4044477640, AllocsPerOp: 15866667},
	"TablesSweep/parallel":   {NsPerOp: 77665172111, BytesPerOp: 4044472176, AllocsPerOp: 15866654},
	"Simulator":              {NsPerOp: 3090600, BytesPerOp: 1727343, AllocsPerOp: 25901},
}

func main() {
	out := flag.String("out", "", "write the JSON report to this file (default stdout)")
	quick := flag.Bool("quick", false, "skip the long TablesSweep benchmarks")
	check := flag.String("check", "", "compare against a recorded qabench report; exit 1 on alloc or >5% ns/op regressions")
	runReport := flag.String("report", "", "write an instrumented reference-run JSON report (Figure 11 scenario) to this file")
	sched := flag.String("sched", string(sim.SchedCalendar),
		"engine event scheduler for every benchmark: calendar or heap (A/B; results are bit-identical, only speed differs)")
	count := flag.Int("count", 1,
		"measure each benchmark this many times and report the run with the median ns/op (damps host noise in archived reports)")
	flag.Parse()

	switch kind := sim.SchedulerKind(*sched); kind {
	case sim.SchedCalendar, sim.SchedHeap:
		sim.DefaultScheduler = kind
	default:
		fmt.Fprintf(os.Stderr, "qabench: unknown -sched %q (want calendar or heap)\n", *sched)
		os.Exit(2)
	}

	// The Scheduler pair replays the event-queue churn of one recorded
	// Figure 11 run (every schedule/dequeue, in execution order) against
	// each bare pending-event structure, so the report carries the
	// structural cost of the heap vs the calendar queue on a real trace.
	var schedOps []sim.SchedOp
	loadSchedOps := func(b *testing.B) []sim.SchedOp {
		if schedOps == nil {
			rec := &sim.SchedRecorder{}
			cfg := scenario.MustPreset("T1", scenario.WithKmax(2), scenario.WithScale(figures.DefaultScale))
			cfg.Duration = 40
			cfg.SchedRec = rec
			if _, err := scenario.Run(cfg); err != nil {
				b.Fatal(err)
			}
			schedOps = rec.Ops
		}
		return schedOps
	}
	replaySched := func(kind sim.SchedulerKind) func(b *testing.B) {
		return func(b *testing.B) {
			ops := loadSchedOps(b)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if sim.ReplaySched(kind, ops) == 0 {
					b.Fatal("replay popped no events")
				}
			}
		}
	}

	// The Fleet family measures population-scale throughput (the Fleet
	// preset holds the per-flow fair share constant as the population
	// grows). 1000-map runs the identical 1000-flow workload on the
	// reference map scoreboards; the report pairs it as Fleet/1000's
	// baseline, so the windowed-bitmap speedup appears as a delta. The
	// 10000-flow entries run the identical workload at shard counts 1, 2,
	// and 4 (results are bit-identical — the differential suite holds the
	// sharded engine to the serial one), pairing shards4 against the
	// serial run so the parallel speedup reads as a delta; on a
	// single-core host the pair documents the barrier overhead instead.
	fleetBench := func(flows, shards int, dur float64, board tcp.ScoreboardKind, tr transport.Kind, fluid int) func(b *testing.B) {
		return func(b *testing.B) {
			cfg := scenario.MustPreset("Fleet",
				scenario.WithFlows(flows), scenario.WithScale(figures.DefaultScale),
				scenario.WithTransport(tr), scenario.WithFluidFlows(fluid))
			cfg.Duration = dur
			cfg.Board = board
			cfg.Shards = shards
			var events, packets int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c := cfg
				c.Metrics = metrics.NewRegistry()
				res, err := scenario.Run(c)
				if err != nil {
					b.Fatal(err)
				}
				snap := res.Metrics.Snapshot()
				events += snap.Counters["sim.events.executed"]
				packets += snap.Counters["link.tx.packets"]
			}
			if sec := b.Elapsed().Seconds(); sec > 0 {
				b.ReportMetric(float64(events)/sec, "events/sec")
				b.ReportMetric(float64(packets)/sec, "packets/sec")
			}
		}
	}

	benches := []struct {
		name string
		long bool
		fn   func(b *testing.B)
	}{
		{"Scheduler/heap", false, replaySched(sim.SchedHeap)},
		{"Scheduler/calendar", false, replaySched(sim.SchedCalendar)},
		{"Figure11", false, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := figures.Figure11(2, figures.DefaultScale); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"TablesSweep/sequential", true, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := figures.TablesSweep(nil, figures.DefaultScale, 1); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"TablesSweep/parallel", true, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := figures.TablesSweep(nil, figures.DefaultScale, 0); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"Fleet/100", false, fleetBench(100, 1, 5, tcp.BoardWindowed, transport.KindRAP, 0)},
		{"Fleet/1000-map", true, fleetBench(1000, 1, 5, tcp.BoardMap, transport.KindRAP, 0)},
		{"Fleet/1000", true, fleetBench(1000, 1, 5, tcp.BoardWindowed, transport.KindRAP, 0)},
		// The per-transport trio: the same 1000-flow workload on each
		// congestion-control backend, A/B-paired against the RAP leg so
		// the cost of the Kalman/overuse path (delay) and the slow-start
		// probe (greedy) read as deltas.
		{"Fleet/1000-delay", true, fleetBench(1000, 1, 5, tcp.BoardWindowed, transport.KindDelay, 0)},
		{"Fleet/1000-greedy", true, fleetBench(1000, 1, 5, tcp.BoardWindowed, transport.KindGreedy, 0)},
		// The hybrid pair: the same total population with 9 of 10 flows
		// folded into the fluid aggregate, A/B-paired against the
		// all-packet run — the speedup is the hybrid model's whole point
		// — plus the headline 10^6-flow configuration that only the
		// hybrid model can represent at all.
		{"Fleet/1000-hybrid", true, fleetBench(100, 1, 5, tcp.BoardWindowed, transport.KindRAP, 900)},
		{"Fleet/1M-hybrid", true, fleetBench(100, 1, 5, tcp.BoardWindowed, transport.KindRAP, 999_900)},
		{"Fleet/10000", true, fleetBench(10_000, 1, 2, tcp.BoardWindowed, transport.KindRAP, 0)},
		{"Fleet/10000-shards2", true, fleetBench(10_000, 2, 2, tcp.BoardWindowed, transport.KindRAP, 0)},
		{"Fleet/10000-shards4", true, fleetBench(10_000, 4, 2, tcp.BoardWindowed, transport.KindRAP, 0)},
		{"Simulator", false, func(b *testing.B) {
			// Instrumented: the engine and link publish into a live
			// registry and the queueing-delay histogram records every
			// dequeue, so this measures the per-packet metrics overhead.
			for i := 0; i < b.N; i++ {
				eng := sim.NewEngine()
				reg := metrics.NewRegistry()
				q := sim.NewDropTail(1 << 16)
				l := sim.NewLink(eng, q, 1e6, 0.001)
				eng.Instrument(reg)
				l.Instrument(reg)
				sink := sim.ReceiverFunc(func(p *sim.Packet) {})
				var feed func()
				n := 0
				feed = func() {
					if n >= 10_000 {
						return
					}
					n++
					p := eng.Pool().Get()
					p.Seq, p.Size, p.Dst = int64(n), 512, sink
					l.Offer(p)
					eng.After(0.0004, feed)
				}
				eng.At(0, feed)
				eng.Run()
			}
		}},
	}

	rep := report{
		Note: "baseline = pre-pooling hot path (per-packet allocations, chained link events); deltas are (current-baseline)/baseline, negative is better",
	}
	for _, bench := range benches {
		if *quick && bench.long {
			fmt.Fprintf(os.Stderr, "skipping %s (-quick)\n", bench.name)
			continue
		}
		fmt.Fprintf(os.Stderr, "running %s...\n", bench.name)
		// With -count > 1, keep the run with the median ns/op: single
		// runs on a shared host drift by ±5-10%, which swamps real
		// deltas in archived reports.
		runs := make([]testing.BenchmarkResult, 0, *count)
		for i := 0; i < *count; i++ {
			runs = append(runs, testing.Benchmark(bench.fn))
		}
		sort.Slice(runs, func(i, j int) bool { return runs[i].NsPerOp() < runs[j].NsPerOp() })
		r := runs[len(runs)/2]
		e := entry{
			Name:  bench.name,
			Iters: r.N,
			Current: measurement{
				NsPerOp:     r.NsPerOp(),
				BytesPerOp:  r.AllocedBytesPerOp(),
				AllocsPerOp: r.AllocsPerOp(),
			},
		}
		if len(r.Extra) > 0 {
			e.Current.Extra = make(map[string]float64, len(r.Extra))
			for k, v := range r.Extra {
				e.Current.Extra[k] = v
			}
		}
		if base, ok := baselines[bench.name]; ok {
			b := base
			e.Baseline = &b
			ns := 100 * (float64(e.Current.NsPerOp) - float64(b.NsPerOp)) / float64(b.NsPerOp)
			al := 100 * (float64(e.Current.AllocsPerOp) - float64(b.AllocsPerOp)) / float64(b.AllocsPerOp)
			e.DeltaNsPct, e.DeltaAllocsPct = &ns, &al
		}
		rep.Benchmarks = append(rep.Benchmarks, e)
	}

	// Same-binary A/B pairs: record the reference variant's run as the
	// optimized variant's baseline so the report states the structural
	// speedup as a delta like every other entry — the heap vs the calendar
	// queue, and the map vs the windowed TCP scoreboards at 1000 flows.
	abPairs := [][2]string{
		{"Scheduler/calendar", "Scheduler/heap"},
		{"Fleet/1000", "Fleet/1000-map"},
		{"Fleet/1000-delay", "Fleet/1000"},
		{"Fleet/1000-greedy", "Fleet/1000"},
		{"Fleet/1000-hybrid", "Fleet/1000"},
		{"Fleet/10000-shards4", "Fleet/10000"},
	}
	byIdx := make(map[string]int, len(rep.Benchmarks))
	for i, e := range rep.Benchmarks {
		byIdx[e.Name] = i
	}
	for _, pair := range abPairs {
		i, ok := byIdx[pair[0]]
		j, ok2 := byIdx[pair[1]]
		if !ok || !ok2 {
			continue
		}
		base := rep.Benchmarks[j].Current
		e := &rep.Benchmarks[i]
		e.Baseline = &base
		ns := 100 * (float64(e.Current.NsPerOp) - float64(base.NsPerOp)) / float64(base.NsPerOp)
		e.DeltaNsPct = &ns
		if base.AllocsPerOp > 0 {
			al := 100 * (float64(e.Current.AllocsPerOp) - float64(base.AllocsPerOp)) / float64(base.AllocsPerOp)
			e.DeltaAllocsPct = &al
		}
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "qabench:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
	} else {
		if err := os.WriteFile(*out, enc, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "qabench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
	}

	if *runReport != "" {
		if err := writeRunReport(*runReport); err != nil {
			fmt.Fprintln(os.Stderr, "qabench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *runReport)
	}

	if *check != "" {
		if err := checkAgainst(*check, rep); err != nil {
			fmt.Fprintln(os.Stderr, "qabench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "check against %s passed\n", *check)
	}
}

// budget for -check: measured ns/op may exceed the recorded report by
// at most 5%, and allocs/op by at most 5% plus a small constant
// (construction of a metrics registry and its histograms per run, which
// the instrumented benchmarks pay once per op). Steady-state
// instrumentation cost is asserted to be exactly zero allocations by
// the TestAllocFree* tests; the slack here only absorbs construction
// and timer noise while still catching any per-packet allocation,
// which would show up thousands of times per op.
const (
	checkTolerancePct  = 5.0
	checkAllocSlackOps = 64
)

// checkAgainst compares the fresh measurements in rep against the
// "current" values of a previously recorded qabench report and returns
// an error describing every benchmark over budget.
func checkAgainst(path string, rep report) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var recorded report
	if err := json.Unmarshal(data, &recorded); err != nil {
		return fmt.Errorf("parse %s: %v", path, err)
	}
	byName := make(map[string]measurement, len(recorded.Benchmarks))
	for _, e := range recorded.Benchmarks {
		byName[e.Name] = e.Current
	}
	var failures []string
	compared := 0
	for _, e := range rep.Benchmarks {
		rec, ok := byName[e.Name]
		if !ok {
			continue
		}
		compared++
		if pct := 100 * (float64(e.Current.NsPerOp) - float64(rec.NsPerOp)) / float64(rec.NsPerOp); pct > checkTolerancePct {
			failures = append(failures, fmt.Sprintf("%s: ns/op %d vs recorded %d (+%.1f%% > +%.1f%%)",
				e.Name, e.Current.NsPerOp, rec.NsPerOp, pct, checkTolerancePct))
		}
		if limit := int64(float64(rec.AllocsPerOp)*(1+checkTolerancePct/100)) + checkAllocSlackOps; e.Current.AllocsPerOp > limit {
			failures = append(failures, fmt.Sprintf("%s: allocs/op %d vs recorded %d (limit %d)",
				e.Name, e.Current.AllocsPerOp, rec.AllocsPerOp, limit))
		}
	}
	if compared == 0 {
		return fmt.Errorf("no benchmark in %s matches a measured one", path)
	}
	if len(failures) > 0 {
		msg := "regressions vs " + path + ":"
		for _, f := range failures {
			msg += "\n  " + f
		}
		return fmt.Errorf("%s", msg)
	}
	return nil
}

// writeRunReport runs the instrumented Figure 11 scenario once and
// writes its structured run report (config, final counters, histogram
// quantiles) — the machine-diffable artifact scripts/bench.sh archives.
func writeRunReport(path string) error {
	res, err := figures.Figure11(2, figures.DefaultScale)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return scenario.WriteReports(f, res.Reports)
}
