// Command qaserver streams layered video data over UDP with RAP
// congestion control and quality adaptation. By default it serves many
// clients concurrently from a sharded client table over batched I/O
// (netio.MultiServer); -single restores the original one-client-at-a-
// time endpoint. Pair it with qaclient, or load it with qaload.
//
// Examples:
//
//	qaserver -listen 127.0.0.1:9000 -c 20000 -kmax 2
//	qaserver -listen 127.0.0.1:9000 -shards 4 -metrics 127.0.0.1:9090
//	qaserver -single -once   # legacy single-stream mode
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"time"

	"qav/internal/core"
	"qav/internal/netio"
	"qav/internal/rap"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:9000", "UDP listen address")
	c := flag.Float64("c", 20_000, "per-layer consumption rate, bytes/s")
	kmax := flag.Int("kmax", 2, "smoothing factor")
	layers := flag.Int("layers", 8, "maximum encoded layers")
	pkt := flag.Int("pkt", 512, "packet size, bytes")
	maxRate := flag.Float64("max-rate", 0, "cap on per-client transmission rate, bytes/s (0 = none)")
	shards := flag.Int("shards", 0, "client-table shards (0 = auto: one per core, max 8; explicit values above 8 are honored)")
	batch := flag.String("batch", "", "batch I/O kind: auto, mmsg, generic")
	pacer := flag.String("pacer", "", "send pacer: wheel (default), scan")
	sockets := flag.String("sockets", "", "socket layout: reuseport (default where available), demux")
	maxClients := flag.Int("max-clients", 4096, "concurrent stream cap (joins beyond it are refused)")
	single := flag.Bool("single", false, "serve one client at a time (the paper's original endpoint)")
	once := flag.Bool("once", false, "with -single: serve a single stream then exit")
	metricsAddr := flag.String("metrics", "", "HTTP address serving current metrics as JSON (e.g. 127.0.0.1:9090; empty = disabled)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	listenOne := func() *net.UDPConn {
		la, err := net.ResolveUDPAddr("udp", *listen)
		if err != nil {
			fatal(err)
		}
		conn, err := net.ListenUDP("udp", la)
		if err != nil {
			fatal(err)
		}
		return conn
	}

	if *single {
		conn := listenOne()
		defer conn.Close()
		serveSingle(ctx, conn, *c, *kmax, *layers, *pkt, *maxRate, *once, *metricsAddr)
		return
	}

	kind := netio.BatchKind(*batch)
	if *batch == "auto" {
		kind = netio.BatchAuto
	}
	mode := netio.SocketMode(*sockets)
	if mode == "" {
		mode = netio.SocketDemux
		if netio.ReuseportAvailable() {
			mode = netio.SocketReuseport
		}
	}
	cfg := netio.MultiConfig{
		QA:         core.Params{C: *c, Kmax: *kmax, MaxLayers: *layers, StartupSec: 0.5},
		RAP:        rap.Config{PacketSize: *pkt, MaxRate: *maxRate, InitialRTT: 0.05},
		Shards:     *shards,
		BatchKind:  kind,
		Pacer:      netio.PacerKind(*pacer),
		MaxClients: *maxClients,
	}
	var srv *netio.MultiServer
	switch mode {
	case netio.SocketReuseport:
		n := *shards
		if n <= 0 {
			n = netio.DefaultShards()
		}
		conns, err := netio.ListenReuseport("udp", *listen, n)
		if err != nil {
			fatal(err)
		}
		for _, c := range conns {
			defer c.Close()
		}
		if srv, err = netio.NewMultiServerConns(conns, cfg); err != nil {
			fatal(err)
		}
	case netio.SocketDemux:
		conn := listenOne()
		defer conn.Close()
		var err error
		if srv, err = netio.NewMultiServer(conn, cfg); err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("unknown -sockets mode %q", mode))
	}
	fmt.Printf("qaserver: listening on %s (C=%.0f B/s, Kmax=%d, %d layers, %s batch, %s pacer, %s sockets, max %d clients)\n",
		srv.Addr(), *c, *kmax, *layers, srv.BatchKind(), srv.PacerKind(), srv.SocketMode(), *maxClients)
	if *metricsAddr != "" {
		go serveMetrics(*metricsAddr, http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			srv.WriteMetricsJSON(w)
		}))
	}
	err := srv.Serve(ctx)
	st := srv.Stats()
	fmt.Printf("qaserver: done: accepted=%d sent=%d acked=%d retransmits=%d bad=%d err=%v\n",
		st.Accepted, st.SentPkts, st.AckedPkts, st.Retransmits, st.BadPackets, err)
}

// serveSingle is the original one-client loop, one stream per
// netio.Server instance.
func serveSingle(ctx context.Context, conn *net.UDPConn, c float64, kmax, layers, pkt int, maxRate float64, once bool, metricsAddr string) {
	fmt.Printf("qaserver: listening on %s (C=%.0f B/s, Kmax=%d, %d layers, single-client)\n",
		conn.LocalAddr(), c, kmax, layers)

	// The current stream's server, for the metrics endpoint. A new
	// *netio.Server is created per stream, so the handler re-reads it.
	var (
		curMu  sync.Mutex
		curSrv *netio.Server
	)
	if metricsAddr != "" {
		go serveMetrics(metricsAddr, http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
			curMu.Lock()
			srv := curSrv
			curMu.Unlock()
			if srv == nil {
				http.Error(w, "no stream yet", http.StatusServiceUnavailable)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			srv.WriteMetricsJSON(w)
		}))
	}

	for {
		srv, err := netio.NewServer(conn, netio.ServerConfig{
			QA: core.Params{C: c, Kmax: kmax, MaxLayers: layers, StartupSec: 0.5},
			RAP: rap.Config{
				PacketSize: pkt,
				MaxRate:    maxRate,
				InitialRTT: 0.05,
			},
		})
		if err != nil {
			fatal(err)
		}
		curMu.Lock()
		curSrv = srv
		curMu.Unlock()
		start := time.Now()
		err = srv.Serve(ctx)
		st := srv.Stats()
		fmt.Printf("qaserver: stream done in %.1fs: sent=%d acked=%d backoffs=%d layers=%d rate=%.0fB/s err=%v\n",
			time.Since(start).Seconds(), st.SentPkts, st.AckedPkts, st.Backoffs,
			st.ActiveLayers, st.Rate, err)
		if ctx.Err() != nil || once {
			return
		}
	}
}

func serveMetrics(addr string, h http.Handler) {
	fmt.Printf("qaserver: metrics at http://%s/\n", addr)
	if err := http.ListenAndServe(addr, h); err != nil {
		fmt.Fprintln(os.Stderr, "qaserver: metrics endpoint:", err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "qaserver:", err)
	os.Exit(1)
}
