// Command qaserver streams layered video data over UDP with RAP
// congestion control and quality adaptation, serving one client at a
// time. Pair it with qaclient.
//
// Example:
//
//	qaserver -listen 127.0.0.1:9000 -c 20000 -kmax 2
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"time"

	"qav/internal/core"
	"qav/internal/netio"
	"qav/internal/rap"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:9000", "UDP listen address")
	c := flag.Float64("c", 20_000, "per-layer consumption rate, bytes/s")
	kmax := flag.Int("kmax", 2, "smoothing factor")
	layers := flag.Int("layers", 8, "maximum encoded layers")
	pkt := flag.Int("pkt", 512, "packet size, bytes")
	maxRate := flag.Float64("max-rate", 0, "cap on transmission rate, bytes/s (0 = none)")
	once := flag.Bool("once", false, "serve a single stream then exit")
	metricsAddr := flag.String("metrics", "", "HTTP address serving the current stream's metrics as JSON (e.g. 127.0.0.1:9090; empty = disabled)")
	flag.Parse()

	la, err := net.ResolveUDPAddr("udp", *listen)
	if err != nil {
		fatal(err)
	}
	conn, err := net.ListenUDP("udp", la)
	if err != nil {
		fatal(err)
	}
	defer conn.Close()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	fmt.Printf("qaserver: listening on %s (C=%.0f B/s, Kmax=%d, %d layers)\n",
		conn.LocalAddr(), *c, *kmax, *layers)

	// The current stream's server, for the metrics endpoint. A new
	// *netio.Server is created per stream, so the handler re-reads it.
	var (
		curMu  sync.Mutex
		curSrv *netio.Server
	)
	if *metricsAddr != "" {
		go func() {
			h := http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
				curMu.Lock()
				srv := curSrv
				curMu.Unlock()
				if srv == nil {
					http.Error(w, "no stream yet", http.StatusServiceUnavailable)
					return
				}
				w.Header().Set("Content-Type", "application/json")
				srv.WriteMetricsJSON(w)
			})
			if err := http.ListenAndServe(*metricsAddr, h); err != nil {
				fmt.Fprintln(os.Stderr, "qaserver: metrics endpoint:", err)
			}
		}()
		fmt.Printf("qaserver: metrics at http://%s/\n", *metricsAddr)
	}

	for {
		srv, err := netio.NewServer(conn, netio.ServerConfig{
			QA: core.Params{C: *c, Kmax: *kmax, MaxLayers: *layers, StartupSec: 0.5},
			RAP: rap.Config{
				PacketSize: *pkt,
				MaxRate:    *maxRate,
				InitialRTT: 0.05,
			},
		})
		if err != nil {
			fatal(err)
		}
		curMu.Lock()
		curSrv = srv
		curMu.Unlock()
		start := time.Now()
		err = srv.Serve(ctx)
		st := srv.Stats()
		fmt.Printf("qaserver: stream done in %.1fs: sent=%d acked=%d backoffs=%d layers=%d rate=%.0fB/s err=%v\n",
			time.Since(start).Seconds(), st.SentPkts, st.AckedPkts, st.Backoffs,
			st.ActiveLayers, st.Rate, err)
		if ctx.Err() != nil || *once {
			return
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "qaserver:", err)
	os.Exit(1)
}
