// Command qaclient requests a layered stream from qaserver (optionally
// through the qapipe emulator) and reports what it received per layer.
//
// Example:
//
//	qaclient -server 127.0.0.1:9000 -dur 10s
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"qav/internal/netio"
	"qav/internal/video"
)

func main() {
	server := flag.String("server", "127.0.0.1:9000", "server (or pipe) UDP address")
	dur := flag.Duration("dur", 10*time.Second, "stream duration to request")
	c := flag.Float64("c", 20_000, "per-layer consumption rate for the playout model, bytes/s")
	playout := flag.Bool("video", true, "attach the playout model (quality metrics + selective retransmission)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var cl *netio.Client
	var err error
	if *playout {
		cl, err = netio.DialVideo(*server, video.Config{C: *c, MaxLayers: 16})
	} else {
		cl, err = netio.Dial(*server)
	}
	if err != nil {
		fatal(err)
	}
	defer cl.Close()

	fmt.Printf("qaclient: requesting %v of stream from %s\n", *dur, *server)
	if err := cl.Stream(ctx, *dur); err != nil {
		fatal(err)
	}

	st := cl.Stats()
	elapsed := st.LastArrival.Seconds()
	fmt.Printf("qaclient: %d packets, %d bytes in %.1fs (%.0f B/s), reorders=%d\n",
		st.Packets, st.Bytes, elapsed, float64(st.Bytes)/elapsed, st.ReorderEvents)
	for l := 0; l <= st.HighestLayer && l < len(st.ByLayer); l++ {
		fmt.Printf("  layer %d: %8d bytes (%.0f B/s)\n", l, st.ByLayer[l], float64(st.ByLayer[l])/elapsed)
	}
	if *playout {
		pb := st.Playback
		fmt.Printf("playback: %.1fs played, %.2fs stalled (%d stalls), %.1f decodable layer-seconds\n",
			pb.PlayedSec, pb.StallSec, pb.Stalls, pb.DecodableLayerSec)
		fmt.Printf("repairs: %d NACKs sent, %d holes repaired\n", st.NacksSent, st.Retransmits)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "qaclient:", err)
	os.Exit(1)
}
