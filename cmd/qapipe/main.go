// Command qapipe is a UDP network emulator: it relays datagrams between
// a client and a qaserver while imposing bandwidth, delay, and loss,
// standing in for a congested Internet path on loopback.
//
// Example (60 KB/s bottleneck, 40 ms RTT, 1% loss on the data path):
//
//	qapipe -listen 127.0.0.1:9100 -server 127.0.0.1:9000 \
//	       -down-rate 60000 -down-delay 20ms -up-delay 20ms -down-loss 0.01
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"qav/internal/netio"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:9100", "client-facing UDP address")
	server := flag.String("server", "127.0.0.1:9000", "qaserver UDP address")
	downRate := flag.Float64("down-rate", 0, "server->client rate limit, bytes/s (0 = none)")
	downDelay := flag.Duration("down-delay", 0, "server->client one-way delay")
	downLoss := flag.Float64("down-loss", 0, "server->client loss probability")
	downQueue := flag.Int("down-queue", 32<<10, "server->client queue, bytes")
	upRate := flag.Float64("up-rate", 0, "client->server rate limit, bytes/s (0 = none)")
	upDelay := flag.Duration("up-delay", 0, "client->server one-way delay")
	upLoss := flag.Float64("up-loss", 0, "client->server loss probability")
	seed := flag.Int64("seed", 1, "loss RNG seed")
	flag.Parse()

	pipe, err := netio.NewPipe(*listen, *server,
		netio.PipeConfig{Rate: *upRate, Delay: *upDelay, Loss: *upLoss},
		netio.PipeConfig{Rate: *downRate, Delay: *downDelay, Loss: *downLoss, QueueBytes: *downQueue},
		*seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qapipe:", err)
		os.Exit(1)
	}
	defer pipe.Close()

	fmt.Printf("qapipe: %s <-> %s (down: %.0f B/s, %v, loss %.2f)\n",
		pipe.Addr(), *server, *downRate, *downDelay, *downLoss)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	tick := time.NewTicker(5 * time.Second)
	defer tick.Stop()
	for {
		select {
		case <-sig:
			up, down := pipe.Drops()
			fmt.Printf("qapipe: drops up=%d down=%d\n", up, down)
			return
		case <-tick.C:
			up, down := pipe.Drops()
			fmt.Printf("qapipe: drops up=%d down=%d\n", up, down)
		}
	}
}
