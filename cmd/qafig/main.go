// Command qafig regenerates the paper's figures and tables from the
// simulator and prints them as commented TSV (figures) or aligned text
// (tables).
//
// Usage:
//
//	qafig -fig 1            # Fig 1: single RAP sawtooth
//	qafig -fig 2            # Fig 2: filling/draining demonstration
//	qafig -fig 11           # Fig 11: detailed T1 trace (Kmax=2)
//	qafig -fig 12           # Fig 12: effect of Kmax
//	qafig -fig 13           # Fig 13: CBR-burst responsiveness
//	qafig -tables           # Tables 1 and 2 (Kmax sweep over T1/T2)
//	qafig -transports       # transport A/B: rap vs delay vs greedy
//	qafig -fig 11 -transport delay   # any figure on another backend
//	qafig -all              # everything, summaries only
//	qafig -fig 11 -scale 1  # raw 800 Kb/s parameterization
//	qafig -tables -parallel 4   # sweep on 4 workers (0 = all cores)
//	qafig -tables -cpuprofile cpu.pprof -memprofile mem.pprof
//	qafig -fig 11 -report runs.json   # plus a machine-diffable run report
//
// Sweeps (-tables, -fig 12, -all) run their independent simulations on a
// worker pool; -parallel bounds the workers (default: one per CPU). The
// output is byte-identical to a sequential run.
//
// -report FILE writes one structured JSON run report per underlying
// simulation (effective config, final metric counters, histogram
// quantiles); "-" writes to stdout. Every run has its own metrics
// registry, so the report does not depend on -parallel.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"

	"qav/internal/figures"
	"qav/internal/scenario"
	"qav/internal/transport"
)

func main() {
	fig := flag.Int("fig", 0, "figure number to regenerate (1, 2, 11, 12, 13)")
	tables := flag.Bool("tables", false, "regenerate Tables 1 and 2")
	transports := flag.Bool("transports", false, "run the transport A/B sweep (Fig 11 scenario + Fleet per backend)")
	transportName := flag.String("transport", "", "congestion-control backend for the figure/table runs: rap (default), delay, greedy")
	all := flag.Bool("all", false, "regenerate everything (summaries only)")
	scale := flag.Float64("scale", figures.DefaultScale, "bottleneck scale factor (8 = paper figure axes)")
	kmax := flag.Int("kmax", 2, "smoothing factor for -fig 11")
	parallel := flag.Int("parallel", 0, "sweep worker goroutines (0 = one per CPU)")
	out := flag.String("out", "", "write output to file instead of stdout")
	report := flag.String("report", "", `write a JSON run report to this file ("-" = stdout)`)
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile to this file on exit")
	flag.Parse()

	trKind, err := transport.ParseKind(*transportName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qafig:", err)
		os.Exit(1)
	}
	if err := run(*fig, *kmax, *scale, *parallel, *tables, *transports, *all, trKind, *out, *report, *cpuprofile, *memprofile); err != nil {
		fmt.Fprintln(os.Stderr, "qafig:", err)
		os.Exit(1)
	}
}

func run(fig, kmax int, scale float64, parallel int, tables, transports, all bool, trKind transport.Kind, out, report, cpuprofile, memprofile string) error {
	w := io.Writer(os.Stdout)
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if cpuprofile != "" {
		f, err := os.Create(cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if memprofile != "" {
		f, err := os.Create(memprofile)
		if err != nil {
			return err
		}
		defer func() {
			runtime.GC()
			pprof.Lookup("allocs").WriteTo(f, 0)
			f.Close()
		}()
	}

	opts := []scenario.PresetOption{scenario.WithTransport(trKind)}
	switch {
	case all:
		return runAll(w, scale, parallel, report, opts...)
	case transports:
		res, err := figures.TransportSweep(scale, parallel)
		if err != nil {
			return err
		}
		if err := res.Render(w); err != nil {
			return err
		}
		return writeReport(report, res.Reports)
	case tables:
		cells, reps, err := figures.TablesSweep(nil, scale, parallel, opts...)
		if err != nil {
			return err
		}
		if err := figures.RenderTables(w, cells); err != nil {
			return err
		}
		return writeReport(report, reps)
	case fig != 0:
		res, err := runFigure(fig, kmax, scale, parallel, opts...)
		if err != nil {
			return err
		}
		if err := res.Render(w); err != nil {
			return err
		}
		return writeReport(report, res.Reports)
	default:
		flag.Usage()
		os.Exit(2)
		return nil
	}
}

// writeReport writes reps as a JSON report to path ("-" = stdout); a
// no-op when path is empty.
func writeReport(path string, reps []scenario.RunReport) error {
	if path == "" {
		return nil
	}
	w := io.Writer(os.Stdout)
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return scenario.WriteReports(w, reps)
}

func runFigure(fig, kmax int, scale float64, parallel int, opts ...scenario.PresetOption) (*figures.Result, error) {
	switch fig {
	case 1:
		return figures.Figure1(opts...)
	case 2:
		return figures.Figure2(opts...)
	case 11:
		return figures.Figure11(kmax, scale, opts...)
	case 12:
		return figures.Figure12(scale, parallel, opts...)
	case 13:
		return figures.Figure13(scale, opts...)
	default:
		return nil, fmt.Errorf("unknown figure %d (have 1, 2, 11, 12, 13)", fig)
	}
}

func runAll(w io.Writer, scale float64, parallel int, report string, opts ...scenario.PresetOption) error {
	var reps []scenario.RunReport
	for _, fig := range []int{1, 2, 11, 12, 13} {
		res, err := runFigure(fig, 2, scale, parallel, opts...)
		if err != nil {
			return err
		}
		reps = append(reps, res.Reports...)
		fmt.Fprintf(w, "## %s\n", res.Name)
		for _, f := range res.Summary {
			fmt.Fprintf(w, "# %-28s %12.3f   %s\n", f.Key, f.Value, f.Note)
		}
		fmt.Fprintln(w)
	}
	cells, tabReps, err := figures.TablesSweep(nil, scale, parallel, opts...)
	if err != nil {
		return err
	}
	reps = append(reps, tabReps...)
	if err := figures.RenderTables(w, cells); err != nil {
		return err
	}
	return writeReport(report, reps)
}
