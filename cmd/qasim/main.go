// Command qasim runs a single custom quality adaptation simulation and
// dumps its traces and event log.
//
// Example:
//
//	qasim -bw 800000 -rtt 0.04 -tcp 10 -rap 9 -kmax 2 -dur 60 -c 10000
package main

import (
	"flag"
	"fmt"
	"os"

	"qav/internal/core"
	"qav/internal/scenario"
)

func main() {
	bw := flag.Float64("bw", 800_000, "bottleneck bandwidth, bytes/s")
	rtt := flag.Float64("rtt", 0.04, "base round-trip time, seconds")
	queue := flag.Float64("queue", 0.12, "bottleneck queue, seconds of bandwidth")
	red := flag.Bool("red", false, "use RED instead of DropTail at the bottleneck")
	ntcp := flag.Int("tcp", 10, "number of competing Sack-TCP flows")
	nrap := flag.Int("rap", 9, "number of competing plain RAP flows")
	cbrFrac := flag.Float64("cbr", 0, "CBR burst rate as a fraction of bw (0 = none)")
	cbrStart := flag.Float64("cbr-start", 30, "CBR start time, s")
	cbrStop := flag.Float64("cbr-stop", 60, "CBR stop time, s")
	c := flag.Float64("c", 10_000, "per-layer consumption rate, bytes/s")
	kmax := flag.Int("kmax", 2, "smoothing factor")
	maxLayers := flag.Int("layers", 8, "maximum encoded layers")
	dur := flag.Float64("dur", 60, "simulated duration, seconds")
	pkt := flag.Int("pkt", 512, "packet size, bytes")
	tsv := flag.Bool("tsv", false, "dump full time series as TSV")
	events := flag.Bool("events", false, "dump the controller event log")
	flag.Parse()

	cfg := scenario.Config{
		Name:           "custom",
		BottleneckRate: *bw,
		LinkDelay:      *rtt / 4,
		AccessDelay:    *rtt / 8,
		QueueBytes:     int(*bw * *queue),
		UseRED:         *red,
		PacketSize:     *pkt,
		NumTCP:         *ntcp,
		NumRAP:         *nrap,
		WithQA:         true,
		QA: core.Params{
			C:         *c,
			Kmax:      *kmax,
			MaxLayers: *maxLayers,
		},
		Duration:       *dur,
		SampleInterval: 0.1,
	}
	if *cbrFrac > 0 {
		cfg.CBRRate = *cbrFrac * *bw
		cfg.CBRStart = *cbrStart
		cfg.CBRStop = *cbrStop
	}

	res, err := scenario.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qasim:", err)
		os.Exit(1)
	}

	fmt.Printf("# %s: bw=%.0fB/s rtt=%.0fms C=%.0fB/s Kmax=%d flows=1QA+%dRAP+%dTCP\n",
		cfg.Name, cfg.BottleneckRate, 1000*(2*(cfg.LinkDelay+cfg.AccessDelay)), *c, *kmax, *nrap, *ntcp)
	fmt.Printf("# qa: avg_rate=%.0f avg_layers=%.2f played=%.1fs stalls=%.2fs\n",
		res.Series.Get("qa.rate").Avg(),
		res.Series.Get("qa.layers").Avg(),
		res.PlayedSec, res.StallSec)
	fmt.Printf("# events: adds=%d drops=%d backoffs=%d efficiency=%.2f%% poor-dist=%.1f%%\n",
		res.Stats.Adds, res.Stats.Drops, res.Stats.Backoffs,
		100*res.Stats.AvgEfficiency, res.Stats.PoorDistPct)

	if *events {
		for _, e := range res.Events {
			fmt.Printf("%8.3f %-8s layer=%d rate=%.0f bufdrop=%.0f buftotal=%.0f poor=%v\n",
				e.Time, e.Kind, e.Layer, e.Rate, e.BufDrop, e.BufTotal, e.PoorDist)
		}
	}
	if *tsv {
		if err := res.Series.WriteTSV(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "qasim:", err)
			os.Exit(1)
		}
	}
}
