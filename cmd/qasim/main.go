// Command qasim runs custom quality adaptation simulations and dumps
// their traces and event logs.
//
// Example:
//
//	qasim -bw 800000 -rtt 0.04 -tcp 10 -rap 9 -kmax 2 -dur 60 -c 10000
//
// -kmax accepts a comma-separated list; with more than one value the
// independent runs execute concurrently on a worker pool (-parallel
// bounds the workers, 0 = one per CPU) and are reported in order, with
// results identical to running them one at a time.
//
// -report FILE writes a structured JSON run report (effective config,
// final metric counters, histogram quantiles) for every run; "-" writes
// it to stdout. Each run gets its own metrics registry, so the report is
// byte-identical for any -parallel setting.
//
// -preset builds the scenario from a named preset instead of the custom
// flags; explicitly set flags still override the preset's fields:
//
//	qasim -preset T2 -dur 120 -report -
//	qasim -preset Fleet -flows 500 -report fleet.json
//
// -flows N selects the Fleet preset (half quality-adaptive flows, half
// Sack-TCP, capacity and queue scaled so the per-flow fair share is
// population-invariant) and -traceflows caps per-flow trace series while
// emitting fleet-wide aggregates; see scenario.Config.MaxTraceFlows.
//
// -fluid N adds N more background flows modeled as a fluid AIMD
// aggregate (half TCP, half RAP) instead of packet-level — the hybrid
// model that scales Fleet populations to 10^6 flows (see DESIGN.md,
// "Hybrid fluid/packet simulation"):
//
//	qasim -flows 100 -fluid 999900 -dur 10 -report -
//
// -shards N splits ONE run across N engines (a bottleneck shard plus
// N-1 flow shards) synchronized by a conservative time barrier. Results
// — reports, traces, TSVs — are bit-identical to -shards 1; see
// DESIGN.md, "Parallel DES". Orthogonal to -parallel, which runs the
// independent sweep configs concurrently.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"qav/internal/core"
	"qav/internal/metrics"
	"qav/internal/scenario"
	"qav/internal/transport"
)

func main() {
	preset := flag.String("preset", "", "build the scenario from a preset ("+strings.Join(scenario.Presets(), ", ")+"); explicit flags override its fields")
	flows := flag.Int("flows", 0, "total flow population; implies -preset Fleet when no preset is named")
	fluid := flag.Int("fluid", 0, "additional background flows modeled as a fluid aggregate (half TCP, half RAP) instead of packet-level")
	traceFlows := flag.Int("traceflows", -1, "cap per-flow trace series at N flows per class and emit fleet aggregates (0 = legacy full tracing, -1 = preset default)")
	bw := flag.Float64("bw", 800_000, "bottleneck bandwidth, bytes/s")
	rtt := flag.Float64("rtt", 0.04, "base round-trip time, seconds")
	queue := flag.Float64("queue", 0.12, "bottleneck queue, seconds of bandwidth")
	red := flag.Bool("red", false, "use RED instead of DropTail at the bottleneck")
	ntcp := flag.Int("tcp", 10, "number of competing Sack-TCP flows")
	nrap := flag.Int("rap", 9, "number of competing plain RAP flows")
	cbrFrac := flag.Float64("cbr", 0, "CBR burst rate as a fraction of bw (0 = none)")
	cbrStart := flag.Float64("cbr-start", 30, "CBR start time, s")
	cbrStop := flag.Float64("cbr-stop", 60, "CBR stop time, s")
	c := flag.Float64("c", 10_000, "per-layer consumption rate, bytes/s")
	kmaxList := flag.String("kmax", "2", "smoothing factor, or comma-separated list for a sweep")
	maxLayers := flag.Int("layers", 8, "maximum encoded layers")
	dur := flag.Float64("dur", 60, "simulated duration, seconds")
	pkt := flag.Int("pkt", 512, "packet size, bytes")
	transportName := flag.String("transport", "", "congestion-control backend for QA and cross-traffic flows: rap (default), delay, greedy")
	parallel := flag.Int("parallel", 0, "sweep worker goroutines (0 = one per CPU)")
	shards := flag.Int("shards", 1, "engines per run: 1 = classic serial, N >= 2 = one bottleneck shard plus N-1 flow shards with identical results (see DESIGN.md, Parallel DES)")
	tsv := flag.Bool("tsv", false, "dump full time series as TSV")
	events := flag.Bool("events", false, "dump the controller event log")
	reportPath := flag.String("report", "", `write a JSON run report to this file ("-" = stdout)`)
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile to this file on exit")
	flag.Parse()

	kmaxes, err := parseKmaxes(*kmaxList)
	if err != nil {
		fatal(err)
	}
	trKind, err := transport.ParseKind(*transportName)
	if err != nil {
		fatal(err)
	}

	// Which flags were given explicitly: in preset mode only those
	// override the preset's fields.
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	presetName := *preset
	if presetName == "" && (*flows > 0 || *fluid > 0) {
		presetName = "Fleet"
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer f.Close()
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fatal(err)
		}
		defer func() {
			runtime.GC()
			pprof.Lookup("allocs").WriteTo(f, 0)
			f.Close()
		}()
	}

	cfgs := make([]scenario.Config, len(kmaxes))
	for i, kmax := range kmaxes {
		var cfg scenario.Config
		if presetName != "" {
			opts := []scenario.PresetOption{scenario.WithKmax(kmax)}
			if *flows > 0 {
				opts = append(opts, scenario.WithFlows(*flows))
			}
			if *fluid > 0 {
				opts = append(opts, scenario.WithFluidFlows(*fluid))
			}
			if set["transport"] {
				opts = append(opts, scenario.WithTransport(trKind))
			}
			cfg, err = scenario.Preset(presetName, opts...)
			if err != nil {
				fatal(err)
			}
			// Explicit flags override the preset's fields; untouched
			// flags keep the preset's values, not the flag defaults.
			if set["bw"] {
				cfg.BottleneckRate = *bw
			}
			if set["rtt"] {
				cfg.LinkDelay, cfg.AccessDelay = *rtt/4, *rtt/8
			}
			if set["queue"] {
				cfg.QueueBytes = int(cfg.BottleneckRate * *queue)
			}
			if set["red"] {
				cfg.UseRED = *red
			}
			if set["tcp"] {
				cfg.NumTCP = *ntcp
			}
			if set["rap"] {
				cfg.NumRAP = *nrap
			}
			if set["c"] {
				cfg.QA.C = *c
			}
			if set["layers"] {
				cfg.QA.MaxLayers = *maxLayers
			}
			if set["dur"] {
				cfg.Duration = *dur
			}
			if set["pkt"] {
				cfg.PacketSize = *pkt
			}
			if set["cbr"] {
				cfg.CBRRate = *cbrFrac * cfg.BottleneckRate
				cfg.CBRStart, cfg.CBRStop = *cbrStart, *cbrStop
			}
		} else {
			cfg = scenario.Config{
				Name:           fmt.Sprintf("custom(Kmax=%d)", kmax),
				Transport:      trKind,
				BottleneckRate: *bw,
				LinkDelay:      *rtt / 4,
				AccessDelay:    *rtt / 8,
				QueueBytes:     int(*bw * *queue),
				UseRED:         *red,
				PacketSize:     *pkt,
				NumTCP:         *ntcp,
				NumRAP:         *nrap,
				WithQA:         true,
				QA: core.Params{
					C:         *c,
					Kmax:      kmax,
					MaxLayers: *maxLayers,
				},
				Duration: *dur,
			}
			if *cbrFrac > 0 {
				cfg.CBRRate = *cbrFrac * *bw
				cfg.CBRStart = *cbrStart
				cfg.CBRStop = *cbrStop
			}
		}
		if *traceFlows >= 0 {
			cfg.MaxTraceFlows = *traceFlows
		}
		cfg.Shards = *shards
		// Normalize here (Run would do it too) so flag mistakes surface
		// before any simulation starts, with the effective defaults filled
		// in for the report.
		if err := cfg.Normalize(); err != nil {
			fatal(err)
		}
		if *reportPath != "" {
			cfg.Metrics = metrics.NewRegistry()
		}
		cfgs[i] = cfg
	}

	results, err := scenario.RunAll(cfgs, *parallel)
	if err != nil {
		fatal(err)
	}

	for i, res := range results {
		cfg, kmax := cfgs[i], kmaxes[i]
		// Non-default transports are called out in the header; the
		// default keeps the historical line byte-stable for diffing.
		trTag := ""
		if cfg.Transport != "" && cfg.Transport != transport.KindRAP {
			trTag = fmt.Sprintf(" transport=%s", cfg.Transport)
		}
		fmt.Printf("# %s:%s bw=%.0fB/s rtt=%.0fms C=%.0fB/s Kmax=%d flows=%dQA+%dRAP+%dTCP\n",
			cfg.Name, trTag, cfg.BottleneckRate, 1000*(2*(cfg.LinkDelay+cfg.AccessDelay)), cfg.QA.C, kmax, cfg.NumQA, cfg.NumRAP, cfg.NumTCP)
		if res.QASrc != nil {
			fmt.Printf("# qa: avg_rate=%.0f avg_layers=%.2f played=%.1fs stalls=%.2fs\n",
				res.Series.Get("qa.rate").Avg(),
				res.Series.Get("qa.layers").Avg(),
				res.PlayedSec, res.StallSec)
			fmt.Printf("# events: adds=%d drops=%d backoffs=%d efficiency=%.2f%% poor-dist=%.1f%%\n",
				res.Stats.Adds, res.Stats.Drops, res.Stats.Backoffs,
				100*res.Stats.AvgEfficiency, res.Stats.PoorDistPct)
		} else if len(res.RAPSrcs) > 0 {
			// No QA flow (SingleRAP, or a cross-traffic-only custom run):
			// summarize the congestion-controlled cross traffic under its
			// actual backend instead of printing QA fields that don't exist.
			var recv, backoffs, lost int64
			for _, r := range res.RAPSrcs {
				recv += r.RecvBytes
				c := r.Tr.Counters()
				backoffs += c.Backoffs
				lost += c.Lost
			}
			kind := cfg.Transport
			if kind == "" {
				kind = transport.KindRAP
			}
			fmt.Printf("# %s: flows=%d goodput=%.0fB/s backoffs=%d lost=%d\n",
				kind, len(res.RAPSrcs), float64(recv)/cfg.Duration, backoffs, lost)
		}
		if cfg.MaxTraceFlows > 0 {
			fs := res.Report().Fleet
			fmt.Printf("# fleet: flows=%d goodput: qa=%.0fB/s rap=%.0fB/s tcp=%.0fB/s jain(tcp)=%.3f\n",
				fs.Flows, fs.QAGoodputBps, fs.RAPGoodputBps, fs.TCPGoodputBps, fs.JainFairnessTCP)
		}
		if res.Fluid != nil {
			fl := res.Report().Fluid
			fmt.Printf("# fluid: flows=%dTCP+%dRAP goodput=%.0fB/s dropped=%.0fB backoffs=%d\n",
				fl.TCPFlows, fl.RAPFlows, fl.GoodputBps, fl.DroppedBytes, fl.Backoffs)
		}

		if *events {
			for _, e := range res.Events {
				fmt.Printf("%8.3f %-8s layer=%d rate=%.0f bufdrop=%.0f buftotal=%.0f poor=%v\n",
					e.Time, e.Kind, e.Layer, e.Rate, e.BufDrop, e.BufTotal, e.PoorDist)
			}
		}
		if *tsv {
			if err := res.Series.WriteTSV(os.Stdout); err != nil {
				fatal(err)
			}
		}
	}

	if *reportPath != "" {
		reps := make([]scenario.RunReport, len(results))
		for i, res := range results {
			reps[i] = res.Report()
		}
		if err := writeReports(*reportPath, reps); err != nil {
			fatal(err)
		}
	}
}

func writeReports(path string, reps []scenario.RunReport) error {
	w := io.Writer(os.Stdout)
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return scenario.WriteReports(w, reps)
}

func parseKmaxes(list string) ([]int, error) {
	var kmaxes []int
	for _, part := range strings.Split(list, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad -kmax value %q: %v", part, err)
		}
		kmaxes = append(kmaxes, k)
	}
	if len(kmaxes) == 0 {
		return nil, fmt.Errorf("-kmax list %q is empty", list)
	}
	return kmaxes, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "qasim:", err)
	os.Exit(1)
}
