// Command qaload drives thousands of concurrent emulated streaming
// clients over loopback against the multi-client server, with the
// fleet's staggered-join logic, and reports goodput, Jain fairness,
// and heap stability. It is the serving-path counterpart of qabench:
// scripts/bench.sh archives its JSON as BENCH_SERVE.json.
//
// By default it spins up an in-process netio.MultiServer on loopback
// and measures the whole serving path end to end; point -addr at an
// external qaserver to load that instead.
//
// Examples:
//
//	qaload -clients 1000 -dur 10s -soak -out BENCH_SERVE.json
//	qaload -clients 64 -dur 8s -batch generic      # unbatched A/B leg
//	qaload -clients 64 -dur 8s -pacer scan         # scan-pump A/B leg
//	qaload -clients 64 -dur 8s -sockets demux      # shared-socket mode
//	qaload -clients 256 -dur 6s -check BENCH_SERVE.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"sync"
	"time"

	"qav/internal/core"
	"qav/internal/netio"
	"qav/internal/rap"
)

// serveBench is the JSON shape archived as BENCH_SERVE.json.
type serveBench struct {
	GoOS      string  `json:"goos"`
	GoArch    string  `json:"goarch"`
	CPUs      int     `json:"cpus"`
	BatchKind string  `json:"batch_kind"`
	Pacer     string  `json:"pacer,omitempty"`
	Sockets   string  `json:"sockets,omitempty"`
	Shards    int     `json:"shards"`
	Clients   int     `json:"clients"`
	DurSec    float64 `json:"dur_sec"`
	PktSize   int     `json:"pkt_size"`
	MaxRate   float64 `json:"max_rate_bps"`

	JoinsPerSec    float64 `json:"joins_per_sec"`
	PktsPerSec     float64 `json:"pkts_per_sec"`
	GoodputBps     float64 `json:"goodput_bps"`
	Jain           float64 `json:"jain"`
	Starved        int     `json:"starved"`
	AllocsPerPkt   float64 `json:"allocs_per_pkt"`
	HeapStartBytes uint64  `json:"heap_start_bytes"`
	HeapEndBytes   uint64  `json:"heap_end_bytes"`

	SrvSent       int64   `json:"srv_sent"`
	SrvAcked      int64   `json:"srv_acked"`
	SrvBadPkts    int64   `json:"srv_bad_pkts"`
	SrvNackDrops  int64   `json:"srv_nack_drops"`
	SrvInboxDrop  int64   `json:"srv_inbox_drops"`
	SrvShardSheds []int64 `json:"srv_shard_sheds,omitempty"`

	// A/B legs recorded when -ab is set: the unbatched fallback, the
	// scan-pump pacer, and (when the primary ran reuseport) the
	// shared-socket demux mode.
	AB      *serveBench `json:"ab_generic,omitempty"`
	ABScan  *serveBench `json:"ab_scan,omitempty"`
	ABDemux *serveBench `json:"ab_demux,omitempty"`
}

// loadOpts is one run's full parameterization.
type loadOpts struct {
	addr    string
	kind    netio.BatchKind
	pacer   netio.PacerKind
	sockets netio.SocketMode
	clients int
	dur     time.Duration
	stagger time.Duration
	shards  int
	c       float64
	kmax    int
	layers  int
	pkt     int
	maxRate float64
}

func main() {
	addr := flag.String("addr", "", "server address to load (empty = in-process MultiServer on loopback)")
	clients := flag.Int("clients", 1000, "concurrent emulated clients")
	dur := flag.Duration("dur", 10*time.Second, "stream duration each client requests")
	stagger := flag.Duration("stagger", time.Second, "join stagger window")
	shards := flag.Int("shards", 0, "server client-table shards (0 = auto)")
	batch := flag.String("batch", "", "batch I/O kind: auto, mmsg, generic")
	pacer := flag.String("pacer", "", "send pacer: wheel (default), scan")
	sockets := flag.String("sockets", "", "socket layout: reuseport (default where available), demux")
	// The defaults are chosen coherent: two layers (2 x 6000 B/s) fit
	// comfortably under the 16000 B/s rate cap, so per-client state
	// reaches a steady layer allocation instead of churning add/drop
	// at the cap forever.
	c := flag.Float64("c", 6_000, "per-layer consumption rate, bytes/s")
	kmax := flag.Int("kmax", 2, "smoothing factor")
	layers := flag.Int("layers", 8, "maximum encoded layers")
	pkt := flag.Int("pkt", 512, "packet size, bytes")
	maxRate := flag.Float64("max-rate", 16_000, "per-client rate cap, bytes/s (0 = none)")
	soak := flag.Bool("soak", false, "assert goodput, fairness, and heap stability; exit nonzero on violation")
	ab := flag.Bool("ab", false, "also run generic-I/O, scan-pacer, and demux-socket legs for A/B comparison (in-process only)")
	out := flag.String("out", "", "write results as JSON (e.g. BENCH_SERVE.json)")
	check := flag.String("check", "", "compare against a recorded BENCH_SERVE.json; exit nonzero on regression")
	memprofile := flag.String("memprofile", "", "write an allocation profile of the run")
	flag.Parse()

	if *memprofile != "" {
		runtime.MemProfileRate = 1
	}

	kind := netio.BatchKind(*batch)
	if *batch == "auto" {
		kind = netio.BatchAuto
	}
	opts := loadOpts{
		addr:    *addr,
		kind:    kind,
		pacer:   netio.PacerKind(*pacer),
		sockets: netio.SocketMode(*sockets),
		clients: *clients,
		dur:     *dur,
		stagger: *stagger,
		shards:  *shards,
		c:       *c,
		kmax:    *kmax,
		layers:  *layers,
		pkt:     *pkt,
		maxRate: *maxRate,
	}

	res, err := runOnce(opts)
	if err != nil {
		fatal(err)
	}
	report(res)

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fatal(err)
		}
		runtime.GC()
		if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
			fatal(err)
		}
		f.Close()
	}

	if *ab {
		if *addr != "" {
			fatal(fmt.Errorf("-ab needs the in-process server (drop -addr)"))
		}
		abLeg := func(name string, mutate func(*loadOpts)) *serveBench {
			o := opts
			mutate(&o)
			fmt.Printf("qaload: A/B leg: %s\n", name)
			leg, err := runOnce(o)
			if err != nil {
				fatal(err)
			}
			report(leg)
			if leg.PktsPerSec > 0 {
				fmt.Printf("qaload: primary %.0f pkts/s vs %s %.0f pkts/s (%.2fx)\n",
					res.PktsPerSec, name, leg.PktsPerSec, res.PktsPerSec/leg.PktsPerSec)
			}
			return leg
		}
		res.AB = abLeg("generic (unbatched) I/O", func(o *loadOpts) { o.kind = netio.BatchGeneric })
		res.ABScan = abLeg("scan pacer", func(o *loadOpts) { o.pacer = netio.PacerScan })
		if res.Sockets == string(netio.SocketReuseport) {
			res.ABDemux = abLeg("demux (shared-socket) mode", func(o *loadOpts) { o.sockets = netio.SocketDemux })
		}
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fatal(err)
		}
		f.Close()
		fmt.Printf("qaload: wrote %s\n", *out)
	}

	if *check != "" {
		if err := checkAgainst(*check, res); err != nil {
			fatal(err)
		}
		fmt.Printf("qaload: within budget of %s\n", *check)
	}

	if *soak {
		if err := soakAssert(res); err != nil {
			fatal(err)
		}
		fmt.Println("qaload: soak assertions passed")
	}
}

// runOnce performs one full load run and gathers the bench record.
func runOnce(o loadOpts) (*serveBench, error) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var srv *netio.MultiServer
	var srvWg sync.WaitGroup
	target := o.addr
	if target == "" {
		mode := o.sockets
		if mode == "" {
			mode = netio.SocketDemux
			if netio.ReuseportAvailable() {
				mode = netio.SocketReuseport
			}
		}
		cfg := netio.MultiConfig{
			QA:        core.Params{C: o.c, Kmax: o.kmax, MaxLayers: o.layers, StartupSec: 0.2},
			RAP:       rap.Config{PacketSize: o.pkt, MaxRate: o.maxRate, InitialRTT: 0.02},
			Shards:    o.shards,
			BatchKind: o.kind,
			Pacer:     o.pacer,
		}
		switch mode {
		case netio.SocketReuseport:
			n := o.shards
			if n <= 0 {
				n = netio.DefaultShards()
			}
			conns, err := netio.ListenReuseport("udp", "127.0.0.1:0", n)
			if err != nil {
				return nil, err
			}
			for _, c := range conns {
				defer c.Close()
			}
			if srv, err = netio.NewMultiServerConns(conns, cfg); err != nil {
				return nil, err
			}
		case netio.SocketDemux:
			conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
			if err != nil {
				return nil, err
			}
			defer conn.Close()
			if srv, err = netio.NewMultiServer(conn, cfg); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("unknown -sockets mode %q", mode)
		}
		srvWg.Add(1)
		go func() {
			defer srvWg.Done()
			srv.Serve(ctx)
		}()
		target = srv.Addr()
		fmt.Printf("qaload: in-process server on %s (%s batch, %s pacer, %s sockets, %d clients x %.0f B/s cap)\n",
			target, srv.BatchKind(), srv.PacerKind(), srv.SocketMode(), o.clients, o.maxRate)
	}

	// Heap sampler: HeapAlloc every 250 ms over the run; start/end
	// medians of the 2nd and 4th quarters summarize stability.
	heap := make([]uint64, 0, 1024)
	var heapMu sync.Mutex
	sampleDone := make(chan struct{})
	go func() {
		t := time.NewTicker(250 * time.Millisecond)
		defer t.Stop()
		var ms runtime.MemStats
		for {
			select {
			case <-sampleDone:
				return
			case <-t.C:
				runtime.ReadMemStats(&ms)
				heapMu.Lock()
				heap = append(heap, ms.HeapAlloc)
				heapMu.Unlock()
			}
		}
	}()

	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	res, err := netio.RunLoad(ctx, netio.LoadConfig{
		Addr:    target,
		Clients: o.clients,
		Dur:     o.dur,
		Stagger: o.stagger,
	})
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms1)
	close(sampleDone)
	cancel()
	srvWg.Wait()
	if err != nil {
		return nil, err
	}

	b := &serveBench{
		GoOS:    runtime.GOOS,
		GoArch:  runtime.GOARCH,
		CPUs:    runtime.NumCPU(),
		Shards:  o.shards,
		Clients: o.clients,
		DurSec:  o.dur.Seconds(),
		PktSize: o.pkt,
		MaxRate: o.maxRate,

		JoinsPerSec: float64(o.clients) / o.stagger.Seconds(),
		PktsPerSec:  float64(res.PktsTotal) / elapsed.Seconds(),
		GoodputBps:  res.GoodputTotal,
		Jain:        res.Jain,
		Starved:     res.Starved,
	}
	if srv != nil {
		b.BatchKind = string(srv.BatchKind())
		b.Pacer = string(srv.PacerKind())
		b.Sockets = string(srv.SocketMode())
		st := srv.Stats()
		b.Shards = len(st.InboxDropsPerShard)
		b.SrvSent = st.SentPkts
		b.SrvAcked = st.AckedPkts
		b.SrvBadPkts = st.BadPackets
		b.SrvNackDrops = st.NackDrops
		b.SrvInboxDrop = st.InboxDrops
		b.SrvShardSheds = st.InboxDropsPerShard
		if st.SentPkts > 0 {
			// Whole-process allocation rate per served packet: with the
			// send loop, batch layer, and load clients all allocation-free
			// at steady state, this stays well under one.
			b.AllocsPerPkt = float64(ms1.Mallocs-ms0.Mallocs) / float64(st.SentPkts)
		}
	} else {
		b.BatchKind = "external"
		if res.PktsTotal > 0 {
			b.AllocsPerPkt = float64(ms1.Mallocs-ms0.Mallocs) / float64(res.PktsTotal)
		}
	}
	heapMu.Lock()
	if n := len(heap); n >= 8 {
		b.HeapStartBytes = medianU64(heap[n/4 : n/2])
		b.HeapEndBytes = medianU64(heap[3*n/4:])
	} else if n > 0 {
		b.HeapStartBytes = heap[0]
		b.HeapEndBytes = heap[n-1]
	}
	heapMu.Unlock()
	return b, nil
}

func report(b *serveBench) {
	fmt.Printf("qaload: %d clients, %.1fs: %.0f pkts/s, goodput %.0f B/s total, jain %.3f, starved %d, %.2f allocs/pkt, heap %.1f->%.1f MB\n",
		b.Clients, b.DurSec, b.PktsPerSec, b.GoodputBps, b.Jain, b.Starved,
		b.AllocsPerPkt, float64(b.HeapStartBytes)/1e6, float64(b.HeapEndBytes)/1e6)
	if b.SrvSent > 0 {
		fmt.Printf("qaload: server sent=%d acked=%d retrans-drops=%d inbox-drops=%d bad=%d\n",
			b.SrvSent, b.SrvAcked, b.SrvNackDrops, b.SrvInboxDrop, b.SrvBadPkts)
	}
}

// soakAssert enforces the soak invariants: everyone was served, service
// was fair, the send path did not allocate per packet, and the heap did
// not creep over the run. In reuseport mode there is no reader->inbox
// hop, so any shed at all is a bug.
func soakAssert(b *serveBench) error {
	if b.Starved > 0 {
		return fmt.Errorf("soak: %d of %d clients starved", b.Starved, b.Clients)
	}
	if b.GoodputBps <= 0 {
		return fmt.Errorf("soak: zero aggregate goodput")
	}
	if b.Jain < 0.5 {
		return fmt.Errorf("soak: Jain fairness %.3f < 0.5", b.Jain)
	}
	if b.AllocsPerPkt > 1.0 {
		return fmt.Errorf("soak: %.2f allocs per served packet (want < 1; the send loop itself must be 0)", b.AllocsPerPkt)
	}
	if b.Sockets == string(netio.SocketReuseport) && b.SrvInboxDrop != 0 {
		return fmt.Errorf("soak: %d inbox sheds in reuseport mode (there are no inboxes to shed)", b.SrvInboxDrop)
	}
	if b.HeapStartBytes > 0 && float64(b.HeapEndBytes) > 1.5*float64(b.HeapStartBytes)+8e6 {
		return fmt.Errorf("soak: heap grew %.1f MB -> %.1f MB over the run",
			float64(b.HeapStartBytes)/1e6, float64(b.HeapEndBytes)/1e6)
	}
	return nil
}

// checkAgainst compares throughput per client against a recorded run,
// with a 35% budget (loopback throughput is host-relative; this is the
// same advisory role as qabench -check).
func checkAgainst(path string, cur *serveBench) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var rec serveBench
	if err := json.Unmarshal(data, &rec); err != nil {
		return fmt.Errorf("parse %s: %w", path, err)
	}
	if rec.Clients <= 0 || rec.PktsPerSec <= 0 {
		return fmt.Errorf("%s: no recorded pkts/sec to compare", path)
	}
	recPer := rec.PktsPerSec / float64(rec.Clients)
	curPer := cur.PktsPerSec / float64(cur.Clients)
	if curPer < 0.65*recPer {
		return fmt.Errorf("pkts/sec/client %.1f fell below 65%% of recorded %.1f", curPer, recPer)
	}
	if cur.AllocsPerPkt > 1.0 {
		return fmt.Errorf("allocs per packet %.2f regressed (recorded %.2f)", cur.AllocsPerPkt, rec.AllocsPerPkt)
	}
	return nil
}

func medianU64(v []uint64) uint64 {
	if len(v) == 0 {
		return 0
	}
	s := append([]uint64(nil), v...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[len(s)/2]
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "qaload:", err)
	os.Exit(1)
}
