package qav_test

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"qav"
)

func TestFacadeSimulate(t *testing.T) {
	cfg := qav.SingleQA(2)
	cfg.Duration = 20
	res, err := qav.Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.PlayedSec < 10 {
		t.Fatalf("played only %.1fs", res.PlayedSec)
	}
	if hi, ok := res.Series.Get("qa.layers").Max(); !ok || hi < 2 {
		t.Fatal("never reached two layers")
	}
}

func TestFacadeSimulateAll(t *testing.T) {
	mk := func(kmax int) qav.SimConfig {
		cfg := qav.SingleQA(kmax)
		cfg.Duration = 15
		return cfg
	}
	cfgs := []qav.SimConfig{mk(2), mk(4)}
	results, err := qav.SimulateAll(cfgs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results, want 2", len(results))
	}
	for i, res := range results {
		if res.Cfg.QA.Kmax != cfgs[i].QA.Kmax {
			t.Fatalf("result %d has Kmax %d, want %d: ordering lost", i, res.Cfg.QA.Kmax, cfgs[i].QA.Kmax)
		}
		if res.PlayedSec < 5 {
			t.Fatalf("run %d played only %.1fs", i, res.PlayedSec)
		}
	}
	// Determinism across the pool: same config, same outcome.
	single, err := qav.Simulate(cfgs[0])
	if err != nil {
		t.Fatal(err)
	}
	if single.PlayedSec != results[0].PlayedSec || single.StallSec != results[0].StallSec {
		t.Fatalf("pooled run diverged from direct run: (%v,%v) vs (%v,%v)",
			results[0].PlayedSec, results[0].StallSec, single.PlayedSec, single.StallSec)
	}
}

func TestFacadeControllerIntegration(t *testing.T) {
	// A downstream user integrating the controller with a custom
	// transport uses exactly these four calls.
	ctrl, err := qav.NewController(qav.Params{C: 1000, Kmax: 2, MaxLayers: 4, StartupSec: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	now := 0.0
	for i := 0; i < 5000; i++ {
		layer := ctrl.PickLayer(now, 3500, 20_000, 500)
		ctrl.OnDelivered(now, layer, 500)
		now += 500.0 / 3500
	}
	if ctrl.ActiveLayers() < 3 {
		t.Fatalf("controller reached only %d layers", ctrl.ActiveLayers())
	}
	// Collapse to a tenth of a layer with a glacial recovery slope: the
	// recovery triangle dwarfs any accumulated buffering.
	ctrl.OnBackoff(now, 100, 2)
	if ctrl.ActiveLayers() >= 3 {
		t.Fatal("catastrophic backoff did not shed layers")
	}
}

func TestFacadeUDPEndToEnd(t *testing.T) {
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	srv, err := qav.NewServer(conn, qav.ServerConfig{
		QA:  qav.Params{C: 10_000, Kmax: 2, MaxLayers: 4, StartupSec: 0.2},
		RAP: qav.RAPConfig{PacketSize: 512, InitialRTT: 0.02, MaxRate: 100_000},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		srv.Serve(ctx)
	}()

	stats, err := qav.DialStream(ctx, srv.Addr(), 2*time.Second)
	cancel()
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Packets == 0 || stats.ByLayer[0] == 0 {
		t.Fatalf("no layered data received: %+v", stats)
	}
}

func TestFacadePresets(t *testing.T) {
	t1 := qav.T1(3, 1)
	if t1.QA.Kmax != 3 || !t1.WithQA || t1.NumTCP != 10 {
		t.Fatalf("T1 preset wrong: %+v", t1)
	}
	t2 := qav.T2(4, 1)
	if t2.CBRRate != t2.BottleneckRate/2 || t2.CBRStart != 30 || t2.CBRStop != 60 {
		t.Fatalf("T2 preset wrong: %+v", t2)
	}
	if qav.SingleRAP().NumRAP != 1 {
		t.Fatal("SingleRAP preset wrong")
	}
}
