// Heterogeneous clients: the paper's motivating scenario (§1.2) over
// real UDP sockets. One server streams the same layered content to
// clients behind very different emulated access links — a modem-class
// path, a DSL-class path, and a LAN-class path — and each receives the
// quality its bandwidth permits, from the same encoding, with no
// re-encoding and no per-client configuration.
//
//	go run ./examples/heterogeneous
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"qav"
)

func main() {
	paths := []struct {
		name string
		down qav.PipeConfig
	}{
		{"modem (8 KB/s, 100ms)", qav.PipeConfig{Rate: 8_000, Delay: 50 * time.Millisecond, QueueBytes: 4 << 10}},
		{"dsl (40 KB/s, 30ms)", qav.PipeConfig{Rate: 40_000, Delay: 15 * time.Millisecond, QueueBytes: 12 << 10}},
		{"lan (200 KB/s, 4ms)", qav.PipeConfig{Rate: 200_000, Delay: 2 * time.Millisecond, QueueBytes: 32 << 10}},
	}

	fmt.Println("heterogeneous: one layered server, three client access links (C = 4 KB/s per layer)")
	for i, path := range paths {
		conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
		if err != nil {
			log.Fatal(err)
		}
		srv, err := qav.NewServer(conn, qav.ServerConfig{
			QA:  qav.Params{C: 4_000, Kmax: 2, MaxLayers: 8, StartupSec: 0.3},
			RAP: qav.RAPConfig{PacketSize: 512, InitialRTT: 0.05},
		})
		if err != nil {
			log.Fatal(err)
		}

		pipe, err := qav.NewPipe("127.0.0.1:0", srv.Addr(), qav.PipeConfig{}, path.down, int64(i)+1)
		if err != nil {
			log.Fatal(err)
		}

		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			srv.Serve(ctx)
		}()

		stats, err := qav.DialStream(ctx, pipe.Addr(), 6*time.Second)
		cancel()
		wg.Wait()
		pipe.Close()
		conn.Close()
		if err != nil {
			log.Fatalf("%s: %v", path.name, err)
		}

		goodput := float64(stats.Bytes) / stats.LastArrival.Seconds()
		fmt.Printf("\n  %-22s goodput %7.0f B/s, highest layer %d\n",
			path.name, goodput, stats.HighestLayer)
		for l := 0; l <= stats.HighestLayer && l < len(stats.ByLayer); l++ {
			share := float64(stats.ByLayer[l]) / float64(stats.Bytes) * 100
			fmt.Printf("    layer %d: %7d bytes (%4.1f%%)\n", l, stats.ByLayer[l], share)
		}
	}
	fmt.Println("\neach client got the quality its own bottleneck permits — the paper's §1.2 goal.")
}
