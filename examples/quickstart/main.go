// Quickstart: stream one quality-adaptive flow over a simulated 12 KB/s
// bottleneck and watch the controller add layers, buffer for backoffs,
// and keep playback running.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"qav"
)

func main() {
	// A single QA flow, alone on a small link: C = 3 KB/s per layer, so
	// roughly three layers fit the 12 KB/s bottleneck with headroom for
	// buffering.
	cfg := qav.SingleQA(2 /* Kmax */)
	cfg.Duration = 60

	res, err := qav.Simulate(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("quickstart: 60 simulated seconds of adaptive playback")
	fmt.Printf("  average transmission rate: %8.0f B/s\n", res.Series.Get("qa.rate").Avg())
	fmt.Printf("  average active layers:     %8.2f\n", res.Series.Get("qa.layers").Avg())
	fmt.Printf("  played %.1f s with %.2f s of stalls\n", res.PlayedSec, res.StallSec)
	fmt.Printf("  congestion backoffs absorbed: %d\n", res.Stats.Backoffs)
	fmt.Printf("  layer adds/drops: %d/%d (buffering efficiency %.1f%%)\n",
		res.Stats.Adds, res.Stats.Drops, 100*res.Stats.AvgEfficiency)

	fmt.Println("\n  adaptation timeline:")
	for _, e := range res.Events {
		switch e.Kind {
		case qav.EvPlayStart, qav.EvAddLayer, qav.EvDropLayer, qav.EvStallStart, qav.EvStallEnd:
			fmt.Printf("  %7.2fs  %-7s layer=%d rate=%.0f B/s\n", e.Time, e.Kind, e.Layer, e.Rate)
		}
	}
}
