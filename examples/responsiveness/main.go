// Responsiveness: reproduce the paper's Fig 13 experiment — a CBR
// source at half the bottleneck bandwidth switches on at t=30s and off
// at t=60s; the quality-adaptive flow must shed layers quickly, protect
// the base layer, and recover afterwards.
//
//	go run ./examples/responsiveness
package main

import (
	"fmt"
	"log"
	"strings"

	"qav"
)

func main() {
	cfg := qav.T2(4, 8) // Kmax=4, paper-axis scale
	res, err := qav.Simulate(cfg)
	if err != nil {
		log.Fatal(err)
	}

	layers := res.Series.Get("qa.layers")
	fmt.Println("responsiveness: CBR burst at half the bottleneck, 30s-60s (Kmax=4)")
	fmt.Printf("  avg layers before burst (15-30s): %.2f\n", layers.AvgBetween(15, 30))
	fmt.Printf("  avg layers during burst (40-60s): %.2f\n", layers.AvgBetween(40, 60))
	fmt.Printf("  avg layers after burst  (75-90s): %.2f\n", layers.AvgBetween(75, 90))
	fmt.Printf("  playback stalls: %.2fs (base layer must never be jeopardized)\n", res.StallSec)

	// A low-fi strip chart of the layer count over time.
	fmt.Println("\n  layers over time (each column = 1s, height = active layers):")
	maxLayers, _ := layers.Max()
	maxL := int(maxLayers)
	for row := maxL; row >= 1; row-- {
		var b strings.Builder
		fmt.Fprintf(&b, "  %2d |", row)
		for sec := 0; sec < int(cfg.Duration); sec++ {
			v := layers.AvgBetween(float64(sec), float64(sec+1))
			if v >= float64(row)-0.5 {
				b.WriteByte('#')
			} else {
				b.WriteByte(' ')
			}
		}
		fmt.Println(b.String())
	}
	fmt.Printf("      +%s\n", strings.Repeat("-", int(cfg.Duration)))
	fmt.Println("       0s        burst on (30s)      burst off (60s)      90s")
}
