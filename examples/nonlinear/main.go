// Nonlinear: the paper's §7 future work, computed — optimal inter-layer
// buffer allocation when enhancement layers have unequal (here
// exponentially spaced) rates. Shows the buffer-requirement ladder for
// a linear codec and an exponential one side by side: the geometry is
// the same, but the exponential codec concentrates even more protection
// on the cheap low layers.
//
//	go run ./examples/nonlinear
package main

import (
	"fmt"

	"qav/internal/core"
)

func main() {
	const (
		R = 60_000.0 // transmission rate before backoff, B/s
		S = 25_000.0 // AIMD recovery slope, B/s²
	)
	linear := []float64{10_000, 10_000, 10_000, 10_000}
	expo := []float64{5_000, 7_500, 11_250, 16_875} // 1.5x spacing, same total

	fmt.Println("nonlinear: optimal buffer ladders at R=60 KB/s, S=25 KB/s²")
	for _, cfg := range []struct {
		name  string
		rates []float64
	}{{"linear 4x10 KB/s", linear}, {"exponential 5/7.5/11.25/16.9 KB/s", expo}} {
		fmt.Printf("\n  %s (total %.0f B/s):\n", cfg.name, core.TotalRateN(cfg.rates))
		fmt.Printf("    %-4s %-5s %-10s %s\n", "scen", "k", "total(B)", "per-layer targets (B)")
		for _, st := range core.StateLadderN(R, cfg.rates, 1, 4, S) {
			fmt.Printf("    s%-3d k=%-3d %-10.0f %v\n", st.Scen, st.K, st.Total, ints(st.Layer))
		}
	}

	fmt.Println("\n  drop rule after a collapse to R=14 KB/s with empty buffers:")
	fmt.Printf("    linear:      drop %d of 4 layers (survivors consume 10 KB/s)\n",
		core.DropCountN(14_000, linear, make([]float64, 4), S))
	fmt.Printf("    exponential: drop %d of 4 layers (survivors consume 12.5 KB/s)\n",
		core.DropCountN(14_000, expo, make([]float64, 4), S))
	fmt.Println("\nthe exponential codec's cheap low layers pack closer to the")
	fmt.Println("post-backoff rate, so fewer layers are shed and less quality lost.")
}

func ints(xs []float64) []int64 {
	out := make([]int64, len(xs))
	for i, x := range xs {
		out[i] = int64(x)
	}
	return out
}
