// Smoothing: sweep the paper's smoothing factor Kmax over the shared
// -bottleneck test T1 and show the tradeoff of §3.1 — higher Kmax means
// more receiver buffering and fewer disturbing quality changes, at the
// cost of taking longer to reach the best short-term quality.
//
//	go run ./examples/smoothing
package main

import (
	"fmt"
	"log"

	"qav"
)

func main() {
	fmt.Println("smoothing: T1 (QA + 9 RAP + 10 TCP flows) for Kmax in {1, 2, 4, 8}")
	fmt.Printf("%-6s %-16s %-14s %-16s %-12s %-10s\n",
		"Kmax", "quality changes", "avg layers", "avg buffering", "efficiency", "stalls")

	for _, kmax := range []int{1, 2, 4, 8} {
		cfg := qav.T1(kmax, 8) // paper-axis scale: C = 10 KB/s
		cfg.Duration = 90
		res, err := qav.Simulate(cfg)
		if err != nil {
			log.Fatal(err)
		}
		changes := res.Stats.Adds + res.Stats.Drops
		fmt.Printf("%-6d %-16d %-14.2f %8.0f bytes  %9.2f%%  %7.2fs\n",
			kmax,
			changes,
			res.Series.Get("qa.layers").AvgBetween(30, cfg.Duration),
			res.Series.Get("qa.buftotal").AvgBetween(30, cfg.Duration),
			100*res.Stats.AvgEfficiency,
			res.StallSec,
		)
	}
	fmt.Println("\npaper's claim (Fig 12): higher Kmax buffers more and changes quality less.")
}
