// Benchmarks regenerating every table and figure in the paper's
// evaluation (§5), plus micro-benchmarks of the core algorithms and the
// ablations called out in DESIGN.md. Each figure benchmark runs the full
// scenario and reports the headline quantities as custom metrics, so
//
//	go test -bench=. -benchmem
//
// both exercises the harness and prints the reproduced numbers.
package qav

import (
	"fmt"
	"sync"
	"testing"

	"qav/internal/core"
	"qav/internal/figures"
	"qav/internal/metrics"
	"qav/internal/rap"
	"qav/internal/scenario"
	"qav/internal/sim"
	"qav/internal/tcp"
	"qav/internal/transport"
)

// BenchmarkFigure1 regenerates Fig 1: the sawtooth transmission rate of
// a single RAP flow hunting around the bottleneck bandwidth.
func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := figures.Figure1()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Get("avg_rate"), "B/s_avg-rate")
		b.ReportMetric(res.Get("backoffs"), "backoffs")
	}
}

// BenchmarkFigure2 regenerates Fig 2: filling and draining phases with
// receiver buffering on a single quality-adaptive flow.
func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := figures.Figure2()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Get("max_layers"), "layers_max")
		b.ReportMetric(res.Get("backoffs"), "backoffs")
		b.ReportMetric(res.Get("stall_sec"), "s_stalled")
	}
}

// BenchmarkFigure11 regenerates Fig 11: the first 40 seconds of the T1
// trace at Kmax=2 — rates, per-layer breakdown, drain rates, buffers.
func BenchmarkFigure11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := figures.Figure11(2, figures.DefaultScale)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Get("avg_layers"), "layers_avg")
		b.ReportMetric(res.Get("buf_l0_avg"), "B_buf-l0")
		b.ReportMetric(res.Get("buf_l3_avg"), "B_buf-l3")
		b.ReportMetric(res.Get("stall_sec"), "s_stalled")
	}
}

// BenchmarkFigure12 regenerates Fig 12: the effect of Kmax in {2,3,4} on
// buffering and the number of quality changes. The three runs execute on
// the parallel sweep runner.
func BenchmarkFigure12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := figures.Figure12(figures.DefaultScale, 0)
		if err != nil {
			b.Fatal(err)
		}
		for _, k := range []int{2, 3, 4} {
			b.ReportMetric(res.Get(fname("kmax%d.changes", k)), fname("changes_k%d", k))
			b.ReportMetric(res.Get(fname("kmax%d.buf_avg", k)), fname("B_buf_k%d", k))
		}
	}
}

// BenchmarkFigure13 regenerates Fig 13: responsiveness to a CBR source
// at half the bottleneck bandwidth (on at 30s, off at 60s), Kmax=4.
func BenchmarkFigure13(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := figures.Figure13(figures.DefaultScale)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Get("layers_before"), "layers_before")
		b.ReportMetric(res.Get("layers_during"), "layers_during")
		b.ReportMetric(res.Get("layers_after"), "layers_after")
		b.ReportMetric(res.Get("stall_sec"), "s_stalled")
	}
}

// BenchmarkTable1 regenerates Table 1: average buffering efficiency e
// over drop events for Kmax in {2,3,4,5,8} on tests T1 and T2.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cells, _, err := figures.TablesSweep(nil, figures.DefaultScale, 0)
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range cells {
			if c.Drops > 0 {
				b.ReportMetric(100*c.AvgEfficiency, fname("pct_eff_%s_k%d", c.Test, c.Kmax))
			}
		}
	}
}

// BenchmarkTable2 regenerates Table 2: the percentage of layer drops
// caused by poor inter-layer buffer distribution.
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cells, _, err := figures.TablesSweep(nil, figures.DefaultScale, 0)
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range cells {
			if c.Drops > 0 {
				b.ReportMetric(c.PoorDistPct, fname("pct_poor_%s_k%d", c.Test, c.Kmax))
			}
		}
	}
}

// BenchmarkTablesSweep runs the full 10-simulation Table 1/2 sweep
// sequentially (workers=1) and on the parallel runner (workers=CPUs), so
// `go test -bench TablesSweep` shows the wall-clock speedup directly.
// Both variants produce identical TableCell values (see
// figures.TestTablesSweepParallelMatchesSequential and
// scenario.TestRunAllMatchesSequential).
func BenchmarkTablesSweep(b *testing.B) {
	for _, bc := range []struct {
		name    string
		workers int
	}{
		{"sequential", 1},
		{"parallel", 0},
	} {
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := figures.TablesSweep(nil, figures.DefaultScale, bc.workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationDropTailVsRED compares the bottleneck queue
// disciplines (the paper's future-work variant): loss clustering under
// DropTail vs RED and its effect on the QA flow's quality changes. The
// two variants are independent runs and execute on the parallel runner.
func BenchmarkAblationDropTailVsRED(b *testing.B) {
	names := []string{"droptail", "red"}
	cfgs := make([]scenario.Config, len(names))
	for i, red := range []bool{false, true} {
		cfg := scenario.MustPreset("T1", scenario.WithKmax(2), scenario.WithScale(figures.DefaultScale))
		cfg.Duration = 60
		cfg.UseRED = red
		cfgs[i] = cfg
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, err := scenario.RunAll(cfgs, 0)
		if err != nil {
			b.Fatal(err)
		}
		for j, res := range results {
			b.ReportMetric(float64(res.Stats.Adds+res.Stats.Drops), fname("changes_%s", names[j]))
			b.ReportMetric(100*res.Stats.AvgEfficiency, fname("pct_eff_%s", names[j]))
			b.ReportMetric(res.Series.Get("qa.layers").AvgBetween(20, 60), fname("layers_avg_%s", names[j]))
		}
	}
}

// BenchmarkAblationAllocation compares the paper's optimal inter-layer
// buffer allocation against §2.3's two strawmen under T2's CBR stress,
// all three variants concurrently on the parallel runner.
func BenchmarkAblationAllocation(b *testing.B) {
	allocs := []core.Allocation{core.AllocOptimal, core.AllocEqual, core.AllocBase}
	cfgs := make([]scenario.Config, len(allocs))
	for i, alloc := range allocs {
		cfg := scenario.MustPreset("T2", scenario.WithKmax(3), scenario.WithScale(figures.DefaultScale))
		cfg.QA.Alloc = alloc
		cfgs[i] = cfg
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, err := scenario.RunAll(cfgs, 0)
		if err != nil {
			b.Fatal(err)
		}
		for j, res := range results {
			b.ReportMetric(100*res.Stats.AvgEfficiency, fname("pct_eff_%s", allocs[j]))
			b.ReportMetric(res.Stats.PoorDistPct, fname("pct_poor_%s", allocs[j]))
			b.ReportMetric(res.StallSec, fname("s_stalled_%s", allocs[j]))
		}
	}
}

// BenchmarkFleet measures simulation throughput at population scale: the
// Fleet preset (half QA, half Sack-TCP on one dumbbell, fair share held
// constant as the population grows) at 10, 100 and 1000 flows. Each run
// is instrumented, and the headline numbers are simulated events and
// bottleneck packets pushed per wall-clock second. The 1000-map variant
// runs the identical workload on the reference map scoreboards, so the
// windowed-bitmap speedup is visible as an events/sec and packets/sec
// ratio on the same line (the dynamics are bit-identical; see
// scenario.TestFleetDeterministicAcrossWorkersAndSchedulers).
func BenchmarkFleet(b *testing.B) {
	for _, bc := range []struct {
		name  string
		flows int
		board tcp.ScoreboardKind
	}{
		{"10", 10, tcp.BoardWindowed},
		{"100", 100, tcp.BoardWindowed},
		{"1000", 1000, tcp.BoardWindowed},
		{"1000-map", 1000, tcp.BoardMap},
	} {
		b.Run(bc.name, func(b *testing.B) {
			cfg := scenario.MustPreset("Fleet",
				scenario.WithFlows(bc.flows), scenario.WithScale(figures.DefaultScale))
			cfg.Duration = 5
			cfg.Board = bc.board
			var events, packets int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c := cfg
				c.Metrics = metrics.NewRegistry()
				res, err := scenario.Run(c)
				if err != nil {
					b.Fatal(err)
				}
				snap := res.Metrics.Snapshot()
				events += snap.Counters["sim.events.executed"]
				packets += snap.Counters["link.tx.packets"]
			}
			if sec := b.Elapsed().Seconds(); sec > 0 {
				b.ReportMetric(float64(events)/sec, "events/sec")
				b.ReportMetric(float64(packets)/sec, "packets/sec")
			}
		})
	}
}

// BenchmarkPickLayer measures the per-packet fine-grain allocation cost
// (the hot path of a streaming server).
func BenchmarkPickLayer(b *testing.B) {
	ctrl, err := core.NewController(core.Params{C: 10_000, Kmax: 2, MaxLayers: 8})
	if err != nil {
		b.Fatal(err)
	}
	now := 0.0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		layer := ctrl.PickLayer(now, 60_000, 25_000, 512)
		ctrl.OnDelivered(now, layer, 512)
		now += 512.0 / 60_000
	}
}

// BenchmarkStateLadder measures building the maximally efficient state
// sequence (runs on every draining-phase replan).
func BenchmarkStateLadder(b *testing.B) {
	for i := 0; i < b.N; i++ {
		core.StateLadder(60_000, 6, 0, 8, 10_000, 25_000)
	}
}

// BenchmarkFillTarget measures the per-packet SendPacket scan.
func BenchmarkFillTarget(b *testing.B) {
	bufs := []float64{9000, 6000, 3000, 800, 0, 0}
	for i := 0; i < b.N; i++ {
		core.FillTarget(60_000, bufs, 10_000, 25_000, 8)
	}
}

// BenchmarkDrainPlan measures the reverse-path drain allocation.
func BenchmarkDrainPlan(b *testing.B) {
	ladder := core.StateLadder(40_000, 6, 0, 8, 10_000, 25_000)
	bufs := []float64{9000, 6000, 3000, 800, 200, 50}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.DrainPlan(ladder, bufs, 1500, 500)
	}
}

// BenchmarkSimulator measures raw event throughput of the discrete-event
// engine with a saturated link, packets drawn from the engine's pool the
// way real sources do. The engine and link run fully instrumented: this
// is the number the CI alloc-smoke step holds to a 0 steady-state
// allocs/op, ≤5% ns/op budget against BENCH_PR2.json, so metrics must
// stay free on the per-packet path.
func BenchmarkSimulator(b *testing.B) {
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine()
		q := sim.NewDropTail(1 << 16)
		l := sim.NewLink(eng, q, 1e6, 0.001)
		reg := metrics.NewRegistry()
		eng.Instrument(reg)
		l.Instrument(reg)
		sink := sim.ReceiverFunc(func(p *sim.Packet) {})
		var feed func()
		n := 0
		feed = func() {
			if n >= 10_000 {
				return
			}
			n++
			p := eng.Pool().Get()
			p.Seq, p.Size, p.Dst = int64(n), 512, sink
			l.Offer(p)
			eng.After(0.0004, feed)
		}
		eng.At(0, feed)
		eng.Run()
	}
}

// schedTrace is the event-queue churn of one real Figure 11 run (T1,
// Kmax=2, 40 simulated seconds): every schedule and dequeue the engine
// issued, in execution order. Recorded once and shared by the
// BenchmarkScheduler variants so both replay the identical workload.
var (
	schedTraceOnce sync.Once
	schedTrace     []sim.SchedOp
	schedTraceErr  error
)

func loadSchedTrace() ([]sim.SchedOp, error) {
	schedTraceOnce.Do(func() {
		rec := &sim.SchedRecorder{}
		cfg := scenario.MustPreset("T1", scenario.WithKmax(2), scenario.WithScale(figures.DefaultScale))
		cfg.Duration = 40
		cfg.SchedRec = rec
		if _, err := scenario.Run(cfg); err != nil {
			schedTraceErr = err
			return
		}
		schedTrace = rec.Ops
	})
	return schedTrace, schedTraceErr
}

// BenchmarkScheduler replays the recorded Figure 11 churn trace against
// each pending-event structure in isolation: the container/heap
// reference vs the calendar queue the engine now defaults to. Same ops,
// same times, same live depths — the difference is purely the
// structure's schedule/dequeue cost.
func BenchmarkScheduler(b *testing.B) {
	ops, err := loadSchedTrace()
	if err != nil {
		b.Fatal(err)
	}
	pushes := 0
	for _, op := range ops {
		if op.Kind == sim.SchedPush {
			pushes++
		}
	}
	for _, kind := range []sim.SchedulerKind{sim.SchedHeap, sim.SchedCalendar} {
		b.Run(string(kind), func(b *testing.B) {
			b.ReportAllocs()
			b.ReportMetric(float64(pushes), "events/replay")
			for i := 0; i < b.N; i++ {
				if got := sim.ReplaySched(kind, ops); got == 0 {
					b.Fatal("replay popped no events")
				}
			}
		})
	}
}

// TestAllocFreeSteadyStateCrossTraffic is the tentpole's end-to-end
// invariant: a dumbbell with a DropTail bottleneck carrying RAP and
// Sack-TCP cross traffic runs allocation-free at steady state — with
// every layer fully instrumented (engine, link + per-flow delay
// histograms, RAP, TCP), so each record site is covered by the zero
// budget. Rates are capped below the bottleneck so the measured window
// is loss-free — loss handling (Backoff records, scoreboard growth) is
// allowed to allocate; the per-packet send/enqueue/deliver/ack cycle is
// not.
func TestAllocFreeSteadyStateCrossTraffic(t *testing.T) {
	eng := sim.NewEngine()
	net := sim.NewDumbbell(eng, sim.DumbbellConfig{
		Rate: 125_000, Delay: 0.01, AccessDelay: 0.005, QueueBytes: 1 << 16,
	})
	rapSrc := scenario.NewRAPSource(eng, net, 1, transport.NewRAP(rap.Config{
		PacketSize: 512, MaxRate: 30_000, InitialRTT: 0.04,
	}), 0)
	tcpSrc := tcp.NewSource(eng, net, tcp.Config{
		FlowID: 2, PacketSize: 512, MaxCwnd: 8, InitialRTT: 0.04,
	})
	reg := metrics.NewRegistry()
	net.Instrument(reg)
	net.Bneck.InstrumentFlows(reg, 3)
	rapSrc.Tr.Instrument(reg, "rap", transport.NewInstruments(reg, "rap"))
	tcpSrc.Instrument(reg, "tcp", tcp.NewInstruments(reg, "tcp"))
	// Warm up past slow start and the AIMD ramp so maps, rings, the
	// event free list, and the packet pool all reach their high-water
	// marks.
	eng.RunUntil(30)
	allocs := testing.AllocsPerRun(50, func() {
		eng.RunUntil(eng.Now() + 0.5)
	})
	if allocs != 0 {
		t.Fatalf("steady-state RAP+TCP cross traffic allocates %.1f times per 0.5s slice, want 0", allocs)
	}
	if rapSrc.Tr.Counters().Lost != 0 || tcpSrc.RetransPkts != 0 {
		t.Fatalf("measurement window saw loss (rap=%d tcp=%d retrans); rates are miscapped and the test is measuring the loss path",
			rapSrc.Tr.Counters().Lost, tcpSrc.RetransPkts)
	}
	if rapSrc.Tr.Counters().Acked == 0 || tcpSrc.AckedPkts == 0 {
		t.Fatal("no traffic flowed; test is vacuous")
	}
	// Every instrumented record site must actually have fired during the
	// measured window — otherwise the zero-alloc budget is vacuous.
	snap := reg.Snapshot()
	for _, name := range []string{
		"queue.delay", "queue.delay.f1", "queue.delay.f2",
		"rap.srtt", "rap.ackgap", "tcp.srtt",
	} {
		if snap.Histograms[name].Count == 0 {
			t.Errorf("histogram %q recorded nothing; the alloc budget did not cover its record site", name)
		}
	}
}

func fname(format string, args ...any) string {
	return fmt.Sprintf(format, args...)
}

// BenchmarkAblationFineGrainRAP compares RAP-vs-TCP bandwidth sharing
// with and without RAP's fine-grain inter-ACK adaptation (the variant
// the paper sets aside), both runs concurrently on the parallel runner.
// Fine grain eases off as queues build, which narrows the RAP:TCP
// goodput ratio.
func BenchmarkAblationFineGrainRAP(b *testing.B) {
	names := []string{"coarse", "finegrain"}
	cfgs := make([]scenario.Config, len(names))
	for i, fg := range []bool{false, true} {
		cfg := scenario.MustPreset("T1", scenario.WithKmax(2), scenario.WithScale(figures.DefaultScale))
		cfg.Duration = 60
		cfg.FineGrainRAP = fg
		cfgs[i] = cfg
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, err := scenario.RunAll(cfgs, 0)
		if err != nil {
			b.Fatal(err)
		}
		for j, res := range results {
			var rapG, tcpG int64
			for _, r := range res.RAPSrcs {
				rapG += r.RecvBytes
			}
			for _, s := range res.TCPSrcs {
				tcpG += s.GoodputBytes()
			}
			rapAvg := float64(rapG) / float64(len(res.RAPSrcs))
			tcpAvg := float64(tcpG) / float64(len(res.TCPSrcs))
			b.ReportMetric(rapAvg/tcpAvg, fname("rap/tcp_ratio_%s", names[j]))
			b.ReportMetric(res.Series.Get("qa.layers").AvgBetween(20, 60), fname("layers_avg_%s", names[j]))
		}
	}
}
