package scenario

import (
	"fmt"

	"qav/internal/sim"
	"qav/internal/tcp"
	"qav/internal/trace"
)

// This file is the scenario layer's sharded execution path: the same
// simulation as the serial Run, partitioned across cfg.Shards engines
// (sim.ShardedDumbbell) purely for wall-clock speed. The contract —
// enforced by the differential suite in sharded_test.go — is that a
// run at any shard count produces the identical RunReport and trace
// series, bit for bit. Three pieces make that hold:
//
//   - Flows are placed round-robin (flowID % flowShards) but
//     constructed in exactly the serial order, so flows starting at the
//     same staggered instant fire in flow-ID order on their shards just
//     as they would interleave serially (cross-flow ordering only
//     matters at the shared bottleneck, where the mailbox merge
//     restores it; see sim.ShardedDumbbell).
//
//   - Sampling is distributed: each shard ticks its own QA controllers
//     and writes its own flows' trace series on the exact serial tick
//     recurrence (t += Δ while t+Δ <= Duration), the bottleneck shard
//     writes queue.bytes, and every series keeps a single writer. All
//     series are created before Run, in the serial sampler's creation
//     order, because trace.Set orders its TSV output by creation.
//
//   - Fleet aggregates sum per-flow floats, and float addition is not
//     associative — so shards never partial-sum. Each ticker parks its
//     flows' per-tick values in a scratch ring indexed by global flow
//     position, and the coordinator folds them in global flow order at
//     each barrier: the identical additions, in the identical order,
//     as the serial sampler's loop over the sources.

// runSharded executes an already-normalized config across cfg.Shards
// engines. Run dispatches here for Shards > 1.
func runSharded(cfg Config) (*Result, error) {
	if cfg.SchedRec != nil {
		return nil, fmt.Errorf("scenario: SchedRec capture needs the serial engine (Shards <= 1)")
	}
	if cfg.AccessDelay <= 0 || cfg.LinkDelay <= 0 {
		return nil, fmt.Errorf("scenario: Shards > 1 needs positive AccessDelay and LinkDelay (they bound the conservative lookahead)")
	}
	flowShards := cfg.Shards - 1 // one engine is the bottleneck's

	var queueFn func(*sim.Engine) sim.Queue
	if cfg.UseRED {
		queueFn = func(e *sim.Engine) sim.Queue {
			return sim.NewRED(sim.REDConfig{
				LimitBytes:  cfg.QueueBytes,
				MeanPktSize: cfg.PacketSize,
				Seed:        cfg.REDSeed,
				// The RED average decays against the bottleneck shard's
				// clock, exactly as it does against the serial engine's.
				Now:      e.Now,
				LinkRate: cfg.BottleneckRate,
			})
		}
	}
	// Hybrid runs wrap the bottleneck queue in the shared-buffer
	// coupling exactly as the serial path does; the wrapper (and the
	// fluid aggregate below) live on the bottleneck shard, whose engine
	// owns the link and queue.
	var fq *sim.FluidQueue
	if cfg.FluidTCP+cfg.FluidRAP > 0 {
		innerFn := queueFn
		queueFn = func(e *sim.Engine) sim.Queue {
			var inner sim.Queue
			if innerFn != nil {
				inner = innerFn(e)
			} else {
				inner = sim.NewDropTail(cfg.QueueBytes)
			}
			fq = sim.NewFluidQueue(inner, cfg.QueueBytes)
			return fq
		}
	}
	d := sim.NewShardedDumbbell(flowShards, sim.DumbbellConfig{
		Rate:        cfg.BottleneckRate,
		Delay:       cfg.LinkDelay,
		AccessDelay: cfg.AccessDelay,
		QueueBytes:  cfg.QueueBytes,
	}, cfg.Sched, queueFn)
	baseRTT := d.BaseRTT()

	res := &Result{Cfg: cfg, Series: trace.NewSet(), Metrics: cfg.Metrics}
	if fq != nil {
		// Before any flow, matching the serial construction order.
		res.Fluid = newFluid(&cfg, d.BneckEngine(), d.Bneck(), fq, baseRTT)
	}
	nflows, err := buildFlows(cfg, res, baseRTT, func(flowID int) (*sim.Engine, sim.Network) {
		s := flowID % flowShards
		d.AssignFlow(flowID, s)
		return d.FlowEngine(s), d.FlowNet(s)
	})
	if err != nil {
		return nil, err
	}

	if reg := cfg.Metrics; reg != nil {
		d.Instrument(reg)
		d.Bneck().InstrumentFlows(reg, nflows)
		instrumentSources(reg, res)
		instrumentFluid(reg, res)
	}
	atBarrier := startShardedSampler(d, cfg, res)

	d.Run(cfg.Duration, atBarrier)

	finishResult(res)
	return res, nil
}

// qaSlot/rapSlot/tcpSlot bind one flow to its (optional) per-flow
// series and its global position within its class, for the scratch
// ring.
type qaSlot struct {
	src    *QASource
	global int
	full   *qaTrace      // first QA flow only: the full breakdown
	series *trace.Series // later QA flows, fleet mode, below the cap
}

type rapSlot struct {
	src    *RAPSource
	global int
	series *trace.Series
}

type tcpSlot struct {
	src    *tcp.Source
	global int
	series *trace.Series
}

// fleetSlot holds one tick's per-flow values, written by the owning
// shards during a window and folded by the coordinator at the next
// barrier.
type fleetSlot struct {
	qaRate  []float64
	rapRate []float64
	tcpGood []int64
}

// shardTicker samples one shard's flows on the serial tick recurrence.
// It is that shard's worker's private state during windows; the
// coordinator only reads the scratch ring it shares, and only at
// barriers.
type shardTicker struct {
	eng      *sim.Engine
	interval float64
	duration float64

	qas  []qaSlot
	raps []rapSlot
	tcps []tcpSlot

	lastGoodput []int64 // per traced TCP flow, parallel to tcps with series

	// ring is the fleet scratch (nil in legacy trace mode); j counts
	// this shard's ticks, which every shard and the coordinator agree
	// on because they all run the same recurrence.
	ring []fleetSlot
	j    int

	// Bottleneck shard only.
	sQueue *trace.Series
	queue  sim.Queue
	fluid  *sim.Fluid
	sFluid *trace.Series

	tickFn func()
}

func (t *shardTicker) hasWork() bool {
	if len(t.qas) > 0 || t.sQueue != nil {
		return true
	}
	if t.ring != nil {
		return len(t.raps) > 0 || len(t.tcps) > 0
	}
	for _, r := range t.raps {
		if r.series != nil {
			return true
		}
	}
	for _, s := range t.tcps {
		if s.series != nil {
			return true
		}
	}
	return false
}

func (t *shardTicker) tick() {
	now := t.eng.Now()
	var slot *fleetSlot
	if t.ring != nil {
		slot = &t.ring[t.j%len(t.ring)]
	}
	for _, qs := range t.qas {
		q := qs.src
		// Tick every controller — consumption/playback dynamics —
		// whether or not the flow is traced.
		q.Ctrl.Tick(now, q.Tr.Rate(), q.Tr.ConservativeSlope())
		if qs.full != nil {
			qs.full.sample(now, q)
		} else if qs.series != nil {
			qs.series.Add(now, q.Tr.Rate())
		}
		if slot != nil {
			slot.qaRate[qs.global] = q.Tr.Rate()
		}
	}
	for _, rs := range t.raps {
		rate := rs.src.Tr.Rate()
		if rs.series != nil {
			rs.series.Add(now, rate)
		}
		if slot != nil {
			slot.rapRate[rs.global] = rate
		}
	}
	ti := 0
	for _, ts := range t.tcps {
		g := ts.src.GoodputBytes()
		if ts.series != nil {
			ts.series.Add(now, float64(g-t.lastGoodput[ti])/t.interval)
			t.lastGoodput[ti] = g
			ti++
		}
		if slot != nil {
			slot.tcpGood[ts.global] = g
		}
	}
	if t.sQueue != nil {
		t.sQueue.Add(now, float64(t.queue.Bytes()))
	}
	if t.sFluid != nil {
		t.sFluid.Add(now, t.fluid.Rate())
	}
	t.j++
	if now+t.interval <= t.duration {
		t.eng.After(t.interval, t.tickFn)
	}
}

// fleetCoordinator folds the scratch ring into the fleet aggregate
// series at each barrier, consuming exactly the ticks every shard has
// certainly executed (tick time strictly below the horizon; at the
// final barrier, at or below it).
type fleetCoordinator struct {
	sQA, sRap, sTCP, sJain *trace.Series

	ring     []fleetSlot
	interval float64
	duration float64
	nTCP     int

	t            float64 // next unconsumed tick's time, serial recurrence
	j            int
	done         bool
	lastTCPTotal int64
}

func (c *fleetCoordinator) atBarrier(hi float64, final bool) {
	for !c.done && (c.t < hi || (final && c.t <= hi)) {
		slot := &c.ring[c.j%len(c.ring)]
		// Global flow order, the serial sampler's addition order.
		qaRate, rapRate := 0.0, 0.0
		for _, v := range slot.qaRate {
			qaRate += v
		}
		for _, v := range slot.rapRate {
			rapRate += v
		}
		c.sQA.Add(c.t, qaRate)
		c.sRap.Add(c.t, rapRate)
		var total int64
		var sum, sumSq float64
		for _, g := range slot.tcpGood {
			total += g
			x := float64(g)
			sum += x
			sumSq += x * x
		}
		c.sTCP.Add(c.t, float64(total-c.lastTCPTotal)/c.interval)
		c.lastTCPTotal = total
		c.sJain.Add(c.t, jainIndex(sum, sumSq, c.nTCP))
		if c.t+c.interval <= c.duration {
			c.t += c.interval
			c.j++
		} else {
			c.done = true
		}
	}
}

// startShardedSampler builds the distributed sampler: per-shard
// tickers (scheduled on their engines before Run, so the t=0 tick
// lands after the t=0 flow starts, like the serial sampler), the
// bottleneck shard's queue.bytes ticker, and — in fleet trace mode —
// the coordinator whose atBarrier callback it returns (nil otherwise).
//
// Series are created here, on the construction goroutine, in exactly
// startSampler's order; each is then written by exactly one shard.
func startShardedSampler(d *sim.ShardedDumbbell, cfg Config, res *Result) func(hi float64, final bool) {
	reserve := int(cfg.Duration/cfg.SampleInterval) + 2
	series := func(name string) *trace.Series {
		s := res.Series.Series(name)
		s.Reserve(reserve)
		return s
	}
	fleet := cfg.MaxTraceFlows > 0
	capped := func(n int) int {
		if fleet && n > cfg.MaxTraceFlows {
			return cfg.MaxTraceFlows
		}
		return n
	}

	n := d.NumFlowShards()
	ticks := make([]*shardTicker, n)
	for i := range ticks {
		ticks[i] = &shardTicker{
			eng:      d.FlowEngine(i),
			interval: cfg.SampleInterval,
			duration: cfg.Duration,
		}
	}
	// Flow IDs are assigned in class order (QA, RAP, TCP), so a class
	// member's owner shard follows from its global class index.
	qaOwner := func(i int) *shardTicker { return ticks[i%n] }
	rapOwner := func(i int) *shardTicker { return ticks[(cfg.NumQA+i)%n] }
	tcpOwner := func(i int) *shardTicker { return ticks[(cfg.NumQA+cfg.NumRAP+i)%n] }

	// Series creation below mirrors startSampler's order exactly.
	var full *qaTrace
	if res.QASrc != nil {
		full = newQATrace(series, &cfg)
	}
	for qi, q := range res.QASrcs {
		slot := qaSlot{src: q, global: qi}
		if qi == 0 {
			slot.full = full
		} else if fleet && qi < capped(len(res.QASrcs)) {
			slot.series = series(fmt.Sprintf("qa%d.rate", qi))
		}
		t := qaOwner(qi)
		t.qas = append(t.qas, slot)
	}
	nRapTraced := capped(len(res.RAPSrcs))
	for ri, r := range res.RAPSrcs {
		slot := rapSlot{src: r, global: ri}
		if ri < nRapTraced {
			slot.series = series(fmt.Sprintf("rap%d.rate", ri))
		}
		t := rapOwner(ri)
		t.raps = append(t.raps, slot)
	}
	for ti, src := range res.TCPSrcs {
		slot := tcpSlot{src: src, global: ti}
		if fleet && ti < capped(len(res.TCPSrcs)) {
			slot.series = series(fmt.Sprintf("tcp%d.rate", ti))
		}
		t := tcpOwner(ti)
		t.tcps = append(t.tcps, slot)
		if slot.series != nil {
			t.lastGoodput = append(t.lastGoodput, 0)
		}
	}
	bneckTick := &shardTicker{
		eng:      d.BneckEngine(),
		interval: cfg.SampleInterval,
		duration: cfg.Duration,
		sQueue:   series("queue.bytes"),
		queue:    d.Queue(),
	}
	if res.Fluid != nil {
		// Mirrors the serial sampler's creation order: fluid.rate
		// directly after queue.bytes, before the fleet aggregates.
		bneckTick.fluid = res.Fluid
		bneckTick.sFluid = series("fluid.rate")
	}

	var coord *fleetCoordinator
	if fleet {
		coord = &fleetCoordinator{
			sQA:      series("fleet.qa.rate"),
			sRap:     series("fleet.rap.rate"),
			sTCP:     series("fleet.tcp.goodput"),
			sJain:    series("fleet.jain.tcp"),
			interval: cfg.SampleInterval,
			duration: cfg.Duration,
			nTCP:     len(res.TCPSrcs),
		}
		// The ring needs one slot per tick that can be outstanding at a
		// barrier: the ticks inside one lookahead window, plus slack for
		// the window's closed/open boundaries.
		ringLen := int(d.Lookahead()/cfg.SampleInterval) + 2
		coord.ring = make([]fleetSlot, ringLen)
		for i := range coord.ring {
			coord.ring[i] = fleetSlot{
				qaRate:  make([]float64, len(res.QASrcs)),
				rapRate: make([]float64, len(res.RAPSrcs)),
				tcpGood: make([]int64, len(res.TCPSrcs)),
			}
		}
		for _, t := range ticks {
			t.ring = coord.ring
		}
	}

	for _, t := range ticks {
		if t.hasWork() {
			t.tickFn = t.tick
			t.eng.At(0, t.tickFn)
		}
	}
	bneckTick.tickFn = bneckTick.tick
	bneckTick.eng.At(0, bneckTick.tickFn)

	if coord == nil {
		return nil
	}
	return coord.atBarrier
}
