package scenario

import (
	"encoding/json"
	"io"

	"qav/internal/metrics"
	"qav/internal/trace"
)

// RunReport is the structured, JSON-stable summary of one run: the
// effective (normalized) configuration, the delivered-quality numbers,
// and a snapshot of every metric the run recorded. All maps inside
// marshal with sorted keys, so two identical runs produce byte-identical
// reports regardless of how many workers executed the sweep around them.
type RunReport struct {
	Name string `json:"name"`
	// Transport names the congestion-control backend the run's QA and
	// cross-traffic flows used ("rap", "delay", "greedy").
	Transport  string           `json:"transport"`
	Config     Config           `json:"config"`
	PlayedSec  float64          `json:"played_sec"`
	StallSec   float64          `json:"stall_sec"`
	MeanLayers float64          `json:"mean_layers"`
	Drops      trace.DropStats  `json:"drops"`
	Fleet      FleetStats       `json:"fleet"`
	// Fluid summarizes the hybrid background aggregate; nil (and absent
	// from the JSON) for pure packet-level runs, so their reports stay
	// byte-identical.
	Fluid   *FluidStats      `json:"fluid,omitempty"`
	Metrics metrics.Snapshot `json:"metrics"`
}

// FleetStats summarizes the whole flow population of a run — always
// emitted, even for the single-QA paper presets, so sweeps over flow
// counts are machine-diffable from one key. Goodput rates average the
// cumulative delivered payload over the run duration.
type FleetStats struct {
	Flows    int `json:"flows"`
	QAFlows  int `json:"qa_flows"`
	RAPFlows int `json:"rap_flows"`
	TCPFlows int `json:"tcp_flows"`

	QAGoodputBps  float64 `json:"qa_goodput_bps"`
	RAPGoodputBps float64 `json:"rap_goodput_bps"`
	TCPGoodputBps float64 `json:"tcp_goodput_bps"`

	// JainFairnessTCP is Jain's index (Σx)²/(n·Σx²) over the TCP flows'
	// cumulative goodput: 1.0 is a perfectly even split, 1/n a single
	// flow hogging everything. Zero when the run has no TCP flows.
	JainFairnessTCP float64 `json:"jain_fairness_tcp"`
}

// fleetStats computes the population summary from the run's sources.
func (r *Result) fleetStats() FleetStats {
	fs := FleetStats{
		QAFlows:  len(r.QASrcs),
		RAPFlows: len(r.RAPSrcs),
		TCPFlows: len(r.TCPSrcs),
	}
	fs.Flows = fs.QAFlows + fs.RAPFlows + fs.TCPFlows
	dur := r.Cfg.Duration
	if dur <= 0 {
		return fs
	}
	var qa, rapB int64
	for _, q := range r.QASrcs {
		qa += q.RecvBytes
	}
	for _, rr := range r.RAPSrcs {
		rapB += rr.RecvBytes
	}
	var tcpB int64
	var sum, sumSq float64
	for _, t := range r.TCPSrcs {
		g := t.GoodputBytes()
		tcpB += g
		x := float64(g)
		sum += x
		sumSq += x * x
	}
	fs.QAGoodputBps = float64(qa) / dur
	fs.RAPGoodputBps = float64(rapB) / dur
	fs.TCPGoodputBps = float64(tcpB) / dur
	fs.JainFairnessTCP = jainIndex(sum, sumSq, fs.TCPFlows)
	return fs
}

// FluidStats summarizes the background aggregate of a hybrid run: the
// modeled populations, the bandwidth the aggregate actually got
// (serviced bytes over the run duration), its overflow losses, and the
// rate it ended at. The byte totals are the fluid model's own
// accounting, not packet counts.
type FluidStats struct {
	TCPFlows int `json:"tcp_flows"`
	RAPFlows int `json:"rap_flows"`

	GoodputBps   float64 `json:"goodput_bps"`
	OfferedBytes float64 `json:"offered_bytes"`
	DroppedBytes float64 `json:"dropped_bytes"`
	Backoffs     int64   `json:"backoffs"`
	FinalRateBps float64 `json:"final_rate_bps"`
}

// fluidStats summarizes the hybrid background, nil for pure
// packet-level runs.
func (r *Result) fluidStats() *FluidStats {
	f := r.Fluid
	if f == nil {
		return nil
	}
	fs := &FluidStats{
		TCPFlows:     r.Cfg.FluidTCP,
		RAPFlows:     r.Cfg.FluidRAP,
		OfferedBytes: f.OfferedBytes,
		DroppedBytes: f.DroppedBytes,
		Backoffs:     f.Backoffs,
		FinalRateBps: f.Rate(),
	}
	if r.Cfg.Duration > 0 {
		fs.GoodputBps = f.ServedBytes / r.Cfg.Duration
	}
	return fs
}

// jainIndex computes Jain's fairness index (Σx)²/(n·Σx²) from a
// population's goodput sum and sum of squares. An empty or all-zero
// population — every flow at zero goodput, the most pathological run —
// yields 0 rather than NaN (0/0): encoding/json refuses to marshal
// NaN, so a NaN here would make -report fail exactly when its output
// matters most. Every Jain computation (run report, serial sampler,
// sharded fleet coordinator) must go through this one guard.
func jainIndex(sum, sumSq float64, n int) float64 {
	if n <= 0 || !(sumSq > 0) {
		return 0
	}
	return sum * sum / (float64(n) * sumSq)
}

// Report summarizes the run. The metrics snapshot is taken now, from
// the run's registry (empty when the config had none attached); call it
// after Run has returned — the snapshot's Func instruments read the
// simulation's single-threaded state.
func (r *Result) Report() RunReport {
	rep := RunReport{
		Name:      r.Cfg.Name,
		Transport: string(r.Cfg.Transport),
		Config:    r.Cfg,
		PlayedSec: r.PlayedSec,
		StallSec:  r.StallSec,
		Drops:     r.Stats,
		Fleet:     r.fleetStats(),
		Fluid:     r.fluidStats(),
		Metrics:   r.Metrics.Snapshot(),
	}
	if r.PlayedSec > 0 {
		rep.MeanLayers = r.LayerSeconds / r.PlayedSec
	}
	return rep
}

// WriteJSON writes the report as indented JSON.
func (rep RunReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// WriteReports writes several reports as one indented JSON array, the
// qasim/qafig -report artifact format.
func WriteReports(w io.Writer, reps []RunReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(reps)
}
