package scenario

import (
	"encoding/json"
	"io"

	"qav/internal/metrics"
	"qav/internal/trace"
)

// RunReport is the structured, JSON-stable summary of one run: the
// effective (normalized) configuration, the delivered-quality numbers,
// and a snapshot of every metric the run recorded. All maps inside
// marshal with sorted keys, so two identical runs produce byte-identical
// reports regardless of how many workers executed the sweep around them.
type RunReport struct {
	Name       string           `json:"name"`
	Config     Config           `json:"config"`
	PlayedSec  float64          `json:"played_sec"`
	StallSec   float64          `json:"stall_sec"`
	MeanLayers float64          `json:"mean_layers"`
	Drops      trace.DropStats  `json:"drops"`
	Metrics    metrics.Snapshot `json:"metrics"`
}

// Report summarizes the run. The metrics snapshot is taken now, from
// the run's registry (empty when the config had none attached); call it
// after Run has returned — the snapshot's Func instruments read the
// simulation's single-threaded state.
func (r *Result) Report() RunReport {
	rep := RunReport{
		Name:      r.Cfg.Name,
		Config:    r.Cfg,
		PlayedSec: r.PlayedSec,
		StallSec:  r.StallSec,
		Drops:     r.Stats,
		Metrics:   r.Metrics.Snapshot(),
	}
	if r.PlayedSec > 0 {
		rep.MeanLayers = r.LayerSeconds / r.PlayedSec
	}
	return rep
}

// WriteJSON writes the report as indented JSON.
func (rep RunReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// WriteReports writes several reports as one indented JSON array, the
// qasim/qafig -report artifact format.
func WriteReports(w io.Writer, reps []RunReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(reps)
}
