package scenario

import (
	"fmt"

	"qav/internal/sim"
	"qav/internal/trace"
)

// startSampler schedules the periodic trace sampler on eng. Sampling is
// part of the run's dynamics — every QA controller is ticked at every
// sample so consumption is current — so the sampler must run for every
// config, and its cadence (cfg.SampleInterval) is part of the result.
//
// Series handles and per-layer counters are hoisted out of the closure:
// resolving fmt.Sprintf names through the set's map on every 0.1 s tick
// for every layer dominated the sample cost. Every series is pre-sized
// from Duration/SampleInterval, so steady-state sampling appends within
// capacity and never regrows.
//
// Two trace modes (cfg.MaxTraceFlows):
//
//   - 0, legacy: the first QA flow gets the full per-layer breakdown and
//     every RAP flow a rate series — exactly the series set the figures
//     dump, byte-identical to the pre-fleet sampler.
//   - N > 0, fleet: per-flow series are capped at N per class (the
//     first QA flow keeps its full breakdown; further QA flows, RAP and
//     TCP flows get one rate series each up to the cap) and fleet-wide
//     aggregates are always emitted: fleet.qa.rate and fleet.rap.rate
//     (summed transmission rates), fleet.tcp.goodput (aggregate TCP
//     goodput over the last interval), and fleet.jain.tcp (Jain's
//     fairness index over cumulative per-flow TCP goodput). Trace cost
//     stays O(1) in the flow population.
func startSampler(eng *sim.Engine, net *sim.Dumbbell, cfg Config, res *Result) {
	// Samples land at 0, Δ, 2Δ, ... while now+Δ <= Duration, plus slack
	// for the float accumulation at the boundary.
	reserve := int(cfg.Duration/cfg.SampleInterval) + 2
	series := func(name string) *trace.Series {
		s := res.Series.Series(name)
		s.Reserve(reserve)
		return s
	}

	fleet := cfg.MaxTraceFlows > 0
	capped := func(n int) int {
		if fleet && n > cfg.MaxTraceFlows {
			return cfg.MaxTraceFlows
		}
		return n
	}

	var full *qaTrace
	if res.QASrc != nil {
		full = newQATrace(series, &cfg)
	}
	// Rate series for QA flows beyond the first, fleet mode only (the
	// first flow's rate is qa.rate above).
	var sQA []*trace.Series
	if fleet {
		for i := 1; i < capped(len(res.QASrcs)); i++ {
			sQA = append(sQA, series(fmt.Sprintf("qa%d.rate", i)))
		}
	}
	sRap := make([]*trace.Series, capped(len(res.RAPSrcs)))
	for i := range sRap {
		sRap[i] = series(fmt.Sprintf("rap%d.rate", i))
	}
	var sTCP []*trace.Series
	if fleet {
		sTCP = make([]*trace.Series, capped(len(res.TCPSrcs)))
		for i := range sTCP {
			sTCP[i] = series(fmt.Sprintf("tcp%d.rate", i))
		}
	}
	sQueue := series("queue.bytes")
	// Hybrid runs trace the background aggregate's modeled send rate
	// right after the queue series (creation order is load-bearing: the
	// sharded sampler mirrors it).
	var sFluid *trace.Series
	if res.Fluid != nil {
		sFluid = series("fluid.rate")
	}

	var sFleetQA, sFleetRap, sFleetTCP, sJain *trace.Series
	var lastTCPTotal int64
	var lastGoodput []int64
	if fleet {
		sFleetQA = series("fleet.qa.rate")
		sFleetRap = series("fleet.rap.rate")
		sFleetTCP = series("fleet.tcp.goodput")
		sJain = series("fleet.jain.tcp")
		lastGoodput = make([]int64, len(sTCP))
	}

	var sample func()
	sample = func() {
		now := eng.Now()
		for qi, q := range res.QASrcs {
			// Tick every controller — consumption/playback dynamics —
			// whether or not the flow is traced.
			q.Ctrl.Tick(now, q.Tr.Rate(), q.Tr.ConservativeSlope())
			if qi == 0 {
				full.sample(now, q)
			} else if qi-1 < len(sQA) {
				sQA[qi-1].Add(now, q.Tr.Rate())
			}
		}
		for i, r := range res.RAPSrcs {
			if i < len(sRap) {
				sRap[i].Add(now, r.Tr.Rate())
			}
		}
		for i, s := range sTCP {
			good := res.TCPSrcs[i].GoodputBytes()
			s.Add(now, float64(good-lastGoodput[i])/cfg.SampleInterval)
			lastGoodput[i] = good
		}
		sQueue.Add(now, float64(net.Q.Bytes()))
		if sFluid != nil {
			sFluid.Add(now, res.Fluid.Rate())
		}
		if fleet {
			qaRate, rapRate := 0.0, 0.0
			for _, q := range res.QASrcs {
				qaRate += q.Tr.Rate()
			}
			for _, r := range res.RAPSrcs {
				rapRate += r.Tr.Rate()
			}
			sFleetQA.Add(now, qaRate)
			sFleetRap.Add(now, rapRate)
			// Aggregate TCP goodput over the last interval, and Jain's
			// fairness index over cumulative per-flow goodput:
			// (Σx)² / (n·Σx²) — 1.0 is a perfectly even split.
			var total int64
			var sum, sumSq float64
			for _, t := range res.TCPSrcs {
				g := t.GoodputBytes()
				total += g
				x := float64(g)
				sum += x
				sumSq += x * x
			}
			sFleetTCP.Add(now, float64(total-lastTCPTotal)/cfg.SampleInterval)
			lastTCPTotal = total
			sJain.Add(now, jainIndex(sum, sumSq, len(res.TCPSrcs)))
		}
		if now+cfg.SampleInterval <= cfg.Duration {
			eng.After(cfg.SampleInterval, sample)
		}
	}
	eng.At(0, sample)
}

// layerSeries bundles one video layer's five trace series (Fig 11's
// per-layer breakdown).
type layerSeries struct {
	buf, share, drain, tx, rx *trace.Series
}

// qaTrace is the first QA flow's full per-layer trace: rate,
// consumption, active layers, total buffering, and the five per-layer
// series. It is extracted from the sampler body so the serial sampler
// and the sharded per-shard ticker record byte-identical values from
// one implementation. Creation order of its series is load-bearing
// (trace.Set is creation-ordered and figure TSVs are the regression
// oracle): qa.rate, qa.consumption, qa.layers, qa.buftotal, then
// buf/share/drain/tx/rx per layer.
type qaTrace struct {
	sRate, sCons, sLayers, sBufTotal *trace.Series
	perLayer                         []layerSeries

	lastSent, lastDelivered []int64

	interval float64
	qaC      float64
}

func newQATrace(series func(string) *trace.Series, cfg *Config) *qaTrace {
	qt := &qaTrace{
		sRate:         series("qa.rate"),
		sCons:         series("qa.consumption"),
		sLayers:       series("qa.layers"),
		sBufTotal:     series("qa.buftotal"),
		perLayer:      make([]layerSeries, cfg.MaxTraceLayers),
		lastSent:      make([]int64, cfg.MaxTraceLayers),
		lastDelivered: make([]int64, cfg.MaxTraceLayers),
		interval:      cfg.SampleInterval,
		qaC:           cfg.QA.C,
	}
	for l := range qt.perLayer {
		qt.perLayer[l] = layerSeries{
			buf:   series(fmt.Sprintf("qa.buf.l%d", l)),
			share: series(fmt.Sprintf("qa.share.l%d", l)),
			drain: series(fmt.Sprintf("qa.drain.l%d", l)),
			tx:    series(fmt.Sprintf("qa.tx.l%d", l)),
			rx:    series(fmt.Sprintf("qa.rx.l%d", l)),
		}
	}
	return qt
}

// sample records one tick for q at virtual time now. The caller has
// already ticked q's controller.
func (qt *qaTrace) sample(now float64, q *QASource) {
	qt.sRate.Add(now, q.Tr.Rate())
	qt.sCons.Add(now, q.Ctrl.ConsumptionRate())
	qt.sLayers.Add(now, float64(q.Ctrl.ActiveLayers()))
	qt.sBufTotal.Add(now, q.Ctrl.TotalBuf())
	bufs := q.Ctrl.Buffers()
	shares := q.Ctrl.Shares()
	for l := range qt.perLayer {
		var buf, share, drain float64
		if l < len(bufs) {
			buf = bufs[l]
			share = shares[l]
			if q.Ctrl.Playing() {
				drain = qt.qaC - share
				if drain < 0 {
					drain = 0
				}
			}
		}
		var sent, delivered int64
		if l < len(q.SentByLayer) {
			sent = q.SentByLayer[l]
		}
		if l < len(q.DeliveredByLayer) {
			delivered = q.DeliveredByLayer[l]
		}
		txRate := float64(sent-qt.lastSent[l]) / qt.interval
		rxRate := float64(delivered-qt.lastDelivered[l]) / qt.interval
		qt.lastSent[l] = sent
		qt.lastDelivered[l] = delivered
		qt.perLayer[l].buf.Add(now, buf)
		qt.perLayer[l].share.Add(now, share)
		qt.perLayer[l].drain.Add(now, drain)
		qt.perLayer[l].tx.Add(now, txRate)
		qt.perLayer[l].rx.Add(now, rxRate)
	}
}
