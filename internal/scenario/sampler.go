package scenario

import (
	"fmt"

	"qav/internal/sim"
	"qav/internal/trace"
)

// startSampler schedules the periodic trace sampler on eng. Sampling is
// part of the run's dynamics — the QA controller is ticked at every
// sample so consumption is current — so the sampler must run for every
// config, and its cadence (cfg.SampleInterval) is part of the result.
//
// Series handles and per-layer counters are hoisted out of the closure:
// resolving fmt.Sprintf names through the set's map on every 0.1 s tick
// for every layer dominated the sample cost. The counters are sized
// from the config, so MaxTraceLayers > 16 no longer indexes out of
// range.
func startSampler(eng *sim.Engine, net *sim.Dumbbell, cfg Config, res *Result) {
	type layerSeries struct {
		buf, share, drain, tx, rx *trace.Series
	}
	lastSent := make([]int64, cfg.MaxTraceLayers)
	lastDelivered := make([]int64, cfg.MaxTraceLayers)
	var (
		sRate, sCons, sLayers, sBufTotal *trace.Series
		perLayer                         []layerSeries
	)
	if res.QASrc != nil {
		sRate = res.Series.Series("qa.rate")
		sCons = res.Series.Series("qa.consumption")
		sLayers = res.Series.Series("qa.layers")
		sBufTotal = res.Series.Series("qa.buftotal")
		perLayer = make([]layerSeries, cfg.MaxTraceLayers)
		for l := range perLayer {
			perLayer[l] = layerSeries{
				buf:   res.Series.Series(fmt.Sprintf("qa.buf.l%d", l)),
				share: res.Series.Series(fmt.Sprintf("qa.share.l%d", l)),
				drain: res.Series.Series(fmt.Sprintf("qa.drain.l%d", l)),
				tx:    res.Series.Series(fmt.Sprintf("qa.tx.l%d", l)),
				rx:    res.Series.Series(fmt.Sprintf("qa.rx.l%d", l)),
			}
		}
	}
	sRap := make([]*trace.Series, len(res.RAPSrcs))
	for i := range sRap {
		sRap[i] = res.Series.Series(fmt.Sprintf("rap%d.rate", i))
	}
	sQueue := res.Series.Series("queue.bytes")

	var sample func()
	sample = func() {
		now := eng.Now()
		if res.QASrc != nil {
			q := res.QASrc
			// Tick the controller so consumption is current at sample time.
			q.Ctrl.Tick(now, q.Snd.Rate(), q.Snd.ConservativeSlope())
			sRate.Add(now, q.Snd.Rate())
			sCons.Add(now, q.Ctrl.ConsumptionRate())
			sLayers.Add(now, float64(q.Ctrl.ActiveLayers()))
			sBufTotal.Add(now, q.Ctrl.TotalBuf())
			bufs := q.Ctrl.Buffers()
			shares := q.Ctrl.Shares()
			for l := 0; l < cfg.MaxTraceLayers; l++ {
				var buf, share, drain float64
				if l < len(bufs) {
					buf = bufs[l]
					share = shares[l]
					if q.Ctrl.Playing() {
						drain = cfg.QA.C - share
						if drain < 0 {
							drain = 0
						}
					}
				}
				var sent, delivered int64
				if l < len(q.SentByLayer) {
					sent = q.SentByLayer[l]
				}
				if l < len(q.DeliveredByLayer) {
					delivered = q.DeliveredByLayer[l]
				}
				txRate := float64(sent-lastSent[l]) / cfg.SampleInterval
				rxRate := float64(delivered-lastDelivered[l]) / cfg.SampleInterval
				lastSent[l] = sent
				lastDelivered[l] = delivered
				perLayer[l].buf.Add(now, buf)
				perLayer[l].share.Add(now, share)
				perLayer[l].drain.Add(now, drain)
				perLayer[l].tx.Add(now, txRate)
				perLayer[l].rx.Add(now, rxRate)
			}
		}
		for i, r := range res.RAPSrcs {
			sRap[i].Add(now, r.Snd.Rate())
		}
		sQueue.Add(now, float64(net.Q.Bytes()))
		if now+cfg.SampleInterval <= cfg.Duration {
			eng.After(cfg.SampleInterval, sample)
		}
	}
	eng.At(0, sample)
}
