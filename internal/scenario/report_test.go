package scenario

import (
	"bytes"
	"encoding/json"
	"testing"

	"qav/internal/metrics"
)

// reportConfigs builds a small instrumented sweep: every config carries
// its own fresh registry, the arrangement qasim -report uses so that
// reports cannot depend on worker scheduling.
func reportConfigs() []Config {
	var cfgs []Config
	for _, kmax := range []int{2, 4} {
		cfg := MustPreset("T1", WithKmax(kmax))
		cfg.Duration = 15
		cfg.Metrics = metrics.NewRegistry()
		cfgs = append(cfgs, cfg)
	}
	return cfgs
}

func marshalReports(t *testing.T, results []*Result) []byte {
	t.Helper()
	reps := make([]RunReport, len(results))
	for i, res := range results {
		reps[i] = res.Report()
	}
	var buf bytes.Buffer
	if err := WriteReports(&buf, reps); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// The -report artifact must be byte-identical across repeated runs and
// across worker counts: this is the golden determinism guarantee for
// machine-diffable sweeps.
func TestReportDeterministicAcrossRunsAndWorkers(t *testing.T) {
	runWith := func(workers int) []byte {
		results, err := RunAll(reportConfigs(), workers)
		if err != nil {
			t.Fatal(err)
		}
		return marshalReports(t, results)
	}
	want := runWith(1)
	for _, workers := range []int{1, 2, 4} {
		if got := runWith(workers); !bytes.Equal(want, got) {
			t.Fatalf("report JSON differs with %d workers:\n%s\nvs\n%s", workers, want, got)
		}
	}
}

// The report must carry every layer's metrics under stable names — the
// schema qasim -report documents: engine, queue (with histogram
// quantiles), RAP and TCP transports, and the QA controller.
func TestReportContainsAllLayers(t *testing.T) {
	cfg := MustPreset("T1", WithKmax(2))
	cfg.Duration = 15
	cfg.Metrics = metrics.NewRegistry()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report()
	if rep.Name != cfg.Name || rep.PlayedSec <= 0 {
		t.Fatalf("report header wrong: %+v", rep)
	}
	if rep.Transport != "rap" {
		t.Fatalf("report transport %q, want rap (the preset default)", rep.Transport)
	}
	snap := rep.Metrics
	for _, name := range []string{
		"sim.events.scheduled", "sim.events.executed",
		"sim.sched.resizes", "sim.sched.overflow",
		"queue.offered", "link.tx.packets",
		"rap.sent", "rap.acked", "tcp.sent", "tcp.acked",
		"qa.rap.sent", "qa.adds",
	} {
		if _, ok := snap.Counters[name]; !ok {
			t.Errorf("counter %q missing from report", name)
		}
	}
	for _, name := range []string{"sim.sched.depth", "sim.sched.maxdepth", "sim.sched.buckets"} {
		if _, ok := snap.Gauges[name]; !ok {
			t.Errorf("gauge %q missing from report", name)
		}
	}
	if snap.Gauges["sim.sched.maxdepth"] <= 0 {
		t.Error("scheduler peak depth never recorded")
	}
	for _, name := range []string{"queue.delay", "queue.delay.f0", "rap.srtt", "qa.rap.srtt", "tcp.srtt"} {
		h, ok := snap.Histograms[name]
		if !ok {
			t.Errorf("histogram %q missing from report", name)
			continue
		}
		if name != "queue.delay.f0" && h.Count == 0 {
			t.Errorf("histogram %q recorded nothing", name)
		}
	}
	if snap.Counters["sim.events.executed"] == 0 {
		t.Error("engine executed no events?")
	}
	if snap.Counters["qa.adds"] == 0 {
		t.Error("QA controller added no layers in 15s of T1")
	}

	// Schema stability: the exact top-level JSON keys.
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var top map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &top); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"name", "transport", "config", "played_sec", "stall_sec", "mean_layers", "drops", "fleet", "metrics"} {
		if _, ok := top[key]; !ok {
			t.Errorf("report JSON missing top-level key %q", key)
		}
	}

	// Fleet stats are always emitted, including for the paper presets:
	// T1 is 1 QA + 9 RAP + 10 TCP.
	fs := rep.Fleet
	if fs.Flows != 20 || fs.QAFlows != 1 || fs.RAPFlows != 9 || fs.TCPFlows != 10 {
		t.Errorf("T1 fleet counts wrong: %+v", fs)
	}
	if fs.QAGoodputBps <= 0 || fs.RAPGoodputBps <= 0 || fs.TCPGoodputBps <= 0 {
		t.Errorf("fleet goodput aggregates missing: %+v", fs)
	}
	if fs.JainFairnessTCP <= 0 || fs.JainFairnessTCP > 1 {
		t.Errorf("Jain index out of range (0,1]: %v", fs.JainFairnessTCP)
	}
}

// Sharing one registry across a parallel sweep must be race-free (this
// test is the -race hammer for registration + recording from RunAll
// workers) and must aggregate counters to exactly the sum of the
// per-run counts.
func TestSharedRegistryAcrossParallelRuns(t *testing.T) {
	perRun := func() []int64 {
		var counts []int64
		for _, kmax := range []int{2, 4, 8} {
			cfg := MustPreset("T1", WithKmax(kmax))
			cfg.Duration = 10
			cfg.Metrics = metrics.NewRegistry()
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			counts = append(counts, res.Metrics.Snapshot().Counters["qa.rap.sent"])
		}
		return counts
	}()

	shared := metrics.NewRegistry()
	var cfgs []Config
	for _, kmax := range []int{2, 4, 8} {
		cfg := MustPreset("T1", WithKmax(kmax))
		cfg.Duration = 10
		cfg.Metrics = shared
		cfgs = append(cfgs, cfg)
	}
	if _, err := RunAll(cfgs, len(cfgs)); err != nil {
		t.Fatal(err)
	}
	var want int64
	for _, n := range perRun {
		want += n
	}
	if got := shared.Snapshot().Counters["qa.rap.sent"]; got != want {
		t.Fatalf("shared registry aggregated %d sent packets, want the per-run sum %d", got, want)
	}
}
