package scenario

import (
	"math"
	"testing"

	"qav/internal/core"
	"qav/internal/transport"
)

func TestSingleRAPSawtooth(t *testing.T) {
	cfg := MustPreset("SingleRAP")
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rate := res.Series.Get("rap0.rate")
	if rate == nil || rate.Len() == 0 {
		t.Fatal("no rate series")
	}
	// The single flow must hunt around the bottleneck bandwidth: average
	// in the second half within [50%, 145%] of capacity (rate-based AIMD
	// overshoots while the loss feedback is in flight, exactly like the
	// peaks in the paper's Fig 1), with multiple backoffs.
	avg := rate.AvgBetween(cfg.Duration/2, cfg.Duration)
	if avg < 0.5*cfg.BottleneckRate || avg > 1.45*cfg.BottleneckRate {
		t.Fatalf("avg rate %.0f not around bottleneck %.0f", avg, cfg.BottleneckRate)
	}
	if res.RAPSrcs[0].Tr.Counters().Backoffs < 5 {
		t.Fatalf("only %d backoffs in 40s; expected a sawtooth", res.RAPSrcs[0].Tr.Counters().Backoffs)
	}
	// Utilization: the flow should not collapse.
	if res.RAPSrcs[0].RecvBytes < int64(0.4*cfg.BottleneckRate*cfg.Duration) {
		t.Fatalf("goodput %d too low", res.RAPSrcs[0].RecvBytes)
	}
}

func TestSingleQAPlaysAndBuffers(t *testing.T) {
	cfg := MustPreset("SingleQA", WithKmax(2))
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.QASrc == nil {
		t.Fatal("no QA source")
	}
	if res.PlayedSec < cfg.Duration/2 {
		t.Fatalf("played only %.1fs of %.0fs", res.PlayedSec, cfg.Duration)
	}
	// ~12 KB/s capacity over 3 KB/s layers: should reach at least 2 layers.
	maxLayers, _ := res.Series.Get("qa.layers").Max()
	if maxLayers < 2 {
		t.Fatalf("never exceeded %v layers", maxLayers)
	}
	if res.StallSec > 1 {
		t.Fatalf("stalled %.2fs on a private link", res.StallSec)
	}
	// Buffering happens and is base-layer-heavy on average.
	b0 := res.Series.Get("qa.buf.l0").Avg()
	b2 := res.Series.Get("qa.buf.l2").Avg()
	if b0 <= 0 {
		t.Fatal("base layer never buffered")
	}
	if b2 > b0 {
		t.Fatalf("higher layer buffered more on average: l0=%.0f l2=%.0f", b0, b2)
	}
}

func TestT1QAFlowHoldsLayersWithoutStalling(t *testing.T) {
	cfg := MustPreset("T1", WithKmax(2))
	cfg.Duration = 60
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	maxLayers, _ := res.Series.Get("qa.layers").Max()
	if maxLayers < 2 {
		t.Fatalf("QA flow never got past %v layers at fair share 4C", maxLayers)
	}
	if res.StallSec > 2 {
		t.Fatalf("stalled %.2fs in steady T1", res.StallSec)
	}
	// Fair sharing: QA goodput within a factor 3 of the fair share.
	fair := cfg.BottleneckRate / float64(1+cfg.NumRAP+cfg.NumTCP)
	avgRate := res.Series.Get("qa.rate").AvgBetween(20, cfg.Duration)
	if avgRate < fair/3 || avgRate > 3*fair {
		t.Fatalf("QA avg rate %.0f vs fair share %.0f: unfair by >3x", avgRate, fair)
	}
}

func TestT1EfficiencyHigh(t *testing.T) {
	cfg := MustPreset("T1", WithKmax(2))
	cfg.Duration = 120
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Drops == 0 {
		t.Skip("no drops in this run; efficiency undefined")
	}
	// Paper Table 1: ~99%+ efficiency. Allow slack for our substrate.
	if res.Stats.AvgEfficiency < 0.90 {
		t.Fatalf("buffering efficiency %.3f < 0.90 (paper: ~0.99)", res.Stats.AvgEfficiency)
	}
}

func TestT2CBRBurstForcesAndRecovers(t *testing.T) {
	cfg := MustPreset("T2", WithKmax(4))
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	layers := res.Series.Get("qa.layers")
	before := layers.AvgBetween(15, 30)
	during := layers.AvgBetween(40, 60)
	after := layers.AvgBetween(75, 90)
	if !(during < before) {
		t.Fatalf("CBR burst did not reduce quality: before=%.2f during=%.2f", before, during)
	}
	if !(after > during) {
		t.Fatalf("quality did not recover after burst: during=%.2f after=%.2f", during, after)
	}
	// The base layer must survive the burst: no (long) stall.
	if res.StallSec > 3 {
		t.Fatalf("base layer starved %.2fs during CBR burst", res.StallSec)
	}
}

func TestKmaxSmoothingReducesQualityChanges(t *testing.T) {
	changes := map[int]int{}
	buftot := map[int]float64{}
	for _, kmax := range []int{2, 8} {
		// The paper-scale variant (C = 10 KB/s): buffer requirements are
		// substantial there, so Kmax has a visible effect.
		cfg := MustPreset("T1", WithKmax(kmax), WithScale(8))
		cfg.Duration = 90
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		changes[kmax] = res.Stats.Adds + res.Stats.Drops
		buftot[kmax] = res.Series.Get("qa.buftotal").AvgBetween(30, cfg.Duration)
	}
	// Fig 12: higher Kmax buffers more and changes quality less (allow
	// equality; both runs share the same congestion pattern scale).
	if buftot[8] <= buftot[2] {
		t.Fatalf("Kmax=8 buffered %.0f <= Kmax=2's %.0f", buftot[8], buftot[2])
	}
	if changes[8] > changes[2] {
		t.Fatalf("Kmax=8 changed quality more often (%d) than Kmax=2 (%d)", changes[8], changes[2])
	}
}

func TestRunRejectsEmptyConfig(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
}

func TestT1FairnessAcrossRAPFlows(t *testing.T) {
	cfg := MustPreset("T1", WithKmax(2))
	cfg.Duration = 60
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Jain's fairness index across the 9 plain RAP flows.
	var sum, sumsq float64
	for _, r := range res.RAPSrcs {
		g := float64(r.RecvBytes)
		sum += g
		sumsq += g * g
	}
	n := float64(len(res.RAPSrcs))
	jain := sum * sum / (n * sumsq)
	if math.IsNaN(jain) || jain < 0.7 {
		t.Fatalf("RAP flows unfair: Jain index %.3f", jain)
	}
}

func TestQAControllerEventsConsistent(t *testing.T) {
	cfg := MustPreset("T1", WithKmax(2))
	cfg.Duration = 60
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	na := 1
	for _, e := range res.Events {
		if e.Time < prev {
			t.Fatalf("events out of order: %v after %v", e.Time, prev)
		}
		prev = e.Time
		switch e.Kind {
		case core.EvAddLayer:
			na++
			if e.Layer != na-1 {
				t.Fatalf("add event layer %d, want %d", e.Layer, na-1)
			}
		case core.EvDropLayer:
			na--
			if na < 1 {
				t.Fatal("more drops than adds: base layer dropped?")
			}
		}
	}
}

func TestREDVariantRuns(t *testing.T) {
	cfg := MustPreset("T1", WithKmax(2))
	cfg.Duration = 30
	cfg.UseRED = true
	cfg.REDSeed = 7
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.StallSec > 2 {
		t.Fatalf("stalled %.2fs under RED", res.StallSec)
	}
	if hi, ok := res.Series.Get("qa.layers").Max(); !ok || hi < 2 {
		t.Fatal("QA flow never got layers under RED")
	}
}

func TestFineGrainVariantRuns(t *testing.T) {
	cfg := MustPreset("T1", WithKmax(2))
	cfg.Duration = 30
	cfg.FineGrainRAP = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.QASrc.Tr.(*transport.RAP).Sender().FineGrainFactor() <= 0 {
		t.Fatal("fine grain factor not live")
	}
	if res.StallSec > 2 {
		t.Fatalf("stalled %.2fs with fine-grain RAP", res.StallSec)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() (float64, int) {
		cfg := MustPreset("T1", WithKmax(2))
		cfg.Duration = 20
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Series.Get("qa.rate").Avg(), res.Stats.Adds + res.Stats.Drops
	}
	r1, c1 := run()
	r2, c2 := run()
	if r1 != r2 || c1 != c2 {
		t.Fatalf("simulation not deterministic: (%v,%d) vs (%v,%d)", r1, c1, r2, c2)
	}
}
