// Package scenario wires the substrates together into the paper's
// evaluation setups: a quality-adaptive RAP flow sharing a dumbbell
// bottleneck with plain RAP flows, Sack-TCP flows, and an optional CBR
// burst (tests T1 and T2), plus single-flow setups for Figs 1 and 2.
package scenario

import (
	"qav/internal/core"
	"qav/internal/sim"
	"qav/internal/transport"
)

// ccFlow is the transport-driven flow driver shared by every
// congestion-controlled scenario source. It owns the four event paths a
// flow has — paced sends, periodic steps, data delivery at the sink,
// ACK return — and drives whichever transport.Transport backend the
// flow was built with. Role-specific behaviour (the QA source's layer
// accounting) hangs off the nil-guarded hooks; plain cross-traffic
// leaves them nil and pays nothing.
type ccFlow struct {
	// Tr is the congestion-control backend driving this flow.
	Tr transport.Transport

	eng     *sim.Engine
	net     sim.Network
	flowID  int
	pktSize int
	ackSize int
	sink    sim.Receiver
	ackSink sim.Receiver

	// sendFn/stepFn hold the loop methods as long-lived function values
	// so per-packet rescheduling does not mint a closure per call.
	sendFn func()
	stepFn func()

	// pick chooses the layer for the next packet (QA); when nil the
	// packet's Layer keeps the pool's zero value, as plain flows always
	// sent.
	pick func(now float64) int
	// sent observes each transmission (seq, layer from pick or 0).
	sent func(seq int64, layer int)
	// delivered observes each acknowledged sequence.
	delivered func(now float64, seq int64)
	// backoff observes each rate decrease the transport reports; the
	// *transport.Backoff is only valid for the duration of the call.
	backoff func(now float64, b *transport.Backoff)

	// RecvBytes counts payload bytes delivered to the sink.
	RecvBytes int64
}

func (f *ccFlow) init(eng *sim.Engine, net sim.Network, flowID int, tr transport.Transport) {
	f.Tr = tr
	f.eng = eng
	f.net = net
	f.flowID = flowID
	f.pktSize = tr.PacketSize()
	f.ackSize = 40
	f.sink = sim.ReceiverFunc(f.recvData)
	f.ackSink = sim.ReceiverFunc(f.recvAck)
	f.sendFn = f.sendLoop
	f.stepFn = f.stepLoop
}

// start schedules the send and step loops; hooks must be set before the
// engine runs.
func (f *ccFlow) start(at float64) {
	f.eng.At(at, f.sendFn)
	f.eng.At(at, f.stepFn)
}

func (f *ccFlow) sendLoop() {
	now := f.eng.Now()
	layer := 0
	picked := f.pick != nil
	if picked {
		layer = f.pick(now)
	}
	seq := f.Tr.OnSend(now)
	if f.sent != nil {
		f.sent(seq, layer)
	}
	p := f.eng.Pool().Get()
	p.FlowID, p.Seq, p.Size = f.flowID, seq, f.pktSize
	p.Kind, p.SendTime = sim.Data, now
	if picked {
		p.Layer = layer
	}
	f.net.SendData(p, f.sink)
	f.eng.After(f.Tr.IPG(), f.sendFn)
}

func (f *ccFlow) stepLoop() {
	now := f.eng.Now()
	if b := f.Tr.Step(now); b != nil && f.backoff != nil {
		f.backoff(now, b)
	}
	f.eng.After(f.Tr.StepInterval(), f.stepFn)
}

func (f *ccFlow) recvData(p *sim.Packet) {
	f.RecvBytes += int64(p.Size)
	ack := f.eng.Pool().Get()
	ack.FlowID, ack.Kind, ack.Size, ack.AckSeq = f.flowID, sim.Ack, f.ackSize, p.Seq
	f.net.SendAck(ack, f.ackSink)
}

func (f *ccFlow) recvAck(p *sim.Packet) {
	now := f.eng.Now()
	if b := f.Tr.OnAck(now, p.AckSeq); b != nil && f.backoff != nil {
		f.backoff(now, b)
	}
	if f.delivered != nil {
		f.delivered(now, p.AckSeq)
	}
}

// RAPSource is a plain (non-adaptive-quality) congestion-controlled
// flow with an infinite backlog, used as cross traffic. The name is
// historical — it runs whatever transport backend it is given.
type RAPSource struct {
	ccFlow
}

// NewRAPSource creates a cross-traffic flow over tr starting at start.
func NewRAPSource(eng *sim.Engine, net sim.Network, flowID int, tr transport.Transport, start float64) *RAPSource {
	r := &RAPSource{}
	r.init(eng, net, flowID, tr)
	r.start(start)
	return r
}

// QASource is the paper's system under test: a congestion-controlled
// flow whose packets are assigned to video layers by the quality
// adaptation controller.
type QASource struct {
	ccFlow
	Ctrl *core.Controller

	// seqLayer attributes in-flight packets to layers for ACK crediting.
	seqLayer map[int64]int

	// SentByLayer / DeliveredByLayer count payload bytes per layer
	// (cumulative), for the Fig 11 per-layer transmit- and delivered-rate
	// breakdowns. They grow on demand, so any MaxLayers works.
	SentByLayer      []int64
	DeliveredByLayer []int64
	// LostPkts counts data packets inferred lost.
	LostPkts int64
}

// NewQASource creates the quality-adaptive flow over tr. Its controller
// must be constructed by the caller (so scenarios can vary Kmax etc.).
func NewQASource(eng *sim.Engine, net sim.Network, flowID int, tr transport.Transport, ctrl *core.Controller, start float64) *QASource {
	q := &QASource{
		Ctrl:     ctrl,
		seqLayer: make(map[int64]int),
	}
	q.init(eng, net, flowID, tr)
	q.pick = q.pickLayer
	q.sent = q.onSent
	q.delivered = q.onDelivered
	q.backoff = q.onBackoff
	q.start(start)
	return q
}

func (q *QASource) pickLayer(now float64) int {
	return q.Ctrl.PickLayer(now, q.Tr.Rate(), q.Tr.ConservativeSlope(), q.pktSize)
}

func (q *QASource) onSent(seq int64, layer int) {
	q.seqLayer[seq] = layer
	if layer >= 0 {
		q.SentByLayer = growCounters(q.SentByLayer, layer)
		q.SentByLayer[layer] += int64(q.pktSize)
	}
}

func (q *QASource) onDelivered(now float64, seq int64) {
	if layer, ok := q.seqLayer[seq]; ok {
		delete(q.seqLayer, seq)
		q.Ctrl.OnDelivered(now, layer, q.pktSize)
		if layer >= 0 {
			q.DeliveredByLayer = growCounters(q.DeliveredByLayer, layer)
			q.DeliveredByLayer[layer] += int64(q.pktSize)
		}
	}
}

// growCounters extends a per-layer counter slice so index layer is valid.
func growCounters(c []int64, layer int) []int64 {
	for len(c) <= layer {
		c = append(c, 0)
	}
	return c
}

func (q *QASource) onBackoff(now float64, b *transport.Backoff) {
	q.LostPkts += int64(len(b.LostSeqs))
	for _, seq := range b.LostSeqs {
		delete(q.seqLayer, seq)
	}
	q.Ctrl.OnBackoff(now, b.NewRate, q.Tr.ConservativeSlope())
}
