// Package scenario wires the substrates together into the paper's
// evaluation setups: a quality-adaptive RAP flow sharing a dumbbell
// bottleneck with plain RAP flows, Sack-TCP flows, and an optional CBR
// burst (tests T1 and T2), plus single-flow setups for Figs 1 and 2.
package scenario

import (
	"qav/internal/core"
	"qav/internal/rap"
	"qav/internal/sim"
)

// RAPSource is a plain (non-adaptive-quality) RAP flow with an infinite
// backlog, used as congestion-controlled cross traffic.
type RAPSource struct {
	Snd *rap.Sender

	eng     *sim.Engine
	net     sim.Network
	flowID  int
	pktSize int
	ackSize int
	start   float64
	sink    sim.Receiver
	ackSink sim.Receiver

	// sendFn/stepFn hold the loop methods as long-lived function values
	// so per-packet rescheduling does not mint a closure per call.
	sendFn func()
	stepFn func()

	// RecvBytes counts payload bytes delivered to the sink.
	RecvBytes int64
}

// NewRAPSource creates a RAP cross-traffic flow starting at start.
func NewRAPSource(eng *sim.Engine, net sim.Network, flowID int, cfg rap.Config, start float64) *RAPSource {
	r := &RAPSource{
		Snd:     rap.NewSender(cfg),
		eng:     eng,
		net:     net,
		flowID:  flowID,
		pktSize: cfg.PacketSize,
		ackSize: 40,
		start:   start,
	}
	if r.pktSize <= 0 {
		r.pktSize = r.Snd.PacketSize()
	}
	r.sink = sim.ReceiverFunc(r.recvData)
	r.ackSink = sim.ReceiverFunc(r.recvAck)
	r.sendFn = r.sendLoop
	r.stepFn = r.stepLoop
	eng.At(start, r.sendFn)
	eng.At(start, r.stepFn)
	return r
}

func (r *RAPSource) sendLoop() {
	now := r.eng.Now()
	seq := r.Snd.OnSend(now)
	p := r.eng.Pool().Get()
	p.FlowID, p.Seq, p.Size = r.flowID, seq, r.pktSize
	p.Kind, p.SendTime = sim.Data, now
	r.net.SendData(p, r.sink)
	r.eng.After(r.Snd.IPG(), r.sendFn)
}

func (r *RAPSource) stepLoop() {
	r.Snd.Step(r.eng.Now())
	r.eng.After(r.Snd.StepInterval(), r.stepFn)
}

func (r *RAPSource) recvData(p *sim.Packet) {
	r.RecvBytes += int64(p.Size)
	ack := r.eng.Pool().Get()
	ack.FlowID, ack.Kind, ack.Size, ack.AckSeq = r.flowID, sim.Ack, r.ackSize, p.Seq
	r.net.SendAck(ack, r.ackSink)
}

func (r *RAPSource) recvAck(p *sim.Packet) {
	r.Snd.OnAck(r.eng.Now(), p.AckSeq)
}

// QASource is the paper's system under test: a RAP flow whose packets are
// assigned to video layers by the quality adaptation controller.
type QASource struct {
	Snd  *rap.Sender
	Ctrl *core.Controller

	eng     *sim.Engine
	net     sim.Network
	flowID  int
	pktSize int
	ackSize int
	sink    sim.Receiver
	ackSink sim.Receiver

	// sendFn/stepFn: see RAPSource.
	sendFn func()
	stepFn func()

	// seqLayer attributes in-flight packets to layers for ACK crediting.
	seqLayer map[int64]int

	// SentByLayer / DeliveredByLayer count payload bytes per layer
	// (cumulative), for the Fig 11 per-layer transmit- and delivered-rate
	// breakdowns. They grow on demand, so any MaxLayers works.
	SentByLayer      []int64
	DeliveredByLayer []int64
	// LostPkts counts data packets inferred lost.
	LostPkts int64
	// RecvBytes counts payload bytes delivered to the sink (all layers,
	// plus packets sent with no active layer), for fleet aggregates.
	RecvBytes int64
}

// NewQASource creates the quality-adaptive flow. Its controller must be
// constructed by the caller (so scenarios can vary Kmax etc.).
func NewQASource(eng *sim.Engine, net sim.Network, flowID int, rcfg rap.Config, ctrl *core.Controller, start float64) *QASource {
	q := &QASource{
		Snd:      rap.NewSender(rcfg),
		Ctrl:     ctrl,
		eng:      eng,
		net:      net,
		flowID:   flowID,
		ackSize:  40,
		seqLayer: make(map[int64]int),
	}
	q.pktSize = q.Snd.PacketSize()
	q.sink = sim.ReceiverFunc(q.recvData)
	q.ackSink = sim.ReceiverFunc(q.recvAck)
	q.sendFn = q.sendLoop
	q.stepFn = q.stepLoop
	eng.At(start, q.sendFn)
	eng.At(start, q.stepFn)
	return q
}

func (q *QASource) sendLoop() {
	now := q.eng.Now()
	layer := q.Ctrl.PickLayer(now, q.Snd.Rate(), q.Snd.ConservativeSlope(), q.pktSize)
	seq := q.Snd.OnSend(now)
	q.seqLayer[seq] = layer
	if layer >= 0 {
		q.SentByLayer = growCounters(q.SentByLayer, layer)
		q.SentByLayer[layer] += int64(q.pktSize)
	}
	p := q.eng.Pool().Get()
	p.FlowID, p.Seq, p.Size = q.flowID, seq, q.pktSize
	p.Kind, p.Layer, p.SendTime = sim.Data, layer, now
	q.net.SendData(p, q.sink)
	q.eng.After(q.Snd.IPG(), q.sendFn)
}

func (q *QASource) stepLoop() {
	now := q.eng.Now()
	if b := q.Snd.Step(now); b != nil {
		q.onBackoff(now, b)
	}
	q.eng.After(q.Snd.StepInterval(), q.stepFn)
}

func (q *QASource) recvData(p *sim.Packet) {
	q.RecvBytes += int64(p.Size)
	ack := q.eng.Pool().Get()
	ack.FlowID, ack.Kind, ack.Size, ack.AckSeq = q.flowID, sim.Ack, q.ackSize, p.Seq
	q.net.SendAck(ack, q.ackSink)
}

func (q *QASource) recvAck(p *sim.Packet) {
	now := q.eng.Now()
	if b := q.Snd.OnAck(now, p.AckSeq); b != nil {
		q.onBackoff(now, b)
	}
	if layer, ok := q.seqLayer[p.AckSeq]; ok {
		delete(q.seqLayer, p.AckSeq)
		q.Ctrl.OnDelivered(now, layer, q.pktSize)
		if layer >= 0 {
			q.DeliveredByLayer = growCounters(q.DeliveredByLayer, layer)
			q.DeliveredByLayer[layer] += int64(q.pktSize)
		}
	}
}

// growCounters extends a per-layer counter slice so index layer is valid.
func growCounters(c []int64, layer int) []int64 {
	for len(c) <= layer {
		c = append(c, 0)
	}
	return c
}

func (q *QASource) onBackoff(now float64, b *rap.Backoff) {
	q.LostPkts += int64(len(b.LostSeqs))
	for _, seq := range b.LostSeqs {
		delete(q.seqLayer, seq)
	}
	q.Ctrl.OnBackoff(now, b.NewRate, q.Snd.ConservativeSlope())
}
