package scenario

import (
	"runtime"
	"sync"
)

// RunAll executes every config with Run on a bounded worker pool and
// returns the results in input order. workers <= 0 means one worker per
// available CPU (runtime.GOMAXPROCS(0)).
//
// Each run is an independent simulation with its own engine and seeded
// RNGs, so the outcome is deterministic: RunAll produces byte-identical
// Results to calling Run sequentially, regardless of worker count or
// scheduling order. If any run fails, RunAll still finishes the others
// and returns the error of the earliest failing config (by input index)
// alongside the partial results (failed slots are nil).
func RunAll(cfgs []Config, workers int) ([]*Result, error) {
	results := make([]*Result, len(cfgs))
	if len(cfgs) == 0 {
		return results, nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cfgs) {
		workers = len(cfgs)
	}

	errs := make([]error, len(cfgs))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				results[i], errs[i] = Run(cfgs[i])
			}
		}()
	}
	for i := range cfgs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}
