package scenario

import (
	"fmt"
	"testing"

	"qav/internal/trace"
	"qav/internal/transport"
)

// TestDebugT1Dump is a diagnostic, not an assertion: run with
// `go test -run DebugT1 -v` to inspect a T1 run.
func TestDebugT1Dump(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic")
	}
	for _, kmax := range []int{2, 8} {
		cfg := MustPreset("T1", WithKmax(kmax))
		cfg.Duration = 120
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		q := res.QASrc
		t.Logf("=== %s C=%.0f fair=%.0f", cfg.Name, cfg.QA.C, cfg.BottleneckRate/20)
		t.Logf("qa avg rate=%.0f avg layers=%.2f max layers=%.0f srtt=%.3f slope=%.0f",
			res.Series.Get("qa.rate").AvgBetween(20, 120),
			res.Series.Get("qa.layers").AvgBetween(20, 120),
			seriesMax(res.Series.Get("qa.layers")), q.Tr.SRTT(), q.Tr.(*transport.RAP).Sender().Slope())
		t.Logf("adds=%d drops=%d backoffs=%d stalls=%d eff=%.3f poor=%.1f%%",
			res.Stats.Adds, res.Stats.Drops, res.Stats.Backoffs, res.Stats.Stalls,
			res.Stats.AvgEfficiency, res.Stats.PoorDistPct)
		for l := 0; l < 4; l++ {
			t.Logf("  l%d: avgbuf=%.0f maxbuf=%.0f avgtx=%.0f", l,
				res.Series.Get(fmt.Sprintf("qa.buf.l%d", l)).AvgBetween(20, 120),
				seriesMax(res.Series.Get(fmt.Sprintf("qa.buf.l%d", l))),
				res.Series.Get(fmt.Sprintf("qa.tx.l%d", l)).AvgBetween(20, 120))
		}
		t.Logf("  buftotal avg=%.0f max=%.0f played=%.1f stall=%.2f",
			res.Series.Get("qa.buftotal").AvgBetween(20, 120),
			seriesMax(res.Series.Get("qa.buftotal")), res.PlayedSec, res.StallSec)
		var rapG, tcpG int64
		for _, r := range res.RAPSrcs {
			rapG += r.RecvBytes
		}
		for _, s := range res.TCPSrcs {
			tcpG += s.GoodputBytes()
		}
		t.Logf("  goodput/flow: rap=%.0f tcp=%.0f (B/s); tcp timeouts=%d frec=%d",
			float64(rapG)/float64(len(res.RAPSrcs))/cfg.Duration,
			float64(tcpG)/float64(len(res.TCPSrcs))/cfg.Duration,
			res.TCPSrcs[0].Timeouts, res.TCPSrcs[0].FastRecover)
	}
}

// seriesMax is Max for logging: empty series print as 0.
func seriesMax(s *trace.Series) float64 {
	hi, _ := s.Max()
	return hi
}
