package scenario

import (
	"bytes"
	"math"
	"testing"

	"qav/internal/core"
	"qav/internal/metrics"
	"qav/internal/sim"
)

// diffSharded runs cfg serially, then at each shard count, and requires
// the RunReport JSON and every trace series to match the serial run
// byte for byte / bit for bit. This is the contract the sharded path
// advertises: -shards is purely a wall-clock knob.
func diffSharded(t *testing.T, cfg Config, shards []int) {
	t.Helper()
	serial := cfg
	serial.Shards = 0
	wantRes, err := Run(serial)
	if err != nil {
		t.Fatal(err)
	}
	var wantRep bytes.Buffer
	if err := wantRes.Report().WriteJSON(&wantRep); err != nil {
		t.Fatal(err)
	}
	wantNames := wantRes.Series.Names()

	for _, n := range shards {
		scfg := cfg
		scfg.Shards = n
		gotRes, err := Run(scfg)
		if err != nil {
			t.Fatalf("shards=%d: %v", n, err)
		}
		var gotRep bytes.Buffer
		if err := gotRes.Report().WriteJSON(&gotRep); err != nil {
			t.Fatalf("shards=%d: %v", n, err)
		}
		if !bytes.Equal(gotRep.Bytes(), wantRep.Bytes()) {
			t.Errorf("shards=%d: RunReport differs from serial\nserial: %s\nshards: %s",
				n, wantRep.Bytes(), gotRep.Bytes())
		}
		gotNames := gotRes.Series.Names()
		if len(gotNames) != len(wantNames) {
			t.Fatalf("shards=%d: %d series, serial %d\nserial %v\nshards %v",
				n, len(gotNames), len(wantNames), wantNames, gotNames)
		}
		for i, name := range wantNames {
			if gotNames[i] != name {
				t.Fatalf("shards=%d: series %d is %q, serial %q (creation order must match: TSV output is ordered)",
					n, i, gotNames[i], name)
			}
			w, g := wantRes.Series.Get(name), gotRes.Series.Get(name)
			if g.Len() != w.Len() {
				t.Errorf("shards=%d: series %q has %d samples, serial %d", n, name, g.Len(), w.Len())
				continue
			}
			for j := range w.T {
				if g.T[j] != w.T[j] || g.V[j] != w.V[j] {
					t.Errorf("shards=%d: series %q sample %d: (%v, %v), serial (%v, %v)",
						n, name, j, g.T[j], g.V[j], w.T[j], w.V[j])
					break
				}
			}
		}
	}
}

// TestShardedFleetDifferential holds the fleet preset — the workload
// sharding exists for — to serial results at several shard counts,
// including counts that do not divide the population and a shard count
// exceeding it (empty shards).
func TestShardedFleetDifferential(t *testing.T) {
	cfg := MustPreset("Fleet", WithFlows(12))
	cfg.Duration = 6
	diffSharded(t, cfg, []int{2, 3, 5, 16})
}

// TestShardedT2Differential exercises the legacy trace mode (full QA
// breakdown, per-RAP series, no fleet aggregates) plus a CBR source
// that starts and stops mid-run, crossing many barrier windows.
func TestShardedT2Differential(t *testing.T) {
	cfg := MustPreset("T2")
	cfg.Duration = 8
	cfg.CBRStart = 2.5037 // mid-window: the start event must not shift
	cfg.CBRStop = 5
	diffSharded(t, cfg, []int{2, 4})
}

// TestShardedSampleOnHorizonDifferential pins SampleInterval exactly to
// the lookahead (min(AccessDelay, LinkDelay) = 0.005): every sampler
// tick lands exactly on a window horizon, the worst case for the
// barrier's strict-below window semantics and the coordinator's tick
// consumption rule.
func TestShardedSampleOnHorizonDifferential(t *testing.T) {
	cfg := MustPreset("Fleet", WithFlows(8))
	cfg.Duration = 2
	cfg.SampleInterval = 0.005
	diffSharded(t, cfg, []int{2, 3})
}

// TestShardedVariedConfigsDifferential sweeps structural variants —
// RED, fine-grain RAP, a RAP-only mix, a TCP-only mix, an uncapped
// legacy trace — through the differential harness.
func TestShardedVariedConfigsDifferential(t *testing.T) {
	base := Config{
		BottleneckRate: 150_000,
		LinkDelay:      0.008,
		AccessDelay:    0.004,
		QueueBytes:     9_000,
		PacketSize:     512,
		Duration:       4,
		SampleInterval: 0.1,
		QA:             core.Params{C: 7_500, Kmax: 2, MaxLayers: 8, StartupSec: 0.5},
	}
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"red", func(c *Config) { c.UseRED = true; c.REDSeed = 42; c.NumQA, c.NumTCP = 2, 3; c.MaxTraceFlows = 2 }},
		{"finegrain", func(c *Config) { c.FineGrainRAP = true; c.NumQA, c.NumRAP = 1, 3; c.MaxTraceFlows = 2 }},
		{"rap-only-legacy", func(c *Config) { c.NumRAP = 4 }},
		{"tcp-heavy", func(c *Config) { c.NumTCP = 6; c.NumQA = 1; c.MaxTraceFlows = 3 }},
		{"cbr-only", func(c *Config) { c.CBRRate = 40_000; c.CBRStop = 3 }},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			cfg.Name = tc.name
			tc.mut(&cfg)
			diffSharded(t, cfg, []int{2, 4})
		})
	}
}

// TestShardedPhysicsCountersMatchSerial attaches a metrics registry on
// both paths and compares the physical counters — transmissions, drops,
// offered load. (Engine-loop counters legitimately differ: the sharded
// run schedules its own barrier-window bookkeeping.)
func TestShardedPhysicsCountersMatchSerial(t *testing.T) {
	snap := func(shards int) map[string]int64 {
		cfg := MustPreset("Fleet", WithFlows(8))
		cfg.Duration = 4
		cfg.Shards = shards
		cfg.Metrics = metrics.NewRegistry()
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Metrics.Snapshot().Counters
	}
	want := snap(0)
	got := snap(4)
	for _, key := range []string{
		"link.tx.packets", "link.tx.bytes", "queue.offered", "queue.dropped",
		"tcp.acked", "qa.rap.sent",
	} {
		if _, ok := want[key]; !ok {
			t.Fatalf("counter %q absent from the serial run (key renamed?)", key)
		}
		if got[key] != want[key] {
			t.Errorf("counter %q: shards=4 %d, serial %d", key, got[key], want[key])
		}
	}
	if got["sim.shard.barriers"] == 0 {
		t.Error("sharded run published no barrier count")
	}
}

// TestShardedRejectsInvalid covers the sharded path's own validation:
// scheduler capture is serial-only, and the lookahead needs positive
// cross-shard delays.
func TestShardedRejectsInvalid(t *testing.T) {
	cfg := MustPreset("T1")
	cfg.Shards = 2
	cfg.SchedRec = &sim.SchedRecorder{}
	if _, err := Run(cfg); err == nil {
		t.Error("SchedRec with Shards > 1 accepted")
	}
	cfg = MustPreset("T1")
	cfg.Shards = 2
	cfg.AccessDelay = 0
	if _, err := Run(cfg); err == nil {
		t.Error("zero AccessDelay with Shards > 1 accepted (no lookahead exists)")
	}
}

// TestNormalizeRejectsNoTraffic is the zero-flow regression: before the
// guard, a config with every class at zero slipped through Normalize
// and the fair-share split divided the bottleneck rate by the zero flow
// total, seeding every RAP config with +Inf.
func TestNormalizeRejectsNoTraffic(t *testing.T) {
	cfg := Config{BottleneckRate: 100_000, Duration: 1, QueueBytes: 10_000}
	if err := cfg.Normalize(); err == nil {
		t.Error("config with no traffic sources normalized without error")
	}
	if _, err := Run(cfg); err == nil {
		t.Error("Run accepted a config with no traffic sources")
	}
	// CBR alone is a valid population (the fair-share split's QA term
	// floors at 1, so no division by zero).
	cfg.CBRRate = 10_000
	if err := cfg.Normalize(); err != nil {
		t.Errorf("CBR-only config rejected: %v", err)
	}
}

// TestNormalizeRejectsNegativeCounts: a negative class count could
// cancel the fair-share denominator exactly.
func TestNormalizeRejectsNegativeCounts(t *testing.T) {
	for _, mut := range []func(*Config){
		func(c *Config) { c.NumTCP = -1 },
		func(c *Config) { c.NumRAP = -2 },
		func(c *Config) { c.NumQA = -1 },
	} {
		cfg := Config{BottleneckRate: 100_000, Duration: 1, QueueBytes: 10_000, NumTCP: 2}
		mut(&cfg)
		if err := cfg.Normalize(); err == nil {
			t.Errorf("negative flow count normalized without error: %+v", cfg)
		}
	}
}

// TestJainIndexGuard is the NaN regression: an all-zero TCP goodput
// population must report fairness 0, not 0/0. encoding/json refuses
// NaN, so the old code made the whole -report artifact fail exactly
// when a run collapsed.
func TestJainIndexGuard(t *testing.T) {
	if v := jainIndex(0, 0, 0); v != 0 {
		t.Errorf("jainIndex(0,0,0) = %v, want 0", v)
	}
	if v := jainIndex(0, 0, 5); v != 0 {
		t.Errorf("jainIndex(0,0,5) = %v, want 0", v)
	}
	if v := jainIndex(6, 12, 3); math.Abs(v-1) > 1e-12 {
		t.Errorf("jainIndex over an even split = %v, want 1", v)
	}
}

// TestReportMarshalsWithZeroGoodput runs a fleet config too short for
// any TCP flow to deliver a byte (TCP starts at 0.05 s) and requires
// the report to marshal and the fairness series to stay finite.
func TestReportMarshalsWithZeroGoodput(t *testing.T) {
	cfg := Config{
		Name:           "zero-goodput",
		BottleneckRate: 100_000,
		LinkDelay:      0.010,
		AccessDelay:    0.005,
		QueueBytes:     10_000,
		NumTCP:         3,
		Duration:       0.04,
		SampleInterval: 0.01,
		MaxTraceFlows:  2,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report()
	if rep.Fleet.JainFairnessTCP != 0 {
		t.Errorf("Jain index over zero goodput = %v, want 0", rep.Fleet.JainFairnessTCP)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatalf("report with zero TCP goodput fails to marshal: %v", err)
	}
	jain := res.Series.Get("fleet.jain.tcp")
	if jain == nil || jain.Len() == 0 {
		t.Fatal("fleet.jain.tcp series missing")
	}
	for i, v := range jain.V {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("fleet.jain.tcp sample %d is %v", i, v)
		}
	}
}

// TestStaggerExactAtScale: the integer-millisecond wrap must make
// offsets that coincide mathematically coincide bitwise at any
// population size, while indices below the wrap keep the historical
// float values bit for bit (the paper presets' byte-identity).
func TestStaggerExactAtScale(t *testing.T) {
	steps := []float64{0.097, 0.111, 0.087}
	for _, step := range steps {
		stepMilli := int64(math.Round(step * 1000))
		// Below the wrap: the classic linear offset, bitwise.
		for i := 0; int64(i)*stepMilli < 1000; i++ {
			if got, want := stagger(i, step), float64(i)*step; got != want {
				t.Fatalf("stagger(%d, %v) = %v, want the historical %v", i, step, got, want)
			}
		}
		// At scale: exact wrap, no accumulated float drift. Offsets one
		// full period apart (1000 steps for these co-prime step sizes)
		// must be bitwise equal — the property math.Mod lost by flow
		// ~10^4, where ulp error in float64(i)*step crossed the rounding
		// boundary of the remainder.
		for _, i := range []int64{11, 500, 10_007, 123_456} {
			a := stagger(int(i+1000), step)
			b := stagger(int(i+2000), step)
			if a != b {
				t.Fatalf("stagger period broken at step %v: i=%d gives %v, i=%d gives %v",
					step, i+1000, a, i+2000, b)
			}
			want := float64((i+1000)*stepMilli%1000) / 1000
			if a != want {
				t.Fatalf("stagger(%d, %v) = %v, want exact %v", i+1000, step, a, want)
			}
		}
		// The offset stays inside the one-second ramp window.
		for _, i := range []int{0, 999, 10_000, 1_000_000} {
			if v := stagger(i, step); v < 0 || v >= 1 {
				t.Fatalf("stagger(%d, %v) = %v outside [0, 1)", i, step, v)
			}
		}
	}
}
