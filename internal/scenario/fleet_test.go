package scenario

import (
	"bytes"
	"testing"

	"qav/internal/metrics"
	"qav/internal/sim"
	"qav/internal/tcp"
)

func TestFleetPresetShape(t *testing.T) {
	cfg := MustPreset("Fleet", WithFlows(10))
	if err := cfg.Normalize(); err != nil {
		t.Fatal(err)
	}
	if cfg.NumQA != 5 || cfg.NumTCP != 5 || cfg.NumRAP != 0 {
		t.Fatalf("Fleet(10) population wrong: %d QA, %d TCP, %d RAP", cfg.NumQA, cfg.NumTCP, cfg.NumRAP)
	}
	if !cfg.WithQA {
		t.Error("NumQA > 0 should normalize WithQA to true")
	}
	if cfg.MaxTraceFlows == 0 {
		t.Error("Fleet preset must select fleet (capped) sampling")
	}
	// The per-flow fair share must not depend on the population.
	big := MustPreset("Fleet", WithFlows(1000))
	if perFlow, perFlowBig := cfg.BottleneckRate/10, big.BottleneckRate/1000; perFlow != perFlowBig {
		t.Errorf("fair share drifts with flow count: %v vs %v", perFlow, perFlowBig)
	}
	if _, err := Preset("Fleet", WithFlows(-1)); err == nil {
		t.Error("negative flow count accepted")
	}
}

// A fleet run must cap per-flow series at MaxTraceFlows per class and
// always emit the fleet-wide aggregates, so trace memory is O(1) in the
// population.
func TestFleetSamplingCappedWithAggregates(t *testing.T) {
	cfg := MustPreset("Fleet", WithFlows(12))
	cfg.Duration = 8
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"qa.rate", "qa1.rate", "qa3.rate", "tcp0.rate", "tcp3.rate",
		"fleet.qa.rate", "fleet.tcp.goodput", "fleet.jain.tcp",
	} {
		if res.Series.Get(name) == nil {
			t.Errorf("series %q missing from fleet run", name)
		}
	}
	// 12 flows = 6 QA + 6 TCP, cap 4: qa.rate..qa3.rate, tcp0..tcp3.
	for _, name := range []string{"qa4.rate", "qa5.rate", "tcp4.rate", "tcp5.rate"} {
		if res.Series.Get(name) != nil {
			t.Errorf("series %q exceeds the MaxTraceFlows cap", name)
		}
	}
	if jain := res.Series.Get("fleet.jain.tcp").Last(); jain <= 0 || jain > 1 {
		t.Errorf("fleet.jain.tcp out of (0,1]: %v", jain)
	}
	agg := res.Series.Get("fleet.tcp.goodput").Avg()
	var direct int64
	for _, src := range res.TCPSrcs {
		direct += src.GoodputBytes()
	}
	// The time-averaged aggregate-goodput series must agree with the
	// cumulative counters (the first sample at t=0 reads 0, hence ~1
	// sample of slack on an 8 s run).
	want := float64(direct) / cfg.Duration
	if agg < want*0.9 || agg > want*1.1 {
		t.Errorf("fleet.tcp.goodput avg %v, want ~%v", agg, want)
	}
	fs := res.Report().Fleet
	if fs.Flows != 12 || fs.QAFlows != 6 || fs.TCPFlows != 6 {
		t.Errorf("fleet report counts wrong: %+v", fs)
	}
	if fs.TCPGoodputBps != want {
		t.Errorf("report TCP goodput %v, want %v", fs.TCPGoodputBps, want)
	}
}

// Fleet runs must stay deterministic at population scale: the report is
// byte-identical across RunAll worker counts, and across event-scheduler
// implementations (heap vs calendar). Scheduler comparisons run without
// metrics — the calendar exports structure-specific gauges the heap
// doesn't have, which is a schema difference, not a dynamics one.
func TestFleetDeterministicAcrossWorkersAndSchedulers(t *testing.T) {
	baseCfg := func() Config {
		cfg := MustPreset("Fleet", WithFlows(16))
		cfg.Duration = 6
		return cfg
	}

	runWith := func(workers int) []byte {
		cfgs := []Config{baseCfg(), baseCfg()}
		for i := range cfgs {
			cfgs[i].Metrics = metrics.NewRegistry()
		}
		results, err := RunAll(cfgs, workers)
		if err != nil {
			t.Fatal(err)
		}
		return marshalReports(t, results)
	}
	want := runWith(1)
	for _, workers := range []int{2, 4} {
		if got := runWith(workers); !bytes.Equal(want, got) {
			t.Fatalf("fleet report differs with %d workers", workers)
		}
	}

	runSched := func(kind sim.SchedulerKind) []byte {
		cfg := baseCfg()
		cfg.Sched = kind
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := res.Report().WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if cal, heap := runSched(sim.SchedCalendar), runSched(sim.SchedHeap); !bytes.Equal(cal, heap) {
		t.Fatal("fleet report differs between calendar and heap schedulers")
	}

	// Both scoreboard kinds must drive bit-identical fleet dynamics too.
	runBoard := func(kind tcp.ScoreboardKind) []byte {
		cfg := baseCfg()
		cfg.Board = kind
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := res.Report().WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if win, mp := runBoard(tcp.BoardWindowed), runBoard(tcp.BoardMap); !bytes.Equal(win, mp) {
		t.Fatal("fleet report differs between windowed and map scoreboards")
	}
}

// Every series the sampler records is pre-sized from
// Duration/SampleInterval: after a run, each series must still be at
// exactly the reserved capacity — any append regrowth would have left a
// larger one.
func TestSamplerPreSizesAllSeries(t *testing.T) {
	for _, mode := range []string{"legacy", "fleet"} {
		t.Run(mode, func(t *testing.T) {
			var cfg Config
			if mode == "legacy" {
				cfg = MustPreset("T1")
				cfg.Duration = 10
			} else {
				cfg = MustPreset("Fleet", WithFlows(8))
				cfg.Duration = 10
			}
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			reserve := int(cfg.Duration/cfg.SampleInterval) + 2
			for _, name := range res.Series.Names() {
				s := res.Series.Get(name)
				if cap(s.T) != reserve || cap(s.V) != reserve {
					t.Errorf("series %q regrew: cap T=%d V=%d, reserved %d",
						name, cap(s.T), cap(s.V), reserve)
				}
				if s.Len() > reserve {
					t.Errorf("series %q has %d samples, more than reserved %d", name, s.Len(), reserve)
				}
			}
		})
	}
}

// The Fleet preset must actually run at scale; a smoke check at a
// moderate population that every class makes progress.
func TestFleetRunsAtModeratePopulation(t *testing.T) {
	if testing.Short() {
		t.Skip("population smoke test")
	}
	cfg := MustPreset("Fleet", WithFlows(100))
	cfg.Duration = 5
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fs := res.Report().Fleet
	if fs.Flows != 100 {
		t.Fatalf("expected 100 flows, got %+v", fs)
	}
	if fs.QAGoodputBps <= 0 || fs.TCPGoodputBps <= 0 {
		t.Fatalf("a flow class made no progress: %+v", fs)
	}
	if fs.JainFairnessTCP < 0.5 {
		t.Errorf("TCP fairness collapsed at 100 flows: %v", fs.JainFairnessTCP)
	}
	for i := 0; i < len(res.QASrcs); i++ {
		if res.QASrcs[i].RecvBytes == 0 {
			t.Fatalf("QA flow %d delivered nothing", i)
		}
	}
}
