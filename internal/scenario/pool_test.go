package scenario

import (
	"fmt"
	"reflect"
	"testing"
)

// sweepConfigs is the shortened T1/T2 x Kmax grid the determinism tests
// run; short durations keep the full cross-check affordable under -race.
func sweepConfigs() []Config {
	var cfgs []Config
	for _, kmax := range []int{2, 4} {
		t1 := MustPreset("T1", WithKmax(kmax))
		t1.Duration = 20
		cfgs = append(cfgs, t1)
		t2 := MustPreset("T2", WithKmax(kmax))
		t2.Duration = 20
		cfgs = append(cfgs, t2)
	}
	return cfgs
}

// assertResultsIdentical compares everything a figure or table consumes:
// every series (names, timestamps, values), the controller event log,
// and the drop statistics. reflect.DeepEqual on float64 slices is exact
// (byte-identical), which is the determinism guarantee RunAll documents.
func assertResultsIdentical(t *testing.T, want, got *Result) {
	t.Helper()
	wantNames := want.Series.Names()
	gotNames := got.Series.Names()
	if !reflect.DeepEqual(wantNames, gotNames) {
		t.Fatalf("series names differ:\nseq: %v\npar: %v", wantNames, gotNames)
	}
	for _, name := range wantNames {
		ws, gs := want.Series.Get(name), got.Series.Get(name)
		if !reflect.DeepEqual(ws.T, gs.T) {
			t.Fatalf("series %q timestamps differ", name)
		}
		if !reflect.DeepEqual(ws.V, gs.V) {
			t.Fatalf("series %q values differ", name)
		}
	}
	if !reflect.DeepEqual(want.Events, got.Events) {
		t.Fatalf("event logs differ: %d vs %d events", len(want.Events), len(got.Events))
	}
	if want.Stats != got.Stats {
		t.Fatalf("drop stats differ:\nseq: %+v\npar: %+v", want.Stats, got.Stats)
	}
	if want.PlayedSec != got.PlayedSec || want.StallSec != got.StallSec || want.LayerSeconds != got.LayerSeconds {
		t.Fatalf("playback summary differs: (%v,%v,%v) vs (%v,%v,%v)",
			want.PlayedSec, want.StallSec, want.LayerSeconds,
			got.PlayedSec, got.StallSec, got.LayerSeconds)
	}
}

// RunAll must produce byte-identical output to the sequential path for
// every worker count, including more workers than configs.
func TestRunAllMatchesSequential(t *testing.T) {
	cfgs := sweepConfigs()
	seq := make([]*Result, len(cfgs))
	for i, cfg := range cfgs {
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		seq[i] = res
	}
	for _, workers := range []int{1, 2, 4, len(cfgs) + 3} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			par, err := RunAll(cfgs, workers)
			if err != nil {
				t.Fatal(err)
			}
			if len(par) != len(cfgs) {
				t.Fatalf("got %d results, want %d", len(par), len(cfgs))
			}
			for i := range cfgs {
				if par[i].Cfg.Name != cfgs[i].Name {
					t.Fatalf("result %d is %q, want %q: ordering lost", i, par[i].Cfg.Name, cfgs[i].Name)
				}
				assertResultsIdentical(t, seq[i], par[i])
			}
		})
	}
}

func TestRunAllEmpty(t *testing.T) {
	res, err := RunAll(nil, 4)
	if err != nil || len(res) != 0 {
		t.Fatalf("RunAll(nil) = %v, %v", res, err)
	}
}

// A failing config must surface the earliest error by input index while
// the remaining runs still complete.
func TestRunAllAggregatesFirstError(t *testing.T) {
	good := MustPreset("SingleRAP")
	good.Duration = 5
	cfgs := []Config{good, {}, good, {}}
	res, err := RunAll(cfgs, 2)
	if err == nil {
		t.Fatal("invalid config did not error")
	}
	if res[0] == nil || res[2] == nil {
		t.Fatal("valid configs did not finish")
	}
	if res[1] != nil || res[3] != nil {
		t.Fatal("invalid configs produced results")
	}
}

// MaxTraceLayers beyond the old fixed [16] counter arrays must run (the
// sampler used to panic with index out of range) and must emit the
// delivered-rate series alongside the transmit-rate series.
func TestRunManyTraceLayersAndDeliveredSeries(t *testing.T) {
	cfg := MustPreset("SingleQA", WithKmax(2))
	cfg.Duration = 10
	cfg.MaxTraceLayers = 20
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"qa.tx.l0", "qa.rx.l0", "qa.tx.l19", "qa.rx.l19"} {
		if res.Series.Get(name) == nil {
			t.Fatalf("series %q missing", name)
		}
	}
	// The base layer is delivered on a private link: its rx series must
	// carry actual data, not stay silently at zero.
	if hi, ok := res.Series.Get("qa.rx.l0").Max(); !ok || hi <= 0 {
		t.Fatal("qa.rx.l0 never saw delivered bytes")
	}
	// Sent and delivered totals must roughly agree on a loss-light link.
	tx := res.Series.Get("qa.tx.l0").Avg()
	rx := res.Series.Get("qa.rx.l0").Avg()
	if rx > tx*1.5 {
		t.Fatalf("delivered rate %v far above transmit rate %v", rx, tx)
	}
}
