package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"qav/internal/metrics"
)

// hybridFleet builds a Fleet whose population is pkt packet-level flows
// (half QA, half TCP) on top of a fluid background of total-pkt flows.
func hybridFleet(t *testing.T, total, pkt int) Config {
	t.Helper()
	cfg, err := Preset("Fleet", WithFlows(pkt), WithFluidFlows(total-pkt))
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

func TestHybridConfigValidation(t *testing.T) {
	cfg := Config{BottleneckRate: 100_000, Duration: 1, QueueBytes: 10_000, FluidTCP: -1}
	if err := cfg.Normalize(); err == nil {
		t.Error("negative FluidTCP normalized without error")
	}
	cfg = Config{BottleneckRate: 100_000, Duration: 1, QueueBytes: 10_000, FluidRAP: -3}
	if err := cfg.Normalize(); err == nil {
		t.Error("negative FluidRAP normalized without error")
	}
	if _, err := Preset("Fleet", WithFluidFlows(-1)); err == nil {
		t.Error("negative fluid flow count accepted by the Fleet preset")
	}

	// A fluid background is a traffic source: fluid-only configs are
	// valid, and get the default coupling interval.
	cfg = Config{BottleneckRate: 100_000, Duration: 1, QueueBytes: 10_000, FluidTCP: 50}
	if err := cfg.Normalize(); err != nil {
		t.Fatalf("fluid-only config rejected: %v", err)
	}
	if cfg.FluidInterval != 0.01 {
		t.Errorf("FluidInterval defaulted to %v, want 0.01", cfg.FluidInterval)
	}

	// WithFluidFlows(0) must leave the Fleet preset byte-identical to a
	// plain one — name, rate, everything.
	plain := MustPreset("Fleet", WithFlows(10))
	zero := MustPreset("Fleet", WithFlows(10), WithFluidFlows(0))
	if fmt.Sprintf("%+v", plain) != fmt.Sprintf("%+v", zero) {
		t.Errorf("WithFluidFlows(0) changed the config:\n%+v\nvs\n%+v", plain, zero)
	}
}

func TestHybridFluidOnlyRun(t *testing.T) {
	cfg := Config{
		Name:           "fluid-only",
		BottleneckRate: 500_000,
		LinkDelay:      0.010,
		AccessDelay:    0.005,
		QueueBytes:     30_000,
		FluidTCP:       40,
		FluidRAP:       40,
		Duration:       10,
		SampleInterval: 0.1,
		Metrics:        metrics.NewRegistry(),
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fluid == nil {
		t.Fatal("hybrid run produced no fluid aggregate")
	}
	rep := res.Report()
	if rep.Fluid == nil {
		t.Fatal("hybrid report carries no fluid stats")
	}
	if rep.Fluid.TCPFlows != 40 || rep.Fluid.RAPFlows != 40 {
		t.Errorf("fluid populations %d/%d, want 40/40", rep.Fluid.TCPFlows, rep.Fluid.RAPFlows)
	}
	// Alone on the link, the aggregate should fill most of it.
	if rep.Fluid.GoodputBps < 0.8*cfg.BottleneckRate {
		t.Errorf("fluid-only goodput %.0f, want >= 80%% of %.0f", rep.Fluid.GoodputBps, cfg.BottleneckRate)
	}
	if rep.Fluid.Backoffs == 0 || rep.Fluid.DroppedBytes <= 0 {
		t.Errorf("saturating aggregate saw no congestion: %+v", rep.Fluid)
	}
	// The trace carries the aggregate's rate, and the metric layer its
	// counters.
	if s := res.Series.Get("fluid.rate"); s == nil || s.Len() == 0 {
		t.Error("fluid.rate series missing from hybrid run")
	}
	snap := res.Metrics.Snapshot()
	for _, name := range []string{"fluid.offered.bytes", "fluid.served.bytes", "fluid.dropped.bytes", "fluid.backoffs"} {
		if _, ok := snap.Counters[name]; !ok {
			t.Errorf("counter %q missing from hybrid run", name)
		}
	}
	for _, name := range []string{"fluid.rate", "fluid.backlog", "fluid.reserved"} {
		if _, ok := snap.Gauges[name]; !ok {
			t.Errorf("gauge %q missing from hybrid run", name)
		}
	}
	// The report marshals, and its top level gains exactly the "fluid"
	// key relative to packet-level runs.
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var top map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &top); err != nil {
		t.Fatal(err)
	}
	if _, ok := top["fluid"]; !ok {
		t.Error("hybrid report JSON missing the fluid key")
	}
}

// Pure packet-level reports must not grow a fluid key or fluid metrics:
// their byte-stability is the regression oracle for everything else.
func TestPurePacketReportHasNoFluidKey(t *testing.T) {
	cfg := MustPreset("Fleet", WithFlows(8))
	cfg.Duration = 2
	cfg.Metrics = metrics.NewRegistry()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.Report().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var top map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &top); err != nil {
		t.Fatal(err)
	}
	if _, ok := top["fluid"]; ok {
		t.Error("pure packet report grew a fluid key")
	}
	snap := res.Metrics.Snapshot()
	for name := range snap.Counters {
		if len(name) >= 6 && name[:6] == "fluid." {
			t.Errorf("pure packet run registered %q", name)
		}
	}
	if res.Series.Get("fluid.rate") != nil {
		t.Error("pure packet run recorded a fluid.rate series")
	}
}

// TestHybridDifferential holds hybrid runs — DropTail and RED — to the
// sharded path's bit-identity contract: -shards stays purely a
// wall-clock knob with a fluid background attached.
func TestHybridDifferential(t *testing.T) {
	for _, tc := range []struct {
		name string
		mut  func(*Config)
	}{
		{"droptail", func(*Config) {}},
		{"red", func(c *Config) { c.UseRED = true; c.REDSeed = 7 }},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			cfg := hybridFleet(t, 100, 12)
			cfg.Duration = 5
			tc.mut(&cfg)
			diffSharded(t, cfg, []int{2, 4})
		})
	}
}

// TestHybridToleranceBands compares hybrid fleets against full
// packet-level references of the same population, queue discipline, and
// per-flow fair share: 100/500/1000 flows, DropTail and RED, each
// hybrid run executed serially and at 4 shards (byte-identical). The
// fluid abstraction must reproduce the reference's aggregate behavior
// within coarse bands — bottleneck utilization, foreground per-flow
// goodput, and queue occupancy — while simulating only 20 packet flows.
func TestHybridToleranceBands(t *testing.T) {
	populations := []int{100}
	if !testing.Short() {
		populations = append(populations, 500, 1000)
	}
	for _, total := range populations {
		for _, red := range []bool{false, true} {
			name := fmt.Sprintf("%dflows-droptail", total)
			if red {
				name = fmt.Sprintf("%dflows-red", total)
			}
			total, red := total, red
			t.Run(name, func(t *testing.T) {
				const pkt = 20
				const dur = 5.0
				mut := func(c *Config) {
					c.Duration = dur
					if red {
						c.UseRED = true
						c.REDSeed = 11
					}
				}

				// The full packet-level reference.
				ref := MustPreset("Fleet", WithFlows(total))
				mut(&ref)
				refRes, err := Run(ref)
				if err != nil {
					t.Fatal(err)
				}

				// The hybrid: 20 packet flows, the rest fluid; serial and
				// 4-shard runs must agree byte for byte.
				hyb := hybridFleet(t, total, pkt)
				mut(&hyb)
				hybRes, err := Run(hyb)
				if err != nil {
					t.Fatal(err)
				}
				shardCfg := hyb
				shardCfg.Shards = 4
				shardRes, err := Run(shardCfg)
				if err != nil {
					t.Fatal(err)
				}
				var serialRep, shardRep bytes.Buffer
				if err := hybRes.Report().WriteJSON(&serialRep); err != nil {
					t.Fatal(err)
				}
				if err := shardRes.Report().WriteJSON(&shardRep); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(serialRep.Bytes(), shardRep.Bytes()) {
					t.Error("hybrid report differs between serial and 4-shard runs")
				}

				if hyb.BottleneckRate != ref.BottleneckRate {
					t.Fatalf("hybrid bottleneck %.0f != reference %.0f: the comparison is meaningless",
						hyb.BottleneckRate, ref.BottleneckRate)
				}

				// Bottleneck utilization: packet tx plus fluid service in
				// the hybrid vs packet tx in the reference.
				util := func(res *Result, fluid bool) float64 {
					var bytes float64
					for _, q := range res.QASrcs {
						bytes += float64(q.RecvBytes)
					}
					for _, r := range res.RAPSrcs {
						bytes += float64(r.RecvBytes)
					}
					for _, tc := range res.TCPSrcs {
						bytes += float64(tc.GoodputBytes())
					}
					if fluid && res.Fluid != nil {
						bytes += res.Fluid.ServedBytes
					}
					return bytes / dur / res.Cfg.BottleneckRate
				}
				refUtil := util(refRes, false)
				hybUtil := util(hybRes, true)
				if hybUtil < refUtil-0.15 || hybUtil > 1.01 {
					t.Errorf("hybrid utilization %.3f vs reference %.3f: outside [-0.15, +capacity]",
						hybUtil, refUtil)
				}

				// Foreground per-flow goodput: the hybrid's packet flows
				// must land within a factor band of the reference's
				// per-flow average — the fluid background must squeeze them
				// like real packet cross-traffic would, in both directions.
				perFlow := func(res *Result) float64 {
					fs := res.fleetStats()
					return (fs.QAGoodputBps + fs.RAPGoodputBps + fs.TCPGoodputBps) / float64(fs.Flows)
				}
				refShare := perFlow(refRes)
				hybShare := perFlow(hybRes)
				if hybShare < 0.5*refShare || hybShare > 2.0*refShare {
					t.Errorf("hybrid foreground per-flow goodput %.0f vs reference %.0f: outside the 2x band",
						hybShare, refShare)
				}

				// Queue occupancy: mean total occupancy within a coarse
				// band of the reference's (same buffer size in bytes).
				refQ := refRes.Series.Get("queue.bytes").Avg()
				hybQ := hybRes.Series.Get("queue.bytes").Avg()
				lim := float64(ref.QueueBytes)
				if diff := hybQ - refQ; diff > 0.5*lim || diff < -0.5*lim {
					t.Errorf("hybrid mean queue %.0f vs reference %.0f: differs by more than half the %d buffer",
						hybQ, refQ, ref.QueueBytes)
				}

				// The modeled background actually carried its population's
				// traffic: its goodput is at least half its fair share.
				fluidShare := ref.BottleneckRate * float64(total-pkt) / float64(total)
				if g := hybRes.Report().Fluid.GoodputBps; g < 0.5*fluidShare {
					t.Errorf("fluid goodput %.0f, want >= half its %.0f fair share", g, fluidShare)
				}
			})
		}
	}
}

// TestHybridDeterministicAcrossWorkersAndShards: hybrid reports must be
// byte-identical across RunAll worker counts and shard counts — the
// fleet determinism guarantee extended to the fluid half.
func TestHybridDeterministicAcrossWorkersAndShards(t *testing.T) {
	baseCfg := func(shards int, reg *metrics.Registry) Config {
		cfg := hybridFleet(t, 200, 12)
		cfg.Duration = 4
		cfg.Shards = shards
		cfg.Metrics = reg
		return cfg
	}
	runWith := func(workers, shards int, withMetrics bool) []byte {
		var regs [2]*metrics.Registry
		if withMetrics {
			regs = [2]*metrics.Registry{metrics.NewRegistry(), metrics.NewRegistry()}
		}
		cfgs := []Config{baseCfg(shards, regs[0]), baseCfg(shards, regs[1])}
		results, err := RunAll(cfgs, workers)
		if err != nil {
			t.Fatal(err)
		}
		return marshalReports(t, results)
	}

	// Dynamics (and fluid stats) are byte-identical across every worker
	// and shard count. Metrics stay off here: the sharded path records
	// its own engine-loop bookkeeping (sim.shard.barriers, window
	// events), a documented snapshot difference that is not a dynamics
	// one.
	want := runWith(1, 0, false)
	for _, workers := range []int{1, 2} {
		for _, shards := range []int{0, 2, 4} {
			if got := runWith(workers, shards, false); !bytes.Equal(want, got) {
				t.Fatalf("hybrid report differs at workers=%d shards=%d", workers, shards)
			}
		}
	}

	// With metrics attached, reports — fluid counters included — must
	// still be byte-identical across worker counts at a fixed shard
	// count.
	for _, shards := range []int{0, 4} {
		want := runWith(1, shards, true)
		if got := runWith(2, shards, true); !bytes.Equal(want, got) {
			t.Fatalf("instrumented hybrid report differs across workers at shards=%d", shards)
		}
	}
}

// TestHybridMillionFlowFleet is the scale target (ROADMAP item 2): a
// million-flow population — 100 packet-level foreground flows riding on
// 999,900 fluid ones — through one bottleneck, in seconds of wall
// clock. Pure packet simulation at this population is ~10^4 times more
// events than the foreground's.
func TestHybridMillionFlowFleet(t *testing.T) {
	if testing.Short() {
		t.Skip("million-flow smoke test")
	}
	const total = 1_000_000
	cfg := hybridFleet(t, total, 100)
	cfg.Duration = 5
	cfg.Metrics = metrics.NewRegistry()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report()
	if rep.Fluid == nil || rep.Fluid.TCPFlows+rep.Fluid.RAPFlows != total-100 {
		t.Fatalf("fluid population wrong: %+v", rep.Fluid)
	}
	// The background must carry its share of a link provisioned for a
	// million flows.
	fluidShare := cfg.BottleneckRate * float64(total-100) / float64(total)
	if rep.Fluid.GoodputBps < 0.5*fluidShare {
		t.Errorf("million-flow fluid goodput %.0f, want >= half of %.0f", rep.Fluid.GoodputBps, fluidShare)
	}
	// The packet foreground still makes progress next to it.
	fs := rep.Fleet
	if fs.QAGoodputBps <= 0 || fs.TCPGoodputBps <= 0 {
		t.Errorf("foreground starved at million-flow scale: %+v", fs)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
}
