package scenario

import (
	"testing"

	"qav/internal/metrics"
	"qav/internal/transport"
)

// TestShardedTransportDifferential holds the non-default backends to
// the same contract as RAP: -shards is purely a wall-clock knob, so a
// fleet of delay or greedy flows must produce bit-identical reports and
// traces at every shard count.
func TestShardedTransportDifferential(t *testing.T) {
	for _, kind := range []transport.Kind{transport.KindDelay, transport.KindGreedy} {
		t.Run(string(kind), func(t *testing.T) {
			cfg := MustPreset("Fleet", WithFlows(12), WithTransport(kind))
			cfg.Duration = 6
			diffSharded(t, cfg, []int{2, 4})
		})
	}
}

// TestShardedTransportQADifferential runs the QA-tracing T1 topology
// (full layer breakdown, per-flow series) over the delay backend, the
// path where a backend bug would corrupt figure-grade traces.
func TestShardedTransportQADifferential(t *testing.T) {
	cfg := MustPreset("T1", WithTransport(transport.KindDelay))
	cfg.Duration = 8
	diffSharded(t, cfg, []int{2, 4})
}

// TestDelayFairWithTCP shares a dumbbell between one delay-based flow
// and one Sack-TCP flow. The classic failure mode of delay-based
// control is starvation — TCP fills the queue, the delay flow keeps
// seeing "overuse" and backs off forever. The adaptive threshold is
// supposed to prevent that; require the delay flow to keep a usable
// share and the pair to use the link.
func TestDelayFairWithTCP(t *testing.T) {
	cfg := Config{
		Name:           "delay-vs-tcp",
		Transport:      transport.KindDelay,
		BottleneckRate: 100_000,
		LinkDelay:      0.010,
		AccessDelay:    0.005,
		QueueBytes:     12_000,
		PacketSize:     512,
		NumRAP:         1, // the cross-traffic slot runs the configured backend
		NumTCP:         1,
		Duration:       30,
		SampleInterval: 0.1,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	capacity := cfg.BottleneckRate * cfg.Duration
	delayBytes := float64(res.RAPSrcs[0].RecvBytes)
	tcpBytes := float64(res.TCPSrcs[0].GoodputBytes())
	if delayBytes < 0.15*capacity {
		t.Errorf("delay flow starved: %.0f bytes, %.1f%% of capacity",
			delayBytes, 100*delayBytes/capacity)
	}
	if tcpBytes < 0.15*capacity {
		t.Errorf("tcp flow starved: %.0f bytes, %.1f%% of capacity",
			tcpBytes, 100*tcpBytes/capacity)
	}
	if util := (delayBytes + tcpBytes) / capacity; util < 0.6 {
		t.Errorf("pair used only %.1f%% of the link", 100*util)
	}
}

// TestDelayLosesLessThanRAP is the backend's reason to exist, measured
// end to end: on the Fig 1 single-flow bottleneck, reacting to queue
// growth instead of drops must lose fewer packets than RAP while still
// using the link.
func TestDelayLosesLessThanRAP(t *testing.T) {
	lost := func(kind transport.Kind) (int64, float64) {
		cfg := MustPreset("SingleRAP", WithTransport(kind))
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		c := res.RAPSrcs[0].Tr.Counters()
		return c.Lost, float64(res.RAPSrcs[0].RecvBytes) / (cfg.BottleneckRate * cfg.Duration)
	}
	rapLost, _ := lost(transport.KindRAP)
	delayLost, delayUtil := lost(transport.KindDelay)
	if delayLost >= rapLost {
		t.Errorf("delay lost %d packets, rap %d; delay should lose less", delayLost, rapLost)
	}
	if delayUtil < 0.5 {
		t.Errorf("delay used only %.1f%% of the lone bottleneck", 100*delayUtil)
	}
}

// TestDelayReportNamespaces pins the A/B observability contract: a
// delay-backend run self-identifies in the report header and publishes
// its metrics under the backend's namespaces (qa.delay.* for the QA
// flow, delay.* for cross traffic, plus the backend-specific overuse
// counter), leaving no collision with a rap run sharing the registry.
func TestDelayReportNamespaces(t *testing.T) {
	cfg := MustPreset("T1", WithTransport(transport.KindDelay))
	cfg.Duration = 15
	cfg.Metrics = metrics.NewRegistry()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report()
	if rep.Transport != "delay" {
		t.Fatalf("report transport %q, want delay", rep.Transport)
	}
	if rep.Name != "T1(Kmax=2)+delay" {
		t.Fatalf("config name %q: the backend suffix keeps A/B legs distinguishable", rep.Name)
	}
	snap := rep.Metrics
	for _, name := range []string{
		"qa.delay.sent", "qa.delay.acked", "qa.delay.backoffs", "qa.delay.overuse",
		"delay.sent", "delay.acked", "delay.overuse",
	} {
		if _, ok := snap.Counters[name]; !ok {
			t.Errorf("counter %q missing from delay-backend report", name)
		}
	}
	for _, name := range []string{"qa.delay.srtt", "qa.delay.ackgap", "delay.srtt"} {
		if _, ok := snap.Histograms[name]; !ok {
			t.Errorf("histogram %q missing from delay-backend report", name)
		}
	}
	for _, name := range []string{"qa.rap.sent", "rap.sent"} {
		if _, ok := snap.Counters[name]; ok {
			t.Errorf("counter %q present in a delay-backend run: namespaces leaked", name)
		}
	}
	if snap.Counters["qa.delay.sent"] == 0 {
		t.Error("QA flow sent nothing over the delay backend")
	}
}

// TestFineGrainRequiresRAP: the fine-grain inter-layer spreading is a
// RAP-internal mechanism; configs combining it with another backend
// must be rejected, not silently ignored.
func TestFineGrainRequiresRAP(t *testing.T) {
	cfg := MustPreset("T1", WithTransport(transport.KindDelay))
	cfg.FineGrainRAP = true
	if _, err := Run(cfg); err == nil {
		t.Fatal("FineGrainRAP + delay backend did not error")
	}
	if _, err := Preset("T1", WithTransport(transport.Kind("bogus"))); err == nil {
		t.Fatal("bogus transport kind accepted by Preset")
	}
}
