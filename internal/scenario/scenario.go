package scenario

import (
	"fmt"

	"qav/internal/cbr"
	"qav/internal/core"
	"qav/internal/metrics"
	"qav/internal/rap"
	"qav/internal/sim"
	"qav/internal/tcp"
	"qav/internal/trace"
)

// Config describes one evaluation run. The zero value is not valid; use
// Preset (or MustPreset) or fill everything explicitly, then Normalize.
type Config struct {
	Name string

	// Topology.
	BottleneckRate float64 // bytes/s
	LinkDelay      float64 // bottleneck one-way propagation, seconds
	AccessDelay    float64 // per-source access delay, seconds
	QueueBytes     int     // bottleneck buffer
	UseRED         bool    // RED instead of DropTail at the bottleneck
	REDSeed        int64

	// Traffic mix.
	PacketSize   int
	NumTCP       int
	NumRAP       int // plain RAP flows (excluding the QA flow)
	WithQA       bool
	FineGrainRAP bool    // use the RAP variant with fine-grain adaptation
	CBRRate      float64 // bytes/s; 0 = no CBR source
	CBRStart     float64
	CBRStop      float64

	// Quality adaptation parameters.
	QA core.Params

	// Run control.
	Duration       float64
	SampleInterval float64
	MaxTraceLayers int // per-layer series recorded (default 4, like Fig 11)

	// Metrics, when non-nil, receives the run's instrumentation: engine
	// event-loop statistics, bottleneck queue counters and queueing-delay
	// histograms, RAP/TCP transport counters, and QA controller decision
	// counters. Instrumentation is observation-only — it never changes
	// simulation results. Sharing one registry across several configs
	// (e.g. a RunAll sweep) aggregates their counts; registration is
	// concurrency-safe and counter sums are deterministic.
	Metrics *metrics.Registry `json:"-"`

	// SchedRec, when non-nil, captures the engine's event-queue
	// operations (schedules and dequeues, in execution order) so the
	// run's scheduler churn can be replayed against a bare structure —
	// see sim.ReplaySched and BenchmarkScheduler. Observation-only.
	SchedRec *sim.SchedRecorder `json:"-"`
}

// Normalize validates the config and fills defaulted fields in place.
// It is the single place effective run parameters are computed: Run
// calls it on its private copy, and flag- or file-driven callers (qasim)
// call it to display or serialize what will actually run.
func (cfg *Config) Normalize() error {
	if cfg.BottleneckRate <= 0 || cfg.Duration <= 0 {
		return fmt.Errorf("scenario: incomplete config %+v", *cfg)
	}
	if cfg.SampleInterval <= 0 {
		cfg.SampleInterval = 0.1
	}
	if cfg.MaxTraceLayers <= 0 {
		cfg.MaxTraceLayers = 4
	}
	if cfg.PacketSize <= 0 {
		cfg.PacketSize = 512
	}
	return nil
}

// Result carries everything a figure or table needs from one run.
type Result struct {
	Cfg    Config
	Series *trace.Set
	Events []core.Event
	Stats  trace.DropStats

	QASrc   *QASource
	RAPSrcs []*RAPSource
	TCPSrcs []*tcp.Source

	// Metrics is the registry the run recorded into (nil when the
	// config had none attached).
	Metrics *metrics.Registry

	// PlayedSec/StallSec/LayerSeconds summarize delivered quality.
	PlayedSec    float64
	StallSec     float64
	LayerSeconds float64
}

// Run executes the scenario and collects traces and metrics.
//
// Each call owns a private engine, queues, and seeded RNGs and touches no
// package-level state, so independent Runs are safe to execute
// concurrently (see RunAll) and always produce identical results for
// identical configs.
func Run(cfg Config) (*Result, error) {
	if err := cfg.Normalize(); err != nil {
		return nil, err
	}

	eng := sim.NewEngine()
	if cfg.SchedRec != nil {
		eng.RecordSched(cfg.SchedRec)
	}
	var queue sim.Queue
	if cfg.UseRED {
		queue = sim.NewRED(sim.REDConfig{
			LimitBytes:  cfg.QueueBytes,
			MeanPktSize: cfg.PacketSize,
			Seed:        cfg.REDSeed,
			// Virtual clock + bottleneck rate enable the Floyd-Jacobson
			// idle-period decay of the queue average.
			Now:      eng.Now,
			LinkRate: cfg.BottleneckRate,
		})
	}
	net := sim.NewDumbbell(eng, sim.DumbbellConfig{
		Rate:        cfg.BottleneckRate,
		Delay:       cfg.LinkDelay,
		AccessDelay: cfg.AccessDelay,
		QueueBytes:  cfg.QueueBytes,
		Queue:       queue,
	})
	baseRTT := net.BaseRTT()

	res := &Result{Cfg: cfg, Series: trace.NewSet(), Metrics: cfg.Metrics}
	flowID := 0

	rapCfg := func() rap.Config {
		return rap.Config{
			PacketSize: cfg.PacketSize,
			InitialRTT: baseRTT,
			// Start around one fair share to shorten convergence.
			InitialRate: cfg.BottleneckRate / float64(1+cfg.NumRAP+cfg.NumTCP),
			FineGrain:   cfg.FineGrainRAP,
		}
	}

	if cfg.WithQA {
		ctrl, err := core.NewController(cfg.QA)
		if err != nil {
			return nil, err
		}
		res.QASrc = NewQASource(eng, net, flowID, rapCfg(), ctrl, 0)
		flowID++
	}
	for i := 0; i < cfg.NumRAP; i++ {
		// Stagger starts slightly to avoid phase locking.
		start := float64(i) * 0.111
		res.RAPSrcs = append(res.RAPSrcs, NewRAPSource(eng, net, flowID, rapCfg(), start))
		flowID++
	}
	for i := 0; i < cfg.NumTCP; i++ {
		start := 0.05 + float64(i)*0.087
		res.TCPSrcs = append(res.TCPSrcs, tcp.NewSource(eng, net, tcp.Config{
			FlowID:     flowID,
			PacketSize: cfg.PacketSize,
			InitialRTT: baseRTT,
			Start:      start,
		}))
		flowID++
	}
	if cfg.CBRRate > 0 {
		cbr.NewSource(eng, net, cbr.Config{
			FlowID:     flowID,
			Rate:       cfg.CBRRate,
			PacketSize: cfg.PacketSize,
			Start:      cfg.CBRStart,
			Stop:       cfg.CBRStop,
		})
		flowID++
	}

	instrument(cfg.Metrics, net, res, flowID)
	startSampler(eng, net, cfg, res)

	eng.RunUntil(cfg.Duration)

	if res.QASrc != nil {
		res.Events = res.QASrc.Ctrl.Events
		res.Stats = trace.ComputeDropStats(res.Events)
		res.PlayedSec = res.QASrc.Ctrl.PlayedSec
		res.StallSec = res.QASrc.Ctrl.StallSec
		res.LayerSeconds = res.QASrc.Ctrl.LayerSeconds
	}
	return res, nil
}

// instrument wires every layer of the run into reg: the engine and
// bottleneck link/queue (with per-flow queueing-delay histograms for the
// nflows constructed sources), the QA flow's RAP sender and controller
// under "qa.*", cross-traffic RAP senders under "rap.*" (shared,
// aggregated), and TCP sources under "tcp.*" (shared, aggregated).
// No-op when reg is nil: uninstrumented runs pay nothing.
func instrument(reg *metrics.Registry, net *sim.Dumbbell, res *Result, nflows int) {
	if reg == nil {
		return
	}
	net.Instrument(reg)
	net.Bneck.InstrumentFlows(reg, nflows)
	if res.QASrc != nil {
		res.QASrc.Snd.Instrument(reg, "qa.rap", rap.NewInstruments(reg, "qa.rap"))
		res.QASrc.Ctrl.Instrument(reg, "qa", core.NewInstruments(reg, "qa"))
	}
	if len(res.RAPSrcs) > 0 {
		ins := rap.NewInstruments(reg, "rap")
		for _, r := range res.RAPSrcs {
			r.Snd.Instrument(reg, "rap", ins)
		}
	}
	if len(res.TCPSrcs) > 0 {
		ins := tcp.NewInstruments(reg, "tcp")
		for _, t := range res.TCPSrcs {
			t.Instrument(reg, "tcp", ins)
		}
	}
}
