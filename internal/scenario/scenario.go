package scenario

import (
	"fmt"
	"math"

	"qav/internal/cbr"
	"qav/internal/core"
	"qav/internal/metrics"
	"qav/internal/rap"
	"qav/internal/sim"
	"qav/internal/tcp"
	"qav/internal/trace"
	"qav/internal/transport"
	"qav/internal/transport/delay"
	"qav/internal/transport/greedy"
)

// Config describes one evaluation run. The zero value is not valid; use
// Preset (or MustPreset) or fill everything explicitly, then Normalize.
type Config struct {
	Name string

	// Topology.
	BottleneckRate float64 // bytes/s
	LinkDelay      float64 // bottleneck one-way propagation, seconds
	AccessDelay    float64 // per-source access delay, seconds
	QueueBytes     int     // bottleneck buffer
	UseRED         bool    // RED instead of DropTail at the bottleneck
	REDSeed        int64

	// Traffic mix.
	PacketSize   int
	NumTCP       int
	NumRAP       int // plain RAP flows (excluding the QA flows)
	NumQA        int // QA flows; WithQA is shorthand for NumQA=1
	WithQA       bool
	FineGrainRAP bool    // use the RAP variant with fine-grain adaptation
	CBRRate      float64 // bytes/s; 0 = no CBR source
	CBRStart     float64
	CBRStop      float64

	// Transport selects the congestion-control backend driving the QA
	// and cross-traffic flows ("" or transport.KindRAP = the paper's
	// RAP; transport.KindDelay = GCC-style delay-based;
	// transport.KindGreedy = loss-only throughput-greedy). TCP and CBR
	// sources are unaffected.
	Transport transport.Kind

	// Hybrid fluid background (DESIGN.md, "Hybrid fluid/packet
	// simulation"): FluidTCP and FluidRAP background flows are modeled
	// as aggregate AIMD rate processes coupled to the bottleneck —
	// reserving link bandwidth and shared-buffer space against the
	// packet-level flows above — instead of being simulated
	// packet-by-packet. Zero (the default) is a pure packet-level run,
	// wired exactly as before. The fluid halves open fleet populations
	// (10^5–10^6 flows) the packet engine cannot reach.
	FluidTCP int
	FluidRAP int
	// FluidInterval is the fluid<->packet coupling step in seconds
	// (default 0.01 when any fluid flows are configured).
	FluidInterval float64

	// Quality adaptation parameters.
	QA core.Params

	// Run control.
	Duration       float64
	SampleInterval float64
	MaxTraceLayers int // per-layer series recorded (default 4, like Fig 11)

	// MaxTraceFlows selects fleet sampling. 0 (the default) is the
	// legacy mode: one fully traced QA flow and a rate series per RAP
	// flow — trace cost grows with the flow population. N > 0 caps the
	// per-flow series at N flows of each class (qa/rap/tcp rate series)
	// and emits fleet-wide aggregates (fleet.qa.rate, fleet.rap.rate,
	// fleet.tcp.goodput, fleet.jain.tcp) so trace cost stays O(1) in
	// flow count. Aggregates are deliberately absent in legacy mode:
	// figure TSVs dump every series, and their byte-stability is the
	// paper-reproduction regression oracle.
	MaxTraceFlows int

	// Shards selects parallel execution. 0 or 1 runs the classic
	// serial engine, untouched. N >= 2 partitions the run across N
	// engines — one for the bottleneck plus N-1 flow shards —
	// synchronized by conservative time barriers (sim.ShardedDumbbell);
	// results are identical to the serial engine, so this is purely a
	// wall-clock knob. Excluded from reports (like the other execution
	// knobs below) so runs differing only in shard count produce
	// byte-identical RunReports.
	Shards int `json:"-"`

	// Board selects the TCP scoreboard representation (default
	// windowed). Both kinds produce bit-identical simulations — this
	// exists for the qabench Fleet A/B pair and differential tests.
	Board tcp.ScoreboardKind `json:"-"`

	// Sched selects the engine's event-queue structure (default
	// calendar). All kinds order events identically; see sim.NewEngineSched.
	Sched sim.SchedulerKind `json:"-"`

	// Metrics, when non-nil, receives the run's instrumentation: engine
	// event-loop statistics, bottleneck queue counters and queueing-delay
	// histograms, RAP/TCP transport counters, and QA controller decision
	// counters. Instrumentation is observation-only — it never changes
	// simulation results. Sharing one registry across several configs
	// (e.g. a RunAll sweep) aggregates their counts; registration is
	// concurrency-safe and counter sums are deterministic.
	Metrics *metrics.Registry `json:"-"`

	// SchedRec, when non-nil, captures the engine's event-queue
	// operations (schedules and dequeues, in execution order) so the
	// run's scheduler churn can be replayed against a bare structure —
	// see sim.ReplaySched and BenchmarkScheduler. Observation-only.
	SchedRec *sim.SchedRecorder `json:"-"`
}

// Normalize validates the config and fills defaulted fields in place.
// It is the single place effective run parameters are computed: Run
// calls it on its private copy, and flag- or file-driven callers (qasim)
// call it to display or serialize what will actually run.
func (cfg *Config) Normalize() error {
	if cfg.BottleneckRate <= 0 || cfg.Duration <= 0 {
		return fmt.Errorf("scenario: incomplete config %+v", *cfg)
	}
	if cfg.NumTCP < 0 || cfg.NumRAP < 0 || cfg.NumQA < 0 {
		// Negative counts would poison the fair-share rate split below
		// Run (division by a zero or negative flow total) before any
		// loop noticed them.
		return fmt.Errorf("scenario: negative flow counts (%d QA, %d RAP, %d TCP)",
			cfg.NumQA, cfg.NumRAP, cfg.NumTCP)
	}
	if cfg.FluidTCP < 0 || cfg.FluidRAP < 0 {
		return fmt.Errorf("scenario: negative fluid flow counts (%d TCP, %d RAP)",
			cfg.FluidTCP, cfg.FluidRAP)
	}
	if cfg.FluidTCP+cfg.FluidRAP > 0 && cfg.FluidInterval <= 0 {
		cfg.FluidInterval = 0.01
	}
	if cfg.SampleInterval <= 0 {
		cfg.SampleInterval = 0.1
	}
	if cfg.MaxTraceLayers <= 0 {
		cfg.MaxTraceLayers = 4
	}
	if cfg.PacketSize <= 0 {
		cfg.PacketSize = 512
	}
	kind, err := transport.ParseKind(string(cfg.Transport))
	if err != nil {
		return err
	}
	cfg.Transport = kind
	if cfg.FineGrainRAP && kind != transport.KindRAP {
		return fmt.Errorf("scenario: FineGrainRAP requires the rap transport, got %q", kind)
	}
	// WithQA is shorthand for one QA flow; NumQA > 0 implies WithQA so
	// both spellings normalize to the same effective config.
	if cfg.WithQA && cfg.NumQA == 0 {
		cfg.NumQA = 1
	}
	if cfg.NumQA > 0 {
		cfg.WithQA = true
	}
	if cfg.NumQA+cfg.NumRAP+cfg.NumTCP+cfg.FluidTCP+cfg.FluidRAP == 0 && cfg.CBRRate <= 0 {
		return fmt.Errorf("scenario: config %q has no traffic sources", cfg.Name)
	}
	return nil
}

// Result carries everything a figure or table needs from one run.
type Result struct {
	Cfg    Config
	Series *trace.Set
	Events []core.Event
	Stats  trace.DropStats

	QASrc   *QASource   // the first QA flow (nil without one); the figures' flow
	QASrcs  []*QASource // all QA flows, fleet runs included
	RAPSrcs []*RAPSource
	TCPSrcs []*tcp.Source

	// Fluid is the background aggregate of a hybrid run (nil for pure
	// packet-level runs). Its cumulative totals are final once Run has
	// returned.
	Fluid *sim.Fluid

	// Metrics is the registry the run recorded into (nil when the
	// config had none attached).
	Metrics *metrics.Registry

	// PlayedSec/StallSec/LayerSeconds summarize delivered quality.
	PlayedSec    float64
	StallSec     float64
	LayerSeconds float64
}

// Run executes the scenario and collects traces and metrics.
//
// Each call owns a private engine, queues, and seeded RNGs and touches no
// package-level state, so independent Runs are safe to execute
// concurrently (see RunAll) and always produce identical results for
// identical configs.
func Run(cfg Config) (*Result, error) {
	if err := cfg.Normalize(); err != nil {
		return nil, err
	}
	if cfg.Shards > 1 {
		return runSharded(cfg)
	}

	eng := sim.NewEngineSched(cfg.Sched)
	if cfg.SchedRec != nil {
		eng.RecordSched(cfg.SchedRec)
	}
	var queue sim.Queue
	if cfg.UseRED {
		queue = sim.NewRED(sim.REDConfig{
			LimitBytes:  cfg.QueueBytes,
			MeanPktSize: cfg.PacketSize,
			Seed:        cfg.REDSeed,
			// Virtual clock + bottleneck rate enable the Floyd-Jacobson
			// idle-period decay of the queue average.
			Now:      eng.Now,
			LinkRate: cfg.BottleneckRate,
		})
	}
	var fq *sim.FluidQueue
	if cfg.FluidTCP+cfg.FluidRAP > 0 {
		inner := queue
		if inner == nil {
			inner = sim.NewDropTail(cfg.QueueBytes)
		}
		fq = sim.NewFluidQueue(inner, cfg.QueueBytes)
		queue = fq
	}
	net := sim.NewDumbbell(eng, sim.DumbbellConfig{
		Rate:        cfg.BottleneckRate,
		Delay:       cfg.LinkDelay,
		AccessDelay: cfg.AccessDelay,
		QueueBytes:  cfg.QueueBytes,
		Queue:       queue,
	})
	baseRTT := net.BaseRTT()

	res := &Result{Cfg: cfg, Series: trace.NewSet(), Metrics: cfg.Metrics}
	if fq != nil {
		// The fluid aggregate is constructed (and its first step
		// scheduled) before any flow, on both execution paths, so its
		// events hold the same scheduling order relative to the packet
		// ones serially and sharded.
		res.Fluid = newFluid(&cfg, eng, net.Bneck, fq, baseRTT)
	}
	nflows, err := buildFlows(cfg, res, baseRTT, func(int) (*sim.Engine, sim.Network) {
		return eng, net
	})
	if err != nil {
		return nil, err
	}

	instrument(cfg.Metrics, net, res, nflows)
	instrumentFluid(cfg.Metrics, res)
	startSampler(eng, net, cfg, res)

	eng.RunUntil(cfg.Duration)

	finishResult(res)
	return res, nil
}

// placement maps a flow to the engine it runs on and the network front
// it sends through. The serial path returns its single engine for every
// flow; the sharded path assigns the flow to a shard and returns that
// shard's engine and mailbox front.
type placement func(flowID int) (*sim.Engine, sim.Network)

// buildFlows constructs the run's traffic mix — QA, RAP, TCP, CBR, in
// that order, with globally increasing flow IDs — placing each flow on
// the engine place returns for it. It returns the total flow count.
// Identical construction order on either execution path is part of the
// serial/sharded equivalence argument: flows that start at the same
// staggered instant are scheduled, and therefore fire, in flow-ID order.
func buildFlows(cfg Config, res *Result, baseRTT float64, place placement) (int, error) {
	flowID := 0

	// The QA term is 1 even without a QA flow — the legacy fair-share
	// seed all paper presets converged from.
	qaShare := cfg.NumQA
	if qaShare < 1 {
		qaShare = 1
	}
	// Start around one fair share to shorten convergence. The expression
	// is kept verbatim from the pre-transport code: it seeds every
	// backend, and for RAP it must stay bit-identical. The fluid
	// populations join the denominator — zero in every pure packet run,
	// keeping the historical value bitwise — because a hybrid
	// bottleneck is scaled for the whole population: seeding 100 packet
	// flows at a million-flow link's packet-only split would start them
	// four orders of magnitude above their fair share.
	initialRate := cfg.BottleneckRate / float64(qaShare+cfg.NumRAP+cfg.NumTCP+cfg.FluidTCP+cfg.FluidRAP)
	newTr := func() transport.Transport {
		switch cfg.Transport {
		case transport.KindDelay:
			return delay.New(delay.Config{Base: transport.BaseConfig{
				PacketSize:  cfg.PacketSize,
				InitialRTT:  baseRTT,
				InitialRate: initialRate,
			}})
		case transport.KindGreedy:
			return greedy.New(greedy.Config{Base: transport.BaseConfig{
				PacketSize:  cfg.PacketSize,
				InitialRTT:  baseRTT,
				InitialRate: initialRate,
			}})
		default:
			return transport.NewRAP(rap.Config{
				PacketSize:  cfg.PacketSize,
				InitialRTT:  baseRTT,
				InitialRate: initialRate,
				FineGrain:   cfg.FineGrainRAP,
			})
		}
	}

	for i := 0; i < cfg.NumQA; i++ {
		ctrl, err := core.NewController(cfg.QA)
		if err != nil {
			return 0, err
		}
		// The first QA flow starts at 0 like the paper runs; additional
		// fleet flows stagger to avoid phase locking.
		eng, net := place(flowID)
		res.QASrcs = append(res.QASrcs, NewQASource(eng, net, flowID, newTr(), ctrl, stagger(i, 0.097)))
		flowID++
	}
	if len(res.QASrcs) > 0 {
		res.QASrc = res.QASrcs[0]
	}
	for i := 0; i < cfg.NumRAP; i++ {
		// Stagger starts slightly to avoid phase locking.
		eng, net := place(flowID)
		res.RAPSrcs = append(res.RAPSrcs, NewRAPSource(eng, net, flowID, newTr(), stagger(i, 0.111)))
		flowID++
	}
	for i := 0; i < cfg.NumTCP; i++ {
		start := 0.05 + stagger(i, 0.087)
		eng, net := place(flowID)
		res.TCPSrcs = append(res.TCPSrcs, tcp.NewSource(eng, net, tcp.Config{
			FlowID:     flowID,
			PacketSize: cfg.PacketSize,
			InitialRTT: baseRTT,
			Start:      start,
			Board:      cfg.Board,
		}))
		flowID++
	}
	if cfg.CBRRate > 0 {
		eng, net := place(flowID)
		cbr.NewSource(eng, net, cbr.Config{
			FlowID:     flowID,
			Rate:       cfg.CBRRate,
			PacketSize: cfg.PacketSize,
			Start:      cfg.CBRStart,
			Stop:       cfg.CBRStop,
		})
		flowID++
	}
	return flowID, nil
}

// newFluid builds the hybrid run's background aggregate — one AIMD
// class per configured population, each seeded at its fair share of
// the bottleneck so convergence matches the packet flows' seeding —
// attaches it to the bottleneck link and shared buffer, and schedules
// its coupling steps. Shared by the serial and sharded paths; eng must
// be the engine that owns the link (the bottleneck shard's).
func newFluid(cfg *Config, eng *sim.Engine, link *sim.Link, fq *sim.FluidQueue, baseRTT float64) *sim.Fluid {
	// The packet flows' seed formula above (buildFlows) is frozen for
	// RAP bit-stability and deliberately ignores the fluid population;
	// the fluid classes seed at the all-population fair share, which is
	// what the background would converge to anyway.
	total := cfg.NumQA + cfg.NumRAP + cfg.NumTCP + cfg.FluidTCP + cfg.FluidRAP
	share := cfg.BottleneckRate / float64(total)
	var classes []sim.FluidClassConfig
	class := func(name string, flows int, beta float64) {
		if flows > 0 {
			classes = append(classes, sim.FluidClassConfig{
				Name:        name,
				Flows:       flows,
				PacketSize:  cfg.PacketSize,
				RTT:         baseRTT,
				Beta:        beta,
				InitialRate: share * float64(flows),
			})
		}
	}
	class("tcp", cfg.FluidTCP, 0.5)
	class("rap", cfg.FluidRAP, 0.5)
	f := sim.NewFluid(eng, link, fq, sim.FluidConfig{
		Interval: cfg.FluidInterval,
		Classes:  classes,
	})
	f.Start()
	return f
}

// finishResult copies the first QA flow's delivered-quality summary
// onto the result, after the engine(s) have run to completion.
func finishResult(res *Result) {
	if res.QASrc != nil {
		res.Events = res.QASrc.Ctrl.Events
		res.Stats = trace.ComputeDropStats(res.Events)
		res.PlayedSec = res.QASrc.Ctrl.PlayedSec
		res.StallSec = res.QASrc.Ctrl.StallSec
		res.LayerSeconds = res.QASrc.Ctrl.LayerSeconds
	}
}

// stagger spreads flow i's start time over a bounded one-second window.
// Small populations get the classic linear offsets — float64(i)*step,
// byte-identical to what every paper preset has always produced — while
// a fleet of any size finishes ramping up within its first second
// instead of taking O(flows) seconds to start.
//
// The wrap is computed in integer milliseconds, not with math.Mod:
// float64(i)*step accumulates rounding error as i grows, so the float
// remainder of flow 10_000 depends on nothing but luck, and two flows
// whose offsets should coincide exactly (i and i plus one full period,
// 1000/gcd(stepMilli, 1000) steps) would drift apart. Every stagger
// step is a whole number of milliseconds, making the integer form
// exact at any population size —
// a prerequisite for the shard-vs-serial differential suite, where
// coinciding start times must coincide bitwise regardless of which
// shard constructs the flow.
func stagger(i int, step float64) float64 {
	stepMilli := int64(math.Round(step * 1000))
	if m := int64(i) * stepMilli; m >= 1000 {
		return float64(m%1000) / 1000
	}
	// Below the wrap the product is exact to the last bit of
	// float64(i)*step, the historical value; keep it bitwise.
	return float64(i) * step
}

// instrument wires every layer of the run into reg: the engine and
// bottleneck link/queue (with per-flow queueing-delay histograms for the
// nflows constructed sources), the QA flow's RAP sender and controller
// under "qa.*", cross-traffic RAP senders under "rap.*" (shared,
// aggregated), and TCP sources under "tcp.*" (shared, aggregated).
// No-op when reg is nil: uninstrumented runs pay nothing.
func instrument(reg *metrics.Registry, net *sim.Dumbbell, res *Result, nflows int) {
	if reg == nil {
		return
	}
	net.Instrument(reg)
	net.Bneck.InstrumentFlows(reg, nflows)
	instrumentSources(reg, res)
}

// instrumentFluid registers the hybrid background's "fluid.*" metrics,
// shared by the serial and sharded paths. No-op without a fluid half,
// so pure packet-level reports keep their exact metric name set.
func instrumentFluid(reg *metrics.Registry, res *Result) {
	if reg == nil || res.Fluid == nil {
		return
	}
	res.Fluid.Instrument(reg)
}

// instrumentSources registers the transport- and controller-level
// instruments, shared between the serial and sharded paths (the
// shared Instruments use atomic histograms and snapshot-time Func
// reads, so multi-engine execution records into them safely).
//
// Transport namespaces derive from the backend kind — "qa.<kind>" for
// the QA flows and "<kind>" for cross traffic — so the default RAP
// backend keeps the historical "qa.rap.*"/"rap.*" names byte-stable
// while delay/greedy runs report under their own ("qa.delay.*", ...).
func instrumentSources(reg *metrics.Registry, res *Result) {
	kind := res.Cfg.Transport
	if kind == "" {
		kind = transport.KindRAP
	}
	if len(res.QASrcs) > 0 {
		// Shared instruments, like the cross-traffic/tcp. ones below:
		// counters aggregate and Func metrics sum across a fleet's QA
		// flows.
		prefix := "qa." + string(kind)
		trIns := transport.NewInstruments(reg, prefix)
		coreIns := core.NewInstruments(reg, "qa")
		for _, q := range res.QASrcs {
			q.Tr.Instrument(reg, prefix, trIns)
			q.Ctrl.Instrument(reg, "qa", coreIns)
		}
	}
	if len(res.RAPSrcs) > 0 {
		ins := transport.NewInstruments(reg, string(kind))
		for _, r := range res.RAPSrcs {
			r.Tr.Instrument(reg, string(kind), ins)
		}
	}
	if len(res.TCPSrcs) > 0 {
		ins := tcp.NewInstruments(reg, "tcp")
		for _, t := range res.TCPSrcs {
			t.Instrument(reg, "tcp", ins)
		}
	}
}
