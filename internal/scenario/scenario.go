package scenario

import (
	"fmt"

	"qav/internal/cbr"
	"qav/internal/core"
	"qav/internal/rap"
	"qav/internal/sim"
	"qav/internal/tcp"
	"qav/internal/trace"
)

// Config describes one evaluation run. The zero value is not valid; use
// one of the preset constructors (T1, T2, SingleRAP, SingleQA) or fill
// everything explicitly.
type Config struct {
	Name string

	// Topology.
	BottleneckRate float64 // bytes/s
	LinkDelay      float64 // bottleneck one-way propagation, seconds
	AccessDelay    float64 // per-source access delay, seconds
	QueueBytes     int     // bottleneck buffer
	UseRED         bool    // RED instead of DropTail at the bottleneck
	REDSeed        int64

	// Traffic mix.
	PacketSize   int
	NumTCP       int
	NumRAP       int // plain RAP flows (excluding the QA flow)
	WithQA       bool
	FineGrainRAP bool    // use the RAP variant with fine-grain adaptation
	CBRRate      float64 // bytes/s; 0 = no CBR source
	CBRStart     float64
	CBRStop      float64

	// Quality adaptation parameters.
	QA core.Params

	// Run control.
	Duration       float64
	SampleInterval float64
	MaxTraceLayers int // per-layer series recorded (default 4, like Fig 11)
}

// Result carries everything a figure or table needs from one run.
type Result struct {
	Cfg    Config
	Series *trace.Set
	Events []core.Event
	Stats  trace.DropStats

	QASrc   *QASource
	RAPSrcs []*RAPSource
	TCPSrcs []*tcp.Source

	// PlayedSec/StallSec/LayerSeconds summarize delivered quality.
	PlayedSec    float64
	StallSec     float64
	LayerSeconds float64
}

// T1 is the paper's first test: the QA flow with 9 more RAP flows and 10
// Sack-TCP flows through an 800 Kb/s, 40 ms RTT bottleneck (Fig 11).
// The per-layer consumption rate is a quarter of the 20-flow fair share,
// so the QA flow rides at roughly 2-4 active layers like the paper's
// trace. scale multiplies the bottleneck (and C) to reproduce the
// paper's published axis values (scale 8 ≈ C of 10 KB/s).
func T1(kmax int, scale float64) Config {
	if scale <= 0 {
		scale = 1
	}
	rate := 100_000.0 * scale // 800 Kb/s in bytes/s
	fair := rate / 20
	return Config{
		Name:           fmt.Sprintf("T1(Kmax=%d)", kmax),
		BottleneckRate: rate,
		LinkDelay:      0.010,
		AccessDelay:    0.005,
		QueueBytes:     int(rate * 0.12), // ~2.4 RTT of buffering
		PacketSize:     512,
		NumTCP:         10,
		NumRAP:         9,
		WithQA:         true,
		QA: core.Params{
			C:          fair / 4,
			Kmax:       kmax,
			MaxLayers:  8,
			StartupSec: 1.0,
		},
		Duration:       120,
		SampleInterval: 0.1,
	}
}

// T2 is T1 plus a CBR burst at half the bottleneck bandwidth between 30 s
// and 60 s (Fig 13's responsiveness experiment).
func T2(kmax int, scale float64) Config {
	cfg := T1(kmax, scale)
	cfg.Name = fmt.Sprintf("T2(Kmax=%d)", kmax)
	cfg.CBRRate = cfg.BottleneckRate / 2
	cfg.CBRStart = 30
	cfg.CBRStop = 60
	cfg.Duration = 90
	return cfg
}

// SingleRAP is Fig 1's setup: one RAP flow alone on a small bottleneck,
// showing the sawtooth.
func SingleRAP() Config {
	return Config{
		Name:           "SingleRAP",
		BottleneckRate: 12_000, // ~12 KB/s, like Fig 1's axis
		LinkDelay:      0.010,
		AccessDelay:    0.005,
		QueueBytes:     4 * 512,
		PacketSize:     512,
		NumRAP:         1,
		Duration:       40,
		SampleInterval: 0.05,
	}
}

// SingleQA is Fig 2's conceptual setup: one QA flow alone on a bottleneck
// sized for about two layers, so individual filling/draining phases are
// visible.
func SingleQA(kmax int) Config {
	return Config{
		Name:           "SingleQA",
		BottleneckRate: 12_000,
		LinkDelay:      0.010,
		AccessDelay:    0.005,
		QueueBytes:     4 * 512,
		PacketSize:     512,
		WithQA:         true,
		QA: core.Params{
			C:          3_000,
			Kmax:       kmax,
			MaxLayers:  8,
			StartupSec: 1.0,
		},
		Duration:       60,
		SampleInterval: 0.05,
	}
}

// Run executes the scenario and collects traces and metrics.
//
// Each call owns a private engine, queues, and seeded RNGs and touches no
// package-level state, so independent Runs are safe to execute
// concurrently (see RunAll) and always produce identical results for
// identical configs.
func Run(cfg Config) (*Result, error) {
	if cfg.BottleneckRate <= 0 || cfg.Duration <= 0 {
		return nil, fmt.Errorf("scenario: incomplete config %+v", cfg)
	}
	if cfg.SampleInterval <= 0 {
		cfg.SampleInterval = 0.1
	}
	if cfg.MaxTraceLayers <= 0 {
		cfg.MaxTraceLayers = 4
	}
	if cfg.PacketSize <= 0 {
		cfg.PacketSize = 512
	}

	eng := sim.NewEngine()
	var queue sim.Queue
	if cfg.UseRED {
		queue = sim.NewRED(sim.REDConfig{
			LimitBytes:  cfg.QueueBytes,
			MeanPktSize: cfg.PacketSize,
			Seed:        cfg.REDSeed,
		})
	}
	net := sim.NewDumbbell(eng, sim.DumbbellConfig{
		Rate:        cfg.BottleneckRate,
		Delay:       cfg.LinkDelay,
		AccessDelay: cfg.AccessDelay,
		QueueBytes:  cfg.QueueBytes,
		Queue:       queue,
	})
	baseRTT := net.BaseRTT()

	res := &Result{Cfg: cfg, Series: trace.NewSet()}
	flowID := 0

	rapCfg := func() rap.Config {
		return rap.Config{
			PacketSize: cfg.PacketSize,
			InitialRTT: baseRTT,
			// Start around one fair share to shorten convergence.
			InitialRate: cfg.BottleneckRate / float64(1+cfg.NumRAP+cfg.NumTCP),
			FineGrain:   cfg.FineGrainRAP,
		}
	}

	if cfg.WithQA {
		ctrl, err := core.NewController(cfg.QA)
		if err != nil {
			return nil, err
		}
		res.QASrc = NewQASource(eng, net, flowID, rapCfg(), ctrl, 0)
		flowID++
	}
	for i := 0; i < cfg.NumRAP; i++ {
		// Stagger starts slightly to avoid phase locking.
		start := float64(i) * 0.111
		res.RAPSrcs = append(res.RAPSrcs, NewRAPSource(eng, net, flowID, rapCfg(), start))
		flowID++
	}
	for i := 0; i < cfg.NumTCP; i++ {
		start := 0.05 + float64(i)*0.087
		res.TCPSrcs = append(res.TCPSrcs, tcp.NewSource(eng, net, tcp.Config{
			FlowID:     flowID,
			PacketSize: cfg.PacketSize,
			InitialRTT: baseRTT,
			Start:      start,
		}))
		flowID++
	}
	if cfg.CBRRate > 0 {
		cbr.NewSource(eng, net, cbr.Config{
			FlowID:     flowID,
			Rate:       cfg.CBRRate,
			PacketSize: cfg.PacketSize,
			Start:      cfg.CBRStart,
			Stop:       cfg.CBRStop,
		})
		flowID++
	}

	// Periodic sampler. Series handles and per-layer counters are hoisted
	// out of the closure: resolving fmt.Sprintf names through the set's
	// map on every 0.1 s tick for every layer dominated the sample cost.
	// The counters are sized from the config, so MaxTraceLayers > 16 no
	// longer indexes out of range.
	type layerSeries struct {
		buf, share, drain, tx, rx *trace.Series
	}
	lastSent := make([]int64, cfg.MaxTraceLayers)
	lastDelivered := make([]int64, cfg.MaxTraceLayers)
	var (
		sRate, sCons, sLayers, sBufTotal *trace.Series
		perLayer                         []layerSeries
	)
	if res.QASrc != nil {
		sRate = res.Series.Series("qa.rate")
		sCons = res.Series.Series("qa.consumption")
		sLayers = res.Series.Series("qa.layers")
		sBufTotal = res.Series.Series("qa.buftotal")
		perLayer = make([]layerSeries, cfg.MaxTraceLayers)
		for l := range perLayer {
			perLayer[l] = layerSeries{
				buf:   res.Series.Series(fmt.Sprintf("qa.buf.l%d", l)),
				share: res.Series.Series(fmt.Sprintf("qa.share.l%d", l)),
				drain: res.Series.Series(fmt.Sprintf("qa.drain.l%d", l)),
				tx:    res.Series.Series(fmt.Sprintf("qa.tx.l%d", l)),
				rx:    res.Series.Series(fmt.Sprintf("qa.rx.l%d", l)),
			}
		}
	}
	sRap := make([]*trace.Series, len(res.RAPSrcs))
	for i := range sRap {
		sRap[i] = res.Series.Series(fmt.Sprintf("rap%d.rate", i))
	}
	sQueue := res.Series.Series("queue.bytes")

	var sample func()
	sample = func() {
		now := eng.Now()
		if res.QASrc != nil {
			q := res.QASrc
			// Tick the controller so consumption is current at sample time.
			q.Ctrl.Tick(now, q.Snd.Rate(), q.Snd.ConservativeSlope())
			sRate.Add(now, q.Snd.Rate())
			sCons.Add(now, q.Ctrl.ConsumptionRate())
			sLayers.Add(now, float64(q.Ctrl.ActiveLayers()))
			sBufTotal.Add(now, q.Ctrl.TotalBuf())
			bufs := q.Ctrl.Buffers()
			shares := q.Ctrl.Shares()
			for l := 0; l < cfg.MaxTraceLayers; l++ {
				var buf, share, drain float64
				if l < len(bufs) {
					buf = bufs[l]
					share = shares[l]
					if q.Ctrl.Playing() {
						drain = cfg.QA.C - share
						if drain < 0 {
							drain = 0
						}
					}
				}
				var sent, delivered int64
				if l < len(q.SentByLayer) {
					sent = q.SentByLayer[l]
				}
				if l < len(q.DeliveredByLayer) {
					delivered = q.DeliveredByLayer[l]
				}
				txRate := float64(sent-lastSent[l]) / cfg.SampleInterval
				rxRate := float64(delivered-lastDelivered[l]) / cfg.SampleInterval
				lastSent[l] = sent
				lastDelivered[l] = delivered
				perLayer[l].buf.Add(now, buf)
				perLayer[l].share.Add(now, share)
				perLayer[l].drain.Add(now, drain)
				perLayer[l].tx.Add(now, txRate)
				perLayer[l].rx.Add(now, rxRate)
			}
		}
		for i, r := range res.RAPSrcs {
			sRap[i].Add(now, r.Snd.Rate())
		}
		sQueue.Add(now, float64(net.Q.Bytes()))
		if now+cfg.SampleInterval <= cfg.Duration {
			eng.After(cfg.SampleInterval, sample)
		}
	}
	eng.At(0, sample)

	eng.RunUntil(cfg.Duration)

	if res.QASrc != nil {
		res.Events = res.QASrc.Ctrl.Events
		res.Stats = trace.ComputeDropStats(res.Events)
		res.PlayedSec = res.QASrc.Ctrl.PlayedSec
		res.StallSec = res.QASrc.Ctrl.StallSec
		res.LayerSeconds = res.QASrc.Ctrl.LayerSeconds
	}
	return res, nil
}
