package scenario

import (
	"fmt"
	"sort"

	"qav/internal/core"
	"qav/internal/transport"
)

// presetOpts are the knobs a preset builder consumes. Options mutate
// this struct; builders read it.
type presetOpts struct {
	kmax      int
	scale     float64
	flows     int
	fluid     int
	transport transport.Kind
}

// PresetOption adjusts a preset's parameters; see WithKmax and
// WithScale.
type PresetOption func(*presetOpts)

// WithKmax sets the quality adaptation smoothing factor (default 2).
// Ignored by presets without a QA flow (SingleRAP).
func WithKmax(k int) PresetOption { return func(o *presetOpts) { o.kmax = k } }

// WithScale multiplies the bottleneck bandwidth and per-layer
// consumption rate (default 1). Scale 8 reproduces the paper's
// published figure axes (C = 10 KB/s). Ignored by the single-flow
// presets, whose bottlenecks are fixed by their figures.
func WithScale(s float64) PresetOption { return func(o *presetOpts) { o.scale = s } }

// WithFlows sets the total flow population of the Fleet preset (half QA
// flows, half Sack-TCP; default 100). The bottleneck capacity and queue
// scale with the flow count so each flow's fair share stays constant.
// Ignored by the fixed-population paper presets.
func WithFlows(n int) PresetOption { return func(o *presetOpts) { o.flows = n } }

// WithFluidFlows adds n hybrid background flows to the Fleet preset —
// half modeled as an aggregate TCP class, half as an aggregate RAP
// class (fluid AIMD rate processes, not packet-level; see DESIGN.md,
// "Hybrid fluid/packet simulation"). The bottleneck capacity and queue
// scale with the fluid population too, keeping every flow's fair share
// constant, so a hybrid Fleet is directly comparable to a pure packet
// Fleet of the same total population. Default 0: a pure packet-level
// run with a byte-identical config. Ignored by the fixed-population
// paper presets.
func WithFluidFlows(n int) PresetOption { return func(o *presetOpts) { o.fluid = n } }

// WithTransport selects the congestion-control backend for the preset's
// QA and cross-traffic flows (default transport.KindRAP). Non-default
// backends are recorded in the config name ("T1(Kmax=2)+delay") so A/B
// sweeps sharing a report file stay distinguishable.
func WithTransport(k transport.Kind) PresetOption {
	return func(o *presetOpts) { o.transport = k }
}

// presets maps preset names to builders. Builders receive validated
// options and must return a complete config (Run still normalizes it).
var presets = map[string]func(presetOpts) Config{
	"T1":        presetT1,
	"T2":        presetT2,
	"SingleRAP": presetSingleRAP,
	"SingleQA":  presetSingleQA,
	"Fleet":     presetFleet,
}

// Presets returns the available preset names, sorted.
func Presets() []string {
	names := make([]string, 0, len(presets))
	for name := range presets {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Preset builds a named evaluation setup:
//
//   - "T1": the QA flow with 9 RAP and 10 Sack-TCP flows through an
//     800 Kb/s, 40 ms RTT bottleneck (Fig 11)
//   - "T2": T1 plus a CBR burst at half the bottleneck bandwidth
//     between 30 s and 60 s (Fig 13)
//   - "SingleRAP": one RAP flow alone on a small bottleneck (Fig 1)
//   - "SingleQA": one QA flow alone on a bottleneck sized for about
//     two layers (Fig 2)
//
// Options default to Kmax 2 and scale 1:
//
//	cfg, err := scenario.Preset("T1", scenario.WithKmax(2), scenario.WithScale(8))
func Preset(name string, opts ...PresetOption) (Config, error) {
	build, ok := presets[name]
	if !ok {
		return Config{}, fmt.Errorf("scenario: unknown preset %q (have %v)", name, Presets())
	}
	o := presetOpts{kmax: 2, scale: 1}
	for _, opt := range opts {
		opt(&o)
	}
	if o.kmax < 1 {
		return Config{}, fmt.Errorf("scenario: preset %q: Kmax must be >= 1, got %d", name, o.kmax)
	}
	if o.scale <= 0 {
		return Config{}, fmt.Errorf("scenario: preset %q: scale must be positive, got %v", name, o.scale)
	}
	if o.flows < 0 {
		return Config{}, fmt.Errorf("scenario: preset %q: flows must be >= 0, got %d", name, o.flows)
	}
	if o.fluid < 0 {
		return Config{}, fmt.Errorf("scenario: preset %q: fluid flows must be >= 0, got %d", name, o.fluid)
	}
	kind, err := transport.ParseKind(string(o.transport))
	if err != nil {
		return Config{}, fmt.Errorf("scenario: preset %q: %v", name, err)
	}
	cfg := build(o)
	cfg.Transport = kind
	if kind != transport.KindRAP {
		// The default backend keeps historical names byte-stable; A/B
		// legs self-identify.
		cfg.Name += "+" + string(kind)
	}
	return cfg, nil
}

// MustPreset is Preset, panicking on error; for static configurations
// whose names and options are known good.
func MustPreset(name string, opts ...PresetOption) Config {
	cfg, err := Preset(name, opts...)
	if err != nil {
		panic(err)
	}
	return cfg
}

// presetT1 is the paper's first test: the QA flow with 9 more RAP flows
// and 10 Sack-TCP flows through an 800 Kb/s, 40 ms RTT bottleneck
// (Fig 11). The per-layer consumption rate is a quarter of the 20-flow
// fair share, so the QA flow rides at roughly 2-4 active layers like
// the paper's trace. The scale multiplies the bottleneck (and C) to
// reproduce the paper's published axis values (scale 8 ≈ C of 10 KB/s).
func presetT1(o presetOpts) Config {
	rate := 100_000.0 * o.scale // 800 Kb/s in bytes/s
	fair := rate / 20
	return Config{
		Name:           fmt.Sprintf("T1(Kmax=%d)", o.kmax),
		BottleneckRate: rate,
		LinkDelay:      0.010,
		AccessDelay:    0.005,
		QueueBytes:     int(rate * 0.12), // ~2.4 RTT of buffering
		PacketSize:     512,
		NumTCP:         10,
		NumRAP:         9,
		WithQA:         true,
		QA: core.Params{
			C:          fair / 4,
			Kmax:       o.kmax,
			MaxLayers:  8,
			StartupSec: 1.0,
		},
		Duration:       120,
		SampleInterval: 0.1,
	}
}

// presetT2 is T1 plus a CBR burst at half the bottleneck bandwidth
// between 30 s and 60 s (Fig 13's responsiveness experiment).
func presetT2(o presetOpts) Config {
	cfg := presetT1(o)
	cfg.Name = fmt.Sprintf("T2(Kmax=%d)", o.kmax)
	cfg.CBRRate = cfg.BottleneckRate / 2
	cfg.CBRStart = 30
	cfg.CBRStop = 60
	cfg.Duration = 90
	return cfg
}

// presetFleet is the many-flow workload: half quality-adaptive flows,
// half Sack-TCP, sharing one dumbbell whose capacity and buffering
// scale with the population so each flow's fair share (5 KB/s × scale,
// T1's share) is flow-count-invariant. Per-flow tracing is capped
// (MaxTraceFlows) and fleet aggregates are emitted, so trace cost does
// not grow with the population; runs are kept short (30 s) because the
// event rate scales with the flow count.
func presetFleet(o presetOpts) Config {
	flows := o.flows
	if flows == 0 {
		flows = 100
	}
	nQA := flows / 2
	nTCP := flows - nQA
	fluidTCP := o.fluid / 2
	fluidRAP := o.fluid - fluidTCP
	fair := 5_000.0 * o.scale
	rate := fair * float64(flows+o.fluid)
	// Pure packet Fleets keep their historical name byte-stable; hybrid
	// runs self-identify.
	name := fmt.Sprintf("Fleet(flows=%d,Kmax=%d)", flows, o.kmax)
	if o.fluid > 0 {
		name = fmt.Sprintf("Fleet(flows=%d,fluid=%d,Kmax=%d)", flows, o.fluid, o.kmax)
	}
	return Config{
		Name:           name,
		BottleneckRate: rate,
		LinkDelay:      0.010,
		AccessDelay:    0.005,
		QueueBytes:     int(rate * 0.06), // ~1.2 RTT: a tight buffer keeps the fleet probing
		PacketSize:     512,
		NumTCP:         nTCP,
		NumQA:          nQA,
		FluidTCP:       fluidTCP,
		FluidRAP:       fluidRAP,
		QA: core.Params{
			C:          fair / 4,
			Kmax:       o.kmax,
			MaxLayers:  8,
			StartupSec: 1.0,
		},
		Duration:       30,
		SampleInterval: 0.1,
		MaxTraceFlows:  4,
	}
}

// presetSingleRAP is Fig 1's setup: one RAP flow alone on a small
// bottleneck, showing the sawtooth.
func presetSingleRAP(presetOpts) Config {
	return Config{
		Name:           "SingleRAP",
		BottleneckRate: 12_000, // ~12 KB/s, like Fig 1's axis
		LinkDelay:      0.010,
		AccessDelay:    0.005,
		QueueBytes:     4 * 512,
		PacketSize:     512,
		NumRAP:         1,
		Duration:       40,
		SampleInterval: 0.05,
	}
}

// presetSingleQA is Fig 2's conceptual setup: one QA flow alone on a
// bottleneck sized for about two layers, so individual filling/draining
// phases are visible.
func presetSingleQA(o presetOpts) Config {
	return Config{
		Name:           "SingleQA",
		BottleneckRate: 12_000,
		LinkDelay:      0.010,
		AccessDelay:    0.005,
		QueueBytes:     4 * 512,
		PacketSize:     512,
		WithQA:         true,
		QA: core.Params{
			C:          3_000,
			Kmax:       o.kmax,
			MaxLayers:  8,
			StartupSec: 1.0,
		},
		Duration:       60,
		SampleInterval: 0.05,
	}
}
