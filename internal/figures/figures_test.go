package figures

import (
	"bytes"
	"strings"
	"testing"

	"qav/internal/trace"
)

func TestFigure1ShapeMatchesPaper(t *testing.T) {
	res, err := Figure1()
	if err != nil {
		t.Fatal(err)
	}
	// Sawtooth: many backoffs, average near the link bandwidth.
	if res.Get("backoffs") < 10 {
		t.Fatalf("only %v backoffs; no sawtooth", res.Get("backoffs"))
	}
	avg, bw := res.Get("avg_rate"), res.Get("link_bw")
	if avg < 0.5*bw || avg > 1.5*bw {
		t.Fatalf("avg rate %v not around link bandwidth %v", avg, bw)
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Figure 1") || !strings.Contains(out, "rap.rate") {
		t.Fatalf("render missing expected content:\n%.300s", out)
	}
}

func TestFigure2ShapeMatchesPaper(t *testing.T) {
	res, err := Figure2()
	if err != nil {
		t.Fatal(err)
	}
	if res.Get("max_layers") < 2 {
		t.Fatalf("max layers %v; expected multiple layers on a private link", res.Get("max_layers"))
	}
	if res.Get("backoffs") < 5 {
		t.Fatalf("backoffs %v; expected sawtooth cycles", res.Get("backoffs"))
	}
	if res.Get("stall_sec") > 1 {
		t.Fatalf("stalled %vs; buffering must prevent dropouts", res.Get("stall_sec"))
	}
	if res.Get("buf_l0_max") <= 0 {
		t.Fatal("base layer never buffered")
	}
}

func TestRenderTablesFormatting(t *testing.T) {
	cells := []TableCell{
		{Test: "T1", Kmax: 2, DropStats: trace.DropStats{Drops: 10, AvgEfficiency: 0.9977, PoorDistPct: 0}},
		{Test: "T1", Kmax: 8, DropStats: trace.DropStats{Drops: 4, AvgEfficiency: 0.9999, PoorDistPct: 0}},
		{Test: "T2", Kmax: 2, DropStats: trace.DropStats{Drops: 20, AvgEfficiency: 0.9915, PoorDistPct: 2.4}},
		{Test: "T2", Kmax: 8, DropStats: trace.DropStats{}},
	}
	var buf bytes.Buffer
	if err := RenderTables(&buf, cells); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table 1", "Table 2", "99.77%", "2.4%", "no-drops", "Kmax=2", "Kmax=8"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestResultGetMissingKey(t *testing.T) {
	r := &Result{}
	if r.Get("nope") != 0 {
		t.Fatal("missing key should return 0")
	}
}

// The parallel sweep must produce exactly the cells the sequential sweep
// does — same order, same DropStats. Paper-scale, so skipped in -short.
func TestTablesSweepParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale simulation")
	}
	kmaxes := []int{2}
	seq, _, err := TablesSweep(kmaxes, DefaultScale, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, _, err := TablesSweep(kmaxes, DefaultScale, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(par) {
		t.Fatalf("cell counts differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("cell %d differs:\nseq: %+v\npar: %+v", i, seq[i], par[i])
		}
	}
}

// The expensive paper-scale figures run only outside -short.
func TestFigure11And13ShapeMatchesPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale simulation")
	}
	f11, err := Figure11(2, DefaultScale)
	if err != nil {
		t.Fatal(err)
	}
	if f11.Get("buf_l0_avg") <= f11.Get("buf_l3_avg") {
		t.Fatalf("Fig 11: base layer (%v) must buffer more than layer 3 (%v)",
			f11.Get("buf_l0_avg"), f11.Get("buf_l3_avg"))
	}
	if f11.Get("stall_sec") > 1 {
		t.Fatalf("Fig 11: stalled %vs", f11.Get("stall_sec"))
	}

	f13, err := Figure13(DefaultScale)
	if err != nil {
		t.Fatal(err)
	}
	before, during, after := f13.Get("layers_before"), f13.Get("layers_during"), f13.Get("layers_after")
	if !(during < before && after > during) {
		t.Fatalf("Fig 13 shape wrong: before=%v during=%v after=%v", before, during, after)
	}
	if f13.Get("stall_sec") > 2 {
		t.Fatalf("Fig 13: base layer starved %vs", f13.Get("stall_sec"))
	}
}
