// Package figures regenerates every figure and table of the paper's
// evaluation (§5) from the simulator: Fig 1 (RAP sawtooth), Fig 2
// (filling/draining with receiver buffering), Fig 11 (detailed T1 trace),
// Fig 12 (effect of Kmax), Fig 13 (responsiveness to a CBR burst), and
// Tables 1-2 (buffering efficiency and poor-distribution drops).
//
// All presets use the paper-axis scale by default (C = 10 KB/s, the
// published figure axes); see DESIGN.md for why the raw 800 Kb/s / 20
// flow parameterization puts TCP in a degenerate two-packet-window
// regime.
package figures

import (
	"fmt"
	"io"
	"sort"

	"qav/internal/metrics"
	"qav/internal/scenario"
	"qav/internal/trace"
	"qav/internal/transport"
)

// DefaultScale reproduces the paper's published figure axes
// (C = 10 KB/s with the QA flow at 20-40+ KB/s).
const DefaultScale = 8.0

// Result is one regenerated figure: its time series plus a summary of
// scalar facts a test or reader can check against the paper.
//
// Every underlying simulation runs with its own metrics registry, so
// Reports carries one machine-diffable run report per simulation (the
// qafig -report artifact). Instrumentation is observation-only: the
// rendered series and facts are byte-identical with or without it.
type Result struct {
	Name    string
	Series  *trace.Set
	Summary []Fact
	Run     *scenario.Result     // last underlying run (nil for tables)
	Reports []scenario.RunReport // one per underlying simulation
}

// instrumented attaches a fresh per-run registry to cfg and returns it.
func instrumented(cfg scenario.Config) scenario.Config {
	cfg.Metrics = metrics.NewRegistry()
	return cfg
}

// Fact is one scalar finding with the paper's corresponding claim.
type Fact struct {
	Key   string
	Value float64
	Note  string
}

// fact appends a summary fact.
func (r *Result) fact(key string, v float64, note string) {
	r.Summary = append(r.Summary, Fact{Key: key, Value: v, Note: note})
}

// Get returns a summary fact value by key (0 if absent).
func (r *Result) Get(key string) float64 {
	for _, f := range r.Summary {
		if f.Key == key {
			return f.Value
		}
	}
	return 0
}

// Render writes the summary and all series as commented TSV.
func (r *Result) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "## %s\n", r.Name); err != nil {
		return err
	}
	for _, f := range r.Summary {
		if _, err := fmt.Fprintf(w, "# %-28s %12.3f   %s\n", f.Key, f.Value, f.Note); err != nil {
			return err
		}
	}
	return r.Series.WriteTSV(w)
}

// Figure1 regenerates the RAP sawtooth trace: one RAP flow alone on a
// small bottleneck, transmission rate vs time against the link bandwidth.
func Figure1(opts ...scenario.PresetOption) (*Result, error) {
	cfg := instrumented(scenario.MustPreset("SingleRAP", opts...))
	res, err := scenario.Run(cfg)
	if err != nil {
		return nil, err
	}
	out := &Result{Name: "Figure 1: transmission rate of a single RAP flow", Run: res}
	out.Reports = append(out.Reports, res.Report())
	out.Series = trace.NewSet()
	rate := res.Series.Get("rap0.rate")
	dst := out.Series.Series("rap.rate")
	lnk := out.Series.Series("link.bandwidth")
	for i := range rate.T {
		dst.Add(rate.T[i], rate.V[i])
		lnk.Add(rate.T[i], cfg.BottleneckRate)
	}
	out.fact("avg_rate", rate.AvgBetween(10, cfg.Duration), "average of sawtooth; paper: hunts around fair share")
	out.fact("backoffs", float64(res.RAPSrcs[0].Tr.Counters().Backoffs), "multiplicative decreases (sawtooth teeth)")
	out.fact("link_bw", cfg.BottleneckRate, "bottleneck bandwidth (B/s)")
	return out, nil
}

// Figure2 regenerates the conceptual filling/draining demonstration: a
// single QA flow whose receiver buffers absorb backoffs while layers
// keep playing.
func Figure2(opts ...scenario.PresetOption) (*Result, error) {
	cfg := instrumented(scenario.MustPreset("SingleQA", append([]scenario.PresetOption{scenario.WithKmax(2)}, opts...)...))
	res, err := scenario.Run(cfg)
	if err != nil {
		return nil, err
	}
	out := &Result{Name: "Figure 2: layered encoding with receiver buffering", Run: res}
	out.Reports = append(out.Reports, res.Report())
	out.Series = res.Series
	maxLayers, _ := res.Series.Get("qa.layers").Max()
	out.fact("max_layers", maxLayers, "layers reached on a 12 KB/s link with C=3 KB/s")
	out.fact("backoffs", float64(res.Stats.Backoffs), "congestion backoffs absorbed")
	out.fact("stall_sec", res.StallSec, "playback stalls (paper: buffering prevents dropouts)")
	bufL0Max, _ := res.Series.Get("qa.buf.l0").Max()
	out.fact("buf_l0_max", bufL0Max, "peak base-layer buffering (B)")
	return out, nil
}

// Figure11 regenerates the detailed T1 trace: total transmit and
// consumption rate, per-layer transmit-rate breakdown, per-layer drain
// rate, and per-layer buffered data, with Kmax = 2 as in the paper.
func Figure11(kmax int, scale float64, opts ...scenario.PresetOption) (*Result, error) {
	cfg := instrumented(scenario.MustPreset("T1", append([]scenario.PresetOption{scenario.WithKmax(kmax), scenario.WithScale(scale)}, opts...)...))
	cfg.Duration = 40 // the paper shows the first 40 seconds
	res, err := scenario.Run(cfg)
	if err != nil {
		return nil, err
	}
	out := &Result{
		Name:   fmt.Sprintf("Figure 11: first 40 seconds of the Kmax=%d T1 trace", kmax),
		Series: res.Series,
		Run:    res,
	}
	out.Reports = append(out.Reports, res.Report())
	out.fact("avg_rate", res.Series.Get("qa.rate").AvgBetween(10, 40), "QA flow transmission rate (B/s)")
	out.fact("avg_layers", res.Series.Get("qa.layers").AvgBetween(10, 40), "active layers")
	out.fact("buf_l0_avg", res.Series.Get("qa.buf.l0").AvgBetween(10, 40), "base layer buffers most (paper Fig 11)")
	out.fact("buf_l3_avg", res.Series.Get("qa.buf.l3").AvgBetween(10, 40), "highest traced layer buffers least")
	out.fact("stall_sec", res.StallSec, "playback stalls (paper: none)")
	return out, nil
}

// Figure12 regenerates the Kmax comparison: number of active layers and
// per-layer buffering for Kmax in {2, 3, 4}. The three runs are
// independent simulations and execute concurrently on workers goroutines
// (<= 0 means one per CPU); results are identical to the sequential path.
func Figure12(scale float64, workers int, opts ...scenario.PresetOption) (*Result, error) {
	out := &Result{Name: "Figure 12: effect of Kmax on buffering and quality", Series: trace.NewSet()}
	kmaxes := []int{2, 3, 4}
	cfgs := make([]scenario.Config, len(kmaxes))
	for i, kmax := range kmaxes {
		cfgs[i] = instrumented(scenario.MustPreset("T1", append([]scenario.PresetOption{scenario.WithKmax(kmax), scenario.WithScale(scale)}, opts...)...))
	}
	results, err := scenario.RunAll(cfgs, workers)
	if err != nil {
		return nil, err
	}
	for _, res := range results {
		out.Reports = append(out.Reports, res.Report())
	}
	for i, kmax := range kmaxes {
		cfg, res := cfgs[i], results[i]
		layers := res.Series.Get("qa.layers")
		buft := res.Series.Get("qa.buftotal")
		dstL := out.Series.Series(fmt.Sprintf("kmax%d.layers", kmax))
		dstB := out.Series.Series(fmt.Sprintf("kmax%d.buftotal", kmax))
		for i := range layers.T {
			dstL.Add(layers.T[i], layers.V[i])
			dstB.Add(buft.T[i], buft.V[i])
		}
		changes := res.Stats.Adds + res.Stats.Drops
		out.fact(fmt.Sprintf("kmax%d.changes", kmax), float64(changes), "quality changes (fewer with higher Kmax)")
		out.fact(fmt.Sprintf("kmax%d.buf_avg", kmax), buft.AvgBetween(30, cfg.Duration), "avg total buffering (more with higher Kmax)")
		bufMax, _ := buft.Max()
		out.fact(fmt.Sprintf("kmax%d.buf_max", kmax), bufMax, "peak total buffering")
		out.Run = res
	}
	return out, nil
}

// Figure13 regenerates the responsiveness experiment: T2's CBR source at
// half the bottleneck bandwidth from t=30s to t=60s, Kmax = 4.
func Figure13(scale float64, opts ...scenario.PresetOption) (*Result, error) {
	cfg := instrumented(scenario.MustPreset("T2", append([]scenario.PresetOption{scenario.WithKmax(4), scenario.WithScale(scale)}, opts...)...))
	res, err := scenario.Run(cfg)
	if err != nil {
		return nil, err
	}
	out := &Result{Name: "Figure 13: effect of long-term changes in bandwidth (CBR burst)", Series: res.Series, Run: res}
	out.Reports = append(out.Reports, res.Report())
	layers := res.Series.Get("qa.layers")
	out.fact("layers_before", layers.AvgBetween(15, 30), "avg layers before the burst")
	out.fact("layers_during", layers.AvgBetween(40, 60), "avg layers during the burst (drops)")
	out.fact("layers_after", layers.AvgBetween(75, 90), "avg layers after the burst (recovers)")
	out.fact("stall_sec", res.StallSec, "base layer never jeopardized (paper)")
	out.fact("drops", float64(res.Stats.Drops), "layer drops")
	out.fact("adds", float64(res.Stats.Adds), "layer additions")
	return out, nil
}

// TableCell is one (test, Kmax) sweep outcome.
type TableCell struct {
	Test string
	Kmax int
	trace.DropStats
}

// TablesSweep runs the Table 1/2 sweep: tests T1 and T2 for each Kmax.
// The paper uses Kmax in {2, 3, 4, 5, 8}. The 2 x len(kmaxes) runs are
// independent full simulations and execute concurrently on workers
// goroutines (<= 0 means one per CPU); cell values are identical to the
// sequential path because each run owns its engine and RNGs. The second
// return value is one run report per cell, in cell order.
func TablesSweep(kmaxes []int, scale float64, workers int, opts ...scenario.PresetOption) ([]TableCell, []scenario.RunReport, error) {
	if len(kmaxes) == 0 {
		kmaxes = []int{2, 3, 4, 5, 8}
	}
	var cfgs []scenario.Config
	var cells []TableCell
	for _, test := range []string{"T1", "T2"} {
		for _, kmax := range kmaxes {
			cfgs = append(cfgs, instrumented(scenario.MustPreset(test, append([]scenario.PresetOption{scenario.WithKmax(kmax), scenario.WithScale(scale)}, opts...)...)))
			cells = append(cells, TableCell{Test: test, Kmax: kmax})
		}
	}
	results, err := scenario.RunAll(cfgs, workers)
	if err != nil {
		return nil, nil, err
	}
	reps := make([]scenario.RunReport, len(results))
	for i, res := range results {
		cells[i].DropStats = res.Stats
		reps[i] = res.Report()
	}
	return cells, reps, nil
}

// RenderTables writes Table 1 (buffering efficiency) and Table 2 (drops
// due to poor buffer distribution) from sweep cells.
func RenderTables(w io.Writer, cells []TableCell) error {
	kset := map[int]bool{}
	for _, c := range cells {
		kset[c.Kmax] = true
	}
	var kmaxes []int
	for k := range kset {
		kmaxes = append(kmaxes, k)
	}
	sort.Ints(kmaxes)
	byKey := map[string]TableCell{}
	for _, c := range cells {
		byKey[fmt.Sprintf("%s/%d", c.Test, c.Kmax)] = c
	}

	render := func(title string, f func(TableCell) string) error {
		if _, err := fmt.Fprintf(w, "%s\n      ", title); err != nil {
			return err
		}
		for _, k := range kmaxes {
			if _, err := fmt.Fprintf(w, "Kmax=%-8d", k); err != nil {
				return err
			}
		}
		fmt.Fprintln(w)
		for _, test := range []string{"T1", "T2"} {
			if _, err := fmt.Fprintf(w, "%-6s", test); err != nil {
				return err
			}
			for _, k := range kmaxes {
				c, ok := byKey[fmt.Sprintf("%s/%d", test, k)]
				cell := "-"
				if ok {
					cell = f(c)
				}
				if _, err := fmt.Fprintf(w, "%-13s", cell); err != nil {
					return err
				}
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintln(w)
		return nil
	}

	if err := render("Table 1: buffering efficiency e (paper: 96-99.99%)", func(c TableCell) string {
		if c.Drops == 0 {
			return "no-drops"
		}
		return fmt.Sprintf("%.2f%%", 100*c.AvgEfficiency)
	}); err != nil {
		return err
	}
	return render("Table 2: drops due to poor buffer distribution (paper: 0-11%)", func(c TableCell) string {
		if c.Drops == 0 {
			return "no-drops"
		}
		return fmt.Sprintf("%.1f%%", c.PoorDistPct)
	})
}

// TransportKinds are the backends the A/B sweep compares, in sweep
// order: the paper's RAP reference, the delay-based (GCC-style)
// controller, and the loss-greedy baseline.
func TransportKinds() []transport.Kind {
	return []transport.Kind{transport.KindRAP, transport.KindDelay, transport.KindGreedy}
}

// TransportSweep runs the transport A/B comparison: for each backend it
// runs the paper's Figure 11 scenario (T1, Kmax=2, first 40 seconds)
// and the Fleet preset, and emits a comparative result — per-backend QA
// rate series plus matched facts (rate, layers, stalls, losses,
// backoffs, fleet goodput split, TCP fairness). The question the sweep
// answers is the ROADMAP's: does QA's buffer-distribution math survive
// a controller that backs off before loss (delay), and what does a
// standing-queue adversary (greedy) do to it? All 2×3 simulations are
// independent and execute concurrently on workers goroutines (<= 0
// means one per CPU).
func TransportSweep(scale float64, workers int) (*Result, error) {
	kinds := TransportKinds()
	var cfgs []scenario.Config
	for _, k := range kinds {
		t1 := instrumented(scenario.MustPreset("T1",
			scenario.WithKmax(2), scenario.WithScale(scale), scenario.WithTransport(k)))
		t1.Duration = 40 // match Figure11: the paper shows the first 40 seconds
		fleet := instrumented(scenario.MustPreset("Fleet",
			scenario.WithKmax(2), scenario.WithScale(scale), scenario.WithTransport(k)))
		cfgs = append(cfgs, t1, fleet)
	}
	results, err := scenario.RunAll(cfgs, workers)
	if err != nil {
		return nil, err
	}
	out := &Result{
		Name:   "Transport A/B: rap vs delay vs greedy (Fig 11 scenario + Fleet)",
		Series: trace.NewSet(),
	}
	for _, res := range results {
		out.Reports = append(out.Reports, res.Report())
	}
	for i, k := range kinds {
		t1, fleet := results[2*i], results[2*i+1]
		rate := t1.Series.Get("qa.rate")
		layers := t1.Series.Get("qa.layers")
		dstR := out.Series.Series(fmt.Sprintf("%s.qa.rate", k))
		dstL := out.Series.Series(fmt.Sprintf("%s.qa.layers", k))
		for j := range rate.T {
			dstR.Add(rate.T[j], rate.V[j])
			dstL.Add(layers.T[j], layers.V[j])
		}
		ctr := t1.QASrc.Tr.Counters()
		out.fact(fmt.Sprintf("%s.avg_rate", k), rate.AvgBetween(10, 40), "QA transmission rate, Fig 11 scenario (B/s)")
		out.fact(fmt.Sprintf("%s.avg_layers", k), layers.AvgBetween(10, 40), "active layers")
		out.fact(fmt.Sprintf("%s.stall_sec", k), t1.StallSec, "playback stalls (s)")
		out.fact(fmt.Sprintf("%s.backoffs", k), float64(ctr.Backoffs), "rate decreases (loss or overuse)")
		out.fact(fmt.Sprintf("%s.lost_pkts", k), float64(ctr.Lost), "QA data packets inferred lost")
		if t1.Stats.Drops > 0 {
			out.fact(fmt.Sprintf("%s.efficiency", k), 100*t1.Stats.AvgEfficiency, "buffering efficiency over drops (%)")
			out.fact(fmt.Sprintf("%s.poor_dist_pct", k), t1.Stats.PoorDistPct, "drops from poor buffer distribution (%)")
		}
		fs := fleet.Report().Fleet
		out.fact(fmt.Sprintf("%s.fleet_qa_goodput", k), fs.QAGoodputBps, "Fleet QA goodput (B/s)")
		out.fact(fmt.Sprintf("%s.fleet_tcp_goodput", k), fs.TCPGoodputBps, "Fleet TCP goodput (B/s)")
		out.fact(fmt.Sprintf("%s.fleet_jain_tcp", k), fs.JainFairnessTCP, "Jain fairness across Fleet TCP flows")
		out.Run = t1
	}
	return out, nil
}
