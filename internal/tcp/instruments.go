package tcp

import "qav/internal/metrics"

// Instruments are the metric handles a TCP source records through;
// record sites are nil-guarded so uninstrumented sources pay one branch.
type Instruments struct {
	// FastRetransmits counts retransmissions sent outside an RTO (fast
	// retransmit / SACK-driven).
	FastRetransmits *metrics.Counter
	// RTOBackoffs counts retransmission-timer expirations.
	RTOBackoffs *metrics.Counter
	// Recoveries counts fast-recovery episodes entered.
	Recoveries *metrics.Counter
	// SRTT observes the smoothed RTT estimate after every sample.
	SRTT *metrics.Histogram
}

// NewInstruments registers TCP instruments on reg under prefix (e.g.
// prefix "tcp" yields "tcp.fastrtx", ...). Sources sharing a prefix
// share aggregated instruments.
func NewInstruments(reg *metrics.Registry, prefix string) *Instruments {
	return &Instruments{
		FastRetransmits: reg.Counter(prefix + ".fastrtx"),
		RTOBackoffs:     reg.Counter(prefix + ".rto"),
		Recoveries:      reg.Counter(prefix + ".recoveries"),
		SRTT:            reg.Histogram(prefix+".srtt", metrics.HistogramOpts{}),
	}
}

// Instrument attaches ins (may be shared between sources) and publishes
// the source's packet counters on reg under the same prefix as
// snapshot-time Func metrics. Call before the simulation starts.
func (s *Source) Instrument(reg *metrics.Registry, prefix string, ins *Instruments) {
	s.ins = ins
	reg.CounterFunc(prefix+".sent", func() int64 { return s.SentPkts })
	reg.CounterFunc(prefix+".retrans", func() int64 { return s.RetransPkts })
	reg.CounterFunc(prefix+".acked", func() int64 { return s.AckedPkts })
	reg.GaugeFunc(prefix+".cwnd", func() float64 { return s.cwnd })
}
