// Scoreboard representations for the Sack-TCP model.
//
// The sender tracks three per-sequence facts about its outstanding
// window [highAck, nextSeq): SACKed by the receiver, inferred lost, and
// retransmitted-awaiting-ack. The sink tracks which sequences above its
// cumulative ack it has received. Both sides used to keep that state in
// map[int64]bool; at fleet scale (hundreds of flows, long runs) the maps
// made the per-packet path O(window) hash work with steady-state
// allocations, and the sink's map grew without bound: a spurious
// retransmission arriving below the cumulative ack stayed in the map for
// the rest of the run and was re-sorted into every subsequent SACK
// scan.
//
// The windowed representation (the default) replaces each map with a
// ring bitmap whose base slides with the cumulative ack: O(1) amortized
// per packet, zero steady-state allocations, and memory bounded by the
// peak window instead of the sequence space. The map implementation is
// kept as the in-tree reference; TestScoreboardDifferential* and
// TestTCPDifferentialMapVsWindowed replay randomized loss/reorder/RTO
// workloads against both and require bit-for-bit identical decisions.
package tcp

import (
	"math"
	"math/bits"
	"slices"

	"qav/internal/sim"
)

// ScoreboardKind selects the per-sequence state representation of a TCP
// source and its sink.
type ScoreboardKind string

const (
	// BoardWindowed is the default: ring bitmaps advancing with the
	// cumulative ack (O(1)/packet, zero steady-state allocations,
	// window-bounded memory).
	BoardWindowed ScoreboardKind = "windowed"
	// BoardMap is the reference map[int64]bool implementation kept for
	// differential testing and A/B benchmarks (qabench Fleet pair).
	BoardMap ScoreboardKind = "map"
)

// DefaultScoreboard is the representation used when Config.Board is
// empty. Both kinds make identical retransmit/recovery decisions — this
// exists for A/B measurement and the differential tests.
var DefaultScoreboard = BoardWindowed

// sendBoard is the sender-side scoreboard. All sequence arguments lie
// in the current window [lo, hi) = [highAck, nextSeq) except advance,
// whose range is the newly cumulatively-acknowledged prefix. extend
// must be called (with the new highest sequence) before state is first
// touched for that sequence.
type sendBoard interface {
	extend(seq int64)             // reserve tracking capacity through seq
	sacked(seq int64) bool        // SACKed by the receiver
	markSacked(seq int64)
	lost(seq int64) bool          // inferred lost (marked for retransmission)
	markLost(seq int64)           // set lost, clear rtx-out
	rtxOut(seq int64) bool        // retransmitted, awaiting ack
	markRtxOut(seq int64)
	lostCount() int               // number of sequences currently marked lost
	nextLost(lo, hi int64) (int64, bool) // lowest lost && !rtxOut sequence
	pipe(lo, hi int64) int        // sent but neither sacked nor (lost && !rtxOut)
	advance(lo, hi int64)         // cumulative ack moved: reclaim [lo, hi)
	markAllUnsackedLost(lo, hi int64) // RTO: every unsacked sequence is presumed lost
	inferLost(lo, hiSacked int64) // SACK loss inference (>= 3 sacked above => lost)
}

// recvBoard is the sink-side received-sequence tracker.
type recvBoard interface {
	add(seq int64)  // a data packet for seq arrived (may advance the cumulative ack)
	cumack() int64  // first sequence not yet received contiguously
	// appendSack appends up to three SACK blocks — the highest runs of
	// received-but-not-cumacked sequences, in ascending order — into
	// blocks (typically a pooled packet's recycled backing array).
	appendSack(blocks []sim.SackBlock) []sim.SackBlock
}

func newSendBoard(kind ScoreboardKind) sendBoard {
	if kind == BoardMap {
		return newMapSendBoard()
	}
	return newWindowedSendBoard()
}

func newRecvBoard(kind ScoreboardKind) recvBoard {
	if kind == BoardMap {
		return newMapRecvBoard()
	}
	return newWindowedRecvBoard()
}

// ---------------------------------------------------------------------
// Reference implementation: map[int64]bool, the pre-windowed code moved
// verbatim behind the interface.

type mapSendBoard struct {
	sack map[int64]bool
	loss map[int64]bool
	rtx  map[int64]bool
}

func newMapSendBoard() *mapSendBoard {
	return &mapSendBoard{
		sack: make(map[int64]bool),
		loss: make(map[int64]bool),
		rtx:  make(map[int64]bool),
	}
}

func (b *mapSendBoard) extend(int64)            {}
func (b *mapSendBoard) sacked(seq int64) bool   { return b.sack[seq] }
func (b *mapSendBoard) markSacked(seq int64)    { b.sack[seq] = true }
func (b *mapSendBoard) lost(seq int64) bool     { return b.loss[seq] }
func (b *mapSendBoard) rtxOut(seq int64) bool   { return b.rtx[seq] }
func (b *mapSendBoard) markRtxOut(seq int64)    { b.rtx[seq] = true }
func (b *mapSendBoard) lostCount() int          { return len(b.loss) }

func (b *mapSendBoard) markLost(seq int64) {
	b.loss[seq] = true
	delete(b.rtx, seq)
}

func (b *mapSendBoard) nextLost(lo, hi int64) (int64, bool) {
	best := int64(math.MaxInt64)
	for seq := range b.loss {
		if !b.rtx[seq] && seq < best {
			best = seq
		}
	}
	if best == math.MaxInt64 {
		return 0, false
	}
	return best, true
}

func (b *mapSendBoard) pipe(lo, hi int64) int {
	n := 0
	for seq := lo; seq < hi; seq++ {
		if b.sack[seq] || (b.loss[seq] && !b.rtx[seq]) {
			continue
		}
		n++
	}
	return n
}

func (b *mapSendBoard) advance(lo, hi int64) {
	for seq := lo; seq < hi; seq++ {
		delete(b.sack, seq)
		delete(b.loss, seq)
		delete(b.rtx, seq)
	}
}

func (b *mapSendBoard) markAllUnsackedLost(lo, hi int64) {
	for seq := lo; seq < hi; seq++ {
		if !b.sack[seq] {
			b.loss[seq] = true
			delete(b.rtx, seq)
		}
	}
}

// inferLost is the simplified IsLost() rule: an unsacked hole with at
// least three sacked sequences above it (up to hiSacked, inclusive) is
// lost.
func (b *mapSendBoard) inferLost(lo, hiSacked int64) {
	for seq := lo; seq < hiSacked; seq++ {
		if b.sack[seq] || b.loss[seq] {
			continue
		}
		above := 0
		for q := seq + 1; q <= hiSacked && above < 3; q++ {
			if b.sack[q] {
				above++
			}
		}
		if above >= 3 {
			b.loss[seq] = true
			delete(b.rtx, seq)
		}
	}
}

type mapRecvBoard struct {
	received map[int64]bool
	cum      int64
	seqs     []int64 // scratch for appendSack
}

func newMapRecvBoard() *mapRecvBoard {
	return &mapRecvBoard{received: make(map[int64]bool)}
}

func (b *mapRecvBoard) cumack() int64 { return b.cum }

func (b *mapRecvBoard) add(seq int64) {
	b.received[seq] = true
	for b.received[b.cum] {
		delete(b.received, b.cum)
		b.cum++
	}
}

func (b *mapRecvBoard) appendSack(blocks []sim.SackBlock) []sim.SackBlock {
	if len(b.received) == 0 {
		return blocks[:0]
	}
	seqs := b.seqs[:0]
	for s := range b.received {
		seqs = append(seqs, s)
	}
	b.seqs = seqs
	slices.Sort(seqs)
	start, prev := seqs[0], seqs[0]
	for _, s := range seqs[1:] {
		if s == prev+1 {
			prev = s
			continue
		}
		blocks = append(blocks, sim.SackBlock{Start: start, End: prev + 1})
		start, prev = s, s
	}
	blocks = append(blocks, sim.SackBlock{Start: start, End: prev + 1})
	// Most recent (highest) blocks are the most useful; cap at 3. Copy
	// down instead of reslicing so the backing array's head is kept for
	// reuse by the packet pool.
	if len(blocks) > 3 {
		n := copy(blocks, blocks[len(blocks)-3:])
		blocks = blocks[:n]
	}
	return blocks
}

// ---------------------------------------------------------------------
// Windowed implementation: ring bitmaps sliding with the cumulative ack.
//
// A seqBits maps sequence seq to bit (seq & mask) of a power-of-two bit
// array. As long as every live sequence lies within one window of
// capacity sequences, distinct live sequences occupy distinct bits; the
// board grows the rings (rare, amortized) whenever the window would
// exceed capacity, and clears bits as the base advances, so a bit read
// for an in-window sequence is never stale.

// minRingSeqs is the initial ring capacity in sequences. Generous
// enough that ordinary single-flow windows never grow the rings
// mid-measurement (the TestAllocFree* budgets include loss recovery).
const minRingSeqs = 256

type seqBits struct {
	words []uint64
	mask  int64 // capacity-1; capacity = len(words)*64, a power of two
}

func newSeqBits(capSeqs int64) seqBits {
	return seqBits{words: make([]uint64, capSeqs/64), mask: capSeqs - 1}
}

func (b *seqBits) get(seq int64) bool {
	i := seq & b.mask
	return b.words[i>>6]&(1<<uint(i&63)) != 0
}

func (b *seqBits) set(seq int64) {
	i := seq & b.mask
	b.words[i>>6] |= 1 << uint(i&63)
}

func (b *seqBits) clear(seq int64) {
	i := seq & b.mask
	b.words[i>>6] &^= 1 << uint(i&63)
}

// grow doubles (at least) the capacity to hold newCap sequences and
// re-places the live bits of [lo, hi).
func (b *seqBits) grow(newCap int64, lo, hi int64) {
	old := *b
	for int64(len(b.words))*64 < newCap {
		n := int64(len(b.words)) * 2 * 64
		b.words = make([]uint64, n/64)
		b.mask = n - 1
	}
	for seq := lo; seq < hi; seq++ {
		if old.get(seq) {
			b.set(seq)
		}
	}
}

// span is one word-aligned chunk of a sequence range in ring bit space:
// bits [off, off+n) of words[w] cover sequences [seq, seq+n).
type span struct {
	w    int
	off  uint
	n    int64
	seq  int64
	mask uint64 // n bits starting at off
}

// spans iterates [lo, hi) chunk by chunk. Each chunk lies within one
// word, so callers do word-parallel bit work; the ring wrap is absorbed
// by recomputing the index per chunk.
func ringSpans(lo, hi, mask int64, visit func(sp span) bool) {
	for seq := lo; seq < hi; {
		i := seq & mask
		off := uint(i & 63)
		n := int64(64) - int64(off)
		if rem := hi - seq; n > rem {
			n = rem
		}
		m := ^uint64(0) >> (64 - uint(n)) << off
		if !visit(span{w: int(i >> 6), off: off, n: n, seq: seq, mask: m}) {
			return
		}
		seq += n
	}
}

type windowedSendBoard struct {
	sack seqBits
	loss seqBits
	rtx  seqBits

	base  int64 // lowest tracked sequence (the cumulative ack)
	high  int64 // one past the highest sequence ever extended to
	nLost int
}

func newWindowedSendBoard() *windowedSendBoard {
	return &windowedSendBoard{
		sack: newSeqBits(minRingSeqs),
		loss: newSeqBits(minRingSeqs),
		rtx:  newSeqBits(minRingSeqs),
	}
}

func (b *windowedSendBoard) extend(seq int64) {
	if seq < b.high {
		return
	}
	// Grow before moving high: re-placement must read only live bits of
	// the old window [base, high) — the new sequence's slot may alias a
	// live bit in the old (smaller) ring.
	if need := seq + 1 - b.base; need > b.sack.mask+1 {
		b.sack.grow(need, b.base, b.high)
		b.loss.grow(need, b.base, b.high)
		b.rtx.grow(need, b.base, b.high)
	}
	b.high = seq + 1
}

func (b *windowedSendBoard) sacked(seq int64) bool { return b.sack.get(seq) }
func (b *windowedSendBoard) markSacked(seq int64)  { b.sack.set(seq) }
func (b *windowedSendBoard) lost(seq int64) bool   { return b.loss.get(seq) }
func (b *windowedSendBoard) rtxOut(seq int64) bool { return b.rtx.get(seq) }
func (b *windowedSendBoard) markRtxOut(seq int64)  { b.rtx.set(seq) }
func (b *windowedSendBoard) lostCount() int        { return b.nLost }

func (b *windowedSendBoard) markLost(seq int64) {
	if !b.loss.get(seq) {
		b.loss.set(seq)
		b.nLost++
	}
	b.rtx.clear(seq)
}

func (b *windowedSendBoard) nextLost(lo, hi int64) (int64, bool) {
	found, at := false, int64(0)
	ringSpans(lo, hi, b.loss.mask, func(sp span) bool {
		if w := b.loss.words[sp.w] &^ b.rtx.words[sp.w] & sp.mask; w != 0 {
			at = sp.seq + int64(bits.TrailingZeros64(w)) - int64(sp.off)
			found = true
			return false
		}
		return true
	})
	return at, found
}

func (b *windowedSendBoard) pipe(lo, hi int64) int {
	excluded := 0
	ringSpans(lo, hi, b.sack.mask, func(sp span) bool {
		w := (b.sack.words[sp.w] | (b.loss.words[sp.w] &^ b.rtx.words[sp.w])) & sp.mask
		excluded += bits.OnesCount64(w)
		return true
	})
	return int(hi-lo) - excluded
}

func (b *windowedSendBoard) advance(lo, hi int64) {
	ringSpans(lo, hi, b.sack.mask, func(sp span) bool {
		b.nLost -= bits.OnesCount64(b.loss.words[sp.w] & sp.mask)
		b.sack.words[sp.w] &^= sp.mask
		b.loss.words[sp.w] &^= sp.mask
		b.rtx.words[sp.w] &^= sp.mask
		return true
	})
	b.base = hi
	if b.high < b.base {
		b.high = b.base
	}
}

func (b *windowedSendBoard) markAllUnsackedLost(lo, hi int64) {
	ringSpans(lo, hi, b.sack.mask, func(sp span) bool {
		unsacked := ^b.sack.words[sp.w] & sp.mask
		b.nLost += bits.OnesCount64(unsacked &^ b.loss.words[sp.w])
		b.loss.words[sp.w] |= unsacked
		b.rtx.words[sp.w] &^= unsacked
		return true
	})
}

// inferLost walks down from the highest SACKed sequence keeping a count
// of sacked sequences strictly above the cursor; any unsacked,
// not-yet-lost hole with three or more above it is marked lost. This is
// a single O(window) pass equivalent to the reference's per-hole scan:
// the sacked set does not change during inference, so "three sacked
// above" is a property of the position alone.
func (b *windowedSendBoard) inferLost(lo, hiSacked int64) {
	above := 0
	if b.sack.get(hiSacked) {
		above = 1
	}
	for seq := hiSacked - 1; seq >= lo; seq-- {
		if b.sack.get(seq) {
			above++
			continue
		}
		if above >= 3 && !b.loss.get(seq) {
			b.markLost(seq)
		}
	}
}

type windowedRecvBoard struct {
	bits seqBits
	cum  int64 // cumulative ack: everything below is received and reclaimed
	high int64 // one past the highest received sequence
}

func newWindowedRecvBoard() *windowedRecvBoard {
	return &windowedRecvBoard{bits: newSeqBits(minRingSeqs)}
}

func (b *windowedRecvBoard) cumack() int64 { return b.cum }

func (b *windowedRecvBoard) add(seq int64) {
	if seq < b.cum {
		// Spurious (already cumulatively acknowledged) retransmission.
		// The map reference kept these forever — the unbounded-memory
		// bug this representation fixes; they carry no information the
		// sender can use, so they are dropped here.
		return
	}
	if seq >= b.high {
		// Grow before moving high (see windowedSendBoard.extend).
		if need := seq + 1 - b.cum; need > b.bits.mask+1 {
			b.bits.grow(need, b.cum, b.high)
		}
		b.high = seq + 1
	}
	b.bits.set(seq)
	for b.cum < b.high && b.bits.get(b.cum) {
		b.bits.clear(b.cum)
		b.cum++
	}
}

// appendSack scans down from the highest received sequence collecting
// the three highest runs, then emits them in ascending order — the same
// blocks the reference produces for sequences above the cumulative ack.
func (b *windowedRecvBoard) appendSack(blocks []sim.SackBlock) []sim.SackBlock {
	blocks = blocks[:0]
	var found [3]sim.SackBlock
	n := 0
	seq := b.high - 1
	for n < 3 && seq >= b.cum {
		for seq >= b.cum && !b.bits.get(seq) {
			seq--
		}
		if seq < b.cum {
			break
		}
		end := seq + 1
		for seq >= b.cum && b.bits.get(seq) {
			seq--
		}
		found[n] = sim.SackBlock{Start: seq + 1, End: end}
		n++
	}
	for i := n - 1; i >= 0; i-- {
		blocks = append(blocks, found[i])
	}
	return blocks
}
