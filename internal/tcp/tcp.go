// Package tcp implements a packet-level Sack-TCP model used as competing
// cross-traffic in the simulator, mirroring the paper's evaluation setup
// (the quality-adaptive flow shares the bottleneck with Sack-TCP flows).
//
// The model is a bulk-transfer (FTP-like) sender with slow start,
// congestion avoidance, fast retransmit/fast recovery driven by a SACK
// scoreboard, and an RTO with exponential backoff. Sequence numbers count
// fixed-size packets. Per-sequence state (SACKed/lost/retransmitted on
// the sender, received on the sink) lives in a pluggable scoreboard —
// see scoreboard.go.
package tcp

import (
	"math"

	"qav/internal/sim"
)

// Config parameterizes a TCP source.
type Config struct {
	FlowID     int
	PacketSize int     // bytes
	AckSize    int     // bytes
	InitialRTT float64 // seeds the RTO before the first sample, seconds
	MaxCwnd    float64 // packets; 0 = unlimited
	Start      float64 // start time, seconds

	// Board selects the scoreboard representation; empty means
	// DefaultScoreboard (windowed). BoardMap is the reference
	// implementation kept for differential tests and A/B benchmarks.
	Board ScoreboardKind
}

func (c *Config) setDefaults() {
	if c.PacketSize <= 0 {
		c.PacketSize = 512
	}
	if c.AckSize <= 0 {
		c.AckSize = 40
	}
	if c.InitialRTT <= 0 {
		c.InitialRTT = 0.1
	}
	if c.Board == "" {
		c.Board = DefaultScoreboard
	}
}

// Source is a bulk Sack-TCP sender attached to a dumbbell network.
type Source struct {
	cfg Config
	eng *sim.Engine
	net sim.Network

	cwnd     float64 // packets
	ssthresh float64
	nextSeq  int64 // next new sequence to send
	highAck  int64 // cumulative ACK (first unacked seq)
	dupacks  int

	inRecovery bool
	recover    int64

	board sendBoard // per-sequence sacked/lost/rtx-out state over [highAck, nextSeq)

	srtt, rttvar, rto float64
	gotRTT            bool
	rtoBackoff        float64
	rtoTimer          sim.Timer
	rtoFn             func() // onRTO as a long-lived value: no closure per arm

	sink *sink

	// ins, when set via Instrument, receives per-event recordings. Nil
	// on uninstrumented sources: the record sites are branch-guarded.
	ins *Instruments

	// testTxHook, when non-nil, observes every transmission (tests
	// only: the differential test records decision traces through it).
	testTxHook func(seq int64, retx bool)

	// Stats.
	SentPkts    int64
	RetransPkts int64
	AckedPkts   int64
	Timeouts    int64
	FastRecover int64
}

// NewSource creates a TCP source and its paired sink on net.
func NewSource(eng *sim.Engine, net sim.Network, cfg Config) *Source {
	cfg.setDefaults()
	s := &Source{
		cfg:        cfg,
		eng:        eng,
		net:        net,
		cwnd:       2,
		ssthresh:   64,
		board:      newSendBoard(cfg.Board),
		srtt:       cfg.InitialRTT,
		rttvar:     cfg.InitialRTT / 2,
		rto:        3 * cfg.InitialRTT,
		rtoBackoff: 1,
	}
	s.rtoFn = s.onRTO
	s.sink = &sink{src: s, board: newRecvBoard(cfg.Board)}
	s.sink.ackSink = sim.ReceiverFunc(s.onAck)
	eng.At(cfg.Start, s.trySend)
	return s
}

// Cwnd returns the current congestion window in packets.
func (s *Source) Cwnd() float64 { return s.cwnd }

// GoodputBytes returns bytes cumulatively acknowledged.
func (s *Source) GoodputBytes() int64 { return s.AckedPkts * int64(s.cfg.PacketSize) }

// pipe estimates packets in flight: sent but neither cumacked, sacked,
// nor marked lost (lost packets have left the network).
func (s *Source) pipe() int {
	return s.board.pipe(s.highAck, s.nextSeq)
}

func (s *Source) trySend() {
	window := s.cwnd
	if s.cfg.MaxCwnd > 0 && window > s.cfg.MaxCwnd {
		window = s.cfg.MaxCwnd
	}
	for s.pipe() < int(window) {
		// Retransmissions first.
		if seq, ok := s.board.nextLost(s.highAck, s.nextSeq); ok {
			s.transmit(seq, true)
			continue
		}
		s.board.extend(s.nextSeq)
		s.transmit(s.nextSeq, false)
		s.nextSeq++
	}
	s.armRTO()
}

func (s *Source) transmit(seq int64, retx bool) {
	if s.testTxHook != nil {
		s.testTxHook(seq, retx)
	}
	p := s.eng.Pool().Get()
	p.FlowID, p.Seq, p.Size = s.cfg.FlowID, seq, s.cfg.PacketSize
	p.Kind, p.SendTime, p.Retransmit = sim.Data, s.eng.Now(), retx
	s.SentPkts++
	if retx {
		s.RetransPkts++
		s.board.markRtxOut(seq)
		if s.ins != nil {
			s.ins.FastRetransmits.Inc()
		}
	}
	s.net.SendData(p, s.sink)
}

func (s *Source) armRTO() {
	s.rtoTimer.Cancel()
	if s.pipe() == 0 && s.board.lostCount() == 0 {
		return
	}
	s.rtoTimer = s.eng.After(s.rto*s.rtoBackoff, s.rtoFn)
}

func (s *Source) onRTO() {
	s.Timeouts++
	if s.ins != nil {
		s.ins.RTOBackoffs.Inc()
	}
	s.ssthresh = math.Max(float64(s.pipe())/2, 2)
	s.cwnd = 1
	s.dupacks = 0
	s.inRecovery = false
	s.rtoBackoff = math.Min(s.rtoBackoff*2, 64)
	// Everything unsacked is presumed lost (go-back-N-ish with SACK reuse).
	s.board.markAllUnsackedLost(s.highAck, s.nextSeq)
	s.trySend()
}

// onAck processes a returning acknowledgement.
func (s *Source) onAck(p *sim.Packet) {
	if p.CumAck > s.highAck {
		// New data cumulatively acknowledged.
		newly := p.CumAck - s.highAck
		s.board.advance(s.highAck, p.CumAck)
		s.highAck = p.CumAck
		s.AckedPkts += newly
		s.dupacks = 0
		s.rtoBackoff = 1
		if p.Echo > 0 {
			s.updateRTT(s.eng.Now() - p.Echo)
		}
		if s.inRecovery {
			if s.highAck >= s.recover {
				// Full recovery.
				s.inRecovery = false
				s.cwnd = s.ssthresh
			}
			// Partial ACK: the next hole is already marked lost via the
			// scoreboard update below; stay in recovery.
		} else {
			for i := int64(0); i < newly; i++ {
				if s.cwnd < s.ssthresh {
					s.cwnd++ // slow start
				} else {
					s.cwnd += 1 / s.cwnd // congestion avoidance
				}
			}
		}
	} else if p.CumAck == s.highAck {
		s.dupacks++
	}

	// Absorb SACK information. Every SACKed sequence was transmitted, so
	// the board already covers it.
	highestSacked := int64(-1)
	for _, b := range p.Sack {
		for seq := b.Start; seq < b.End; seq++ {
			if seq >= s.highAck {
				s.board.markSacked(seq)
				if seq > highestSacked {
					highestSacked = seq
				}
			}
		}
	}
	// Scoreboard loss inference: an unsacked hole with at least three
	// sacked packets above it is lost (simplified IsLost()).
	if highestSacked >= 0 {
		s.board.inferLost(s.highAck, highestSacked)
	}

	if !s.inRecovery && (s.dupacks >= 3 || (s.board.lostCount() > 0 && highestSacked >= 0)) && s.nextSeq > s.highAck {
		// Enter fast recovery.
		s.inRecovery = true
		s.recover = s.nextSeq
		s.ssthresh = math.Max(float64(s.pipe())/2, 2)
		s.cwnd = s.ssthresh
		s.FastRecover++
		if s.ins != nil {
			s.ins.Recoveries.Inc()
		}
		if s.board.lostCount() == 0 {
			// Triple dupack without SACK info: first hole is lost.
			s.board.markLost(s.highAck)
		}
	}
	s.trySend()
}

func (s *Source) updateRTT(sample float64) {
	if sample <= 0 {
		return
	}
	if !s.gotRTT {
		s.srtt, s.rttvar, s.gotRTT = sample, sample/2, true
	} else {
		const alpha, beta = 1.0 / 8.0, 1.0 / 4.0
		s.rttvar = (1-beta)*s.rttvar + beta*math.Abs(s.srtt-sample)
		s.srtt = (1-alpha)*s.srtt + alpha*sample
	}
	s.rto = s.srtt + 4*s.rttvar
	if s.rto < 2*s.srtt {
		s.rto = 2 * s.srtt
	}
	if s.rto < 0.02 {
		s.rto = 0.02
	}
	if s.ins != nil {
		s.ins.SRTT.Observe(s.srtt)
	}
}

// sink is the receiving side: it acknowledges every data packet with a
// cumulative ACK plus up to three SACK blocks.
type sink struct {
	src     *Source
	board   recvBoard
	ackSink sim.Receiver // long-lived: no closure per ACK
}

// Recv implements sim.Receiver. The ACK reuses the pooled packet's Sack
// backing array, so steady-state acknowledgement costs no allocation.
func (k *sink) Recv(p *sim.Packet) {
	if p.Kind != sim.Data {
		return
	}
	k.board.add(p.Seq)
	ack := k.src.eng.Pool().Get()
	ack.FlowID, ack.Kind, ack.Size = p.FlowID, sim.Ack, k.src.cfg.AckSize
	ack.CumAck, ack.AckSeq, ack.Echo = k.board.cumack(), p.Seq, p.SendTime
	ack.Sack = k.board.appendSack(ack.Sack[:0])
	k.src.net.SendAck(ack, k.ackSink)
}
