// Package tcp implements a packet-level Sack-TCP model used as competing
// cross-traffic in the simulator, mirroring the paper's evaluation setup
// (the quality-adaptive flow shares the bottleneck with Sack-TCP flows).
//
// The model is a bulk-transfer (FTP-like) sender with slow start,
// congestion avoidance, fast retransmit/fast recovery driven by a SACK
// scoreboard, and an RTO with exponential backoff. Sequence numbers count
// fixed-size packets.
package tcp

import (
	"math"
	"slices"

	"qav/internal/sim"
)

// Config parameterizes a TCP source.
type Config struct {
	FlowID     int
	PacketSize int     // bytes
	AckSize    int     // bytes
	InitialRTT float64 // seeds the RTO before the first sample, seconds
	MaxCwnd    float64 // packets; 0 = unlimited
	Start      float64 // start time, seconds
}

func (c *Config) setDefaults() {
	if c.PacketSize <= 0 {
		c.PacketSize = 512
	}
	if c.AckSize <= 0 {
		c.AckSize = 40
	}
	if c.InitialRTT <= 0 {
		c.InitialRTT = 0.1
	}
}

// Source is a bulk Sack-TCP sender attached to a dumbbell network.
type Source struct {
	cfg Config
	eng *sim.Engine
	net *sim.Dumbbell

	cwnd     float64 // packets
	ssthresh float64
	nextSeq  int64 // next new sequence to send
	highAck  int64 // cumulative ACK (first unacked seq)
	dupacks  int

	inRecovery bool
	recover    int64

	sacked map[int64]bool
	lost   map[int64]bool // marked for retransmission
	rtxOut map[int64]bool // retransmitted, awaiting ack

	srtt, rttvar, rto float64
	gotRTT            bool
	rtoBackoff        float64
	rtoTimer          sim.Timer
	rtoFn             func() // onRTO as a long-lived value: no closure per arm

	sink *sink

	// ins, when set via Instrument, receives per-event recordings. Nil
	// on uninstrumented sources: the record sites are branch-guarded.
	ins *Instruments

	// Stats.
	SentPkts    int64
	RetransPkts int64
	AckedPkts   int64
	Timeouts    int64
	FastRecover int64
}

// NewSource creates a TCP source and its paired sink on net.
func NewSource(eng *sim.Engine, net *sim.Dumbbell, cfg Config) *Source {
	cfg.setDefaults()
	s := &Source{
		cfg:        cfg,
		eng:        eng,
		net:        net,
		cwnd:       2,
		ssthresh:   64,
		sacked:     make(map[int64]bool),
		lost:       make(map[int64]bool),
		rtxOut:     make(map[int64]bool),
		srtt:       cfg.InitialRTT,
		rttvar:     cfg.InitialRTT / 2,
		rto:        3 * cfg.InitialRTT,
		rtoBackoff: 1,
	}
	s.rtoFn = s.onRTO
	s.sink = &sink{src: s, received: make(map[int64]bool)}
	s.sink.ackSink = sim.ReceiverFunc(s.onAck)
	eng.At(cfg.Start, s.trySend)
	return s
}

// Cwnd returns the current congestion window in packets.
func (s *Source) Cwnd() float64 { return s.cwnd }

// GoodputBytes returns bytes cumulatively acknowledged.
func (s *Source) GoodputBytes() int64 { return s.AckedPkts * int64(s.cfg.PacketSize) }

// pipe estimates packets in flight: sent but neither cumacked, sacked,
// nor marked lost (lost packets have left the network).
func (s *Source) pipe() int {
	n := 0
	for seq := s.highAck; seq < s.nextSeq; seq++ {
		if s.sacked[seq] || (s.lost[seq] && !s.rtxOut[seq]) {
			continue
		}
		n++
	}
	return n
}

func (s *Source) trySend() {
	window := s.cwnd
	if s.cfg.MaxCwnd > 0 && window > s.cfg.MaxCwnd {
		window = s.cfg.MaxCwnd
	}
	for s.pipe() < int(window) {
		// Retransmissions first.
		if seq, ok := s.nextLost(); ok {
			s.transmit(seq, true)
			continue
		}
		s.transmit(s.nextSeq, false)
		s.nextSeq++
	}
	s.armRTO()
}

func (s *Source) nextLost() (int64, bool) {
	best := int64(math.MaxInt64)
	for seq := range s.lost {
		if !s.rtxOut[seq] && seq < best {
			best = seq
		}
	}
	if best == math.MaxInt64 {
		return 0, false
	}
	return best, true
}

func (s *Source) transmit(seq int64, retx bool) {
	p := s.eng.Pool().Get()
	p.FlowID, p.Seq, p.Size = s.cfg.FlowID, seq, s.cfg.PacketSize
	p.Kind, p.SendTime, p.Retransmit = sim.Data, s.eng.Now(), retx
	s.SentPkts++
	if retx {
		s.RetransPkts++
		s.rtxOut[seq] = true
		if s.ins != nil {
			s.ins.FastRetransmits.Inc()
		}
	}
	s.net.SendData(p, s.sink)
}

func (s *Source) armRTO() {
	s.rtoTimer.Cancel()
	if s.pipe() == 0 && len(s.lost) == 0 {
		return
	}
	s.rtoTimer = s.eng.After(s.rto*s.rtoBackoff, s.rtoFn)
}

func (s *Source) onRTO() {
	s.Timeouts++
	if s.ins != nil {
		s.ins.RTOBackoffs.Inc()
	}
	s.ssthresh = math.Max(float64(s.pipe())/2, 2)
	s.cwnd = 1
	s.dupacks = 0
	s.inRecovery = false
	s.rtoBackoff = math.Min(s.rtoBackoff*2, 64)
	// Everything unsacked is presumed lost (go-back-N-ish with SACK reuse).
	for seq := s.highAck; seq < s.nextSeq; seq++ {
		if !s.sacked[seq] {
			s.lost[seq] = true
			delete(s.rtxOut, seq)
		}
	}
	s.trySend()
}

// onAck processes a returning acknowledgement.
func (s *Source) onAck(p *sim.Packet) {
	if p.CumAck > s.highAck {
		// New data cumulatively acknowledged.
		newly := p.CumAck - s.highAck
		for seq := s.highAck; seq < p.CumAck; seq++ {
			delete(s.sacked, seq)
			delete(s.lost, seq)
			delete(s.rtxOut, seq)
		}
		s.highAck = p.CumAck
		s.AckedPkts += newly
		s.dupacks = 0
		s.rtoBackoff = 1
		if p.Echo > 0 {
			s.updateRTT(s.eng.Now() - p.Echo)
		}
		if s.inRecovery {
			if s.highAck >= s.recover {
				// Full recovery.
				s.inRecovery = false
				s.cwnd = s.ssthresh
			}
			// Partial ACK: the next hole is already in s.lost via the
			// scoreboard update below; stay in recovery.
		} else {
			for i := int64(0); i < newly; i++ {
				if s.cwnd < s.ssthresh {
					s.cwnd++ // slow start
				} else {
					s.cwnd += 1 / s.cwnd // congestion avoidance
				}
			}
		}
	} else if p.CumAck == s.highAck {
		s.dupacks++
	}

	// Absorb SACK information.
	highestSacked := int64(-1)
	for _, b := range p.Sack {
		for seq := b.Start; seq < b.End; seq++ {
			if seq >= s.highAck {
				s.sacked[seq] = true
				if seq > highestSacked {
					highestSacked = seq
				}
			}
		}
	}
	// Scoreboard loss inference: an unsacked hole with at least three
	// sacked packets above it is lost (simplified IsLost()).
	if highestSacked >= 0 {
		for seq := s.highAck; seq < highestSacked; seq++ {
			if s.sacked[seq] || s.lost[seq] {
				continue
			}
			above := 0
			for q := seq + 1; q <= highestSacked && above < 3; q++ {
				if s.sacked[q] {
					above++
				}
			}
			if above >= 3 {
				s.lost[seq] = true
				delete(s.rtxOut, seq)
			}
		}
	}

	if !s.inRecovery && (s.dupacks >= 3 || (len(s.lost) > 0 && highestSacked >= 0)) && s.nextSeq > s.highAck {
		// Enter fast recovery.
		s.inRecovery = true
		s.recover = s.nextSeq
		s.ssthresh = math.Max(float64(s.pipe())/2, 2)
		s.cwnd = s.ssthresh
		s.FastRecover++
		if s.ins != nil {
			s.ins.Recoveries.Inc()
		}
		if len(s.lost) == 0 {
			// Triple dupack without SACK info: first hole is lost.
			s.lost[s.highAck] = true
		}
	}
	s.trySend()
}

func (s *Source) updateRTT(sample float64) {
	if sample <= 0 {
		return
	}
	if !s.gotRTT {
		s.srtt, s.rttvar, s.gotRTT = sample, sample/2, true
	} else {
		const alpha, beta = 1.0 / 8.0, 1.0 / 4.0
		s.rttvar = (1-beta)*s.rttvar + beta*math.Abs(s.srtt-sample)
		s.srtt = (1-alpha)*s.srtt + alpha*sample
	}
	s.rto = s.srtt + 4*s.rttvar
	if s.rto < 2*s.srtt {
		s.rto = 2 * s.srtt
	}
	if s.rto < 0.02 {
		s.rto = 0.02
	}
	if s.ins != nil {
		s.ins.SRTT.Observe(s.srtt)
	}
}

// sink is the receiving side: it acknowledges every data packet with a
// cumulative ACK plus up to three SACK blocks.
type sink struct {
	src      *Source
	received map[int64]bool
	cumack   int64
	ackSink  sim.Receiver // long-lived: no closure per ACK
	seqs     []int64      // scratch for sackBlocks
}

// Recv implements sim.Receiver. The ACK reuses the pooled packet's Sack
// backing array, so steady-state acknowledgement costs no allocation.
func (k *sink) Recv(p *sim.Packet) {
	if p.Kind != sim.Data {
		return
	}
	k.received[p.Seq] = true
	for k.received[k.cumack] {
		delete(k.received, k.cumack)
		k.cumack++
	}
	ack := k.src.eng.Pool().Get()
	ack.FlowID, ack.Kind, ack.Size = p.FlowID, sim.Ack, k.src.cfg.AckSize
	ack.CumAck, ack.AckSeq, ack.Echo = k.cumack, p.Seq, p.SendTime
	ack.Sack = k.sackBlocks(ack.Sack[:0])
	k.src.net.SendAck(ack, k.ackSink)
}

// sackBlocks summarizes out-of-order data above cumack as ranges,
// appending into blocks (typically the ACK packet's recycled Sack
// backing array).
func (k *sink) sackBlocks(blocks []sim.SackBlock) []sim.SackBlock {
	if len(k.received) == 0 {
		return blocks[:0]
	}
	seqs := k.seqs[:0]
	for s := range k.received {
		seqs = append(seqs, s)
	}
	k.seqs = seqs
	slices.Sort(seqs)
	start, prev := seqs[0], seqs[0]
	for _, s := range seqs[1:] {
		if s == prev+1 {
			prev = s
			continue
		}
		blocks = append(blocks, sim.SackBlock{Start: start, End: prev + 1})
		start, prev = s, s
	}
	blocks = append(blocks, sim.SackBlock{Start: start, End: prev + 1})
	// Most recent (highest) blocks are the most useful; cap at 3. Copy
	// down instead of reslicing so the backing array's head is kept for
	// reuse by the packet pool.
	if len(blocks) > 3 {
		n := copy(blocks, blocks[len(blocks)-3:])
		blocks = blocks[:n]
	}
	return blocks
}
