package tcp

import (
	"math"
	"testing"

	"qav/internal/sim"
)

func runTCP(t *testing.T, rate float64, queueBytes int, dur float64, n int) []*Source {
	t.Helper()
	eng := sim.NewEngine()
	net := sim.NewDumbbell(eng, sim.DumbbellConfig{
		Rate: rate, Delay: 0.01, AccessDelay: 0.005, QueueBytes: queueBytes,
	})
	var srcs []*Source
	for i := 0; i < n; i++ {
		srcs = append(srcs, NewSource(eng, net, Config{
			FlowID: i, PacketSize: 512, InitialRTT: net.BaseRTT(), Start: float64(i) * 0.05,
		}))
	}
	eng.RunUntil(dur)
	return srcs
}

func TestSingleFlowFillsPipe(t *testing.T) {
	const rate = 50_000.0
	srcs := runTCP(t, rate, 16*512, 30, 1)
	goodput := float64(srcs[0].GoodputBytes()) / 30
	if goodput < 0.7*rate {
		t.Fatalf("single TCP flow goodput %.0f < 70%% of %v", goodput, rate)
	}
	if goodput > 1.01*rate {
		t.Fatalf("goodput %.0f exceeds link rate — accounting bug", goodput)
	}
}

func TestLossRecoveryWithoutExcessTimeouts(t *testing.T) {
	srcs := runTCP(t, 50_000, 16*512, 30, 1)
	s := srcs[0]
	if s.FastRecover == 0 {
		t.Fatal("no fast recovery episodes despite droptail losses")
	}
	if s.Timeouts > s.FastRecover {
		t.Fatalf("timeouts (%d) exceed fast recoveries (%d): SACK recovery broken", s.Timeouts, s.FastRecover)
	}
}

func TestTwoFlowsShareFairly(t *testing.T) {
	srcs := runTCP(t, 50_000, 24*512, 40, 2)
	g0 := float64(srcs[0].GoodputBytes())
	g1 := float64(srcs[1].GoodputBytes())
	ratio := math.Max(g0, g1) / math.Min(g0, g1)
	if ratio > 2.0 {
		t.Fatalf("TCP-TCP unfairness %0.2f:1 (g0=%.0f g1=%.0f)", ratio, g0, g1)
	}
	total := (g0 + g1) / 40
	if total < 0.7*50_000 {
		t.Fatalf("aggregate goodput %.0f underutilizes the link", total)
	}
}

func TestRetransmissionsDeliverEverything(t *testing.T) {
	// With a tiny queue, losses are plentiful; the receiver's cumulative
	// ack must still advance past a large sequence (reliability).
	srcs := runTCP(t, 30_000, 6*512, 30, 1)
	s := srcs[0]
	if s.RetransPkts == 0 {
		t.Fatal("no retransmissions despite a 6-packet queue")
	}
	wantPkts := int64(math.Floor(0.5 * 30_000 * 30 / 512))
	if s.AckedPkts < wantPkts {
		t.Fatalf("acked %d packets, want >= %d", s.AckedPkts, wantPkts)
	}
}

func TestCwndSanity(t *testing.T) {
	srcs := runTCP(t, 50_000, 16*512, 20, 1)
	cw := srcs[0].Cwnd()
	if cw < 1 {
		t.Fatalf("cwnd %v fell below 1", cw)
	}
	// BDP is ~3 packets + 16 queue: cwnd must stay in a sane band.
	if cw > 200 {
		t.Fatalf("cwnd %v exploded", cw)
	}
}

func TestMaxCwndCap(t *testing.T) {
	eng := sim.NewEngine()
	net := sim.NewDumbbell(eng, sim.DumbbellConfig{
		Rate: 1e6, Delay: 0.01, AccessDelay: 0.005, QueueBytes: 1 << 20,
	})
	s := NewSource(eng, net, Config{PacketSize: 512, InitialRTT: net.BaseRTT(), MaxCwnd: 4})
	eng.RunUntil(10)
	// Window capped at 4 packets: goodput is bounded by 4 pkts per RTT.
	rtt := net.BaseRTT()
	bound := 4 * 512 / rtt * 10 * 1.3
	if float64(s.GoodputBytes()) > bound {
		t.Fatalf("goodput %d exceeds MaxCwnd bound %.0f", s.GoodputBytes(), bound)
	}
}

func eachBoardKind(t *testing.T, f func(t *testing.T, kind ScoreboardKind)) {
	t.Helper()
	for _, kind := range []ScoreboardKind{BoardMap, BoardWindowed} {
		t.Run(string(kind), func(t *testing.T) { f(t, kind) })
	}
}

func TestSackBlocksWellFormed(t *testing.T) {
	eachBoardKind(t, func(t *testing.T, kind ScoreboardKind) {
		b := newRecvBoard(kind)
		for _, seq := range []int64{5, 6, 9, 12, 13} {
			b.add(seq)
		}
		blocks := b.appendSack(nil)
		if len(blocks) != 3 {
			t.Fatalf("got %d blocks, want 3: %+v", len(blocks), blocks)
		}
		for _, blk := range blocks {
			if blk.End <= blk.Start {
				t.Fatalf("malformed block %+v", blk)
			}
		}
		// Blocks must cover {5,6}, {9}, {12,13}.
		want := []sim.SackBlock{{Start: 5, End: 7}, {Start: 9, End: 10}, {Start: 12, End: 14}}
		for i, blk := range blocks {
			if blk != want[i] {
				t.Fatalf("block %d = %+v, want %+v", i, blk, want[i])
			}
		}
	})
}

func TestSackBlocksCapAtThree(t *testing.T) {
	eachBoardKind(t, func(t *testing.T, kind ScoreboardKind) {
		b := newRecvBoard(kind)
		for _, seq := range []int64{1, 3, 5, 7, 9} {
			b.add(seq)
		}
		blocks := b.appendSack(nil)
		if len(blocks) != 3 {
			t.Fatalf("got %d blocks, want cap of 3", len(blocks))
		}
		// The highest blocks are kept.
		if blocks[len(blocks)-1].Start != 9 {
			t.Fatalf("highest block missing: %+v", blocks)
		}
	})
}
