package tcp

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"qav/internal/sim"
)

// diffSendBoards compares every externally observable fact of two
// boards over the window [lo, hi), returning a description of the first
// mismatch ("" when identical).
func diffSendBoards(ref, win sendBoard, lo, hi int64) string {
	if r, w := ref.lostCount(), win.lostCount(); r != w {
		return fmt.Sprintf("lostCount ref=%d win=%d", r, w)
	}
	if r, w := ref.pipe(lo, hi), win.pipe(lo, hi); r != w {
		return fmt.Sprintf("pipe ref=%d win=%d", r, w)
	}
	rs, rok := ref.nextLost(lo, hi)
	ws, wok := win.nextLost(lo, hi)
	if rs != ws || rok != wok {
		return fmt.Sprintf("nextLost ref=%d,%v win=%d,%v", rs, rok, ws, wok)
	}
	for q := lo; q < hi; q++ {
		if r, w := ref.sacked(q), win.sacked(q); r != w {
			return fmt.Sprintf("sacked(%d) ref=%v win=%v", q, r, w)
		}
		if r, w := ref.lost(q), win.lost(q); r != w {
			return fmt.Sprintf("lost(%d) ref=%v win=%v", q, r, w)
		}
		if r, w := ref.rtxOut(q), win.rtxOut(q); r != w {
			return fmt.Sprintf("rtxOut(%d) ref=%v win=%v", q, r, w)
		}
	}
	return ""
}

// TestScoreboardDifferentialRandom drives the map reference and the
// windowed implementation through >= 10k randomized operation traces —
// sends, SACKs, loss inference, retransmissions, cumack advances, and
// RTO storms — asserting identical observable state after every step.
func TestScoreboardDifferentialRandom(t *testing.T) {
	iters := 10_000
	if testing.Short() {
		iters = 500
	}
	for it := 0; it < iters; it++ {
		rng := rand.New(rand.NewSource(int64(it)))
		ref, win := newMapSendBoard(), newWindowedSendBoard()
		lo, hi := int64(0), int64(0) // [highAck, nextSeq)
		steps := 40 + rng.Intn(160)
		// A few traces use windows wide enough to force ring growth.
		wide := it%97 == 0
		for op := 0; op < steps; op++ {
			switch k := rng.Intn(10); {
			case k < 3: // send new data
				n := int64(1 + rng.Intn(8))
				if wide {
					n += int64(rng.Intn(300))
				}
				for i := int64(0); i < n; i++ {
					ref.extend(hi)
					win.extend(hi)
					hi++
				}
			case k < 5: // SACK arrival + loss inference
				if hi == lo {
					continue
				}
				hs := int64(-1)
				for i := 0; i < 1+rng.Intn(6); i++ {
					seq := lo + rng.Int63n(hi-lo)
					ref.markSacked(seq)
					win.markSacked(seq)
					if seq > hs {
						hs = seq
					}
				}
				ref.inferLost(lo, hs)
				win.inferLost(lo, hs)
			case k < 6: // retransmit the next lost hole
				rs, rok := ref.nextLost(lo, hi)
				ws, wok := win.nextLost(lo, hi)
				if rs != ws || rok != wok {
					t.Fatalf("iter %d step %d: nextLost ref=%d,%v win=%d,%v", it, op, rs, rok, ws, wok)
				}
				if rok {
					ref.markRtxOut(rs)
					win.markRtxOut(ws)
				}
			case k < 7: // triple-dupack fallback: first hole is lost
				if hi > lo {
					ref.markLost(lo)
					win.markLost(lo)
				}
			case k < 9: // cumulative ack advances
				if hi == lo {
					continue
				}
				to := lo + 1 + rng.Int63n(hi-lo)
				ref.advance(lo, to)
				win.advance(lo, to)
				lo = to
			default: // RTO: everything unsacked is lost
				ref.markAllUnsackedLost(lo, hi)
				win.markAllUnsackedLost(lo, hi)
			}
			if d := diffSendBoards(ref, win, lo, hi); d != "" {
				t.Fatalf("iter %d step %d window [%d,%d): %s", it, op, lo, hi, d)
			}
		}
	}
}

// TestRecvBoardDifferential feeds both receiver boards randomized
// arrival orders with duplicates, reordering, and stale (already
// cumacked) retransmissions. Cumulative acks must match exactly; SACK
// blocks must match once the reference's blocks are filtered to the
// live window — the map reference reports stale below-cumack runs
// (the unbounded-growth bug) which the sender provably ignores, while
// the windowed board drops them at arrival.
func TestRecvBoardDifferential(t *testing.T) {
	iters := 10_000
	if testing.Short() {
		iters = 500
	}
	for it := 0; it < iters; it++ {
		rng := rand.New(rand.NewSource(int64(^it)))
		ref, win := newMapRecvBoard(), newWindowedRecvBoard()
		var next int64 // highest sequence "sent" so far
		for op := 0; op < 60+rng.Intn(100); op++ {
			var seq int64
			switch k := rng.Intn(10); {
			case k < 6: // in-order-ish new data (may skip = loss)
				next += int64(rng.Intn(3)) // 0 = dup of last, 2 = gap
				seq = next
				if it%53 == 0 {
					next += int64(rng.Intn(400)) // force ring growth
				}
			case k < 9: // retransmission of something in the recent window
				back := rng.Int63n(40) + 1
				seq = next - back
				if seq < 0 {
					seq = 0
				}
			default: // stale spurious retransmission, possibly far below
				seq = rng.Int63n(max64(ref.cumack(), 1))
			}
			ref.add(seq)
			win.add(seq)
			if ref.cumack() != win.cumack() {
				t.Fatalf("iter %d: cumack ref=%d win=%d after add(%d)", it, ref.cumack(), win.cumack(), seq)
			}
			rb := filterBlocks(ref.appendSack(nil), ref.cumack())
			wb := win.appendSack(nil)
			if len(rb) != len(wb) {
				t.Fatalf("iter %d: blocks ref=%+v win=%+v (cum=%d)", it, rb, wb, ref.cumack())
			}
			for i := range rb {
				if rb[i] != wb[i] {
					t.Fatalf("iter %d: block %d ref=%+v win=%+v", it, i, rb[i], wb[i])
				}
			}
		}
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func filterBlocks(blocks []sim.SackBlock, cum int64) []sim.SackBlock {
	out := blocks[:0]
	for _, b := range blocks {
		if b.Start >= cum {
			out = append(out, b)
		}
	}
	return out
}

// txRecord is one transmit decision observed through testTxHook.
type txRecord struct {
	t    float64
	seq  int64
	retx bool
}

func runDifferentialScenario(kind ScoreboardKind, rate float64, queueBytes int, flows int, dur float64) ([][]txRecord, []string) {
	eng := sim.NewEngine()
	net := sim.NewDumbbell(eng, sim.DumbbellConfig{
		Rate: rate, Delay: 0.01, AccessDelay: 0.005, QueueBytes: queueBytes,
	})
	traces := make([][]txRecord, flows)
	stats := make([]string, flows)
	srcs := make([]*Source, flows)
	for i := 0; i < flows; i++ {
		s := NewSource(eng, net, Config{
			FlowID: i, PacketSize: 512, InitialRTT: net.BaseRTT(),
			Start: float64(i) * 0.037, Board: kind,
		})
		i := i
		s.testTxHook = func(seq int64, retx bool) {
			traces[i] = append(traces[i], txRecord{t: eng.Now(), seq: seq, retx: retx})
		}
		srcs[i] = s
	}
	eng.RunUntil(dur)
	for i, s := range srcs {
		stats[i] = fmt.Sprintf("sent=%d retx=%d acked=%d rto=%d fr=%d cwnd=%.6f",
			s.SentPkts, s.RetransPkts, s.AckedPkts, s.Timeouts, s.FastRecover, s.Cwnd())
	}
	return traces, stats
}

// TestTCPDifferentialMapVsWindowed runs whole lossy simulations twice —
// map scoreboard vs windowed — and requires the transmit decision
// streams (every sequence, timestamp, and retransmit flag) and final
// stats to be bit-for-bit identical. Covers RTO-heavy (tiny queue),
// fast-recovery (medium queue), multi-flow contention, and a
// large-window regime that forces ring growth.
func TestTCPDifferentialMapVsWindowed(t *testing.T) {
	cases := []struct {
		name       string
		rate       float64
		queueBytes int
		flows      int
		dur        float64
	}{
		{"rto-heavy", 30_000, 4 * 512, 1, 40},
		{"fast-recovery", 50_000, 16 * 512, 1, 40},
		{"contended", 50_000, 12 * 512, 4, 30},
		{"large-window", 4_000_000, 600 * 512, 1, 20},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mt, ms := runDifferentialScenario(BoardMap, tc.rate, tc.queueBytes, tc.flows, tc.dur)
			wt, ws := runDifferentialScenario(BoardWindowed, tc.rate, tc.queueBytes, tc.flows, tc.dur)
			for i := range ms {
				if ms[i] != ws[i] {
					t.Errorf("flow %d stats differ:\nmap      %s\nwindowed %s", i, ms[i], ws[i])
				}
				if len(mt[i]) != len(wt[i]) {
					t.Fatalf("flow %d: %d transmissions under map, %d under windowed", i, len(mt[i]), len(wt[i]))
				}
				for j := range mt[i] {
					if mt[i][j] != wt[i][j] {
						t.Fatalf("flow %d tx %d differs: map %+v windowed %+v", i, j, mt[i][j], wt[i][j])
					}
				}
			}
		})
	}
}

// lossyTCPRig builds a tiny-queue dumbbell with two competing TCP
// flows so losses (including RTOs) are plentiful.
func lossyTCPRig() (*sim.Engine, []*Source) {
	eng := sim.NewEngine()
	net := sim.NewDumbbell(eng, sim.DumbbellConfig{
		Rate: 30_000, Delay: 0.01, AccessDelay: 0.005, QueueBytes: 4 * 512,
	})
	srcs := make([]*Source, 2)
	for i := range srcs {
		srcs[i] = NewSource(eng, net, Config{
			FlowID: i, PacketSize: 512, InitialRTT: net.BaseRTT(), Start: float64(i) * 0.05,
		})
	}
	return eng, srcs
}

// TestAllocFreeSteadyStateTCPUnderLoss extends the TestAlloc* suite to
// TCP with active loss recovery: after warmup, continued lossy
// simulation must allocate nothing — the windowed scoreboards do all
// SACK/loss/retransmit bookkeeping in preallocated rings.
func TestAllocFreeSteadyStateTCPUnderLoss(t *testing.T) {
	eng, srcs := lossyTCPRig()
	eng.RunUntil(30) // warm: pools filled, rings sized, RTO machinery exercised
	retxBefore := srcs[0].RetransPkts + srcs[1].RetransPkts
	next := 30.0
	avg := testing.AllocsPerRun(50, func() {
		next += 0.5
		eng.RunUntil(next)
	})
	if avg != 0 {
		t.Fatalf("lossy TCP steady state allocates %.1f allocs per 0.5s slice, want 0", avg)
	}
	if retxAfter := srcs[0].RetransPkts + srcs[1].RetransPkts; retxAfter == retxBefore {
		t.Fatal("no retransmissions during the measured window — loss path not exercised")
	}
}

type nullReceiver struct{}

func (nullReceiver) Recv(*sim.Packet) {}

// spuriousRTORig is engineered to produce spurious retransmissions —
// the trigger for the historical sink.received leak. A deep queue plus
// a periodic instantaneous 80-packet burst adds a ~1.4s delay step that
// stalls the ACK clock past the (idle-state) RTO; the timeout
// retransmits packets that were merely queued, the originals then
// advance the cumulative ack, and the retransmissions arrive at the
// sink below it.
func spuriousRTORig(kind ScoreboardKind) (*sim.Engine, *Source) {
	eng := sim.NewEngine()
	net := sim.NewDumbbell(eng, sim.DumbbellConfig{
		Rate: 30_000, Delay: 0.01, AccessDelay: 0.005, QueueBytes: 120 * 512,
	})
	s := NewSource(eng, net, Config{
		FlowID: 0, PacketSize: 512, InitialRTT: net.BaseRTT(), Board: kind,
	})
	var burst func()
	burst = func() {
		for i := 0; i < 80; i++ {
			p := eng.Pool().Get()
			p.FlowID, p.Seq, p.Size, p.Kind = 99, 0, 512, sim.Data
			net.SendData(p, nullReceiver{})
		}
		eng.After(4, burst)
	}
	eng.At(1.0, burst)
	return eng, s
}

// TestTCPMemoryBoundedUnderLoss is the long-run regression test for the
// sink.received leak (tcp.go:310 in the map era): heap usage between
// two checkpoints of a lossy, spurious-RTO-heavy run must stay flat.
// Before the windowed scoreboard, every retransmission arriving below
// the receiver's cumulative ack stayed in the received map forever.
func TestTCPMemoryBoundedUnderLoss(t *testing.T) {
	eng, src := spuriousRTORig(BoardWindowed)
	eng.RunUntil(60) // settle pools, rings, and the event free list

	heap := func() uint64 {
		runtime.GC()
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		return m.HeapAlloc
	}
	before := heap()
	eng.RunUntil(660) // 600 further simulated seconds of lossy traffic
	after := heap()

	if src.RetransPkts == 0 || src.Timeouts == 0 {
		t.Fatalf("run not lossy enough to regress the leak (retx=%d rto=%d)", src.RetransPkts, src.Timeouts)
	}
	// The map-era leak accrues ~2.5k stale entries (plus map bucket and
	// sort-scratch growth) over this window; windowed boards hold state
	// in fixed rings, so the heap must not move beyond GC noise.
	const slack = 64 << 10
	if after > before+slack {
		t.Fatalf("heap grew %d bytes across a 600s lossy window (before=%d after=%d): unbounded scoreboard state", after-before, before, after)
	}
}

// TestSinkStateBoundedVsMapLeak pins the leak itself: under the same
// spurious-RTO workload the map sink's received set grows with run
// length while the windowed sink's live span stays within the flow's
// window.
func TestSinkStateBoundedVsMapLeak(t *testing.T) {
	engM, srcM := spuriousRTORig(BoardMap)
	engM.RunUntil(120)
	mb := srcM.sink.board.(*mapRecvBoard)
	stale := 0
	for seq := range mb.received {
		if seq < mb.cum {
			stale++
		}
	}
	if stale < 100 {
		t.Fatalf("map sink accumulated only %d stale entries — rig no longer reproduces the leak", stale)
	}

	engW, srcW := spuriousRTORig(BoardWindowed)
	engW.RunUntil(120)
	wb := srcW.sink.board.(*windowedRecvBoard)
	if span := wb.high - wb.cum; span > 512 {
		t.Fatalf("windowed sink live span %d exceeds any plausible window", span)
	}
	if words := len(wb.bits.words); words*64 > 1024 {
		t.Fatalf("windowed sink ring grew to %d sequences", words*64)
	}
}

// TestWindowedBoardRingGrowth exercises grow() directly: live state
// must survive capacity doubling bit-for-bit.
func TestWindowedBoardRingGrowth(t *testing.T) {
	win, ref := newWindowedSendBoard(), newMapSendBoard()
	lo, hi := int64(0), int64(0)
	rng := rand.New(rand.NewSource(7))
	for hi < 5000 {
		for i := 0; i < 64; i++ {
			ref.extend(hi)
			win.extend(hi)
			if rng.Intn(3) == 0 {
				ref.markSacked(hi)
				win.markSacked(hi)
			} else if rng.Intn(4) == 0 {
				ref.markLost(hi)
				win.markLost(hi)
			}
			hi++
		}
		if d := diffSendBoards(ref, win, lo, hi); d != "" {
			t.Fatalf("after growth to window [%d,%d): %s", lo, hi, d)
		}
	}
	ref.advance(lo, hi-3)
	win.advance(lo, hi-3)
	if d := diffSendBoards(ref, win, hi-3, hi); d != "" {
		t.Fatalf("after advance: %s", d)
	}
}
