// Package trace collects time series and computes the paper's evaluation
// metrics: buffering efficiency (Table 1) and the fraction of layer drops
// caused by poor inter-layer buffer distribution (Table 2).
package trace

import (
	"fmt"
	"io"
	"math"
	"sort"
)

// Series is a named time series (seconds, value).
type Series struct {
	Name string
	T    []float64
	V    []float64
}

// Add appends a sample.
func (s *Series) Add(t, v float64) {
	s.T = append(s.T, t)
	s.V = append(s.V, v)
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.T) }

// Last returns the most recent value, or 0 if empty.
func (s *Series) Last() float64 {
	if len(s.V) == 0 {
		return 0
	}
	return s.V[len(s.V)-1]
}

// Max returns the maximum value, or 0 if empty.
func (s *Series) Max() float64 {
	m := math.Inf(-1)
	for _, v := range s.V {
		if v > m {
			m = v
		}
	}
	if math.IsInf(m, -1) {
		return 0
	}
	return m
}

// Min returns the minimum value, or 0 if empty.
func (s *Series) Min() float64 {
	m := math.Inf(1)
	for _, v := range s.V {
		if v < m {
			m = v
		}
	}
	if math.IsInf(m, 1) {
		return 0
	}
	return m
}

// Avg returns the arithmetic mean, or 0 if empty.
func (s *Series) Avg() float64 {
	if len(s.V) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.V {
		sum += v
	}
	return sum / float64(len(s.V))
}

// AvgBetween averages samples with t in [from, to).
func (s *Series) AvgBetween(from, to float64) float64 {
	sum, n := 0.0, 0
	for i, t := range s.T {
		if t >= from && t < to {
			sum += s.V[i]
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Set is an ordered collection of named series.
type Set struct {
	order  []*Series
	byName map[string]*Series
}

// NewSet returns an empty series set.
func NewSet() *Set { return &Set{byName: make(map[string]*Series)} }

// Series returns the series with the given name, creating it on first use.
func (set *Set) Series(name string) *Series {
	if s, ok := set.byName[name]; ok {
		return s
	}
	s := &Series{Name: name}
	set.byName[name] = s
	set.order = append(set.order, s)
	return s
}

// Names returns all series names in creation order.
func (set *Set) Names() []string {
	out := make([]string, len(set.order))
	for i, s := range set.order {
		out[i] = s.Name
	}
	return out
}

// Get returns the series with the given name, or nil.
func (set *Set) Get(name string) *Series { return set.byName[name] }

// WriteTSV writes all series that share the first series' timestamps as
// one aligned tab-separated table (time plus one column per series).
// Series with differing sample counts are written as separate blocks.
func (set *Set) WriteTSV(w io.Writer) error {
	if len(set.order) == 0 {
		return nil
	}
	// Group series by identical sample count.
	groups := map[int][]*Series{}
	var lens []int
	for _, s := range set.order {
		if _, ok := groups[s.Len()]; !ok {
			lens = append(lens, s.Len())
		}
		groups[s.Len()] = append(groups[s.Len()], s)
	}
	sort.Ints(lens)
	for _, n := range lens {
		g := groups[n]
		if _, err := fmt.Fprintf(w, "# time"); err != nil {
			return err
		}
		for _, s := range g {
			if _, err := fmt.Fprintf(w, "\t%s", s.Name); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			if _, err := fmt.Fprintf(w, "%.3f", g[0].T[i]); err != nil {
				return err
			}
			for _, s := range g {
				if _, err := fmt.Fprintf(w, "\t%.3f", s.V[i]); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
	}
	return nil
}
