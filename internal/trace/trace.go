// Package trace collects time series and computes the paper's evaluation
// metrics: buffering efficiency (Table 1) and the fraction of layer drops
// caused by poor inter-layer buffer distribution (Table 2).
package trace

import (
	"fmt"
	"io"
	"math"
	"sort"
)

// Series is a named time series (seconds, value).
type Series struct {
	Name string
	T    []float64
	V    []float64
}

// Add appends a sample.
func (s *Series) Add(t, v float64) {
	s.T = append(s.T, t)
	s.V = append(s.V, v)
}

// Reserve grows the series' capacity to hold at least n samples, so a
// caller that knows its sample count up front (e.g. the scenario
// sampler: Duration/SampleInterval) pays one allocation per vector
// instead of the append regrowth ladder. Existing samples are kept; a
// series already at capacity n is untouched.
func (s *Series) Reserve(n int) {
	if cap(s.T) < n {
		t := make([]float64, len(s.T), n)
		copy(t, s.T)
		s.T = t
	}
	if cap(s.V) < n {
		v := make([]float64, len(s.V), n)
		copy(v, s.V)
		s.V = v
	}
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.T) }

// Last returns the most recent value, or 0 if empty.
func (s *Series) Last() float64 {
	if len(s.V) == 0 {
		return 0
	}
	return s.V[len(s.V)-1]
}

// Max returns the maximum value. ok is false when the series is empty —
// the zero maximum is then a default, not an observed value.
func (s *Series) Max() (v float64, ok bool) {
	_, hi, n := s.MinMax()
	return hi, n > 0
}

// Min returns the minimum value; ok is false when the series is empty.
func (s *Series) Min() (v float64, ok bool) {
	lo, _, n := s.MinMax()
	return lo, n > 0
}

// MinMax returns the minimum and maximum value and the sample count in
// one pass. lo and hi are 0 when n is 0.
func (s *Series) MinMax() (lo, hi float64, n int) {
	n = len(s.V)
	if n == 0 {
		return 0, 0, 0
	}
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, v := range s.V {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi, n
}

// Avg returns the arithmetic mean, or 0 if empty.
func (s *Series) Avg() float64 {
	if len(s.V) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.V {
		sum += v
	}
	return sum / float64(len(s.V))
}

// AvgBetween averages samples with t in [from, to).
func (s *Series) AvgBetween(from, to float64) float64 {
	sum, n := 0.0, 0
	for i, t := range s.T {
		if t >= from && t < to {
			sum += s.V[i]
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Set is an ordered collection of named series.
type Set struct {
	order  []*Series
	byName map[string]*Series
}

// NewSet returns an empty series set.
func NewSet() *Set { return &Set{byName: make(map[string]*Series)} }

// Series returns the series with the given name, creating it on first use.
func (set *Set) Series(name string) *Series {
	if s, ok := set.byName[name]; ok {
		return s
	}
	s := &Series{Name: name}
	set.byName[name] = s
	set.order = append(set.order, s)
	return s
}

// Names returns all series names in creation order.
func (set *Set) Names() []string {
	out := make([]string, len(set.order))
	for i, s := range set.order {
		out[i] = s.Name
	}
	return out
}

// Get returns the series with the given name, or nil.
func (set *Set) Get(name string) *Series { return set.byName[name] }

// tsvKey identifies series sampled on the same clock: equal length plus
// equal first and last timestamps. Length alone is not enough — two
// series can coincidentally share a sample count while being sampled at
// different times, and zipping those against one time column silently
// misaligns the table.
type tsvKey struct {
	n           int
	first, last float64
}

func seriesKey(s *Series) tsvKey {
	k := tsvKey{n: s.Len()}
	if k.n > 0 {
		k.first, k.last = s.T[0], s.T[k.n-1]
	}
	return k
}

// WriteTSV writes series sharing a sampling clock (same sample count and
// same first/last timestamps) as one aligned tab-separated table (time
// plus one column per series). Series on differing clocks are written as
// separate blocks, ordered by length then start time.
func (set *Set) WriteTSV(w io.Writer) error {
	if len(set.order) == 0 {
		return nil
	}
	groups := map[tsvKey][]*Series{}
	var keys []tsvKey
	for _, s := range set.order {
		k := seriesKey(s)
		if _, ok := groups[k]; !ok {
			keys = append(keys, k)
		}
		groups[k] = append(groups[k], s)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.n != b.n {
			return a.n < b.n
		}
		if a.first != b.first {
			return a.first < b.first
		}
		return a.last < b.last
	})
	for _, k := range keys {
		g := groups[k]
		n := k.n
		if _, err := fmt.Fprintf(w, "# time"); err != nil {
			return err
		}
		for _, s := range g {
			if _, err := fmt.Fprintf(w, "\t%s", s.Name); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			if _, err := fmt.Fprintf(w, "%.3f", g[0].T[i]); err != nil {
				return err
			}
			for _, s := range g {
				if _, err := fmt.Fprintf(w, "\t%.3f", s.V[i]); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
	}
	return nil
}
