package trace

import "qav/internal/core"

// DropStats summarizes the layer-drop events of a run, the raw material
// for the paper's Tables 1 and 2.
type DropStats struct {
	// Drops is the number of layer-drop events.
	Drops int
	// AvgEfficiency is the mean of e = (buf_total - buf_drop)/buf_total
	// over drop events (Table 1); 1.0 when no buffered data was wasted.
	AvgEfficiency float64
	// PoorDistPct is the percentage of drops that happened although the
	// total buffering would have sufficed for recovery (Table 2).
	PoorDistPct float64
	// Adds counts layer additions.
	Adds int
	// Backoffs counts congestion backoffs.
	Backoffs int
	// Stalls counts base-layer underflow events.
	Stalls int
}

// ComputeDropStats derives the drop statistics from a controller event
// log. Drop events with zero total buffering count as perfectly
// efficient: nothing was wasted.
func ComputeDropStats(events []core.Event) DropStats {
	var st DropStats
	sumE := 0.0
	poor := 0
	for _, e := range events {
		switch e.Kind {
		case core.EvDropLayer:
			st.Drops++
			if e.BufTotal > 0 {
				sumE += (e.BufTotal - e.BufDrop) / e.BufTotal
			} else {
				sumE += 1
			}
			if e.PoorDist {
				poor++
			}
		case core.EvAddLayer:
			st.Adds++
		case core.EvBackoff:
			st.Backoffs++
		case core.EvStallStart:
			st.Stalls++
		}
	}
	if st.Drops > 0 {
		st.AvgEfficiency = sumE / float64(st.Drops)
		st.PoorDistPct = 100 * float64(poor) / float64(st.Drops)
	} else {
		st.AvgEfficiency = 1
	}
	return st
}

// QualityChanges counts add/drop events in [from, to).
func QualityChanges(events []core.Event, from, to float64) int {
	n := 0
	for _, e := range events {
		if e.Time >= from && e.Time < to &&
			(e.Kind == core.EvAddLayer || e.Kind == core.EvDropLayer) {
			n++
		}
	}
	return n
}
