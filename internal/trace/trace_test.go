package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"qav/internal/core"
)

func TestSeriesStats(t *testing.T) {
	var s Series
	for i := 0; i < 10; i++ {
		s.Add(float64(i), float64(i))
	}
	mn, mnOK := s.Min()
	mx, mxOK := s.Max()
	if s.Len() != 10 || s.Last() != 9 || mx != 9 || !mxOK || mn != 0 || !mnOK {
		t.Fatalf("stats wrong: len=%d last=%v max=%v min=%v", s.Len(), s.Last(), mx, mn)
	}
	if lo, hi, n := s.MinMax(); lo != 0 || hi != 9 || n != 10 {
		t.Fatalf("MinMax = (%v, %v, %d), want (0, 9, 10)", lo, hi, n)
	}
	if s.Avg() != 4.5 {
		t.Fatalf("avg = %v, want 4.5", s.Avg())
	}
	if got := s.AvgBetween(2, 5); got != 3 {
		t.Fatalf("AvgBetween(2,5) = %v, want 3", got)
	}
	if got := s.AvgBetween(100, 200); got != 0 {
		t.Fatalf("empty window avg = %v, want 0", got)
	}
}

func TestSeriesEmpty(t *testing.T) {
	var s Series
	if _, ok := s.Max(); ok {
		t.Fatal("empty Max reported ok")
	}
	if _, ok := s.Min(); ok {
		t.Fatal("empty Min reported ok")
	}
	if _, _, n := s.MinMax(); n != 0 {
		t.Fatal("empty MinMax reported samples")
	}
	if s.Last() != 0 || s.Avg() != 0 {
		t.Fatal("empty series stats should all be 0")
	}
}

func TestSetCreatesAndOrders(t *testing.T) {
	set := NewSet()
	a := set.Series("a")
	b := set.Series("b")
	if set.Series("a") != a {
		t.Fatal("Series not idempotent")
	}
	if set.Get("b") != b || set.Get("zzz") != nil {
		t.Fatal("Get broken")
	}
	names := set.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("names = %v", names)
	}
}

func TestWriteTSVAligned(t *testing.T) {
	set := NewSet()
	for i := 0; i < 3; i++ {
		set.Series("x").Add(float64(i), float64(i)*2)
		set.Series("y").Add(float64(i), float64(i)*3)
	}
	var buf bytes.Buffer
	if err := set.WriteTSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want header+3", len(lines))
	}
	if !strings.HasPrefix(lines[0], "# time\tx\ty") {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[2] != "1.000\t2.000\t3.000" {
		t.Fatalf("row = %q", lines[2])
	}
}

// Two series with the same sample count but different timestamps must
// not be zipped into one table against the first series' time column.
func TestWriteTSVSplitsEqualLengthDifferentClocks(t *testing.T) {
	set := NewSet()
	for i := 0; i < 3; i++ {
		set.Series("early").Add(float64(i), 1)
		set.Series("late").Add(10+float64(i), 2)
	}
	var buf bytes.Buffer
	if err := set.WriteTSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := strings.TrimSpace(buf.String())
	lines := strings.Split(out, "\n")
	// Two blocks: header+3 rows each.
	if len(lines) != 8 {
		t.Fatalf("got %d lines, want 8 (two 4-line blocks):\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "# time\tearly") || strings.Contains(lines[0], "late") {
		t.Fatalf("first header mixed clocks: %q", lines[0])
	}
	if !strings.HasPrefix(lines[4], "# time\tlate") {
		t.Fatalf("second header = %q", lines[4])
	}
	// The late block's rows must carry its own timestamps.
	if !strings.HasPrefix(lines[5], "10.000\t2.000") {
		t.Fatalf("late block misaligned: %q", lines[5])
	}
}

// Series on the same clock still share one table even when another
// equal-length series is present.
func TestWriteTSVGroupsByTimeVector(t *testing.T) {
	set := NewSet()
	for i := 0; i < 4; i++ {
		set.Series("a").Add(float64(i), 1)
		set.Series("b").Add(float64(i), 2)
		set.Series("shifted").Add(float64(i)+0.5, 3)
	}
	var buf bytes.Buffer
	if err := set.WriteTSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if !strings.HasPrefix(lines[0], "# time\ta\tb") {
		t.Fatalf("same-clock series split apart: %q", lines[0])
	}
	if strings.Contains(lines[0], "shifted") {
		t.Fatalf("shifted clock joined the wrong table: %q", lines[0])
	}
}

func TestComputeDropStats(t *testing.T) {
	events := []core.Event{
		{Kind: core.EvPlayStart},
		{Kind: core.EvAddLayer},
		{Kind: core.EvAddLayer},
		{Kind: core.EvBackoff},
		{Kind: core.EvDropLayer, BufTotal: 1000, BufDrop: 10},
		{Kind: core.EvDropLayer, BufTotal: 1000, BufDrop: 100, PoorDist: true},
		{Kind: core.EvStallStart},
	}
	st := ComputeDropStats(events)
	if st.Drops != 2 || st.Adds != 2 || st.Backoffs != 1 || st.Stalls != 1 {
		t.Fatalf("counts wrong: %+v", st)
	}
	wantE := ((1000.0-10)/1000 + (1000.0-100)/1000) / 2
	if math.Abs(st.AvgEfficiency-wantE) > 1e-12 {
		t.Fatalf("efficiency %v, want %v", st.AvgEfficiency, wantE)
	}
	if st.PoorDistPct != 50 {
		t.Fatalf("poor%% = %v, want 50", st.PoorDistPct)
	}
}

func TestComputeDropStatsNoDrops(t *testing.T) {
	st := ComputeDropStats([]core.Event{{Kind: core.EvAddLayer}})
	if st.AvgEfficiency != 1 || st.PoorDistPct != 0 {
		t.Fatalf("no-drop defaults wrong: %+v", st)
	}
}

func TestComputeDropStatsZeroTotal(t *testing.T) {
	st := ComputeDropStats([]core.Event{
		{Kind: core.EvDropLayer, BufTotal: 0, BufDrop: 0},
	})
	if st.AvgEfficiency != 1 {
		t.Fatalf("zero-buffer drop should count as fully efficient, got %v", st.AvgEfficiency)
	}
}

func TestQualityChanges(t *testing.T) {
	events := []core.Event{
		{Time: 1, Kind: core.EvAddLayer},
		{Time: 2, Kind: core.EvDropLayer},
		{Time: 3, Kind: core.EvBackoff},
		{Time: 10, Kind: core.EvAddLayer},
	}
	if got := QualityChanges(events, 0, 5); got != 2 {
		t.Fatalf("changes in [0,5) = %d, want 2", got)
	}
	if got := QualityChanges(events, 5, 20); got != 1 {
		t.Fatalf("changes in [5,20) = %d, want 1", got)
	}
}

func TestReserveKeepsSamplesAndCapacity(t *testing.T) {
	var s Series
	s.Add(1, 10)
	s.Add(2, 20)
	s.Reserve(100)
	if s.Len() != 2 || s.T[0] != 1 || s.V[1] != 20 {
		t.Fatalf("Reserve lost samples: %+v", s)
	}
	if cap(s.T) < 100 || cap(s.V) < 100 {
		t.Fatalf("Reserve did not grow capacity: %d/%d", cap(s.T), cap(s.V))
	}
	ct, cv := cap(s.T), cap(s.V)
	s.Reserve(50) // already large enough: must be a no-op
	if cap(s.T) != ct || cap(s.V) != cv {
		t.Fatal("Reserve shrank or reallocated an already-large series")
	}
}

// Appending within a reservation must never allocate — this is what lets
// the scenario sampler run allocation-free at steady state.
func TestReserveAppendsAllocationFree(t *testing.T) {
	const n = 1202
	var s Series
	s.Reserve(n)
	allocs := testing.AllocsPerRun(10, func() {
		s.T, s.V = s.T[:0], s.V[:0]
		for i := 0; i < n; i++ {
			s.Add(float64(i), float64(i))
		}
	})
	if allocs != 0 {
		t.Fatalf("adding %d reserved samples allocated %.0f times per run", n, allocs)
	}
}
