package metrics

import (
	"bytes"
	"math"
	"sync"
	"testing"
)

func TestCounterAndGaugeBasics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Load(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	var g Gauge
	if g.Load() != 0 {
		t.Fatalf("zero gauge reads %v", g.Load())
	}
	g.Set(2.5)
	if g.Load() != 2.5 {
		t.Fatalf("gauge = %v, want 2.5", g.Load())
	}
	g.SetMax(1.5)
	if g.Load() != 2.5 {
		t.Fatalf("SetMax lowered the gauge to %v", g.Load())
	}
	g.SetMax(7)
	if g.Load() != 7 {
		t.Fatalf("SetMax did not raise the gauge: %v", g.Load())
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(HistogramOpts{}) // default: [2^-13 s, 2^4 s)
	// Underflow: zero, negative, NaN, below range.
	for _, v := range []float64{0, -1, math.NaN(), 1e-6} {
		h.Observe(v)
	}
	// In range.
	h.Observe(0.001)
	h.Observe(0.01)
	h.Observe(0.1)
	// Overflow.
	h.Observe(100)
	st := h.Stats()
	if st.Count != 8 {
		t.Fatalf("count = %d, want 8", st.Count)
	}
	if !(st.Min < st.P50 && st.P50 <= st.P99 && st.P99 <= st.Max) {
		t.Fatalf("quantiles not ordered: %+v", st)
	}
	if st.Mean <= 0 {
		t.Fatalf("mean = %v, want > 0", st.Mean)
	}
	// Bucket resolution: the midpoint estimate of a value must be within
	// ~19% (one sub-bucket) of the true value.
	h2 := NewHistogram(HistogramOpts{})
	h2.Observe(0.04)
	if st := h2.Stats(); st.P50 < 0.04*0.8 || st.P50 > 0.04*1.25 {
		t.Fatalf("midpoint estimate %v too far from 0.04", st.P50)
	}
}

func TestHistogramEmptyStats(t *testing.T) {
	h := NewHistogram(HistogramOpts{})
	if st := h.Stats(); st.Count != 0 || st.Mean != 0 || st.P99 != 0 {
		t.Fatalf("empty histogram stats = %+v, want zeros", st)
	}
}

// The record path of every instrument must not allocate: these are the
// calls on the simulator's per-packet path.
func TestRecordPathZeroAlloc(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c")
	g := reg.Gauge("g")
	h := reg.Histogram("h", HistogramOpts{})
	if n := testing.AllocsPerRun(100, func() { c.Inc(); c.Add(3) }); n != 0 {
		t.Fatalf("Counter records allocate %.1f times", n)
	}
	if n := testing.AllocsPerRun(100, func() { g.Set(1.5); g.SetMax(2.5) }); n != 0 {
		t.Fatalf("Gauge records allocate %.1f times", n)
	}
	if n := testing.AllocsPerRun(100, func() { h.Observe(0.042) }); n != 0 {
		t.Fatalf("Histogram.Observe allocates %.1f times", n)
	}
}

// LocalHistogram is the single-writer tier: each registration owns a
// private instance, Observe is a plain increment, and the registry sums
// every same-name instance (plus any atomic histogram) at snapshot time.
func TestLocalHistogramMergesAtSnapshot(t *testing.T) {
	reg := NewRegistry()
	a := reg.LocalHistogram("d", HistogramOpts{})
	b := reg.LocalHistogram("d", HistogramOpts{})
	if a == b {
		t.Fatal("LocalHistogram must return a private instance per registration")
	}
	a.Observe(0.01)
	a.Observe(0.01)
	b.Observe(0.02)
	reg.Histogram("d", HistogramOpts{}).Observe(0.04)
	st := reg.Snapshot().Histograms["d"]
	if st.Count != 4 {
		t.Fatalf("merged count = %d, want 4 (2 + 1 local, 1 atomic)", st.Count)
	}
	if st.Min >= st.Max {
		t.Fatalf("merged stats lost the spread: %+v", st)
	}
	if a.Count() != 2 || b.Count() != 1 {
		t.Fatalf("local counts = %d, %d, want 2, 1", a.Count(), b.Count())
	}
	if n := testing.AllocsPerRun(100, func() { a.Observe(0.042) }); n != 0 {
		t.Fatalf("LocalHistogram.Observe allocates %.1f times", n)
	}
}

func TestRegistryIdempotentByName(t *testing.T) {
	reg := NewRegistry()
	if reg.Counter("x") != reg.Counter("x") {
		t.Fatal("same name returned distinct counters")
	}
	if reg.Gauge("y") != reg.Gauge("y") {
		t.Fatal("same name returned distinct gauges")
	}
	if reg.Histogram("z", HistogramOpts{}) != reg.Histogram("z", HistogramOpts{MinExp: -2, MaxExp: 2}) {
		t.Fatal("same name returned distinct histograms (later opts must be ignored)")
	}
}

func TestNilRegistrySafe(t *testing.T) {
	var reg *Registry
	reg.Counter("c").Inc()
	reg.Gauge("g").Set(1)
	reg.Histogram("h", HistogramOpts{}).Observe(0.5)
	reg.LocalHistogram("lh", HistogramOpts{}).Observe(0.5)
	reg.CounterFunc("cf", func() int64 { return 1 })
	reg.GaugeFunc("gf", func() float64 { return 1 })
	snap := reg.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Gauges) != 0 || len(snap.Histograms) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", snap)
	}
}

func TestFuncInstrumentsSum(t *testing.T) {
	reg := NewRegistry()
	reg.CounterFunc("n", func() int64 { return 2 })
	reg.CounterFunc("n", func() int64 { return 3 })
	reg.Counter("n").Add(10)
	reg.GaugeFunc("v", func() float64 { return 0.5 })
	reg.GaugeFunc("v", func() float64 { return 1.5 })
	snap := reg.Snapshot()
	if snap.Counters["n"] != 15 {
		t.Fatalf("counter funcs + handle = %d, want 15", snap.Counters["n"])
	}
	if snap.Gauges["v"] != 2 {
		t.Fatalf("gauge funcs = %v, want 2", snap.Gauges["v"])
	}
}

// Snapshot JSON must be byte-stable: same state, same bytes. Go
// marshals maps with sorted keys, which this locks in.
func TestSnapshotJSONDeterministic(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("b").Add(2)
	reg.Counter("a").Add(1)
	reg.Gauge("g").Set(3.5)
	reg.Histogram("h", HistogramOpts{}).Observe(0.01)
	var one, two bytes.Buffer
	if err := reg.WriteJSON(&one); err != nil {
		t.Fatal(err)
	}
	if err := reg.WriteJSON(&two); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(one.Bytes(), two.Bytes()) {
		t.Fatalf("snapshot JSON differs between identical writes:\n%s\nvs\n%s", one.String(), two.String())
	}
}

// One registry hammered from many goroutines — registration, recording,
// and snapshotting all concurrently. Run under -race this is the
// registry's concurrency contract for handle instruments.
func TestRegistryConcurrentHammer(t *testing.T) {
	reg := NewRegistry()
	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := reg.Counter("shared.count")
			h := reg.Histogram("shared.hist", HistogramOpts{})
			g := reg.Gauge("shared.max")
			for i := 0; i < perWorker; i++ {
				c.Inc()
				h.Observe(float64(i%100+1) / 1000)
				g.SetMax(float64(i))
				if i%500 == 0 {
					reg.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	snap := reg.Snapshot()
	if got := snap.Counters["shared.count"]; got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := snap.Histograms["shared.hist"].Count; got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
	if got := snap.Gauges["shared.max"]; got != perWorker-1 {
		t.Fatalf("gauge max = %v, want %d", got, perWorker-1)
	}
}
