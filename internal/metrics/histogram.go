package metrics

import (
	"math"
	"sync/atomic"
)

// subBuckets is the number of histogram buckets per power of two. Four
// sub-buckets give ~19% relative resolution, plenty for RTT, queue-delay,
// and ack-gap distributions whose interesting structure spans decades.
const subBuckets = 4

// HistogramOpts bounds a histogram's bucket range as powers of two:
// buckets cover [2^MinExp, 2^MaxExp) with subBuckets log-spaced buckets
// per octave, plus one underflow and one overflow bucket. The zero value
// selects a range suited to times in seconds: 2^-13 s (~122 µs) to
// 2^4 s (16 s).
type HistogramOpts struct {
	MinExp int
	MaxExp int
}

func (o HistogramOpts) withDefaults() HistogramOpts {
	if o.MinExp == 0 && o.MaxExp == 0 {
		return HistogramOpts{MinExp: -13, MaxExp: 4}
	}
	if o.MaxExp <= o.MinExp {
		o.MaxExp = o.MinExp + 1
	}
	return o
}

// Histogram counts observations in fixed log-spaced buckets. Observe is
// lock-free, branch-light, and allocation-free: the bucket index is
// computed from the float's exponent and top mantissa bits — no
// math.Log, no search — followed by one atomic increment. The bucket
// layout is fixed at construction; quantiles are estimated from bucket
// midpoints at snapshot time.
type Histogram struct {
	lo     float64 // 2^minExp; observations below land in the underflow bucket
	minExp int
	nb     int            // interior buckets
	counts []atomic.Int64 // [0] underflow, [1..nb] interior, [nb+1] overflow
}

// NewHistogram returns a standalone (unregistered) histogram.
func NewHistogram(opts HistogramOpts) *Histogram {
	opts = opts.withDefaults()
	nb := (opts.MaxExp - opts.MinExp) * subBuckets
	return &Histogram{
		lo:     math.Ldexp(1, opts.MinExp),
		minExp: opts.MinExp,
		nb:     nb,
		counts: make([]atomic.Int64, nb+2),
	}
}

// bucketIndex maps v to a bucket slot: 0 for underflow (zero, negative,
// NaN, below range), 1..nb interior, nb+1 overflow. The index comes from
// the float's exponent and top mantissa bits — no math.Log, no search.
func bucketIndex(lo float64, minExp, nb int, v float64) int {
	if !(v >= lo) { // negated so NaN lands in the underflow bucket too
		return 0
	}
	bits := math.Float64bits(v)
	exp := int(bits>>52&0x7ff) - 1023
	sub := int(bits >> 50 & (subBuckets - 1))
	i := (exp-minExp)*subBuckets + sub + 1
	if i > nb {
		i = nb + 1
	}
	return i
}

// Observe records one sample. Values below the bucket range (including
// zero, negatives, and NaN) count in the underflow bucket; values at or
// above the range count in the overflow bucket.
func (h *Histogram) Observe(v float64) {
	h.counts[bucketIndex(h.lo, h.minExp, h.nb, v)].Add(1)
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// LocalHistogram is the single-writer tier of Histogram: the same bucket
// layout, but plain (non-atomic) counts, so Observe is an array
// increment — the right instrument for a per-packet path owned by one
// goroutine, like a simulated link's queueing delay. Snapshot readers
// synchronize with the writer the same way they do for CounterFunc
// fields (snapshot when the writer is quiescent). Registering several
// local histograms under one registry name sums them at snapshot time,
// which is how concurrent simulation runs sharing a registry aggregate
// without sharing a writer.
type LocalHistogram struct {
	lo     float64
	minExp int
	nb     int
	counts []int64
}

// NewLocalHistogram returns a standalone (unregistered) local histogram.
func NewLocalHistogram(opts HistogramOpts) *LocalHistogram {
	opts = opts.withDefaults()
	nb := (opts.MaxExp - opts.MinExp) * subBuckets
	return &LocalHistogram{
		lo:     math.Ldexp(1, opts.MinExp),
		minExp: opts.MinExp,
		nb:     nb,
		counts: make([]int64, nb+2),
	}
}

// Observe records one sample; same bucketing as Histogram.Observe, but
// single-writer: one plain increment, no atomics.
func (h *LocalHistogram) Observe(v float64) {
	h.counts[bucketIndex(h.lo, h.minExp, h.nb, v)]++
}

// Count returns the total number of observations.
func (h *LocalHistogram) Count() int64 {
	var n int64
	for _, c := range h.counts {
		n += c
	}
	return n
}

// Stats summarizes the local histogram.
func (h *LocalHistogram) Stats() HistogramStats {
	counts := make([]int64, len(h.counts))
	copy(counts, h.counts)
	return statsFromCounts(h.lo, h.minExp, h.nb, counts)
}

// bucketLo returns the lower bound of interior bucket i (1-based).
func bucketLo(minExp, i int) float64 {
	oct, sub := (i-1)/subBuckets, (i-1)%subBuckets
	return math.Ldexp(1+float64(sub)/subBuckets, minExp+oct)
}

// bucketMid returns the representative midpoint of bucket i, with the
// underflow bucket represented by half the range floor and the overflow
// bucket by the range ceiling.
func bucketMid(lo float64, minExp, nb, i int) float64 {
	if i == 0 {
		return lo / 2
	}
	if i > nb {
		return math.Ldexp(1, minExp) * math.Ldexp(1, nb/subBuckets)
	}
	return bucketLo(minExp, i) * (1 + 0.5/subBuckets)
}

// HistogramStats is a deterministic summary of a histogram: observation
// count, midpoint-estimated mean and quantiles, and the bucket bounds of
// the lowest and highest non-empty buckets.
type HistogramStats struct {
	Count int64   `json:"count"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

// Stats summarizes the histogram. Concurrent Observes may or may not be
// included; the result is exact once the writers are quiescent.
func (h *Histogram) Stats() HistogramStats {
	counts := make([]int64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return statsFromCounts(h.lo, h.minExp, h.nb, counts)
}

// statsFromCounts summarizes one bucket-count vector of the given
// layout; the registry also uses it to merge atomic and local
// histograms registered under one name.
func statsFromCounts(lo float64, minExp, nb int, counts []int64) HistogramStats {
	var total int64
	for _, n := range counts {
		total += n
	}
	st := HistogramStats{Count: total}
	if total == 0 {
		return st
	}
	sum := 0.0
	minSet := false
	for i, n := range counts {
		if n == 0 {
			continue
		}
		mid := bucketMid(lo, minExp, nb, i)
		sum += float64(n) * mid
		if !minSet {
			st.Min = mid
			minSet = true
		}
		st.Max = mid
	}
	st.Mean = sum / float64(total)
	st.P50 = quantile(lo, minExp, nb, counts, total, 0.50)
	st.P90 = quantile(lo, minExp, nb, counts, total, 0.90)
	st.P99 = quantile(lo, minExp, nb, counts, total, 0.99)
	return st
}

// quantile returns the midpoint of the bucket holding the q-quantile.
func quantile(lo float64, minExp, nb int, counts []int64, total int64, q float64) float64 {
	rank := int64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var cum int64
	for i, n := range counts {
		cum += n
		if cum > rank {
			return bucketMid(lo, minExp, nb, i)
		}
	}
	return bucketMid(lo, minExp, nb, len(counts)-1)
}
