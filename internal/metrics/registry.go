package metrics

import (
	"encoding/json"
	"io"
	"net/http"
	"sync"
)

// Registry owns a set of named instruments. Registration takes a mutex
// and may allocate; it happens at construction time. The returned
// handles are what hot paths record through — no lookup, no lock.
//
// Registration is idempotent: two calls with one name return the same
// handle, so components that agree on a name share one aggregated
// instrument (this is what makes a registry shared across concurrent
// simulation runs meaningful — per-run counts sum deterministically).
//
// All methods are nil-safe: calls on a nil *Registry return standalone,
// fully functional but unregistered instruments (Func registrations
// become no-ops). Components can therefore instrument unconditionally
// and let the caller decide whether anything is collected.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	hists      map[string]*Histogram
	localHists map[string][]*LocalHistogram
	counterFns map[string][]func() int64
	gaugeFns   map[string][]func() float64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		hists:      make(map[string]*Histogram),
		localHists: make(map[string][]*LocalHistogram),
		counterFns: make(map[string][]func() int64),
		gaugeFns:   make(map[string][]func() float64),
	}
}

// Counter returns the counter registered under name, creating it on
// first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return &Counter{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return &Gauge{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it
// with opts on first use (later opts for the same name are ignored).
func (r *Registry) Histogram(name string, opts HistogramOpts) *Histogram {
	if r == nil {
		return NewHistogram(opts)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(opts)
		r.hists[name] = h
	}
	return h
}

// LocalHistogram registers and returns a NEW single-writer histogram
// under name — unlike Histogram, every call returns its own instance,
// so each registering component owns a private writer (the histogram
// analogue of CounterFunc: the hot path pays plain increments, the
// registry sums all same-name instances at snapshot time, and the
// snapshot caller synchronizes with the writers). All registrations
// under one name must use the same opts.
func (r *Registry) LocalHistogram(name string, opts HistogramOpts) *LocalHistogram {
	h := NewLocalHistogram(opts)
	if r == nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.localHists[name] = append(r.localHists[name], h)
	return h
}

// CounterFunc publishes a counter whose value is read from fn at
// snapshot time. Use it to expose a plain field a single-writer hot
// path already maintains; the snapshot caller is responsible for
// synchronizing with the writer (typically by snapshotting from the
// writer's goroutine or after it has finished). Multiple functions
// registered under one name sum.
func (r *Registry) CounterFunc(name string, fn func() int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counterFns[name] = append(r.counterFns[name], fn)
}

// GaugeFunc publishes a gauge computed from fn at snapshot time; see
// CounterFunc for the synchronization contract. Multiple functions
// registered under one name sum.
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gaugeFns[name] = append(r.gaugeFns[name], fn)
}

// Snapshot is a point-in-time copy of every registered instrument,
// ready for JSON encoding (map keys marshal sorted, so the output is
// schema-stable and deterministic for deterministic producers).
type Snapshot struct {
	Counters   map[string]int64          `json:"counters"`
	Gauges     map[string]float64        `json:"gauges"`
	Histograms map[string]HistogramStats `json:"histograms"`
}

// Snapshot captures every instrument. Handle instruments are read
// atomically; Func instruments are invoked (see CounterFunc for the
// synchronization contract).
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramStats{},
	}
	if r == nil {
		return snap
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		snap.Counters[name] += c.Load()
	}
	for name, fns := range r.counterFns {
		for _, fn := range fns {
			snap.Counters[name] += fn()
		}
	}
	for name, g := range r.gauges {
		snap.Gauges[name] += g.Load()
	}
	for name, fns := range r.gaugeFns {
		for _, fn := range fns {
			snap.Gauges[name] += fn()
		}
	}
	// Histograms: merge the atomic instrument and every local instance
	// registered under one name into a single bucket-count vector, then
	// summarize once (all same-name registrations share one layout).
	for name, h := range r.hists {
		counts := make([]int64, len(h.counts))
		for i := range h.counts {
			counts[i] = h.counts[i].Load()
		}
		for _, lh := range r.localHists[name] {
			addCounts(counts, lh.counts)
		}
		snap.Histograms[name] = statsFromCounts(h.lo, h.minExp, h.nb, counts)
	}
	for name, lhs := range r.localHists {
		if _, done := r.hists[name]; done {
			continue
		}
		counts := make([]int64, len(lhs[0].counts))
		for _, lh := range lhs {
			addCounts(counts, lh.counts)
		}
		snap.Histograms[name] = statsFromCounts(lhs[0].lo, lhs[0].minExp, lhs[0].nb, counts)
	}
	return snap
}

// addCounts sums src into dst element-wise over the shorter length.
func addCounts(dst, src []int64) {
	n := len(dst)
	if len(src) < n {
		n = len(src)
	}
	for i := 0; i < n; i++ {
		dst[i] += src[i]
	}
}

// WriteJSON writes the current snapshot as indented JSON, expvar-style.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// Handler returns an http.Handler serving the registry's JSON snapshot,
// for an expvar-style metrics endpoint.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		r.WriteJSON(w)
	})
}
