// Package metrics is a small, stdlib-only instrumentation layer for the
// per-packet hot paths: counters, gauges, and fixed-bucket log-spaced
// histograms behind a registry with construction-time handle
// registration, so the record path is lock-free, branch-light, and
// allocation-free.
//
// Two recording tiers exist, matching the two kinds of producers in this
// codebase:
//
//   - Handle instruments (Counter, Gauge, Histogram) are padded atomics.
//     Recording is one uncontended atomic op, safe from any number of
//     goroutines, and costs nothing in allocations. Use them for
//     event-granularity facts (backoffs, layer changes, RTT samples,
//     recoveries) and anywhere several goroutines share one instrument
//     (the UDP endpoints, cross-run aggregation).
//   - Func instruments (Registry.CounterFunc, Registry.GaugeFunc)
//     publish a value that some single-writer component already
//     maintains as a plain field (the simulator engine's event counts,
//     a queue's byte occupancy). The record path is the component's own
//     plain increment — zero added cost — and the function is only
//     invoked at snapshot time. The caller guarantees snapshots are
//     quiescent or otherwise synchronized with the writer.
//
// Registration (Registry.Counter, Registry.Gauge, Registry.Histogram) is
// idempotent by name: asking twice returns the same handle, so
// independent components that agree on a name share (and aggregate into)
// one instrument. Multiple Func registrations under one name aggregate
// by summation at snapshot time.
package metrics

import (
	"math"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic int64, padded so adjacent
// counters never share a cache line (hot-path increments on two distinct
// counters must not false-share). The zero value is ready to use.
type Counter struct {
	v atomic.Int64
	_ [56]byte
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is an atomic float64 (stored as bits), padded like Counter. The
// zero value reads as 0.
type Gauge struct {
	bits atomic.Uint64
	_    [56]byte
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// SetMax raises the gauge to v if v is greater than the current value.
// Only meaningful for non-negative values (the bit patterns of
// non-negative floats order like the floats themselves, so the
// compare-and-swap loop is correct and almost always a single load).
func (g *Gauge) SetMax(v float64) {
	nb := math.Float64bits(v)
	for {
		ob := g.bits.Load()
		if math.Float64frombits(ob) >= v {
			return
		}
		if g.bits.CompareAndSwap(ob, nb) {
			return
		}
	}
}

// Load returns the current value.
func (g *Gauge) Load() float64 { return math.Float64frombits(g.bits.Load()) }
