package transport

import (
	"sort"
	"testing"

	"qav/internal/rap"
)

// drive feeds identical synthetic traffic — paced sends, delayed ACKs
// with jitter, random drops, periodic steps — to two RAP instances (one
// direct rap.Sender, one behind the adapter) and fails on the first
// decision that differs bitwise. This is the in-repo leg of the
// RAP-behind-interface differential: the adapter must be a zero-logic
// shim, so every rate, gap, and backoff must match the reference sender
// exactly, losses and timeouts included.
func TestRAPAdapterTransmitDecisionIdentical(t *testing.T) {
	cfg := rap.Config{PacketSize: 512, InitialRTT: 0.05, InitialRate: 20_000}
	snd := rap.NewSender(cfg)
	tr := NewRAP(cfg)

	// xorshift: deterministic drop/jitter decisions, no global rand.
	rng := uint64(0x9E3779B97F4A7C15)
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}

	same := func(now float64, what string) {
		t.Helper()
		if snd.Rate() != tr.Rate() || snd.IPG() != tr.IPG() ||
			snd.SRTT() != tr.SRTT() || snd.ConservativeSlope() != tr.ConservativeSlope() {
			t.Fatalf("t=%.4f after %s: sender (rate=%v ipg=%v srtt=%v slope=%v) != adapter (rate=%v ipg=%v srtt=%v slope=%v)",
				now, what,
				snd.Rate(), snd.IPG(), snd.SRTT(), snd.ConservativeSlope(),
				tr.Rate(), tr.IPG(), tr.SRTT(), tr.ConservativeSlope())
		}
	}
	sameBackoff := func(now float64, what string, a *rap.Backoff, b *Backoff) {
		t.Helper()
		if (a == nil) != (b == nil) {
			t.Fatalf("t=%.4f %s: backoff presence differs (sender %v, adapter %v)", now, what, a, b)
		}
		if a == nil {
			return
		}
		if a.Time != b.Time || a.OldRate != b.OldRate || a.NewRate != b.NewRate || len(a.LostSeqs) != len(b.LostSeqs) {
			t.Fatalf("t=%.4f %s: backoff differs: sender %+v adapter %+v", now, what, *a, *b)
		}
		// The two instances iterate separate outstanding maps, so the
		// loss lists agree as sets, not as sequences.
		as := append([]int64(nil), a.LostSeqs...)
		bs := append([]int64(nil), b.LostSeqs...)
		sort.Slice(as, func(i, j int) bool { return as[i] < as[j] })
		sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
		for i := range as {
			if as[i] != bs[i] {
				t.Fatalf("t=%.4f %s: lost sets differ: %v vs %v", now, what, as, bs)
			}
		}
	}

	type ackEv struct {
		seq int64
		due float64
	}
	var pending []ackEv
	now := 0.0
	nextStep := snd.StepInterval()
	for i := 0; i < 30_000; i++ {
		now += snd.IPG()
		s1, s2 := snd.OnSend(now), tr.OnSend(now)
		if s1 != s2 {
			t.Fatalf("t=%.4f: send seq differs: %d vs %d", now, s1, s2)
		}
		same(now, "OnSend")
		r := next()
		if r%100 >= 8 { // 8% drop rate; enough for regular loss clusters
			jitter := float64(r%1000) / 1e5 // up to 10ms
			pending = append(pending, ackEv{seq: s1, due: now + 0.05 + jitter})
		}
		for len(pending) > 0 && pending[0].due <= now {
			ev := pending[0]
			pending = pending[1:]
			b1 := snd.OnAck(ev.due, ev.seq)
			b2 := tr.OnAck(ev.due, ev.seq)
			sameBackoff(ev.due, "OnAck", b1, b2)
			same(ev.due, "OnAck")
		}
		for now >= nextStep {
			b1 := snd.Step(nextStep)
			b2 := tr.Step(nextStep)
			sameBackoff(nextStep, "Step", b1, b2)
			same(nextStep, "Step")
			if snd.StepInterval() != tr.StepInterval() {
				t.Fatalf("t=%.4f: step interval differs", nextStep)
			}
			nextStep += snd.StepInterval()
		}
	}

	c := tr.Counters()
	if c.Sent != snd.Sent || c.Acked != snd.Acked || c.Lost != snd.Lost ||
		c.Backoffs != snd.Backoffs || c.Timeouts != snd.TimeoutEv {
		t.Fatalf("counters differ: adapter %+v, sender sent=%d acked=%d lost=%d backoffs=%d timeouts=%d",
			c, snd.Sent, snd.Acked, snd.Lost, snd.Backoffs, snd.TimeoutEv)
	}
	if c.Sent == 0 || c.Lost == 0 || c.Backoffs == 0 {
		t.Fatalf("differential is vacuous: %+v (need traffic, losses, and backoffs)", c)
	}
	if tr.Kind() != KindRAP {
		t.Fatalf("Kind() = %q, want rap", tr.Kind())
	}
}

func TestParseKind(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Kind
		err  bool
	}{
		{"", KindRAP, false},
		{"rap", KindRAP, false},
		{"delay", KindDelay, false},
		{"greedy", KindGreedy, false},
		{"tcp", "", true},
	} {
		got, err := ParseKind(tc.in)
		if (err != nil) != tc.err || got != tc.want {
			t.Errorf("ParseKind(%q) = (%q, %v), want (%q, err=%v)", tc.in, got, err, tc.want, tc.err)
		}
	}
}
