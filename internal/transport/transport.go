// Package transport defines the congestion-control seam between the
// scenario layer and the rate controllers that drive it. The paper's
// central claim is that quality adaptation is decoupled from congestion
// control: the QA controller only needs a transmission rate, a
// conservative slope estimate, and backoff notifications. Transport is
// exactly that surface — the scenario sources drive any backend through
// it, and backends plug in without the QA or scenario layers changing.
//
// Three backends implement it:
//
//   - the RAP adapter in this package (NewRAP), wrapping the reference
//     rap.Sender byte-for-byte: every figure and table the repo
//     regenerates is produced through this adapter;
//   - transport/delay, a delay-based (GCC-style) controller that
//     Kalman-filters the RTT gradient and backs off on overuse, before
//     loss;
//   - transport/greedy, a loss-only throughput-greedy baseline (the
//     "adaptive bitrate over TCP" adversary).
//
// Backends are not goroutine-safe; each flow owns one instance and its
// engine serializes access (shard-safe under the parallel DES barrier,
// which never runs one flow's events concurrently with themselves).
package transport

import (
	"fmt"
	"sort"

	"qav/internal/metrics"
)

// Kind names a transport backend. The zero value is not a valid kind;
// scenario.Config normalizes it to KindRAP.
type Kind string

const (
	// KindRAP is the paper's Rate Adaptation Protocol (the reference
	// backend; additive increase, halve on loss).
	KindRAP Kind = "rap"
	// KindDelay is the delay-based GCC-style controller (Kalman
	// RTT-gradient filter, overuse detector, AIMD; backs off before loss).
	KindDelay Kind = "delay"
	// KindGreedy is the loss-only throughput-greedy baseline.
	KindGreedy Kind = "greedy"
)

// Kinds returns the known backend names, sorted.
func Kinds() []Kind {
	ks := []Kind{KindRAP, KindDelay, KindGreedy}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	return ks
}

// ParseKind validates a backend name ("" parses as KindRAP, the
// default).
func ParseKind(s string) (Kind, error) {
	switch Kind(s) {
	case "", KindRAP:
		return KindRAP, nil
	case KindDelay:
		return KindDelay, nil
	case KindGreedy:
		return KindGreedy, nil
	}
	return "", fmt.Errorf("transport: unknown kind %q (have %v)", s, Kinds())
}

// Backoff describes one rate decrease the transport performed. LostSeqs
// lists the data packets inferred lost, if any — a delay-based backend
// backs off on queue growth alone, with no losses to report. The
// pointer a Transport returns is only valid until its next method call
// (backends reuse one event struct to keep the ACK path allocation
// free); consumers act on it immediately.
type Backoff struct {
	Time     float64
	OldRate  float64
	NewRate  float64
	LostSeqs []int64
}

// Counters are the cumulative decision counts every backend maintains,
// for summaries, facts, and tests.
type Counters struct {
	Sent     int64 // data packets registered via OnSend
	Acked    int64 // packets confirmed delivered
	Lost     int64 // packets inferred lost (reorder gap or timeout)
	Backoffs int64 // rate decreases performed
	Timeouts int64 // Step invocations that detected timed-out packets
}

// Transport is the congestion-control surface a scenario flow consumes.
// All timestamps are the caller's clock (virtual or wall); backends keep
// no clocks of their own, so the same state machine runs in the
// simulator and over real sockets.
type Transport interface {
	// OnSend registers a packet transmission at now and returns its
	// sequence number.
	OnSend(now float64) int64
	// OnAck processes an acknowledgement for seq, returning the backoff
	// performed (loss inferred, or — delay backend — overuse), or nil.
	OnAck(now float64, seq int64) *Backoff
	// Step performs the periodic rate decision (timeout detection,
	// increase/decrease); the caller invokes it every StepInterval.
	Step(now float64) *Backoff
	// StepInterval returns how often Step should run (one SRTT).
	StepInterval() float64
	// Rate returns the current transmission rate, bytes/s.
	Rate() float64
	// IPG returns the current inter-packet gap, seconds.
	IPG() float64
	// SRTT returns the smoothed round-trip time estimate, seconds.
	SRTT() float64
	// ConservativeSlope returns the pessimistic additive-increase slope
	// estimate (bytes/s²) quality adaptation plans with; see the paper
	// §2.2 on slope misestimation.
	ConservativeSlope() float64
	// PacketSize returns the fixed payload size, bytes.
	PacketSize() int
	// Kind identifies the backend, for metric namespaces and reports.
	Kind() Kind
	// Counters returns the cumulative decision counts.
	Counters() Counters
	// Instrument attaches ins (shared between flows of one class; must
	// be non-nil) and publishes the backend's packet counters on reg
	// under prefix as snapshot-time Func metrics. Call before the run.
	Instrument(reg *metrics.Registry, prefix string, ins *Instruments)
}

// Instruments are the metric handles a transport records through,
// registered once per flow class. The record sites are branch-guarded:
// an uninstrumented backend pays one predictable branch. The names
// registered under a prefix are byte-stable with the pre-interface
// rap.Instruments ("<prefix>.backoffs", ".timeouts", ".srtt",
// ".ackgap"), so RAP-backend reports did not change when the seam was
// extracted. Backends may register extra, backend-specific metrics in
// Instrument (the delay backend adds "<prefix>.overuse").
type Instruments struct {
	// Backoffs counts rate decreases (loss clusters or overuse events
	// reacted to).
	Backoffs *metrics.Counter
	// Timeouts counts Step invocations that detected timed-out packets.
	Timeouts *metrics.Counter
	// SRTT observes the smoothed RTT estimate after every sample.
	SRTT *metrics.Histogram
	// AckGap observes the spacing between successive ACK arrivals.
	AckGap *metrics.Histogram
}

// NewInstruments registers transport instruments on reg under prefix
// (e.g. "qa.delay" yields "qa.delay.backoffs", ...). Registration is
// idempotent, so flows sharing a prefix share aggregated instruments.
func NewInstruments(reg *metrics.Registry, prefix string) *Instruments {
	return &Instruments{
		Backoffs: reg.Counter(prefix + ".backoffs"),
		Timeouts: reg.Counter(prefix + ".timeouts"),
		SRTT:     reg.Histogram(prefix+".srtt", metrics.HistogramOpts{}),
		AckGap:   reg.Histogram(prefix+".ackgap", metrics.HistogramOpts{}),
	}
}
