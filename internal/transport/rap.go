package transport

import (
	"qav/internal/metrics"
	"qav/internal/rap"
)

// RAP adapts the reference rap.Sender to the Transport interface. It is
// a zero-logic shim: every method delegates to the sender unchanged, so
// a flow driven through the adapter is transmit-decision-identical to
// one driving the sender directly (the differential test in this
// package holds both to bitwise-equal rates, gaps, and backoffs).
type RAP struct {
	snd *rap.Sender

	// scratch is the reused Backoff conversion buffer: backoffs are
	// rare, but the ACK path must stay allocation-free even through a
	// loss episode. Valid until the next OnAck/Step, per the interface
	// contract.
	scratch Backoff
}

// NewRAP returns the RAP backend (zero cfg fields take rap's defaults).
func NewRAP(cfg rap.Config) *RAP {
	return &RAP{snd: rap.NewSender(cfg)}
}

// Sender exposes the wrapped rap.Sender for rap-specific inspection
// (fine-grain factor, instantaneous slope) in tests and diagnostics.
func (t *RAP) Sender() *rap.Sender { return t.snd }

func (t *RAP) convert(b *rap.Backoff) *Backoff {
	if b == nil {
		return nil
	}
	t.scratch = Backoff{Time: b.Time, OldRate: b.OldRate, NewRate: b.NewRate, LostSeqs: b.LostSeqs}
	return &t.scratch
}

// OnSend registers a packet transmission and returns its sequence number.
func (t *RAP) OnSend(now float64) int64 { return t.snd.OnSend(now) }

// OnAck processes an acknowledgement, returning any loss backoff.
func (t *RAP) OnAck(now float64, seq int64) *Backoff {
	return t.convert(t.snd.OnAck(now, seq))
}

// Step runs RAP's periodic rate decision (timeout check, additive
// increase).
func (t *RAP) Step(now float64) *Backoff { return t.convert(t.snd.Step(now)) }

// StepInterval returns one SRTT.
func (t *RAP) StepInterval() float64 { return t.snd.StepInterval() }

// Rate returns the current transmission rate, bytes/s.
func (t *RAP) Rate() float64 { return t.snd.Rate() }

// IPG returns the current inter-packet gap, seconds.
func (t *RAP) IPG() float64 { return t.snd.IPG() }

// SRTT returns the smoothed RTT estimate, seconds.
func (t *RAP) SRTT() float64 { return t.snd.SRTT() }

// ConservativeSlope returns RAP's peak-RTT-envelope slope estimate.
func (t *RAP) ConservativeSlope() float64 { return t.snd.ConservativeSlope() }

// PacketSize returns the configured payload size, bytes.
func (t *RAP) PacketSize() int { return t.snd.PacketSize() }

// Kind returns KindRAP.
func (t *RAP) Kind() Kind { return KindRAP }

// Counters returns the sender's cumulative decision counts.
func (t *RAP) Counters() Counters {
	return Counters{
		Sent:     t.snd.Sent,
		Acked:    t.snd.Acked,
		Lost:     t.snd.Lost,
		Backoffs: t.snd.Backoffs,
		Timeouts: t.snd.TimeoutEv,
	}
}

// Instrument wires the shared instruments and per-prefix Func counters
// through to the sender, preserving the exact metric names the direct
// rap path registered ("<prefix>.sent", ".acked", ".lost", ".rate").
func (t *RAP) Instrument(reg *metrics.Registry, prefix string, ins *Instruments) {
	t.snd.Instrument(reg, prefix, &rap.Instruments{
		Backoffs: ins.Backoffs,
		Timeouts: ins.Timeouts,
		SRTT:     ins.SRTT,
		AckGap:   ins.AckGap,
	})
}
