package transport

import (
	"math"

	"qav/internal/metrics"
)

// BaseConfig parameterizes the bookkeeping shared by rate-based
// backends (transport/delay, transport/greedy). The defaults mirror
// rap.Config's so backends are comparable out of the box.
type BaseConfig struct {
	// PacketSize is the fixed payload size in bytes (default 512).
	PacketSize int
	// InitialRate is the starting transmission rate, bytes/s (default
	// two packets per InitialRTT).
	InitialRate float64
	// MinRate bounds rate decreases, bytes/s (default one packet / 2 s).
	MinRate float64
	// MaxRate optionally caps the rate (0 = uncapped), bytes/s.
	MaxRate float64
	// InitialRTT seeds the SRTT estimator, seconds (default 100 ms).
	InitialRTT float64
	// ReorderGap is how many later ACKs must pass a hole before the
	// packet is declared lost (default 3).
	ReorderGap int64
}

// SetDefaults fills zero fields in place.
func (c *BaseConfig) SetDefaults() {
	if c.PacketSize <= 0 {
		c.PacketSize = 512
	}
	if c.InitialRTT <= 0 {
		c.InitialRTT = 0.1
	}
	if c.InitialRate <= 0 {
		c.InitialRate = 2 * float64(c.PacketSize) / c.InitialRTT
	}
	if c.MinRate <= 0 {
		c.MinRate = float64(c.PacketSize) / 2.0
	}
	if c.ReorderGap <= 0 {
		c.ReorderGap = 3
	}
}

// Base implements the transport bookkeeping every rate-based backend
// needs — sequence numbers, the outstanding map, SRTT/RTO estimation
// with a peak-RTT envelope, ACK- and timeout-based loss inference, and
// clustered rate decreases — so a backend only writes its rate policy.
// It deliberately reimplements rap.Sender's structure rather than
// reusing it: the rap package is the frozen reference whose byte-exact
// behaviour the figure goldens pin, while Base is the shared substrate
// new backends may evolve.
//
// Not goroutine-safe; one flow owns one Base.
type Base struct {
	cfg BaseConfig
	ctr Counters

	rate    float64
	nextSeq int64

	srtt    float64
	rttvar  float64
	timeout float64
	gotRTT  bool
	peakRTT float64

	outstanding map[int64]float64
	highestAck  int64

	backoffFence float64

	// scratch and lost are reused across events so the steady-state ACK
	// path allocates nothing, loss episodes included.
	scratch Backoff
	lost    []int64

	ins       *Instruments
	lastAckAt float64
}

// NewBase returns an initialized Base (cfg defaults filled in place).
func NewBase(cfg BaseConfig) Base {
	cfg.SetDefaults()
	return Base{
		cfg:         cfg,
		rate:        cfg.InitialRate,
		srtt:        cfg.InitialRTT,
		rttvar:      cfg.InitialRTT / 2,
		timeout:     3 * cfg.InitialRTT,
		outstanding: make(map[int64]float64),
		highestAck:  -1,
		lastAckAt:   -1,
	}
}

// Rate returns the current transmission rate, bytes/s.
func (b *Base) Rate() float64 { return b.rate }

// SetRate sets the rate, clamped to [MinRate, MaxRate].
func (b *Base) SetRate(r float64) {
	if r < b.cfg.MinRate {
		r = b.cfg.MinRate
	}
	if b.cfg.MaxRate > 0 && r > b.cfg.MaxRate {
		r = b.cfg.MaxRate
	}
	b.rate = r
}

// IPG returns the current inter-packet gap, seconds.
func (b *Base) IPG() float64 { return float64(b.cfg.PacketSize) / b.rate }

// SRTT returns the smoothed RTT estimate, seconds.
func (b *Base) SRTT() float64 { return b.srtt }

// PeakRTT returns the slowly decaying SRTT envelope (conservative-slope
// denominators use it; zero before the first sample).
func (b *Base) PeakRTT() float64 {
	if b.peakRTT > 0 {
		return b.peakRTT
	}
	return b.srtt
}

// StepInterval returns one SRTT, the periodic decision cadence.
func (b *Base) StepInterval() float64 { return b.srtt }

// PacketSize returns the configured payload size, bytes.
func (b *Base) PacketSize() int { return b.cfg.PacketSize }

// Config returns the effective (defaulted) configuration.
func (b *Base) Config() BaseConfig { return b.cfg }

// Counters returns the cumulative decision counts.
func (b *Base) Counters() Counters { return b.ctr }

// Outstanding returns the number of unacknowledged packets.
func (b *Base) Outstanding() int { return len(b.outstanding) }

// OnSend registers a packet transmission at now and returns its
// sequence number.
func (b *Base) OnSend(now float64) int64 {
	seq := b.nextSeq
	b.nextSeq++
	b.outstanding[seq] = now
	b.ctr.Sent++
	return seq
}

// AckRTT records the acknowledgement bookkeeping for seq at now —
// outstanding removal, RTT/RTO update, instrument observations — and
// returns the RTT sample (ok=false for a duplicate or unknown seq).
// Callers follow it with ReorderLosses to pick up any newly inferable
// losses.
func (b *Base) AckRTT(now float64, seq int64) (rtt float64, ok bool) {
	if b.ins != nil {
		if b.lastAckAt >= 0 {
			b.ins.AckGap.Observe(now - b.lastAckAt)
		}
		b.lastAckAt = now
	}
	sendTime, had := b.outstanding[seq]
	if had {
		delete(b.outstanding, seq)
		b.ctr.Acked++
		rtt = now - sendTime
		b.updateRTT(rtt)
	}
	if seq > b.highestAck {
		b.highestAck = seq
	}
	return rtt, had
}

// ReorderLosses returns the outstanding packets whose sequence trails
// the highest ACK by more than the reorder gap, removing them from the
// outstanding set. The returned slice is reused across calls.
func (b *Base) ReorderLosses() []int64 {
	b.lost = b.lost[:0]
	for o := range b.outstanding {
		if o <= b.highestAck-b.cfg.ReorderGap {
			b.lost = append(b.lost, o)
			delete(b.outstanding, o)
			b.ctr.Lost++
		}
	}
	return b.lost
}

// TimeoutLosses returns the outstanding packets older than the RTO,
// removing them and counting a timeout event when any are found. The
// returned slice is reused across calls.
func (b *Base) TimeoutLosses(now float64) []int64 {
	b.lost = b.lost[:0]
	for o, st := range b.outstanding {
		if now-st > b.timeout {
			b.lost = append(b.lost, o)
			delete(b.outstanding, o)
			b.ctr.Lost++
		}
	}
	if len(b.lost) > 0 {
		b.ctr.Timeouts++
		if b.ins != nil {
			b.ins.Timeouts.Inc()
		}
	}
	return b.lost
}

// Backoff applies one clustered rate decrease to newRate at now and
// returns the event, or nil when now is still inside the previous
// cluster's grace window (one SRTT): losses or overuse signals detected
// while the reaction is in flight belong to the cluster already reacted
// to. The returned pointer reuses the Base's scratch event.
func (b *Base) Backoff(now, newRate float64, lostSeqs []int64) *Backoff {
	if now < b.backoffFence {
		return nil
	}
	old := b.rate
	b.SetRate(newRate)
	b.ctr.Backoffs++
	if b.ins != nil {
		b.ins.Backoffs.Inc()
	}
	b.backoffFence = now + b.srtt
	b.scratch = Backoff{Time: now, OldRate: old, NewRate: b.rate, LostSeqs: lostSeqs}
	return &b.scratch
}

func (b *Base) updateRTT(sample float64) {
	if sample <= 0 {
		return
	}
	if !b.gotRTT {
		b.srtt = sample
		b.rttvar = sample / 2
		b.gotRTT = true
	} else {
		const alpha, beta = 1.0 / 8.0, 1.0 / 4.0
		b.rttvar = (1-beta)*b.rttvar + beta*math.Abs(b.srtt-sample)
		b.srtt = (1-alpha)*b.srtt + alpha*sample
	}
	b.timeout = b.srtt + 4*b.rttvar
	if b.timeout < 2*b.srtt {
		b.timeout = 2 * b.srtt
	}
	// Peak envelope: jumps up with SRTT, decays ~1% per sample.
	if b.srtt > b.peakRTT {
		b.peakRTT = b.srtt
	} else {
		b.peakRTT += 0.01 * (b.srtt - b.peakRTT)
	}
	if b.ins != nil {
		b.ins.SRTT.Observe(b.srtt)
	}
}

// Instrument attaches ins and publishes the packet counters under
// prefix, the same Func-metric shape the RAP backend registers.
func (b *Base) Instrument(reg *metrics.Registry, prefix string, ins *Instruments) {
	b.ins = ins
	reg.CounterFunc(prefix+".sent", func() int64 { return b.ctr.Sent })
	reg.CounterFunc(prefix+".acked", func() int64 { return b.ctr.Acked })
	reg.CounterFunc(prefix+".lost", func() int64 { return b.ctr.Lost })
	reg.GaugeFunc(prefix+".rate", func() float64 { return b.rate })
}
