package transport

import "testing"

func TestBaseConfigDefaults(t *testing.T) {
	var c BaseConfig
	c.SetDefaults()
	if c.PacketSize != 512 || c.InitialRTT != 0.1 || c.ReorderGap != 3 {
		t.Fatalf("defaults %+v", c)
	}
	if want := 2 * 512 / 0.1; c.InitialRate != want {
		t.Fatalf("InitialRate = %v, want %v (two packets per RTT)", c.InitialRate, want)
	}
	if want := 512 / 2.0; c.MinRate != want {
		t.Fatalf("MinRate = %v, want %v", c.MinRate, want)
	}
}

func TestBaseReorderLosses(t *testing.T) {
	b := NewBase(BaseConfig{InitialRTT: 0.04})
	for i := 0; i < 5; i++ {
		b.OnSend(float64(i) * 0.01)
	}
	b.AckRTT(0.05, 0)
	b.AckRTT(0.09, 4) // acks 0 and 4; 1..3 outstanding, gap 3 exposes seq 1
	lost := b.ReorderLosses()
	if len(lost) != 1 || lost[0] != 1 {
		t.Fatalf("lost %v, want [1]", lost)
	}
	if b.Outstanding() != 2 {
		t.Fatalf("outstanding %d, want 2 (seqs 2,3 still within gap)", b.Outstanding())
	}
	if got := b.Counters(); got.Sent != 5 || got.Acked != 2 || got.Lost != 1 {
		t.Fatalf("counters %+v", got)
	}
}

func TestBaseDuplicateAckIgnored(t *testing.T) {
	b := NewBase(BaseConfig{InitialRTT: 0.04})
	seq := b.OnSend(0)
	if _, ok := b.AckRTT(0.04, seq); !ok {
		t.Fatal("first ack rejected")
	}
	if _, ok := b.AckRTT(0.05, seq); ok {
		t.Fatal("duplicate ack accepted")
	}
	if got := b.Counters(); got.Acked != 1 {
		t.Fatalf("acked %d, want 1", got.Acked)
	}
}

// TestBaseBackoffFence: decreases within one SRTT of the previous one
// belong to the same congestion episode and must be absorbed.
func TestBaseBackoffFence(t *testing.T) {
	b := NewBase(BaseConfig{InitialRTT: 0.04, InitialRate: 10_000})
	if ev := b.Backoff(1.0, 5_000, nil); ev == nil || ev.OldRate != 10_000 || ev.NewRate != 5_000 {
		t.Fatalf("first backoff %+v", ev)
	}
	if ev := b.Backoff(1.0+b.SRTT()/2, 2_500, nil); ev != nil {
		t.Fatalf("in-fence backoff applied: %+v", ev)
	}
	if b.Rate() != 5_000 {
		t.Fatalf("rate %.0f changed inside the fence", b.Rate())
	}
	if ev := b.Backoff(1.0+2*b.SRTT(), 2_500, nil); ev == nil {
		t.Fatal("post-fence backoff suppressed")
	}
	if got := b.Counters(); got.Backoffs != 2 {
		t.Fatalf("backoffs %d, want 2", got.Backoffs)
	}
}

func TestBaseRateClamp(t *testing.T) {
	b := NewBase(BaseConfig{InitialRate: 1_000, MinRate: 500, MaxRate: 2_000})
	b.SetRate(100)
	if b.Rate() != 500 {
		t.Fatalf("rate %.0f, want clamped to MinRate", b.Rate())
	}
	b.SetRate(10_000)
	if b.Rate() != 2_000 {
		t.Fatalf("rate %.0f, want clamped to MaxRate", b.Rate())
	}
}

func TestBaseTimeoutLosses(t *testing.T) {
	b := NewBase(BaseConfig{InitialRTT: 0.04})
	b.OnSend(0)
	b.OnSend(0.5)
	lost := b.TimeoutLosses(0.2) // RTO = 3×InitialRTT = 0.12: only seq 0 is stale
	if len(lost) != 1 || lost[0] != 0 {
		t.Fatalf("lost %v, want [0]", lost)
	}
	if got := b.Counters(); got.Timeouts != 1 || got.Lost != 1 {
		t.Fatalf("counters %+v", got)
	}
	if lost := b.TimeoutLosses(0.2); len(lost) != 0 {
		t.Fatalf("second sweep found %v", lost)
	}
}
