package greedy

import (
	"testing"

	"qav/internal/transport"
)

// TestSlowStartThenAdditive walks the controller through its whole
// lifecycle: multiplicative probe, first loss ends slow start with a
// ×Beta cut, and later steps climb additively at IncreasePkts per SRTT.
func TestSlowStartThenAdditive(t *testing.T) {
	c := New(Config{Base: transport.BaseConfig{
		PacketSize: 512, InitialRTT: 0.04, InitialRate: 10_000,
	}})
	if !c.InSlowStart() {
		t.Fatal("controller should start in slow start")
	}

	// Loss-free steps multiply the rate by SSGrowth.
	now := 0.0
	ack := func() {
		seq := c.OnSend(now)
		if b := c.OnAck(now+0.04, seq); b != nil {
			t.Fatalf("clean ack produced backoff %+v", b)
		}
		now += c.IPG()
	}
	for step := 0; step < 3; step++ {
		before := c.Rate()
		ack()
		if b := c.Step(now); b != nil {
			t.Fatalf("clean step produced backoff %+v", b)
		}
		if got, want := c.Rate(), before*1.5; got != want {
			t.Fatalf("slow-start step %d: rate %.1f, want %.1f", step, got, want)
		}
	}

	// Drop one packet, then ack enough later ones to trip the reorder
	// gap: slow start ends with a ×0.7 cut.
	before := c.Rate()
	dropped := c.OnSend(now)
	var b *transport.Backoff
	for i := 0; i < 5 && b == nil; i++ {
		now += c.IPG()
		seq := c.OnSend(now)
		b = c.OnAck(now+0.04, seq)
	}
	if b == nil {
		t.Fatal("reorder gap never declared the dropped packet lost")
	}
	if len(b.LostSeqs) != 1 || b.LostSeqs[0] != dropped {
		t.Fatalf("lost %v, want [%d]", b.LostSeqs, dropped)
	}
	if got, want := b.NewRate, 0.7*before; got != want {
		t.Fatalf("post-loss rate %.1f, want %.1f", got, want)
	}
	if c.InSlowStart() {
		t.Fatal("loss did not end slow start")
	}

	// Post-slow-start steps climb additively: IncreasePkts·pkt/SRTT.
	now += c.SRTT() // clear the backoff fence
	before = c.Rate()
	if b := c.Step(now); b != nil {
		t.Fatalf("clean step produced backoff %+v", b)
	}
	want := before + 2*512/c.SRTT()
	if got := c.Rate(); got != want {
		t.Fatalf("additive step: rate %.2f, want %.2f", got, want)
	}

	if c.Kind() != transport.KindGreedy {
		t.Fatalf("Kind() = %q", c.Kind())
	}
	if got := c.Counters(); got.Lost != 1 || got.Backoffs != 1 {
		t.Fatalf("counters %+v, want one loss and one backoff", got)
	}
}

// TestTimeoutBacksOff: silence past the RTO must cut the rate via the
// timeout path even with no ACK clock to infer reorder losses from.
func TestTimeoutBacksOff(t *testing.T) {
	c := New(Config{Base: transport.BaseConfig{
		PacketSize: 512, InitialRTT: 0.04, InitialRate: 10_000,
	}})
	c.OnSend(0)
	before := c.Rate()
	b := c.Step(1.0) // far past RTO (3×InitialRTT)
	if b == nil {
		t.Fatal("timeout did not trigger a backoff")
	}
	if c.Rate() >= before {
		t.Fatalf("rate %.1f did not decrease on timeout", c.Rate())
	}
	if got := c.Counters(); got.Timeouts != 1 {
		t.Fatalf("counters %+v, want one timeout event", got)
	}
	if c.InSlowStart() {
		t.Fatal("timeout loss did not end slow start")
	}
}
