// Package greedy implements a loss-only, throughput-greedy transport —
// the "media over TCP" adversary in the A/B sweeps. It probes with a
// multiplicative slow-start until the first loss, then climbs twice as
// fast as RAP's additive increase and cuts less deeply on loss (×0.7 vs
// RAP's ×0.5). It never reacts to delay, so it fills the bottleneck
// queue and keeps it full: the interesting question the sweep answers
// is what that standing queue does to a QA flow's buffer math.
package greedy

import (
	"qav/internal/metrics"
	"qav/internal/transport"
)

// Config parameterizes the greedy controller. Zero fields take
// defaults.
type Config struct {
	// Base is the shared bookkeeping configuration (packet size, rate
	// bounds, initial RTT, reorder gap).
	Base transport.BaseConfig
	// SSGrowth is the per-step multiplicative factor during slow start
	// (default 1.5).
	SSGrowth float64
	// IncreasePkts is how many packets per SRTT the post-slow-start
	// additive increase adds per step (default 2, twice RAP's slope).
	IncreasePkts float64
	// Beta is the multiplicative decrease factor on loss (default 0.7).
	Beta float64
}

func (c *Config) setDefaults() {
	c.Base.SetDefaults()
	if c.SSGrowth <= 1 {
		c.SSGrowth = 1.5
	}
	if c.IncreasePkts <= 0 {
		c.IncreasePkts = 2
	}
	if c.Beta <= 0 || c.Beta >= 1 {
		c.Beta = 0.7
	}
}

// Controller is the greedy transport. Not goroutine-safe; one flow owns
// one Controller.
type Controller struct {
	transport.Base
	cfg       Config
	slowStart bool
}

var _ transport.Transport = (*Controller)(nil)

// New returns a greedy controller (zero cfg fields take defaults).
func New(cfg Config) *Controller {
	cfg.setDefaults()
	return &Controller{Base: transport.NewBase(cfg.Base), cfg: cfg, slowStart: true}
}

// Kind returns transport.KindGreedy.
func (c *Controller) Kind() transport.Kind { return transport.KindGreedy }

// InSlowStart reports whether the first loss has yet to end the
// multiplicative probe phase.
func (c *Controller) InSlowStart() bool { return c.slowStart }

// OnAck processes an acknowledgement; losses inferred via the reorder
// gap trigger the multiplicative decrease.
func (c *Controller) OnAck(now float64, seq int64) *transport.Backoff {
	c.AckRTT(now, seq)
	if lost := c.ReorderLosses(); len(lost) > 0 {
		return c.loss(now, lost)
	}
	return nil
}

// Step runs the periodic decision: timeout losses, then the rate probe
// (multiplicative in slow start, steep additive after).
func (c *Controller) Step(now float64) *transport.Backoff {
	if lost := c.TimeoutLosses(now); len(lost) > 0 {
		return c.loss(now, lost)
	}
	if c.slowStart {
		c.SetRate(c.Rate() * c.cfg.SSGrowth)
	} else {
		c.SetRate(c.Rate() + c.cfg.IncreasePkts*float64(c.PacketSize())/c.SRTT())
	}
	return nil
}

func (c *Controller) loss(now float64, lost []int64) *transport.Backoff {
	c.slowStart = false
	return c.Backoff(now, c.cfg.Beta*c.Rate(), lost)
}

// ConservativeSlope returns the pessimistic increase-slope estimate:
// IncreasePkts packets per peak-RTT, per peak-RTT.
func (c *Controller) ConservativeSlope() float64 {
	prtt := c.PeakRTT()
	return c.cfg.IncreasePkts * float64(c.PacketSize()) / (prtt * prtt)
}

// Instrument publishes the shared transport instruments and counters
// under prefix.
func (c *Controller) Instrument(reg *metrics.Registry, prefix string, ins *transport.Instruments) {
	c.Base.Instrument(reg, prefix, ins)
}
