package delay

// signal is the detector's per-sample verdict.
type signal int

const (
	sigNormal signal = iota
	sigOveruse
	sigUnderuse
)

// detector compares the filtered gradient against an adaptive threshold
// γ. Overuse is declared only after the gradient has stayed above γ for
// overuseTime seconds without decreasing — a single queue blip is not a
// congestion episode. The threshold itself chases |m| (fast when |m| is
// above it, slowly when below), which keeps the controller from
// starving next to loss-based flows: their sawtooth drags γ up, and the
// delay flow stops backing off for queue oscillation it cannot remove.
type detector struct {
	gamma     float64
	gammaMin  float64
	gammaMax  float64
	kUp       float64 // γ adaptation rate when |m| > γ, 1/s
	kDown     float64 // γ adaptation rate when |m| ≤ γ, 1/s
	overTime  float64 // sustained-overuse requirement, s
	overSince float64 // time first entered the over-threshold region
	inOver    bool
	prevM     float64
}

func newDetector(gamma0, gammaMin, gammaMax, kUp, kDown, overTime float64) detector {
	return detector{
		gamma:    gamma0,
		gammaMin: gammaMin,
		gammaMax: gammaMax,
		kUp:      kUp,
		kDown:    kDown,
		overTime: overTime,
	}
}

// update consumes the filtered gradient m at time now (dt seconds since
// the previous sample) and returns the congestion verdict.
func (d *detector) update(now, dt, m float64) signal {
	if dt > 0.1 {
		dt = 0.1 // a long ACK silence must not slam γ in one step
	}
	abs := m
	if abs < 0 {
		abs = -abs
	}
	k := d.kDown
	if abs > d.gamma {
		k = d.kUp
	}
	d.gamma += dt * k * (abs - d.gamma)
	if d.gamma < d.gammaMin {
		d.gamma = d.gammaMin
	}
	if d.gamma > d.gammaMax {
		d.gamma = d.gammaMax
	}

	var s signal
	switch {
	case m > d.gamma:
		if !d.inOver {
			d.inOver = true
			d.overSince = now
		}
		// Sustained and not easing off → overuse.
		if now-d.overSince >= d.overTime && m >= d.prevM {
			s = sigOveruse
		}
	case m < -d.gamma:
		d.inOver = false
		s = sigUnderuse
	default:
		d.inOver = false
	}
	d.prevM = m
	return s
}
