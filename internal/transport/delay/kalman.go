package delay

import "math"

// kalman is a scalar Kalman filter over the RTT gradient (seconds of
// delay change per second of wall time, so the estimate is scale-free
// across bottleneck speeds). The state is the gradient m; the
// measurement noise is re-estimated online from the filter residuals so
// bursty ACK jitter widens the gate instead of whipsawing the estimate
// (the same trick the GCC arrival filter uses).
type kalman struct {
	m   float64 // gradient estimate, s/s
	p   float64 // estimate variance
	r   float64 // measurement-noise variance (EWMA of residual²)
	q   float64 // process noise added per update
	chi float64 // residual-variance EWMA factor in (0,1)
	n   int64   // samples consumed
}

func newKalman(q, r0, chi float64) kalman {
	return kalman{p: 0.1, r: r0, q: q, chi: chi}
}

// update folds one gradient measurement z into the estimate and returns
// the posterior mean.
func (k *kalman) update(z float64) float64 {
	k.n++
	k.p += k.q
	resid := z - k.m
	// Residual variance EWMA, floored so the gain never pins to 1.
	k.r = k.chi*k.r + (1-k.chi)*resid*resid
	if k.r < 1e-8 {
		k.r = 1e-8
	}
	gain := k.p / (k.p + k.r)
	k.m += gain * resid
	k.p *= 1 - gain
	if math.IsNaN(k.m) || math.IsInf(k.m, 0) {
		// A degenerate measurement (zero dt upstream) must not poison
		// the filter permanently.
		k.m, k.p = 0, 0.1
	}
	return k.m
}
