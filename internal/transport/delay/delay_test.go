package delay

import (
	"math"
	"testing"

	"qav/internal/transport"
)

// prng is a small deterministic generator for jitter; tests must not
// depend on the global rand seed.
type prng uint64

func (p *prng) next() float64 { // uniform in [-1, 1)
	*p ^= *p << 13
	*p ^= *p >> 7
	*p ^= *p << 17
	return float64(int64(*p)%1_000_000) / 1_000_000
}

// TestKalmanConvergence checks the filter recovers a constant gradient
// buried in measurement jitter four times larger than the signal, and
// that the online residual-variance estimate keeps the gain from
// whipsawing: after convergence the estimate stays in a band far
// narrower than the raw noise and its mean tracks the true gradient.
func TestKalmanConvergence(t *testing.T) {
	const trueM = 0.05
	k := newKalman(1e-4, 0.01, 0.9)
	rng := prng(0x12345678DEADBEEF)
	var last float64
	for i := 0; i < 4000; i++ {
		z := trueM + 0.2*rng.next() // noise ±0.2 vs signal 0.05
		last = k.update(z)
	}
	if math.Abs(last-trueM) > 0.05 {
		t.Fatalf("estimate %.4f did not converge to %.4f", last, trueM)
	}
	// Tail: the steady-state gain keeps each estimate well inside the
	// raw noise amplitude, and the tail mean is unbiased.
	var sum float64
	for i := 0; i < 500; i++ {
		m := k.update(trueM + 0.2*rng.next())
		if math.Abs(m-trueM) > 0.12 {
			t.Fatalf("estimate %.4f left the band after convergence (sample %d)", m, i)
		}
		sum += m
	}
	if mean := sum / 500; math.Abs(mean-trueM) > 0.02 {
		t.Fatalf("tail mean %.4f, want %.4f±0.02", mean, trueM)
	}
}

func TestKalmanDegenerateMeasurementResets(t *testing.T) {
	k := newKalman(1e-4, 0.01, 0.9)
	k.update(0.01)
	if m := k.update(math.Inf(1)); m != 0 {
		t.Fatalf("infinite measurement produced %v, want reset to 0", m)
	}
	if m := k.update(0.01); math.IsNaN(m) || math.IsInf(m, 0) {
		t.Fatalf("filter did not recover after reset: %v", m)
	}
}

// TestDetectorHysteresis pins the three-way verdict logic: a single
// gradient spike is not overuse, a sustained non-decreasing excursion
// is, and a strong negative gradient reads as underuse.
func TestDetectorHysteresis(t *testing.T) {
	const dt = 0.001
	d := newDetector(0.01, 0.002, 0.3, 8, 0.2, 0.01)
	now := 0.0
	step := func(m float64) signal {
		now += dt
		return d.update(now, dt, m)
	}

	for i := 0; i < 50; i++ {
		if s := step(0.001); s != sigNormal {
			t.Fatalf("quiet gradient gave signal %v", s)
		}
	}
	// One spike: over threshold but not sustained.
	if s := step(0.1); s != sigNormal {
		t.Fatalf("single spike declared %v, want normal (hysteresis)", s)
	}
	if s := step(0.001); s != sigNormal {
		t.Fatalf("post-spike sample gave %v", s)
	}

	// Sustained excursion: must fire only after overTime (10 samples at
	// 1 ms), and then keep firing while the gradient holds.
	fired := -1
	for i := 0; i < 40; i++ {
		if s := step(0.1); s == sigOveruse {
			fired = i
			break
		}
	}
	if fired < 0 {
		t.Fatal("sustained gradient never declared overuse")
	}
	if fired < 9 {
		t.Fatalf("overuse fired after only %d ms, want >= overTime (10 ms)", fired+1)
	}

	// A decreasing gradient inside the excursion postpones the verdict
	// (the queue is already easing).
	d2 := newDetector(0.01, 0.002, 0.3, 8, 0.2, 0.01)
	n2 := 0.0
	for i := 0; i < 30; i++ {
		n2 += dt
		if s := d2.update(n2, dt, 0.2-float64(i)*0.005); s == sigOveruse {
			t.Fatalf("decreasing gradient declared overuse at sample %d", i)
		}
	}

	// Strong negative gradient: underuse.
	if s := step(-0.5); s != sigUnderuse {
		t.Fatalf("negative gradient gave %v, want underuse", s)
	}
}

func TestDetectorThresholdAdapts(t *testing.T) {
	d := newDetector(0.01, 0.002, 0.3, 8, 0.2, 0.01)
	// A loss-based neighbour's sawtooth: large oscillating gradients. γ
	// must chase up toward the oscillation amplitude so the detector
	// stops treating the ambient queue swing as overuse.
	now := 0.0
	for i := 0; i < 2000; i++ {
		now += 0.001
		m := 0.2
		if i%2 == 1 {
			m = -0.2
		}
		d.update(now, 0.001, m)
	}
	if d.gamma < 0.1 {
		t.Fatalf("threshold %.4f did not adapt up under sustained oscillation", d.gamma)
	}
	// Quiet period: γ must relax back down (kDown), restoring
	// sensitivity.
	for i := 0; i < 20000; i++ {
		now += 0.001
		d.update(now, 0.001, 0.0005)
	}
	if d.gamma > 0.02 {
		t.Fatalf("threshold %.4f did not relax after the oscillation stopped", d.gamma)
	}
}

// TestOveruseBacksOffBeforeLoss is the controller's defining property:
// under steadily growing RTT (a filling queue) with every packet
// delivered, it must issue a multiplicative decrease with an empty loss
// list — i.e. react to the queue before anything is dropped.
func TestOveruseBacksOffBeforeLoss(t *testing.T) {
	c := New(Config{Base: transport.BaseConfig{
		PacketSize: 512, InitialRTT: 0.04, InitialRate: 50_000,
	}})
	now, rtt := 0.0, 0.04
	var backoff *transport.Backoff
	rate0 := c.Rate()
	for i := 0; i < 2000 && backoff == nil; i++ {
		seq := c.OnSend(now)
		ipg := c.IPG()
		// The queue grows by half a send-gap of delay per packet: a
		// clean +0.33 s/s RTT gradient, far above GammaMax.
		b := c.OnAck(now+rtt, seq)
		if b != nil {
			backoff = b
		}
		now += ipg
		rtt += 0.5 * ipg
	}
	if backoff == nil {
		t.Fatal("growing RTT never triggered an overuse backoff")
	}
	if len(backoff.LostSeqs) != 0 {
		t.Fatalf("overuse backoff carried losses %v, want none", backoff.LostSeqs)
	}
	if got := c.Counters(); got.Lost != 0 || got.Backoffs == 0 {
		t.Fatalf("counters %+v: want zero losses and a recorded backoff", got)
	}
	if c.Overuses() == 0 {
		t.Fatal("Overuses() not incremented")
	}
	if c.Rate() >= rate0 {
		t.Fatalf("rate %.0f did not decrease from %.0f", c.Rate(), rate0)
	}
	if c.Gradient() <= 0 {
		t.Fatalf("gradient %.4f should be positive while the queue grows", c.Gradient())
	}
}

// TestUnderuseHoldsRate: after the detector reports underuse (queue
// draining), Step must hold the rate instead of climbing into the
// still-recovering queue.
func TestUnderuseHoldsRate(t *testing.T) {
	c := New(Config{Base: transport.BaseConfig{
		PacketSize: 512, InitialRTT: 0.04, InitialRate: 50_000,
	}})
	now, rtt := 0.0, 0.5
	// Shrinking RTT: strong negative gradient until the detector flags
	// underuse.
	for i := 0; i < 2000 && !c.underuse; i++ {
		seq := c.OnSend(now)
		ipg := c.IPG()
		c.OnAck(now+rtt, seq)
		now += ipg
		rtt -= 0.5 * ipg
	}
	if !c.underuse {
		t.Fatal("draining queue never flagged underuse")
	}
	if c.Gradient() >= 0 {
		t.Fatalf("gradient %.4f should be negative while the queue drains", c.Gradient())
	}
	before := c.Rate()
	if b := c.Step(now); b != nil {
		t.Fatalf("unexpected backoff from Step: %+v", b)
	}
	if c.Rate() != before {
		t.Fatalf("rate moved %.2f -> %.2f during underuse, want hold", before, c.Rate())
	}

	// A flat RTT decays the gradient back inside the threshold and
	// restores the additive climb.
	for i := 0; i < 5000 && c.underuse; i++ {
		seq := c.OnSend(now)
		c.OnAck(now+rtt, seq)
		now += c.IPG()
	}
	if c.underuse {
		t.Fatal("gradient never normalized on a flat RTT")
	}
	before = c.Rate()
	c.Step(now)
	if c.Rate() <= before {
		t.Fatalf("rate %.2f did not climb after gradient normalized", c.Rate())
	}
}
