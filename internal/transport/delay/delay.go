// Package delay implements a delay-based (GCC-style) congestion
// controller behind the transport.Transport interface. Instead of
// probing until packets drop, it Kalman-filters the gradient of the
// round-trip time — queue growth shows up as a positive gradient long
// before the queue overflows — and backs off multiplicatively when an
// adaptive-threshold detector declares sustained overuse. The result is
// a controller that keeps the bottleneck queue short and (in the A/B
// sweeps) trades a little throughput for far fewer losses than RAP.
//
// The lineage is the WebRTC Google Congestion Control arrival-time
// filter (Kalman gradient estimate, adaptive γ, 0.85× decrease toward
// the measured delivered rate); see PAPERS.md. The controller here
// works on RTT rather than one-way-delay gradients — the simulator's
// ACK path is symmetric, so the RTT gradient carries the same queue
// signal without needing receiver timestamps.
package delay

import (
	"qav/internal/metrics"
	"qav/internal/transport"
)

// Config parameterizes the delay controller. Zero fields take defaults
// tuned on the repo's dumbbell scenarios.
type Config struct {
	// Base is the shared bookkeeping configuration (packet size, rate
	// bounds, initial RTT, reorder gap).
	Base transport.BaseConfig
	// ProcessNoise is the Kalman process-noise variance added per
	// sample (default 1e-4); larger tracks gradient changes faster.
	ProcessNoise float64
	// NoiseInit seeds the measurement-noise variance (default 0.01).
	NoiseInit float64
	// NoiseChi is the EWMA factor for the online residual-variance
	// estimate, in (0,1) (default 0.9).
	NoiseChi float64
	// Gamma0 is the initial overuse threshold in s/s (default 0.01).
	Gamma0 float64
	// GammaMin/GammaMax clamp the adaptive threshold
	// (defaults 0.002 / 0.3).
	GammaMin float64
	GammaMax float64
	// KUp is the threshold adaptation rate when |m| exceeds γ, 1/s
	// (default 8; fast chase prevents starvation next to loss-based
	// flows).
	KUp float64
	// KDown is the adaptation rate when |m| is below γ, 1/s
	// (default 0.2).
	KDown float64
	// OveruseTime is how long the gradient must stay over threshold
	// before overuse is declared, seconds (default 0.01).
	OveruseTime float64
	// Beta is the multiplicative decrease applied on overuse, toward
	// the measured delivered rate (default 0.85).
	Beta float64
}

func (c *Config) setDefaults() {
	c.Base.SetDefaults()
	if c.ProcessNoise <= 0 {
		c.ProcessNoise = 1e-4
	}
	if c.NoiseInit <= 0 {
		c.NoiseInit = 0.01
	}
	if c.NoiseChi <= 0 || c.NoiseChi >= 1 {
		c.NoiseChi = 0.9
	}
	if c.Gamma0 <= 0 {
		c.Gamma0 = 0.01
	}
	if c.GammaMin <= 0 {
		c.GammaMin = 0.002
	}
	if c.GammaMax <= 0 {
		c.GammaMax = 0.3
	}
	if c.KUp <= 0 {
		c.KUp = 8
	}
	if c.KDown <= 0 {
		c.KDown = 0.2
	}
	if c.OveruseTime <= 0 {
		c.OveruseTime = 0.01
	}
	if c.Beta <= 0 || c.Beta >= 1 {
		c.Beta = 0.85
	}
}

// Controller is the delay-based transport. Not goroutine-safe; one flow
// owns one Controller.
type Controller struct {
	transport.Base
	cfg Config

	filter   kalman
	detect   detector
	lastRTT  float64
	lastAckT float64
	haveRTT  bool

	// delivered is an EWMA of the ACK-clocked delivery rate, bytes/s —
	// the floor the multiplicative decrease aims Beta× below.
	delivered float64

	underuse bool
	overuses int64

	overuseCtr *metrics.Counter
}

var _ transport.Transport = (*Controller)(nil)

// New returns a delay controller (zero cfg fields take defaults).
func New(cfg Config) *Controller {
	cfg.setDefaults()
	return &Controller{
		Base:      transport.NewBase(cfg.Base),
		cfg:       cfg,
		filter:    newKalman(cfg.ProcessNoise, cfg.NoiseInit, cfg.NoiseChi),
		detect:    newDetector(cfg.Gamma0, cfg.GammaMin, cfg.GammaMax, cfg.KUp, cfg.KDown, cfg.OveruseTime),
		lastAckT:  -1,
		delivered: cfg.Base.InitialRate,
	}
}

// Kind returns transport.KindDelay.
func (c *Controller) Kind() transport.Kind { return transport.KindDelay }

// Gradient returns the current filtered RTT-gradient estimate, s/s
// (diagnostics and tests).
func (c *Controller) Gradient() float64 { return c.filter.m }

// Threshold returns the detector's current adaptive threshold γ, s/s.
func (c *Controller) Threshold() float64 { return c.detect.gamma }

// Overuses returns how many overuse backoffs the controller performed.
func (c *Controller) Overuses() int64 { return c.overuses }

// OnAck processes an acknowledgement: the RTT sample feeds the gradient
// filter and overuse detector, and a sustained-overuse verdict (or a
// reorder-inferred loss) triggers the multiplicative decrease. The
// returned Backoff has empty LostSeqs for pure overuse events — the
// controller's whole point is backing off before anything is lost.
func (c *Controller) OnAck(now float64, seq int64) *transport.Backoff {
	rtt, ok := c.AckRTT(now, seq)
	var sig signal
	if ok {
		if c.haveRTT && now > c.lastAckT {
			dt := now - c.lastAckT
			m := c.filter.update((rtt - c.lastRTT) / dt)
			sig = c.detect.update(now, dt, m)
			// ACK-clocked delivery rate: one packet per ACK gap.
			inst := float64(c.PacketSize()) / dt
			c.delivered = 0.9*c.delivered + 0.1*inst
		}
		c.lastRTT = rtt
		c.lastAckT = now
		c.haveRTT = true
	}
	if lost := c.ReorderLosses(); len(lost) > 0 {
		c.underuse = false
		return c.Backoff(now, c.Rate()/2, lost)
	}
	switch sig {
	case sigOveruse:
		c.underuse = false
		target := c.delivered
		if r := c.Rate(); r < target {
			target = r
		}
		if b := c.Backoff(now, c.cfg.Beta*target, nil); b != nil {
			c.overuses++
			if c.overuseCtr != nil {
				c.overuseCtr.Inc()
			}
			return b
		}
	case sigUnderuse:
		c.underuse = true
	default:
		c.underuse = false
	}
	return nil
}

// Step runs the periodic decision: timeout losses back off by half;
// otherwise the rate climbs additively (one packet per SRTT) unless the
// detector last saw underuse, in which case it holds while the queue
// drains.
func (c *Controller) Step(now float64) *transport.Backoff {
	if lost := c.TimeoutLosses(now); len(lost) > 0 {
		c.underuse = false
		return c.Backoff(now, c.Rate()/2, lost)
	}
	if !c.underuse {
		c.SetRate(c.Rate() + float64(c.PacketSize())/c.SRTT())
	}
	return nil
}

// ConservativeSlope returns the pessimistic increase-slope estimate:
// one packet per peak-RTT, per peak-RTT (same form as RAP's — the
// additive-increase term is identical).
func (c *Controller) ConservativeSlope() float64 {
	prtt := c.PeakRTT()
	return float64(c.PacketSize()) / (prtt * prtt)
}

// Instrument publishes the shared transport instruments plus the
// backend-specific "<prefix>.overuse" counter.
func (c *Controller) Instrument(reg *metrics.Registry, prefix string, ins *transport.Instruments) {
	c.Base.Instrument(reg, prefix, ins)
	c.overuseCtr = reg.Counter(prefix + ".overuse")
}
