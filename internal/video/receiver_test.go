package video

import (
	"math"
	"testing"
)

func newRx(t *testing.T) *Receiver {
	t.Helper()
	r, err := NewReceiver(Config{C: 1000, MaxLayers: 4, StartupBytes: 500, SlotBytes: 100})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestReceiverStartupGate(t *testing.T) {
	r := newRx(t)
	r.Deliver(0, 0, 0, 400) // below startup threshold
	r.Advance(1)
	if r.Playing() {
		t.Fatal("played before startup buffering")
	}
	r.Deliver(1, 0, 400, 200) // crosses 500 contiguous
	r.Advance(1.1)
	if !r.Playing() {
		t.Fatal("did not start after startup buffering")
	}
}

func TestReceiverConsumesAndStallsAtFrontier(t *testing.T) {
	r := newRx(t)
	r.Deliver(0, 0, 0, 1000) // one second of base layer
	r.Advance(2.0)           // try to play two seconds
	st := r.Stats()
	if math.Abs(st.PlayedSec-1.0) > 0.11 {
		t.Fatalf("played %.2fs, want ~1.0", st.PlayedSec)
	}
	if st.Stalls != 1 {
		t.Fatalf("stalls = %d, want 1 at the data frontier", st.Stalls)
	}
	// Deliver more: playback resumes.
	r.Deliver(2.0, 0, 1000, 2000)
	r.Advance(3.0)
	if r.Stats().Stalls != 1 || !r.Playing() {
		t.Fatalf("did not resume: %+v", r.Stats())
	}
}

func TestReceiverDecodingConstraint(t *testing.T) {
	r := newRx(t)
	// Base layer complete for 2 s; layer 1 only for the first second;
	// layer 2 present for the second second — but undecodable there
	// because layer 1 is missing.
	r.Deliver(0, 0, 0, 2000)
	r.Deliver(0, 1, 0, 1000)
	r.Deliver(0, 2, 1000, 1000)
	r.Advance(2.0)
	st := r.Stats()
	if math.Abs(st.LayerPlayedSec[0]-2.0) > 0.11 {
		t.Fatalf("base played %.2f, want ~2", st.LayerPlayedSec[0])
	}
	if math.Abs(st.LayerPlayedSec[1]-1.0) > 0.11 {
		t.Fatalf("layer1 played %.2f, want ~1", st.LayerPlayedSec[1])
	}
	if st.LayerPlayedSec[2] != 0 {
		t.Fatalf("layer2 played %.2f despite missing layer1", st.LayerPlayedSec[2])
	}
	if st.LayerGapSec[2] < 0.9 {
		t.Fatalf("layer2 gap %.2f, want ~2 (undecodable while present)", st.LayerGapSec[2])
	}
	// Quality integral: 2s of L0 + 1s of L1 ~= 3 layer-seconds.
	if math.Abs(st.DecodableLayerSec-3.0) > 0.25 {
		t.Fatalf("decodable layer-seconds %.2f, want ~3", st.DecodableLayerSec)
	}
}

func TestReceiverGlitchSkipsLossHole(t *testing.T) {
	r := newRx(t)
	// Base layer with a 100-byte loss hole at offset 1000.
	r.Deliver(0, 0, 0, 1000)
	r.Deliver(0, 0, 1100, 1900)
	r.Advance(3.0)
	st := r.Stats()
	// Playback continues across the hole (error concealment), with no
	// stall; total played ~3s, base decodable ~2.9s.
	if st.Stalls != 0 {
		t.Fatalf("stalled %d times on a bounded loss hole", st.Stalls)
	}
	if math.Abs(st.PlayedSec-3.0) > 0.11 {
		t.Fatalf("played %.2f, want ~3 (glitch skipped)", st.PlayedSec)
	}
	if st.LayerGapSec[0] < 0.05 || st.LayerGapSec[0] > 0.2 {
		t.Fatalf("base gap %.2f, want ~0.1 (one lost slot)", st.LayerGapSec[0])
	}
}

func TestReceiverBufferedBytes(t *testing.T) {
	r := newRx(t)
	r.Deliver(0, 0, 0, 1000)
	r.Deliver(0, 0, 1200, 300) // hole at [1000,1200)
	if got := r.BufferedBytes(0); got != 1000 {
		t.Fatalf("BufferedBytes = %d, want 1000 (up to the hole)", got)
	}
	if got := r.BufferedBytes(1); got != 0 {
		t.Fatalf("layer1 BufferedBytes = %d, want 0", got)
	}
	if got := r.BufferedBytes(9); got != 0 {
		t.Fatal("out-of-range layer must report 0")
	}
}

func TestReceiverIgnoresForeignLayers(t *testing.T) {
	r := newRx(t)
	r.Deliver(0, 99, 0, 1000)
	r.Deliver(0, -1, 0, 1000)
	r.Advance(1)
	if r.Playing() {
		t.Fatal("foreign layers should not start playback")
	}
}

func TestReceiverConfigValidation(t *testing.T) {
	if _, err := NewReceiver(Config{C: 0}); err == nil {
		t.Fatal("zero C accepted")
	}
	r, err := NewReceiver(Config{C: 50}) // defaults kick in
	if err != nil {
		t.Fatal(err)
	}
	if r.cfg.SlotBytes < 1 || r.cfg.MaxLayers != 8 {
		t.Fatalf("defaults wrong: %+v", r.cfg)
	}
}

func TestReceiverTimeMonotone(t *testing.T) {
	r := newRx(t)
	r.Deliver(0, 0, 0, 5000)
	r.Advance(1)
	r.Advance(0.5) // going backwards is a no-op
	st := r.Stats()
	if st.PlayedSec > 1.01 {
		t.Fatalf("backwards Advance played extra time: %v", st.PlayedSec)
	}
}
