package video

import "fmt"

// Config parameterizes a playout receiver.
type Config struct {
	// C is the per-layer consumption rate, bytes/s (linear spacing, as
	// in the paper's analysis).
	C float64
	// MaxLayers bounds the layer count.
	MaxLayers int
	// StartupBytes of base-layer data must be contiguous from offset 0
	// before playback starts.
	StartupBytes int64
	// SlotBytes quantizes decodability accounting (a "frame" worth of
	// bytes). Default: C/10 (100 ms of data).
	SlotBytes int64
}

// Stats summarizes delivered playback quality.
type Stats struct {
	// PlayedSec is wall time spent with playback running.
	PlayedSec float64
	// StallSec is wall time spent stalled on base-layer data.
	StallSec float64
	// Stalls counts stall events.
	Stalls int
	// DecodableLayerSec integrates the decodable layer count over
	// played time (the viewer-facing quality integral).
	DecodableLayerSec float64
	// LayerPlayedSec is the per-layer decodable playback time.
	LayerPlayedSec []float64
	// LayerGapSec is per-layer time the layer had undecodable slots
	// while playback ran (its own or a lower layer's data missing).
	LayerGapSec []float64
}

// Receiver reconstructs per-layer byte timelines from deliveries and
// advances a playout clock against them, enforcing the hierarchical
// decoding constraint. It is the measurement model only — it makes no
// adaptation decisions (those are the sender's, per the paper).
type Receiver struct {
	cfg     Config
	layers  []IntervalSet
	playing bool
	stalled bool
	playPos int64   // byte offset of the playout point within each layer
	lastT   float64 // last Advance time
	carryT  float64 // sub-slot playback time carried between Advances
	stats   Stats
}

// NewReceiver returns a playout receiver.
func NewReceiver(cfg Config) (*Receiver, error) {
	if cfg.C <= 0 {
		return nil, fmt.Errorf("video: C must be positive, got %v", cfg.C)
	}
	if cfg.MaxLayers <= 0 {
		cfg.MaxLayers = 8
	}
	if cfg.StartupBytes <= 0 {
		cfg.StartupBytes = int64(cfg.C) // one second
	}
	if cfg.SlotBytes <= 0 {
		cfg.SlotBytes = int64(cfg.C / 10)
		if cfg.SlotBytes < 1 {
			cfg.SlotBytes = 1
		}
	}
	return &Receiver{
		cfg:    cfg,
		layers: make([]IntervalSet, cfg.MaxLayers),
		stats: Stats{
			LayerPlayedSec: make([]float64, cfg.MaxLayers),
			LayerGapSec:    make([]float64, cfg.MaxLayers),
		},
	}, nil
}

// Deliver records n bytes of layer data at byte offset off, received at
// time now. Out-of-range layers are dropped silently (future codec
// levels this receiver cannot decode).
func (r *Receiver) Deliver(now float64, layer int, off, n int64) {
	if layer < 0 || layer >= len(r.layers) || n <= 0 {
		return
	}
	r.Advance(now)
	r.layers[layer].Add(off, off+n)
}

// Playing reports whether playback has started and is not stalled.
func (r *Receiver) Playing() bool { return r.playing && !r.stalled }

// PlayPos returns the playout byte offset.
func (r *Receiver) PlayPos() int64 { return r.playPos }

// BufferedBytes returns contiguously buffered-ahead bytes for layer i
// (from the playout point to the first hole).
func (r *Receiver) BufferedBytes(layer int) int64 {
	if layer < 0 || layer >= len(r.layers) {
		return 0
	}
	gapStart, _, ok := r.layers[layer].FirstGap(r.playPos, r.layers[layer].Max())
	if !ok {
		return r.layers[layer].Max() - r.playPos
	}
	if gapStart <= r.playPos {
		return 0
	}
	return gapStart - r.playPos
}

// Stats returns a snapshot of the quality statistics (Advance first for
// up-to-date numbers).
func (r *Receiver) Stats() Stats {
	out := r.stats
	out.LayerPlayedSec = append([]float64(nil), r.stats.LayerPlayedSec...)
	out.LayerGapSec = append([]float64(nil), r.stats.LayerGapSec...)
	return out
}

// Advance moves the playout clock to now, consuming slot by slot.
func (r *Receiver) Advance(now float64) {
	if now <= r.lastT {
		return
	}
	dt := now - r.lastT
	r.lastT = now

	if !r.playing {
		if r.layers[0].Contains(0, r.cfg.StartupBytes) {
			r.playing = true
		} else {
			return
		}
	}
	if r.stalled {
		r.stats.StallSec += dt
		// Resume once half the startup buffering has arrived beyond the
		// playout point (lost bytes never arrive; holes are skipped as
		// glitches below, so the frontier is what matters).
		if r.layers[0].Max() >= r.playPos+r.cfg.StartupBytes/2 {
			r.stalled = false
		}
		return
	}

	// Consume whole slots; the fractional remainder waits for the next
	// Advance (slot duration is SlotBytes/C seconds).
	slotSec := float64(r.cfg.SlotBytes) / r.cfg.C
	pending := dt + r.carry()
	for pending >= slotSec {
		pending -= slotSec
		baseOK := r.layers[0].Contains(r.playPos, r.playPos+r.cfg.SlotBytes)
		if !baseOK && r.layers[0].Max() < r.playPos+r.cfg.SlotBytes {
			// The playout point has reached the data frontier: a true
			// buffer underflow. Stall and wait for more data.
			r.stalled = true
			r.stats.Stalls++
			r.stats.StallSec += pending
			r.setCarry(0)
			return
		}
		// Either the slot is decodable or it has a permanent loss hole:
		// a real decoder conceals the error and playback continues.
		r.stats.PlayedSec += slotSec
		decodable := 0
		if baseOK {
			decodable = 0
			for l := 0; l < len(r.layers); l++ {
				if r.layers[l].Contains(r.playPos, r.playPos+r.cfg.SlotBytes) && decodable == l {
					decodable = l + 1
					r.stats.LayerPlayedSec[l] += slotSec
				} else if r.layers[l].TotalCovered() > 0 {
					// The layer exists but this slot is not decodable
					// (its own or a lower layer's hole).
					r.stats.LayerGapSec[l] += slotSec
				}
			}
		} else {
			for l := 0; l < len(r.layers); l++ {
				if r.layers[l].TotalCovered() > 0 {
					r.stats.LayerGapSec[l] += slotSec
				}
			}
		}
		r.stats.DecodableLayerSec += slotSec * float64(decodable)
		r.playPos += r.cfg.SlotBytes
	}
	r.setCarry(pending)
}

// carry holds sub-slot playback time between Advance calls.
func (r *Receiver) carry() float64     { return r.carryT }
func (r *Receiver) setCarry(v float64) { r.carryT = v }

// FrontierOf returns the highest received byte offset of layer i's
// stream (0 when nothing arrived).
func (r *Receiver) FrontierOf(layer int) int64 {
	if layer < 0 || layer >= len(r.layers) {
		return 0
	}
	return r.layers[layer].Max()
}

// FirstHole returns the first missing byte range of layer i's stream at
// or after the playout point and strictly before maxExclusive — the
// next candidate for selective retransmission.
func (r *Receiver) FirstHole(layer int, maxExclusive int64) (start, end int64, ok bool) {
	if layer < 0 || layer >= len(r.layers) {
		return 0, 0, false
	}
	return r.layers[layer].FirstGap(r.playPos, maxExclusive)
}
