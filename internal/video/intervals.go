// Package video models the receiver side of a layered stream: per-layer
// byte timelines with holes (losses), the playout clock, and the
// hierarchical decoding constraint — an enhancement layer is only
// decodable at an instant if every lower layer has its data for that
// instant (§1.3 of the paper). It turns raw per-layer deliveries into
// the quality metrics a viewer experiences: decodable layer-seconds,
// per-layer gap time, and base-layer stalls.
package video

import "sort"

// Interval is a half-open byte range [Start, End).
type Interval struct {
	Start, End int64
}

// IntervalSet is a sorted set of disjoint, non-adjacent intervals.
// The zero value is an empty set.
type IntervalSet struct {
	ivs []Interval
}

// Add inserts [start, end), merging with any overlapping or adjacent
// intervals.
func (s *IntervalSet) Add(start, end int64) {
	if end <= start {
		return
	}
	// Find insertion window: all intervals with End >= start can merge.
	i := sort.Search(len(s.ivs), func(i int) bool { return s.ivs[i].End >= start })
	j := i
	for j < len(s.ivs) && s.ivs[j].Start <= end {
		j++
	}
	if i < j {
		if s.ivs[i].Start < start {
			start = s.ivs[i].Start
		}
		if s.ivs[j-1].End > end {
			end = s.ivs[j-1].End
		}
	}
	merged := append(s.ivs[:i:i], Interval{Start: start, End: end})
	s.ivs = append(merged, s.ivs[j:]...)
}

// Contains reports whether the whole range [start, end) is covered.
func (s *IntervalSet) Contains(start, end int64) bool {
	if end <= start {
		return true
	}
	i := sort.Search(len(s.ivs), func(i int) bool { return s.ivs[i].End > start })
	return i < len(s.ivs) && s.ivs[i].Start <= start && s.ivs[i].End >= end
}

// CoveredWithin returns how many bytes of [start, end) are covered.
func (s *IntervalSet) CoveredWithin(start, end int64) int64 {
	if end <= start {
		return 0
	}
	var covered int64
	i := sort.Search(len(s.ivs), func(i int) bool { return s.ivs[i].End > start })
	for ; i < len(s.ivs) && s.ivs[i].Start < end; i++ {
		lo, hi := s.ivs[i].Start, s.ivs[i].End
		if lo < start {
			lo = start
		}
		if hi > end {
			hi = end
		}
		if hi > lo {
			covered += hi - lo
		}
	}
	return covered
}

// FirstGap returns the start of the first missing byte at or after
// from, and the end of that gap (which may be maxExclusive if the gap is
// open-ended).
func (s *IntervalSet) FirstGap(from, maxExclusive int64) (start, end int64, ok bool) {
	if from >= maxExclusive {
		return 0, 0, false
	}
	i := sort.Search(len(s.ivs), func(i int) bool { return s.ivs[i].End > from })
	if i == len(s.ivs) || s.ivs[i].Start > from {
		// from itself is uncovered.
		gapEnd := maxExclusive
		if i < len(s.ivs) && s.ivs[i].Start < maxExclusive {
			gapEnd = s.ivs[i].Start
		}
		return from, gapEnd, true
	}
	// from is covered; the gap starts at this interval's end.
	gapStart := s.ivs[i].End
	if gapStart >= maxExclusive {
		return 0, 0, false
	}
	gapEnd := maxExclusive
	if i+1 < len(s.ivs) && s.ivs[i+1].Start < maxExclusive {
		gapEnd = s.ivs[i+1].Start
	}
	return gapStart, gapEnd, true
}

// Max returns the highest covered offset (0 for an empty set).
func (s *IntervalSet) Max() int64 {
	if len(s.ivs) == 0 {
		return 0
	}
	return s.ivs[len(s.ivs)-1].End
}

// Len returns the number of disjoint intervals (for tests).
func (s *IntervalSet) Len() int { return len(s.ivs) }

// TotalCovered returns the total number of covered bytes.
func (s *IntervalSet) TotalCovered() int64 {
	var t int64
	for _, iv := range s.ivs {
		t += iv.End - iv.Start
	}
	return t
}
