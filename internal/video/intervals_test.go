package video

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIntervalSetAddAndContains(t *testing.T) {
	var s IntervalSet
	s.Add(10, 20)
	s.Add(30, 40)
	if !s.Contains(10, 20) || !s.Contains(12, 18) {
		t.Fatal("covered range not contained")
	}
	if s.Contains(10, 21) || s.Contains(25, 26) || s.Contains(5, 12) {
		t.Fatal("uncovered range reported contained")
	}
	if s.Len() != 2 {
		t.Fatalf("len = %d, want 2", s.Len())
	}
}

func TestIntervalSetMerging(t *testing.T) {
	var s IntervalSet
	s.Add(10, 20)
	s.Add(20, 30) // adjacent: merge
	if s.Len() != 1 || !s.Contains(10, 30) {
		t.Fatalf("adjacent ranges not merged: len=%d", s.Len())
	}
	s.Add(5, 12) // overlapping front
	if s.Len() != 1 || !s.Contains(5, 30) {
		t.Fatalf("front overlap not merged: len=%d", s.Len())
	}
	s.Add(50, 60)
	s.Add(25, 55) // bridges the gap
	if s.Len() != 1 || !s.Contains(5, 60) {
		t.Fatalf("bridge not merged: len=%d, covered=%d", s.Len(), s.TotalCovered())
	}
}

func TestIntervalSetEmptyAdd(t *testing.T) {
	var s IntervalSet
	s.Add(10, 10)
	s.Add(10, 5)
	if s.Len() != 0 {
		t.Fatal("degenerate adds created intervals")
	}
	if !s.Contains(5, 5) {
		t.Fatal("empty range should be vacuously contained")
	}
}

func TestIntervalSetCoveredWithin(t *testing.T) {
	var s IntervalSet
	s.Add(10, 20)
	s.Add(30, 40)
	if got := s.CoveredWithin(0, 50); got != 20 {
		t.Fatalf("CoveredWithin(0,50) = %d, want 20", got)
	}
	if got := s.CoveredWithin(15, 35); got != 10 {
		t.Fatalf("CoveredWithin(15,35) = %d, want 10", got)
	}
	if got := s.CoveredWithin(20, 30); got != 0 {
		t.Fatalf("CoveredWithin(20,30) = %d, want 0", got)
	}
}

func TestIntervalSetFirstGap(t *testing.T) {
	var s IntervalSet
	s.Add(0, 10)
	s.Add(20, 30)
	start, end, ok := s.FirstGap(0, 30)
	if !ok || start != 10 || end != 20 {
		t.Fatalf("FirstGap(0,30) = (%d,%d,%v), want (10,20,true)", start, end, ok)
	}
	start, end, ok = s.FirstGap(25, 100)
	if !ok || start != 30 || end != 100 {
		t.Fatalf("FirstGap(25,100) = (%d,%d,%v), want (30,100,true)", start, end, ok)
	}
	if _, _, ok := s.FirstGap(5, 10); ok {
		t.Fatal("no gap in [5,10) but FirstGap found one")
	}
	// Uncovered starting point.
	start, _, ok = s.FirstGap(15, 30)
	if !ok || start != 15 {
		t.Fatalf("FirstGap(15,30) start = %d, want 15", start)
	}
}

// Property: IntervalSet agrees with a brute-force boolean array.
func TestIntervalSetMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const size = 200
		var s IntervalSet
		covered := make([]bool, size)
		for op := 0; op < 40; op++ {
			a := int64(rng.Intn(size))
			b := a + int64(rng.Intn(30))
			if b > size {
				b = size
			}
			s.Add(a, b)
			for i := a; i < b; i++ {
				covered[i] = true
			}
		}
		// Check Contains on random ranges.
		for q := 0; q < 50; q++ {
			a := int64(rng.Intn(size))
			b := a + int64(rng.Intn(40))
			if b > size {
				b = size
			}
			want := true
			var wantCov int64
			for i := a; i < b; i++ {
				if !covered[i] {
					want = false
				} else {
					wantCov++
				}
			}
			if s.Contains(a, b) != want {
				return false
			}
			if s.CoveredWithin(a, b) != wantCov {
				return false
			}
		}
		// Total covered matches.
		var total int64
		for _, c := range covered {
			if c {
				total++
			}
		}
		return s.TotalCovered() == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: intervals stay sorted, disjoint, and non-adjacent.
func TestIntervalSetCanonicalForm(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var s IntervalSet
		for op := 0; op < 60; op++ {
			a := int64(rng.Intn(1000))
			s.Add(a, a+int64(rng.Intn(50)))
		}
		prevEnd := int64(-1)
		for _, iv := range s.ivs {
			if iv.End <= iv.Start {
				return false // empty interval stored
			}
			if iv.Start <= prevEnd {
				return false // overlap or adjacency not merged
			}
			prevEnd = iv.End
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
