package sim

// Kind distinguishes data packets from acknowledgements.
type Kind uint8

const (
	// Data is a forward-path payload packet.
	Data Kind = iota
	// Ack is a reverse-path acknowledgement.
	Ack
)

func (k Kind) String() string {
	switch k {
	case Data:
		return "data"
	case Ack:
		return "ack"
	default:
		return "unknown"
	}
}

// SackBlock is a contiguous range of received sequence numbers
// [Start, End), carried on TCP acknowledgements.
type SackBlock struct {
	Start, End int64
}

// Packet is the unit of transfer in the simulator. Fields beyond FlowID,
// Seq, Size and Kind are interpreted by the protocol endpoints that use
// them; the network itself only looks at Size.
type Packet struct {
	FlowID int
	Seq    int64
	Size   int // bytes, including any notional header
	Kind   Kind

	// Layer is the video layer this data packet carries (QA flows only).
	Layer int
	// SendTime is when the packet left the source, for RTT sampling.
	SendTime float64
	// AckSeq is the sequence number being acknowledged (Ack packets).
	AckSeq int64
	// CumAck is the highest in-order sequence received plus one
	// (TCP-style cumulative acknowledgement).
	CumAck int64
	// Sack carries up to a few blocks of out-of-order received data.
	Sack []SackBlock
	// Echo carries an opaque sender timestamp echoed by the receiver.
	Echo float64
	// Retransmit marks a retransmitted data packet.
	Retransmit bool

	// Dst receives the packet when it exits the network.
	Dst Receiver

	// enqAt is when the packet entered the bottleneck queue, recorded by
	// the link so the dequeue can observe the queueing delay.
	enqAt float64

	// pooled marks a packet currently held by a PacketPool; Put uses it
	// to panic on double-release.
	pooled bool
}

// Receiver consumes packets delivered by the network.
type Receiver interface {
	Recv(p *Packet)
}

// ReceiverFunc adapts a function to the Receiver interface.
type ReceiverFunc func(p *Packet)

// Recv implements Receiver.
func (f ReceiverFunc) Recv(p *Packet) { f(p) }
