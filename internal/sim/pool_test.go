package sim

import (
	"testing"
)

func TestPacketPoolRecycles(t *testing.T) {
	var pp PacketPool
	p := pp.Get()
	p.FlowID, p.Seq, p.Size = 7, 42, 512
	pp.Put(p)
	if pp.Free() != 1 {
		t.Fatalf("Free() = %d after one Put, want 1", pp.Free())
	}
	q := pp.Get()
	if q != p {
		t.Fatal("Get did not reuse the released packet")
	}
	if q.FlowID != 0 || q.Seq != 0 || q.Size != 0 || q.Dst != nil || q.pooled {
		t.Fatalf("recycled packet not zeroed: %+v", q)
	}
	if pp.News != 1 || pp.Gets != 2 || pp.Puts != 1 {
		t.Fatalf("counters news=%d gets=%d puts=%d, want 1/2/1", pp.News, pp.Gets, pp.Puts)
	}
}

func TestPacketPoolDoublePutPanics(t *testing.T) {
	var pp PacketPool
	p := pp.Get()
	pp.Put(p)
	defer func() {
		if recover() == nil {
			t.Fatal("double Put did not panic")
		}
	}()
	pp.Put(p)
}

func TestPacketPoolPutNilIsNoop(t *testing.T) {
	var pp PacketPool
	pp.Put(nil)
	if pp.Free() != 0 || pp.Puts != 0 {
		t.Fatal("Put(nil) mutated the pool")
	}
}

func TestPacketPoolPoisonsReleasedPackets(t *testing.T) {
	var pp PacketPool
	p := pp.Get()
	p.FlowID, p.Seq, p.Size, p.AckSeq = 3, 100, 512, 99
	p.Sack = append(p.Sack, SackBlock{Start: 1, End: 2})
	pp.Put(p)
	// A stale reference must see values that corrupt loudly, not the old
	// plausible ones.
	if p.Size >= 0 || p.Seq >= 0 || p.AckSeq >= 0 || p.Dst != nil || len(p.Sack) != 0 {
		t.Fatalf("released packet not poisoned: %+v", p)
	}
}

func TestPacketPoolKeepsSackCapacity(t *testing.T) {
	var pp PacketPool
	p := pp.Get()
	p.Sack = append(p.Sack, SackBlock{1, 2}, SackBlock{4, 5}, SackBlock{7, 8})
	pp.Put(p)
	q := pp.Get()
	if cap(q.Sack) < 3 {
		t.Fatalf("Sack backing array lost on recycle: cap=%d", cap(q.Sack))
	}
	if len(q.Sack) != 0 {
		t.Fatalf("recycled Sack not emptied: %v", q.Sack)
	}
}

// TestPoolDropAndDeliverReleaseExactlyOnce drives an overloaded link and
// checks pool conservation: every packet the network took ownership of
// comes back exactly once, whether it was dropped at the queue or
// delivered to the sink.
func TestPoolDropAndDeliverReleaseExactlyOnce(t *testing.T) {
	e := NewEngine()
	d := NewDumbbell(e, DumbbellConfig{
		Rate: 1000, Delay: 0.01, AccessDelay: 0.001, QueueBytes: 500,
	})
	delivered := 0
	sink := ReceiverFunc(func(p *Packet) { delivered++ })
	const n = 100
	for i := 0; i < n; i++ {
		p := e.Pool().Get()
		p.Seq, p.Size, p.Kind = int64(i), 100, Data
		d.SendData(p, sink)
	}
	e.Run()
	if d.Q.Drops() == 0 {
		t.Fatal("overload produced no drops; test is not exercising the drop path")
	}
	if delivered+int(d.Q.Drops()) != n {
		t.Fatalf("delivered %d + dropped %d != %d", delivered, d.Q.Drops(), n)
	}
	if got := e.Pool().Puts - e.Pool().Gets + n; got != n {
		t.Fatalf("pool gets=%d puts=%d: not conserved", e.Pool().Gets, e.Pool().Puts)
	}
	if e.Pool().Free() != n {
		t.Fatalf("pool holds %d packets after drain, want %d (each released exactly once)",
			e.Pool().Free(), n)
	}
}

// TestPoolSoakChurn hammers Get/Put with a deterministic schedule of
// batch sizes, checking the free list stays conserved and recycled
// packets always come back clean. Run under -race in CI, it also
// shakes out any accidental sharing of pooled packets.
func TestPoolSoakChurn(t *testing.T) {
	var pp PacketPool
	live := make([]*Packet, 0, 256)
	rng := uint64(1)
	for iter := 0; iter < 50_000; iter++ {
		rng = rng*6364136223846793005 + 1442695040888963407
		if rng&1 == 0 && len(live) < 256 {
			p := pp.Get()
			if p.pooled || p.Size != 0 || p.Seq != 0 || p.Dst != nil {
				t.Fatalf("iter %d: Get returned dirty packet %+v", iter, p)
			}
			p.Seq, p.Size = int64(iter), int(rng%1500)+40
			live = append(live, p)
		} else if len(live) > 0 {
			i := int(rng>>32) % len(live)
			pp.Put(live[i])
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		}
	}
	if int(pp.Gets-pp.Puts) != len(live) {
		t.Fatalf("gets=%d puts=%d live=%d: pool not conserved", pp.Gets, pp.Puts, len(live))
	}
}

// TestAllocFreeSteadyStateLink is the tentpole invariant at the sim
// layer: once a saturated DropTail link reaches steady state, pushing
// more packets through it allocates nothing — packets come from the
// pool, events from the free list, and scheduling mints no closures.
func TestAllocFreeSteadyStateLink(t *testing.T) {
	e := NewEngine()
	q := NewDropTail(1 << 16)
	l := NewLink(e, q, 1e6, 0.001)
	received := 0
	sink := ReceiverFunc(func(p *Packet) { received++ })
	feeder := func(any) {}
	var next float64
	feeder = func(any) {
		p := e.Pool().Get()
		p.Size, p.Kind, p.Dst = 512, Data, sink
		l.Offer(p)
		next += 0.0004 // slightly faster than the 512B/1MBps drain: stays saturated
		e.AtFunc(next, feeder, nil)
	}
	e.AtFunc(0, feeder, nil)
	// Warm up: grow the pool, event free list, and queue ring to their
	// high-water marks.
	e.RunUntil(5)
	allocs := testing.AllocsPerRun(100, func() {
		e.RunUntil(e.Now() + 0.1)
	})
	if allocs != 0 {
		t.Fatalf("steady-state link path allocates %.1f times per 0.1s slice, want 0", allocs)
	}
	if received == 0 {
		t.Fatal("sink never saw a packet")
	}
}
