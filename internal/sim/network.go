package sim

import "qav/internal/metrics"

// Network is the interface packet sources send through: data packets
// travel the forward path to the bottleneck and on to their receiver,
// acknowledgements return over the uncongested reverse path. Dumbbell
// is the serial implementation; ShardedDumbbell's per-shard fronts
// implement the same contract with the bottleneck on another engine.
// In both cases the network owns a packet once handed over and
// eventually releases it to a pool.
type Network interface {
	SendData(p *Packet, dst Receiver)
	SendAck(p *Packet, dst Receiver)
	// BaseRTT returns the zero-queue round-trip propagation time.
	BaseRTT() float64
}

// Dumbbell is the classic single-bottleneck evaluation topology: every
// source shares one bottleneck queue+link on the forward path, and
// acknowledgements return over an uncongested reverse path with a fixed
// delay. This is the topology of the paper's T1/T2 tests (800 Kb/s
// bottleneck, 40 ms round-trip).
type Dumbbell struct {
	Eng   *Engine
	Bneck *Link
	Q     Queue

	accessDelay  float64 // source -> bottleneck, per direction
	reverseDelay float64 // sink -> source (full reverse path)

	// offerFn/ackFn are bound once so the per-packet hops schedule via
	// AtFunc without minting closures.
	offerFn func(any)
	ackFn   func(any)
}

// DumbbellConfig configures a dumbbell topology.
type DumbbellConfig struct {
	Rate        float64 // bottleneck bandwidth, bytes/s
	Delay       float64 // bottleneck one-way propagation delay, seconds
	AccessDelay float64 // per-flow access-link delay, seconds
	QueueBytes  int     // bottleneck buffer size, bytes
	Queue       Queue   // optional custom queue (overrides QueueBytes)
}

// NewDumbbell builds the topology on eng. Base round-trip time for a
// flow is 2*(AccessDelay + Delay) plus serialization and queueing.
func NewDumbbell(eng *Engine, cfg DumbbellConfig) *Dumbbell {
	q := cfg.Queue
	if q == nil {
		if cfg.QueueBytes <= 0 {
			panic("sim: dumbbell queue size must be positive")
		}
		q = NewDropTail(cfg.QueueBytes)
	}
	d := &Dumbbell{
		Eng:          eng,
		Q:            q,
		Bneck:        NewLink(eng, q, cfg.Rate, cfg.Delay),
		accessDelay:  cfg.AccessDelay,
		reverseDelay: cfg.AccessDelay + cfg.Delay,
	}
	d.offerFn = d.offer
	d.ackFn = d.deliverAck
	return d
}

// Instrument registers the topology's engine and bottleneck-link
// metrics on reg; see Engine.Instrument and Link.Instrument.
func (d *Dumbbell) Instrument(reg *metrics.Registry) {
	d.Eng.Instrument(reg)
	d.Bneck.Instrument(reg)
}

// BaseRTT returns the zero-queue round-trip propagation time.
func (d *Dumbbell) BaseRTT() float64 {
	return 2 * (d.accessDelay + d.Bneck.Delay())
}

// SendData pushes a data packet from a source across the access link and
// into the bottleneck; dst receives it if it is not dropped. The network
// owns the packet from here on: it is released to the engine's pool on
// drop or after dst.Recv returns.
func (d *Dumbbell) SendData(p *Packet, dst Receiver) {
	p.Dst = dst
	d.Eng.AfterFunc(d.accessDelay, d.offerFn, p)
}

func (d *Dumbbell) offer(arg any) { d.Bneck.Offer(arg.(*Packet)) }

// SendAck returns an acknowledgement to dst over the uncongested reverse
// path. Like SendData, the network owns (and eventually releases) the
// packet once handed over.
func (d *Dumbbell) SendAck(p *Packet, dst Receiver) {
	p.Dst = dst
	d.Eng.AfterFunc(d.reverseDelay, d.ackFn, p)
}

func (d *Dumbbell) deliverAck(arg any) {
	p := arg.(*Packet)
	if p.Dst != nil {
		p.Dst.Recv(p)
	}
	d.Eng.pool.Put(p)
}
