package sim

import "math/rand"

// RED is a Random Early Detection queue (Floyd & Jacobson '93), provided
// as the paper's "future work" bottleneck variant and for the DropTail vs
// RED ablation bench. Averaging and dropping follow the classic gentle-off
// algorithm with byte-mode thresholds expressed in packets of MeanPktSize.
type RED struct {
	limit   int // hard byte limit
	minTh   float64
	maxTh   float64
	maxP    float64
	wq      float64
	meanPkt int

	rng     *rand.Rand
	pkts    []*Packet
	bytes   int
	avg     float64 // average queue length in packets
	count   int     // packets since last drop
	idleAt  float64 // virtual time the queue went idle (unused: avg decay on arrival only)
	dropped int64
}

// REDConfig holds RED parameters. Zero fields get classic defaults.
type REDConfig struct {
	LimitBytes  int     // hard capacity
	MinThresh   float64 // packets
	MaxThresh   float64 // packets
	MaxP        float64 // max drop probability at MaxThresh
	Wq          float64 // EWMA weight
	MeanPktSize int     // bytes
	Seed        int64
}

// NewRED returns a RED queue.
func NewRED(cfg REDConfig) *RED {
	if cfg.LimitBytes <= 0 {
		panic("sim: RED limit must be positive")
	}
	if cfg.MeanPktSize <= 0 {
		cfg.MeanPktSize = 512
	}
	if cfg.MinThresh <= 0 {
		cfg.MinThresh = 5
	}
	if cfg.MaxThresh <= 0 {
		cfg.MaxThresh = 3 * cfg.MinThresh
	}
	if cfg.MaxP <= 0 {
		cfg.MaxP = 0.1
	}
	if cfg.Wq <= 0 {
		cfg.Wq = 0.002
	}
	return &RED{
		limit:   cfg.LimitBytes,
		minTh:   cfg.MinThresh,
		maxTh:   cfg.MaxThresh,
		maxP:    cfg.MaxP,
		wq:      cfg.Wq,
		meanPkt: cfg.MeanPktSize,
		rng:     rand.New(rand.NewSource(cfg.Seed + 1)),
	}
}

// Enqueue implements Queue with early random dropping.
func (q *RED) Enqueue(p *Packet) bool {
	qlen := float64(q.bytes) / float64(q.meanPkt)
	q.avg = (1-q.wq)*q.avg + q.wq*qlen

	drop := false
	switch {
	case q.bytes+p.Size > q.limit:
		drop = true // hard limit
	case q.avg >= q.maxTh:
		drop = true
	case q.avg >= q.minTh:
		pb := q.maxP * (q.avg - q.minTh) / (q.maxTh - q.minTh)
		pa := pb / (1 - float64(q.count)*pb)
		if pa < 0 || pa > 1 {
			pa = 1
		}
		if q.rng.Float64() < pa {
			drop = true
		} else {
			q.count++
		}
	default:
		q.count = 0
	}
	if drop {
		q.dropped++
		q.count = 0
		return false
	}
	q.pkts = append(q.pkts, p)
	q.bytes += p.Size
	return true
}

// Dequeue implements Queue.
func (q *RED) Dequeue() *Packet {
	if len(q.pkts) == 0 {
		return nil
	}
	p := q.pkts[0]
	q.pkts[0] = nil
	q.pkts = q.pkts[1:]
	q.bytes -= p.Size
	return p
}

// Len implements Queue.
func (q *RED) Len() int { return len(q.pkts) }

// Bytes implements Queue.
func (q *RED) Bytes() int { return q.bytes }

// Drops implements Queue.
func (q *RED) Drops() int64 { return q.dropped }
