package sim

import (
	"math"
	"math/rand"
)

// RED is a Random Early Detection queue (Floyd & Jacobson '93), provided
// as the paper's "future work" bottleneck variant and for the DropTail vs
// RED ablation bench. Averaging and dropping follow the classic gentle-off
// algorithm with byte-mode thresholds expressed in packets of MeanPktSize.
// Packets live in the same power-of-two ring buffer DropTail uses:
// dequeuing advances the head index instead of reslicing from the front,
// so a long-lived queue reuses one backing array (alloc-free at steady
// state) instead of pinning consumed prefixes until the next realloc.
type RED struct {
	limit   int // hard byte limit
	minTh   float64
	maxTh   float64
	maxP    float64
	wq      float64
	meanPkt int

	rng     *rand.Rand
	ring    []*Packet
	mask    int // len(ring)-1; ring length is always a power of two
	head    int // index of the oldest packet
	count   int
	bytes   int
	avg     float64 // average queue length in packets
	pktCnt  int     // packets since last drop
	dropped int64

	// Idle-period decay (Floyd & Jacobson §2, ns-2's m estimate): while
	// the queue sits empty the average should keep decaying as if m
	// small packets had passed, m = idle time / typical transmission
	// time. now supplies the virtual clock and txTime the per-packet
	// slot; with no clock configured the estimator falls back to
	// EWMA-on-arrival only (the pre-clock behavior).
	now    func() float64
	txTime float64 // seconds to transmit one MeanPktSize packet
	idleAt float64 // virtual time the queue went idle

	// aux, when set, supplies additional shared-buffer occupancy (a
	// hybrid fluid aggregate's backlog) included in the averaged queue
	// length: RED at a mixed bottleneck reacts to the whole queue, not
	// just the packet-level slice of it. Nil outside hybrid runs, where
	// the average is byte-identical to the classic computation.
	aux func() float64
}

// REDConfig holds RED parameters. Zero fields get classic defaults.
type REDConfig struct {
	LimitBytes  int     // hard capacity
	MinThresh   float64 // packets
	MaxThresh   float64 // packets
	MaxP        float64 // max drop probability at MaxThresh
	Wq          float64 // EWMA weight
	MeanPktSize int     // bytes
	Seed        int64

	// Now, when non-nil, is the virtual clock (sim: eng.Now) used to
	// decay the queue average across idle periods per Floyd-Jacobson.
	// Nil disables idle decay: the average only updates on arrivals.
	Now func() float64
	// LinkRate (bytes/s) sizes the idle decay's packet-slot time
	// (MeanPktSize/LinkRate); required for decay when Now is set.
	LinkRate float64
}

// NewRED returns a RED queue.
func NewRED(cfg REDConfig) *RED {
	if cfg.LimitBytes <= 0 {
		panic("sim: RED limit must be positive")
	}
	if cfg.MeanPktSize <= 0 {
		cfg.MeanPktSize = 512
	}
	if cfg.MinThresh <= 0 {
		cfg.MinThresh = 5
	}
	if cfg.MaxThresh <= 0 {
		cfg.MaxThresh = 3 * cfg.MinThresh
	}
	if cfg.MaxP <= 0 {
		cfg.MaxP = 0.1
	}
	if cfg.Wq <= 0 {
		cfg.Wq = 0.002
	}
	q := &RED{
		limit:   cfg.LimitBytes,
		minTh:   cfg.MinThresh,
		maxTh:   cfg.MaxThresh,
		maxP:    cfg.MaxP,
		wq:      cfg.Wq,
		meanPkt: cfg.MeanPktSize,
		rng:     rand.New(rand.NewSource(cfg.Seed + 1)),
	}
	if cfg.Now != nil && cfg.LinkRate > 0 {
		q.now = cfg.Now
		q.txTime = float64(cfg.MeanPktSize) / cfg.LinkRate
		q.idleAt = q.now() // the queue starts empty
	}
	return q
}

// SetAuxBytes registers a supplementary occupancy source (a hybrid
// fluid backlog) folded into the averaged queue length. Call before
// the simulation starts; nil keeps the classic packet-only average.
func (q *RED) SetAuxBytes(aux func() float64) { q.aux = aux }

// EarlyDropProb returns the current base drop probability for an
// average-size arrival — the Floyd-Jacobson ramp from 0 at MinThresh
// to MaxP at MaxThresh, 1 above — without updating the average or
// consuming randomness. A fluid aggregate applies this rate to its
// arrivals each coupling step, so the background sees the same early
// congestion signal the packet flows do.
func (q *RED) EarlyDropProb() float64 {
	switch {
	case q.avg >= q.maxTh:
		return 1
	case q.avg >= q.minTh:
		return q.maxP * (q.avg - q.minTh) / (q.maxTh - q.minTh)
	default:
		return 0
	}
}

// Enqueue implements Queue with early random dropping.
func (q *RED) Enqueue(p *Packet) bool {
	if q.count == 0 && q.now != nil && (q.aux == nil || q.aux() == 0) {
		// Arrival to an idle queue: decay the average as if the idle
		// period had been m empty packet slots (avg *= (1-wq)^m)
		// instead of applying a single EWMA step toward zero. A queue
		// holding fluid occupancy is not idle, whatever its packet
		// count.
		if m := (q.now() - q.idleAt) / q.txTime; m > 0 {
			q.avg *= math.Pow(1-q.wq, m)
		}
	} else {
		occ := float64(q.bytes)
		if q.aux != nil {
			occ += q.aux()
		}
		qlen := occ / float64(q.meanPkt)
		q.avg = (1-q.wq)*q.avg + q.wq*qlen
	}

	drop := false
	switch {
	case q.bytes+p.Size > q.limit:
		drop = true // hard limit
	case q.avg >= q.maxTh:
		drop = true
	case q.avg >= q.minTh:
		pb := q.maxP * (q.avg - q.minTh) / (q.maxTh - q.minTh)
		pa := pb / (1 - float64(q.pktCnt)*pb)
		if pa < 0 || pa > 1 {
			pa = 1
		}
		if q.rng.Float64() < pa {
			drop = true
		} else {
			q.pktCnt++
		}
	default:
		q.pktCnt = 0
	}
	if drop {
		q.dropped++
		q.pktCnt = 0
		return false
	}
	if q.count == len(q.ring) {
		q.grow()
	}
	q.ring[(q.head+q.count)&q.mask] = p
	q.count++
	q.bytes += p.Size
	return true
}

// grow doubles the ring (always to a power of two), unwrapping the
// occupied span to the front.
func (q *RED) grow() {
	next := make([]*Packet, max(8, 2*len(q.ring)))
	for i := 0; i < q.count; i++ {
		next[i] = q.ring[(q.head+i)&q.mask]
	}
	q.ring = next
	q.mask = len(next) - 1
	q.head = 0
}

// Dequeue implements Queue.
func (q *RED) Dequeue() *Packet {
	if q.count == 0 {
		return nil
	}
	p := q.ring[q.head]
	q.ring[q.head] = nil
	q.head = (q.head + 1) & q.mask
	q.count--
	q.bytes -= p.Size
	if q.count == 0 && q.now != nil {
		q.idleAt = q.now()
	}
	return p
}

// Len implements Queue.
func (q *RED) Len() int { return q.count }

// Bytes implements Queue.
func (q *RED) Bytes() int { return q.bytes }

// Drops implements Queue.
func (q *RED) Drops() int64 { return q.dropped }
