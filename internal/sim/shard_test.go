package sim

import (
	"testing"
)

// recvEvent is one observation at a sink: virtual time plus sequence.
type recvEvent struct {
	t   float64
	seq int64
}

// diffFlow is a minimal acked sender/sink pair for differential tests:
// it sends fixed-size packets on a fixed inter-packet gap and logs the
// exact (time, seq) of every data delivery and every ack return.
type diffFlow struct {
	eng  *Engine
	net  Network
	id   int
	size int
	ipg  float64
	stop float64
	seq  int64

	recvs []recvEvent
	acks  []recvEvent

	sendFn   func()
	dataSink Receiver
	ackSink  Receiver
}

func newDiffFlow(eng *Engine, net Network, id int, ipg, start, stop float64) *diffFlow {
	f := &diffFlow{eng: eng, net: net, id: id, size: 300, ipg: ipg, stop: stop}
	f.dataSink = ReceiverFunc(func(p *Packet) {
		f.recvs = append(f.recvs, recvEvent{eng.Now(), p.Seq})
		ack := eng.Pool().Get()
		ack.FlowID, ack.Kind, ack.Size, ack.AckSeq = f.id, Ack, 40, p.Seq
		net.SendAck(ack, f.ackSink)
	})
	f.ackSink = ReceiverFunc(func(p *Packet) {
		f.acks = append(f.acks, recvEvent{eng.Now(), p.AckSeq})
	})
	f.sendFn = func() {
		now := eng.Now()
		p := eng.Pool().Get()
		p.FlowID, p.Seq, p.Size = f.id, f.seq, f.size
		p.Kind, p.SendTime = Data, now
		f.seq++
		net.SendData(p, f.dataSink)
		if now+f.ipg < f.stop {
			eng.After(f.ipg, f.sendFn)
		}
	}
	eng.At(start, f.sendFn)
	return f
}

// shardCase describes one differential scenario: flows with given
// start offsets and gaps, run serially and at several shard counts.
type shardCase struct {
	name     string
	cfg      DumbbellConfig
	shards   []int // flow-shard counts to compare against serial
	duration float64
	flows    []struct{ ipg, start, stop float64 }
}

func runSerialCase(c shardCase) ([]*diffFlow, *Link) {
	eng := NewEngine()
	net := NewDumbbell(eng, c.cfg)
	flows := make([]*diffFlow, len(c.flows))
	for i, fc := range c.flows {
		flows[i] = newDiffFlow(eng, net, i, fc.ipg, fc.start, fc.stop)
	}
	eng.RunUntil(c.duration)
	return flows, net.Bneck
}

func runShardedCase(c shardCase, flowShards int) ([]*diffFlow, *Link) {
	d := NewShardedDumbbell(flowShards, c.cfg, DefaultScheduler, nil)
	flows := make([]*diffFlow, len(c.flows))
	for i, fc := range c.flows {
		s := i % flowShards
		d.AssignFlow(i, s)
		flows[i] = newDiffFlow(d.FlowEngine(s), d.FlowNet(s), i, fc.ipg, fc.start, fc.stop)
	}
	d.Run(c.duration, nil)
	return flows, d.Bneck()
}

func checkCase(t *testing.T, c shardCase) {
	t.Helper()
	want, wantLink := runSerialCase(c)
	for _, n := range c.shards {
		got, gotLink := runShardedCase(c, n)
		for i := range want {
			if len(got[i].recvs) != len(want[i].recvs) {
				t.Fatalf("shards=%d flow %d: %d deliveries, serial %d",
					n, i, len(got[i].recvs), len(want[i].recvs))
			}
			for j := range want[i].recvs {
				if got[i].recvs[j] != want[i].recvs[j] {
					t.Fatalf("shards=%d flow %d delivery %d: got %+v, serial %+v",
						n, i, j, got[i].recvs[j], want[i].recvs[j])
				}
			}
			if len(got[i].acks) != len(want[i].acks) {
				t.Fatalf("shards=%d flow %d: %d acks, serial %d",
					n, i, len(got[i].acks), len(want[i].acks))
			}
			for j := range want[i].acks {
				if got[i].acks[j] != want[i].acks[j] {
					t.Fatalf("shards=%d flow %d ack %d: got %+v, serial %+v",
						n, i, j, got[i].acks[j], want[i].acks[j])
				}
			}
		}
		if gotLink.TxPackets != wantLink.TxPackets || gotLink.TxBytes != wantLink.TxBytes {
			t.Fatalf("shards=%d: link tx %d pkts/%d bytes, serial %d/%d",
				n, gotLink.TxPackets, gotLink.TxBytes, wantLink.TxPackets, wantLink.TxBytes)
		}
	}
}

// TestShardedDumbbellDifferential drives overlapping acked flows
// through a congested bottleneck and requires every delivery and ack
// instant to match the serial topology exactly, at several shard
// counts — including more shards than flows (empty shards).
func TestShardedDumbbellDifferential(t *testing.T) {
	cfg := DumbbellConfig{
		Rate:        50_000,
		Delay:       0.010,
		AccessDelay: 0.005,
		QueueBytes:  4 * 300, // tiny: force drops
	}
	c := shardCase{
		cfg:      cfg,
		shards:   []int{1, 2, 3, 7}, // 7 > 5 flows: some shards stay empty
		duration: 3,
		flows: []struct{ ipg, start, stop float64 }{
			{0.013, 0, 3},
			{0.017, 0, 3},
			{0.011, 0.25, 3},
			{0.019, 0.25, 3}, // same start as flow 2: flow-ID tie order
			{0.023, 1.5037, 2.5},
		},
	}
	checkCase(t, c)
}

// TestShardedHorizonArrival pins the lookahead edge case: with the
// send gap equal to the lookahead and senders starting at 0, packets
// leave at exactly k*L and arrive at the bottleneck at exactly the
// window horizons. RunBelow must leave those arrivals to the next
// window, after the barrier has delivered them, or they are lost or
// double-run.
func TestShardedHorizonArrival(t *testing.T) {
	cfg := DumbbellConfig{
		Rate:        100_000,
		Delay:       0.010,
		AccessDelay: 0.005, // lookahead L = 0.005
		QueueBytes:  20 * 300,
	}
	c := shardCase{
		cfg:      cfg,
		shards:   []int{1, 2},
		duration: 1,
		// ipg == L: every arrival lands exactly on a horizon. The
		// second flow is offset by half a lookahead to interleave.
		flows: []struct{ ipg, start, stop float64 }{
			{0.005, 0, 1},
			{0.005, 0.0025, 1},
		},
	}
	checkCase(t, c)
}

// TestShardedDurationBoundary runs a duration chosen so deliveries
// land exactly on it (start 0, ipg 0.005, access 0.005, tx 0.003,
// delay 0.010: arrivals at source k*0.005+0.005, transmit-complete
// +0.003, delivered +0.010). The final-window drain must run arrivals
// dated exactly at the duration, as the serial RunUntil does.
func TestShardedDurationBoundary(t *testing.T) {
	cfg := DumbbellConfig{
		Rate:        100_000,
		Delay:       0.010,
		AccessDelay: 0.005,
		QueueBytes:  20 * 300,
	}
	c := shardCase{
		cfg:      cfg,
		shards:   []int{1, 3},
		duration: 0.518, // 0.5 + access 0.005 + tx 0.003 + delay 0.010
		flows: []struct{ ipg, start, stop float64 }{
			{0.005, 0, 0.518},
		},
	}
	checkCase(t, c)
}

// TestRunBelowExcludesHorizon verifies the windowed-execution
// primitive directly: an event exactly at the horizon must stay queued
// and the clock must not advance past executed events.
func TestRunBelowExcludesHorizon(t *testing.T) {
	eng := NewEngine()
	var ran []float64
	for _, at := range []float64{0.1, 0.2, 0.3} {
		at := at
		eng.At(at, func() { ran = append(ran, at) })
	}
	eng.RunBelow(0.3)
	if len(ran) != 2 || ran[0] != 0.1 || ran[1] != 0.2 {
		t.Fatalf("RunBelow(0.3) ran %v, want [0.1 0.2]", ran)
	}
	if eng.Now() != 0.2 {
		t.Fatalf("clock at %v after RunBelow, want 0.2 (last executed event)", eng.Now())
	}
	eng.RunBelow(0.301)
	if len(ran) != 3 {
		t.Fatalf("event at the old horizon did not run in the next window: %v", ran)
	}
}

// TestShardedPoolOwnership checks the cross-shard packet return path:
// with a queue small enough to drop steadily, every packet a flow shard
// allocates must come back to that shard's pool (drops via the return
// boxes, deliveries after Recv), so Gets and Puts balance up to the
// packets parked in the final beyond-duration events.
func TestShardedPoolOwnership(t *testing.T) {
	cfg := DumbbellConfig{
		Rate:        30_000,
		Delay:       0.010,
		AccessDelay: 0.005,
		QueueBytes:  2 * 300,
	}
	d := NewShardedDumbbell(2, cfg, DefaultScheduler, nil)
	for i := 0; i < 2; i++ {
		d.AssignFlow(i, i)
		newDiffFlow(d.FlowEngine(i), d.FlowNet(i), i, 0.007, 0, 10)
	}
	d.Run(2, nil)
	if d.Queue().Drops() == 0 {
		t.Fatal("case produced no drops; queue sizing is wrong for this test")
	}
	for i := 0; i < 2; i++ {
		pool := d.FlowEngine(i).Pool()
		outstanding := pool.Gets - pool.Puts
		// In-flight packets at cutoff (events dated past the duration)
		// are bounded by what one RTT plus the queue can hold; far
		// below the thousands of packets exchanged. A leak through the
		// wrong pool would grow with the run instead.
		if outstanding < 0 || outstanding > 64 {
			t.Fatalf("shard %d pool: %d gets, %d puts (%d outstanding)",
				i, pool.Gets, pool.Puts, outstanding)
		}
	}
}
