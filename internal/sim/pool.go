package sim

// PacketPool is a single-threaded free list of Packets, owned by an
// Engine (see Engine.Pool). Like ns-2's packet free list, it makes the
// per-packet hot path allocation-free at steady state: every producer
// Gets its packets here and the network Puts them back exactly once —
// the queue/link on drop, the delivery path after the destination's
// Recv returns.
//
// Ownership rules:
//
//   - A producer that Gets a packet owns it until it hands it to the
//     network (Dumbbell.SendData / SendAck or Link.Offer).
//   - If the bottleneck queue refuses the packet, the link Puts it.
//   - On delivery the network calls Dst.Recv(p) and Puts p when Recv
//     returns: receivers borrow the packet for the duration of the call
//     and must copy anything they need afterwards.
//
// Put poisons the struct (negative sizes and sequence numbers, nil Dst)
// so a use-after-free corrupts counters loudly instead of silently
// reading plausible stale values, and a double Put panics.
type PacketPool struct {
	free []*Packet

	// News counts packets allocated because the free list was empty;
	// Gets and Puts count total traffic. At steady state Gets grows
	// while News does not.
	Gets, Puts, News uint64
}

// poison values written into released packets; chosen so arithmetic on
// a stale reference (byte counters, serialization times) goes visibly
// wrong rather than almost-right.
const (
	poisonSeq  = int64(-1) << 40
	poisonSize = -1 << 20
)

// Get returns a zeroed packet, reusing a released one when available.
// The Sack slice keeps its backing array (length 0) so ACK producers
// append SACK blocks without reallocating.
func (pp *PacketPool) Get() *Packet {
	pp.Gets++
	if n := len(pp.free); n > 0 {
		p := pp.free[n-1]
		pp.free[n-1] = nil
		pp.free = pp.free[:n-1]
		sack := p.Sack[:0]
		*p = Packet{Sack: sack}
		return p
	}
	pp.News++
	return &Packet{}
}

// Put releases p back to the pool. Putting the same packet twice
// without an intervening Get panics: it would hand one packet to two
// owners. Put(nil) is a no-op.
func (pp *PacketPool) Put(p *Packet) {
	if p == nil {
		return
	}
	if p.pooled {
		panic("sim: Packet double-Put (already in the pool)")
	}
	pp.Puts++
	p.pooled = true
	p.FlowID = -1
	p.Seq = poisonSeq
	p.Size = poisonSize
	p.Layer = -1
	p.SendTime = -1
	p.AckSeq = poisonSeq
	p.CumAck = poisonSeq
	p.Sack = p.Sack[:0]
	p.Echo = -1
	p.Retransmit = false
	p.Dst = nil
	pp.free = append(pp.free, p)
}

// Free returns the current number of pooled packets.
func (pp *PacketPool) Free() int { return len(pp.free) }
