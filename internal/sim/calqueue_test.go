package sim

import (
	"math/rand"
	"testing"
)

// --- Structure-level differential: calendar vs reference heap ---------

// diffHarness drives a calQueue and the reference heapSched through an
// identical operation stream and asserts every pop returns the same
// (time, seq) event.
type diffHarness struct {
	t    *testing.T
	cal  *calQueue
	heap *heapSched
	seq  uint64
	live int
}

func newDiffHarness(t *testing.T) *diffHarness {
	return &diffHarness{t: t, cal: newCalQueue(), heap: &heapSched{}}
}

func (d *diffHarness) push(at float64) {
	d.seq++
	d.cal.push(&event{time: at, seq: d.seq})
	d.heap.push(&event{time: at, seq: d.seq})
	d.live++
	if got, want := d.cal.len(), d.heap.len(); got != want {
		d.t.Fatalf("after push(%g): calendar len %d, heap len %d", at, got, want)
	}
}

func (d *diffHarness) pop() {
	ce, he := d.cal.pop(), d.heap.pop()
	switch {
	case ce == nil && he == nil:
		return
	case ce == nil || he == nil:
		d.t.Fatalf("pop: calendar %+v, heap %+v", ce, he)
	case ce.time != he.time || ce.seq != he.seq:
		d.t.Fatalf("pop diverged: calendar (t=%g seq=%d), heap (t=%g seq=%d)",
			ce.time, ce.seq, he.time, he.seq)
	}
	d.live--
}

func (d *diffHarness) drain() {
	for d.live > 0 {
		d.pop()
	}
	if d.cal.pop() != nil || d.heap.pop() != nil {
		d.t.Fatal("structures not empty after drain")
	}
}

// TestSchedulerDifferentialRandom replays >= 10k randomized workloads
// against both structures: mixed near/far/same-time pushes interleaved
// with pops, biased so the population swings through resize thresholds
// in both directions and the far-future overflow lane engages.
func TestSchedulerDifferentialRandom(t *testing.T) {
	workloads := 10_000
	if testing.Short() {
		workloads = 1_000
	}
	for w := 0; w < workloads; w++ {
		rng := rand.New(rand.NewSource(int64(w)))
		d := newDiffHarness(t)
		now := 0.0
		nops := 20 + rng.Intn(120)
		for i := 0; i < nops; i++ {
			switch r := rng.Float64(); {
			case r < 0.55 || d.live == 0:
				// Near-future push, occasionally at an exact repeat
				// time to exercise the seq tie-break.
				at := now + rng.Float64()*float64(1+rng.Intn(3))
				if r < 0.08 && d.live > 0 {
					at = now
				}
				d.push(at)
			case r < 0.62:
				// Far-future push: lands in the overflow lane.
				d.push(now + 1e3 + rng.Float64()*1e6)
			case r < 0.70:
				// Same-time burst: one bucket, FIFO by seq.
				at := now + rng.Float64()
				for k := 0; k < 1+rng.Intn(8); k++ {
					d.push(at)
				}
			default:
				d.pop()
			}
			// Track an approximate clock so pushes trend forward like
			// engine time does.
			now += rng.Float64() * 0.01
		}
		d.drain()
	}
}

// TestSchedulerDifferentialBursty stresses the resize paths: population
// ramps from empty to thousands and back, repeatedly.
func TestSchedulerDifferentialBursty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	d := newDiffHarness(t)
	now := 0.0
	for cycle := 0; cycle < 20; cycle++ {
		n := 100 + rng.Intn(3000)
		for i := 0; i < n; i++ {
			d.push(now + rng.Float64()*10)
		}
		for i := 0; i < n/2; i++ {
			d.pop()
		}
		d.drain()
		now += 10
	}
	if d.cal.resizes == 0 {
		t.Fatal("bursty workload never resized the calendar; thresholds untested")
	}
}

// --- Calendar-specific edge cases -------------------------------------

// All events at one instant land in a single bucket regardless of
// width; pops must still come out in scheduling (seq) order and the
// width estimator must not divide toward zero.
func TestCalQueueAllEventsInOneBucket(t *testing.T) {
	c := newCalQueue()
	const n = 500 // well past several resize thresholds
	for i := 1; i <= n; i++ {
		c.push(&event{time: 42, seq: uint64(i)})
	}
	if c.width <= 0 || c.width != c.width /* NaN */ {
		t.Fatalf("degenerate same-time workload corrupted width: %g", c.width)
	}
	for i := 1; i <= n; i++ {
		ev := c.pop()
		if ev == nil || ev.seq != uint64(i) {
			t.Fatalf("pop %d: got %+v, want seq %d", i, ev, i)
		}
	}
	if c.pop() != nil {
		t.Fatal("queue not empty")
	}
}

// Pathological far-future timers: a near-future stream plus events
// scheduled eons ahead. The far events must route through the overflow
// lane (not dilate the calendar's width), migrate back as the position
// catches up, and pop in exact order.
func TestCalQueueFarFutureTimers(t *testing.T) {
	c := newCalQueue()
	var seq uint64
	push := func(at float64) {
		seq++
		c.push(&event{time: at, seq: seq})
	}
	for i := 0; i < 200; i++ {
		push(float64(i) * 1e-3)
		if i%10 == 0 {
			push(1e6 + float64(i)) // ~11 days of virtual time ahead
		}
	}
	if c.ovPushes == 0 {
		t.Fatal("far-future events never used the overflow lane")
	}
	var last *event
	n := 0
	for ev := c.pop(); ev != nil; ev = c.pop() {
		if last != nil && !evLess(last, ev) {
			t.Fatalf("pop order violated: (t=%g seq=%d) after (t=%g seq=%d)",
				ev.time, ev.seq, last.time, last.seq)
		}
		cp := *ev
		last = &cp
		n++
	}
	if n != int(seq) {
		t.Fatalf("popped %d events, pushed %d", n, seq)
	}
}

// Shrinking: draining a large population must walk the bucket count
// back down (and keep popping correctly while doing so).
func TestCalQueueShrinksAfterDrain(t *testing.T) {
	c := newCalQueue()
	for i := 1; i <= 4096; i++ {
		c.push(&event{time: float64(i) * 0.001, seq: uint64(i)})
	}
	grown := len(c.heads)
	if grown <= minCalBuckets {
		t.Fatalf("4096 events left bucket count at %d; grow threshold broken", grown)
	}
	for i := 1; i <= 4090; i++ {
		if ev := c.pop(); ev == nil || ev.seq != uint64(i) {
			t.Fatalf("pop %d wrong: %+v", i, ev)
		}
	}
	if len(c.heads) >= grown {
		t.Fatalf("bucket count stayed at %d after drain (was %d at peak)", len(c.heads), grown)
	}
}

// The scan must survive an empty year: a lone event far beyond the
// current position (but inside the bucket array's modulo range) is
// found by the direct search, and the position jump keeps order.
func TestCalQueueEmptyYearDirectSearch(t *testing.T) {
	c := newCalQueue()
	c.push(&event{time: 0.0001, seq: 1})
	if ev := c.pop(); ev.seq != 1 {
		t.Fatalf("pop got %+v", ev)
	}
	// Next event many years ahead in calendar terms, but below the
	// overflow horizon check at push time it may still go either way;
	// push several spread far apart to force empty-year scans.
	c.push(&event{time: 500, seq: 2})
	c.push(&event{time: 900, seq: 3})
	if ev := c.pop(); ev == nil || ev.seq != 2 {
		t.Fatalf("direct search pop got %+v, want seq 2", ev)
	}
	if ev := c.pop(); ev == nil || ev.seq != 3 {
		t.Fatalf("direct search pop got %+v, want seq 3", ev)
	}
}

// --- Engine-level differential ----------------------------------------

// TestEngineSchedulerDifferential runs two engines — calendar and heap —
// through an identical randomized At/AtFunc/After/Cancel/RunUntil
// workload and asserts the firing order (callback identity and time) is
// bit-for-bit identical, including same-time seq ties and
// cancel-after-recycle handles.
func TestEngineSchedulerDifferential(t *testing.T) {
	workloads := 300
	if testing.Short() {
		workloads = 50
	}
	for w := 0; w < workloads; w++ {
		type fired struct {
			id int
			at float64
		}
		run := func(kind SchedulerKind) []fired {
			rng := rand.New(rand.NewSource(int64(w)))
			e := NewEngineSched(kind)
			var log []fired
			var timers []Timer
			id := 0
			schedule := func() {
				id := id
				at := e.Now() + rng.Float64()*rng.Float64()*5
				if rng.Intn(10) == 0 {
					at = e.Now() // same-instant scheduling
				}
				if rng.Intn(12) == 0 {
					at = e.Now() + 1e4 + rng.Float64()*1e5 // far future
				}
				var tm Timer
				if rng.Intn(2) == 0 {
					tm = e.At(at, func() { log = append(log, fired{id, e.Now()}) })
				} else {
					tm = e.AtFunc(at, func(any) { log = append(log, fired{id, e.Now()}) }, nil)
				}
				timers = append(timers, tm)
			}
			for i := 0; i < 150; i++ {
				switch r := rng.Intn(10); {
				case r < 5:
					schedule()
					id++
				case r < 7 && len(timers) > 0:
					// Cancel a random handle — possibly stale (fired
					// and recycled), which must be a no-op.
					timers[rng.Intn(len(timers))].Cancel()
				case r < 9:
					e.RunUntil(e.Now() + rng.Float64()*3)
				default:
					e.Step()
				}
			}
			e.Run()
			return log
		}
		cal, heap := run(SchedCalendar), run(SchedHeap)
		if len(cal) != len(heap) {
			t.Fatalf("workload %d: calendar fired %d callbacks, heap %d", w, len(cal), len(heap))
		}
		for i := range cal {
			if cal[i] != heap[i] {
				t.Fatalf("workload %d: firing %d diverged: calendar %+v, heap %+v",
					w, i, cal[i], heap[i])
			}
		}
	}
}

// --- Timer semantics on the calendar ----------------------------------

// Cancel/Active must work for events resident in calendar buckets, in
// the far-future overflow lane, and for stale handles whose event has
// been recycled into a new scheduling.
func TestTimerCancelInBucketsAndOverflow(t *testing.T) {
	e := NewEngine()
	cq := e.sched.(*calQueue)

	ranBucket, ranOv := false, false
	tmBucket := e.At(0.001, func() { ranBucket = true })
	tmOv := e.At(1e6, func() { ranOv = true }) // far future: overflow lane
	if cq.ovPushes == 0 {
		t.Fatal("far-future timer did not route through the overflow lane")
	}
	if !tmBucket.Active() || !tmOv.Active() {
		t.Fatal("pending timers must be active in both lanes")
	}
	tmBucket.Cancel()
	tmOv.Cancel()
	if tmBucket.Active() || tmOv.Active() {
		t.Fatal("cancelled timers still active")
	}
	e.Run()
	if ranBucket || ranOv {
		t.Fatalf("cancelled timers ran: bucket=%v overflow=%v", ranBucket, ranOv)
	}
	if e.cancelled != 2 {
		t.Fatalf("engine released %d dead events, want 2", e.cancelled)
	}

	// Cancel-after-recycle: a stale handle must not kill the recycled
	// event, wherever it now lives.
	stale := e.At(e.Now()+0.001, func() {})
	e.Run()
	ran := false
	fresh := e.At(e.Now()+1e6, func() { ran = true }) // recycled into overflow
	stale.Cancel()
	if stale.Active() {
		t.Fatal("stale timer reports active after recycle")
	}
	if !fresh.Active() {
		t.Fatal("fresh overflow timer lost its pending state")
	}
	e.Run()
	if !ran {
		t.Fatal("stale Cancel killed a recycled overflow event")
	}
}

// A cancelled far-future timer beyond the RunUntil horizon must be
// released at the peek, exactly like the heap's behavior.
func TestRunUntilReleasesDeadOverflowEvents(t *testing.T) {
	e := NewEngine()
	var tms []Timer
	for i := 0; i < 50; i++ {
		tms = append(tms, e.At(1e6+float64(i), func() {}))
	}
	for _, tm := range tms {
		tm.Cancel()
	}
	e.RunUntil(1)
	if n := e.sched.len(); n != 0 {
		t.Fatalf("%d dead overflow events still queued after RunUntil", n)
	}
	if e.Now() != 1 {
		t.Fatalf("Now() = %v, want 1", e.Now())
	}
}

// Steady-state scheduling through the calendar must stay allocation
// free once the free list and bucket rings are warm — the same contract
// the heap-era engine had.
func TestCalQueueSteadyStateZeroAlloc(t *testing.T) {
	e := NewEngine()
	nop := func(any) {}
	// Warm up: drive the population up so resizes and the overflow
	// lane reach their high-water marks, then drain.
	for i := 0; i < 1000; i++ {
		e.AtFunc(float64(i)*0.001, nop, nil)
	}
	e.AtFunc(1e5, nop, nil) // park one far-future event
	e.RunUntil(10)
	allocs := testing.AllocsPerRun(1000, func() {
		e.AfterFunc(0.001, nop, nil)
		e.Step()
	})
	if allocs != 0 {
		t.Fatalf("%.1f allocs per schedule+step at steady state, want 0", allocs)
	}
}

// BenchmarkSchedSynthetic pits the two structures against a synthetic
// hold-model workload (the classic calendar-queue benchmark: pop one,
// push one at a random offset) at several steady populations. The
// recorded-trace benchmark lives in the repo root (BenchmarkScheduler)
// where the scenario package is importable.
func BenchmarkSchedSynthetic(b *testing.B) {
	for _, kind := range []SchedulerKind{SchedHeap, SchedCalendar} {
		for _, depth := range []int{64, 512, 4096} {
			b.Run(string(kind)+"/hold"+itoa(depth), func(b *testing.B) {
				rng := rand.New(rand.NewSource(1))
				s := newScheduler(kind)
				var seq uint64
				events := make([]*event, depth)
				for i := range events {
					events[i] = &event{}
				}
				for _, ev := range events {
					seq++
					ev.time, ev.seq = rng.Float64(), seq
					s.push(ev)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					ev := s.pop()
					seq++
					ev.time, ev.seq = ev.time+rng.Float64()*0.01, seq
					s.push(ev)
				}
			})
		}
	}
}

func itoa(n int) string {
	buf := [8]byte{}
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
