package sim

import "container/heap"

// scheduler is the engine's pending-event structure. Implementations
// must pop events in exactly ascending (time, pt, seq) order (evLess) —
// the engine's determinism guarantee — and must mark events with idx >= 0 while
// queued and idx == -1 once popped (Timer.Active reads it). Cancelled
// events are deleted lazily: they stay in the structure, still ordered,
// and the engine discards them at pop.
type scheduler interface {
	push(*event)
	pop() *event
	peek() *event
	len() int
}

// SchedulerKind selects the engine's pending-event structure.
type SchedulerKind string

const (
	// SchedCalendar is the default: the self-adapting calendar queue
	// (O(1) amortized schedule/dequeue, see calqueue.go).
	SchedCalendar SchedulerKind = "calendar"
	// SchedHeap is the container/heap binary heap the calendar queue
	// replaced, kept as the reference implementation: the differential
	// tests assert the calendar pops in exactly its order, and
	// qabench -sched / BenchmarkScheduler A/B against it.
	SchedHeap SchedulerKind = "heap"
)

// DefaultScheduler is the structure NewEngine uses. Set it once, before
// any engine is created (qabench -sched does, for A/B runs); both kinds
// produce bit-for-bit identical simulation results, so flipping it only
// changes speed.
var DefaultScheduler = SchedCalendar

func newScheduler(kind SchedulerKind) scheduler {
	switch kind {
	case SchedHeap:
		return &heapSched{}
	case SchedCalendar, "":
		return newCalQueue()
	}
	panic("sim: unknown scheduler kind " + string(kind))
}

// eventHeap orders events by time, then the scheduling-time tie key,
// then scheduling sequence — the reference (time, pt, seq) order every
// scheduler must reproduce (see evLess for why this equals the classic
// (time, seq) order on a lone engine).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	return evLess(h[i], h[j])
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.idx = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.idx = -1
	*h = old[:n-1]
	return ev
}

// heapSched adapts eventHeap to the scheduler interface.
type heapSched struct{ h eventHeap }

func (s *heapSched) push(ev *event) { heap.Push(&s.h, ev) }
func (s *heapSched) pop() *event {
	if len(s.h) == 0 {
		return nil
	}
	return heap.Pop(&s.h).(*event)
}
func (s *heapSched) peek() *event {
	if len(s.h) == 0 {
		return nil
	}
	return s.h[0]
}
func (s *heapSched) len() int { return len(s.h) }

// SchedOpKind tags one recorded event-queue operation.
type SchedOpKind uint8

const (
	// SchedPush records a schedule at Time.
	SchedPush SchedOpKind = iota
	// SchedPop records a dequeue of the minimum (live or cancelled —
	// lazy deletion means a cancel never restructures the queue, so the
	// push/pop stream alone reproduces the structure's full workload).
	SchedPop
)

// SchedOp is one recorded scheduler operation.
type SchedOp struct {
	Kind SchedOpKind
	Time float64
}

// SchedRecorder captures the engine's event-queue operations in
// execution order, so a real run's churn — its exact interleaving of
// schedules and dequeues, with the live depth and time deltas that
// implies — can be replayed against a bare scheduler structure
// (ReplaySched, BenchmarkScheduler). Attach with Engine.RecordSched
// before the run; recording costs one append per operation.
type SchedRecorder struct {
	Ops []SchedOp
}

// RecordSched attaches rec to the engine: every subsequent schedule and
// dequeue appends a SchedOp. Pass nil to stop recording.
func (e *Engine) RecordSched(rec *SchedRecorder) { e.rec = rec }

// ReplaySched replays a recorded operation stream against a fresh
// scheduler of the given kind and returns the number of events popped.
// Events are recycled through a local free list exactly like the
// engine's, so a replay at steady state exercises only the structure.
func ReplaySched(kind SchedulerKind, ops []SchedOp) int {
	s := newScheduler(kind)
	var seq uint64
	var free []*event
	pops := 0
	for _, op := range ops {
		switch op.Kind {
		case SchedPush:
			seq++
			var ev *event
			if n := len(free); n > 0 {
				ev = free[n-1]
				free[n-1] = nil
				free = free[:n-1]
			} else {
				ev = &event{}
			}
			ev.time, ev.seq = op.Time, seq
			s.push(ev)
		case SchedPop:
			if ev := s.pop(); ev != nil {
				pops++
				if len(free) < maxFreeEvents {
					free = append(free, ev)
				}
			}
		}
	}
	return pops
}
