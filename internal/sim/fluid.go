package sim

import (
	"fmt"

	"qav/internal/metrics"
)

// This file implements the hybrid fluid/packet model (DESIGN.md,
// "Hybrid fluid/packet simulation"): large background populations are
// simulated as aggregate AIMD rate processes — a handful of float
// updates per coupling step — while the configured foreground flows
// stay packet-level and exact. The two halves are coupled at the
// bottleneck in both directions:
//
//   - fluid -> packets: the aggregate's serviced bandwidth is reserved
//     on the link (Link.SetFluidRate), so foreground packets serialize
//     at the residual rate, and its backlog occupies part of the shared
//     buffer (FluidQueue), so foreground arrivals are dropped when the
//     background has filled the queue — exactly the two ways a real
//     background population displaces a foreground flow.
//
//   - packets -> fluid: the aggregate's available bandwidth is the
//     capacity left over by the foreground's measured arrival rate
//     (bytes offered to the shared buffer, admitted or not). Below
//     saturation that is simply the leftover; past saturation the
//     packet share shrinks to its FIFO proportion — a saturated FIFO
//     serves each side in proportion to its arrivals — so an
//     over-demanding background slows the foreground to its fair
//     share but can never starve it (the offered measure, unlike the
//     transmitted one, does not collapse when the foreground is
//     squeezed). The buffer splits the same way: the aggregate may
//     occupy at most its bandwidth share of the queue, and its
//     overflow drops are its congestion signal.
//
// The model is deliberately deterministic — no randomness, every update
// driven by the engine's virtual clock — so hybrid runs are exactly
// reproducible and bit-identical between the serial and the sharded
// execution paths (the Fluid steps on the bottleneck engine, whose
// packet event stream the sharded differential suite already holds to
// the serial order).

// FluidClassConfig describes one aggregate AIMD class: Flows congestion
// controlled flows (TCP or RAP — both are AIMD at this altitude)
// modeled as a single rate process.
type FluidClassConfig struct {
	Name       string  // label for reports ("tcp", "rap")
	Flows      int     // modeled population, > 0
	PacketSize int     // bytes; the additive-increase quantum
	RTT        float64 // zero-queue round-trip time, seconds
	// Beta is the multiplicative decrease applied to a flow that sees
	// loss (default 0.5, the TCP/RAP halving).
	Beta float64
	// InitialRate is the aggregate starting rate in bytes/s (default:
	// the class floor of one packet per RTT per flow).
	InitialRate float64
}

// FluidConfig configures a Fluid aggregate.
type FluidConfig struct {
	// Interval is the fluid<->packet coupling step in seconds (default
	// 10 ms). Each step exchanges one round of measurements between the
	// aggregate and the bottleneck.
	Interval float64
	// MaxShare caps the link fraction the aggregate may be served at
	// (default Link's MaxFluidShare); the packet path always keeps the
	// remainder.
	MaxShare float64
	Classes  []FluidClassConfig
}

// fluidClass is one class's live state.
type fluidClass struct {
	cfg  FluidClassConfig
	rate float64 // current aggregate send rate, bytes/s
	// holdUntil fences AIMD epochs: after a backoff neither a second
	// decrease nor additive increase applies until one (queue-inflated)
	// RTT has passed, mirroring a real AIMD sender's once-per-RTT
	// reaction.
	holdUntil float64
}

// Fluid is an aggregate AIMD background-traffic model attached to a
// bottleneck link and its (FluidQueue-wrapped) buffer. Construct with
// NewFluid, then Start before the engine runs. All state is owned by
// the link's engine: in a sharded run that is the bottleneck shard,
// and reads from other goroutines are only safe at barriers or after
// the run (the same access rules as the link itself).
type Fluid struct {
	eng      *Engine
	link     *Link
	q        *FluidQueue
	interval float64
	maxShare float64
	classes  []fluidClass

	backlog     float64 // fluid bytes queued at the bottleneck
	srvRate     float64 // EWMA of serviced fluid bandwidth, the link reservation
	lastOffered int64   // shared queue's offered packet bytes at the previous step
	lastAt      float64 // previous step's instant

	stepFn func()

	// Cumulative totals, single-writer (the engine thread); read them
	// at barriers or after the run.
	OfferedBytes float64
	ServedBytes  float64
	DroppedBytes float64
	Backoffs     int64
}

// NewFluid builds a fluid aggregate on eng, coupled to link and the
// shared buffer q. Zero config fields get defaults; invalid ones panic
// (construction-time errors, like the rest of the sim package).
func NewFluid(eng *Engine, link *Link, q *FluidQueue, cfg FluidConfig) *Fluid {
	if cfg.Interval <= 0 {
		cfg.Interval = 0.01
	}
	if cfg.MaxShare <= 0 || cfg.MaxShare > MaxFluidShare {
		cfg.MaxShare = MaxFluidShare
	}
	if len(cfg.Classes) == 0 {
		panic("sim: fluid aggregate needs at least one class")
	}
	f := &Fluid{
		eng:      eng,
		link:     link,
		q:        q,
		interval: cfg.Interval,
		maxShare: cfg.MaxShare,
		classes:  make([]fluidClass, len(cfg.Classes)),
	}
	for i, c := range cfg.Classes {
		if c.Flows <= 0 {
			panic(fmt.Sprintf("sim: fluid class %q needs a positive population, got %d", c.Name, c.Flows))
		}
		if c.PacketSize <= 0 {
			panic(fmt.Sprintf("sim: fluid class %q needs a positive packet size, got %d", c.Name, c.PacketSize))
		}
		if c.RTT <= 0 {
			panic(fmt.Sprintf("sim: fluid class %q needs a positive RTT, got %v", c.Name, c.RTT))
		}
		if c.Beta <= 0 || c.Beta >= 1 {
			c.Beta = 0.5
		}
		rate := c.InitialRate
		if floor := float64(c.Flows) * float64(c.PacketSize) / c.RTT; rate < floor {
			rate = floor
		}
		f.classes[i] = fluidClass{cfg: c, rate: rate}
	}
	f.stepFn = f.step
	return f
}

// Start schedules the coupling steps. The first step lands at 0.73 of
// an interval — an off-grid phase, so step instants never coincide with
// the millisecond-aligned flow starts or the sampler's ticks. A shared
// instant would be harmless dynamically but would make same-time event
// order part of the model, which the serial/sharded bit-identity
// argument deliberately avoids.
func (f *Fluid) Start() {
	f.eng.At(0.73*f.interval, f.stepFn)
}

// Rate returns the aggregate's current total send rate in bytes/s.
func (f *Fluid) Rate() float64 {
	r := 0.0
	for i := range f.classes {
		r += f.classes[i].rate
	}
	return r
}

// Backlog returns the fluid bytes currently queued at the bottleneck.
func (f *Fluid) Backlog() float64 { return f.backlog }

// Flows returns the total modeled background population.
func (f *Fluid) Flows() int {
	n := 0
	for i := range f.classes {
		n += f.classes[i].cfg.Flows
	}
	return n
}

// ClassRate returns the named class's current rate, or 0.
func (f *Fluid) ClassRate(name string) float64 {
	for i := range f.classes {
		if f.classes[i].cfg.Name == name {
			return f.classes[i].rate
		}
	}
	return 0
}

// Instrument registers the aggregate's counters and gauges on reg under
// "fluid.*". Hybrid runs only — the names never appear in pure
// packet-level reports.
func (f *Fluid) Instrument(reg *metrics.Registry) {
	reg.CounterFunc("fluid.offered.bytes", func() int64 { return int64(f.OfferedBytes) })
	reg.CounterFunc("fluid.served.bytes", func() int64 { return int64(f.ServedBytes) })
	reg.CounterFunc("fluid.dropped.bytes", func() int64 { return int64(f.DroppedBytes) })
	reg.CounterFunc("fluid.backoffs", func() int64 { return f.Backoffs })
	reg.GaugeFunc("fluid.rate", f.Rate)
	reg.GaugeFunc("fluid.backlog", func() float64 { return f.backlog })
	reg.GaugeFunc("fluid.reserved", f.link.FluidRate)
}

// step runs one coupling round; see the file comment for the model.
func (f *Fluid) step() {
	now := f.eng.Now()
	dt := now - f.lastAt
	f.lastAt = now
	capacity := f.link.Rate()

	// Measured foreground demand over the last step: bytes offered to
	// the shared buffer, admitted or not. Offered — not transmitted —
	// is the FIFO share basis; a throughput measure would collapse
	// together with the foreground it is supposed to protect.
	po := f.q.offeredPktBytes
	pktOffered := float64(po-f.lastOffered) / dt
	f.lastOffered = po

	// Aggregate arrivals this step.
	demand := 0.0
	for i := range f.classes {
		demand += f.classes[i].rate
	}
	arrivals := demand * dt
	f.OfferedBytes += arrivals

	// An early-dropping discipline (RED) thins the aggregate's arrivals
	// at its current drop probability — the same congestion signal the
	// packet flows receive — before anything reaches the buffer. The
	// expected-value thinning is deterministic; the discipline's own
	// randomness stays on the packet path.
	early := 0.0
	if f.q.earlyProb != nil {
		early = arrivals * f.q.earlyProb()
	}
	inflow := arrivals - early

	// Service: below saturation the aggregate gets the capacity the
	// packets leave over; past it, each side's share is proportional to
	// its arrival rate — how a saturated FIFO actually divides a link —
	// and the aggregate never takes more than MaxShare.
	pktTarget := pktOffered
	if total := pktOffered + demand; total > capacity {
		pktTarget = capacity * pktOffered / total
	}
	avail := capacity - pktTarget
	if lim := capacity * f.maxShare; avail > lim {
		avail = lim
	}
	served := f.backlog + inflow
	if lim := avail * dt; served > lim {
		served = lim
	}
	f.backlog += inflow - served
	f.ServedBytes += served

	// Shared-buffer overflow is the congestion signal. The buffer
	// splits like the bandwidth: the aggregate may use what the packet
	// queue does not occupy, capped at its bandwidth share of the
	// budget — without the cap a saturating background clamps its
	// backlog to exactly the free space every step and locks the
	// foreground out of the queue entirely.
	room := f.q.fluidRoom()
	if lim := float64(f.q.limit) * avail / capacity; room > lim {
		room = lim
	}
	dropped := early
	if f.backlog > room {
		dropped += f.backlog - room
		f.backlog = room
	}
	f.DroppedBytes += dropped
	lossRatio := 0.0
	if arrivals > 0 {
		lossRatio = dropped / arrivals
	}

	// Queueing delay inflates every class's RTT, exactly as it slows a
	// real AIMD sender's feedback loop.
	qdelay := (f.backlog + float64(f.q.PacketBytes())) / capacity

	for i := range f.classes {
		c := &f.classes[i]
		rtt := c.cfg.RTT + qdelay
		switch {
		case dropped > 0 && now >= c.holdUntil:
			// Multiplicative decrease, population-smoothed: each flow
			// that saw a drop this RTT halves (Beta), and the expected
			// fraction hit is the per-flow expected drop count — loss
			// ratio times the packets a flow sends in one RTT. A
			// desynchronized aggregate of many flows therefore decays
			// smoothly instead of halving in lockstep.
			perFlowPkts := c.rate * rtt / (float64(c.cfg.Flows) * float64(c.cfg.PacketSize))
			frac := lossRatio * perFlowPkts
			if frac > 1 {
				frac = 1
			}
			c.rate *= 1 - c.cfg.Beta*frac
			c.holdUntil = now + rtt
			f.Backoffs++
		case dropped == 0 && now >= c.holdUntil:
			// Additive increase: one packet per RTT per flow.
			c.rate += float64(c.cfg.Flows) * float64(c.cfg.PacketSize) / rtt * dt
		}
		// A real AIMD window never shrinks below one packet, and a
		// loss-bound flow keeps retransmitting it: the aggregate's send
		// rate floors at one packet per RTT per flow. The floor's RTT
		// is the base plus *half* the current queueing delay — over a
		// backoff-and-drain cycle the queue a retransmitting flow sees
		// averages about half the instantaneous one. The distinction
		// only matters in the sub-packet regime (per-flow share below
		// one packet per RTT), where packet-level fleets measurably
		// keep offering ~2x the link at ~45% loss: flooring on the
		// fully inflated RTT understates that pressure (a packet
		// foreground then claims a multiple of its fair share), while
		// flooring on the bare base RTT overstates it.
		floorRTT := c.cfg.RTT + 0.5*qdelay
		if floor := float64(c.cfg.Flows) * float64(c.cfg.PacketSize) / floorRTT; c.rate < floor {
			c.rate = floor
		}
	}

	// Couple back: reserve the serviced bandwidth on the link (EWMA to
	// damp the measure-then-reserve loop) and publish the backlog to
	// the shared buffer.
	f.srvRate += 0.5 * (served/dt - f.srvRate)
	f.link.SetFluidRate(f.srvRate)
	f.q.SetFluidBytes(f.backlog)

	f.eng.At(now+f.interval, f.stepFn)
}

// FluidQueue couples a fluid aggregate's backlog into a packet queue's
// byte budget: the wrapped queue and the aggregate share one buffer of
// limit bytes, each may use what the other does not, and both count
// their own overflow as drops. Bytes reports the total occupancy —
// fluid plus packets — so queue traces and RED-style observers see the
// buffer a real mixed population would produce. The inner queue keeps
// its own drop policy (DropTail or RED) for the packet traffic.
type FluidQueue struct {
	inner      Queue
	limit      int
	fluidBytes float64
	drops      int64 // packet drops due to fluid occupancy

	// offeredPktBytes accumulates every Enqueue attempt's size, admitted
	// or not: the foreground arrival measure Fluid.step divides the
	// link by.
	offeredPktBytes int64

	// earlyProb, when the inner discipline drops early (RED), reports
	// its current drop probability so Fluid.step can thin the
	// aggregate's arrivals at the same rate.
	earlyProb func() float64
}

// earlyDropQueue is the optional discipline interface a FluidQueue
// couples to: RED implements it. SetAuxBytes folds the fluid backlog
// into the discipline's averaged occupancy; EarlyDropProb exposes the
// congestion signal back to the aggregate.
type earlyDropQueue interface {
	SetAuxBytes(func() float64)
	EarlyDropProb() float64
}

// NewFluidQueue wraps inner with a shared byte budget of limit.
func NewFluidQueue(inner Queue, limit int) *FluidQueue {
	if limit <= 0 {
		panic("sim: FluidQueue limit must be positive")
	}
	q := &FluidQueue{inner: inner, limit: limit}
	if ed, ok := inner.(earlyDropQueue); ok {
		ed.SetAuxBytes(q.FluidBytes)
		q.earlyProb = ed.EarlyDropProb
	}
	return q
}

// SetFluidBytes publishes the aggregate's current backlog; called by
// Fluid at each coupling step.
func (q *FluidQueue) SetFluidBytes(b float64) {
	if b < 0 {
		b = 0
	}
	q.fluidBytes = b
}

// FluidBytes returns the published fluid backlog.
func (q *FluidQueue) FluidBytes() float64 { return q.fluidBytes }

// PacketBytes returns the packet-only occupancy (the inner queue's).
func (q *FluidQueue) PacketBytes() int { return q.inner.Bytes() }

// fluidRoom is the buffer space the packet queue leaves for the fluid.
func (q *FluidQueue) fluidRoom() float64 {
	room := float64(q.limit - q.inner.Bytes())
	if room < 0 {
		room = 0
	}
	return room
}

// Enqueue implements Queue: a packet is admitted only if it fits next
// to the fluid backlog in the shared budget, then subjected to the
// inner queue's own policy.
func (q *FluidQueue) Enqueue(p *Packet) bool {
	q.offeredPktBytes += int64(p.Size)
	if float64(q.inner.Bytes()+p.Size)+q.fluidBytes > float64(q.limit) {
		q.drops++
		return false
	}
	return q.inner.Enqueue(p)
}

// Dequeue implements Queue.
func (q *FluidQueue) Dequeue() *Packet { return q.inner.Dequeue() }

// Len implements Queue (packets only; the fluid has no packet count).
func (q *FluidQueue) Len() int { return q.inner.Len() }

// Bytes implements Queue: total shared-buffer occupancy.
func (q *FluidQueue) Bytes() int { return q.inner.Bytes() + int(q.fluidBytes) }

// Drops implements Queue: the inner policy's drops plus the packets
// refused for fluid occupancy.
func (q *FluidQueue) Drops() int64 { return q.inner.Drops() + q.drops }
