package sim

import (
	"math"
	"testing"
)

// hybridRig is one bottleneck with a FluidQueue-wrapped DropTail and a
// fluid aggregate attached — the minimal hybrid coupling, no dumbbell.
type hybridRig struct {
	eng   *Engine
	q     *FluidQueue
	link  *Link
	fluid *Fluid
}

func newHybridRig(rate float64, queueBytes int, cfg FluidConfig) *hybridRig {
	e := NewEngine()
	fq := NewFluidQueue(NewDropTail(queueBytes), queueBytes)
	l := NewLink(e, fq, rate, 0.01)
	f := NewFluid(e, l, fq, cfg)
	f.Start()
	return &hybridRig{eng: e, q: fq, link: l, fluid: f}
}

func TestLinkSetFluidRateClamped(t *testing.T) {
	e := NewEngine()
	q := NewDropTail(1 << 20)
	l := NewLink(e, q, 1000, 0)

	// Over-capacity requests clamp to MaxFluidShare, never panic: the
	// caller's reservation is a measurement that may legitimately reach
	// the capacity.
	l.SetFluidRate(2000)
	if want := 1000 * MaxFluidShare; l.FluidRate() != want {
		t.Fatalf("FluidRate after over-reserve = %v, want clamp to %v", l.FluidRate(), want)
	}
	l.SetFluidRate(-5)
	if l.FluidRate() != 0 {
		t.Fatalf("FluidRate after negative reserve = %v, want 0", l.FluidRate())
	}

	// Packets still serialize — at the residual rate — even at the cap.
	l.SetFluidRate(2000)
	var at float64
	p := mkPkt(1, 100)
	p.Dst = ReceiverFunc(func(*Packet) { at = e.Now() })
	l.Offer(p)
	e.Run()
	want := 100 / (1000 * (1 - MaxFluidShare)) // 100 B at the 2% residual
	if math.Abs(at-want) > 1e-9 {
		t.Fatalf("delivery at %v, want %v", at, want)
	}
}

func TestLinkResidualRateSerialization(t *testing.T) {
	e := NewEngine()
	q := NewDropTail(1 << 20)
	l := NewLink(e, q, 1000, 0)
	l.SetFluidRate(500)

	var at float64
	p := mkPkt(1, 100)
	p.Dst = ReceiverFunc(func(*Packet) { at = e.Now() })
	l.Offer(p)
	e.Run()
	if math.Abs(at-0.2) > 1e-9 { // 100 B at the 500 B/s residual
		t.Fatalf("delivery at %v, want 0.2", at)
	}
}

func TestFluidQueueSharedBudget(t *testing.T) {
	inner := NewDropTail(1000)
	fq := NewFluidQueue(inner, 1000)

	// Fluid backlog fills most of the budget: a packet that no longer
	// fits is refused and counted on the wrapper.
	fq.SetFluidBytes(950)
	if fq.Enqueue(mkPkt(1, 100)) {
		t.Fatal("enqueue succeeded past the shared budget")
	}
	if fq.Drops() != 1 {
		t.Fatalf("Drops = %d, want 1", fq.Drops())
	}
	// Room freed: the same packet fits, subject to the inner policy.
	fq.SetFluidBytes(100)
	if !fq.Enqueue(mkPkt(2, 100)) {
		t.Fatal("enqueue failed with room available")
	}
	if fq.Bytes() != 200 { // 100 packet + 100 fluid
		t.Fatalf("Bytes = %d, want 200", fq.Bytes())
	}
	if fq.PacketBytes() != 100 {
		t.Fatalf("PacketBytes = %d, want 100", fq.PacketBytes())
	}
	if got := fq.fluidRoom(); got != 900 {
		t.Fatalf("fluidRoom = %v, want 900", got)
	}
}

func TestFluidAloneConvergesToCapacity(t *testing.T) {
	const rate = 1_000_000.0
	rig := newHybridRig(rate, 64_000, FluidConfig{
		Classes: []FluidClassConfig{{
			Name: "tcp", Flows: 500, PacketSize: 512, RTT: 0.04,
		}},
	})
	const dur = 30.0
	rig.eng.RunUntil(dur)

	f := rig.fluid
	got := f.ServedBytes / dur
	// With no packet traffic the aggregate owns MaxFluidShare of the
	// link; AIMD should fill most of it.
	if got < 0.8*rate || got > MaxFluidShare*rate*1.001 {
		t.Fatalf("fluid goodput %.0f B/s, want within [0.8, %.2f] of %.0f", got, MaxFluidShare, rate)
	}
	if f.Backoffs == 0 {
		t.Fatal("an over-demanding aggregate never backed off")
	}
	if f.DroppedBytes <= 0 {
		t.Fatal("no overflow drops despite a saturating aggregate")
	}
	if f.OfferedBytes < f.ServedBytes {
		t.Fatalf("offered %.0f < served %.0f", f.OfferedBytes, f.ServedBytes)
	}
}

func TestFluidBacklogBoundedByBuffer(t *testing.T) {
	const queueBytes = 16_000
	rig := newHybridRig(500_000, queueBytes, FluidConfig{
		Classes: []FluidClassConfig{{
			Name: "tcp", Flows: 1000, PacketSize: 512, RTT: 0.02,
		}},
	})
	// Check the invariant at every coupling step, not just at the end.
	maxSeen := 0.0
	var watch func()
	watch = func() {
		if b := rig.fluid.Backlog(); b > maxSeen {
			maxSeen = b
		}
		rig.eng.After(0.005, watch)
	}
	rig.eng.At(0, watch)
	rig.eng.RunUntil(10)
	if maxSeen > queueBytes+1e-6 {
		t.Fatalf("fluid backlog peaked at %.0f, buffer is %d", maxSeen, queueBytes)
	}
	if maxSeen == 0 {
		t.Fatal("a saturating aggregate never queued")
	}
}

func TestFluidSharesLinkWithPacketForeground(t *testing.T) {
	const rate = 1_000_000.0
	// 50 flows: the class floor (one packet per RTT per flow, 640 KB/s)
	// plus the foreground fits in the link, so AIMD probes around the
	// leftover instead of pinning at the floor.
	rig := newHybridRig(rate, 64_000, FluidConfig{
		Classes: []FluidClassConfig{{
			Name: "tcp", Flows: 50, PacketSize: 512, RTT: 0.04,
		}},
	})

	// A constant-rate packet foreground at 30% of the link, 512 B every
	// ~1.7 ms.
	const fgRate = 0.3 * rate
	const pktSize = 512
	interval := pktSize / fgRate
	delivered := 0
	dst := ReceiverFunc(func(p *Packet) { delivered += p.Size })
	var sendFn func()
	sendFn = func() {
		p := rig.eng.Pool().Get()
		p.Size = pktSize
		p.Kind = Data
		p.Dst = dst
		rig.link.Offer(p)
		rig.eng.After(interval, sendFn)
	}
	rig.eng.At(0, sendFn)

	const dur = 30.0
	rig.eng.RunUntil(dur)

	fgGot := float64(delivered) / dur
	flGot := rig.fluid.ServedBytes / dur
	// The foreground's constant offered load should get through nearly
	// intact — the fluid reservation is measured *around* it — while the
	// aggregate soaks up most of the rest.
	if fgGot < 0.8*fgRate {
		t.Fatalf("foreground goodput %.0f B/s, want >= 80%% of its %.0f offered", fgGot, fgRate)
	}
	if flGot < 0.4*rate {
		t.Fatalf("fluid goodput %.0f B/s, want a substantial share of the %.0f residual", flGot, rate)
	}
	if total := fgGot + flGot; total > rate*1.001 {
		t.Fatalf("combined goodput %.0f exceeds link capacity %.0f", total, rate)
	}
	if rig.link.FluidRate() <= 0 {
		t.Fatal("no bandwidth reserved despite an active aggregate")
	}
}

func TestFluidSaturationKeepsForegroundProportionalShare(t *testing.T) {
	const rate = 1_000_000.0
	const queueBytes = 64_000
	// 300 flows' floor demand (~2.1 MB/s at the drain-cycle RTT) exceeds
	// the link outright: the background saturates permanently. A
	// saturated FIFO still serves the foreground its arrival-proportional
	// share — cap * fg/(fg + demand) — so the foreground must land near
	// that share, well above the 2% MaxFluidShare residual, not be
	// squeezed out of the buffer.
	rig := newHybridRig(rate, queueBytes, FluidConfig{
		Classes: []FluidClassConfig{{
			Name: "tcp", Flows: 300, PacketSize: 512, RTT: 0.04,
		}},
	})

	const fgRate = 0.3 * rate
	const pktSize = 512
	interval := pktSize / fgRate
	delivered := 0
	dst := ReceiverFunc(func(p *Packet) { delivered += p.Size })
	var sendFn func()
	sendFn = func() {
		p := rig.eng.Pool().Get()
		p.Size = pktSize
		p.Kind = Data
		p.Dst = dst
		rig.link.Offer(p)
		rig.eng.After(interval, sendFn)
	}
	rig.eng.At(0, sendFn)

	const dur = 30.0
	rig.eng.RunUntil(dur)

	fgGot := float64(delivered) / dur
	flGot := rig.fluid.ServedBytes / dur
	// The background's pinned demand: one packet per flow per
	// drain-cycle RTT (base + half the queueing delay of the
	// saturation-pinned full buffer).
	floor := 300 * 512 / (0.04 + 0.5*queueBytes/rate)
	share := rate * fgRate / (fgRate + floor)
	if fgGot < 0.6*share || fgGot > 1.5*share {
		t.Fatalf("foreground goodput %.0f B/s under a saturating background, want near its %.0f FIFO share", fgGot, share)
	}
	if flGot < 0.5*rate {
		t.Fatalf("fluid goodput %.0f B/s, want the majority of the link", flGot)
	}
	if total := fgGot + flGot; total > rate*1.001 {
		t.Fatalf("combined goodput %.0f exceeds link capacity %.0f", total, rate)
	}
}

func TestNewFluidValidation(t *testing.T) {
	e := NewEngine()
	fq := NewFluidQueue(NewDropTail(1000), 1000)
	l := NewLink(e, fq, 1000, 0)

	for name, cfg := range map[string]FluidConfig{
		"no classes":   {},
		"zero flows":   {Classes: []FluidClassConfig{{Name: "x", PacketSize: 512, RTT: 0.1}}},
		"zero size":    {Classes: []FluidClassConfig{{Name: "x", Flows: 1, RTT: 0.1}}},
		"zero rtt":     {Classes: []FluidClassConfig{{Name: "x", Flows: 1, PacketSize: 512}}},
		"negative rtt": {Classes: []FluidClassConfig{{Name: "x", Flows: 1, PacketSize: 512, RTT: -1}}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: NewFluid did not panic", name)
				}
			}()
			NewFluid(e, l, fq, cfg)
		}()
	}

	// Defaults: rate floor, beta, interval.
	f := NewFluid(e, l, fq, FluidConfig{
		Classes: []FluidClassConfig{{Name: "tcp", Flows: 10, PacketSize: 512, RTT: 0.1}},
	})
	if want := 10 * 512 / 0.1; f.Rate() != want {
		t.Fatalf("default initial rate %v, want the class floor %v", f.Rate(), want)
	}
	if f.Flows() != 10 {
		t.Fatalf("Flows = %d, want 10", f.Flows())
	}
	if f.ClassRate("tcp") != f.Rate() {
		t.Fatalf("ClassRate(tcp) = %v, want %v", f.ClassRate("tcp"), f.Rate())
	}
	if f.ClassRate("nope") != 0 {
		t.Fatalf("ClassRate(nope) = %v, want 0", f.ClassRate("nope"))
	}
}
