package sim

import (
	"fmt"

	"qav/internal/metrics"
)

// LinkOut receives packets leaving a link: Deliver is called at
// transmit-start time with the absolute instant the packet exits the
// far end (serialization + propagation already added), Drop with a
// packet the queue refused. The default output schedules delivery on
// the link's own engine and releases drops to its pool — exactly the
// pre-hook behavior, event for event. The sharded dumbbell substitutes
// a mailbox emitter so both paths cross the shard boundary at the next
// time barrier instead.
type LinkOut interface {
	Deliver(at float64, p *Packet)
	Drop(p *Packet)
}

// Link models a store-and-forward output link fed by a Queue: packets are
// serialized at Rate bytes/s and then delayed by the propagation Delay
// before being handed to their destination Receiver.
type Link struct {
	eng   *Engine
	queue Queue
	rate  float64 // bytes per second
	delay float64 // propagation delay, seconds

	// out receives finished packets (deliveries and drops); defaults to
	// the engine-local engineOut.
	out LinkOut

	// freeAt is when the current serialization finishes; the link is
	// busy while Now() < freeAt. wake is the pending "link free" event,
	// armed only when a packet is actually waiting, so an uncongested
	// link costs one event per packet instead of two.
	freeAt float64
	wake   Timer

	// fluidRate is the bandwidth currently reserved by a hybrid fluid
	// aggregate (SetFluidRate); packets serialize at the residual
	// rate - fluidRate. Zero outside hybrid runs, where the residual is
	// bit-identical to the full rate.
	fluidRate float64

	// deliverFn/txDoneFn are bound once at construction so the
	// per-packet events schedule via AtFunc without minting closures.
	deliverFn func(any)
	txDoneFn  func(any)

	// TxBytes counts bytes successfully transmitted.
	TxBytes int64
	// TxPackets counts packets successfully transmitted.
	TxPackets int64

	// offered counts Offer calls (enqueue attempts); drops live on the
	// queue. Plain field: the engine is single-threaded.
	offered int64

	// delayHist, when instrumented, observes per-packet queueing delay
	// (enqueue to start of serialization). flowDelay optionally splits
	// the same observation per flow; both are created at registration
	// time so the record path only indexes. Single-writer local
	// histograms: the engine thread is the only writer, so each
	// observation is a plain array increment.
	delayHist *metrics.LocalHistogram
	flowDelay []*metrics.LocalHistogram
}

// NewLink creates a link draining q at rate bytes/s with propagation
// delay seconds.
func NewLink(eng *Engine, q Queue, rate, delay float64) *Link {
	if rate <= 0 {
		panic("sim: link rate must be positive")
	}
	if delay < 0 {
		panic("sim: link delay must be non-negative")
	}
	l := &Link{eng: eng, queue: q, rate: rate, delay: delay}
	l.deliverFn = l.deliver
	l.txDoneFn = l.txDone
	l.out = engineOut{l}
	return l
}

// SetOut replaces the link's output. Call before the simulation starts;
// the default engineOut keeps the serial single-engine behavior.
func (l *Link) SetOut(out LinkOut) { l.out = out }

// engineOut is the default LinkOut: delivery as one precomputed event
// on the link's own engine, drops released to its pool.
type engineOut struct{ l *Link }

func (o engineOut) Deliver(at float64, p *Packet) { o.l.eng.AtFunc(at, o.l.deliverFn, p) }
func (o engineOut) Drop(p *Packet)                { o.l.eng.pool.Put(p) }

// Rate returns the link bandwidth in bytes per second.
func (l *Link) Rate() float64 { return l.rate }

// MaxFluidShare caps the fraction of a link a fluid aggregate may
// reserve: the packet path always retains at least 2% of the capacity,
// so a background population that out-demands the link slows the
// foreground down arbitrarily far but can never wedge it (a reserved
// rate equal to the capacity would make serialization time infinite).
const MaxFluidShare = 0.98

// SetFluidRate reserves r bytes/s of the link for a fluid traffic
// aggregate; subsequent packet serializations run at the residual
// Rate() - r. Requests are clamped into [0, MaxFluidShare*Rate()] —
// never rejected — because the caller's reservation is a measurement
// (the aggregate's serviced bandwidth) that may legitimately approach
// the capacity when the background population dwarfs the packet
// foreground. Packets already being serialized keep their computed
// finish time; the new rate applies from the next dequeue.
func (l *Link) SetFluidRate(r float64) {
	if r < 0 {
		r = 0
	}
	if max := l.rate * MaxFluidShare; r > max {
		r = max
	}
	l.fluidRate = r
}

// FluidRate returns the currently reserved fluid bandwidth in bytes/s.
func (l *Link) FluidRate() float64 { return l.fluidRate }

// Delay returns the propagation delay in seconds.
func (l *Link) Delay() float64 { return l.delay }

// Instrument registers the link's transmit and queue statistics on reg
// and enables the aggregate queueing-delay histogram. Counters and byte
// gauges publish existing single-writer fields at snapshot time (see
// Engine.Instrument for the synchronization contract); the histogram is
// the only per-packet record added, one plain bucket increment per
// dequeue (a local histogram — the engine thread is its sole writer).
func (l *Link) Instrument(reg *metrics.Registry) {
	reg.CounterFunc("link.tx.packets", func() int64 { return l.TxPackets })
	reg.CounterFunc("link.tx.bytes", func() int64 { return l.TxBytes })
	reg.CounterFunc("queue.offered", func() int64 { return l.offered })
	reg.CounterFunc("queue.dropped", func() int64 { return l.queue.Drops() })
	reg.GaugeFunc("queue.bytes", func() float64 { return float64(l.queue.Bytes()) })
	reg.GaugeFunc("queue.len", func() float64 { return float64(l.queue.Len()) })
	l.delayHist = reg.LocalHistogram("queue.delay", metrics.HistogramOpts{})
}

// InstrumentFlows additionally splits the queueing-delay histogram per
// flow for FlowIDs in [0, n): packets of flow f observe into
// "queue.delay.f<f>" alongside the aggregate histogram. Call it at
// construction time, after the flow count is known.
func (l *Link) InstrumentFlows(reg *metrics.Registry, n int) {
	l.flowDelay = make([]*metrics.LocalHistogram, n)
	for f := 0; f < n; f++ {
		l.flowDelay[f] = reg.LocalHistogram(fmt.Sprintf("queue.delay.f%d", f), metrics.HistogramOpts{})
	}
}

// Offer enqueues p and starts transmission if the link is idle. A
// packet the queue drops is released back to the engine's pool.
func (l *Link) Offer(p *Packet) {
	l.offered++
	if !l.queue.Enqueue(p) {
		l.out.Drop(p)
		return
	}
	p.enqAt = l.eng.Now()
	if l.wake.Active() {
		// A link-free event is already armed (and may be firing in this
		// very instant): it owns the next dequeue. Transmitting here too
		// would overlap serializations.
		return
	}
	if l.eng.Now() >= l.freeAt {
		l.transmitNext()
	} else {
		// Busy, and nothing will revisit the queue when serialization
		// ends: arm the link-free event now.
		l.wake = l.eng.AtFunc(l.freeAt, l.txDoneFn, nil)
	}
}

func (l *Link) transmitNext() {
	p := l.queue.Dequeue()
	if p == nil {
		return
	}
	txTime := float64(p.Size) / (l.rate - l.fluidRate)
	l.TxBytes += int64(p.Size)
	l.TxPackets++
	if l.delayHist != nil {
		d := l.eng.Now() - p.enqAt
		l.delayHist.Observe(d)
		if uint(p.FlowID) < uint(len(l.flowDelay)) {
			l.flowDelay[p.FlowID].Observe(d)
		}
	}
	// The link is free to start the next packet as soon as serialization
	// finishes; delivery lands after serialization + propagation. Both
	// instants are known now, so the delivery event is scheduled directly
	// instead of chaining a second event off the serialization one — no
	// per-packet closures, and no second event at all when the queue is
	// empty (the next Offer restarts the link).
	l.freeAt = l.eng.Now() + txTime
	if l.queue.Len() > 0 {
		l.wake = l.eng.AtFunc(l.freeAt, l.txDoneFn, nil)
	}
	l.out.Deliver(l.freeAt+l.delay, p)
}

// txDone fires when serialization finishes: the link may start the next
// queued packet.
func (l *Link) txDone(any) { l.transmitNext() }

// deliver hands the packet to its destination and releases it. The
// receiver borrows the packet only for the duration of Recv (see
// PacketPool).
func (l *Link) deliver(arg any) {
	p := arg.(*Packet)
	if p.Dst != nil {
		p.Dst.Recv(p)
	}
	l.eng.pool.Put(p)
}
