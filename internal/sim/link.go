package sim

// Link models a store-and-forward output link fed by a Queue: packets are
// serialized at Rate bytes/s and then delayed by the propagation Delay
// before being handed to their destination Receiver.
type Link struct {
	eng   *Engine
	queue Queue
	rate  float64 // bytes per second
	delay float64 // propagation delay, seconds
	busy  bool

	// TxBytes counts bytes successfully transmitted.
	TxBytes int64
	// TxPackets counts packets successfully transmitted.
	TxPackets int64
}

// NewLink creates a link draining q at rate bytes/s with propagation
// delay seconds.
func NewLink(eng *Engine, q Queue, rate, delay float64) *Link {
	if rate <= 0 {
		panic("sim: link rate must be positive")
	}
	if delay < 0 {
		panic("sim: link delay must be non-negative")
	}
	return &Link{eng: eng, queue: q, rate: rate, delay: delay}
}

// Rate returns the link bandwidth in bytes per second.
func (l *Link) Rate() float64 { return l.rate }

// Delay returns the propagation delay in seconds.
func (l *Link) Delay() float64 { return l.delay }

// Offer enqueues p and starts transmission if the link is idle. The
// packet is silently discarded if the queue drops it.
func (l *Link) Offer(p *Packet) {
	if !l.queue.Enqueue(p) {
		return
	}
	if !l.busy {
		l.transmitNext()
	}
}

func (l *Link) transmitNext() {
	p := l.queue.Dequeue()
	if p == nil {
		l.busy = false
		return
	}
	l.busy = true
	txTime := float64(p.Size) / l.rate
	l.TxBytes += int64(p.Size)
	l.TxPackets++
	// Delivery happens after serialization + propagation; the link is
	// free to start the next packet as soon as serialization finishes.
	l.eng.After(txTime, func() {
		dst := p.Dst
		l.eng.After(l.delay, func() {
			if dst != nil {
				dst.Recv(p)
			}
		})
		l.transmitNext()
	})
}
