package sim

// Queue buffers packets ahead of a link. Implementations decide the drop
// policy; the link only calls Dequeue.
type Queue interface {
	// Enqueue offers a packet to the queue. It returns false if the
	// packet was dropped.
	Enqueue(p *Packet) bool
	// Dequeue removes and returns the packet at the head, or nil.
	Dequeue() *Packet
	// Len returns the number of queued packets.
	Len() int
	// Bytes returns the number of queued bytes.
	Bytes() int
	// Drops returns the cumulative number of dropped packets.
	Drops() int64
}

// DropTail is a FIFO queue with a byte-capacity limit, the queue
// discipline the paper's ns-2 scenarios use at the bottleneck. Packets
// live in a ring buffer: dequeuing advances the head index instead of
// reslicing from the front, so long-lived queues reuse one backing array
// instead of pinning consumed prefixes until the next realloc. The ring
// is always a power of two so wrap-around is a mask, not a divide — the
// enqueue/dequeue pair sits on the per-packet hot path.
type DropTail struct {
	limit   int // bytes
	ring    []*Packet
	mask    int // len(ring)-1; ring length is always a power of two
	head    int // index of the oldest packet
	count   int
	bytes   int
	dropped int64
}

// NewDropTail returns a FIFO queue holding at most limit bytes.
func NewDropTail(limit int) *DropTail {
	if limit <= 0 {
		panic("sim: DropTail limit must be positive")
	}
	return &DropTail{limit: limit}
}

// Enqueue implements Queue. Arriving packets that would exceed the byte
// limit are dropped (tail drop).
func (q *DropTail) Enqueue(p *Packet) bool {
	if q.bytes+p.Size > q.limit {
		q.dropped++
		return false
	}
	if q.count == len(q.ring) {
		q.grow()
	}
	q.ring[(q.head+q.count)&q.mask] = p
	q.count++
	q.bytes += p.Size
	return true
}

// grow doubles the ring (always to a power of two), unwrapping the
// occupied span to the front.
func (q *DropTail) grow() {
	next := make([]*Packet, max(8, 2*len(q.ring)))
	for i := 0; i < q.count; i++ {
		next[i] = q.ring[(q.head+i)&q.mask]
	}
	q.ring = next
	q.mask = len(next) - 1
	q.head = 0
}

// Dequeue implements Queue.
func (q *DropTail) Dequeue() *Packet {
	if q.count == 0 {
		return nil
	}
	p := q.ring[q.head]
	q.ring[q.head] = nil
	q.head = (q.head + 1) & q.mask
	q.count--
	q.bytes -= p.Size
	return p
}

// Len implements Queue.
func (q *DropTail) Len() int { return q.count }

// Bytes implements Queue.
func (q *DropTail) Bytes() int { return q.bytes }

// Drops implements Queue.
func (q *DropTail) Drops() int64 { return q.dropped }
