package sim

// Queue buffers packets ahead of a link. Implementations decide the drop
// policy; the link only calls Dequeue.
type Queue interface {
	// Enqueue offers a packet to the queue. It returns false if the
	// packet was dropped.
	Enqueue(p *Packet) bool
	// Dequeue removes and returns the packet at the head, or nil.
	Dequeue() *Packet
	// Len returns the number of queued packets.
	Len() int
	// Bytes returns the number of queued bytes.
	Bytes() int
	// Drops returns the cumulative number of dropped packets.
	Drops() int64
}

// DropTail is a FIFO queue with a byte-capacity limit, the queue
// discipline the paper's ns-2 scenarios use at the bottleneck.
type DropTail struct {
	limit   int // bytes
	pkts    []*Packet
	bytes   int
	dropped int64
}

// NewDropTail returns a FIFO queue holding at most limit bytes.
func NewDropTail(limit int) *DropTail {
	if limit <= 0 {
		panic("sim: DropTail limit must be positive")
	}
	return &DropTail{limit: limit}
}

// Enqueue implements Queue. Arriving packets that would exceed the byte
// limit are dropped (tail drop).
func (q *DropTail) Enqueue(p *Packet) bool {
	if q.bytes+p.Size > q.limit {
		q.dropped++
		return false
	}
	q.pkts = append(q.pkts, p)
	q.bytes += p.Size
	return true
}

// Dequeue implements Queue.
func (q *DropTail) Dequeue() *Packet {
	if len(q.pkts) == 0 {
		return nil
	}
	p := q.pkts[0]
	q.pkts[0] = nil
	q.pkts = q.pkts[1:]
	q.bytes -= p.Size
	return p
}

// Len implements Queue.
func (q *DropTail) Len() int { return len(q.pkts) }

// Bytes implements Queue.
func (q *DropTail) Bytes() int { return q.bytes }

// Drops implements Queue.
func (q *DropTail) Drops() int64 { return q.dropped }
