package sim

import (
	"math"
	"testing"
)

func TestLinkSerializationAndDelay(t *testing.T) {
	e := NewEngine()
	q := NewDropTail(1 << 20)
	l := NewLink(e, q, 1000 /* B/s */, 0.05)

	var arrivals []float64
	dst := ReceiverFunc(func(p *Packet) { arrivals = append(arrivals, e.Now()) })

	// Two 100-byte packets offered back to back at t=0: the first arrives
	// at 0.1s tx + 0.05s prop = 0.15; the second finishes serialization at
	// 0.2 and arrives at 0.25.
	p1 := mkPkt(1, 100)
	p1.Dst = dst
	p2 := mkPkt(2, 100)
	p2.Dst = dst
	l.Offer(p1)
	l.Offer(p2)
	e.Run()

	want := []float64{0.15, 0.25}
	if len(arrivals) != 2 {
		t.Fatalf("got %d arrivals, want 2", len(arrivals))
	}
	for i := range want {
		if math.Abs(arrivals[i]-want[i]) > 1e-9 {
			t.Fatalf("arrival %d at %v, want %v", i, arrivals[i], want[i])
		}
	}
	if l.TxPackets != 2 || l.TxBytes != 200 {
		t.Fatalf("tx counters %d pkts / %d bytes, want 2/200", l.TxPackets, l.TxBytes)
	}
}

func TestLinkThroughputMatchesRate(t *testing.T) {
	e := NewEngine()
	q := NewDropTail(1 << 20)
	const rate = 12500.0 // 100 Kb/s
	l := NewLink(e, q, rate, 0.01)

	received := 0
	dst := ReceiverFunc(func(p *Packet) { received += p.Size })

	// Offer far more than the link can carry in 10 s; verify goodput.
	for i := 0; i < 1000; i++ {
		p := mkPkt(int64(i), 500)
		p.Dst = dst
		l.Offer(p)
	}
	e.RunUntil(10.0)
	got := float64(received) / 10.0
	if math.Abs(got-rate)/rate > 0.05 {
		t.Fatalf("throughput %.0f B/s, want ~%.0f", got, rate)
	}
}

func TestLinkIdleRestart(t *testing.T) {
	e := NewEngine()
	q := NewDropTail(1 << 20)
	l := NewLink(e, q, 1000, 0)
	var times []float64
	dst := ReceiverFunc(func(p *Packet) { times = append(times, e.Now()) })

	p1 := mkPkt(1, 100)
	p1.Dst = dst
	l.Offer(p1)
	// Second packet offered long after the link went idle again.
	e.At(5.0, func() {
		p2 := mkPkt(2, 100)
		p2.Dst = dst
		l.Offer(p2)
	})
	e.Run()
	if len(times) != 2 {
		t.Fatalf("got %d deliveries, want 2", len(times))
	}
	if math.Abs(times[1]-5.1) > 1e-9 {
		t.Fatalf("second delivery at %v, want 5.1", times[1])
	}
}

func TestDumbbellRTT(t *testing.T) {
	e := NewEngine()
	d := NewDumbbell(e, DumbbellConfig{
		Rate:        100000,
		Delay:       0.010,
		AccessDelay: 0.005,
		QueueBytes:  1 << 16,
	})
	if math.Abs(d.BaseRTT()-0.030) > 1e-12 {
		t.Fatalf("BaseRTT = %v, want 0.030", d.BaseRTT())
	}

	var dataAt, ackAt float64
	sink := ReceiverFunc(func(p *Packet) {
		dataAt = e.Now()
		ack := &Packet{Kind: Ack, AckSeq: p.Seq, Size: 40}
		d.SendAck(ack, ReceiverFunc(func(p *Packet) { ackAt = e.Now() }))
	})
	p := mkPkt(7, 1000)
	p.SendTime = e.Now()
	d.SendData(p, sink)
	e.Run()

	// data path: 5ms access + 10ms serialization (1000B @ 100kB/s) + 10ms prop
	if math.Abs(dataAt-0.025) > 1e-9 {
		t.Fatalf("data arrival %v, want 0.025", dataAt)
	}
	// ack path: + 15ms reverse
	if math.Abs(ackAt-0.040) > 1e-9 {
		t.Fatalf("ack arrival %v, want 0.040", ackAt)
	}
}

func TestDumbbellSharedQueueDropsOverload(t *testing.T) {
	e := NewEngine()
	d := NewDumbbell(e, DumbbellConfig{
		Rate: 1000, Delay: 0.01, AccessDelay: 0.001, QueueBytes: 500,
	})
	got := 0
	sink := ReceiverFunc(func(p *Packet) { got++ })
	for i := 0; i < 100; i++ {
		d.SendData(mkPkt(int64(i), 100), sink)
	}
	e.Run()
	if d.Q.Drops() == 0 {
		t.Fatal("no drops despite 20x overload of a tiny queue")
	}
	if got+int(d.Q.Drops()) != 100 {
		t.Fatalf("delivered %d + dropped %d != 100", got, d.Q.Drops())
	}
}

func TestDumbbellInterleavesFlows(t *testing.T) {
	e := NewEngine()
	d := NewDumbbell(e, DumbbellConfig{
		Rate: 10_000, Delay: 0.005, AccessDelay: 0.001, QueueBytes: 1 << 16,
	})
	got := map[int]int{}
	sink := ReceiverFunc(func(p *Packet) { got[p.FlowID]++ })
	// Two flows offer equal load below capacity: both delivered fully.
	for i := 0; i < 50; i++ {
		d.SendData(&Packet{FlowID: 1, Seq: int64(i), Size: 100}, sink)
		d.SendData(&Packet{FlowID: 2, Seq: int64(i), Size: 100}, sink)
	}
	e.Run()
	if got[1] != 50 || got[2] != 50 {
		t.Fatalf("deliveries %v, want 50 each", got)
	}
}

func TestRunUntilWithSelfFeedingStream(t *testing.T) {
	e := NewEngine()
	n := 0
	var tick func()
	tick = func() {
		n++
		e.After(0.001, tick) // infinite event stream
	}
	e.At(0, tick)
	e.RunUntil(1.0)
	if n < 999 || n > 1002 {
		t.Fatalf("ran %d ticks in 1s at 1ms, want ~1000", n)
	}
	if e.Now() != 1.0 {
		t.Fatalf("Now() = %v, want 1.0", e.Now())
	}
}
