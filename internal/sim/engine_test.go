package sim

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineOrdersEventsByTime(t *testing.T) {
	e := NewEngine()
	var got []float64
	times := []float64{0.5, 0.1, 0.9, 0.3, 0.3, 0.7}
	for _, at := range times {
		at := at
		e.At(at, func() { got = append(got, at) })
	}
	e.Run()
	if !sort.Float64sAreSorted(got) {
		t.Fatalf("events ran out of order: %v", got)
	}
	if len(got) != len(times) {
		t.Fatalf("ran %d events, want %d", len(got), len(times))
	}
}

func TestEngineFIFOAtEqualTimes(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(1.0, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", got)
		}
	}
}

func TestEngineClockAdvances(t *testing.T) {
	e := NewEngine()
	e.At(2.5, func() {
		if e.Now() != 2.5 {
			t.Errorf("Now() = %v inside event at 2.5", e.Now())
		}
	})
	e.Run()
	if e.Now() != 2.5 {
		t.Fatalf("final Now() = %v, want 2.5", e.Now())
	}
}

func TestEngineSchedulingInsideEvents(t *testing.T) {
	e := NewEngine()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 5 {
			e.After(0.1, tick)
		}
	}
	e.After(0, tick)
	e.Run()
	if count != 5 {
		t.Fatalf("recursive scheduling ran %d times, want 5", count)
	}
	if math.Abs(e.Now()-0.4) > 1e-12 {
		t.Fatalf("Now() = %v, want 0.4", e.Now())
	}
}

func TestEnginePastSchedulingPanics(t *testing.T) {
	e := NewEngine()
	e.At(1, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(0.5, func() {})
	})
	e.Run()
}

func TestTimerCancel(t *testing.T) {
	e := NewEngine()
	ran := false
	tm := e.At(1, func() { ran = true })
	tm.Cancel()
	e.Run()
	if ran {
		t.Fatal("cancelled timer still ran")
	}
}

func TestTimerZeroValue(t *testing.T) {
	var tm Timer
	tm.Cancel() // must not panic
	if tm.Active() {
		t.Fatal("zero Timer reports active")
	}
}

func TestTimerActiveLifecycle(t *testing.T) {
	e := NewEngine()
	tm := e.At(1, func() {})
	if !tm.Active() {
		t.Fatal("pending timer not active")
	}
	e.Run()
	if tm.Active() {
		t.Fatal("fired timer still active")
	}
	tm.Cancel() // cancel after fire: must be a no-op, not corrupt state
	tm2 := e.At(2, func() {})
	tm2.Cancel()
	if tm2.Active() {
		t.Fatal("cancelled timer still active")
	}
}

// A Timer whose event fired and was recycled into a later scheduling must
// not be able to cancel (or observe) the new event.
func TestTimerCancelAfterFireDoesNotKillRecycledEvent(t *testing.T) {
	e := NewEngine()
	stale := e.At(1, func() {})
	e.Run() // fires; the event goes back to the free list
	ran := false
	fresh := e.At(2, func() { ran = true })
	stale.Cancel() // stale handle: recycled event must be untouched
	if stale.Active() {
		t.Fatal("stale timer reports active after recycle")
	}
	if !fresh.Active() {
		t.Fatal("fresh timer lost its pending state")
	}
	e.Run()
	if !ran {
		t.Fatal("stale Cancel killed a recycled event")
	}
}

// Steady-state scheduling must reuse events from the free list rather
// than allocating one per callback.
func TestEngineEventFreeList(t *testing.T) {
	e := NewEngine()
	e.At(0, func() {}) // prime the free list
	e.Run()
	allocs := testing.AllocsPerRun(1000, func() {
		e.After(0.001, func() {})
		e.Step()
	})
	// One closure may still allocate; the event itself must not.
	if allocs > 1 {
		t.Fatalf("%.1f allocs per schedule+step; event free list not reusing", allocs)
	}
}

func TestEngineAtFuncPassesArgument(t *testing.T) {
	e := NewEngine()
	type payload struct{ n int }
	var got []*payload
	collect := func(arg any) { p, _ := arg.(*payload); got = append(got, p) }
	a, b := &payload{1}, &payload{2}
	e.AtFunc(2, collect, b)
	e.AtFunc(1, collect, a)
	e.AfterFunc(-1, collect, nil) // clamps to now, like After
	e.Run()
	if len(got) != 3 || got[0] != nil || got[1] != a || got[2] != b {
		t.Fatalf("AtFunc delivered %v, want [nil a b]", got)
	}
}

// Scheduling through AtFunc with a long-lived callback and a pointer
// argument must not allocate once the free list is primed — this is the
// contract the link and network hot paths rely on.
func TestAllocFreeAtFuncScheduling(t *testing.T) {
	e := NewEngine()
	nop := func(any) {}
	e.AtFunc(0, nop, nil) // prime the free list
	e.Run()
	p := &Packet{}
	allocs := testing.AllocsPerRun(1000, func() {
		e.AfterFunc(0.001, nop, p)
		e.Step()
	})
	if allocs != 0 {
		t.Fatalf("%.1f allocs per AtFunc schedule+step, want 0", allocs)
	}
}

// A transient event burst must not pin its high-water mark of recycled
// events forever: the free list is capped.
func TestEngineFreeListCapped(t *testing.T) {
	e := NewEngine()
	n := maxFreeEvents + 1000
	for i := 0; i < n; i++ {
		e.At(1, func() {})
	}
	e.Run()
	if len(e.free) > maxFreeEvents {
		t.Fatalf("free list holds %d events after a %d-event burst, cap is %d",
			len(e.free), n, maxFreeEvents)
	}
}

// Cancelled events beyond the RunUntil horizon must be released during
// the peek, not left to age in the heap across calls.
func TestRunUntilReleasesDeadEventsBeyondHorizon(t *testing.T) {
	e := NewEngine()
	var tms []Timer
	for i := 0; i < 100; i++ {
		tms = append(tms, e.At(10, func() {}))
	}
	for _, tm := range tms {
		tm.Cancel()
	}
	free := len(e.free)
	e.RunUntil(1) // horizon well before the cancelled batch at t=10
	if e.sched.len() != 0 {
		t.Fatalf("%d dead events still queued after RunUntil", e.sched.len())
	}
	if len(e.free) != free+100 {
		t.Fatalf("free list grew by %d, want 100", len(e.free)-free)
	}
	if e.Now() != 1 {
		t.Fatalf("Now() = %v, want 1", e.Now())
	}
}

func TestRunUntilStopsAndAdvancesClock(t *testing.T) {
	e := NewEngine()
	var ran []float64
	for _, at := range []float64{1, 2, 3, 4} {
		at := at
		e.At(at, func() { ran = append(ran, at) })
	}
	e.RunUntil(2.5)
	if len(ran) != 2 {
		t.Fatalf("RunUntil(2.5) ran %d events, want 2", len(ran))
	}
	if e.Now() != 2.5 {
		t.Fatalf("Now() = %v, want 2.5", e.Now())
	}
	e.Run()
	if len(ran) != 4 {
		t.Fatalf("Run after RunUntil ran %d total, want 4", len(ran))
	}
}

func TestAfterClampsNegativeDelay(t *testing.T) {
	e := NewEngine()
	ran := false
	e.After(-1, func() { ran = true })
	e.Run()
	if !ran || e.Now() != 0 {
		t.Fatalf("After(-1) ran=%v now=%v", ran, e.Now())
	}
}

// Property: any batch of events runs in non-decreasing time order.
func TestEngineOrderProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		e := NewEngine()
		var got []float64
		for _, r := range raw {
			at := float64(r) / 100
			e.At(at, func() { got = append(got, at) })
		}
		e.Run()
		return sort.Float64sAreSorted(got) && len(got) == len(raw)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
