package sim

import "sort"

// calQueue is a self-adapting calendar queue (Brown '88), the event
// scheduler structure ns-2 uses for exactly this workload: a discrete
// event simulator whose pending-event population is dominated by
// near-future, roughly evenly spaced packet events. Scheduling and
// dequeuing are O(1) amortized — an array index plus a short sorted
// insert — instead of container/heap's O(log n) sift with its
// interface-boxed Push/Pop.
//
// Layout. Events live in an array of time buckets: an event at time t
// belongs to virtual bucket vb = floor(t/width), stored in physical
// bucket vb mod nbuckets as a singly-linked list (the *event structs
// carry the link, so the structure itself never allocates) sorted
// ascending by the engine's (time, seq) order. The calendar's current
// position posVB advances monotonically with the popped events; a
// bucket's list mixes events of different "years" (vb differing by a
// multiple of nbuckets), and the pop scan distinguishes them with an
// exact integer comparison of vb — never a float boundary test, so
// ordering cannot be perturbed by rounding at bucket edges.
//
// Determinism. Pop order is exactly ascending (time, seq), bit-for-bit
// the order the reference binary heap produces: within a bucket the
// list is (time, seq)-sorted, equal times land in the same virtual
// bucket, and floor(t/width) is monotone in t, so scanning virtual
// buckets in increasing order enumerates the global order. This is
// asserted against the heap over randomized workloads by
// TestSchedulerDifferential*.
//
// Far-future lane. Events scheduled more than a full calendar year
// (nbuckets*width) ahead of the current position — retransmission
// timeouts, scenario end markers — would pollute bucket scans, so they
// go to the overflow lane instead: a slice sorted descending by
// (time, seq), min at the tail, popped and migrated back into the
// calendar as the position catches up. Migration happens at pop time
// and preserves order exactly (an overflow event's vb is always beyond
// every in-calendar event's vb at the moment either could pop).
//
// Resizing. When the bucket-resident population exceeds twice the
// bucket count the calendar doubles; when it falls below half it
// halves (hysteresis factor 4, so a steady state never thrashes). Each
// resize re-derives the bucket width from the observed event spacing:
// up to 64 sampled event times, sorted, averaging the middle-half gaps
// (robust to far-future outliers), targeting a handful of events per
// bucket. All resize decisions depend only on the event population, so
// they are deterministic too.
type calQueue struct {
	heads []*event
	tails []*event
	mask  int64   // len(heads)-1; bucket count is always a power of two
	width float64 // bucket width, seconds

	n     int     // events resident in buckets (excludes overflow)
	posVB int64   // virtual bucket of the calendar position
	posT  float64 // time anchor of the position (last popped event time)

	// overflow is the far-future lane: events with vb beyond one full
	// year at push time, sorted descending by (time, seq) so the
	// minimum pops from the tail without shifting.
	overflow []*event

	// cache holds the event the last peek found, with the physical
	// bucket it heads (-1: tail of the overflow lane). Any push that
	// sorts before it invalidates; pop consumes it.
	cache    *event
	cacheIdx int

	// resizeAt is the live population at the last resize. Triggers
	// require the population to halve or double since then, so a
	// workload the width estimator cannot spread (e.g. one tight
	// far-future cluster pinned in overflow) resizes O(log n) times
	// instead of once per push.
	resizeAt int

	// Statistics for Engine.Instrument (single-threaded plain fields,
	// published as snapshot-time Func metrics).
	resizes  uint64
	ovPushes uint64 // events routed through the far-future lane

	evScratch []*event  // resize: collected live events
	tScratch  []float64 // resize: sampled times for width estimation
}

const (
	// minCalBuckets is the initial and minimum bucket count.
	minCalBuckets = 8
	// initCalWidth is the bucket width before the first resize has
	// observed any event spacing.
	initCalWidth = 1e-3
	// minCalWidth floors the adaptive width so vb = t/width stays far
	// from int64 overflow for any simulated timescale.
	minCalWidth = 1e-9
)

func newCalQueue() *calQueue {
	return &calQueue{
		heads: make([]*event, minCalBuckets),
		tails: make([]*event, minCalBuckets),
		mask:  minCalBuckets - 1,
		width: initCalWidth,
	}
}

// evLess is the engine's total event order: time, then scheduling-time
// tie key, then scheduling seq. For a lone engine pt is Now() at
// schedule time — non-decreasing in seq — so (time, pt, seq) collapses
// to the classic (time, seq) order; the middle key only separates
// events when the sharded runner injects a cross-shard arrival with an
// explicit pt (Engine.AtFuncPrio).
func evLess(a, b *event) bool {
	if a.time != b.time {
		return a.time < b.time
	}
	if a.pt != b.pt {
		return a.pt < b.pt
	}
	return a.seq < b.seq
}

func (c *calQueue) len() int { return c.n + len(c.overflow) }

func (c *calQueue) push(ev *event) {
	ev.idx = 0 // mark queued for Timer.Active
	ev.vb = int64(ev.time / c.width)
	if c.cache != nil && evLess(ev, c.cache) {
		c.cache = nil
	}
	if ev.vb >= c.posVB+int64(len(c.heads)) {
		c.ovPushes++
		c.pushOverflow(ev)
	} else {
		if ev.vb < c.posVB {
			// Defensive: the engine forbids scheduling before now and
			// floor(t/width) is monotone, so this should be unreachable;
			// resetting the position keeps the scan invariant (no live
			// event behind posVB) even if a caller breaks the contract.
			c.posVB, c.posT = ev.vb, ev.time
		} else if ev.time < c.posT {
			// Same virtual bucket as the position but earlier in time
			// (only possible for contract-breaking callers): keep posT at
			// or below every live event's time, the anchor resize relies
			// on to place the rebuilt position behind the population.
			c.posT = ev.time
		}
		c.insertBucket(ev)
		c.n++
	}
	if total := c.len(); total > 2*len(c.heads) && total >= 2*c.resizeAt {
		c.resize(2 * len(c.heads))
	}
}

// insertBucket links ev into its physical bucket in evLess order. The
// common cases are O(1): an empty bucket, or an event sorting at or
// after the tail (packet events arrive in roughly increasing time, and
// a lone engine's same-time events always carry a larger seq, so ties
// append too; only barrier-injected arrivals can sort mid-list).
func (c *calQueue) insertBucket(ev *event) {
	i := int(ev.vb & c.mask)
	ev.next = nil
	tail := c.tails[i]
	if tail == nil {
		c.heads[i], c.tails[i] = ev, ev
		return
	}
	if !evLess(ev, tail) {
		tail.next = ev
		c.tails[i] = ev
		return
	}
	h := c.heads[i]
	if evLess(ev, h) {
		ev.next = h
		c.heads[i] = ev
		return
	}
	for h.next != nil && !evLess(ev, h.next) {
		h = h.next
	}
	ev.next = h.next
	h.next = ev
}

// pushOverflow inserts ev into the descending-sorted overflow lane.
// Binary search plus one copy; far-future events are rare by design.
func (c *calQueue) pushOverflow(ev *event) {
	ev.next = nil
	lo, hi := 0, len(c.overflow)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if evLess(c.overflow[mid], ev) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	c.overflow = append(c.overflow, nil)
	copy(c.overflow[lo+1:], c.overflow[lo:])
	c.overflow[lo] = ev
}

// migrate moves overflow events that now fall within one calendar year
// of the position back into buckets. Called before every scan, so the
// overflow minimum is always beyond any in-calendar candidate.
func (c *calQueue) migrate() {
	horizon := c.posVB + int64(len(c.heads))
	for n := len(c.overflow); n > 0; n = len(c.overflow) {
		ev := c.overflow[n-1]
		if ev.vb >= horizon {
			return
		}
		c.overflow[n-1] = nil
		c.overflow = c.overflow[:n-1]
		c.insertBucket(ev)
		c.n++
	}
}

// peek returns the minimum event without removing it, or nil.
func (c *calQueue) peek() *event {
	if c.cache != nil {
		return c.cache
	}
	if c.n == 0 && len(c.overflow) == 0 {
		return nil
	}
	c.migrate()
	if c.n > 2*len(c.heads) && c.n >= 2*c.resizeAt {
		// A large migration can overload the buckets mid-run.
		c.resize(2 * len(c.heads))
	}
	if c.n > 0 {
		// Calendar scan: walk virtual buckets from the position. The
		// first head whose vb matches the scan position is the global
		// bucket minimum — all events sharing a vb live in one bucket,
		// sorted, and smaller vb means strictly smaller time.
		v := c.posVB
		i := int(v & c.mask)
		for k := 0; k < len(c.heads); k++ {
			if h := c.heads[i]; h != nil && h.vb == v {
				c.cache, c.cacheIdx = h, i
				return h
			}
			v++
			i = int(int64(i+1) & c.mask)
		}
	}
	// Empty year: direct search over bucket minima and the overflow
	// tail, then the pop will jump the position to the winner.
	var best *event
	bi := -1
	for i, h := range c.heads {
		if h != nil && (best == nil || evLess(h, best)) {
			best, bi = h, i
		}
	}
	if n := len(c.overflow); n > 0 {
		if ov := c.overflow[n-1]; best == nil || evLess(ov, best) {
			best, bi = ov, -1
		}
	}
	c.cache, c.cacheIdx = best, bi
	return best
}

// pop removes and returns the minimum event, or nil.
func (c *calQueue) pop() *event {
	ev := c.peek()
	if ev == nil {
		return nil
	}
	if i := c.cacheIdx; i >= 0 {
		c.heads[i] = ev.next
		if ev.next == nil {
			c.tails[i] = nil
		}
		ev.next = nil
		c.n--
	} else {
		n := len(c.overflow)
		c.overflow[n-1] = nil
		c.overflow = c.overflow[:n-1]
	}
	c.posVB, c.posT = ev.vb, ev.time
	c.cache = nil
	ev.idx = -1
	if total := c.len(); total < len(c.heads)/2 && total <= c.resizeAt/2 &&
		len(c.heads) > minCalBuckets {
		c.resize(len(c.heads) / 2)
	}
	return ev
}

// resize rebuilds the calendar with nb buckets and a width re-derived
// from the current event spacing, redistributing every live event
// (bucket residents and overflow). O(n log n) for the width sample
// sort, amortized away by the doubling thresholds; a steady-state
// population never resizes at all.
func (c *calQueue) resize(nb int) {
	c.resizes++
	c.cache = nil
	c.resizeAt = c.len()

	all := c.evScratch[:0]
	for i, h := range c.heads {
		for ; h != nil; h = h.next {
			all = append(all, h)
		}
		c.heads[i], c.tails[i] = nil, nil
	}
	all = append(all, c.overflow...)
	c.evScratch = all[:0]
	for i := range c.overflow {
		c.overflow[i] = nil
	}
	c.overflow = c.overflow[:0]

	c.width = c.newWidth(all)
	if nb != len(c.heads) {
		c.heads = make([]*event, nb)
		c.tails = make([]*event, nb)
		c.mask = int64(nb - 1)
	}
	c.posVB = int64(c.posT / c.width)
	c.n = 0

	horizon := c.posVB + int64(nb)
	for _, ev := range all {
		ev.vb = int64(ev.time / c.width)
		if ev.vb < c.posVB {
			// The new width resolved an event to a bucket behind the
			// rebuilt position (posT sat above its time, or FP rounding
			// at the anchor). Walk the position back — vb must stay
			// exactly floor(t/width) or popping this event would carry
			// the position past later-bucket, earlier-time neighbors.
			c.posVB, c.posT = ev.vb, ev.time
		}
		if ev.vb >= horizon {
			c.pushOverflow(ev)
			continue
		}
		c.insertBucket(ev)
		c.n++
	}
}

// newWidth estimates a bucket width from the live events: sample up to
// 64 times, sort, and average the gaps across the middle half of the
// sample — the median-ish band, so a handful of far-future timers
// cannot inflate the width the near-future bulk is bucketed with.
// Aiming at ~4 average gaps per bucket keeps buckets short while the
// year still spans the population. Returns the current width when the
// events give no signal (fewer than 2, or all at one instant).
func (c *calQueue) newWidth(all []*event) float64 {
	if len(all) < 2 {
		return c.width
	}
	s := c.tScratch[:0]
	stride := 1
	if len(all) > 64 {
		stride = len(all) / 64
	}
	for i := 0; i < len(all); i += stride {
		s = append(s, all[i].time)
	}
	c.tScratch = s[:0]
	sort.Float64s(s)
	lo, hi := len(s)/4, 3*len(s)/4
	if hi <= lo {
		lo, hi = 0, len(s)-1
	}
	var sum float64
	for i := lo; i < hi; i++ {
		sum += s[i+1] - s[i]
	}
	// A sampled gap spans ~stride true gaps, so divide it back out to
	// target ~4 events per bucket regardless of the sampling rate.
	w := 4 * sum / float64((hi-lo)*stride)
	if w < minCalWidth {
		return c.width // degenerate spacing: keep the current width
	}
	return w
}
