package sim

import (
	"fmt"
	"sort"

	"qav/internal/metrics"
)

// This file implements conservative parallel execution of the dumbbell
// topology: one simulation run split across several engines, each with
// its own calendar queue and packet pool, synchronized by a time
// barrier in the Chandy–Misra style.
//
// Partitioning. The bottleneck queue+link live alone on one engine
// (the "bneck" shard); flows are grouped onto the remaining engines
// ("flow" shards), each flow's source, sink, and transport state all on
// the same shard. Two simulated hops cross a shard boundary:
//
//	source -> bottleneck   takes AccessDelay
//	bottleneck -> sink     takes the bottleneck propagation Delay
//
// The acknowledgement path never crosses: a flow's sink and source
// share a shard, so acks are plain engine-local events.
//
// Lookahead. Any packet handed across a boundary at virtual time t
// arrives no earlier than t + min(AccessDelay, Delay). That minimum is
// the lookahead L: while every shard executes only events strictly
// below a common horizon, no shard can receive a cross-shard arrival
// below that horizon from work another shard is still doing. Execution
// therefore proceeds in windows [kL, (k+1)L): all shards run their
// local events below the horizon in parallel, park at the barrier, the
// coordinator hands over the mailboxes, and the next window begins.
// An event exactly on the horizon belongs to the next window (see
// Engine.RunBelow), after the barrier has delivered any cross-shard
// packet sharing its timestamp.
//
// Mailboxes. Cross-shard packets travel through double-buffered
// mailboxes: during a window the sender appends to the pending half
// while the receiver drains the current half; at the barrier — all
// workers parked — the coordinator flips the halves. Every buffer
// therefore has exactly one goroutine touching it at any time, with
// the barrier's channel operations ordering the handoff, so the whole
// scheme is lock-free and race-detector-clean. A mailbox is bounded by
// construction: it holds at most one window's worth of traffic, and
// its high-water mark is published by Instrument.
//
// Packet ownership. Packets are pooled per engine (PacketPool), and
// the pools' poison-on-Put discipline requires every packet to return
// to the pool it came from. A data packet is born on its flow's shard,
// crosses to the bneck shard by mailbox, and comes back the same way:
// delivered packets return through the toShard mailbox and are
// released to the owner's pool after Recv; packets the bottleneck
// queue refuses come back through a return box and are released at the
// next window start. The bneck engine's own pool handles no data
// packets at all.

// shardMsg is one cross-shard packet handoff: p becomes visible to the
// receiving shard at virtual time at. pt is the emitting engine's
// virtual clock at the handoff — the instant the serial engine would
// have scheduled the arrival event — and becomes the arrival's
// scheduling-time tie key (Engine.AtFuncPrio), so a sharded arrival
// ties against the receiver's local events exactly as it would have
// serially (a packet reaching a full queue in the same instant the
// link frees a slot is dropped or admitted identically).
//
// pt2 unrolls the recursion one level further: it is the pt of the
// event that emitted the message — the instant *that* event was
// scheduled. When two flows on different shards hand over packets with
// identical at and pt (sends at the very same instant, a routine
// coincidence in phase-locked workloads), the serial engine would have
// ordered the two send events by their own scheduling order, which pt2
// approximates the same way pt does one level up. Only the toBneck
// merge compares it; a deeper tie falls back to FlowID, which matches
// the serial order whenever the tied flows' event chains have been
// coincident all the way back to construction.
type shardMsg struct {
	at  float64
	pt  float64
	pt2 float64
	p   *Packet
}

// mailbox is a double-buffered, single-writer/single-reader channel
// between two shards. Writers append to pending during a window;
// readers drain cur. flip, called only at barriers with both sides
// parked, exchanges the halves.
type mailbox struct {
	cur, pending []shardMsg
	highWater    int
}

func (m *mailbox) put(at, pt, pt2 float64, p *Packet) {
	m.pending = append(m.pending, shardMsg{at, pt, pt2, p})
	if n := len(m.pending); n > m.highWater {
		m.highWater = n
	}
}

// flip publishes pending as cur and recycles the old cur buffer. It
// reports whether the new cur carries any messages.
func (m *mailbox) flip() bool {
	m.cur, m.pending = m.pending, m.cur[:0]
	return len(m.cur) > 0
}

// winCmd tells a worker to run one window: drain inboxes, then execute
// up to hi (strictly below for interior windows, inclusive with the
// clock advanced to hi for the final one, matching the serial
// RunUntil(Duration)).
type winCmd struct {
	hi    float64
	final bool
}

// shardWorker drives one engine on its own goroutine, lock-step with
// the coordinator: receive a window command, drain inboxes, run, park.
type shardWorker struct {
	eng     *Engine
	consume func()
	cmds    chan winCmd
	done    chan struct{}
}

func (w *shardWorker) loop() {
	for c := range w.cmds {
		w.consume()
		if c.final {
			w.eng.RunUntil(c.hi)
		} else {
			w.eng.RunBelow(c.hi)
		}
		w.done <- struct{}{}
	}
}

// ShardedDumbbell is the dumbbell topology partitioned across engines
// for parallel execution. It implements the same simulation as
// Dumbbell — the differential suite holds the two to identical
// physics — with flows spread over NumFlowShards engines that all
// share the one bottleneck.
//
// Construction order: create the topology, assign every flow to a
// shard with AssignFlow, build sources on the shard engines against
// their FlowNet fronts, then Run. All construction must happen before
// Run; the topology is not reusable after Run returns.
type ShardedDumbbell struct {
	bneck *Engine
	link  *Link
	q     Queue
	flows []*Engine
	nets  []*ShardNet

	accessDelay  float64
	reverseDelay float64
	lookahead    float64

	owner []int // flowID -> flow shard index; -1 = unassigned

	toBneck []*mailbox // flow shard -> bottleneck (data packets)
	toShard []*mailbox // bottleneck -> flow shard (deliveries)
	returns []*mailbox // bottleneck -> flow shard (dropped packets, pool returns)

	workers []*shardWorker
	merged  []shardMsg // bneck-side merge scratch, reused every window

	offerFn func(any)

	barriers int64 // completed barrier count, published by Instrument
}

// NewShardedDumbbell builds a dumbbell split across flowShards flow
// engines plus one bottleneck engine, all using the given scheduler
// kind. queueFn, when non-nil, builds the bottleneck queue on the
// bneck engine (RED needs the engine clock); otherwise a DropTail of
// cfg.QueueBytes is used. Both cross-shard propagation delays must be
// positive: they are the lookahead that makes conservative windows
// possible.
func NewShardedDumbbell(flowShards int, cfg DumbbellConfig, kind SchedulerKind, queueFn func(*Engine) Queue) *ShardedDumbbell {
	if flowShards < 1 {
		panic("sim: sharded dumbbell needs at least one flow shard")
	}
	if cfg.AccessDelay <= 0 || cfg.Delay <= 0 {
		panic("sim: sharded dumbbell needs positive access and link delays (they are the lookahead)")
	}
	d := &ShardedDumbbell{
		bneck:        NewEngineSched(kind),
		accessDelay:  cfg.AccessDelay,
		reverseDelay: cfg.AccessDelay + cfg.Delay,
		lookahead:    cfg.AccessDelay,
	}
	if cfg.Delay < d.lookahead {
		d.lookahead = cfg.Delay
	}
	if queueFn != nil {
		d.q = queueFn(d.bneck)
	} else {
		if cfg.QueueBytes <= 0 {
			panic("sim: dumbbell queue size must be positive")
		}
		d.q = NewDropTail(cfg.QueueBytes)
	}
	d.link = NewLink(d.bneck, d.q, cfg.Rate, cfg.Delay)
	d.link.SetOut(shardedOut{d})
	d.offerFn = func(arg any) { d.link.Offer(arg.(*Packet)) }
	d.flows = make([]*Engine, flowShards)
	d.nets = make([]*ShardNet, flowShards)
	d.toBneck = make([]*mailbox, flowShards)
	d.toShard = make([]*mailbox, flowShards)
	d.returns = make([]*mailbox, flowShards)
	for i := range d.flows {
		d.flows[i] = NewEngineSched(kind)
		d.nets[i] = newShardNet(d, i)
		d.toBneck[i] = &mailbox{}
		d.toShard[i] = &mailbox{}
		d.returns[i] = &mailbox{}
	}
	return d
}

// NumFlowShards returns the number of flow engines.
func (d *ShardedDumbbell) NumFlowShards() int { return len(d.flows) }

// FlowEngine returns flow shard i's engine; sources for flows assigned
// to shard i must be built on it.
func (d *ShardedDumbbell) FlowEngine(i int) *Engine { return d.flows[i] }

// FlowNet returns flow shard i's network front, the Network that
// sources on shard i send through.
func (d *ShardedDumbbell) FlowNet(i int) *ShardNet { return d.nets[i] }

// BneckEngine returns the bottleneck shard's engine. Between barriers
// it belongs to its worker goroutine; touch it only before Run, from
// an atBarrier callback, or after Run returns.
func (d *ShardedDumbbell) BneckEngine() *Engine { return d.bneck }

// Bneck returns the bottleneck link (same access rules as BneckEngine).
func (d *ShardedDumbbell) Bneck() *Link { return d.link }

// Queue returns the bottleneck queue (same access rules as BneckEngine).
func (d *ShardedDumbbell) Queue() Queue { return d.q }

// Lookahead returns the barrier window width in seconds.
func (d *ShardedDumbbell) Lookahead() float64 { return d.lookahead }

// BaseRTT returns the zero-queue round-trip propagation time.
func (d *ShardedDumbbell) BaseRTT() float64 {
	return 2 * (d.accessDelay + d.link.Delay())
}

// AssignFlow places flowID on flow shard s. Every flow that will send
// through the topology must be assigned before its first packet.
func (d *ShardedDumbbell) AssignFlow(flowID, s int) {
	if s < 0 || s >= len(d.flows) {
		panic(fmt.Sprintf("sim: flow shard %d out of range [0,%d)", s, len(d.flows)))
	}
	for flowID >= len(d.owner) {
		d.owner = append(d.owner, -1)
	}
	d.owner[flowID] = s
}

func (d *ShardedDumbbell) shardOf(flowID int) int {
	if flowID >= len(d.owner) || d.owner[flowID] < 0 {
		panic(fmt.Sprintf("sim: flow %d not assigned to a shard", flowID))
	}
	return d.owner[flowID]
}

// Instrument registers every engine, the bottleneck link, and the
// barrier statistics on reg. Registry Func metrics accumulate across
// registrations, so the per-engine counters sum into the same totals
// the serial topology reports. Snapshots must be taken while the
// workers are parked (before Run, from atBarrier, or after Run).
func (d *ShardedDumbbell) Instrument(reg *metrics.Registry) {
	d.bneck.Instrument(reg)
	for _, e := range d.flows {
		e.Instrument(reg)
	}
	d.link.Instrument(reg)
	reg.CounterFunc("sim.shard.barriers", func() int64 { return d.barriers })
	reg.GaugeFunc("sim.shard.mailbox.highwater", func() float64 {
		hw := 0
		for _, boxes := range [][]*mailbox{d.toBneck, d.toShard, d.returns} {
			for _, m := range boxes {
				if m.highWater > hw {
					hw = m.highWater
				}
			}
		}
		return float64(hw)
	})
}

// Processed returns the total events executed across all engines.
func (d *ShardedDumbbell) Processed() uint64 {
	n := d.bneck.Processed()
	for _, e := range d.flows {
		n += e.Processed()
	}
	return n
}

// consumeBneck drains every flow shard's outbox into the bottleneck
// engine. The boxes are merged into one arrival sequence ordered by
// (arrival time, send instant, sender's scheduling instant, FlowID),
// stably, so packets one shard emitted back-to-back keep their
// execution order; scheduling the merged sequence in order with the
// send instant as the tie key reproduces the serial engine's ordering —
// both between two arrivals (serially, same-time arrivals fire in the
// order their sends scheduled them, which is the order of the sends'
// own scheduling) and between an arrival and a bneck-local event such
// as the link freeing (serially ordered by which was scheduled first).
func (d *ShardedDumbbell) consumeBneck() {
	d.merged = d.merged[:0]
	for _, mb := range d.toBneck {
		d.merged = append(d.merged, mb.cur...)
	}
	sort.SliceStable(d.merged, func(a, b int) bool {
		ma, mb := &d.merged[a], &d.merged[b]
		if ma.at != mb.at {
			return ma.at < mb.at
		}
		if ma.pt != mb.pt {
			return ma.pt < mb.pt
		}
		if ma.pt2 != mb.pt2 {
			return ma.pt2 < mb.pt2
		}
		return ma.p.FlowID < mb.p.FlowID
	})
	for _, m := range d.merged {
		d.bneck.AtFuncPrio(m.at, m.pt, d.offerFn, m.p)
	}
}

// consumeFlow drains flow shard i's inboxes: dropped packets go back
// to the local pool, deliveries are scheduled at their arrival times,
// keyed by the instant the bottleneck transmitted them.
func (d *ShardedDumbbell) consumeFlow(i int) {
	eng := d.flows[i]
	for _, m := range d.returns[i].cur {
		eng.pool.Put(m.p)
	}
	net := d.nets[i]
	for _, m := range d.toShard[i].cur {
		eng.AtFuncPrio(m.at, m.pt, net.deliverFn, m.p)
	}
}

// flipAll hands every mailbox over at a barrier and reports whether
// any carries messages for the next window.
func (d *ShardedDumbbell) flipAll() bool {
	any := false
	for i := range d.flows {
		any = d.toBneck[i].flip() || any
		any = d.toShard[i].flip() || any
		any = d.returns[i].flip() || any
	}
	return any
}

// Run executes the simulation to the given duration. atBarrier, when
// non-nil, is called from the coordinator goroutine after each
// completed window with the horizon just reached — all workers parked,
// so every engine and mailbox is safe to touch — and exactly once with
// final=true after the last event at or below duration has executed.
//
// Interior windows end strictly below their horizon; the final window
// runs inclusively to duration and advances every clock there, exactly
// like the serial path's RunUntil(Duration). Arrivals landing exactly
// on the duration boundary can cascade (a packet delivered at D may
// trigger nothing more, but a packet arriving at the bottleneck at D
// can transmit), so the run keeps flipping and draining until no
// mailbox carries a message dated at or before duration.
//
// Run may be called once.
func (d *ShardedDumbbell) Run(duration float64, atBarrier func(hi float64, final bool)) {
	d.startWorkers()
	defer d.stopWorkers()
	L := d.lookahead
	for k := 0; ; k++ {
		hi := float64(k+1) * L
		final := hi >= duration
		if final {
			hi = duration
		}
		d.flipAll()
		d.dispatch(winCmd{hi, final})
		d.barriers++
		if final {
			break
		}
		if atBarrier != nil {
			atBarrier(hi, false)
		}
	}
	// Drain arrivals dated exactly at duration; anything later stays
	// queued unexecuted, as it would in the serial engine.
	for d.flipAll() {
		d.dispatch(winCmd{duration, true})
		d.barriers++
	}
	if atBarrier != nil {
		atBarrier(duration, true)
	}
}

func (d *ShardedDumbbell) startWorkers() {
	d.workers = make([]*shardWorker, 0, len(d.flows)+1)
	bw := &shardWorker{
		eng:     d.bneck,
		consume: d.consumeBneck,
		cmds:    make(chan winCmd),
		done:    make(chan struct{}),
	}
	d.workers = append(d.workers, bw)
	for i := range d.flows {
		i := i
		w := &shardWorker{
			eng:     d.flows[i],
			consume: func() { d.consumeFlow(i) },
			cmds:    make(chan winCmd),
			done:    make(chan struct{}),
		}
		d.workers = append(d.workers, w)
	}
	for _, w := range d.workers {
		go w.loop()
	}
}

// dispatch runs one window on every worker and waits for all of them.
func (d *ShardedDumbbell) dispatch(c winCmd) {
	for _, w := range d.workers {
		w.cmds <- c
	}
	for _, w := range d.workers {
		<-w.done
	}
}

func (d *ShardedDumbbell) stopWorkers() {
	for _, w := range d.workers {
		close(w.cmds)
	}
	d.workers = nil
}

// shardedOut is the bottleneck link's output in the sharded topology:
// deliveries and drops cross back to the owning flow shard by mailbox
// instead of being scheduled (or released) on the bneck engine.
type shardedOut struct{ d *ShardedDumbbell }

func (o shardedOut) Deliver(at float64, p *Packet) {
	o.d.toShard[o.d.shardOf(p.FlowID)].put(at, o.d.bneck.Now(), o.d.bneck.curPt, p)
}

func (o shardedOut) Drop(p *Packet) {
	o.d.returns[o.d.shardOf(p.FlowID)].put(0, 0, 0, p)
}

// ShardNet is one flow shard's front onto the sharded dumbbell. It
// implements Network: data packets go to the bottleneck's mailbox with
// their access-link arrival time, acknowledgements stay engine-local
// (a flow's sink and source share the shard, so the reverse path never
// crosses a boundary).
type ShardNet struct {
	d   *ShardedDumbbell
	eng *Engine
	idx int

	ackFn     func(any)
	deliverFn func(any)
}

func newShardNet(d *ShardedDumbbell, idx int) *ShardNet {
	n := &ShardNet{d: d, eng: d.flows[idx], idx: idx}
	n.ackFn = n.deliverLocal
	n.deliverFn = n.deliverLocal
	return n
}

// SendData pushes a data packet toward the bottleneck; it becomes
// visible to the bneck shard at now+AccessDelay, at the next barrier.
func (n *ShardNet) SendData(p *Packet, dst Receiver) {
	p.Dst = dst
	now := n.eng.Now()
	n.d.toBneck[n.idx].put(now+n.d.accessDelay, now, n.eng.curPt, p)
}

// SendAck returns an acknowledgement over the uncongested reverse
// path, entirely on the local engine.
func (n *ShardNet) SendAck(p *Packet, dst Receiver) {
	p.Dst = dst
	n.eng.AfterFunc(n.d.reverseDelay, n.ackFn, p)
}

// BaseRTT returns the zero-queue round-trip propagation time.
func (n *ShardNet) BaseRTT() float64 { return n.d.BaseRTT() }

// deliverLocal hands a packet to its receiver and releases it to the
// shard's own pool — the pool it was drawn from, per the ownership
// rules above.
func (n *ShardNet) deliverLocal(arg any) {
	p := arg.(*Packet)
	if p.Dst != nil {
		p.Dst.Recv(p)
	}
	n.eng.pool.Put(p)
}
