package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func mkPkt(seq int64, size int) *Packet {
	return &Packet{Seq: seq, Size: size, Kind: Data}
}

func TestDropTailFIFO(t *testing.T) {
	q := NewDropTail(10000)
	for i := int64(0); i < 5; i++ {
		if !q.Enqueue(mkPkt(i, 100)) {
			t.Fatalf("enqueue %d dropped", i)
		}
	}
	if q.Len() != 5 || q.Bytes() != 500 {
		t.Fatalf("len=%d bytes=%d, want 5/500", q.Len(), q.Bytes())
	}
	for i := int64(0); i < 5; i++ {
		p := q.Dequeue()
		if p == nil || p.Seq != i {
			t.Fatalf("dequeue got %v, want seq %d", p, i)
		}
	}
	if q.Dequeue() != nil {
		t.Fatal("dequeue from empty queue returned a packet")
	}
}

func TestDropTailDropsWhenFull(t *testing.T) {
	q := NewDropTail(250)
	if !q.Enqueue(mkPkt(0, 100)) || !q.Enqueue(mkPkt(1, 100)) {
		t.Fatal("first two packets should fit")
	}
	if q.Enqueue(mkPkt(2, 100)) {
		t.Fatal("third packet should be tail-dropped")
	}
	if q.Drops() != 1 {
		t.Fatalf("drops = %d, want 1", q.Drops())
	}
	// After draining one, a new packet fits again.
	q.Dequeue()
	if !q.Enqueue(mkPkt(3, 100)) {
		t.Fatal("packet should fit after dequeue")
	}
}

func TestDropTailByteAccounting(t *testing.T) {
	f := func(sizes []uint8) bool {
		q := NewDropTail(1 << 20)
		want := 0
		for i, s := range sizes {
			size := int(s) + 1
			if q.Enqueue(mkPkt(int64(i), size)) {
				want += size
			}
		}
		if q.Bytes() != want {
			return false
		}
		for q.Dequeue() != nil {
		}
		return q.Bytes() == 0 && q.Len() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Sustained enqueue/dequeue cycles must settle into the ring's backing
// array: the old front-reslice implementation pinned consumed prefixes
// and kept reallocating, so this soak asserts zero steady-state allocs.
func TestDropTailSoakDoesNotGrow(t *testing.T) {
	q := NewDropTail(1 << 20)
	pkts := make([]*Packet, 64)
	for i := range pkts {
		pkts[i] = mkPkt(int64(i), 512)
	}
	// Warm up: let the ring reach its steady-state capacity.
	for cycle := 0; cycle < 4; cycle++ {
		for _, p := range pkts {
			q.Enqueue(p)
		}
		for q.Dequeue() != nil {
		}
	}
	allocs := testing.AllocsPerRun(1000, func() {
		for _, p := range pkts {
			if !q.Enqueue(p) {
				t.Fatal("soak enqueue dropped below limit")
			}
		}
		for q.Dequeue() != nil {
		}
	})
	if allocs != 0 {
		t.Fatalf("%.1f allocs per 64-packet cycle; ring should be alloc-free at steady state", allocs)
	}
}

func TestDropTailFIFOAcrossWraparound(t *testing.T) {
	q := NewDropTail(1 << 20)
	next := int64(0) // next seq to enqueue
	want := int64(0) // next seq expected out
	// Interleave enqueues and dequeues so head walks around the ring.
	for step := 0; step < 200; step++ {
		for i := 0; i < 3; i++ {
			if !q.Enqueue(mkPkt(next, 100)) {
				t.Fatalf("enqueue %d dropped", next)
			}
			next++
		}
		for i := 0; i < 2; i++ {
			p := q.Dequeue()
			if p == nil || p.Seq != want {
				t.Fatalf("dequeue got %v, want seq %d", p, want)
			}
			want++
		}
	}
	for p := q.Dequeue(); p != nil; p = q.Dequeue() {
		if p.Seq != want {
			t.Fatalf("drain got seq %d, want %d", p.Seq, want)
		}
		want++
	}
	if want != next || q.Bytes() != 0 {
		t.Fatalf("drained %d of %d packets, %d bytes left", want, next, q.Bytes())
	}
}

// BenchmarkDropTailRing measures the raw enqueue/dequeue cycle — the
// per-packet ring indexing on the link hot path (mask vs modulo).
func BenchmarkDropTailRing(b *testing.B) {
	q := NewDropTail(1 << 20)
	pkts := make([]*Packet, 64)
	for i := range pkts {
		pkts[i] = mkPkt(int64(i), 512)
	}
	// Warm the ring to steady-state capacity.
	for _, p := range pkts {
		q.Enqueue(p)
	}
	for q.Dequeue() != nil {
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pkts[i&63]
		q.Enqueue(p)
		q.Dequeue()
	}
}

func TestREDDropsUnderSustainedLoad(t *testing.T) {
	q := NewRED(REDConfig{LimitBytes: 64 * 512, MeanPktSize: 512, MinThresh: 5, MaxThresh: 15, Seed: 42})
	drops := 0
	// Keep the queue persistently long; RED must drop before the hard limit.
	for i := 0; i < 2000; i++ {
		if !q.Enqueue(mkPkt(int64(i), 512)) {
			drops++
		}
		if q.Len() > 20 {
			q.Dequeue()
		}
	}
	if drops == 0 {
		t.Fatal("RED never dropped under sustained overload")
	}
	if q.Drops() != int64(drops) {
		t.Fatalf("drop counter %d != observed %d", q.Drops(), drops)
	}
}

func TestREDQuietQueueDoesNotDrop(t *testing.T) {
	q := NewRED(REDConfig{LimitBytes: 64 * 512, MeanPktSize: 512, MinThresh: 5, MaxThresh: 15, Seed: 1})
	for i := 0; i < 1000; i++ {
		if !q.Enqueue(mkPkt(int64(i), 512)) {
			t.Fatalf("RED dropped packet %d from an always-short queue", i)
		}
		q.Dequeue() // queue never builds
	}
}

// RED's buffer is the same power-of-two ring DropTail uses: sustained
// enqueue/dequeue cycles must settle into one backing array with zero
// steady-state allocations (the old front-reslice kept pinning consumed
// prefixes and reallocating).
func TestREDSoakDoesNotGrow(t *testing.T) {
	// Thresholds high enough that nothing early-drops: the soak
	// exercises the ring, not the drop path.
	q := NewRED(REDConfig{LimitBytes: 1 << 20, MeanPktSize: 512, MinThresh: 1e6, MaxThresh: 3e6, Seed: 7})
	pkts := make([]*Packet, 64)
	for i := range pkts {
		pkts[i] = mkPkt(int64(i), 512)
	}
	// Warm up: let the ring reach its steady-state capacity.
	for cycle := 0; cycle < 4; cycle++ {
		for _, p := range pkts {
			q.Enqueue(p)
		}
		for q.Dequeue() != nil {
		}
	}
	allocs := testing.AllocsPerRun(1000, func() {
		for _, p := range pkts {
			if !q.Enqueue(p) {
				t.Fatal("soak enqueue dropped below thresholds")
			}
		}
		for q.Dequeue() != nil {
		}
	})
	if allocs != 0 {
		t.Fatalf("%.1f allocs per 64-packet cycle; RED ring should be alloc-free at steady state", allocs)
	}
}

func TestREDFIFOAcrossWraparound(t *testing.T) {
	q := NewRED(REDConfig{LimitBytes: 1 << 20, MeanPktSize: 512, MinThresh: 1e6, MaxThresh: 3e6, Seed: 7})
	next := int64(0) // next seq to enqueue
	want := int64(0) // next seq expected out
	// Interleave enqueues and dequeues so head walks around the ring.
	for step := 0; step < 200; step++ {
		for i := 0; i < 3; i++ {
			if !q.Enqueue(mkPkt(next, 100)) {
				t.Fatalf("enqueue %d dropped", next)
			}
			next++
		}
		for i := 0; i < 2; i++ {
			p := q.Dequeue()
			if p == nil || p.Seq != want {
				t.Fatalf("dequeue got %v, want seq %d", p, want)
			}
			want++
		}
	}
	for p := q.Dequeue(); p != nil; p = q.Dequeue() {
		if p.Seq != want {
			t.Fatalf("drain got seq %d, want %d", p.Seq, want)
		}
		want++
	}
	if want != next || q.Bytes() != 0 || q.Len() != 0 {
		t.Fatalf("drained %d of %d packets, %d bytes left", want, next, q.Bytes())
	}
}

// With a virtual clock configured, the queue average must decay across
// idle periods (Floyd-Jacobson: avg *= (1-wq)^m, m = idle/slot) rather
// than hold its last busy-period value until the next arrival's single
// EWMA step.
func TestREDIdleDecaysAverage(t *testing.T) {
	now := 0.0
	clock := func() float64 { return now }
	// LinkRate 512 B/s -> one 512 B packet slot per second.
	q := NewRED(REDConfig{LimitBytes: 1 << 20, MeanPktSize: 512, MinThresh: 1e6, MaxThresh: 3e6,
		Wq: 0.1, Seed: 7, Now: clock, LinkRate: 512})
	// Build up a nonzero average.
	for i := 0; i < 50; i++ {
		q.Enqueue(mkPkt(int64(i), 512))
	}
	busy := q.avg
	if busy <= 0 {
		t.Fatal("busy queue built no average")
	}
	for q.Dequeue() != nil {
	}
	// 1000 idle slots: the average must be driven to ~(1-wq)^1000 ~ 0.
	now = 1000
	q.Enqueue(mkPkt(99, 512))
	if q.avg >= busy*1e-9 {
		t.Fatalf("idle period left avg at %g (busy %g); want Floyd-Jacobson decay", q.avg, busy)
	}

	// Same queue without a clock: the old EWMA-on-arrival behavior,
	// one small step toward zero per arrival, no idle decay.
	q2 := NewRED(REDConfig{LimitBytes: 1 << 20, MeanPktSize: 512, MinThresh: 1e6, MaxThresh: 3e6,
		Wq: 0.1, Seed: 7})
	for i := 0; i < 50; i++ {
		q2.Enqueue(mkPkt(int64(i), 512))
	}
	busy2 := q2.avg
	for q2.Dequeue() != nil {
	}
	q2.Enqueue(mkPkt(99, 512))
	if q2.avg < busy2*(1-0.1)*0.999 {
		t.Fatalf("clockless RED decayed avg to %g (busy %g); want a single EWMA step", q2.avg, busy2)
	}
}

// A hybrid fluid backlog registered via SetAuxBytes must count toward
// RED's averaged queue length, suppress idle decay while it is nonzero,
// and surface through EarlyDropProb's deterministic ramp.
func TestREDAuxBytesAndEarlyDropProb(t *testing.T) {
	q := NewRED(REDConfig{LimitBytes: 1 << 20, MeanPktSize: 512,
		MinThresh: 5, MaxThresh: 15, MaxP: 0.1, Wq: 0.5, Seed: 7})
	if got := q.EarlyDropProb(); got != 0 {
		t.Fatalf("EarlyDropProb on an empty queue = %v, want 0", got)
	}

	// 10 mean packets of fluid occupancy, zero packet bytes: arrivals
	// must still push the average toward 10, halfway up the ramp.
	q.SetAuxBytes(func() float64 { return 10 * 512 })
	for i := 0; i < 40; i++ {
		p := mkPkt(int64(i), 512)
		if q.Enqueue(p) {
			q.Dequeue()
		}
	}
	// avg has converged near 10 packets (the enqueued packet adds ~1).
	if q.avg < 9 || q.avg > 12 {
		t.Fatalf("avg = %v with a 10-packet fluid backlog, want ~10", q.avg)
	}
	want := 0.1 * (q.avg - 5) / (15 - 5)
	if got := q.EarlyDropProb(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("EarlyDropProb = %v, want ramp value %v", got, want)
	}

	// Pin the average above MaxThresh: the ramp saturates at 1.
	q.SetAuxBytes(func() float64 { return 100 * 512 })
	for i := 0; i < 20; i++ {
		q.Enqueue(mkPkt(int64(100+i), 512))
	}
	if got := q.EarlyDropProb(); got != 1 {
		t.Fatalf("EarlyDropProb above MaxThresh = %v, want 1", got)
	}

	// Idle decay must not fire while fluid occupancy persists: a queue
	// holding fluid is not idle, whatever its packet count.
	now := 0.0
	q2 := NewRED(REDConfig{LimitBytes: 1 << 20, MeanPktSize: 512,
		MinThresh: 1e6, MaxThresh: 3e6, Wq: 0.1, Seed: 7,
		Now: func() float64 { return now }, LinkRate: 512})
	q2.SetAuxBytes(func() float64 { return 20 * 512 })
	for i := 0; i < 50; i++ {
		if q2.Enqueue(mkPkt(int64(i), 512)) {
			q2.Dequeue()
		}
	}
	busy := q2.avg
	now = 1000 // would decay avg to ~0 were the queue considered idle
	q2.Enqueue(mkPkt(99, 512))
	if q2.avg < busy*0.5 {
		t.Fatalf("avg decayed to %g (busy %g) despite fluid occupancy", q2.avg, busy)
	}
}

func TestREDHardLimit(t *testing.T) {
	q := NewRED(REDConfig{LimitBytes: 4 * 512, MeanPktSize: 512, MinThresh: 100, MaxThresh: 300, Seed: 1})
	fits := 0
	for i := 0; i < 10; i++ {
		if q.Enqueue(mkPkt(int64(i), 512)) {
			fits++
		}
	}
	if fits != 4 {
		t.Fatalf("RED hard limit admitted %d packets, want 4", fits)
	}
}
