// Package sim is a small discrete-event network simulator.
//
// It provides the substrate the paper evaluated on (ns-2 in the original
// work): an event loop with virtual time, a dumbbell topology with a single
// bottleneck link, FIFO (DropTail) and RED queues, and plumbing for packet
// sources and sinks. All times are in seconds, all sizes in bytes, and all
// rates in bytes per second.
package sim

import (
	"fmt"
	"math"

	"qav/internal/metrics"
)

// Event is a scheduled callback in virtual time. Events are recycled
// through the engine's free list once they fire (or are skipped as dead),
// so a Timer must never trust its *event pointer alone: the generation
// counter ties a Timer to one particular scheduling of the event.
//
// An event carries either a plain callback (fn) or an argumented one
// (fn1 + arg). The second form exists so hot paths can schedule with a
// long-lived function value and a pointer argument instead of minting a
// fresh closure per packet (see Engine.AtFunc).
//
// The struct doubles as the scheduler's node: idx is the heap slot (or
// a queued/popped flag for the calendar queue), next links a calendar
// bucket's sorted list, and vb caches the event's virtual bucket, so no
// scheduler ever allocates per operation.
type event struct {
	time float64
	pt   float64 // first tie-breaker: virtual time the event was scheduled at
	seq  uint64  // second tie-breaker: preserves scheduling order at equal (time, pt)
	fn   func()
	fn1  func(any)
	arg  any
	idx  int    // heap slot; -1 once popped (Timer.Active reads it)
	next *event // calendar bucket list link
	vb   int64  // calendar virtual bucket = floor(time/width)
	gen  uint64 // bumped every time the event is recycled
	dead bool
}

// Timer is a handle to a scheduled event that can be cancelled.
type Timer struct {
	ev  *event
	gen uint64
}

// Cancel prevents the timer's callback from running. Safe to call on a
// zero Timer or after the event has fired (including after the engine
// has recycled the underlying event for a later scheduling). The event
// is deleted lazily: it stays queued, still ordered, until the engine
// pops it and discards it unfired.
func (t Timer) Cancel() {
	if t.ev != nil && t.ev.gen == t.gen {
		t.ev.dead = true
	}
}

// Active reports whether the timer is still pending.
func (t Timer) Active() bool {
	return t.ev != nil && t.ev.gen == t.gen && !t.ev.dead && t.ev.idx >= 0
}

// Engine drives virtual time. The zero value is not usable; call NewEngine.
//
// An Engine is single-threaded: all scheduling and stepping must happen
// from one goroutine. Concurrency lives above it (see scenario.RunAll,
// which runs one private Engine per worker).
type Engine struct {
	now   float64
	curPt float64 // pt of the event being executed (shard.go reads it)
	seq   uint64
	sched scheduler
	nRun  uint64
	free  []*event // recycled events; a simulation at steady state stops allocating
	pool  PacketPool
	rec   *SchedRecorder // optional operation capture (RecordSched)

	// Event-loop statistics. Plain fields, not atomics: the engine is
	// single-threaded, so tracking costs a predictable increment per
	// event, and Instrument publishes them as snapshot-time Func
	// metrics instead of taxing the hot path.
	recycleHits uint64 // schedules served from the free list
	cancelled   uint64 // dead (cancelled) events released unfired
	depthMax    int    // high-water mark of pending events
}

// maxFreeEvents caps the event free list. A transient burst of events
// (e.g. a sweep's warm-up) would otherwise pin its high-water mark of
// dead event structs for the lifetime of the engine; beyond the cap,
// recycled events are dropped for the GC to collect.
const maxFreeEvents = 8192

// NewEngine returns an engine with the clock at zero, scheduling on
// DefaultScheduler (the calendar queue).
func NewEngine() *Engine { return NewEngineSched(DefaultScheduler) }

// NewEngineSched returns an engine using the given scheduler structure.
// All kinds order events identically — bit-for-bit equal simulation
// results — so this exists only for A/B measurement (qabench -sched)
// and the differential tests.
func NewEngineSched(kind SchedulerKind) *Engine {
	return &Engine{sched: newScheduler(kind)}
}

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.nRun }

// Pool returns the engine-owned packet free list. Like the engine
// itself it is single-threaded: all Get/Put calls must come from the
// goroutine driving the engine.
func (e *Engine) Pool() *PacketPool { return &e.pool }

// Instrument publishes the engine's event-loop statistics on reg as
// snapshot-time Func metrics: events scheduled, executed, recycled
// (free-list hits), cancelled (dead events released unfired), current
// and peak scheduler depth, and — when the calendar queue is active —
// its structure counters (resizes, bucket count, far-future overflow
// routings). The record path stays the engine's existing plain-field
// increments — instrumentation adds nothing per event. Snapshots must
// be synchronized with the engine's goroutine (taken from it, or after
// the run finishes).
func (e *Engine) Instrument(reg *metrics.Registry) {
	reg.CounterFunc("sim.events.scheduled", func() int64 { return int64(e.seq) })
	reg.CounterFunc("sim.events.executed", func() int64 { return int64(e.nRun) })
	reg.CounterFunc("sim.events.recycled", func() int64 { return int64(e.recycleHits) })
	reg.CounterFunc("sim.events.cancelled", func() int64 { return int64(e.cancelled) })
	reg.GaugeFunc("sim.sched.depth", func() float64 { return float64(e.sched.len()) })
	reg.GaugeFunc("sim.sched.maxdepth", func() float64 { return float64(e.depthMax) })
	if cq, ok := e.sched.(*calQueue); ok {
		reg.CounterFunc("sim.sched.resizes", func() int64 { return int64(cq.resizes) })
		reg.CounterFunc("sim.sched.overflow", func() int64 { return int64(cq.ovPushes) })
		reg.GaugeFunc("sim.sched.buckets", func() float64 { return float64(len(cq.heads)) })
	}
	reg.CounterFunc("sim.packets.pooled.gets", func() int64 { return int64(e.pool.Gets) })
	reg.CounterFunc("sim.packets.pooled.news", func() int64 { return int64(e.pool.News) })
}

// At schedules fn at absolute virtual time t. Scheduling in the past
// panics: it would silently corrupt causality.
func (e *Engine) At(t float64, fn func()) Timer {
	return e.schedule(t, e.now, fn, nil, nil)
}

// AtFunc schedules fn(arg) at absolute virtual time t. Unlike At, the
// callback and its argument are stored separately on the recycled event,
// so a call site that reuses a long-lived fn (a bound method stored at
// construction, or a package-level func) schedules without allocating.
func (e *Engine) AtFunc(t float64, fn func(arg any), arg any) Timer {
	return e.schedule(t, e.now, nil, fn, arg)
}

// AtFuncPrio schedules fn(arg) at absolute virtual time t with an
// explicit scheduling-time tie key pt. Events at equal time execute in
// ascending (pt, seq) order; At/AtFunc record pt = Now(), which makes
// that exactly the classic scheduling-sequence order for a lone engine.
// The sharded runner injects cross-shard arrivals at window barriers —
// wall-clock long after the peer engine emitted them — and passes the
// emitting engine's virtual clock as pt, so a serial run and a sharded
// run resolve same-instant ties (a packet arriving at a queue in the
// same instant the link frees a slot) identically. pt must not exceed
// t: an event cannot have been scheduled after it fires.
func (e *Engine) AtFuncPrio(t, pt float64, fn func(arg any), arg any) Timer {
	if pt > t {
		panic(fmt.Sprintf("sim: event at %.9f with scheduling tie key %.9f in its future", t, pt))
	}
	return e.schedule(t, pt, nil, fn, arg)
}

func (e *Engine) schedule(t, pt float64, fn func(), fn1 func(any), arg any) Timer {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %.9f before now %.9f", t, e.now))
	}
	if math.IsNaN(t) || math.IsInf(t, 0) {
		panic("sim: scheduling event at non-finite time")
	}
	e.seq++
	var ev *event
	if n := len(e.free); n > 0 {
		e.recycleHits++
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		ev.time, ev.pt, ev.seq, ev.fn, ev.fn1, ev.arg, ev.dead = t, pt, e.seq, fn, fn1, arg, false
	} else {
		ev = &event{time: t, pt: pt, seq: e.seq, fn: fn, fn1: fn1, arg: arg}
	}
	if e.rec != nil {
		e.rec.Ops = append(e.rec.Ops, SchedOp{Kind: SchedPush, Time: t})
	}
	e.sched.push(ev)
	if d := e.sched.len(); d > e.depthMax {
		e.depthMax = d
	}
	return Timer{ev: ev, gen: ev.gen}
}

// pop dequeues the minimum pending event, recording the operation when
// a SchedRecorder is attached.
func (e *Engine) popEvent() *event {
	ev := e.sched.pop()
	if ev != nil && e.rec != nil {
		e.rec.Ops = append(e.rec.Ops, SchedOp{Kind: SchedPop})
	}
	return ev
}

// release recycles a popped event. Bumping the generation invalidates
// every Timer that still points at it, so a stale Cancel cannot kill an
// unrelated future scheduling.
func (e *Engine) release(ev *event) {
	ev.gen++
	ev.fn, ev.fn1, ev.arg = nil, nil, nil
	if len(e.free) < maxFreeEvents {
		e.free = append(e.free, ev)
	}
}

// After schedules fn after delay d (clamped to be non-negative).
func (e *Engine) After(d float64, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, fn)
}

// AfterFunc schedules fn(arg) after delay d (clamped to be
// non-negative); see AtFunc for why this exists alongside After.
func (e *Engine) AfterFunc(d float64, fn func(arg any), arg any) Timer {
	if d < 0 {
		d = 0
	}
	return e.AtFunc(e.now+d, fn, arg)
}

// Step runs the next pending event. It reports false when no events remain.
func (e *Engine) Step() bool {
	for {
		ev := e.popEvent()
		if ev == nil {
			return false
		}
		if ev.dead {
			e.cancelled++
			e.release(ev)
			continue
		}
		e.now = ev.time
		e.curPt = ev.pt
		e.nRun++
		fn, fn1, arg := ev.fn, ev.fn1, ev.arg
		e.release(ev) // safe before fn: generation bump detaches all Timers
		if fn1 != nil {
			fn1(arg)
		} else {
			fn()
		}
		return true
	}
}

// RunUntil executes events with time <= t, then advances the clock to t.
// Dead (cancelled) events encountered at the head of the queue are
// released even when they lie beyond t, so a burst of cancelled timers
// ahead of the horizon does not linger across calls.
func (e *Engine) RunUntil(t float64) {
	for {
		ev := e.sched.peek()
		if ev == nil {
			break
		}
		if ev.dead {
			e.popEvent()
			e.cancelled++
			e.release(ev)
			continue
		}
		if ev.time > t {
			break
		}
		if !e.Step() {
			break
		}
	}
	if t > e.now {
		e.now = t
	}
}

// RunBelow executes events with time strictly less than t. Unlike
// RunUntil it neither advances the clock to t nor touches events at
// exactly t: an event sitting precisely on t stays queued. This is the
// windowed-execution primitive of the sharded runner — a conservative
// window [lo, hi) owns only the events below its horizon, and an event
// exactly on the horizon belongs to the next window, after the barrier
// has delivered any cross-shard packets that share its timestamp.
// Dead (cancelled) events at the head are released even beyond t,
// matching RunUntil.
func (e *Engine) RunBelow(t float64) {
	for {
		ev := e.sched.peek()
		if ev == nil {
			return
		}
		if ev.dead {
			e.popEvent()
			e.cancelled++
			e.release(ev)
			continue
		}
		if ev.time >= t {
			return
		}
		if !e.Step() {
			return
		}
	}
}

// Run drains the event queue completely.
func (e *Engine) Run() {
	for e.Step() {
	}
}
