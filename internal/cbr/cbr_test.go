package cbr

import (
	"math"
	"testing"

	"qav/internal/sim"
)

func TestCBRRateAndWindow(t *testing.T) {
	eng := sim.NewEngine()
	net := sim.NewDumbbell(eng, sim.DumbbellConfig{
		Rate: 1e6, Delay: 0.005, AccessDelay: 0.001, QueueBytes: 1 << 20,
	})
	src := NewSource(eng, net, Config{
		FlowID: 1, Rate: 50_000, PacketSize: 500, Start: 10, Stop: 20,
	})
	eng.RunUntil(30)

	wantPkts := int64(50_000 * 10 / 500) // 10 s on-window
	if math.Abs(float64(src.SentPkts-wantPkts)) > 2 {
		t.Fatalf("sent %d packets, want ~%d", src.SentPkts, wantPkts)
	}
	if src.RecvPkts != src.SentPkts {
		t.Fatalf("received %d != sent %d over a lossless link", src.RecvPkts, src.SentPkts)
	}
}

func TestCBRNeverStops(t *testing.T) {
	eng := sim.NewEngine()
	net := sim.NewDumbbell(eng, sim.DumbbellConfig{
		Rate: 1e6, Delay: 0.005, AccessDelay: 0.001, QueueBytes: 1 << 20,
	})
	src := NewSource(eng, net, Config{FlowID: 1, Rate: 10_000, PacketSize: 500})
	eng.RunUntil(10)
	want := int64(10_000 * 10 / 500)
	if src.SentPkts < want-1 {
		t.Fatalf("open-ended CBR sent %d, want ~%d", src.SentPkts, want)
	}
}

func TestCBRPanicsOnZeroRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero rate accepted")
		}
	}()
	eng := sim.NewEngine()
	net := sim.NewDumbbell(eng, sim.DumbbellConfig{Rate: 1, Delay: 0, AccessDelay: 0, QueueBytes: 1})
	NewSource(eng, net, Config{Rate: 0})
}

func TestCBRSaturatesBottleneck(t *testing.T) {
	// CBR at twice the bottleneck rate: roughly half the packets drop.
	eng := sim.NewEngine()
	net := sim.NewDumbbell(eng, sim.DumbbellConfig{
		Rate: 25_000, Delay: 0.005, AccessDelay: 0.001, QueueBytes: 8 * 500,
	})
	src := NewSource(eng, net, Config{FlowID: 1, Rate: 50_000, PacketSize: 500})
	eng.RunUntil(20)
	frac := float64(src.RecvPkts) / float64(src.SentPkts)
	if frac < 0.4 || frac > 0.65 {
		t.Fatalf("delivered fraction %.2f, want ~0.5 at 2x overload", frac)
	}
}
