// Package cbr provides a constant-bit-rate on/off source, used by the
// paper's responsiveness experiment (Fig 13): a CBR flow at half the
// bottleneck bandwidth switches on at t=30s and off at t=60s.
package cbr

import "qav/internal/sim"

// Config parameterizes a CBR source.
type Config struct {
	FlowID     int
	Rate       float64 // bytes/s while on
	PacketSize int     // bytes
	Start      float64 // seconds
	Stop       float64 // seconds; 0 or <Start = never stops
}

// Source emits fixed-size packets at a constant rate between Start and
// Stop. Packets are unacknowledged (open-loop), like ns-2's CBR agent.
type Source struct {
	cfg    Config
	eng    *sim.Engine
	net    sim.Network
	seq    int64
	sink   sim.Receiver
	tickFn func() // tick as a long-lived value: no closure per packet

	// SentPkts counts transmissions.
	SentPkts int64
	// RecvPkts counts deliveries at the sink.
	RecvPkts int64
}

// NewSource creates a CBR source on net. The sink just counts packets.
func NewSource(eng *sim.Engine, net sim.Network, cfg Config) *Source {
	if cfg.PacketSize <= 0 {
		cfg.PacketSize = 512
	}
	if cfg.Rate <= 0 {
		panic("cbr: rate must be positive")
	}
	s := &Source{cfg: cfg, eng: eng, net: net}
	s.sink = sim.ReceiverFunc(func(p *sim.Packet) { s.RecvPkts++ })
	s.tickFn = s.tick
	eng.At(cfg.Start, s.tickFn)
	return s
}

func (s *Source) active(now float64) bool {
	if now < s.cfg.Start {
		return false
	}
	return s.cfg.Stop <= s.cfg.Start || now < s.cfg.Stop
}

func (s *Source) tick() {
	now := s.eng.Now()
	if !s.active(now) {
		return
	}
	p := s.eng.Pool().Get()
	p.FlowID, p.Seq, p.Size = s.cfg.FlowID, s.seq, s.cfg.PacketSize
	p.Kind, p.SendTime = sim.Data, now
	s.seq++
	s.SentPkts++
	s.net.SendData(p, s.sink)
	s.eng.After(float64(s.cfg.PacketSize)/s.cfg.Rate, s.tickFn)
}
