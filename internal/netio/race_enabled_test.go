//go:build race

package netio

// raceEnabled skips the zero-allocation assertions under the race
// detector, whose instrumentation allocates on channel and atomic
// operations that are allocation-free in a normal build.
const raceEnabled = true
