package netio

import "math"

// This file is the O(due) pacing engine for the multi-client serving
// path: a two-level hierarchical timing wheel over the shard's
// sessions, plus the pacer abstraction that lets the original
// scan-every-session pump stay in-tree as the differential reference
// (the same displaced-implementation methodology as sim/calqueue.go vs
// the binary heap).
//
// Motivation. The scan pump touches every connected session on every
// wakeup to find the few whose nextSend is due, so a shard's wakeup
// cost grows with its population even when almost all of it is idle.
// The wheel schedules each session at its next wake instant —
// min(nextSend, deadline, idle expiry) — and a wakeup advances the
// wheel position and touches only the sessions whose slots fire:
// O(due), not O(connected).
//
// Layout. Time is quantized to ticks of 2^20 ns (~1.05 ms). Level 0 is
// 256 one-tick slots (~269 ms of horizon); level 1 is 256 slots of 256
// ticks each (~69 s). A session at absolute tick T lives in level-0
// slot T&255 when T is within 255 ticks of the position, else in
// level-1 slot (T>>8)&255; ticks beyond the two-level span are clamped
// to the last reachable slot and simply re-examined when it fires (the
// service pass recomputes the true wake instant and re-files, so a
// multi-minute idle timer costs one touch per ~69 s). When the
// position crosses a 256-tick boundary, the matching level-1 slot
// cascades down into level 0. All slot lists are doubly linked through
// the session structs themselves — scheduling, firing, and cancelling
// never allocate.
//
// Precision. Sessions are filed at floor(wake/tick), so a slot fires
// at or before the exact float64 wake instant. Fired sessions whose
// instant lies inside the current tick wait on the imminent list,
// which the pump re-checks against the exact float64 conditions every
// call — the wheel never sends early and never quantizes a pacing
// decision, which is what makes the wheel and scan pacers decide
// identically (asserted by TestPacerDifferentialRandomized).

const (
	// wheelTickShift sets the tick length: 2^20 ns ≈ 1.05 ms.
	wheelTickShift = 20
	wheelBits      = 8
	wheelSlots     = 1 << wheelBits // 256 slots per level
	wheelMask      = wheelSlots - 1
	// wheelSpanTicks is the horizon both levels cover together.
	wheelSpanTicks = wheelSlots * wheelSlots

	// wheelNone marks a session not queued anywhere; wheelImminent
	// marks one on the fired-but-not-yet-due list. Slots 0..255 are
	// level 0; 256..511 are level 1 (offset by wheelSlots).
	wheelNone     int32 = -1
	wheelImminent int32 = -2
)

// wheelTick converts a float64-seconds instant to an absolute tick.
func wheelTick(t float64) int64 {
	return int64(t*1e9) >> wheelTickShift
}

// wheelTickStart is the instant tick t begins.
func wheelTickStart(t int64) float64 {
	return float64(t<<wheelTickShift) / 1e9
}

// timingWheel is the two-level wheel. Single-owner (one shard
// goroutine); all operations are allocation-free.
type timingWheel struct {
	l0, l1 [wheelSlots]*session
	cur    int64 // wheel position: the last tick already fired
	n      int   // sessions resident in l0+l1 (imminent excluded)

	// imminent holds fired sessions whose exact wake instant is inside
	// the current tick (or that are backlogged past the batch budget);
	// the pump scans it with exact float64 checks every call.
	imminent *session

	cascades uint64 // level-1 -> level-0 slot migrations
}

// headOf returns the list head cell for a slot code.
func (w *timingWheel) headOf(slot int32) **session {
	switch {
	case slot == wheelImminent:
		return &w.imminent
	case slot < wheelSlots:
		return &w.l0[slot]
	default:
		return &w.l1[slot-wheelSlots]
	}
}

// push links st at the head of slot's list.
func (w *timingWheel) push(st *session, slot int32) {
	h := w.headOf(slot)
	st.wslot = slot
	st.wprev = nil
	st.wnext = *h
	if *h != nil {
		(*h).wprev = st
	}
	*h = st
	if slot != wheelImminent {
		w.n++
	}
}

// unlink removes st from whichever list holds it. Idempotent.
func (w *timingWheel) unlink(st *session) {
	if st.wslot == wheelNone {
		return
	}
	if st.wprev != nil {
		st.wprev.wnext = st.wnext
	} else {
		*w.headOf(st.wslot) = st.wnext
	}
	if st.wnext != nil {
		st.wnext.wprev = st.wprev
	}
	if st.wslot != wheelImminent {
		w.n--
	}
	st.wslot, st.wnext, st.wprev = wheelNone, nil, nil
}

// schedule files st at absolute tick. Ticks at or behind the position
// are clamped one tick ahead (they fire on the next advance); ticks
// beyond the span are clamped to the last slot whose epoch has not yet
// cascaded, so a far-future timer is revisited once per span rather
// than lost to level-1 slot aliasing.
func (w *timingWheel) schedule(st *session, tick int64) {
	if tick <= w.cur {
		tick = w.cur + 1
	}
	if max := (w.cur &^ int64(wheelMask)) + wheelSpanTicks - 1; tick > max {
		tick = max
	}
	st.wtick = tick
	if tick-w.cur < wheelSlots {
		w.push(st, int32(tick&wheelMask))
	} else {
		w.push(st, wheelSlots+int32((tick>>wheelBits)&wheelMask))
	}
}

// place files st by its exact wake instant: already-due (or
// current-tick) wakes go straight to the imminent list so no session
// ever waits a tick it does not owe, everything else is scheduled.
func (w *timingWheel) place(st *session, wake float64) {
	if t := wheelTick(wake); t > w.cur {
		w.schedule(st, t)
	} else {
		w.push(st, wheelImminent)
	}
}

// advance moves the position to tick `to`, cascading level-1 slots at
// epoch boundaries and moving every fired slot onto the imminent list.
// Work is proportional to ticks crossed plus sessions fired; an empty
// wheel jumps in O(1).
func (w *timingWheel) advance(to int64) {
	if to <= w.cur {
		return
	}
	if w.n == 0 {
		w.cur = to
		return
	}
	if to-w.cur >= wheelSpanTicks {
		// Everything scheduled lies at or behind `to`: fire it all.
		for i := range w.l0 {
			w.fireSlot(&w.l0[i])
		}
		for i := range w.l1 {
			w.fireSlot(&w.l1[i])
		}
		w.cur = to
		return
	}
	for w.cur < to {
		w.cur++
		if w.cur&wheelMask == 0 {
			w.cascade(int((w.cur >> wheelBits) & wheelMask))
		}
		if w.l0[w.cur&wheelMask] != nil {
			w.fireSlot(&w.l0[w.cur&wheelMask])
		}
		if w.n == 0 {
			w.cur = to
			return
		}
	}
}

// fireSlot moves a whole slot list onto the imminent list.
func (w *timingWheel) fireSlot(h **session) {
	for *h != nil {
		st := *h
		w.unlink(st)
		w.push(st, wheelImminent)
	}
}

// cascade redistributes a level-1 slot into level 0. At the boundary
// tick B every session in the slot has wtick in [B, B+255], so each
// lands in the level-0 slot that fires at exactly its tick (a session
// at tick B lands in the slot advance fires immediately after).
func (w *timingWheel) cascade(slot int) {
	for h := &w.l1[slot]; *h != nil; {
		st := *h
		w.unlink(st)
		w.cascades++
		w.push(st, int32(st.wtick&wheelMask))
	}
}

// wheelScanSlots bounds the nextWake lookahead. It only needs to cover
// the idle-sweep sleep cap (~48 ticks): anything farther is reached by
// the periodic sweep wakeup before it could fire anyway.
const wheelScanSlots = 64

// nextWake returns the start instant of the nearest scheduled level-0
// tick within the lookahead, or +Inf (the caller caps the sleep at
// idleSweepSec, which also covers level-1 residents and the rare
// pre-cascade epoch boundary).
func (w *timingWheel) nextWake() float64 {
	if w.n == 0 {
		return math.Inf(1)
	}
	for d := int64(1); d <= wheelScanSlots; d++ {
		t := w.cur + d
		if t&wheelMask == 0 {
			break // next epoch cascades first; the sweep gets there
		}
		if w.l0[t&wheelMask] != nil {
			return wheelTickStart(t)
		}
	}
	return math.Inf(1)
}

// pacer decides which sessions a shard wakeup examines. Both
// implementations drive the identical per-session service logic
// (expiry check, bounded catch-up burst, batch build) — they differ
// only in how the due set is found, which is what the randomized
// differential suite pins.
type pacer interface {
	// add registers a newly created session.
	add(sh *shard, st *session, now float64)
	// update repositions a session whose wake instant may have moved
	// earlier (a re-request shortening the deadline). Later-moving
	// wakes (acks extending idle expiry) are handled lazily at fire
	// time and need no call.
	update(sh *shard, st *session, now float64)
	// remove forgets an expired session.
	remove(st *session)
	// pump services the due set at now: expiry, sends, one batched
	// write. Returns packets written and the earliest next wake
	// instant (+Inf when nothing is scheduled within the lookahead).
	pump(sh *shard, now float64) (sent int, next float64)
}

// PacerKind selects a pacing implementation.
type PacerKind string

const (
	// PacerWheel is the O(due) hierarchical timing wheel (default).
	PacerWheel PacerKind = "wheel"
	// PacerScan is the original scan-every-session pump, kept as the
	// differential reference and A/B baseline.
	PacerScan PacerKind = "scan"
)

func newPacer(kind PacerKind) pacer {
	if kind == PacerScan {
		return &scanPacer{}
	}
	return &wheelPacer{}
}

// scanPacer: every pump walks the whole session table. O(sessions) per
// wakeup — the reference the wheel is measured and differentially
// tested against.
type scanPacer struct{}

func (p *scanPacer) add(*shard, *session, float64)    {}
func (p *scanPacer) update(*shard, *session, float64) {}
func (p *scanPacer) remove(*session)                  {}

func (p *scanPacer) pump(sh *shard, now float64) (sent int, next float64) {
	next = math.Inf(1)
	k := 0
	for i := 0; i < len(sh.order); i++ {
		st := sh.order[i]
		if sh.expired(st, now) {
			sh.removeSession(st)
			i--
			continue
		}
		if st.nextSend <= now {
			k = sh.buildDue(st, now, k)
		}
		if st.nextSend < next {
			next = st.nextSend
		}
	}
	sh.flush(k)
	return k, next
}

// wheelPacer: pump advances the wheel to now's tick and services only
// the sessions that fired, re-filing each at its next wake instant.
type wheelPacer struct {
	w timingWheel
}

func (p *wheelPacer) add(sh *shard, st *session, now float64) {
	p.w.place(st, sh.wakeAt(st))
}

func (p *wheelPacer) update(sh *shard, st *session, now float64) {
	p.w.unlink(st)
	p.w.place(st, sh.wakeAt(st))
}

func (p *wheelPacer) remove(st *session) {
	p.w.unlink(st)
}

func (p *wheelPacer) pump(sh *shard, now float64) (sent int, next float64) {
	w := &p.w
	w.advance(wheelTick(now))
	next = math.Inf(1)
	k := 0
	for st := w.imminent; st != nil; {
		nxt := st.wnext
		if sh.expired(st, now) {
			sh.removeSession(st) // unlinks via pacer.remove
			st = nxt
			continue
		}
		if st.nextSend <= now && k < len(sh.msgs) {
			k = sh.buildDue(st, now, k)
		}
		// Re-file at the (possibly moved) wake instant. Wakes still in
		// the current tick — sub-tick pacing, a backlog deeper than
		// one burst, or a batch-budget leftover — stay imminent and
		// drive `next` with the exact float64 instant.
		wake := sh.wakeAt(st)
		if t := wheelTick(wake); t > w.cur {
			w.unlink(st)
			w.schedule(st, t)
		} else if wake < next {
			next = wake
		}
		st = nxt
	}
	sh.flush(k)
	if wn := w.nextWake(); wn < next {
		next = wn
	}
	return k, next
}
