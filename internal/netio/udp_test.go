package netio

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"qav/internal/core"
	"qav/internal/rap"
	"qav/internal/video"
)

func listenUDP(t *testing.T) *net.UDPConn {
	t.Helper()
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	return conn
}

func testServer(t *testing.T, c float64, maxRate float64) *Server {
	t.Helper()
	conn := listenUDP(t)
	t.Cleanup(func() { conn.Close() })
	srv, err := NewServer(conn, ServerConfig{
		QA: core.Params{C: c, Kmax: 2, MaxLayers: 6, StartupSec: 0.2},
		RAP: rap.Config{
			PacketSize: 512,
			InitialRTT: 0.02,
			MaxRate:    maxRate,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// runStream serves one client for dur and returns both sides' stats.
func runStream(t *testing.T, srv *Server, dialAddr string, dur time.Duration) (ServerStats, ClientStats) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), dur+10*time.Second)
	defer cancel()

	var wg sync.WaitGroup
	var srvErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		srvErr = srv.Serve(ctx)
	}()

	cl, err := Dial(dialAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Stream(ctx, dur); err != nil {
		t.Fatalf("client: %v", err)
	}
	cancel()
	wg.Wait()
	if srvErr != nil && srvErr != context.Canceled && srvErr != context.DeadlineExceeded {
		t.Fatalf("server: %v", srvErr)
	}
	return srv.Stats(), cl.Stats()
}

func TestUDPDirectStream(t *testing.T) {
	srv := testServer(t, 20_000, 200_000)
	ss, cs := runStream(t, srv, srv.Addr(), 2*time.Second)
	if cs.Packets == 0 {
		t.Fatal("client received nothing")
	}
	if ss.AckedPkts == 0 {
		t.Fatal("server saw no ACKs")
	}
	// Lossless loopback: nearly everything is acknowledged.
	if float64(ss.AckedPkts) < 0.8*float64(ss.SentPkts) {
		t.Fatalf("acked %d of %d sent", ss.AckedPkts, ss.SentPkts)
	}
	// With MaxRate 200 KB/s and C 20 KB/s, multiple layers must appear.
	if ss.ActiveLayers < 2 {
		t.Fatalf("server never added layers: %d", ss.ActiveLayers)
	}
	if cs.LayerBytes(0) == 0 || cs.LayerBytes(1) == 0 {
		t.Fatalf("client layer bytes: %v", cs.ByLayer)
	}
}

func TestUDPAdaptsToPipeBandwidth(t *testing.T) {
	srv := testServer(t, 10_000, 0)
	pipe, err := NewPipe("127.0.0.1:0", srv.Addr(),
		PipeConfig{}, // acks upstream: clean
		PipeConfig{Rate: 60_000, Delay: 10 * time.Millisecond, QueueBytes: 8 << 10}, // data downstream
		1)
	if err != nil {
		t.Fatal(err)
	}
	defer pipe.Close()

	ss, cs := runStream(t, srv, pipe.Addr(), 4*time.Second)
	if ss.Backoffs == 0 {
		t.Fatal("no backoffs despite a 60 KB/s shaper")
	}
	// Client goodput tracks the shaper: bounded above by it, and the
	// sender must keep it reasonably utilized despite oscillation.
	goodput := float64(cs.Bytes) / cs.LastArrival.Seconds()
	if goodput > 1.3*60_000 {
		t.Fatalf("goodput %.0f exceeds shaped rate", goodput)
	}
	if goodput < 0.25*60_000 {
		t.Fatalf("goodput %.0f badly underutilizes the 60 KB/s shaper", goodput)
	}
	// Layers adapt to ~6C max; must have reached at least 2 but never 6+.
	if ss.ActiveLayers < 1 || cs.HighestLayer >= 6 {
		t.Fatalf("layers: server %d, client max %d", ss.ActiveLayers, cs.HighestLayer)
	}
}

func TestUDPSurvivesRandomLoss(t *testing.T) {
	srv := testServer(t, 10_000, 100_000)
	pipe, err := NewPipe("127.0.0.1:0", srv.Addr(),
		PipeConfig{},
		PipeConfig{Loss: 0.02, Delay: 5 * time.Millisecond},
		7)
	if err != nil {
		t.Fatal(err)
	}
	defer pipe.Close()

	ss, cs := runStream(t, srv, pipe.Addr(), 3*time.Second)
	if cs.Packets == 0 {
		t.Fatal("nothing received through lossy pipe")
	}
	if ss.Backoffs == 0 {
		t.Fatal("2% loss never triggered a backoff")
	}
	// Base layer keeps flowing.
	if cs.LayerBytes(0) == 0 {
		t.Fatal("base layer starved")
	}
}

func TestPipeLossRate(t *testing.T) {
	// A crude loss-rate check: fire 1000 packets through a 30% lossy
	// pipe at low rate and count arrivals.
	echo := listenUDP(t)
	defer echo.Close()
	var got int64
	var mu sync.Mutex
	done := make(chan struct{})
	go func() {
		buf := make([]byte, 2048)
		for {
			echo.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
			_, _, err := echo.ReadFromUDP(buf)
			if err != nil {
				select {
				case <-done:
					return
				default:
					continue
				}
			}
			mu.Lock()
			got++
			mu.Unlock()
		}
	}()

	pipe, err := NewPipe("127.0.0.1:0", echo.LocalAddr().String(),
		PipeConfig{Loss: 0.3}, PipeConfig{}, 99)
	if err != nil {
		t.Fatal(err)
	}
	defer pipe.Close()

	cl, err := Dial(pipe.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	msg := make([]byte, ReqLen)
	EncodeReq(msg, Req{DurationMs: 1})
	const total = 1000
	for i := 0; i < total; i++ {
		cl.conn.Write(msg)
		// Pace the burst so neither socket buffer overflows: only the
		// pipe's 30% loss should drop packets.
		time.Sleep(200 * time.Microsecond)
	}
	time.Sleep(300 * time.Millisecond)
	close(done)
	mu.Lock()
	frac := float64(got) / total
	mu.Unlock()
	if frac < 0.55 || frac > 0.85 {
		t.Fatalf("delivered fraction %.2f through 30%% loss, want ~0.70", frac)
	}
	if up, _ := pipe.Drops(); up == 0 {
		t.Fatal("drop counter never incremented")
	}
}

func TestPipeDelay(t *testing.T) {
	echo := listenUDP(t)
	defer echo.Close()
	arrived := make(chan time.Time, 1)
	go func() {
		buf := make([]byte, 2048)
		echo.SetReadDeadline(time.Now().Add(2 * time.Second))
		if _, _, err := echo.ReadFromUDP(buf); err == nil {
			arrived <- time.Now()
		}
	}()

	pipe, err := NewPipe("127.0.0.1:0", echo.LocalAddr().String(),
		PipeConfig{Delay: 80 * time.Millisecond}, PipeConfig{}, 5)
	if err != nil {
		t.Fatal(err)
	}
	defer pipe.Close()

	cl, err := Dial(pipe.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	msg := make([]byte, ReqLen)
	EncodeReq(msg, Req{DurationMs: 1})
	sent := time.Now()
	cl.conn.Write(msg)
	select {
	case at := <-arrived:
		d := at.Sub(sent)
		if d < 70*time.Millisecond || d > 300*time.Millisecond {
			t.Fatalf("one-way delay %v, want ~80ms", d)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("packet never arrived")
	}
}

func TestSelectiveRetransmissionRepairsBaseLayer(t *testing.T) {
	srv := testServer(t, 10_000, 120_000)
	// A lossy downstream path: base-layer holes appear and the client's
	// NACKs must get them repaired.
	pipe, err := NewPipe("127.0.0.1:0", srv.Addr(),
		PipeConfig{},
		PipeConfig{Loss: 0.05, Delay: 5 * time.Millisecond},
		11)
	if err != nil {
		t.Fatal(err)
	}
	defer pipe.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); srv.Serve(ctx) }()

	cl, err := DialVideo(pipe.Addr(), video.Config{C: 10_000, MaxLayers: 6, StartupBytes: 2048})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Stream(ctx, 5*time.Second); err != nil {
		t.Fatalf("client: %v", err)
	}
	cancel()
	wg.Wait()

	cs := cl.Stats()
	ss := srv.Stats()
	if cs.NacksSent == 0 {
		t.Fatal("5% loss produced no NACKs")
	}
	if ss.Retransmits == 0 {
		t.Fatal("server never retransmitted despite NACKs")
	}
	if cs.Retransmits == 0 {
		t.Fatal("no repaired holes observed at the client")
	}
	// The playout model ran: playback happened and quality integrated.
	if cs.Playback.PlayedSec < 2 {
		t.Fatalf("playout model played only %.2fs", cs.Playback.PlayedSec)
	}
	if cs.Playback.DecodableLayerSec <= 0 {
		t.Fatal("no decodable layer-seconds recorded")
	}
	// Repairs keep base-layer gap time small relative to played time.
	if gap := cs.Playback.LayerGapSec[0]; gap > 0.3*cs.Playback.PlayedSec {
		t.Fatalf("base layer gap %.2fs of %.2fs played despite retransmission",
			gap, cs.Playback.PlayedSec)
	}
}
