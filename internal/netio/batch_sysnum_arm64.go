//go:build linux

package netio

// Syscall numbers for the batched datagram calls on linux/arm64
// (asm-generic unified numbers, ABI-frozen).
const (
	sysRECVMMSG = 243
	sysSENDMMSG = 269
)
