package netio

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/netip"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"qav/internal/core"
	"qav/internal/metrics"
	"qav/internal/rap"
)

// SocketMode names the two socket layouts a MultiServer can run in.
// The mode is chosen by constructor — NewMultiServer (demux) vs
// NewMultiServerConns (reuseport/owned) — these constants exist so
// command-line tools can expose the choice as a flag.
type SocketMode string

const (
	// SocketDemux: one shared socket, one reader goroutine
	// demultiplexing to per-shard inboxes by FNV address hash. Portable
	// (works on every platform) and the non-linux default.
	SocketDemux SocketMode = "demux"
	// SocketReuseport: one SO_REUSEPORT socket per shard, each shard
	// goroutine doing its own batched reads and writes. The kernel
	// steers each client 4-tuple to a consistent socket, so the
	// reader->inbox hop (and its sheds) disappears. Linux only; see
	// ListenReuseport.
	SocketReuseport SocketMode = "reuseport"
)

// MultiConfig parameterizes a multi-client streaming server.
type MultiConfig struct {
	// QA configures every stream's quality adaptation controller.
	QA core.Params
	// RAP configures every stream's congestion control. PacketSize is
	// the wire size (header + payload); if zero it defaults to 512.
	RAP rap.Config
	// Shards is the number of independent client-table shards, each
	// owned by one goroutine. When unset it defaults to
	// DefaultShards(): GOMAXPROCS capped at 8, because in demux mode
	// the single reader goroutine becomes the bottleneck well before
	// eight shards are saturated and further shards only add wakeups.
	// An explicit value is honored as given — including values above 8
	// (useful in reuseport mode, where every shard owns a socket and
	// there is no shared reader); a value above GOMAXPROCS is accepted
	// but flagged in Stats().ShardsOverCPU rather than silently
	// clamped, since shards beyond the core count just time-slice.
	// Ignored by NewMultiServerConns, which runs one shard per socket.
	Shards int
	// Batch is the number of datagrams moved per batched syscall
	// (default 32, capped at the platform batch capacity).
	Batch int
	// BatchKind selects the I/O implementation (default BatchAuto:
	// mmsg on Linux, generic elsewhere).
	BatchKind BatchKind
	// Pacer selects how a shard finds its due sessions: PacerWheel
	// (default) pays O(due) per wakeup via a hierarchical timing
	// wheel; PacerScan is the original walk-every-session pump, kept
	// as the differential reference and A/B baseline.
	Pacer PacerKind
	// MaxClients caps concurrent streams; joins beyond it are refused
	// (default 4096).
	MaxClients int
	// MaxStream bounds how long a single stream may run (default 1 hour).
	MaxStream time.Duration
	// IdleTimeout expires clients whose acknowledgements stop arriving
	// (default 10 s).
	IdleTimeout time.Duration
	// SeqWindow is the per-client seq->layer attribution ring size,
	// a power of two (default 1024). Memory per client scales with it.
	SeqWindow int
}

// DefaultShards is the shard count used when MultiConfig.Shards is
// unset: GOMAXPROCS, capped at 8 (see the Shards field doc for why).
func DefaultShards() int {
	n := runtime.GOMAXPROCS(0)
	if n > 8 {
		n = 8
	}
	return n
}

func (c *MultiConfig) normalize() error {
	if c.RAP.PacketSize <= 0 {
		c.RAP.PacketSize = 512
	}
	if c.RAP.PacketSize <= DataHeaderLen {
		return fmt.Errorf("netio: packet size %d <= header %d", c.RAP.PacketSize, DataHeaderLen)
	}
	if c.Shards <= 0 {
		c.Shards = DefaultShards()
	}
	if c.Batch <= 0 {
		c.Batch = 32
	}
	switch c.Pacer {
	case "":
		c.Pacer = PacerWheel
	case PacerWheel, PacerScan:
	default:
		return fmt.Errorf("netio: unknown pacer %q", c.Pacer)
	}
	if c.MaxClients <= 0 {
		c.MaxClients = 4096
	}
	if c.MaxStream <= 0 {
		c.MaxStream = time.Hour
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = 10 * time.Second
	}
	if c.SeqWindow <= 0 {
		c.SeqWindow = 1 << 10
	}
	if c.SeqWindow&(c.SeqWindow-1) != 0 {
		return fmt.Errorf("netio: SeqWindow %d not a power of two", c.SeqWindow)
	}
	return nil
}

// inMsg is one demultiplexed inbound datagram, passed by value through
// a shard's inbox channel (no per-message allocation).
type inMsg struct {
	addr  netip.AddrPort
	kind  byte
	ack   Ack    // valid when kind == KindAck
	durMs uint32 // valid when kind == KindReq
}

// MultiServer streams layered data to many clients concurrently. Two
// socket layouts exist:
//
// Demux (NewMultiServer): one UDP socket; a reader goroutine drains it
// in batches and demultiplexes requests/acknowledgements to per-shard
// inboxes by client address hash.
//
// Owned (NewMultiServerConns): one socket per shard — on linux,
// SO_REUSEPORT siblings on one port (ListenReuseport) — and each shard
// goroutine does its own batched reads, deleting the reader->inbox
// hop and its sheds.
//
// In both modes each shard goroutine exclusively owns its client table
// and paces its sessions' data packets out through its own batched
// writer — there is no mutex anywhere on the packet path, and at
// steady state the send loop performs zero heap allocations per packet
// (buffers, batch scratch, session state, and the pacing wheel's
// intrusive lists are all preallocated; inboxes carry values). Time is
// sampled once per shard loop iteration into a coarse shared clock
// (coarseNs); the per-message paths never syscall for time.
type MultiServer struct {
	cfg     MultiConfig
	conn    *net.UDPConn // demux mode; nil when shards own their sockets
	reader  BatchConn    // demux mode
	owned   bool         // shards own their sockets (reuseport mode)
	shards  []*shard
	start   time.Time
	payload []byte // shared zero payload, read-only

	// coarseNs is the coarse clock: monotonic nanoseconds since start,
	// published by publishNow once per shard/reader loop iteration and
	// read lock-free everywhere a "recent enough" timestamp suffices
	// (read-deadline arming, inbox-wakeup handling). Staleness is
	// bounded by the shortest loop period (at most idleSweepSec).
	coarseNs atomic.Int64

	active atomic.Int64 // live sessions across all shards

	reg       *metrics.Registry
	accepted  *metrics.Counter
	rejected  *metrics.Counter
	expired   *metrics.Counter
	badPkt    *metrics.Counter
	inboxDrop *metrics.Counter
	unknown   *metrics.Counter
	sent      *metrics.Counter
	acked     *metrics.Counter
	shardwarn *metrics.Counter
	batchSz   *metrics.Histogram
	sessIns   sessionInstruments
}

// shard owns a disjoint subset of clients. All shard state except the
// sheds counter is touched only by the shard's goroutine.
type shard struct {
	srv      *MultiServer
	inbox    chan inMsg // demux mode; nil when the shard owns a socket
	sessions map[netip.AddrPort]*session
	order    []*session // insertion order; swap-removed on expiry
	writer   BatchConn
	msgs     []Message // preallocated write batch (Buf sized to PacketSize)
	pacer    pacer
	idleSec  float64      // cfg.IdleTimeout in seconds, cached off the hot path
	sheds    atomic.Int64 // inbox messages shed for this shard (demux mode; written by the reader)

	// Owned-socket (reuseport) mode only:
	conn  *net.UDPConn
	rdBuf []Message // preallocated read batch
}

// newMulti validates the config and builds the shared (mode-agnostic)
// server core; the constructors attach sockets and shards.
func newMulti(cfg MultiConfig) (*MultiServer, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	// Validate QA params once; per-session construction cannot fail after.
	if _, err := core.NewController(cfg.QA); err != nil {
		return nil, err
	}
	reg := metrics.NewRegistry()
	s := &MultiServer{
		cfg:       cfg,
		start:     time.Now(),
		payload:   make([]byte, cfg.RAP.PacketSize-DataHeaderLen),
		reg:       reg,
		accepted:  reg.Counter("srv.accepted"),
		rejected:  reg.Counter("srv.rejected"),
		expired:   reg.Counter("srv.expired"),
		badPkt:    reg.Counter("srv.badpkt"),
		inboxDrop: reg.Counter("srv.inboxdrop"),
		unknown:   reg.Counter("srv.unknownack"),
		sent:      reg.Counter("srv.sent"),
		acked:     reg.Counter("srv.acked"),
		shardwarn: reg.Counter("srv.shardsovercpu"),
		batchSz:   reg.Histogram("srv.batchsz", metrics.HistogramOpts{MinExp: 0, MaxExp: 8}),
	}
	s.sessIns = sessionInstruments{
		Retransmits: reg.Counter("srv.retransmits"),
		NackDrops:   reg.Counter("srv.nackdrops"),
		Delivered:   reg.Counter("srv.delivered"),
	}
	reg.GaugeFunc("srv.clients", func() float64 { return float64(s.active.Load()) })
	reg.GaugeFunc("srv.shards", func() float64 { return float64(len(s.shards)) })
	if cfg.Shards > runtime.GOMAXPROCS(0) {
		// Honored, not clamped: the caller asked for it. The counter
		// makes the oversubscription visible in metrics and Stats.
		s.shardwarn.Inc()
	}
	return s, nil
}

func (s *MultiServer) addShard(writer BatchConn) *shard {
	sh := &shard{
		srv:      s,
		sessions: make(map[netip.AddrPort]*session),
		writer:   writer,
		msgs:     make([]Message, s.cfg.Batch),
		pacer:    newPacer(s.cfg.Pacer),
		idleSec:  s.cfg.IdleTimeout.Seconds(),
	}
	for j := range sh.msgs {
		sh.msgs[j].Buf = make([]byte, s.cfg.RAP.PacketSize)
	}
	s.shards = append(s.shards, sh)
	return sh
}

// NewMultiServer wraps an already-bound UDP socket in a sharded
// multi-client server (demux mode). The socket stays caller-owned:
// close it (or cancel Serve's context) to shut down.
func NewMultiServer(conn *net.UDPConn, cfg MultiConfig) (*MultiServer, error) {
	s, err := newMulti(cfg)
	if err != nil {
		return nil, err
	}
	s.conn = conn
	if s.reader, err = NewBatchConn(conn, s.cfg.BatchKind); err != nil {
		return nil, err
	}
	for i := 0; i < s.cfg.Shards; i++ {
		writer, err := NewBatchConn(conn, s.cfg.BatchKind)
		if err != nil {
			return nil, err
		}
		sh := s.addShard(writer)
		sh.inbox = make(chan inMsg, 4*s.cfg.Batch)
	}
	return s, nil
}

// NewMultiServerConns builds a server where each shard exclusively owns
// one of the given sockets (owned/reuseport mode): no reader goroutine,
// no inbox channels, no sheds — each shard does its own batched reads
// between pump wakeups. The sockets are expected to share a port via
// SO_REUSEPORT (see ListenReuseport) so the kernel steers each client's
// 4-tuple to a consistent shard; any per-socket layout works, though —
// distinct ports with an external balancer is equally valid. cfg.Shards
// is ignored: there is one shard per socket. Sockets stay caller-owned.
func NewMultiServerConns(conns []*net.UDPConn, cfg MultiConfig) (*MultiServer, error) {
	if len(conns) == 0 {
		return nil, fmt.Errorf("netio: NewMultiServerConns needs at least one socket")
	}
	cfg.Shards = len(conns)
	s, err := newMulti(cfg)
	if err != nil {
		return nil, err
	}
	s.owned = true
	for _, c := range conns {
		bc, err := NewBatchConn(c, s.cfg.BatchKind)
		if err != nil {
			return nil, err
		}
		sh := s.addShard(bc)
		sh.conn = c
		sh.rdBuf = make([]Message, s.cfg.Batch)
		for j := range sh.rdBuf {
			sh.rdBuf[j].Buf = make([]byte, 2048) // acks and reqs are tens of bytes
		}
	}
	return s, nil
}

// Metrics returns the server's aggregate metrics registry. Snapshots
// are safe to take concurrently with serving.
func (s *MultiServer) Metrics() *metrics.Registry { return s.reg }

// WriteMetricsJSON writes the current registry snapshot as indented
// JSON, expvar-style.
func (s *MultiServer) WriteMetricsJSON(w io.Writer) error { return s.reg.WriteJSON(w) }

// Addr returns the server's bound address (the first socket's, in
// owned mode — reuseport siblings share it).
func (s *MultiServer) Addr() string {
	if s.owned {
		return s.shards[0].conn.LocalAddr().String()
	}
	return s.conn.LocalAddr().String()
}

// BatchKind reports the I/O implementation actually in use.
func (s *MultiServer) BatchKind() BatchKind {
	if s.owned {
		return s.shards[0].writer.Kind()
	}
	return s.reader.Kind()
}

// PacerKind reports the pacing implementation in use.
func (s *MultiServer) PacerKind() PacerKind { return s.cfg.Pacer }

// SocketMode reports the socket layout in use.
func (s *MultiServer) SocketMode() SocketMode {
	if s.owned {
		return SocketReuseport
	}
	return SocketDemux
}

// ActiveClients returns the number of live streams.
func (s *MultiServer) ActiveClients() int { return int(s.active.Load()) }

// publishNow samples the monotonic clock once and publishes it to the
// coarse clock. Shard and reader loops call it once per iteration;
// everything inside an iteration (handle/drain/pump, deadline arming)
// reuses the published instant instead of syscalling.
func (s *MultiServer) publishNow() float64 {
	ns := time.Since(s.start).Nanoseconds()
	s.coarseNs.Store(ns)
	return float64(ns) / 1e9
}

// coarseDeadline turns a duration-from-now into an absolute deadline
// off the coarse clock — no time syscall. The result lags a fresh
// time.Now() by at most the publisher loop period, which callers
// absorb by construction (deadlines here are polling intervals, not
// precision timers).
func (s *MultiServer) coarseDeadline(d time.Duration) time.Time {
	return s.start.Add(time.Duration(s.coarseNs.Load()) + d)
}

// MultiStats is a point-in-time aggregate snapshot.
type MultiStats struct {
	ActiveClients int
	Accepted      int64
	Rejected      int64
	Expired       int64
	SentPkts      int64
	AckedPkts     int64
	Delivered     int64
	Retransmits   int64
	NackDrops     int64
	BadPackets    int64
	InboxDrops    int64
	// InboxDropsPerShard breaks InboxDrops down by destination shard
	// (all zeros in owned/reuseport mode, which has no inboxes). A
	// single hot entry means one shard's clients are flooding; uniform
	// drops mean the shards themselves can't keep up.
	InboxDropsPerShard []int64
	UnknownAcks        int64
	// ShardsOverCPU is nonzero when the configured shard count exceeds
	// GOMAXPROCS (the shards merely time-slice; see MultiConfig.Shards).
	ShardsOverCPU int64
}

// Stats returns aggregate counters. Safe concurrently with serving.
func (s *MultiServer) Stats() MultiStats {
	perShard := make([]int64, len(s.shards))
	for i, sh := range s.shards {
		perShard[i] = sh.sheds.Load()
	}
	return MultiStats{
		ActiveClients:      int(s.active.Load()),
		Accepted:           s.accepted.Load(),
		Rejected:           s.rejected.Load(),
		Expired:            s.expired.Load(),
		SentPkts:           s.sent.Load(),
		AckedPkts:          s.acked.Load(),
		Delivered:          s.sessIns.Delivered.Load(),
		Retransmits:        s.sessIns.Retransmits.Load(),
		NackDrops:          s.sessIns.NackDrops.Load(),
		BadPackets:         s.badPkt.Load(),
		InboxDrops:         s.inboxDrop.Load(),
		InboxDropsPerShard: perShard,
		UnknownAcks:        s.unknown.Load(),
		ShardsOverCPU:      s.shardwarn.Load(),
	}
}

// Serve runs the shard goroutines (plus, in demux mode, the reader)
// until ctx is cancelled or the sockets fail.
func (s *MultiServer) Serve(ctx context.Context) error {
	var wg sync.WaitGroup
	if s.owned {
		errc := make(chan error, len(s.shards))
		for _, sh := range s.shards {
			wg.Add(1)
			go func(sh *shard) {
				defer wg.Done()
				errc <- sh.runOwned(ctx)
			}(sh)
		}
		wg.Wait()
		if ctx.Err() != nil {
			return ctx.Err()
		}
		for range s.shards {
			if err := <-errc; err != nil {
				return err
			}
		}
		return nil
	}
	for _, sh := range s.shards {
		wg.Add(1)
		go func(sh *shard) {
			defer wg.Done()
			sh.run(ctx)
		}(sh)
	}
	err := s.readLoop(ctx)
	wg.Wait()
	if ctx.Err() != nil {
		return ctx.Err()
	}
	return err
}

// shardOf hashes a client address to its owning shard (FNV-1a over the
// 16-byte address and port; allocation-free). Demux mode only — in
// owned mode the kernel's reuseport steering decides, and the two
// need not agree (see DESIGN.md).
func (s *MultiServer) shardOf(addr netip.AddrPort) *shard {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	a16 := addr.Addr().As16()
	for _, b := range a16 {
		h = (h ^ uint64(b)) * prime64
	}
	p := addr.Port()
	h = (h ^ uint64(p&0xff)) * prime64
	h = (h ^ uint64(p>>8)) * prime64
	return s.shards[h%uint64(len(s.shards))]
}

// decodeMsg validates and decodes one inbound datagram. Malformed or
// foreign datagrams are counted and dropped — a garbage packet must
// never panic or desync a stream.
func (s *MultiServer) decodeMsg(msg *Message) (inMsg, bool) {
	b := msg.Buf[:msg.N]
	k, err := Kind(b)
	if err != nil {
		s.badPkt.Inc()
		return inMsg{}, false
	}
	var m inMsg
	m.addr = netip.AddrPortFrom(msg.Addr.Addr().Unmap(), msg.Addr.Port())
	m.kind = k
	switch k {
	case KindAck:
		a, err := DecodeAck(b)
		if err != nil {
			s.badPkt.Inc()
			return inMsg{}, false
		}
		m.ack = a
	case KindReq:
		r, err := DecodeReq(b)
		if err != nil {
			s.badPkt.Inc()
			return inMsg{}, false
		}
		m.durMs = r.DurationMs
	default:
		s.badPkt.Inc()
		return inMsg{}, false
	}
	return m, true
}

// readLoop (demux mode) drains the socket in batches and demultiplexes
// to shard inboxes. A full inbox sheds the message rather than
// blocking the reader, so one client's flood cannot stall ingestion
// for other shards; sheds are counted per destination shard.
func (s *MultiServer) readLoop(ctx context.Context) error {
	ms := make([]Message, s.cfg.Batch)
	for i := range ms {
		ms[i].Buf = make([]byte, 2048) // acks and reqs are tens of bytes
	}
	for {
		if err := ctx.Err(); err != nil {
			return nil
		}
		s.reader.SetReadDeadline(s.coarseDeadline(100 * time.Millisecond))
		n, err := s.reader.ReadBatch(ms)
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				// Republish so the next deadline is armed off a fresh
				// base even when every shard is asleep — a stale base
				// would make successive deadlines land in the past and
				// spin this loop.
				s.publishNow()
				continue
			}
			return err
		}
		for i := 0; i < n; i++ {
			m, ok := s.decodeMsg(&ms[i])
			if !ok {
				continue
			}
			sh := s.shardOf(m.addr)
			select {
			case sh.inbox <- m:
			default:
				s.inboxDrop.Inc()
				sh.sheds.Add(1)
			}
		}
	}
}

// inboxBurst bounds how many inbox messages a shard consumes per loop
// iteration, so an acknowledgement flood from one client cannot starve
// the send path that every other client on the shard depends on.
const inboxBurst = 128

// idleSweepSec is the maximum shard sleep, so expiry and new joins are
// noticed promptly even with nothing to send.
const idleSweepSec = 0.05

// run is the demux-mode shard goroutine: drain a bounded burst of
// inbox messages, pace out due packets in one batched write, then
// sleep until the earliest next wake (or the next inbox arrival). The
// clock is sampled once per iteration (publishNow); drain and pump
// share that instant.
func (sh *shard) run(ctx context.Context) {
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		default:
		}
		now := sh.srv.publishNow()
		sh.drain(now)
		_, next := sh.pump(now)
		delay := next - sh.srv.publishNow()
		if delay <= 0 {
			continue // more packets already due
		}
		if delay > idleSweepSec {
			delay = idleSweepSec
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(time.Duration(delay * float64(time.Second)))
		select {
		case <-ctx.Done():
			return
		case m := <-sh.inbox:
			sh.handle(m, sh.srv.publishNow())
		case <-timer.C:
		}
	}
}

// runOwned is the owned-socket shard goroutine: pump, then read on the
// shard's own socket with the deadline set to the earliest next wake.
// When the shard is backlogged the deadline floor keeps reads live (an
// already-expired deadline would fail reads without draining queued
// acks, starving the congestion controllers that gate the very sends
// causing the backlog).
func (sh *shard) runOwned(ctx context.Context) error {
	const readFloorSec = 1e-4
	for {
		if ctx.Err() != nil {
			return nil
		}
		now := sh.srv.publishNow()
		_, next := sh.pump(now)
		delay := next - now
		if delay < readFloorSec {
			delay = readFloorSec
		}
		if delay > idleSweepSec {
			delay = idleSweepSec
		}
		sh.writer.SetReadDeadline(sh.srv.coarseDeadline(time.Duration(delay * float64(time.Second))))
		n, err := sh.writer.ReadBatch(sh.rdBuf)
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				continue
			}
			return err
		}
		now = sh.srv.publishNow()
		for i := 0; i < n; i++ {
			if m, ok := sh.srv.decodeMsg(&sh.rdBuf[i]); ok {
				sh.handle(m, now)
			}
		}
	}
}

// drain consumes up to inboxBurst queued messages without blocking.
func (sh *shard) drain(now float64) {
	for i := 0; i < inboxBurst; i++ {
		select {
		case m := <-sh.inbox:
			sh.handle(m, now)
		default:
			return
		}
	}
}

// handle applies one demultiplexed datagram to the shard's table.
func (sh *shard) handle(m inMsg, now float64) {
	switch m.kind {
	case KindReq:
		st := sh.sessions[m.addr]
		created := false
		if st == nil {
			srv := sh.srv
			if int(srv.active.Load()) >= srv.cfg.MaxClients {
				srv.rejected.Inc()
				return
			}
			var err error
			st, err = newSession(m.addr, srv.cfg.QA, srv.cfg.RAP, srv.payload, srv.cfg.SeqWindow, now)
			if err != nil {
				return // unreachable: params validated at construction
			}
			st.ins = &srv.sessIns
			sh.sessions[m.addr] = st
			st.orderIdx = len(sh.order)
			sh.order = append(sh.order, st)
			srv.active.Add(1)
			srv.accepted.Inc()
			created = true
		}
		dur := float64(m.durMs) / 1e3
		if max := sh.srv.cfg.MaxStream.Seconds(); dur > max {
			dur = max
		}
		st.deadline = now + dur
		st.lastRecv = now
		// Register after deadline/lastRecv are final: the pacer files
		// the session by its wake instant, which reads both. A
		// re-request may pull the deadline earlier, so it re-files.
		if created {
			sh.pacer.add(sh, st, now)
		} else {
			sh.pacer.update(sh, st, now)
		}
	case KindAck:
		st := sh.sessions[m.addr]
		if st == nil {
			sh.srv.unknown.Inc()
			return
		}
		st.onAck(now, m.ack)
		sh.srv.acked.Inc()
		// No pacer update: acks only move wake instants later (idle
		// expiry pushes out; nextSend is untouched), and the wheel
		// re-files lazily at fire time.
	}
}

// pump expires dead sessions, gathers due packets into the write
// batch, and sends them in one batched write, through the configured
// pacer. Returns packets written and the earliest next wake instant
// (+Inf when nothing is due within the pacer's horizon). Zero heap
// allocations at steady state.
func (sh *shard) pump(now float64) (sent int, next float64) {
	return sh.pacer.pump(sh, now)
}

// expired reports whether st is past its stream deadline or idle cutoff.
func (sh *shard) expired(st *session, now float64) bool {
	return now >= st.deadline || now-st.lastRecv > sh.idleSec
}

// wakeAt is the earliest instant st next needs service: its paced send
// or whichever expiry comes first.
func (sh *shard) wakeAt(st *session) float64 {
	w := st.nextSend
	if st.deadline < w {
		w = st.deadline
	}
	if e := st.lastRecv + sh.idleSec; e < w {
		w = e
	}
	return w
}

// sendBurst bounds per-session catch-up within one pump. A session
// that fell behind (timer coalescing at idleSweepSec, a long inbox
// drain, a descheduled shard) may send up to this many back-to-back
// packets per wakeup instead of one, so recovery takes
// O(backlog/burst) wakeups rather than O(backlog) — while staying
// small enough that no one session can monopolize the write batch.
const sendBurst = 8

// buildDue appends st's due packets (up to sendBurst, bounded by the
// batch budget) to the write batch starting at index k, returning the
// new fill level. buildPacket advances st.nextSend each call, so the
// loop exits as soon as the session is caught up.
func (sh *shard) buildDue(st *session, now float64, k int) int {
	for b := 0; b < sendBurst && st.nextSend <= now && k < len(sh.msgs); b++ {
		if n := st.buildPacket(now, sh.msgs[k].Buf); n > 0 {
			sh.msgs[k].N = n
			sh.msgs[k].Addr = st.addr
			k++
		}
	}
	return k
}

// flush writes the first k batch entries in one batched syscall.
func (sh *shard) flush(k int) {
	if k > 0 {
		sh.writer.WriteBatch(sh.msgs[:k]) // per-datagram kernel errors are not fatal
		sh.srv.sent.Add(int64(k))
		sh.srv.batchSz.Observe(float64(k))
	}
}

// removeSession drops an expired session: pacer, table, order slice
// (swap-remove via the session's stored index).
func (sh *shard) removeSession(st *session) {
	sh.pacer.remove(st)
	delete(sh.sessions, st.addr)
	i, last := st.orderIdx, len(sh.order)-1
	moved := sh.order[last]
	sh.order[i] = moved
	moved.orderIdx = i
	sh.order[last] = nil
	sh.order = sh.order[:last]
	sh.srv.active.Add(-1)
	sh.srv.expired.Inc()
}
