package netio

import (
	"context"
	"fmt"
	"io"
	"math"
	"net"
	"net/netip"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"qav/internal/core"
	"qav/internal/metrics"
	"qav/internal/rap"
)

// MultiConfig parameterizes a multi-client streaming server.
type MultiConfig struct {
	// QA configures every stream's quality adaptation controller.
	QA core.Params
	// RAP configures every stream's congestion control. PacketSize is
	// the wire size (header + payload); if zero it defaults to 512.
	RAP rap.Config
	// Shards is the number of independent client-table shards, each
	// owned by one goroutine (default GOMAXPROCS, capped at 8).
	Shards int
	// Batch is the number of datagrams moved per batched syscall
	// (default 32, capped at the platform batch capacity).
	Batch int
	// BatchKind selects the I/O implementation (default BatchAuto:
	// mmsg on Linux, generic elsewhere).
	BatchKind BatchKind
	// MaxClients caps concurrent streams; joins beyond it are refused
	// (default 4096).
	MaxClients int
	// MaxStream bounds how long a single stream may run (default 1 hour).
	MaxStream time.Duration
	// IdleTimeout expires clients whose acknowledgements stop arriving
	// (default 10 s).
	IdleTimeout time.Duration
	// SeqWindow is the per-client seq->layer attribution ring size,
	// a power of two (default 1024). Memory per client scales with it.
	SeqWindow int
}

func (c *MultiConfig) normalize() error {
	if c.RAP.PacketSize <= 0 {
		c.RAP.PacketSize = 512
	}
	if c.RAP.PacketSize <= DataHeaderLen {
		return fmt.Errorf("netio: packet size %d <= header %d", c.RAP.PacketSize, DataHeaderLen)
	}
	if c.Shards <= 0 {
		c.Shards = runtime.GOMAXPROCS(0)
		if c.Shards > 8 {
			c.Shards = 8
		}
	}
	if c.Batch <= 0 {
		c.Batch = 32
	}
	if c.MaxClients <= 0 {
		c.MaxClients = 4096
	}
	if c.MaxStream <= 0 {
		c.MaxStream = time.Hour
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = 10 * time.Second
	}
	if c.SeqWindow <= 0 {
		c.SeqWindow = 1 << 10
	}
	if c.SeqWindow&(c.SeqWindow-1) != 0 {
		return fmt.Errorf("netio: SeqWindow %d not a power of two", c.SeqWindow)
	}
	return nil
}

// inMsg is one demultiplexed inbound datagram, passed by value through
// a shard's inbox channel (no per-message allocation).
type inMsg struct {
	addr  netip.AddrPort
	kind  byte
	ack   Ack    // valid when kind == KindAck
	durMs uint32 // valid when kind == KindReq
}

// MultiServer streams layered data to many clients concurrently over
// one UDP socket. A reader goroutine drains the socket in batches and
// demultiplexes requests/acknowledgements to per-shard inboxes by
// client address; each shard goroutine exclusively owns its client
// table and paces its sessions' data packets out through its own
// batched writer — there is no mutex anywhere on the packet path, and
// at steady state the send loop performs zero heap allocations per
// packet (buffers, batch scratch, and session state are all
// preallocated; inboxes carry values).
type MultiServer struct {
	cfg     MultiConfig
	conn    *net.UDPConn
	reader  BatchConn
	shards  []*shard
	start   time.Time
	payload []byte // shared zero payload, read-only

	active atomic.Int64 // live sessions across all shards

	reg       *metrics.Registry
	accepted  *metrics.Counter
	rejected  *metrics.Counter
	expired   *metrics.Counter
	badPkt    *metrics.Counter
	inboxDrop *metrics.Counter
	unknown   *metrics.Counter
	sent      *metrics.Counter
	acked     *metrics.Counter
	batchSz   *metrics.Histogram
	sessIns   sessionInstruments
}

// shard owns a disjoint subset of clients, hashed by address. All shard
// state is touched only by the shard's goroutine.
type shard struct {
	srv      *MultiServer
	inbox    chan inMsg
	sessions map[netip.AddrPort]*session
	order    []*session // iteration order; swap-removed on expiry
	writer   BatchConn
	msgs     []Message // preallocated write batch (Buf sized to PacketSize)
}

// NewMultiServer wraps an already-bound UDP socket in a sharded
// multi-client server. The socket stays caller-owned: close it (or
// cancel Serve's context) to shut down.
func NewMultiServer(conn *net.UDPConn, cfg MultiConfig) (*MultiServer, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	// Validate QA params once; per-session construction cannot fail after.
	if _, err := core.NewController(cfg.QA); err != nil {
		return nil, err
	}
	reader, err := NewBatchConn(conn, cfg.BatchKind)
	if err != nil {
		return nil, err
	}
	reg := metrics.NewRegistry()
	s := &MultiServer{
		cfg:       cfg,
		conn:      conn,
		reader:    reader,
		start:     time.Now(),
		payload:   make([]byte, cfg.RAP.PacketSize-DataHeaderLen),
		reg:       reg,
		accepted:  reg.Counter("srv.accepted"),
		rejected:  reg.Counter("srv.rejected"),
		expired:   reg.Counter("srv.expired"),
		badPkt:    reg.Counter("srv.badpkt"),
		inboxDrop: reg.Counter("srv.inboxdrop"),
		unknown:   reg.Counter("srv.unknownack"),
		sent:      reg.Counter("srv.sent"),
		acked:     reg.Counter("srv.acked"),
		batchSz:   reg.Histogram("srv.batchsz", metrics.HistogramOpts{MinExp: 0, MaxExp: 8}),
	}
	s.sessIns = sessionInstruments{
		Retransmits: reg.Counter("srv.retransmits"),
		NackDrops:   reg.Counter("srv.nackdrops"),
		Delivered:   reg.Counter("srv.delivered"),
	}
	reg.GaugeFunc("srv.clients", func() float64 { return float64(s.active.Load()) })
	reg.GaugeFunc("srv.shards", func() float64 { return float64(len(s.shards)) })
	for i := 0; i < cfg.Shards; i++ {
		writer, err := NewBatchConn(conn, cfg.BatchKind)
		if err != nil {
			return nil, err
		}
		sh := &shard{
			srv:      s,
			inbox:    make(chan inMsg, 4*cfg.Batch),
			sessions: make(map[netip.AddrPort]*session),
			writer:   writer,
			msgs:     make([]Message, cfg.Batch),
		}
		for j := range sh.msgs {
			sh.msgs[j].Buf = make([]byte, cfg.RAP.PacketSize)
		}
		s.shards = append(s.shards, sh)
	}
	return s, nil
}

// Metrics returns the server's aggregate metrics registry. Snapshots
// are safe to take concurrently with serving.
func (s *MultiServer) Metrics() *metrics.Registry { return s.reg }

// WriteMetricsJSON writes the current registry snapshot as indented
// JSON, expvar-style.
func (s *MultiServer) WriteMetricsJSON(w io.Writer) error { return s.reg.WriteJSON(w) }

// Addr returns the server's bound address.
func (s *MultiServer) Addr() string { return s.conn.LocalAddr().String() }

// BatchKind reports the I/O implementation actually in use.
func (s *MultiServer) BatchKind() BatchKind { return s.reader.Kind() }

// ActiveClients returns the number of live streams.
func (s *MultiServer) ActiveClients() int { return int(s.active.Load()) }

func (s *MultiServer) now() float64 { return time.Since(s.start).Seconds() }

// MultiStats is a point-in-time aggregate snapshot.
type MultiStats struct {
	ActiveClients int
	Accepted      int64
	Rejected      int64
	Expired       int64
	SentPkts      int64
	AckedPkts     int64
	Delivered     int64
	Retransmits   int64
	NackDrops     int64
	BadPackets    int64
	InboxDrops    int64
	UnknownAcks   int64
}

// Stats returns aggregate counters. Safe concurrently with serving.
func (s *MultiServer) Stats() MultiStats {
	return MultiStats{
		ActiveClients: int(s.active.Load()),
		Accepted:      s.accepted.Load(),
		Rejected:      s.rejected.Load(),
		Expired:       s.expired.Load(),
		SentPkts:      s.sent.Load(),
		AckedPkts:     s.acked.Load(),
		Delivered:     s.sessIns.Delivered.Load(),
		Retransmits:   s.sessIns.Retransmits.Load(),
		NackDrops:     s.sessIns.NackDrops.Load(),
		BadPackets:    s.badPkt.Load(),
		InboxDrops:    s.inboxDrop.Load(),
		UnknownAcks:   s.unknown.Load(),
	}
}

// Serve runs the reader and all shard goroutines until ctx is
// cancelled or the socket is closed.
func (s *MultiServer) Serve(ctx context.Context) error {
	var wg sync.WaitGroup
	for _, sh := range s.shards {
		wg.Add(1)
		go func(sh *shard) {
			defer wg.Done()
			sh.run(ctx)
		}(sh)
	}
	err := s.readLoop(ctx)
	wg.Wait()
	if ctx.Err() != nil {
		return ctx.Err()
	}
	return err
}

// shardOf hashes a client address to its owning shard (FNV-1a over the
// 16-byte address and port; allocation-free).
func (s *MultiServer) shardOf(addr netip.AddrPort) *shard {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	a16 := addr.Addr().As16()
	for _, b := range a16 {
		h = (h ^ uint64(b)) * prime64
	}
	p := addr.Port()
	h = (h ^ uint64(p&0xff)) * prime64
	h = (h ^ uint64(p>>8)) * prime64
	return s.shards[h%uint64(len(s.shards))]
}

// readLoop drains the socket in batches and demultiplexes to shard
// inboxes. Malformed or foreign datagrams are counted and dropped — a
// garbage packet must never panic or desync a stream. A full inbox
// sheds the message rather than blocking the reader, so one client's
// flood cannot stall ingestion for other shards.
func (s *MultiServer) readLoop(ctx context.Context) error {
	ms := make([]Message, s.cfg.Batch)
	for i := range ms {
		ms[i].Buf = make([]byte, 2048) // acks and reqs are tens of bytes
	}
	for {
		if err := ctx.Err(); err != nil {
			return nil
		}
		s.reader.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
		n, err := s.reader.ReadBatch(ms)
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				continue
			}
			return err
		}
		for i := 0; i < n; i++ {
			b := ms[i].Buf[:ms[i].N]
			k, err := Kind(b)
			if err != nil {
				s.badPkt.Inc()
				continue
			}
			var m inMsg
			m.addr = netip.AddrPortFrom(ms[i].Addr.Addr().Unmap(), ms[i].Addr.Port())
			m.kind = k
			switch k {
			case KindAck:
				a, err := DecodeAck(b)
				if err != nil {
					s.badPkt.Inc()
					continue
				}
				m.ack = a
			case KindReq:
				r, err := DecodeReq(b)
				if err != nil {
					s.badPkt.Inc()
					continue
				}
				m.durMs = r.DurationMs
			default:
				s.badPkt.Inc()
				continue
			}
			sh := s.shardOf(m.addr)
			select {
			case sh.inbox <- m:
			default:
				s.inboxDrop.Inc()
			}
		}
	}
}

// inboxBurst bounds how many inbox messages a shard consumes per loop
// iteration, so an acknowledgement flood from one client cannot starve
// the send path that every other client on the shard depends on.
const inboxBurst = 128

// idleSweepSec is the maximum shard sleep, so expiry and new joins are
// noticed promptly even with nothing to send.
const idleSweepSec = 0.05

// run is the shard goroutine: drain a bounded burst of inbox messages,
// pace out every due packet in one batched write, then sleep until the
// earliest next-send instant (or the next inbox arrival).
func (sh *shard) run(ctx context.Context) {
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		default:
		}
		sh.drain()
		now := sh.srv.now()
		_, next := sh.pump(now)
		delay := next - sh.srv.now()
		if delay <= 0 {
			continue // more packets already due
		}
		if delay > idleSweepSec {
			delay = idleSweepSec
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(time.Duration(delay * float64(time.Second)))
		select {
		case <-ctx.Done():
			return
		case m := <-sh.inbox:
			sh.handle(m, sh.srv.now())
		case <-timer.C:
		}
	}
}

// drain consumes up to inboxBurst queued messages without blocking.
func (sh *shard) drain() {
	for i := 0; i < inboxBurst; i++ {
		select {
		case m := <-sh.inbox:
			sh.handle(m, sh.srv.now())
		default:
			return
		}
	}
}

// handle applies one demultiplexed datagram to the shard's table.
func (sh *shard) handle(m inMsg, now float64) {
	switch m.kind {
	case KindReq:
		st := sh.sessions[m.addr]
		if st == nil {
			srv := sh.srv
			if int(srv.active.Load()) >= srv.cfg.MaxClients {
				srv.rejected.Inc()
				return
			}
			var err error
			st, err = newSession(m.addr, srv.cfg.QA, srv.cfg.RAP, srv.payload, srv.cfg.SeqWindow, now)
			if err != nil {
				return // unreachable: params validated at construction
			}
			st.ins = &srv.sessIns
			sh.sessions[m.addr] = st
			sh.order = append(sh.order, st)
			srv.active.Add(1)
			srv.accepted.Inc()
		}
		dur := float64(m.durMs) / 1e3
		if max := sh.srv.cfg.MaxStream.Seconds(); dur > max {
			dur = max
		}
		st.deadline = now + dur
		st.lastRecv = now
	case KindAck:
		st := sh.sessions[m.addr]
		if st == nil {
			sh.srv.unknown.Inc()
			return
		}
		st.onAck(now, m.ack)
		sh.srv.acked.Inc()
	}
}

// pump expires dead sessions, gathers every due packet into the write
// batch, and sends it. It returns the number of packets written and
// the earliest next-send instant among live sessions (+Inf when the
// shard is empty). Zero heap allocations at steady state.
func (sh *shard) pump(now float64) (sent int, next float64) {
	next = math.Inf(1)
	idle := sh.srv.cfg.IdleTimeout.Seconds()
	k := 0
	for i := 0; i < len(sh.order); i++ {
		st := sh.order[i]
		if now >= st.deadline || now-st.lastRecv > idle {
			sh.remove(i, st)
			i--
			continue
		}
		if st.nextSend <= now && k < len(sh.msgs) {
			n := st.buildPacket(now, sh.msgs[k].Buf)
			if n > 0 {
				sh.msgs[k].N = n
				sh.msgs[k].Addr = st.addr
				k++
			}
		}
		if st.nextSend < next {
			next = st.nextSend
		}
	}
	if k > 0 {
		sh.writer.WriteBatch(sh.msgs[:k]) // per-datagram kernel errors are not fatal
		sh.srv.sent.Add(int64(k))
		sh.srv.batchSz.Observe(float64(k))
	}
	return k, next
}

// remove drops the session at order index i (swap-remove).
func (sh *shard) remove(i int, st *session) {
	delete(sh.sessions, st.addr)
	last := len(sh.order) - 1
	sh.order[i] = sh.order[last]
	sh.order[last] = nil
	sh.order = sh.order[:last]
	sh.srv.active.Add(-1)
	sh.srv.expired.Inc()
}
