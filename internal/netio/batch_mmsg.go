// Linux batched UDP I/O: recvmmsg/sendmmsg move a whole batch of
// datagrams per syscall, which is where a multi-client UDP server's
// cycles go once the per-packet work is allocation-free. The usual road
// here is golang.org/x/net/ipv4.(*PacketConn).ReadBatch; this repo is
// stdlib-only, so the same mechanism is built directly on the raw
// syscalls over the net.UDPConn's integrated poller (SyscallConn), which
// keeps deadline and readiness semantics identical to the plain conn.
//
// Gated to 64-bit little-endian Linux (amd64/arm64 — the two platforms
// this serves on): the mmsghdr layout and the in-memory byte order of
// sockaddr ports below assume both. Everywhere else NewBatchConn
// degrades to the generic implementation.

//go:build linux && (amd64 || arm64)

package netio

import (
	"fmt"
	"math/bits"
	"net"
	"net/netip"
	"syscall"
	"time"
	"unsafe"
)

// mmsgCap is the scratch capacity per mmsgConn: the largest batch one
// ReadBatch/WriteBatch call can move in a single syscall.
const mmsgCap = 64

// mmsghdr mirrors the kernel's struct mmsghdr on 64-bit targets.
type mmsghdr struct {
	hdr syscall.Msghdr
	n   uint32
	_   [4]byte
}

// mmsgConn implements BatchConn over recvmmsg/sendmmsg. Not
// goroutine-safe: hdrs/iovs/names are single-owner scratch. Multiple
// mmsgConns may wrap the same socket (one per shard); the kernel
// serializes the datagram syscalls.
type mmsgConn struct {
	conn *net.UDPConn
	rc   syscall.RawConn

	hdrs  []mmsghdr
	iovs  []syscall.Iovec
	names []syscall.RawSockaddrInet6

	// Per-call scratch threaded through the prebound readiness
	// callbacks (method values, so rc.Read/rc.Write calls do not mint a
	// closure per packet batch).
	nmsgs   int
	got     int
	errno   syscall.Errno
	readFn  func(fd uintptr) bool
	writeFn func(fd uintptr) bool
}

func newMmsgConn(conn *net.UDPConn) (BatchConn, error) {
	rc, err := conn.SyscallConn()
	if err != nil {
		return nil, fmt.Errorf("netio: raw conn: %w", err)
	}
	c := &mmsgConn{
		conn:  conn,
		rc:    rc,
		hdrs:  make([]mmsghdr, mmsgCap),
		iovs:  make([]syscall.Iovec, mmsgCap),
		names: make([]syscall.RawSockaddrInet6, mmsgCap),
	}
	c.readFn = c.doRecv
	c.writeFn = c.doSend
	return c, nil
}

func (c *mmsgConn) Kind() BatchKind { return BatchMmsg }

func (c *mmsgConn) SetReadDeadline(t time.Time) error { return c.conn.SetReadDeadline(t) }

func (c *mmsgConn) doRecv(fd uintptr) bool {
	n, _, e := syscall.Syscall6(sysRECVMMSG, fd,
		uintptr(unsafe.Pointer(&c.hdrs[0])), uintptr(c.nmsgs), 0, 0, 0)
	if e == syscall.EAGAIN || e == syscall.EWOULDBLOCK {
		return false // wait for readability, honoring the deadline
	}
	c.got, c.errno = int(n), e
	return true
}

func (c *mmsgConn) doSend(fd uintptr) bool {
	n, _, e := syscall.Syscall6(sysSENDMMSG, fd,
		uintptr(unsafe.Pointer(&c.hdrs[0])), uintptr(c.nmsgs), 0, 0, 0)
	if e == syscall.EAGAIN || e == syscall.EWOULDBLOCK {
		return false
	}
	c.got, c.errno = int(n), e
	return true
}

func (c *mmsgConn) ReadBatch(ms []Message) (int, error) {
	if len(ms) > mmsgCap {
		ms = ms[:mmsgCap]
	}
	if len(ms) == 0 {
		return 0, nil
	}
	for i := range ms {
		c.iovs[i].Base = &ms[i].Buf[0]
		c.iovs[i].Len = uint64(len(ms[i].Buf))
		h := &c.hdrs[i].hdr
		h.Name = (*byte)(unsafe.Pointer(&c.names[i]))
		h.Namelen = syscall.SizeofSockaddrInet6
		h.Iov = &c.iovs[i]
		h.Iovlen = 1
		c.hdrs[i].n = 0
	}
	c.nmsgs = len(ms)
	if err := c.rc.Read(c.readFn); err != nil {
		return 0, err // deadline and closed-conn errors surface here
	}
	if c.errno != 0 {
		return 0, c.errno
	}
	for i := 0; i < c.got; i++ {
		ms[i].N = int(c.hdrs[i].n)
		ms[i].Addr = sockaddrToAddrPort(&c.names[i])
	}
	return c.got, nil
}

func (c *mmsgConn) WriteBatch(ms []Message) (int, error) {
	sent := 0
	for sent < len(ms) {
		batch := ms[sent:]
		if len(batch) > mmsgCap {
			batch = batch[:mmsgCap]
		}
		for i := range batch {
			c.iovs[i].Base = &batch[i].Buf[0]
			c.iovs[i].Len = uint64(batch[i].N)
			h := &c.hdrs[i].hdr
			h.Name = (*byte)(unsafe.Pointer(&c.names[i]))
			h.Namelen = addrPortToSockaddr(&c.names[i], batch[i].Addr)
			h.Iov = &c.iovs[i]
			h.Iovlen = 1
			c.hdrs[i].n = 0
		}
		c.nmsgs = len(batch)
		if err := c.rc.Write(c.writeFn); err != nil {
			return sent, err
		}
		if c.errno != 0 {
			return sent, c.errno
		}
		if c.got == 0 {
			return sent, fmt.Errorf("netio: sendmmsg made no progress")
		}
		sent += c.got
	}
	return sent, nil
}

// addrPortToSockaddr encodes ap into sa (an Inet6-sized buffer that
// also serves as sockaddr_in) and returns the sockaddr length. Ports
// live in network byte order inside the native-endian uint16 field, so
// they are byte-reversed on these little-endian targets.
func addrPortToSockaddr(sa *syscall.RawSockaddrInet6, ap netip.AddrPort) uint32 {
	addr := ap.Addr()
	if addr.Is4() || addr.Is4In6() {
		sa4 := (*syscall.RawSockaddrInet4)(unsafe.Pointer(sa))
		sa4.Family = syscall.AF_INET
		sa4.Port = bits.ReverseBytes16(ap.Port())
		sa4.Addr = addr.As4()
		return syscall.SizeofSockaddrInet4
	}
	sa.Family = syscall.AF_INET6
	sa.Port = bits.ReverseBytes16(ap.Port())
	sa.Addr = addr.As16()
	sa.Scope_id = 0
	return syscall.SizeofSockaddrInet6
}

// sockaddrToAddrPort decodes a kernel-filled sockaddr. IPv4-mapped IPv6
// addresses are unmapped so a client always keys to the same AddrPort
// regardless of which implementation read its datagram.
func sockaddrToAddrPort(sa *syscall.RawSockaddrInet6) netip.AddrPort {
	switch sa.Family {
	case syscall.AF_INET:
		sa4 := (*syscall.RawSockaddrInet4)(unsafe.Pointer(sa))
		return netip.AddrPortFrom(netip.AddrFrom4(sa4.Addr), bits.ReverseBytes16(sa4.Port))
	case syscall.AF_INET6:
		return netip.AddrPortFrom(netip.AddrFrom16(sa.Addr).Unmap(), bits.ReverseBytes16(sa.Port))
	default:
		return netip.AddrPort{}
	}
}
