package netio

import (
	"net/netip"

	"qav/internal/core"
	"qav/internal/metrics"
	"qav/internal/rap"
)

// nack is a pending retransmission request.
type nack struct {
	layer int
	off   int64
	n     int
}

// nackCap bounds pending retransmissions per client. A misbehaving
// receiver can request holes faster than the congestion-controlled
// sender can repair them; beyond the cap the oldest request is dropped
// (the receiver will re-request it if it still matters) and a counter
// records the shed load.
const nackCap = 64

// nackRing is a fixed-capacity drop-oldest queue of retransmission
// requests.
type nackRing struct {
	buf     [nackCap]nack
	head, n int
	dropped int64
}

func (q *nackRing) push(nk nack) {
	if q.n == len(q.buf) {
		q.head = (q.head + 1) % len(q.buf)
		q.n--
		q.dropped++
	}
	q.buf[(q.head+q.n)%len(q.buf)] = nk
	q.n++
}

func (q *nackRing) pop() nack {
	nk := q.buf[q.head]
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	return nk
}

// queued reports whether a request for (layer, off) is already pending.
func (q *nackRing) queued(layer int, off int64) bool {
	for i := 0; i < q.n; i++ {
		nk := &q.buf[(q.head+i)%len(q.buf)]
		if nk.layer == layer && nk.off == off {
			return true
		}
	}
	return false
}

// sessionInstruments are the shared (per-server, not per-session)
// metric handles a session records through. Nil handles are skipped, so
// a partially-instrumented session is fine.
type sessionInstruments struct {
	Retransmits *metrics.Counter // selective retransmissions sent
	NackDrops   *metrics.Counter // retransmission requests shed at the cap
	Delivered   *metrics.Counter // acked packets credited to the controller
}

// session is the per-client stream state: one RAP sender, one quality
// adaptation controller, the seq -> layer attribution ring, per-layer
// stream offsets, and the bounded retransmission queue. It is not
// goroutine-safe — its owner (the legacy single-client Server under its
// mutex, or a MultiServer shard from its one goroutine) serializes all
// access. All times are float64 seconds on the owner's clock.
type session struct {
	snd  *rap.Sender
	ctrl *core.Controller
	addr netip.AddrPort

	pktSize     int
	payload     []byte // shared zero payload, read-only
	seqLayer    seqRing
	layerOff    []int64 // next byte offset per layer's stream
	sentByLayer []int64 // packets per layer
	nacks       nackRing
	retransmits int64

	ins *sessionInstruments

	lastStep float64 // last RAP Step invocation
	nextSend float64 // next paced transmission instant
	lastRecv float64 // last ack/req arrival, for idle expiry
	deadline float64 // stream end

	// Pacing-wheel linkage (intrusive, zero-alloc: the wheel's slot
	// lists run through these fields, owned by the shard's pacer) and
	// the session's index in the shard's order slice (swap-remove).
	wnext, wprev *session
	wslot        int32 // wheelNone, wheelImminent, or a level slot
	wtick        int64 // absolute scheduled wheel tick (valid when queued)
	orderIdx     int
}

// newSession builds a stream for addr. qa must already be validated
// (core.NewController errors only on bad Params; callers validate once
// at server construction) and payload must be pktSize-DataHeaderLen
// bytes.
func newSession(addr netip.AddrPort, qa core.Params, rcfg rap.Config, payload []byte, seqWin int, now float64) (*session, error) {
	if qa.MaxEvents == 0 {
		// A served stream can run for hours; a client whose rate
		// straddles a layer boundary churns add/drop events forever, so
		// the decision log must not grow without bound.
		qa.MaxEvents = 4096
	}
	ctrl, err := core.NewController(qa)
	if err != nil {
		return nil, err
	}
	maxL := ctrl.P.MaxLayers
	snd := rap.NewSender(rcfg)
	return &session{
		snd:         snd,
		ctrl:        ctrl,
		addr:        addr,
		pktSize:     rcfg.PacketSize,
		payload:     payload,
		seqLayer:    newSeqRing(seqWin),
		layerOff:    make([]int64, maxL),
		sentByLayer: make([]int64, maxL),
		lastStep:    now,
		nextSend:    now,
		lastRecv:    now,
		wslot:       wheelNone,
	}, nil
}

// step runs the periodic (once per SRTT) RAP rate decision if due.
func (st *session) step(now float64) {
	if now-st.lastStep < st.snd.StepInterval() {
		return
	}
	if b := st.snd.Step(now); b != nil {
		st.ctrl.OnBackoff(now, b.NewRate, st.snd.ConservativeSlope())
		st.forget(b.LostSeqs)
	}
	st.lastStep = now
}

// buildPacket assembles the next paced data packet into buf (which must
// hold pktSize bytes) and returns its wire length. It advances the
// stream: RAP step if due, layer selection or selective retransmission,
// sequence assignment, and the next-send instant. Zero-alloc.
func (st *session) buildPacket(now float64, buf []byte) int {
	st.step(now)
	var layer int
	var off int64
	retrans := false
	// Selective retransmission (§1.3): when the rate exceeds the
	// consumption rate, spend the next slot repairing the oldest
	// requested hole instead of sending new data. Retransmissions
	// remain congestion controlled (they consume a send slot).
	if st.nacks.n > 0 && st.snd.Rate() >= st.ctrl.ConsumptionRate() {
		nk := st.nacks.pop()
		layer, off, retrans = nk.layer, nk.off, true
		st.retransmits++
		if st.ins != nil && st.ins.Retransmits != nil {
			st.ins.Retransmits.Inc()
		}
		st.ctrl.Tick(now, st.snd.Rate(), st.snd.ConservativeSlope())
	} else {
		layer = st.ctrl.PickLayer(now, st.snd.Rate(), st.snd.ConservativeSlope(), st.pktSize)
		off = st.layerOff[layer]
		st.layerOff[layer] += int64(st.pktSize)
	}
	seq := st.snd.OnSend(now)
	if !retrans {
		// Retransmitted bytes sit behind the playout point; they repair
		// holes but do not extend the receiver's buffer, so they are not
		// credited to the controller on ACK.
		st.seqLayer.put(seq, layer)
	}
	if layer >= 0 && layer < len(st.sentByLayer) {
		st.sentByLayer[layer]++
	}
	// Advance the pace from the *scheduled* instant, not the actual
	// one, so lateness (timer coalescing at the shard sweep, a long
	// inbox drain, a descheduled goroutine) is repaid by temporarily
	// closer spacing instead of silently sagging below the target rate.
	// Debt is capped at sendBurst gaps: a long stall earns a bounded
	// catch-up burst, never an unbounded line-rate blast.
	ipg := st.snd.IPG()
	base := st.nextSend
	if floor := now - float64(sendBurst)*ipg; base < floor {
		base = floor
	}
	st.nextSend = base + ipg
	n, err := EncodeData(buf, DataHeader{
		Seq:        seq,
		Layer:      uint8(layer),
		LayerOff:   off,
		SendMicros: uint64(now * 1e6),
	}, st.payload)
	if err != nil {
		return 0 // unreachable: buf is sized to pktSize at construction
	}
	return n
}

// onAck feeds one acknowledgement through RAP and the controller, and
// queues any piggybacked retransmission request.
func (st *session) onAck(now float64, a Ack) {
	st.lastRecv = now
	if b := st.snd.OnAck(now, a.AckSeq); b != nil {
		st.ctrl.OnBackoff(now, b.NewRate, st.snd.ConservativeSlope())
		st.forget(b.LostSeqs)
	}
	if layer, ok := st.seqLayer.take(a.AckSeq); ok {
		st.ctrl.OnDelivered(now, layer, st.pktSize)
		if st.ins != nil && st.ins.Delivered != nil {
			st.ins.Delivered.Inc()
		}
	}
	if a.NackLayer != NoNack && int(a.NackLayer) < len(st.layerOff) {
		// Quantize the request to packet-aligned offsets and bound it
		// to one packet per queue entry.
		pkt := int64(st.pktSize)
		off := a.NackOff - a.NackOff%pkt
		if off >= 0 && off < st.layerOff[a.NackLayer] && !st.nacks.queued(int(a.NackLayer), off) {
			before := st.nacks.dropped
			st.nacks.push(nack{layer: int(a.NackLayer), off: off, n: int(pkt)})
			if st.nacks.dropped != before && st.ins != nil && st.ins.NackDrops != nil {
				st.ins.NackDrops.Inc()
			}
		}
	}
}

// forget drops layer attribution for lost packets.
func (st *session) forget(seqs []int64) {
	for _, q := range seqs {
		st.seqLayer.del(q)
	}
}
