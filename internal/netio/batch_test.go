package netio

import (
	"fmt"
	"net"
	"net/netip"
	"testing"
	"time"
)

// availableKinds lists the batch implementations this platform offers.
func availableKinds(t testing.TB) []BatchKind {
	t.Helper()
	kinds := []BatchKind{BatchGeneric}
	conn := listenUDPTB(t)
	defer conn.Close()
	if _, err := newMmsgConn(conn); err == nil {
		kinds = append(kinds, BatchMmsg)
	}
	return kinds
}

func listenUDPTB(t testing.TB) *net.UDPConn {
	t.Helper()
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	return conn
}

func TestBatchRoundTrip(t *testing.T) {
	for _, kind := range availableKinds(t) {
		t.Run(string(kind), func(t *testing.T) {
			rxConn := listenUDPTB(t)
			defer rxConn.Close()
			txConn := listenUDPTB(t)
			defer txConn.Close()
			rx, err := NewBatchConn(rxConn, kind)
			if err != nil {
				t.Fatal(err)
			}
			tx, err := NewBatchConn(txConn, kind)
			if err != nil {
				t.Fatal(err)
			}
			dst := rxConn.LocalAddr().(*net.UDPAddr).AddrPort()
			txAddr := txConn.LocalAddr().(*net.UDPAddr).AddrPort()

			const total = 10
			out := make([]Message, total)
			for i := range out {
				out[i].Buf = []byte(fmt.Sprintf("datagram-%02d", i))
				out[i].N = len(out[i].Buf)
				out[i].Addr = dst
			}
			if n, err := tx.WriteBatch(out); err != nil || n != total {
				t.Fatalf("WriteBatch = %d, %v want %d, nil", n, err, total)
			}

			in := make([]Message, total)
			for i := range in {
				in[i].Buf = make([]byte, 64)
			}
			got := 0
			rx.SetReadDeadline(time.Now().Add(2 * time.Second))
			seen := map[string]bool{}
			for got < total {
				n, err := rx.ReadBatch(in[:total-got])
				if err != nil {
					t.Fatalf("ReadBatch after %d: %v", got, err)
				}
				for i := 0; i < n; i++ {
					seen[string(in[i].Buf[:in[i].N])] = true
					want := netip.AddrPortFrom(in[i].Addr.Addr().Unmap(), in[i].Addr.Port())
					from := netip.AddrPortFrom(txAddr.Addr().Unmap(), txAddr.Port())
					if want != from {
						t.Fatalf("peer %v want %v", in[i].Addr, txAddr)
					}
				}
				got += n
			}
			for i := 0; i < total; i++ {
				if !seen[fmt.Sprintf("datagram-%02d", i)] {
					t.Fatalf("datagram %d never arrived", i)
				}
			}
		})
	}
}

func TestBatchReadDeadline(t *testing.T) {
	for _, kind := range availableKinds(t) {
		t.Run(string(kind), func(t *testing.T) {
			conn := listenUDPTB(t)
			defer conn.Close()
			bc, err := NewBatchConn(conn, kind)
			if err != nil {
				t.Fatal(err)
			}
			ms := []Message{{Buf: make([]byte, 64)}}
			bc.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
			start := time.Now()
			_, err = bc.ReadBatch(ms)
			if err == nil {
				t.Fatal("read of silent socket succeeded")
			}
			ne, ok := err.(net.Error)
			if !ok || !ne.Timeout() {
				t.Fatalf("error %v (%T) is not a net timeout", err, err)
			}
			if e := time.Since(start); e > time.Second {
				t.Fatalf("deadline took %v", e)
			}
		})
	}
}

func TestBatchMmsgRequestedExplicitly(t *testing.T) {
	conn := listenUDPTB(t)
	defer conn.Close()
	bc, err := NewBatchConn(conn, BatchAuto)
	if err != nil {
		t.Fatal(err)
	}
	if got := bc.Kind(); got != BatchMmsg && got != BatchGeneric {
		t.Fatalf("auto resolved to %q", got)
	}
	if _, err := NewBatchConn(conn, BatchKind("bogus")); err == nil {
		t.Fatal("bogus kind accepted")
	}
}

// BenchmarkBatchIO is the batched-vs-unbatched A/B: one op moves 32
// datagrams from a sender socket to a receiver socket on loopback.
func BenchmarkBatchIO(b *testing.B) {
	for _, kind := range availableKinds(b) {
		b.Run(string(kind), func(b *testing.B) {
			rxConn := listenUDPTB(b)
			defer rxConn.Close()
			txConn := listenUDPTB(b)
			defer txConn.Close()
			rx, err := NewBatchConn(rxConn, kind)
			if err != nil {
				b.Fatal(err)
			}
			tx, err := NewBatchConn(txConn, kind)
			if err != nil {
				b.Fatal(err)
			}
			dst := rxConn.LocalAddr().(*net.UDPAddr).AddrPort()
			const batch = 32
			out := make([]Message, batch)
			for i := range out {
				out[i].Buf = make([]byte, 512)
				out[i].N = 512
				out[i].Addr = dst
			}
			in := make([]Message, batch)
			for i := range in {
				in[i].Buf = make([]byte, 2048)
			}
			rx.SetReadDeadline(time.Time{})
			b.SetBytes(batch * 512)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := tx.WriteBatch(out); err != nil {
					b.Fatal(err)
				}
				got := 0
				for got < batch {
					n, err := rx.ReadBatch(in[:batch-got])
					if err != nil {
						b.Fatal(err)
					}
					got += n
				}
			}
		})
	}
}
