//go:build !(linux && (amd64 || arm64))

package netio

import (
	"errors"
	"net"
)

// errNoMmsg reports that the batched syscall implementation is gated
// off on this platform; BatchAuto falls back to generic.
var errNoMmsg = errors.New("netio: mmsg batch I/O unavailable on this platform")

func newMmsgConn(conn *net.UDPConn) (BatchConn, error) { return nil, errNoMmsg }
