// SO_REUSEPORT socket siblings for the owned-socket serving mode.
//
// Linux (3.9+) lets N UDP sockets bind the same address:port when every
// one sets SO_REUSEPORT before bind; the kernel then steers each
// datagram to one of them by a hash of the 4-tuple, so a given client's
// packets always land on the same socket. Handing one sibling to each
// shard replaces the userspace reader->inbox demultiplexer with kernel
// steering: no channel hop, no sheds, reads spread across shard
// goroutines.
//
// The stdlib syscall package does not export the option constant on
// linux (it predates the feature's ABI), and this repo is stdlib-only,
// so it is defined locally. Gated to linux like batch_mmsg.go; other
// platforms get the stub that reports the feature unavailable.

//go:build linux

package netio

import (
	"context"
	"fmt"
	"net"
	"syscall"
)

// soReuseport is SO_REUSEPORT on linux (uapi asm-generic/socket.h); the
// stdlib syscall package stops at SO_REUSEADDR.
const soReuseport = 0xf

// ReuseportAvailable reports whether ListenReuseport works on this
// platform.
func ReuseportAvailable() bool { return true }

// ListenReuseport binds n UDP sockets to the same address with
// SO_REUSEPORT set, for NewMultiServerConns. When addr's port is 0 the
// kernel picks one for the first socket and the rest bind to it
// explicitly, so all n siblings share whatever port was assigned. On
// error, any sockets already bound are closed.
func ListenReuseport(network, addr string, n int) ([]*net.UDPConn, error) {
	if n <= 0 {
		return nil, fmt.Errorf("netio: reuseport socket count %d < 1", n)
	}
	lc := net.ListenConfig{
		Control: func(network, address string, c syscall.RawConn) error {
			var serr error
			err := c.Control(func(fd uintptr) {
				serr = syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, soReuseport, 1)
			})
			if err != nil {
				return err
			}
			return serr
		},
	}
	conns := make([]*net.UDPConn, 0, n)
	fail := func(err error) ([]*net.UDPConn, error) {
		for _, c := range conns {
			c.Close()
		}
		return nil, err
	}
	for i := 0; i < n; i++ {
		pc, err := lc.ListenPacket(context.Background(), network, addr)
		if err != nil {
			return fail(fmt.Errorf("netio: reuseport listen %d/%d: %w", i+1, n, err))
		}
		uc, ok := pc.(*net.UDPConn)
		if !ok {
			pc.Close()
			return fail(fmt.Errorf("netio: reuseport listen: %T is not a UDP socket", pc))
		}
		conns = append(conns, uc)
		if i == 0 {
			// Pin the kernel-assigned port so the remaining siblings
			// join the same reuseport group instead of getting their
			// own ephemeral ports.
			addr = uc.LocalAddr().String()
		}
	}
	return conns, nil
}
