package netio

import (
	"fmt"
	"math"
	"math/rand"
	"net/netip"
	"testing"
	"time"

	"qav/internal/core"
	"qav/internal/rap"
)

func wtSess() *session { return &session{wslot: wheelNone} }

// collectImminent drains the imminent list into a slice (test helper).
func collectImminent(w *timingWheel) []*session {
	var out []*session
	for st := w.imminent; st != nil; st = st.wnext {
		out = append(out, st)
	}
	return out
}

func TestWheelFiresAtScheduledTick(t *testing.T) {
	w := &timingWheel{}
	st := wtSess()
	w.schedule(st, 5)
	if st.wslot != 5 || w.n != 1 {
		t.Fatalf("scheduled slot=%d n=%d, want slot 5 n 1", st.wslot, w.n)
	}
	w.advance(4)
	if w.imminent != nil {
		t.Fatal("fired before its tick")
	}
	w.advance(5)
	if st.wslot != wheelImminent || w.imminent != st {
		t.Fatalf("not imminent at its tick: slot=%d", st.wslot)
	}
	if w.n != 0 {
		t.Fatalf("resident count %d after fire, want 0", w.n)
	}
}

func TestWheelCascadeAcrossEpoch(t *testing.T) {
	w := &timingWheel{}
	st := wtSess()
	w.schedule(st, 300) // beyond level 0's 255-tick horizon
	if st.wslot < wheelSlots {
		t.Fatalf("tick 300 filed in level 0 slot %d", st.wslot)
	}
	w.advance(299)
	if st.wslot == wheelImminent {
		t.Fatal("fired a tick early")
	}
	if w.cascades != 1 {
		t.Fatalf("cascades=%d crossing the epoch, want 1", w.cascades)
	}
	if st.wslot < 0 || st.wslot >= wheelSlots {
		t.Fatalf("not cascaded into level 0: slot %d", st.wslot)
	}
	w.advance(300)
	if st.wslot != wheelImminent {
		t.Fatal("did not fire at its tick after cascading")
	}
}

func TestWheelWraparoundHighTicks(t *testing.T) {
	// Slot indices are tick & mask: behavior must be identical when the
	// absolute tick is far beyond several full wheel revolutions.
	w := &timingWheel{}
	w.advance(1 << 30)
	base := w.cur
	near, far := wtSess(), wtSess()
	w.schedule(near, base+7)
	w.schedule(far, base+wheelSlots+13)
	w.advance(base + 6)
	if near.wslot == wheelImminent {
		t.Fatal("near fired early")
	}
	w.advance(base + 7)
	if near.wslot != wheelImminent || far.wslot == wheelImminent {
		t.Fatalf("near=%d far=%d after tick %d", near.wslot, far.wslot, base+7)
	}
	w.advance(base + wheelSlots + 13)
	if far.wslot != wheelImminent {
		t.Fatal("far did not fire at its tick")
	}
}

func TestWheelSpanClampRefires(t *testing.T) {
	// A wake beyond the two-level horizon is clamped to the last
	// reachable tick: it must fire there (so the owner can re-file it),
	// not alias into a slot of the current epoch.
	w := &timingWheel{}
	w.advance(1000)
	st := wtSess()
	w.schedule(st, w.cur+10*wheelSpanTicks)
	max := (w.cur &^ int64(wheelMask)) + wheelSpanTicks - 1
	if st.wtick != max {
		t.Fatalf("clamped to tick %d, want span edge %d", st.wtick, max)
	}
	w.advance(max - 1)
	if st.wslot == wheelImminent {
		t.Fatal("fired before the span edge")
	}
	w.advance(max)
	if st.wslot != wheelImminent {
		t.Fatal("clamped timer never fired at the span edge")
	}
}

func TestWheelUnlinkEverywhere(t *testing.T) {
	w := &timingWheel{}
	a, b, c := wtSess(), wtSess(), wtSess()
	// Same level-0 slot: exercises middle-of-list unlink.
	w.schedule(a, 5)
	w.schedule(b, 5)
	w.schedule(c, 5)
	w.unlink(b)
	if w.n != 2 || b.wslot != wheelNone {
		t.Fatalf("after unlink: n=%d slot=%d", w.n, b.wslot)
	}
	w.unlink(b) // idempotent
	if w.n != 2 {
		t.Fatalf("double unlink corrupted count: n=%d", w.n)
	}
	w.advance(5)
	if got := len(collectImminent(w)); got != 2 {
		t.Fatalf("%d sessions fired, want 2 (b was cancelled)", got)
	}
	// Unlink from level 1 and from the imminent list.
	d := wtSess()
	w.schedule(d, w.cur+1000)
	w.unlink(d)
	if w.n != 0 || d.wslot != wheelNone {
		t.Fatalf("level-1 unlink: n=%d slot=%d", w.n, d.wslot)
	}
	w.unlink(a)
	if a.wslot != wheelNone || len(collectImminent(w)) != 1 {
		t.Fatal("imminent unlink failed")
	}
}

func TestWheelEmptyJumpAndGiantAdvance(t *testing.T) {
	w := &timingWheel{}
	w.advance(1 << 40) // empty: O(1) jump, must not iterate 2^40 ticks
	if w.cur != 1<<40 {
		t.Fatalf("cur=%d", w.cur)
	}
	// Populate both levels, then advance beyond the whole span at once.
	ss := make([]*session, 6)
	for i := range ss {
		ss[i] = wtSess()
		w.schedule(ss[i], w.cur+1+int64(i)*2000)
	}
	w.advance(w.cur + wheelSpanTicks + 5)
	for i, st := range ss {
		if st.wslot != wheelImminent {
			t.Fatalf("session %d (tick %d) not fired by a whole-span advance", i, st.wtick)
		}
	}
	if w.n != 0 {
		t.Fatalf("n=%d after firing everything", w.n)
	}
}

func TestWheelPlacePastGoesImminent(t *testing.T) {
	w := &timingWheel{}
	w.advance(100)
	st := wtSess()
	w.place(st, wheelTickStart(50)) // already past
	if st.wslot != wheelImminent {
		t.Fatalf("past wake filed in slot %d, want imminent", st.wslot)
	}
}

func TestWheelNextWake(t *testing.T) {
	w := &timingWheel{}
	if !math.IsInf(w.nextWake(), 1) {
		t.Fatal("empty wheel must report +Inf")
	}
	w.advance(10)
	st := wtSess()
	w.schedule(st, 17)
	if got, want := w.nextWake(), wheelTickStart(17); got != want {
		t.Fatalf("nextWake=%v want %v", got, want)
	}
	w.unlink(st)
	w.schedule(st, w.cur+10*wheelScanSlots)
	if !math.IsInf(w.nextWake(), 1) {
		t.Fatal("beyond the scan horizon must report +Inf (sweep covers it)")
	}
}

// discardBatch is a BatchConn that swallows writes: pacing tests drive
// shards synchronously and need no real peer.
type discardBatch struct{}

func (discardBatch) ReadBatch(ms []Message) (int, error)  { return 0, nil }
func (discardBatch) WriteBatch(ms []Message) (int, error) { return len(ms), nil }
func (discardBatch) SetReadDeadline(time.Time) error      { return nil }
func (discardBatch) Kind() BatchKind                      { return BatchGeneric }

// pacerHarness is a single-shard MultiServer driven synchronously
// (Serve never runs): handle and pump are called directly with
// explicit instants, writes go to a discard sink.
func pacerHarness(t testing.TB, pk PacerKind, cfg MultiConfig) *shard {
	t.Helper()
	conn := listenUDPTB(t)
	t.Cleanup(func() { conn.Close() })
	cfg.Shards = 1
	cfg.Pacer = pk
	if cfg.QA.C == 0 {
		cfg.QA = core.Params{C: 15_000, Kmax: 2, MaxLayers: 2, StartupSec: 0.1}
	}
	if cfg.RAP.PacketSize == 0 {
		cfg.RAP = rap.Config{PacketSize: 512, InitialRTT: 0.02, MaxRate: 40_000}
	}
	srv, err := NewMultiServer(conn, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sh := srv.shards[0]
	sh.writer = discardBatch{}
	return sh
}

func synthAddr(i int) netip.AddrPort {
	return netip.AddrPortFrom(netip.AddrFrom4([4]byte{10, 0, byte(i >> 8), byte(i)}), uint16(20000+i%1000))
}

// TestPacerDifferentialRandomized drives a scan-paced and a
// wheel-paced shard through the same randomized workload — joins,
// re-requests, full and partial acks, silence, and pumps at irregular
// instants including multi-second and whole-span jumps — and asserts
// they make bit-identical decisions throughout: same packets written
// per pump, same live session set, and per-session identical send
// counts and exact next-send instants.
func TestPacerDifferentialRandomized(t *testing.T) {
	cfg := MultiConfig{
		Batch:       1024, // never the binding constraint: due-set order must not matter
		IdleTimeout: 700 * time.Millisecond,
		MaxStream:   time.Hour,
	}
	scan := pacerHarness(t, PacerScan, cfg)
	wheel := pacerHarness(t, PacerWheel, cfg)
	both := [2]*shard{scan, wheel}

	rng := rand.New(rand.NewSource(7))
	now := 0.0
	const maxClients = 48
	handleBoth := func(m inMsg) {
		for _, sh := range both {
			sh.handle(m, now)
		}
	}
	ackSome := func(st *session, frac float64) {
		// Ack decisions are generated once (from the scan shard's
		// state) and applied to both, so the servers see identical
		// input even while we verify their states match.
		for seq := st.snd.Acked + st.snd.Lost; seq < st.snd.Sent; seq++ {
			if frac < 1 && rng.Float64() >= frac {
				continue
			}
			m := inMsg{addr: st.addr, kind: KindAck, ack: Ack{AckSeq: seq, NackLayer: NoNack}}
			if rng.Intn(20) == 0 {
				m.ack.NackLayer = 0
				m.ack.NackOff = int64(rng.Intn(40)) * 512
				m.ack.NackLen = 512
			}
			handleBoth(m)
		}
	}
	compare := func(step int) {
		t.Helper()
		if len(scan.sessions) != len(wheel.sessions) {
			t.Fatalf("step %d: %d vs %d live sessions", step, len(scan.sessions), len(wheel.sessions))
		}
		for addr, a := range scan.sessions {
			b := wheel.sessions[addr]
			if b == nil {
				t.Fatalf("step %d: %v live under scan, expired under wheel", step, addr)
			}
			if a.snd.Sent != b.snd.Sent {
				t.Fatalf("step %d %v: sent %d vs %d", step, addr, a.snd.Sent, b.snd.Sent)
			}
			if a.nextSend != b.nextSend {
				t.Fatalf("step %d %v: nextSend %.17g vs %.17g", step, addr, a.nextSend, b.nextSend)
			}
			if a.deadline != b.deadline {
				t.Fatalf("step %d %v: deadline %.17g vs %.17g", step, addr, a.deadline, b.deadline)
			}
		}
	}

	live := []netip.AddrPort{}
	nextID := 0
	for step := 0; step < 4000; step++ {
		switch op := rng.Intn(10); {
		case op < 3 && len(live) < maxClients: // join
			addr := synthAddr(nextID)
			nextID++
			live = append(live, addr)
			handleBoth(inMsg{addr: addr, kind: KindReq, durMs: uint32(100 + rng.Intn(2500))})
		case op == 3 && len(live) > 0: // re-request (deadline may move either way)
			handleBoth(inMsg{addr: live[rng.Intn(len(live))], kind: KindReq, durMs: uint32(50 + rng.Intn(2500))})
		case op < 7 && len(live) > 0: // ack a random client, fully or partially
			if st := scan.sessions[live[rng.Intn(len(live))]]; st != nil {
				frac := 1.0
				if rng.Intn(3) == 0 {
					frac = rng.Float64()
				}
				ackSome(st, frac)
			}
		}
		// Advance time: usually sub-sweep steps, sometimes a coalesced
		// sleep, rarely a stall past idle expiry or a whole-span jump.
		switch r := rng.Intn(100); {
		case r < 80:
			now += 0.0001 + rng.Float64()*0.005
		case r < 95:
			now += rng.Float64() * 0.08
		case r < 99:
			now += 1 + rng.Float64() // expires idle clients
		default:
			now += 70 // beyond the wheel's ~69 s two-level span
		}
		ks, _ := scan.pump(now)
		kw, _ := wheel.pump(now)
		if ks != kw {
			t.Fatalf("step %d (now=%.6f): scan wrote %d packets, wheel wrote %d", step, now, ks, kw)
		}
		compare(step)
		// Forget expired clients so the live list doesn't grow stale.
		if step%50 == 0 {
			kept := live[:0]
			for _, a := range live {
				if scan.sessions[a] != nil {
					kept = append(kept, a)
				}
			}
			live = kept
		}
	}
	if scan.srv.expired.Load() == 0 || scan.srv.sent.Load() == 0 {
		t.Fatalf("workload too tame: expired=%d sent=%d", scan.srv.expired.Load(), scan.srv.sent.Load())
	}
}

// TestShardStallRecoveryBurst pins the catch-up fix: a shard that
// stalls (descheduled goroutine, coalesced timer) and then resumes
// with wakeups sparser than the inter-packet gap must still deliver
// the session's target rate, repaying lateness with bounded bursts
// instead of sagging to one packet per wakeup forever.
func TestShardStallRecoveryBurst(t *testing.T) {
	sh := pacerHarness(t, PacerWheel, MultiConfig{IdleTimeout: time.Hour})
	addr := synthAddr(1)
	now := 0.0
	sh.handle(inMsg{addr: addr, kind: KindReq, durMs: 3_600_000}, now)
	st := sh.sessions[addr]
	ackAll := func() {
		for seq := st.snd.Acked + st.snd.Lost; seq < st.snd.Sent; seq++ {
			sh.handle(inMsg{addr: addr, kind: KindAck, ack: Ack{AckSeq: seq, NackLayer: NoNack}}, now)
		}
	}
	// Warm up at tight wakeups until RAP sits at MaxRate.
	for i := 0; i < 400; i++ {
		now += 0.005
		sh.pump(now)
		ackAll()
	}
	// Stall for a full second, then resume with 20 ms wakeups — sparser
	// than the ~12.8 ms gap at MaxRate (40 kB/s / 512 B = 78 pkt/s), so
	// without catch-up the ceiling would be 50 pkt/s.
	now += 1.0
	for i := 0; i < 50; i++ { // settle after the stall
		now += 0.02
		sh.pump(now)
		ackAll()
	}
	sentBefore := st.snd.Sent
	start := now
	for now-start < 2.0 {
		now += 0.02
		sh.pump(now)
		ackAll()
	}
	rate := float64(st.snd.Sent-sentBefore) / (now - start)
	const target = 40_000.0 / 512.0
	if rate < 0.85*target {
		t.Fatalf("post-stall rate %.1f pkt/s at 20 ms wakeups, want ≈%.1f (one-per-wakeup ceiling would be 50)", rate, target)
	}
	if rate > 1.15*target {
		t.Fatalf("post-stall rate %.1f pkt/s overshoots the %.1f target: catch-up burst unbounded?", rate, target)
	}
}

// addIdle registers n far-future sessions on the shard: minimal bare
// structs (the pacers read only the timing fields for never-due
// sessions), so a 100k population is cheap to build.
func addIdle(sh *shard, n int, now float64) {
	for i := 0; i < n; i++ {
		st := &session{
			addr:     synthAddr(100_000 + i),
			nextSend: 1e9,
			deadline: 1e9,
			lastRecv: now,
			wslot:    wheelNone,
			orderIdx: len(sh.order),
		}
		sh.order = append(sh.order, st)
		sh.pacer.add(sh, st, now)
	}
}

// pumpCost measures the mean wall time of a shard wakeup with nDue
// actively paced sessions and nIdle never-due ones.
func pumpCost(t testing.TB, pk PacerKind, nIdle int) time.Duration {
	sh := pacerHarness(t, pk, MultiConfig{IdleTimeout: time.Hour, MaxStream: 24 * time.Hour})
	now := 0.0
	const nDue = 8
	addrs := make([]netip.AddrPort, nDue)
	for i := range addrs {
		addrs[i] = synthAddr(i)
		sh.handle(inMsg{addr: addrs[i], kind: KindReq, durMs: 3_600_000}, now)
	}
	ackAll := func() {
		for _, a := range addrs {
			st := sh.sessions[a]
			for seq := st.snd.Acked + st.snd.Lost; seq < st.snd.Sent; seq++ {
				sh.handle(inMsg{addr: a, kind: KindAck, ack: Ack{AckSeq: seq, NackLayer: NoNack}}, now)
			}
		}
	}
	for i := 0; i < 200; i++ { // warm the due set to steady state
		now += 0.005
		sh.pump(now)
		ackAll()
	}
	addIdle(sh, nIdle, now)
	iters := 200
	if nIdle >= 50_000 {
		iters = 100
	}
	for i := 0; i < 20; i++ { // settle the idle population's first fire
		now += 0.005
		sh.pump(now)
		ackAll()
	}
	start := time.Now()
	for i := 0; i < iters; i++ {
		now += 0.005
		sh.pump(now)
	}
	el := time.Since(start)
	ackAll()
	return el / time.Duration(iters)
}

// TestWheelPumpCostFlatInIdlePopulation is the O(due) acceptance
// check: growing the idle population 1k -> 100k must not grow the
// wheel's per-wakeup cost beyond noise, while the scan reference grows
// roughly linearly (sanity that the workload actually distinguishes
// the two).
func TestWheelPumpCostFlatInIdlePopulation(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	if raceEnabled {
		t.Skip("race instrumentation distorts per-wakeup cost")
	}
	w1 := pumpCost(t, PacerWheel, 1_000)
	w100 := pumpCost(t, PacerWheel, 100_000)
	s1 := pumpCost(t, PacerScan, 1_000)
	s100 := pumpCost(t, PacerScan, 100_000)
	t.Logf("per-wakeup: wheel 1k=%v 100k=%v (×%.1f)  scan 1k=%v 100k=%v (×%.1f)",
		w1, w100, float64(w100)/float64(w1), s1, s100, float64(s100)/float64(s1))
	if ratio := float64(w100) / float64(w1); ratio > 6 {
		t.Errorf("wheel per-wakeup cost grew ×%.1f from 1k to 100k idle sessions, want flat", ratio)
	}
	if ratio := float64(s100) / float64(s1); ratio < 6 {
		t.Errorf("scan per-wakeup cost grew only ×%.1f across 100× population: workload does not exercise the scan floor", ratio)
	}
	if w100 >= s100 {
		t.Errorf("wheel (%v) not cheaper than scan (%v) at 100k idle", w100, s100)
	}
}

func BenchmarkPumpIdleScaling(b *testing.B) {
	for _, pk := range []PacerKind{PacerScan, PacerWheel} {
		for _, nIdle := range []int{1_000, 10_000, 100_000} {
			b.Run(fmt.Sprintf("%s/idle%d", pk, nIdle), func(b *testing.B) {
				sh := pacerHarness(b, pk, MultiConfig{IdleTimeout: time.Hour, MaxStream: 24 * time.Hour})
				now := 0.0
				addr := synthAddr(1)
				sh.handle(inMsg{addr: addr, kind: KindReq, durMs: 3_600_000}, now)
				st := sh.sessions[addr]
				for i := 0; i < 200; i++ {
					now += 0.005
					sh.pump(now)
					for seq := st.snd.Acked + st.snd.Lost; seq < st.snd.Sent; seq++ {
						sh.handle(inMsg{addr: addr, kind: KindAck, ack: Ack{AckSeq: seq, NackLayer: NoNack}}, now)
					}
				}
				addIdle(sh, nIdle, now)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					now += 0.005
					sh.pump(now)
				}
			})
		}
	}
}
