// Package netio runs the RAP + quality adaptation stack over real UDP
// sockets, standing in for the paper's Internet experiments. A compact
// binary wire format carries layered data packets and per-packet
// acknowledgements; an in-process emulator (Pipe) imposes bandwidth,
// delay, and loss on loopback so the experiments run self-contained.
package netio

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Wire protocol constants.
const (
	// Magic identifies QAV datagrams.
	Magic uint16 = 0x5156 // "QV"
	// Version of the wire format.
	Version byte = 1

	// KindData is a forward-path layered payload packet.
	KindData byte = 0
	// KindAck acknowledges a single data packet.
	KindAck byte = 1
	// KindReq is the client's stream request.
	KindReq byte = 2

	// DataHeaderLen is the byte length of a data packet header.
	DataHeaderLen = 2 + 1 + 1 + 8 + 1 + 8 + 8 + 2
	// AckLen is the byte length of an acknowledgement packet.
	AckLen = 2 + 1 + 1 + 8 + 8 + 1 + 8 + 4
	// ReqLen is the byte length of a stream request.
	ReqLen = 2 + 1 + 1 + 4
)

// Common decode errors.
var (
	ErrShortPacket = errors.New("netio: packet too short")
	ErrBadMagic    = errors.New("netio: bad magic")
	ErrBadVersion  = errors.New("netio: unsupported version")
)

// DataHeader describes one layered data packet.
type DataHeader struct {
	Seq        int64
	Layer      uint8
	LayerOff   int64  // byte offset of this packet within its layer's stream
	SendMicros uint64 // sender clock, microseconds
	PayloadLen uint16
}

// EncodeData writes a data packet (header + payload) into buf and
// returns the total length. buf must hold DataHeaderLen+len(payload).
func EncodeData(buf []byte, h DataHeader, payload []byte) (int, error) {
	total := DataHeaderLen + len(payload)
	if len(buf) < total {
		return 0, fmt.Errorf("netio: buffer %d too small for %d", len(buf), total)
	}
	if len(payload) > int(^uint16(0)) {
		return 0, fmt.Errorf("netio: payload %d exceeds uint16", len(payload))
	}
	binary.BigEndian.PutUint16(buf[0:], Magic)
	buf[2] = Version
	buf[3] = KindData
	binary.BigEndian.PutUint64(buf[4:], uint64(h.Seq))
	buf[12] = h.Layer
	binary.BigEndian.PutUint64(buf[13:], uint64(h.LayerOff))
	binary.BigEndian.PutUint64(buf[21:], h.SendMicros)
	binary.BigEndian.PutUint16(buf[29:], uint16(len(payload)))
	copy(buf[DataHeaderLen:], payload)
	return total, nil
}

// DecodeData parses a data packet; the returned payload aliases b.
func DecodeData(b []byte) (DataHeader, []byte, error) {
	var h DataHeader
	if err := checkHeader(b, DataHeaderLen, KindData); err != nil {
		return h, nil, err
	}
	h.Seq = int64(binary.BigEndian.Uint64(b[4:]))
	h.Layer = b[12]
	h.LayerOff = int64(binary.BigEndian.Uint64(b[13:]))
	h.SendMicros = binary.BigEndian.Uint64(b[21:])
	h.PayloadLen = binary.BigEndian.Uint16(b[29:])
	if len(b) < DataHeaderLen+int(h.PayloadLen) {
		return h, nil, ErrShortPacket
	}
	return h, b[DataHeaderLen : DataHeaderLen+int(h.PayloadLen)], nil
}

// NoNack marks an acknowledgement without a retransmission request.
const NoNack = 0xFF

// Ack acknowledges one data packet and echoes its send timestamp. It
// optionally carries one negative acknowledgement: the oldest hole in a
// layer's byte stream the receiver wants retransmitted (the selective
// retransmission opportunity of §1.3 — lower layers matter most).
type Ack struct {
	AckSeq     int64
	EchoMicros uint64
	NackLayer  uint8 // NoNack = no retransmission request
	NackOff    int64
	NackLen    uint32
}

// EncodeAck writes an acknowledgement into buf and returns its length.
func EncodeAck(buf []byte, a Ack) (int, error) {
	if len(buf) < AckLen {
		return 0, fmt.Errorf("netio: buffer %d too small for ack", len(buf))
	}
	binary.BigEndian.PutUint16(buf[0:], Magic)
	buf[2] = Version
	buf[3] = KindAck
	binary.BigEndian.PutUint64(buf[4:], uint64(a.AckSeq))
	binary.BigEndian.PutUint64(buf[12:], a.EchoMicros)
	buf[20] = a.NackLayer
	binary.BigEndian.PutUint64(buf[21:], uint64(a.NackOff))
	binary.BigEndian.PutUint32(buf[29:], a.NackLen)
	return AckLen, nil
}

// DecodeAck parses an acknowledgement.
func DecodeAck(b []byte) (Ack, error) {
	var a Ack
	if err := checkHeader(b, AckLen, KindAck); err != nil {
		return a, err
	}
	a.AckSeq = int64(binary.BigEndian.Uint64(b[4:]))
	a.EchoMicros = binary.BigEndian.Uint64(b[12:])
	a.NackLayer = b[20]
	a.NackOff = int64(binary.BigEndian.Uint64(b[21:]))
	a.NackLen = binary.BigEndian.Uint32(b[29:])
	return a, nil
}

// Req asks the server to stream for a bounded duration.
type Req struct {
	DurationMs uint32
}

// EncodeReq writes a stream request into buf and returns its length.
func EncodeReq(buf []byte, r Req) (int, error) {
	if len(buf) < ReqLen {
		return 0, fmt.Errorf("netio: buffer %d too small for req", len(buf))
	}
	binary.BigEndian.PutUint16(buf[0:], Magic)
	buf[2] = Version
	buf[3] = KindReq
	binary.BigEndian.PutUint32(buf[4:], r.DurationMs)
	return ReqLen, nil
}

// DecodeReq parses a stream request.
func DecodeReq(b []byte) (Req, error) {
	var r Req
	if err := checkHeader(b, ReqLen, KindReq); err != nil {
		return r, err
	}
	r.DurationMs = binary.BigEndian.Uint32(b[4:])
	return r, nil
}

// Kind returns the packet kind byte, or an error for foreign datagrams.
func Kind(b []byte) (byte, error) {
	if len(b) < 4 {
		return 0, ErrShortPacket
	}
	if binary.BigEndian.Uint16(b) != Magic {
		return 0, ErrBadMagic
	}
	if b[2] != Version {
		return 0, ErrBadVersion
	}
	return b[3], nil
}

func checkHeader(b []byte, minLen int, kind byte) error {
	k, err := Kind(b)
	if err != nil {
		return err
	}
	if len(b) < minLen {
		return ErrShortPacket
	}
	if k != kind {
		return fmt.Errorf("netio: kind %d, want %d", k, kind)
	}
	return nil
}
