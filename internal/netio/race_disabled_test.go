//go:build !race

package netio

const raceEnabled = false
