package netio

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"qav/internal/metrics"
	"qav/internal/video"
)

// ClientStats summarizes what a client received and could play.
type ClientStats struct {
	Packets int64
	Bytes   int64
	// ByLayer counts bytes per layer. It grows on demand to the highest
	// layer seen; index through LayerBytes to avoid bounds worries.
	ByLayer       []int64
	HighestLayer  int
	FirstArrival  time.Duration
	LastArrival   time.Duration
	ReorderEvents int64
	Retransmits   int64 // repaired holes (selective retransmission)
	NacksSent     int64

	// Playback holds the playout-model quality metrics (decodable
	// layer-seconds, stalls, per-layer gaps) when the client was
	// created with a video receiver (DialVideo).
	Playback video.Stats
}

// LayerBytes returns the bytes received for layer l, zero for layers
// never seen (including l beyond the slice).
func (st ClientStats) LayerBytes(l int) int64 {
	if l < 0 || l >= len(st.ByLayer) {
		return 0
	}
	return st.ByLayer[l]
}

// Client requests a stream from a server (directly or through a Pipe)
// and acknowledges every data packet, mirroring the RAP receiver. With
// a playout model attached (DialVideo) it additionally drives the
// hierarchical decoder simulation and requests selective
// retransmissions for base-layer holes.
type Client struct {
	conn *net.UDPConn

	mu      sync.Mutex
	stats   ClientStats
	started time.Time
	lastSeq int64
	rx      *video.Receiver
	pktSize int64
	seen    map[seenKey]bool // (layer, off) already delivered once

	// reg is the per-stream metrics registry; snapshot functions lock
	// c.mu, so it is safe to snapshot concurrently with streaming.
	reg *metrics.Registry
}

type seenKey struct {
	layer int
	off   int64
}

// Dial connects a client to addr (the server or an emulating pipe).
func Dial(addr string) (*Client, error) {
	ra, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("netio: resolve %q: %w", addr, err)
	}
	conn, err := net.DialUDP("udp", nil, ra)
	if err != nil {
		return nil, fmt.Errorf("netio: dial %q: %w", addr, err)
	}
	c := &Client{conn: conn, lastSeq: -1, seen: make(map[seenKey]bool), reg: metrics.NewRegistry()}
	locked := func(read func() int64) func() int64 {
		return func() int64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			return read()
		}
	}
	c.reg.CounterFunc("netio.rx.packets", locked(func() int64 { return c.stats.Packets }))
	c.reg.CounterFunc("netio.rx.bytes", locked(func() int64 { return c.stats.Bytes }))
	c.reg.CounterFunc("netio.rx.reorders", locked(func() int64 { return c.stats.ReorderEvents }))
	c.reg.CounterFunc("netio.rx.retransmits", locked(func() int64 { return c.stats.Retransmits }))
	c.reg.CounterFunc("netio.rx.nacks", locked(func() int64 { return c.stats.NacksSent }))
	return c, nil
}

// Metrics returns the client's per-stream metrics registry. Snapshots
// are safe to take concurrently with streaming.
func (c *Client) Metrics() *metrics.Registry { return c.reg }

// DialVideo connects a client with a playout model attached: received
// bytes feed a hierarchical-decoding receiver whose quality metrics
// appear in Stats().Playback, and base-layer holes are NACKed for
// selective retransmission.
func DialVideo(addr string, cfg video.Config) (*Client, error) {
	cl, err := Dial(addr)
	if err != nil {
		return nil, err
	}
	rx, err := video.NewReceiver(cfg)
	if err != nil {
		cl.Close()
		return nil, err
	}
	cl.rx = rx
	return cl, nil
}

// Close releases the socket.
func (c *Client) Close() error { return c.conn.Close() }

// Stats returns a snapshot of receive-side statistics.
func (c *Client) Stats() ClientStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := c.stats
	out.ByLayer = make([]int64, len(c.stats.ByLayer))
	copy(out.ByLayer, c.stats.ByLayer)
	if c.rx != nil {
		c.rx.Advance(time.Since(c.started).Seconds())
		out.Playback = c.rx.Stats()
	}
	return out
}

// Stream requests dur of streaming and acknowledges packets until the
// flow goes idle or ctx is cancelled.
func (c *Client) Stream(ctx context.Context, dur time.Duration) error {
	c.started = time.Now()
	req := make([]byte, ReqLen)
	n, err := EncodeReq(req, Req{DurationMs: uint32(dur / time.Millisecond)})
	if err != nil {
		return err
	}
	if _, err := c.conn.Write(req[:n]); err != nil {
		return fmt.Errorf("netio: request: %w", err)
	}

	buf := make([]byte, 64<<10)
	ackBuf := make([]byte, AckLen)
	deadline := time.Now().Add(dur + 5*time.Second)
	idleLimit := 2 * time.Second
	lastData := time.Now()
	gotAny := false
	for time.Now().Before(deadline) {
		if err := ctx.Err(); err != nil {
			return err
		}
		if gotAny && time.Since(lastData) > idleLimit {
			return nil // stream ended
		}
		c.conn.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
		nr, err := c.conn.Read(buf)
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				continue
			}
			return err
		}
		h, payload, err := DecodeData(buf[:nr])
		if err != nil {
			continue
		}
		gotAny = true
		lastData = time.Now()
		c.record(h, len(payload)+DataHeaderLen)

		ack := Ack{AckSeq: h.Seq, EchoMicros: h.SendMicros, NackLayer: NoNack}
		if c.rx != nil {
			c.fillNack(&ack)
		}
		na, err := EncodeAck(ackBuf, ack)
		if err != nil {
			return err
		}
		if _, err := c.conn.Write(ackBuf[:na]); err != nil {
			return fmt.Errorf("netio: ack: %w", err)
		}
	}
	if !gotAny {
		return fmt.Errorf("netio: no data received within %v", dur+5*time.Second)
	}
	return nil
}

func (c *Client) record(h DataHeader, size int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := &c.stats
	if c.rx != nil {
		key := seenKey{layer: int(h.Layer), off: h.LayerOff}
		if c.seen[key] {
			st.Retransmits++
		} else {
			c.seen[key] = true
		}
		c.pktSize = int64(size)
		c.rx.Deliver(time.Since(c.started).Seconds(), int(h.Layer), h.LayerOff, int64(size))
	}
	st.Packets++
	st.Bytes += int64(size)
	for len(st.ByLayer) <= int(h.Layer) {
		st.ByLayer = append(st.ByLayer, 0)
	}
	st.ByLayer[h.Layer] += int64(size)
	if int(h.Layer) > st.HighestLayer {
		st.HighestLayer = int(h.Layer)
	}
	if st.Packets == 1 {
		st.FirstArrival = time.Since(c.started)
	}
	st.LastArrival = time.Since(c.started)
	if h.Seq < c.lastSeq {
		st.ReorderEvents++
	} else {
		c.lastSeq = h.Seq
	}
}

// fillNack attaches the oldest actionable base-layer hole to an
// acknowledgement. A hole is actionable once the stream frontier has
// moved at least two packets past it (otherwise it is probably just
// reordering in flight).
func (c *Client) fillNack(ack *Ack) {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := time.Since(c.started).Seconds()
	c.rx.Advance(now)
	frontier := c.rx.FrontierOf(0)
	margin := 2 * c.pktSize
	if margin <= 0 {
		margin = 1024
	}
	start, end, ok := c.rx.FirstHole(0, frontier-margin)
	if !ok {
		return
	}
	if end-start > 64<<10 {
		end = start + 64<<10
	}
	ack.NackLayer = 0
	ack.NackOff = start
	ack.NackLen = uint32(end - start)
	c.stats.NacksSent++
}
