package netio

import (
	"bytes"
	"testing"
)

// fuzzSeeds returns representative valid encodings of every packet kind.
func fuzzSeeds(tb testing.TB) [][]byte {
	tb.Helper()
	data := make([]byte, DataHeaderLen+64)
	n, err := EncodeData(data, DataHeader{
		Seq:        1234,
		Layer:      3,
		LayerOff:   987_654,
		SendMicros: 55_555_555,
	}, make([]byte, 64))
	if err != nil {
		tb.Fatal(err)
	}
	data = data[:n]
	ack := make([]byte, AckLen)
	n, err = EncodeAck(ack, Ack{
		AckSeq:     99,
		EchoMicros: 1_000_000,
		NackLayer:  1,
		NackOff:    4096,
		NackLen:    512,
	})
	if err != nil {
		tb.Fatal(err)
	}
	ack = ack[:n]
	req := make([]byte, ReqLen)
	n, err = EncodeReq(req, Req{DurationMs: 30_000})
	if err != nil {
		tb.Fatal(err)
	}
	req = req[:n]
	return [][]byte{data, ack, req}
}

// FuzzWireDecode feeds arbitrary bytes through every decoder: none may
// panic, and anything that decodes must re-encode to the same bytes
// (round-trip is what the serving path relies on).
func FuzzWireDecode(f *testing.F) {
	for _, seed := range fuzzSeeds(f) {
		f.Add(seed)
		for _, cut := range []int{0, 1, 2, 3, 4, len(seed) / 2, len(seed) - 1} {
			f.Add(seed[:cut])
		}
		mut := append([]byte(nil), seed...)
		mut[0] ^= 0xFF // bad magic
		f.Add(mut)
		mut = append([]byte(nil), seed...)
		mut[2] = 200 // bad version
		f.Add(mut)
	}
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, b []byte) {
		k, kerr := Kind(b)
		if h, payload, err := DecodeData(b); err == nil {
			if kerr != nil || k != KindData {
				t.Fatalf("DecodeData accepted what Kind rejected: kind=%v err=%v", k, kerr)
			}
			out := make([]byte, DataHeaderLen+len(payload))
			n, err := EncodeData(out, h, payload)
			if err != nil {
				t.Fatalf("re-encode of decoded data failed: %v", err)
			}
			// Decoders tolerate trailing bytes; the re-encoding must
			// reproduce the packet itself.
			if n > len(b) || !bytes.Equal(out[:n], b[:n]) {
				t.Fatalf("data round-trip mismatch:\n in  %x\n out %x", b, out[:n])
			}
		}
		if a, err := DecodeAck(b); err == nil {
			if kerr != nil || k != KindAck {
				t.Fatalf("DecodeAck accepted what Kind rejected: kind=%v err=%v", k, kerr)
			}
			out := make([]byte, AckLen)
			n, err := EncodeAck(out, a)
			if err != nil {
				t.Fatalf("re-encode of decoded ack failed: %v", err)
			}
			if n > len(b) || !bytes.Equal(out[:n], b[:n]) {
				t.Fatalf("ack round-trip mismatch:\n in  %x\n out %x", b, out[:n])
			}
		}
		if r, err := DecodeReq(b); err == nil {
			if kerr != nil || k != KindReq {
				t.Fatalf("DecodeReq accepted what Kind rejected: kind=%v err=%v", k, kerr)
			}
			out := make([]byte, ReqLen)
			n, err := EncodeReq(out, r)
			if err != nil {
				t.Fatalf("re-encode of decoded req failed: %v", err)
			}
			if n > len(b) || !bytes.Equal(out[:n], b[:n]) {
				t.Fatalf("req round-trip mismatch:\n in  %x\n out %x", b, out[:n])
			}
		}
	})
}

// TestWireTruncatedNeverPanics deterministically walks every prefix of
// every valid packet through every decoder — the exact shape a short
// read hands the server.
func TestWireTruncatedNeverPanics(t *testing.T) {
	for _, seed := range fuzzSeeds(t) {
		for cut := 0; cut <= len(seed); cut++ {
			b := seed[:cut]
			Kind(b)
			DecodeData(b)
			DecodeAck(b)
			DecodeReq(b)
			if cut < len(seed) {
				// No decoder may accept a strict prefix of a data/ack/req
				// packet except a decoder for a shorter kind; the packet's
				// own decoder must reject it.
				switch seed[3] {
				case KindData:
					if _, _, err := DecodeData(b); err == nil && cut < DataHeaderLen {
						t.Fatalf("DecodeData accepted %d-byte truncation", cut)
					}
				case KindAck:
					if _, err := DecodeAck(b); err == nil {
						t.Fatalf("DecodeAck accepted %d-byte truncation", cut)
					}
				case KindReq:
					if _, err := DecodeReq(b); err == nil {
						t.Fatalf("DecodeReq accepted %d-byte truncation", cut)
					}
				}
			}
		}
	}
}
