package netio

import (
	"fmt"
	"net"
	"net/netip"
	"time"
)

// Message is one datagram in a batched read or write. For reads, Buf is
// the backing buffer, N the received length, and Addr the peer. For
// writes, Buf[:N] is sent to Addr. Buffers are caller-owned and reused
// across calls — nothing in the batch layer retains or allocates them.
type Message struct {
	Buf  []byte
	N    int
	Addr netip.AddrPort
}

// BatchConn reads and writes UDP datagrams in batches. On Linux the
// mmsg implementation moves a whole batch per syscall via recvmmsg and
// sendmmsg; everywhere else (and for A/B measurement) the generic
// implementation degrades to one datagram per syscall over the plain
// *net.UDPConn methods, so the serving path runs — and is testable — on
// any platform.
//
// Implementations are NOT goroutine-safe: each owner (the reader
// goroutine, each shard) wraps the shared socket in its own BatchConn,
// whose scratch state is single-owner while the kernel serializes the
// underlying datagram sends.
type BatchConn interface {
	// ReadBatch fills ms with up to len(ms) datagrams, blocking until at
	// least one arrives or the read deadline expires. It returns the
	// number of messages filled in.
	ReadBatch(ms []Message) (int, error)
	// WriteBatch sends ms[i].Buf[:ms[i].N] to ms[i].Addr for every
	// message, returning how many were sent.
	WriteBatch(ms []Message) (int, error)
	// SetReadDeadline bounds future ReadBatch calls.
	SetReadDeadline(t time.Time) error
	// Kind identifies the implementation ("mmsg" or "generic").
	Kind() BatchKind
}

// BatchKind selects a BatchConn implementation.
type BatchKind string

const (
	// BatchAuto picks mmsg where available, generic elsewhere.
	BatchAuto BatchKind = ""
	// BatchMmsg is the Linux sendmmsg/recvmmsg implementation.
	BatchMmsg BatchKind = "mmsg"
	// BatchGeneric is the portable one-datagram-per-syscall fallback.
	BatchGeneric BatchKind = "generic"
)

// NewBatchConn wraps conn in the requested batch implementation.
// Requesting BatchMmsg on a platform without it is an error;
// BatchAuto never fails.
func NewBatchConn(conn *net.UDPConn, kind BatchKind) (BatchConn, error) {
	switch kind {
	case BatchAuto:
		if bc, err := newMmsgConn(conn); err == nil {
			return bc, nil
		}
		return &genericBatch{conn: conn}, nil
	case BatchMmsg:
		return newMmsgConn(conn)
	case BatchGeneric:
		return &genericBatch{conn: conn}, nil
	default:
		return nil, fmt.Errorf("netio: unknown batch kind %q", kind)
	}
}

// genericBatch is the portable fallback: one datagram per syscall via
// the allocation-free AddrPort methods on *net.UDPConn.
type genericBatch struct {
	conn *net.UDPConn
}

func (g *genericBatch) Kind() BatchKind { return BatchGeneric }

func (g *genericBatch) SetReadDeadline(t time.Time) error { return g.conn.SetReadDeadline(t) }

// ReadBatch reads a single datagram into ms[0]. Without recvmmsg there
// is no way to drain several datagrams in one blocking call, so the
// generic batch is always size one — the A/B baseline the mmsg path is
// measured against.
func (g *genericBatch) ReadBatch(ms []Message) (int, error) {
	if len(ms) == 0 {
		return 0, nil
	}
	n, addr, err := g.conn.ReadFromUDPAddrPort(ms[0].Buf)
	if err != nil {
		return 0, err
	}
	ms[0].N = n
	ms[0].Addr = addr
	return 1, nil
}

func (g *genericBatch) WriteBatch(ms []Message) (int, error) {
	for i := range ms {
		if _, err := g.conn.WriteToUDPAddrPort(ms[i].Buf[:ms[i].N], ms[i].Addr); err != nil {
			return i, err
		}
	}
	return len(ms), nil
}
