package netio

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"
)

// LoadConfig drives a fleet of emulated clients against a server.
type LoadConfig struct {
	// Addr is the server (or pipe) address to dial.
	Addr string
	// Clients is the number of concurrent emulated clients.
	Clients int
	// Dur is how long each client requests to be streamed to.
	Dur time.Duration
	// Stagger spreads client joins over a bounded window (default 1 s)
	// using the fleet stagger arithmetic from the simulator: client i
	// joins at (i*97 ms) mod window, exact integer milliseconds, so
	// joins neither phase-lock nor thundering-herd.
	Stagger time.Duration
	// ReadBuf sizes each client's receive buffer (default 2048).
	ReadBuf int
	// IdleExit is how long a client waits with no data before treating
	// the stream as over (default 2 s).
	IdleExit time.Duration
}

// ClientLoad is one emulated client's receive summary.
type ClientLoad struct {
	Packets      int64
	Bytes        int64
	HighestLayer int
	Goodput      float64 // bytes/s over the client's active window
	Err          string  // empty on success
}

// LoadResult aggregates a load run.
type LoadResult struct {
	PerClient []ClientLoad
	// GoodputTotal sums per-client goodput, bytes/s.
	GoodputTotal float64
	// Jain is Jain's fairness index over per-client goodput: 1.0 is
	// perfectly fair, 1/n is maximally unfair.
	Jain       float64
	MinGoodput float64
	MaxGoodput float64
	// Starved counts clients that received nothing.
	Starved int
	// PktsTotal counts data packets received across all clients.
	PktsTotal int64
	// Elapsed is the wall time of the whole run, joins included.
	Elapsed time.Duration
}

// RunLoad launches cfg.Clients emulated clients with staggered joins
// and blocks until all streams end. Each client is a lightweight
// request/read/ack loop (no playout model, no NACKs) with an
// allocation-free receive path, so thousands run comfortably on one
// host — the knob that matters is the server under test.
func RunLoad(ctx context.Context, cfg LoadConfig) (LoadResult, error) {
	if cfg.Clients <= 0 {
		return LoadResult{}, fmt.Errorf("netio: load needs at least one client")
	}
	if cfg.Stagger <= 0 {
		cfg.Stagger = time.Second
	}
	if cfg.ReadBuf <= 0 {
		cfg.ReadBuf = 2048
	}
	if cfg.IdleExit <= 0 {
		cfg.IdleExit = 2 * time.Second
	}
	startAll := time.Now()
	res := LoadResult{PerClient: make([]ClientLoad, cfg.Clients)}
	var wg sync.WaitGroup
	windowMs := int(cfg.Stagger / time.Millisecond)
	if windowMs <= 0 {
		windowMs = 1
	}
	for i := 0; i < cfg.Clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// The simulator's bounded integer stagger (PR 5/6): exact
			// periodic coverage of the window, no float drift.
			delay := time.Duration((i*97)%windowMs) * time.Millisecond
			select {
			case <-ctx.Done():
				res.PerClient[i].Err = ctx.Err().Error()
				return
			case <-time.After(delay):
			}
			if err := runLoadClient(ctx, cfg, &res.PerClient[i]); err != nil {
				res.PerClient[i].Err = err.Error()
			}
		}(i)
	}
	wg.Wait()
	res.Elapsed = time.Since(startAll)
	res.MinGoodput = 0
	var sum, sumSq float64
	first := true
	for i := range res.PerClient {
		c := &res.PerClient[i]
		res.PktsTotal += c.Packets
		if c.Packets == 0 {
			res.Starved++
		}
		res.GoodputTotal += c.Goodput
		sum += c.Goodput
		sumSq += c.Goodput * c.Goodput
		if first || c.Goodput < res.MinGoodput {
			res.MinGoodput = c.Goodput
		}
		if c.Goodput > res.MaxGoodput {
			res.MaxGoodput = c.Goodput
		}
		first = false
	}
	if sumSq > 0 {
		n := float64(len(res.PerClient))
		res.Jain = sum * sum / (n * sumSq)
	}
	return res, nil
}

// runLoadClient is one emulated client: request the stream, then read
// data and acknowledge every packet until the stream goes idle. The
// loop allocates nothing per packet.
func runLoadClient(ctx context.Context, cfg LoadConfig, out *ClientLoad) error {
	raddr, err := net.ResolveUDPAddr("udp", cfg.Addr)
	if err != nil {
		return err
	}
	conn, err := net.DialUDP("udp", nil, raddr)
	if err != nil {
		return err
	}
	defer conn.Close()

	req := make([]byte, ReqLen)
	n, err := EncodeReq(req, Req{DurationMs: uint32(cfg.Dur / time.Millisecond)})
	if err != nil {
		return err
	}
	if _, err := conn.Write(req[:n]); err != nil {
		return err
	}

	buf := make([]byte, cfg.ReadBuf)
	ackBuf := make([]byte, AckLen)
	start := time.Now()
	deadline := start.Add(cfg.Dur + cfg.IdleExit + 3*time.Second)
	lastData := start
	var firstData, lastArrival time.Time
	rereqAt := start.Add(500 * time.Millisecond) // join may have been shed under load; re-request
	for time.Now().Before(deadline) {
		if ctx.Err() != nil {
			break
		}
		if out.Packets > 0 && time.Since(lastData) > cfg.IdleExit {
			break // stream over
		}
		if out.Packets == 0 && time.Now().After(rereqAt) {
			conn.Write(req[:n])
			rereqAt = time.Now().Add(500 * time.Millisecond)
		}
		conn.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
		nr, err := conn.Read(buf)
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				continue
			}
			return err
		}
		h, payload, err := DecodeData(buf[:nr])
		if err != nil {
			continue
		}
		if out.Packets == 0 {
			firstData = time.Now()
		}
		lastData = time.Now()
		lastArrival = lastData
		out.Packets++
		out.Bytes += int64(len(payload) + DataHeaderLen)
		if int(h.Layer) > out.HighestLayer {
			out.HighestLayer = int(h.Layer)
		}
		na, err := EncodeAck(ackBuf, Ack{AckSeq: h.Seq, EchoMicros: h.SendMicros, NackLayer: NoNack})
		if err != nil {
			return err
		}
		if _, err := conn.Write(ackBuf[:na]); err != nil {
			return err
		}
	}
	if out.Packets > 0 {
		window := lastArrival.Sub(firstData).Seconds()
		if window > 0 {
			out.Goodput = float64(out.Bytes) / window
		}
	}
	return nil
}
