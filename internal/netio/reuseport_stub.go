//go:build !linux

package netio

import (
	"errors"
	"net"
)

var errNoReuseport = errors.New("netio: SO_REUSEPORT socket groups unsupported on this platform")

// ReuseportAvailable reports whether ListenReuseport works on this
// platform.
func ReuseportAvailable() bool { return false }

// ListenReuseport is unavailable off linux; callers fall back to the
// single-socket demux mode (NewMultiServer).
func ListenReuseport(network, addr string, n int) ([]*net.UDPConn, error) {
	return nil, errNoReuseport
}
