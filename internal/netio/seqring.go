package netio

// seqRing is a windowed sequence -> layer attribution table: the
// scoreboard idiom from internal/tcp applied to the server's
// seq -> layer map. The old map[int64]int grew one entry per packet for
// the life of a stream (acknowledged entries were deleted, but every
// loss leaked its entry forever and the map's bucket array never
// shrank). The ring stores each live sequence at slot seq & mask with
// the owning sequence number alongside, so memory is fixed at
// construction: when the send window advances more than size sequences
// past an unacknowledged packet, its slot is simply overwritten — the
// same effect as forgetting a loss, which is exactly what stale entries
// are.
//
// The zero value is unusable; make one with newSeqRing.
type seqRing struct {
	seqs   []int64 // owning sequence per slot, -1 = empty
	layers []int32
	mask   int64
}

// seqWindow is the default attribution window (packets in flight beyond
// this lose layer attribution, costing only a missed delivery credit).
const seqWindow = 1 << 12

// newSeqRing returns a ring tracking up to size in-flight sequences.
// size must be a power of two.
func newSeqRing(size int) seqRing {
	if size <= 0 || size&(size-1) != 0 {
		panic("netio: seqRing size must be a positive power of two")
	}
	r := seqRing{
		seqs:   make([]int64, size),
		layers: make([]int32, size),
		mask:   int64(size - 1),
	}
	for i := range r.seqs {
		r.seqs[i] = -1
	}
	return r
}

// put records that seq carries layer, overwriting whatever sequence
// last hashed to the slot (necessarily at least size sequences older).
func (r *seqRing) put(seq int64, layer int) {
	i := seq & r.mask
	r.seqs[i] = seq
	r.layers[i] = int32(layer)
}

// take returns and clears seq's layer. The second result is false when
// seq was never recorded, already taken, or overwritten by a newer
// sequence.
func (r *seqRing) take(seq int64) (int, bool) {
	i := seq & r.mask
	if r.seqs[i] != seq {
		return 0, false
	}
	r.seqs[i] = -1
	return int(r.layers[i]), true
}

// del clears seq's entry if it is still present (loss forget path).
func (r *seqRing) del(seq int64) {
	i := seq & r.mask
	if r.seqs[i] == seq {
		r.seqs[i] = -1
	}
}

// live counts occupied slots. O(size); for tests and stats only.
func (r *seqRing) live() int {
	n := 0
	for _, s := range r.seqs {
		if s >= 0 {
			n++
		}
	}
	return n
}
