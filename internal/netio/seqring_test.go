package netio

import (
	"runtime"
	"testing"
)

func TestSeqRingPutTakeDel(t *testing.T) {
	r := newSeqRing(16)
	if _, ok := r.take(0); ok {
		t.Fatal("empty ring returned an entry")
	}
	r.put(3, 2)
	r.put(5, 0)
	if l, ok := r.take(3); !ok || l != 2 {
		t.Fatalf("take(3) = %d,%v want 2,true", l, ok)
	}
	if _, ok := r.take(3); ok {
		t.Fatal("double take succeeded")
	}
	r.del(5)
	if _, ok := r.take(5); ok {
		t.Fatal("take after del succeeded")
	}
	if r.live() != 0 {
		t.Fatalf("live = %d want 0", r.live())
	}
}

func TestSeqRingOverwriteBeyondWindow(t *testing.T) {
	r := newSeqRing(16)
	r.put(1, 4) // never acked: simulated leak in the old map design
	// The window slides 16 sequences; seq 17 lands on 1's slot.
	r.put(17, 5)
	if _, ok := r.take(1); ok {
		t.Fatal("over-aged entry survived the window sliding past it")
	}
	if l, ok := r.take(17); !ok || l != 5 {
		t.Fatalf("take(17) = %d,%v want 5,true", l, ok)
	}
}

func TestSeqRingBadSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-power-of-two size did not panic")
		}
	}()
	newSeqRing(12)
}

// TestSeqRingMemoryBounded is the netio analogue of the tcp package's
// TestTCPMemoryBoundedUnderLoss: a stream where half the packets are
// never acknowledged (every unacked entry leaked forever in the old
// map[int64]int) must hold the attribution footprint fixed.
func TestSeqRingMemoryBounded(t *testing.T) {
	r := newSeqRing(1 << 10)
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for seq := int64(0); seq < 2_000_000; seq++ {
		r.put(seq, int(seq%8))
		if seq%2 == 0 {
			r.take(seq) // acked; odd sequences are "lost" and never cleared
		}
	}
	runtime.GC()
	runtime.ReadMemStats(&after)
	if r.live() > 1<<10 {
		t.Fatalf("live entries %d exceed ring size", r.live())
	}
	if growth := int64(after.HeapAlloc) - int64(before.HeapAlloc); growth > 1<<20 {
		t.Fatalf("heap grew %d bytes over 2M half-lost packets, want ~0 (old map design leaked ~50 MB)", growth)
	}
}

func TestNackRingDropOldest(t *testing.T) {
	var q nackRing
	for i := 0; i < nackCap+10; i++ {
		q.push(nack{layer: 0, off: int64(i) * 512, n: 512})
	}
	if q.n != nackCap {
		t.Fatalf("queue length %d want %d", q.n, nackCap)
	}
	if q.dropped != 10 {
		t.Fatalf("dropped %d want 10", q.dropped)
	}
	// The oldest 10 were shed: the head must now be entry 10.
	if nk := q.pop(); nk.off != 10*512 {
		t.Fatalf("head off %d want %d (drop-oldest)", nk.off, 10*512)
	}
	if !q.queued(0, 11*512) {
		t.Fatal("queued() lost a surviving entry")
	}
	if q.queued(0, 3*512) {
		t.Fatal("queued() found a shed entry")
	}
}
