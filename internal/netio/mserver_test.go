package netio

import (
	"context"
	"math/rand"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"qav/internal/core"
	"qav/internal/rap"
)

func testMultiServer(t *testing.T, cfg MultiConfig) *MultiServer {
	t.Helper()
	conn := listenUDPTB(t)
	t.Cleanup(func() { conn.Close() })
	if cfg.QA.C == 0 {
		cfg.QA = core.Params{C: 15_000, Kmax: 2, MaxLayers: 6, StartupSec: 0.2}
	}
	if cfg.RAP.PacketSize == 0 {
		cfg.RAP = rap.Config{PacketSize: 512, InitialRTT: 0.02, MaxRate: 30_000}
	}
	srv, err := NewMultiServer(conn, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		srv.Serve(ctx)
	}()
	t.Cleanup(func() { cancel(); wg.Wait() })
	return srv
}

// TestMultiServerManyClients runs 32+ concurrent loopback clients with
// staggered joins and two leave waves while metrics snapshots race the
// serving path. Per-client isolation: nobody starves, service is fair.
func TestMultiServerManyClients(t *testing.T) {
	srv := testMultiServer(t, MultiConfig{Shards: 4})

	// Metrics and stats snapshots concurrent with serving: the race
	// detector run in CI is the real assertion here.
	snapDone := make(chan struct{})
	go func() {
		for {
			select {
			case <-snapDone:
				return
			case <-time.After(50 * time.Millisecond):
				srv.Metrics().Snapshot()
				srv.Stats()
			}
		}
	}()
	defer close(snapDone)

	ctx := context.Background()
	var wg sync.WaitGroup
	results := make([]LoadResult, 2)
	// Wave 1: 16 clients that leave early. Wave 2: 20 that stay.
	for w, cfg := range []LoadConfig{
		{Addr: srv.Addr(), Clients: 16, Dur: 1 * time.Second, Stagger: 300 * time.Millisecond, IdleExit: time.Second},
		{Addr: srv.Addr(), Clients: 20, Dur: 2500 * time.Millisecond, Stagger: 700 * time.Millisecond, IdleExit: time.Second},
	} {
		wg.Add(1)
		go func(w int, cfg LoadConfig) {
			defer wg.Done()
			res, err := RunLoad(ctx, cfg)
			if err != nil {
				t.Error(err)
				return
			}
			results[w] = res
		}(w, cfg)
	}
	wg.Wait()

	for w, res := range results {
		if res.Starved > 0 {
			t.Errorf("wave %d: %d of %d clients starved", w, res.Starved, len(res.PerClient))
		}
		if res.Jain < 0.5 {
			t.Errorf("wave %d: Jain fairness %.3f < 0.5 (min %.0f max %.0f B/s)",
				w, res.Jain, res.MinGoodput, res.MaxGoodput)
		}
	}
	st := srv.Stats()
	if st.Accepted != 36 {
		t.Errorf("accepted %d clients, want 36", st.Accepted)
	}
	if st.SentPkts == 0 || st.AckedPkts == 0 {
		t.Errorf("server sent=%d acked=%d", st.SentPkts, st.AckedPkts)
	}
}

// TestMultiServerNackStormIsolation points a misbehaving client at the
// server — an acknowledgement flood each carrying a retransmission
// request — while well-behaved clients stream. The storm must be
// absorbed (bounded nack queue, shed inbox load, congestion-controlled
// repair) without stalling the other clients.
func TestMultiServerNackStormIsolation(t *testing.T) {
	srv := testMultiServer(t, MultiConfig{Shards: 2})

	// The attacker joins first and learns a few sequence numbers.
	atk, err := net.DialUDP("udp", nil, mustUDPAddr(t, srv.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	defer atk.Close()
	req := make([]byte, ReqLen)
	n, _ := EncodeReq(req, Req{DurationMs: 4000})
	atk.Write(req[:n])
	buf := make([]byte, 2048)
	var lastSeq int64
	var got int64
	for got < 20 {
		atk.SetReadDeadline(time.Now().Add(2 * time.Second))
		nr, err := atk.Read(buf)
		if err != nil {
			t.Fatalf("attacker warmup read: %v", err)
		}
		h, _, err := DecodeData(buf[:nr])
		if err != nil {
			continue
		}
		lastSeq = h.Seq
		got++
		ack := make([]byte, AckLen)
		na, _ := EncodeAck(ack, Ack{AckSeq: h.Seq, NackLayer: NoNack})
		atk.Write(ack[:na])
	}

	// Storm: 30k acks, every one demanding a base-layer retransmission,
	// over 200 distinct offsets (the pending-request dedup cannot absorb
	// them all, so the queue bound is exercised).
	stormDone := make(chan struct{})
	go func() {
		defer close(stormDone)
		ack := make([]byte, AckLen)
		for i := 0; i < 30_000; i++ {
			na, _ := EncodeAck(ack, Ack{
				AckSeq:    lastSeq,
				NackLayer: 0,
				NackOff:   int64(i%200) * 512,
				NackLen:   512,
			})
			atk.Write(ack[:na])
		}
	}()

	res, err := RunLoad(context.Background(), LoadConfig{
		Addr:     srv.Addr(),
		Clients:  8,
		Dur:      2 * time.Second,
		Stagger:  200 * time.Millisecond,
		IdleExit: time.Second,
	})
	<-stormDone
	if err != nil {
		t.Fatal(err)
	}
	if res.Starved > 0 {
		t.Fatalf("%d of 8 well-behaved clients starved during the NACK storm", res.Starved)
	}
	for i, c := range res.PerClient {
		if c.Goodput < 2000 {
			t.Errorf("client %d goodput %.0f B/s: stalled by another client's storm", i, c.Goodput)
		}
	}
	st := srv.Stats()
	if st.NackDrops+st.InboxDrops+st.Retransmits == 0 {
		t.Errorf("storm left no trace: nack drops %d, inbox drops %d, retransmits %d",
			st.NackDrops, st.InboxDrops, st.Retransmits)
	}
	t.Logf("storm absorbed: nackdrops=%d inboxdrops=%d retransmits=%d jain=%.3f",
		st.NackDrops, st.InboxDrops, st.Retransmits, res.Jain)
}

// TestMultiServerMalformedDatagrams sprays garbage at the serving
// socket while clients stream: truncated headers, bad magic, wrong
// versions, random noise, and data-kind packets. Nothing may panic, and
// the streams must complete.
func TestMultiServerMalformedDatagrams(t *testing.T) {
	srv := testMultiServer(t, MultiConfig{Shards: 2})

	noiseDone := make(chan struct{})
	go func() {
		defer close(noiseDone)
		conn, err := net.DialUDP("udp", nil, mustUDPAddr(t, srv.Addr()))
		if err != nil {
			return
		}
		defer conn.Close()
		rng := rand.New(rand.NewSource(42))
		valid := make([]byte, AckLen)
		EncodeAck(valid, Ack{AckSeq: 1, NackLayer: NoNack})
		data := make([]byte, DataHeaderLen+32)
		EncodeData(data, DataHeader{Seq: 9, Layer: 1}, make([]byte, 32))
		for i := 0; i < 4000; i++ {
			switch i % 5 {
			case 0: // pure noise
				junk := make([]byte, rng.Intn(64))
				rng.Read(junk)
				conn.Write(junk)
			case 1: // valid header, truncated body
				conn.Write(valid[:4+rng.Intn(AckLen-4)])
			case 2: // bad magic
				bad := append([]byte(nil), valid...)
				bad[0] ^= 0xFF
				conn.Write(bad)
			case 3: // wrong version
				bad := append([]byte(nil), valid...)
				bad[2] = 99
				conn.Write(bad)
			case 4: // data packet sent at the server (wrong direction)
				conn.Write(data)
			}
		}
	}()

	res, err := RunLoad(context.Background(), LoadConfig{
		Addr:     srv.Addr(),
		Clients:  2,
		Dur:      1500 * time.Millisecond,
		Stagger:  100 * time.Millisecond,
		IdleExit: time.Second,
	})
	<-noiseDone
	if err != nil {
		t.Fatal(err)
	}
	if res.Starved > 0 {
		t.Fatalf("garbage datagrams stalled %d streams", res.Starved)
	}
	if st := srv.Stats(); st.BadPackets == 0 {
		t.Errorf("no malformed datagrams counted; noise not exercised (stats %+v)", st)
	}
}

// TestMultiServerAdmissionCap verifies MaxClients: joins beyond the cap
// are refused while the capacity is occupied.
func TestMultiServerAdmissionCap(t *testing.T) {
	srv := testMultiServer(t, MultiConfig{Shards: 2, MaxClients: 4})
	req := make([]byte, ReqLen)
	n, _ := EncodeReq(req, Req{DurationMs: 60_000})
	conns := make([]*net.UDPConn, 8)
	for i := range conns {
		c, err := net.DialUDP("udp", nil, mustUDPAddr(t, srv.Addr()))
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		conns[i] = c
	}
	// Re-send joins until the cap is provably full and at least one
	// refusal has been counted (requests may be shed under load).
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		for _, c := range conns {
			c.Write(req[:n])
		}
		time.Sleep(50 * time.Millisecond)
		st := srv.Stats()
		if st.Accepted == 4 && st.Rejected > 0 {
			break
		}
	}
	st := srv.Stats()
	if st.Accepted != 4 {
		t.Fatalf("accepted %d clients, want exactly the cap 4 (stats %+v)", st.Accepted, st)
	}
	if st.Rejected == 0 {
		t.Fatal("no join was ever refused at the cap")
	}
	if got := srv.ActiveClients(); got != 4 {
		t.Fatalf("active clients %d, want 4", got)
	}
}

// TestMultiServerIdleExpiry checks that a client that vanishes without
// acking is swept from the table long before its requested stream ends.
func TestMultiServerIdleExpiry(t *testing.T) {
	srv := testMultiServer(t, MultiConfig{Shards: 1, IdleTimeout: 300 * time.Millisecond})
	conn, err := net.DialUDP("udp", nil, mustUDPAddr(t, srv.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	req := make([]byte, ReqLen)
	n, _ := EncodeReq(req, Req{DurationMs: 60_000})
	conn.Write(req[:n])
	deadline := time.Now().Add(2 * time.Second)
	joined := false
	for time.Now().Before(deadline) {
		if srv.ActiveClients() == 1 {
			joined = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !joined {
		t.Fatal("client never joined")
	}
	// Never ack: the session must idle out well before its 60 s stream.
	deadline = time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if srv.ActiveClients() == 0 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("silent client still active after idle timeout (stats %+v)", srv.Stats())
}

// TestAllocFreeServeSendLoop is the serving-path tentpole invariant:
// once a session reaches steady state, pumping packets through the
// shard — layer pick, RAP accounting, encode, batched write — and
// feeding the acknowledgements back allocates nothing.
func TestAllocFreeServeSendLoop(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; run without -race")
	}
	for _, kind := range availableKinds(t) {
		for _, pk := range []PacerKind{PacerScan, PacerWheel} {
			t.Run(string(kind)+"/"+string(pk), func(t *testing.T) {
				conn := listenUDPTB(t)
				defer conn.Close()
				srv, err := NewMultiServer(conn, MultiConfig{
					QA:        core.Params{C: 15_000, Kmax: 2, MaxLayers: 2, StartupSec: 0.1},
					RAP:       rap.Config{PacketSize: 512, InitialRTT: 0.02, MaxRate: 40_000},
					Shards:    1,
					BatchKind: kind,
					Pacer:     pk,
				})
				if err != nil {
					t.Fatal(err)
				}
				// A real destination socket; its receive buffer overflowing
				// just drops datagrams, which is fine — nobody reads it.
				sink := listenUDPTB(t)
				defer sink.Close()
				sinkAddr := sink.LocalAddr().(*net.UDPAddr).AddrPort()

				sh := srv.shards[0]
				now := 0.0
				sh.handle(inMsg{addr: sinkAddr, kind: KindReq, durMs: 3_600_000}, now)
				if len(sh.order) != 1 {
					t.Fatal("session not created")
				}
				sess := sh.order[0]

				ackAll := func(now float64) {
					// Acknowledge everything outstanding (in order) so RAP and
					// the controller reach — and stay in — steady state.
					for seq := sess.snd.Acked + sess.snd.Lost; seq < sess.snd.Sent; seq++ {
						sh.handle(inMsg{addr: sinkAddr, kind: KindAck, ack: Ack{AckSeq: seq, NackLayer: NoNack}}, now)
					}
				}
				pumpSlice := func() {
					for i := 0; i < 50; i++ {
						now += 0.02
						sh.pump(now)
						ackAll(now)
					}
				}
				// Warm up: rate converges to MaxRate, layers fill, pools and
				// map capacity stabilize, controller events quiesce.
				for i := 0; i < 20; i++ {
					pumpSlice()
				}
				sentBefore := sess.snd.Sent
				allocs := testing.AllocsPerRun(20, pumpSlice)
				if allocs != 0 {
					t.Fatalf("steady-state serve send loop (%s/%s): %.1f allocs per 1s slice, want 0", kind, pk, allocs)
				}
				if sess.snd.Sent == sentBefore {
					t.Fatal("measured window sent nothing")
				}
			})
		}
	}
}

// TestMultiServerMemoryBoundedUnderLoad streams to a client that acks
// only half the packets (the old seqLayer map leaked every unacked
// entry forever) and pins the steady heap.
func TestMultiServerMemoryBoundedUnderLoad(t *testing.T) {
	if raceEnabled {
		t.Skip("heap accounting is unstable under race instrumentation")
	}
	conn := listenUDPTB(t)
	defer conn.Close()
	srv, err := NewMultiServer(conn, MultiConfig{
		QA:        core.Params{C: 15_000, Kmax: 2, MaxLayers: 2, StartupSec: 0.1},
		RAP:       rap.Config{PacketSize: 512, InitialRTT: 0.02, MaxRate: 40_000},
		Shards:    1,
		SeqWindow: 1 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	sink := listenUDPTB(t)
	defer sink.Close()
	sinkAddr := sink.LocalAddr().(*net.UDPAddr).AddrPort()
	sh := srv.shards[0]
	now := 0.0
	sh.handle(inMsg{addr: sinkAddr, kind: KindReq, durMs: 3_600_000}, now)
	sess := sh.order[0]

	run := func(slices int) {
		for i := 0; i < slices; i++ {
			now += 0.02
			sh.pump(now)
			for seq := sess.snd.Acked + sess.snd.Lost; seq < sess.snd.Sent; seq++ {
				if seq%2 == 0 {
					continue // half the stream is never acknowledged
				}
				sh.handle(inMsg{addr: sinkAddr, kind: KindAck, ack: Ack{AckSeq: seq, NackLayer: NoNack}}, now)
			}
		}
	}
	run(2000) // warm up all pools and rings
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	run(20_000) // tens of thousands of packets, half never acknowledged
	runtime.GC()
	runtime.ReadMemStats(&after)
	if growth := int64(after.HeapAlloc) - int64(before.HeapAlloc); growth > 2<<20 {
		t.Fatalf("heap grew %.1f MB under sustained half-lost load, want bounded", float64(growth)/1e6)
	}
}

// TestMultiServerReuseport runs the owned-socket mode end to end: each
// shard on its own SO_REUSEPORT sibling, kernel-steered clients, no
// reader goroutine — so there must be zero inbox sheds by construction.
func TestMultiServerReuseport(t *testing.T) {
	if !ReuseportAvailable() {
		t.Skip("SO_REUSEPORT socket groups unsupported on this platform")
	}
	conns, err := ListenReuseport("udp", "127.0.0.1:0", 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range conns {
		defer c.Close()
	}
	srv, err := NewMultiServerConns(conns, MultiConfig{
		QA:  core.Params{C: 15_000, Kmax: 2, MaxLayers: 6, StartupSec: 0.2},
		RAP: rap.Config{PacketSize: 512, InitialRTT: 0.02, MaxRate: 30_000},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := srv.SocketMode(); got != SocketReuseport {
		t.Fatalf("socket mode %q, want %q", got, SocketReuseport)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		srv.Serve(ctx)
	}()
	defer func() { cancel(); wg.Wait() }()

	res, err := RunLoad(context.Background(), LoadConfig{
		Addr:     srv.Addr(),
		Clients:  8,
		Dur:      1500 * time.Millisecond,
		Stagger:  300 * time.Millisecond,
		IdleExit: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Starved > 0 {
		t.Fatalf("%d of 8 clients starved under reuseport serving", res.Starved)
	}
	st := srv.Stats()
	if st.Accepted != 8 || st.SentPkts == 0 || st.AckedPkts == 0 {
		t.Fatalf("accepted=%d sent=%d acked=%d", st.Accepted, st.SentPkts, st.AckedPkts)
	}
	if st.InboxDrops != 0 {
		t.Fatalf("owned-socket mode shed %d inbox messages; it has no inboxes", st.InboxDrops)
	}
	for i, d := range st.InboxDropsPerShard {
		if d != 0 {
			t.Fatalf("shard %d reports %d sheds in owned-socket mode", i, d)
		}
	}
}

// TestMultiServerShardsOverridePolicy pins the explicit Shards policy:
// the 8-shard cap applies only to the default, an explicit value above
// it is honored as given, and oversubscribing GOMAXPROCS is flagged in
// stats rather than silently clamped.
func TestMultiServerShardsOverridePolicy(t *testing.T) {
	conn := listenUDPTB(t)
	defer conn.Close()
	base := MultiConfig{
		QA:  core.Params{C: 15_000, Kmax: 2, MaxLayers: 6, StartupSec: 0.2},
		RAP: rap.Config{PacketSize: 512, InitialRTT: 0.02, MaxRate: 30_000},
	}
	want := runtime.GOMAXPROCS(0) + 3
	if want < 9 {
		want = 9 // also prove the old silent cap of 8 is gone
	}
	cfg := base
	cfg.Shards = want
	srv, err := NewMultiServer(conn, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(srv.shards); got != want {
		t.Fatalf("explicit Shards=%d built %d shards (old code clamped at 8)", want, got)
	}
	if srv.Stats().ShardsOverCPU == 0 {
		t.Fatalf("Shards=%d > GOMAXPROCS=%d not flagged in ShardsOverCPU", want, runtime.GOMAXPROCS(0))
	}
	def, err := NewMultiServer(conn, base)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(def.shards); got != DefaultShards() {
		t.Fatalf("default built %d shards, want DefaultShards()=%d", got, DefaultShards())
	}
	if def.Stats().ShardsOverCPU != 0 {
		t.Fatal("default shard count flagged as oversubscribed")
	}
}

func mustUDPAddr(t *testing.T, s string) *net.UDPAddr {
	t.Helper()
	a, err := net.ResolveUDPAddr("udp", s)
	if err != nil {
		t.Fatal(err)
	}
	return a
}
