package netio

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"
)

// PipeConfig describes one direction of an emulated network path.
type PipeConfig struct {
	// Rate limits throughput in bytes/s (0 = unlimited).
	Rate float64
	// Delay is the one-way propagation delay.
	Delay time.Duration
	// Loss is an independent per-packet drop probability in [0,1).
	Loss float64
	// QueueBytes bounds the emulated queue when Rate is set (default 64 KiB).
	QueueBytes int
}

// Pipe is a bidirectional UDP relay with per-direction bandwidth, delay,
// and loss — an in-process stand-in for a congested Internet path, so the
// paper's "experimental results" code path runs on loopback. The client
// talks to the pipe's listen address; the pipe forwards to the server and
// relays replies back to the most recent client.
type Pipe struct {
	listen   *net.UDPConn // client-facing socket
	upstream *net.UDPConn // connected to the server

	up, down PipeConfig // client->server, server->client

	mu        sync.Mutex
	rng       *rand.Rand
	client    *net.UDPAddr
	upFree    time.Time // next time the up "link" is free
	downFree  time.Time
	closed    bool
	wg        sync.WaitGroup
	upDrops   int64
	downDrops int64
}

// Drops returns the cumulative per-direction drop counts. Safe to call
// while the relay is running.
func (p *Pipe) Drops() (up, down int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.upDrops, p.downDrops
}

// NewPipe starts a relay listening on listenAddr and forwarding to
// serverAddr. Returns the pipe; Addr() is what clients should dial.
func NewPipe(listenAddr, serverAddr string, up, down PipeConfig, seed int64) (*Pipe, error) {
	la, err := net.ResolveUDPAddr("udp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("netio: resolve listen: %w", err)
	}
	sa, err := net.ResolveUDPAddr("udp", serverAddr)
	if err != nil {
		return nil, fmt.Errorf("netio: resolve server: %w", err)
	}
	lc, err := net.ListenUDP("udp", la)
	if err != nil {
		return nil, fmt.Errorf("netio: listen: %w", err)
	}
	uc, err := net.DialUDP("udp", nil, sa)
	if err != nil {
		lc.Close()
		return nil, fmt.Errorf("netio: dial server: %w", err)
	}
	if up.QueueBytes <= 0 {
		up.QueueBytes = 64 << 10
	}
	if down.QueueBytes <= 0 {
		down.QueueBytes = 64 << 10
	}
	p := &Pipe{
		listen:   lc,
		upstream: uc,
		up:       up,
		down:     down,
		rng:      rand.New(rand.NewSource(seed)),
	}
	p.wg.Add(2)
	go p.clientLoop()
	go p.serverLoop()
	return p, nil
}

// Addr returns the address clients should send to.
func (p *Pipe) Addr() string { return p.listen.LocalAddr().String() }

// Close stops the relay.
func (p *Pipe) Close() error {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.listen.Close()
	p.upstream.Close()
	p.wg.Wait()
	return nil
}

func (p *Pipe) clientLoop() {
	defer p.wg.Done()
	buf := make([]byte, 64<<10)
	for {
		n, addr, err := p.listen.ReadFromUDP(buf)
		if err != nil {
			return
		}
		p.mu.Lock()
		p.client = addr
		p.mu.Unlock()
		pkt := append([]byte(nil), buf[:n]...)
		p.impair(pkt, true)
	}
}

func (p *Pipe) serverLoop() {
	defer p.wg.Done()
	buf := make([]byte, 64<<10)
	for {
		n, err := p.upstream.Read(buf)
		if err != nil {
			return
		}
		pkt := append([]byte(nil), buf[:n]...)
		p.impair(pkt, false)
	}
}

// impair applies loss, rate limiting, and delay, then forwards.
func (p *Pipe) impair(pkt []byte, toServer bool) {
	cfg := p.down
	if toServer {
		cfg = p.up
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	if cfg.Loss > 0 && p.rng.Float64() < cfg.Loss {
		p.drop(toServer)
		p.mu.Unlock()
		return
	}
	now := time.Now()
	depart := now
	if cfg.Rate > 0 {
		free := p.downFree
		if toServer {
			free = p.upFree
		}
		if free.After(now) {
			depart = free
		}
		// Queue bound: bytes "in flight" in the shaper.
		queued := depart.Sub(now).Seconds() * cfg.Rate
		if queued > float64(cfg.QueueBytes) {
			p.drop(toServer)
			p.mu.Unlock()
			return
		}
		tx := time.Duration(float64(len(pkt)) / cfg.Rate * float64(time.Second))
		next := depart.Add(tx)
		if toServer {
			p.upFree = next
		} else {
			p.downFree = next
		}
		depart = next
	}
	p.mu.Unlock()

	deliver := func() {
		p.mu.Lock()
		closed, client := p.closed, p.client
		p.mu.Unlock()
		if closed {
			return
		}
		if toServer {
			p.upstream.Write(pkt)
		} else if client != nil {
			p.listen.WriteToUDP(pkt, client)
		}
	}
	wait := time.Until(depart) + cfg.Delay
	if wait <= 0 {
		deliver()
	} else {
		time.AfterFunc(wait, deliver)
	}
}

// drop records a dropped packet; the caller must hold p.mu.
func (p *Pipe) drop(toServer bool) {
	if toServer {
		p.upDrops++
	} else {
		p.downDrops++
	}
}
