package netio

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/netip"
	"sync"
	"time"

	"qav/internal/core"
	"qav/internal/metrics"
	"qav/internal/rap"
)

// ServerConfig parameterizes a streaming server.
type ServerConfig struct {
	// QA configures the quality adaptation controller.
	QA core.Params
	// RAP configures congestion control. PacketSize is the wire size
	// (header + payload); if zero it defaults to 512.
	RAP rap.Config
	// MaxStream bounds how long a single stream may run, as protection
	// against clients that never go away (0 = 1 hour).
	MaxStream time.Duration
}

// ServerStats is a point-in-time snapshot of the sender state.
type ServerStats struct {
	Rate         float64
	SRTT         float64
	ActiveLayers int
	Buffers      []float64
	SentPkts     int64
	AckedPkts    int64
	Backoffs     int64
	// SentByLayer counts packets per layer; its length is the
	// controller's MaxLayers, so any layer count works.
	SentByLayer []int64
	Retransmits int64
	NackDrops   int64
	Events      []core.Event
}

// Server streams layered data over UDP to one client at a time, pacing
// packets at the RAP rate and assigning each packet to a layer via the
// quality adaptation controller. It is the original single-client
// endpoint, kept for the paper's one-flow Internet experiments and as
// the behavioral reference for MultiServer, which serves many clients
// concurrently over the same session core.
type Server struct {
	cfg  ServerConfig
	conn *net.UDPConn

	mu    sync.Mutex
	sess  *session
	start time.Time

	// reg is the per-stream metrics registry; snapshot functions lock
	// s.mu, so it is safe to snapshot concurrently with streaming.
	reg *metrics.Registry
}

// NewServer wraps an already-bound UDP socket.
func NewServer(conn *net.UDPConn, cfg ServerConfig) (*Server, error) {
	if cfg.RAP.PacketSize <= 0 {
		cfg.RAP.PacketSize = 512
	}
	if cfg.RAP.PacketSize <= DataHeaderLen {
		return nil, fmt.Errorf("netio: packet size %d <= header %d", cfg.RAP.PacketSize, DataHeaderLen)
	}
	if cfg.MaxStream <= 0 {
		cfg.MaxStream = time.Hour
	}
	payload := make([]byte, cfg.RAP.PacketSize-DataHeaderLen)
	sess, err := newSession(netip.AddrPort{}, cfg.QA, cfg.RAP, payload, seqWindow, 0)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:   cfg,
		conn:  conn,
		sess:  sess,
		start: time.Now(),
		reg:   metrics.NewRegistry(),
	}
	s.sess.snd.SetInstruments(rap.NewInstruments(s.reg, "rap"))
	locked := func(read func() int64) func() int64 {
		return func() int64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return read()
		}
	}
	s.reg.CounterFunc("netio.sent", locked(func() int64 { return s.sess.snd.Sent }))
	s.reg.CounterFunc("netio.acked", locked(func() int64 { return s.sess.snd.Acked }))
	s.reg.CounterFunc("netio.lost", locked(func() int64 { return s.sess.snd.Lost }))
	s.reg.CounterFunc("netio.retransmits", locked(func() int64 { return s.sess.retransmits }))
	s.reg.CounterFunc("netio.nackdrops", locked(func() int64 { return s.sess.nacks.dropped }))
	s.reg.GaugeFunc("netio.rate", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.sess.snd.Rate()
	})
	s.reg.GaugeFunc("netio.srtt", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.sess.snd.SRTT()
	})
	s.reg.GaugeFunc("qa.layers", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(s.sess.ctrl.ActiveLayers())
	})
	s.reg.GaugeFunc("qa.buftotal", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.sess.ctrl.TotalBuf()
	})
	for l := 0; l < len(sess.sentByLayer); l++ {
		l := l
		s.reg.CounterFunc(fmt.Sprintf("netio.sent.l%d", l), locked(func() int64 { return s.sess.sentByLayer[l] }))
	}
	return s, nil
}

// Metrics returns the server's per-stream metrics registry. Snapshots
// are safe to take concurrently with streaming.
func (s *Server) Metrics() *metrics.Registry { return s.reg }

// WriteMetricsJSON writes the current registry snapshot as indented
// JSON, expvar-style.
func (s *Server) WriteMetricsJSON(w io.Writer) error { return s.reg.WriteJSON(w) }

// Addr returns the server's bound address.
func (s *Server) Addr() string { return s.conn.LocalAddr().String() }

func (s *Server) now() float64 { return time.Since(s.start).Seconds() }

// Stats returns a snapshot of the sender state.
func (s *Server) Stats() ServerStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	ev := make([]core.Event, len(s.sess.ctrl.Events))
	copy(ev, s.sess.ctrl.Events)
	byLayer := make([]int64, len(s.sess.sentByLayer))
	copy(byLayer, s.sess.sentByLayer)
	return ServerStats{
		Rate:         s.sess.snd.Rate(),
		SRTT:         s.sess.snd.SRTT(),
		ActiveLayers: s.sess.ctrl.ActiveLayers(),
		Buffers:      s.sess.ctrl.Buffers(),
		SentPkts:     s.sess.snd.Sent,
		AckedPkts:    s.sess.snd.Acked,
		Backoffs:     s.sess.snd.Backoffs,
		SentByLayer:  byLayer,
		Retransmits:  s.sess.retransmits,
		NackDrops:    s.sess.nacks.dropped,
		Events:       ev,
	}
}

// Serve waits for one stream request and serves it, then returns. Cancel
// ctx to stop early.
func (s *Server) Serve(ctx context.Context) error {
	client, dur, err := s.awaitRequest(ctx)
	if err != nil {
		return err
	}
	if dur > s.cfg.MaxStream {
		dur = s.cfg.MaxStream
	}
	return s.stream(ctx, client, dur)
}

func (s *Server) awaitRequest(ctx context.Context) (*net.UDPAddr, time.Duration, error) {
	buf := make([]byte, 64<<10)
	for {
		if err := ctx.Err(); err != nil {
			return nil, 0, err
		}
		s.conn.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
		n, addr, err := s.conn.ReadFromUDP(buf)
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				continue
			}
			return nil, 0, err
		}
		k, err := Kind(buf[:n])
		if err != nil || k != KindReq {
			continue
		}
		req, err := DecodeReq(buf[:n])
		if err != nil {
			continue
		}
		return addr, time.Duration(req.DurationMs) * time.Millisecond, nil
	}
}

// stream paces data packets to client for dur while processing ACKs.
func (s *Server) stream(ctx context.Context, client *net.UDPAddr, dur time.Duration) error {
	deadline := time.Now().Add(dur)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.ackLoop(stop)
	}()
	defer func() {
		close(stop)
		// Unblock the ack reader promptly.
		s.conn.SetReadDeadline(time.Now())
		wg.Wait()
		s.conn.SetReadDeadline(time.Time{})
	}()

	buf := make([]byte, s.cfg.RAP.PacketSize)
	for time.Now().Before(deadline) {
		if err := ctx.Err(); err != nil {
			return err
		}
		s.mu.Lock()
		now := s.now()
		n := s.sess.buildPacket(now, buf)
		sleep := s.sess.nextSend - now
		s.mu.Unlock()
		if n == 0 {
			return fmt.Errorf("netio: packet encode failed")
		}
		if _, err := s.conn.WriteToUDP(buf[:n], client); err != nil {
			return fmt.Errorf("netio: send: %w", err)
		}
		sleepCtx(ctx, time.Duration(sleep*float64(time.Second)))
	}
	return nil
}

func (s *Server) ackLoop(stop <-chan struct{}) {
	buf := make([]byte, 64<<10)
	for {
		select {
		case <-stop:
			return
		default:
		}
		s.conn.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
		n, _, err := s.conn.ReadFromUDP(buf)
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				continue
			}
			return
		}
		if k, err := Kind(buf[:n]); err != nil || k != KindAck {
			continue
		}
		a, err := DecodeAck(buf[:n])
		if err != nil {
			continue
		}
		s.mu.Lock()
		s.sess.onAck(s.now(), a)
		s.mu.Unlock()
	}
}

func sleepCtx(ctx context.Context, d time.Duration) {
	if d <= 0 {
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}
