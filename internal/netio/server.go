package netio

import (
	"context"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"qav/internal/core"
	"qav/internal/metrics"
	"qav/internal/rap"
)

// ServerConfig parameterizes a streaming server.
type ServerConfig struct {
	// QA configures the quality adaptation controller.
	QA core.Params
	// RAP configures congestion control. PacketSize is the wire size
	// (header + payload); if zero it defaults to 512.
	RAP rap.Config
	// MaxStream bounds how long a single stream may run, as protection
	// against clients that never go away (0 = 1 hour).
	MaxStream time.Duration
}

// ServerStats is a point-in-time snapshot of the sender state.
type ServerStats struct {
	Rate         float64
	SRTT         float64
	ActiveLayers int
	Buffers      []float64
	SentPkts     int64
	AckedPkts    int64
	Backoffs     int64
	// SentByLayer counts packets per layer; its length is the
	// controller's MaxLayers, so any layer count works.
	SentByLayer []int64
	Retransmits int64
	Events      []core.Event
}

// Server streams layered data over UDP to one client at a time, pacing
// packets at the RAP rate and assigning each packet to a layer via the
// quality adaptation controller.
type Server struct {
	cfg  ServerConfig
	conn *net.UDPConn

	mu          sync.Mutex
	snd         *rap.Sender
	ctrl        *core.Controller
	start       time.Time
	seqLayer    map[int64]int
	payload     []byte
	sentByLayer []int64 // packets per layer, MaxLayers long
	layerOff    []int64 // next byte offset per layer's stream, MaxLayers long
	nackQueue   []nack  // pending selective retransmissions
	Retransmits int64

	// reg is the per-stream metrics registry; snapshot functions lock
	// s.mu, so it is safe to snapshot concurrently with streaming.
	reg *metrics.Registry
}

// nack is a pending retransmission request.
type nack struct {
	layer int
	off   int64
	n     int
}

// NewServer wraps an already-bound UDP socket.
func NewServer(conn *net.UDPConn, cfg ServerConfig) (*Server, error) {
	if cfg.RAP.PacketSize <= 0 {
		cfg.RAP.PacketSize = 512
	}
	if cfg.RAP.PacketSize <= DataHeaderLen {
		return nil, fmt.Errorf("netio: packet size %d <= header %d", cfg.RAP.PacketSize, DataHeaderLen)
	}
	if cfg.MaxStream <= 0 {
		cfg.MaxStream = time.Hour
	}
	ctrl, err := core.NewController(cfg.QA)
	if err != nil {
		return nil, err
	}
	maxL := ctrl.P.MaxLayers // post-default value
	s := &Server{
		cfg:         cfg,
		conn:        conn,
		snd:         rap.NewSender(cfg.RAP),
		ctrl:        ctrl,
		start:       time.Now(),
		seqLayer:    make(map[int64]int),
		payload:     make([]byte, cfg.RAP.PacketSize-DataHeaderLen),
		sentByLayer: make([]int64, maxL),
		layerOff:    make([]int64, maxL),
		reg:         metrics.NewRegistry(),
	}
	s.snd.SetInstruments(rap.NewInstruments(s.reg, "rap"))
	locked := func(read func() int64) func() int64 {
		return func() int64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return read()
		}
	}
	s.reg.CounterFunc("netio.sent", locked(func() int64 { return s.snd.Sent }))
	s.reg.CounterFunc("netio.acked", locked(func() int64 { return s.snd.Acked }))
	s.reg.CounterFunc("netio.lost", locked(func() int64 { return s.snd.Lost }))
	s.reg.CounterFunc("netio.retransmits", locked(func() int64 { return s.Retransmits }))
	s.reg.GaugeFunc("netio.rate", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.snd.Rate()
	})
	s.reg.GaugeFunc("netio.srtt", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.snd.SRTT()
	})
	s.reg.GaugeFunc("qa.layers", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(s.ctrl.ActiveLayers())
	})
	s.reg.GaugeFunc("qa.buftotal", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.ctrl.TotalBuf()
	})
	for l := 0; l < maxL; l++ {
		l := l
		s.reg.CounterFunc(fmt.Sprintf("netio.sent.l%d", l), locked(func() int64 { return s.sentByLayer[l] }))
	}
	return s, nil
}

// Metrics returns the server's per-stream metrics registry. Snapshots
// are safe to take concurrently with streaming.
func (s *Server) Metrics() *metrics.Registry { return s.reg }

// WriteMetricsJSON writes the current registry snapshot as indented
// JSON, expvar-style.
func (s *Server) WriteMetricsJSON(w io.Writer) error { return s.reg.WriteJSON(w) }

// Addr returns the server's bound address.
func (s *Server) Addr() string { return s.conn.LocalAddr().String() }

func (s *Server) now() float64 { return time.Since(s.start).Seconds() }

// Stats returns a snapshot of the sender state.
func (s *Server) Stats() ServerStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	ev := make([]core.Event, len(s.ctrl.Events))
	copy(ev, s.ctrl.Events)
	byLayer := make([]int64, len(s.sentByLayer))
	copy(byLayer, s.sentByLayer)
	return ServerStats{
		Rate:         s.snd.Rate(),
		SRTT:         s.snd.SRTT(),
		ActiveLayers: s.ctrl.ActiveLayers(),
		Buffers:      s.ctrl.Buffers(),
		SentPkts:     s.snd.Sent,
		AckedPkts:    s.snd.Acked,
		Backoffs:     s.snd.Backoffs,
		SentByLayer:  byLayer,
		Retransmits:  s.Retransmits,
		Events:       ev,
	}
}

// Serve waits for one stream request and serves it, then returns. Cancel
// ctx to stop early.
func (s *Server) Serve(ctx context.Context) error {
	client, dur, err := s.awaitRequest(ctx)
	if err != nil {
		return err
	}
	if dur > s.cfg.MaxStream {
		dur = s.cfg.MaxStream
	}
	return s.stream(ctx, client, dur)
}

func (s *Server) awaitRequest(ctx context.Context) (*net.UDPAddr, time.Duration, error) {
	buf := make([]byte, 64<<10)
	for {
		if err := ctx.Err(); err != nil {
			return nil, 0, err
		}
		s.conn.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
		n, addr, err := s.conn.ReadFromUDP(buf)
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				continue
			}
			return nil, 0, err
		}
		k, err := Kind(buf[:n])
		if err != nil || k != KindReq {
			continue
		}
		req, err := DecodeReq(buf[:n])
		if err != nil {
			continue
		}
		return addr, time.Duration(req.DurationMs) * time.Millisecond, nil
	}
}

// stream paces data packets to client for dur while processing ACKs.
func (s *Server) stream(ctx context.Context, client *net.UDPAddr, dur time.Duration) error {
	deadline := time.Now().Add(dur)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.ackLoop(stop)
	}()
	defer func() {
		close(stop)
		// Unblock the ack reader promptly.
		s.conn.SetReadDeadline(time.Now())
		wg.Wait()
		s.conn.SetReadDeadline(time.Time{})
	}()

	buf := make([]byte, s.cfg.RAP.PacketSize)
	lastStep := s.now()
	for time.Now().Before(deadline) {
		if err := ctx.Err(); err != nil {
			return err
		}
		s.mu.Lock()
		now := s.now()
		if now-lastStep >= s.snd.StepInterval() {
			if b := s.snd.Step(now); b != nil {
				s.ctrl.OnBackoff(now, b.NewRate, s.snd.ConservativeSlope())
				s.forget(b.LostSeqs)
			}
			lastStep = now
		}
		var layer int
		var off int64
		retrans := false
		// Selective retransmission (§1.3): when the rate exceeds the
		// consumption rate, spend the next slot repairing the oldest
		// requested hole instead of sending new data. Retransmissions
		// remain congestion controlled (they consume a send slot).
		if len(s.nackQueue) > 0 && s.snd.Rate() >= s.ctrl.ConsumptionRate() {
			nk := s.nackQueue[0]
			s.nackQueue = s.nackQueue[1:]
			layer, off, retrans = nk.layer, nk.off, true
			s.Retransmits++
			s.ctrl.Tick(now, s.snd.Rate(), s.snd.ConservativeSlope())
		} else {
			layer = s.ctrl.PickLayer(now, s.snd.Rate(), s.snd.ConservativeSlope(), s.cfg.RAP.PacketSize)
			off = s.layerOff[layer]
			s.layerOff[layer] += int64(s.cfg.RAP.PacketSize)
		}
		seq := s.snd.OnSend(now)
		if !retrans {
			// Retransmitted bytes sit behind the playout point; they
			// repair holes but do not extend the receiver's buffer, so
			// they are not credited to the controller on ACK.
			s.seqLayer[seq] = layer
		}
		if layer >= 0 && layer < len(s.sentByLayer) {
			s.sentByLayer[layer]++
		}
		ipg := s.snd.IPG()
		s.mu.Unlock()

		n, err := EncodeData(buf, DataHeader{
			Seq:        seq,
			Layer:      uint8(layer),
			LayerOff:   off,
			SendMicros: uint64(now * 1e6),
		}, s.payload)
		if err != nil {
			return err
		}
		if _, err := s.conn.WriteToUDP(buf[:n], client); err != nil {
			return fmt.Errorf("netio: send: %w", err)
		}
		sleepCtx(ctx, time.Duration(ipg*float64(time.Second)))
	}
	return nil
}

func (s *Server) ackLoop(stop <-chan struct{}) {
	buf := make([]byte, 64<<10)
	for {
		select {
		case <-stop:
			return
		default:
		}
		s.conn.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
		n, _, err := s.conn.ReadFromUDP(buf)
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				continue
			}
			return
		}
		if k, err := Kind(buf[:n]); err != nil || k != KindAck {
			continue
		}
		a, err := DecodeAck(buf[:n])
		if err != nil {
			continue
		}
		s.mu.Lock()
		now := s.now()
		if b := s.snd.OnAck(now, a.AckSeq); b != nil {
			s.ctrl.OnBackoff(now, b.NewRate, s.snd.ConservativeSlope())
			s.forget(b.LostSeqs)
		}
		if layer, ok := s.seqLayer[a.AckSeq]; ok {
			delete(s.seqLayer, a.AckSeq)
			s.ctrl.OnDelivered(now, layer, s.cfg.RAP.PacketSize)
		}
		if a.NackLayer != NoNack && int(a.NackLayer) < len(s.layerOff) && len(s.nackQueue) < 64 {
			// Quantize the request to packet-aligned offsets and bound
			// it to one packet per queue entry.
			pkt := int64(s.cfg.RAP.PacketSize)
			off := a.NackOff - a.NackOff%pkt
			if off >= 0 && off < s.layerOff[a.NackLayer] && !s.nackQueued(int(a.NackLayer), off) {
				s.nackQueue = append(s.nackQueue, nack{layer: int(a.NackLayer), off: off, n: int(pkt)})
			}
		}
		s.mu.Unlock()
	}
}

// nackQueued reports whether a retransmission for (layer, off) is
// already pending. Callers hold s.mu.
func (s *Server) nackQueued(layer int, off int64) bool {
	for _, nk := range s.nackQueue {
		if nk.layer == layer && nk.off == off {
			return true
		}
	}
	return false
}

// forget drops layer attribution for lost packets. Callers hold s.mu.
func (s *Server) forget(seqs []int64) {
	for _, q := range seqs {
		delete(s.seqLayer, q)
	}
}

func sleepCtx(ctx context.Context, d time.Duration) {
	if d <= 0 {
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}
