//go:build linux

package netio

// Syscall numbers for the batched datagram calls on linux/amd64. The
// stdlib syscall package predates sendmmsg and never added its number
// for this arch, so both are pinned here (they are ABI-frozen).
const (
	sysRECVMMSG = 299
	sysSENDMMSG = 307
)
