package netio

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestDataRoundTrip(t *testing.T) {
	payload := []byte("hello layered world")
	h := DataHeader{Seq: 123456789, Layer: 3, SendMicros: 42_000_000}
	buf := make([]byte, DataHeaderLen+len(payload))
	n, err := EncodeData(buf, h, payload)
	if err != nil {
		t.Fatal(err)
	}
	if n != DataHeaderLen+len(payload) {
		t.Fatalf("encoded %d bytes, want %d", n, DataHeaderLen+len(payload))
	}
	got, gotPayload, err := DecodeData(buf[:n])
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != h.Seq || got.Layer != h.Layer || got.SendMicros != h.SendMicros {
		t.Fatalf("header mismatch: %+v vs %+v", got, h)
	}
	if !bytes.Equal(gotPayload, payload) {
		t.Fatalf("payload mismatch")
	}
}

func TestDataRoundTripProperty(t *testing.T) {
	f := func(seq int64, layer uint8, micros uint64, payload []byte) bool {
		if len(payload) > 1400 {
			payload = payload[:1400]
		}
		buf := make([]byte, DataHeaderLen+len(payload))
		n, err := EncodeData(buf, DataHeader{Seq: seq, Layer: layer, SendMicros: micros}, payload)
		if err != nil {
			return false
		}
		h, pl, err := DecodeData(buf[:n])
		return err == nil && h.Seq == seq && h.Layer == layer &&
			h.SendMicros == micros && bytes.Equal(pl, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAckRoundTrip(t *testing.T) {
	f := func(seq int64, echo uint64, nl uint8, noff int64, nlen uint32) bool {
		buf := make([]byte, AckLen)
		in := Ack{AckSeq: seq, EchoMicros: echo, NackLayer: nl, NackOff: noff, NackLen: nlen}
		n, err := EncodeAck(buf, in)
		if err != nil || n != AckLen {
			return false
		}
		a, err := DecodeAck(buf[:n])
		return err == nil && a == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDataHeaderCarriesLayerOffset(t *testing.T) {
	buf := make([]byte, DataHeaderLen)
	h := DataHeader{Seq: 9, Layer: 2, LayerOff: 123456, SendMicros: 1}
	if _, err := EncodeData(buf, h, nil); err != nil {
		t.Fatal(err)
	}
	got, _, err := DecodeData(buf)
	if err != nil || got.LayerOff != 123456 {
		t.Fatalf("LayerOff round trip: %+v err=%v", got, err)
	}
}

func TestReqRoundTrip(t *testing.T) {
	buf := make([]byte, ReqLen)
	n, err := EncodeReq(buf, Req{DurationMs: 30_000})
	if err != nil {
		t.Fatal(err)
	}
	r, err := DecodeReq(buf[:n])
	if err != nil || r.DurationMs != 30_000 {
		t.Fatalf("req round trip: %+v err=%v", r, err)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, _, err := DecodeData(nil); err == nil {
		t.Fatal("nil accepted")
	}
	if _, _, err := DecodeData([]byte{1, 2, 3}); err == nil {
		t.Fatal("short accepted")
	}
	bad := make([]byte, DataHeaderLen)
	if _, _, err := DecodeData(bad); err != ErrBadMagic {
		t.Fatalf("zero magic: err = %v, want ErrBadMagic", err)
	}
	// Right magic, wrong version.
	bad[0], bad[1], bad[2] = 0x51, 0x56, 99
	if _, _, err := DecodeData(bad); err != ErrBadVersion {
		t.Fatalf("bad version: err = %v", err)
	}
	// Data header claims a longer payload than present.
	buf := make([]byte, DataHeaderLen+4)
	if _, err := EncodeData(buf, DataHeader{Seq: 1}, []byte{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := DecodeData(buf[:DataHeaderLen+2]); err == nil {
		t.Fatal("truncated payload accepted")
	}
	// Kind confusion: an ack is not a data packet.
	ab := make([]byte, AckLen)
	if _, err := EncodeAck(ab, Ack{AckSeq: 9}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := DecodeData(ab); err == nil {
		t.Fatal("ack decoded as data")
	}
}

func TestEncodeBufferTooSmall(t *testing.T) {
	if _, err := EncodeData(make([]byte, 4), DataHeader{}, []byte("xx")); err == nil {
		t.Fatal("tiny buffer accepted")
	}
	if _, err := EncodeAck(make([]byte, 4), Ack{}); err == nil {
		t.Fatal("tiny ack buffer accepted")
	}
	if _, err := EncodeReq(make([]byte, 2), Req{}); err == nil {
		t.Fatal("tiny req buffer accepted")
	}
}
