package rap

import "qav/internal/metrics"

// Instruments are the metric handles a RAP sender records through. They
// are registered once, at instrumentation time; the record sites are
// nil-guarded so an uninstrumented sender pays one predictable branch.
type Instruments struct {
	// Backoffs counts multiplicative decreases (loss clusters reacted to).
	Backoffs *metrics.Counter
	// Timeouts counts Step invocations that detected timed-out packets.
	Timeouts *metrics.Counter
	// SRTT observes the smoothed RTT estimate after every sample.
	SRTT *metrics.Histogram
	// AckGap observes the spacing between successive ACK arrivals.
	AckGap *metrics.Histogram
}

// NewInstruments registers RAP instruments on reg under prefix (e.g.
// prefix "rap" yields "rap.backoffs", "rap.srtt", ...). Thanks to the
// registry's idempotent registration, senders sharing a prefix share
// aggregated instruments.
func NewInstruments(reg *metrics.Registry, prefix string) *Instruments {
	return &Instruments{
		Backoffs: reg.Counter(prefix + ".backoffs"),
		Timeouts: reg.Counter(prefix + ".timeouts"),
		SRTT:     reg.Histogram(prefix+".srtt", metrics.HistogramOpts{}),
		AckGap:   reg.Histogram(prefix+".ackgap", metrics.HistogramOpts{}),
	}
}

// SetInstruments attaches ins without publishing any Func metrics.
// Unlike Instrument it is safe for concurrently-snapshotted registries:
// the attached handles are atomic, so no synchronization contract is
// inherited by the registry's readers.
func (s *Sender) SetInstruments(ins *Instruments) { s.ins = ins }

// Instrument attaches ins (may be shared between senders) and publishes
// the sender's packet counters on reg under the same prefix as
// snapshot-time Func metrics. Call before the simulation starts.
func (s *Sender) Instrument(reg *metrics.Registry, prefix string, ins *Instruments) {
	s.ins = ins
	reg.CounterFunc(prefix+".sent", func() int64 { return s.Sent })
	reg.CounterFunc(prefix+".acked", func() int64 { return s.Acked })
	reg.CounterFunc(prefix+".lost", func() int64 { return s.Lost })
	reg.GaugeFunc(prefix+".rate", func() float64 { return s.rate })
}
