package rap

import (
	"math"
	"sort"
	"testing"
)

func newTestSender() *Sender {
	return NewSender(Config{PacketSize: 512, InitialRTT: 0.04, InitialRate: 512 / 0.04})
}

func TestAdditiveIncrease(t *testing.T) {
	s := newTestSender()
	r0 := s.Rate()
	// Ten loss-free steps: rate grows by P/srtt each.
	for i := 0; i < 10; i++ {
		if b := s.Step(float64(i) * s.SRTT()); b != nil {
			t.Fatalf("unexpected backoff on loss-free step %d", i)
		}
	}
	want := r0 + 10*512/s.SRTT()
	if math.Abs(s.Rate()-want) > 1e-6 {
		t.Fatalf("rate after 10 steps = %v, want %v", s.Rate(), want)
	}
}

func TestMultiplicativeDecreaseOnAckGap(t *testing.T) {
	s := newTestSender()
	var seqs []int64
	for i := 0; i < 10; i++ {
		seqs = append(seqs, s.OnSend(float64(i)*0.01))
	}
	r0 := s.Rate()
	// ACK everything except seq 2; the hole is detected once ACKs pass it
	// by the reorder gap.
	var backoffs []*Backoff
	for _, q := range seqs {
		if q == 2 {
			continue
		}
		if b := s.OnAck(0.2, q); b != nil {
			backoffs = append(backoffs, b)
		}
	}
	if len(backoffs) != 1 {
		t.Fatalf("got %d backoffs, want 1", len(backoffs))
	}
	if math.Abs(s.Rate()-r0/2) > 1e-9 {
		t.Fatalf("rate after backoff = %v, want %v", s.Rate(), r0/2)
	}
	if got := backoffs[0].LostSeqs; len(got) != 1 || got[0] != 2 {
		t.Fatalf("lost seqs %v, want [2]", got)
	}
	if s.Lost != 1 || s.Acked != 9 {
		t.Fatalf("counters lost=%d acked=%d, want 1/9", s.Lost, s.Acked)
	}
}

func TestLossClusterSingleBackoff(t *testing.T) {
	s := newTestSender()
	for i := 0; i < 20; i++ {
		s.OnSend(float64(i) * 0.001)
	}
	r0 := s.Rate()
	// Lose seqs 0..4; ack the rest at the same instant. All five holes are
	// one congestion event and must halve the rate exactly once.
	n := 0
	for q := int64(5); q < 20; q++ {
		if b := s.OnAck(0.1, q); b != nil {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("cluster of 5 losses caused %d backoffs, want 1", n)
	}
	if math.Abs(s.Rate()-r0/2) > 1e-9 {
		t.Fatalf("rate = %v, want single halving to %v", s.Rate(), r0/2)
	}
}

func TestSecondClusterAfterFenceBacksOffAgain(t *testing.T) {
	s := newTestSender()
	for i := 0; i < 10; i++ {
		s.OnSend(0.0)
	}
	r0 := s.Rate()
	s.OnAck(0.1, 4) // loses 0 and 1 -> backoff 1
	// Well past the one-SRTT fence: a new hole is a new congestion event.
	tLater := 0.1 + 2*s.SRTT() + 0.01
	s.OnAck(tLater, 9) // loses 2,3,5,6 -> backoff 2
	if s.Backoffs != 2 {
		t.Fatalf("backoffs = %d, want 2", s.Backoffs)
	}
	if s.Rate() >= r0/2 {
		t.Fatalf("rate %v not reduced twice from %v", s.Rate(), r0)
	}
}

func TestTimeoutDetection(t *testing.T) {
	s := newTestSender()
	s.OnSend(0)
	b := s.Step(10) // way past any timeout
	if b == nil {
		t.Fatal("timed-out packet did not trigger backoff")
	}
	if s.TimeoutEv != 1 || s.Lost != 1 {
		t.Fatalf("timeoutEv=%d lost=%d, want 1/1", s.TimeoutEv, s.Lost)
	}
	if s.Outstanding() != 0 {
		t.Fatalf("outstanding = %d after timeout, want 0", s.Outstanding())
	}
}

func TestMinRateFloor(t *testing.T) {
	s := NewSender(Config{PacketSize: 512, InitialRTT: 0.04, InitialRate: 1000, MinRate: 400})
	for i := 0; i < 10; i++ {
		for j := 0; j < 10; j++ {
			s.OnSend(float64(i))
		}
		s.Step(float64(i) + 100*float64(i+1)) // force timeouts
	}
	if s.Rate() < 400 {
		t.Fatalf("rate %v fell below MinRate", s.Rate())
	}
}

func TestMaxRateCap(t *testing.T) {
	s := NewSender(Config{PacketSize: 512, InitialRTT: 0.04, InitialRate: 1000, MaxRate: 2000})
	for i := 0; i < 100; i++ {
		s.Step(float64(i) * 0.04)
	}
	if s.Rate() > 2000 {
		t.Fatalf("rate %v exceeds MaxRate", s.Rate())
	}
}

func TestRTTEstimation(t *testing.T) {
	s := newTestSender()
	// Constant 80 ms RTT samples converge the estimator.
	for i := 0; i < 100; i++ {
		now := float64(i) * 0.1
		q := s.OnSend(now)
		s.OnAck(now+0.08, q)
	}
	if math.Abs(s.SRTT()-0.08) > 0.005 {
		t.Fatalf("srtt = %v, want ~0.08", s.SRTT())
	}
	// Slope follows P/srtt².
	wantS := 512 / (s.SRTT() * s.SRTT())
	if math.Abs(s.Slope()-wantS) > 1e-6 {
		t.Fatalf("slope = %v, want %v", s.Slope(), wantS)
	}
}

func TestSeqNumbersMonotone(t *testing.T) {
	s := newTestSender()
	var seqs []int64
	for i := 0; i < 100; i++ {
		seqs = append(seqs, s.OnSend(float64(i)))
	}
	if !sort.SliceIsSorted(seqs, func(i, j int) bool { return seqs[i] < seqs[j] }) {
		t.Fatal("sequence numbers not monotone")
	}
	for i := 1; i < len(seqs); i++ {
		if seqs[i] != seqs[i-1]+1 {
			t.Fatal("sequence numbers not consecutive")
		}
	}
}

// Sawtooth shape: in a closed loop with a fixed capacity, the rate must
// oscillate (AIMD hunting) around the capacity, not converge or diverge.
func TestSawtoothAroundCapacity(t *testing.T) {
	s := newTestSender()
	const capacity = 50000.0 // bytes/s
	now := 0.0
	var rates []float64
	backoffs := 0
	for i := 0; i < 2000; i++ {
		now += s.SRTT()
		// Ideal feedback: if rate exceeds capacity, next step sees a loss.
		if s.Rate() > capacity {
			q := s.OnSend(now)
			s.OnSend(now) // the packet after the hole
			s.OnSend(now)
			s.OnSend(now)
			hole := q + 0 // lose the first of the burst
			_ = hole
			// ACK the three later packets to expose the hole.
			s.OnAck(now+0.04, q+1)
			s.OnAck(now+0.04, q+2)
			if b := s.OnAck(now+0.04, q+3); b != nil {
				backoffs++
			}
			now += 0.05
		} else {
			s.Step(now)
		}
		rates = append(rates, s.Rate())
	}
	if backoffs < 10 {
		t.Fatalf("only %d backoffs in 2000 iterations; no sawtooth", backoffs)
	}
	// The rate should spend its life in a band around capacity.
	max := 0.0
	for _, r := range rates[len(rates)/2:] {
		if r > max {
			max = r
		}
	}
	if max > capacity*1.5 || max < capacity*0.7 {
		t.Fatalf("sawtooth peak %v not near capacity %v", max, capacity)
	}
}

func TestReorderingWithinGapTolerated(t *testing.T) {
	s := newTestSender()
	var seqs []int64
	for i := 0; i < 6; i++ {
		seqs = append(seqs, s.OnSend(float64(i)*0.01))
	}
	// Acks arrive reordered but every packet arrives; the reorder gap
	// must prevent any backoff.
	order := []int64{1, 0, 3, 2, 5, 4}
	for _, q := range order {
		if b := s.OnAck(0.1, q); b != nil {
			t.Fatalf("reordering within gap caused backoff at seq %d", q)
		}
	}
	if s.Backoffs != 0 || s.Lost != 0 {
		t.Fatalf("backoffs=%d lost=%d after pure reordering", s.Backoffs, s.Lost)
	}
}

func TestDuplicateAckHarmless(t *testing.T) {
	s := newTestSender()
	q := s.OnSend(0)
	s.OnAck(0.04, q)
	acked := s.Acked
	s.OnAck(0.05, q) // duplicate
	if s.Acked != acked {
		t.Fatal("duplicate ack double-counted")
	}
	if s.Backoffs != 0 {
		t.Fatal("duplicate ack caused backoff")
	}
}

func TestAckForUnknownSeqIgnored(t *testing.T) {
	s := newTestSender()
	if b := s.OnAck(1, 999); b != nil {
		t.Fatal("ack for never-sent seq caused backoff")
	}
	if s.Acked != 0 {
		t.Fatal("unknown ack counted")
	}
}

func TestConservativeSlopeAtMostInstantaneous(t *testing.T) {
	s := newTestSender()
	// Feed oscillating RTTs: the peak envelope must keep the
	// conservative slope at or below the instantaneous one.
	now := 0.0
	for i := 0; i < 300; i++ {
		rtt := 0.04 + 0.06*float64(i%10)/10
		q := s.OnSend(now)
		s.OnAck(now+rtt, q)
		now += 0.01
		if s.ConservativeSlope() > s.Slope()+1e-9 {
			t.Fatalf("conservative slope %v exceeds instantaneous %v", s.ConservativeSlope(), s.Slope())
		}
	}
}
