package rap

import (
	"math"
	"testing"
)

func TestFineGrainDisabledIsNeutral(t *testing.T) {
	s := NewSender(Config{PacketSize: 512, InitialRTT: 0.04})
	for i := 0; i < 50; i++ {
		q := s.OnSend(float64(i) * 0.01)
		s.OnAck(float64(i)*0.01+0.04+float64(i)*0.002, q) // growing RTT
	}
	if got := s.FineGrainFactor(); got != 1 {
		t.Fatalf("disabled fine grain factor = %v, want 1", got)
	}
	wantIPG := 512.0 / s.Rate()
	if math.Abs(s.IPG()-wantIPG) > 1e-12 {
		t.Fatalf("IPG %v != base %v with fine grain off", s.IPG(), wantIPG)
	}
}

func TestFineGrainSlowsOnRisingRTT(t *testing.T) {
	s := NewSender(Config{PacketSize: 512, InitialRTT: 0.04, FineGrain: true})
	// Stable RTT first: factor ~1.
	now := 0.0
	for i := 0; i < 100; i++ {
		q := s.OnSend(now)
		s.OnAck(now+0.04, q)
		now += 0.01
	}
	if f := s.FineGrainFactor(); math.Abs(f-1) > 0.01 {
		t.Fatalf("stable RTT factor = %v, want ~1", f)
	}
	// RTT ramps up (queue building): short average rises faster than the
	// long one, so the factor must exceed 1 (sender eases off).
	rtt := 0.04
	for i := 0; i < 30; i++ {
		rtt += 0.004
		q := s.OnSend(now)
		s.OnAck(now+rtt, q)
		now += 0.01
	}
	if f := s.FineGrainFactor(); f <= 1.02 {
		t.Fatalf("rising RTT factor = %v, want > 1", f)
	}
	if s.IPG() <= 512.0/s.Rate() {
		t.Fatal("IPG did not stretch under rising RTT")
	}
}

func TestFineGrainSpeedsOnFallingRTT(t *testing.T) {
	s := NewSender(Config{PacketSize: 512, InitialRTT: 0.2, FineGrain: true})
	now := 0.0
	rtt := 0.2
	for i := 0; i < 100; i++ {
		q := s.OnSend(now)
		s.OnAck(now+rtt, q)
		now += 0.01
	}
	// Queue draining: RTT falls, short average undershoots the long one.
	for i := 0; i < 30; i++ {
		rtt = math.Max(0.05, rtt-0.01)
		q := s.OnSend(now)
		s.OnAck(now+rtt, q)
		now += 0.01
	}
	if f := s.FineGrainFactor(); f >= 0.98 {
		t.Fatalf("falling RTT factor = %v, want < 1", f)
	}
}

func TestFineGrainFactorClamped(t *testing.T) {
	s := NewSender(Config{PacketSize: 512, InitialRTT: 0.01, FineGrain: true})
	now := 0.0
	// Violent RTT explosion.
	for i := 0; i < 50; i++ {
		q := s.OnSend(now)
		s.OnAck(now+0.01+float64(i)*0.05, q)
		now += 0.01
	}
	if f := s.FineGrainFactor(); f > fgMax+1e-12 {
		t.Fatalf("factor %v exceeds clamp %v", f, fgMax)
	}
	// Violent collapse.
	s2 := NewSender(Config{PacketSize: 512, InitialRTT: 1, FineGrain: true})
	now = 0.0
	for i := 0; i < 5; i++ {
		q := s2.OnSend(now)
		s2.OnAck(now+1, q)
		now += 0.1
	}
	for i := 0; i < 50; i++ {
		q := s2.OnSend(now)
		s2.OnAck(now+0.001, q)
		now += 0.1
	}
	if f := s2.FineGrainFactor(); f < fgMin-1e-12 {
		t.Fatalf("factor %v below clamp %v", f, fgMin)
	}
}
