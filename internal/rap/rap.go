// Package rap implements the Rate Adaptation Protocol sender and receiver
// state machines (Rejaie, Handley, Estrin — RAP), the TCP-friendly,
// rate-based AIMD congestion control the paper's quality adaptation runs
// on. Per the paper, this is the RAP variant *without* fine-grain
// inter-ACK adaptation, whose sawtooth is simple to predict.
//
// The state machine is transport-agnostic: it is driven by wall- or
// virtual-clock timestamps passed into its methods, so the same code runs
// inside the discrete-event simulator and over real UDP sockets.
package rap

import (
	"fmt"
	"math"
)

// Config parameterizes a RAP sender.
type Config struct {
	// PacketSize is the fixed payload size in bytes.
	PacketSize int
	// InitialRate is the starting transmission rate, bytes/s.
	InitialRate float64
	// MinRate bounds multiplicative decrease, bytes/s.
	MinRate float64
	// MaxRate optionally caps the rate (0 = uncapped), bytes/s.
	MaxRate float64
	// InitialRTT seeds the SRTT estimator, seconds.
	InitialRTT float64
	// ReorderGap is how many later ACKs must pass a hole before the
	// packet is declared lost (the TCP dup-ack threshold analogue).
	ReorderGap int64
	// FineGrain enables the RAP variant with fine-grain inter-ACK rate
	// adaptation (short/long RTT ratio modulating the inter-packet
	// gap). The quality adaptation paper analyzes the variant without
	// it; the variant with it is smoother against TCP.
	FineGrain bool
}

func (c *Config) setDefaults() {
	if c.PacketSize <= 0 {
		c.PacketSize = 512
	}
	if c.InitialRTT <= 0 {
		c.InitialRTT = 0.1
	}
	if c.InitialRate <= 0 {
		c.InitialRate = 2 * float64(c.PacketSize) / c.InitialRTT
	}
	if c.MinRate <= 0 {
		c.MinRate = float64(c.PacketSize) / 2.0 // one packet per 2s floor
	}
	if c.ReorderGap <= 0 {
		c.ReorderGap = 3
	}
}

// Backoff describes one multiplicative decrease event. LostSeqs aliases
// a scratch buffer the sender reuses: it is valid until the next OnAck
// or Step call, so a consumer that retains it across further events
// must copy it first (every consumer in this repo reacts immediately).
type Backoff struct {
	Time     float64
	OldRate  float64
	NewRate  float64
	LostSeqs []int64
}

// Sender is the RAP congestion control state machine. It is not
// goroutine-safe; callers serialize access (the simulator is single
// threaded, the UDP endpoint owns it from one goroutine).
type Sender struct {
	cfg Config

	rate    float64 // current transmission rate, bytes/s
	nextSeq int64

	srtt    float64
	rttvar  float64
	timeout float64
	gotRTT  bool
	peakRTT float64 // slowly decaying envelope of srtt, for ConservativeSlope

	// outstanding maps sequence number -> send time.
	outstanding map[int64]float64
	highestAck  int64 // highest sequence number acknowledged so far

	lastBackoff  float64 // time of the most recent backoff
	backoffFence float64 // losses of packets sent before this time are one cluster

	fg fineGrain

	// ins, when set via Instrument, receives per-event recordings. Nil
	// on uninstrumented senders: the record sites are branch-guarded.
	ins       *Instruments
	lastAckAt float64

	// lostBuf backs Backoff.LostSeqs across loss events; a long-lived
	// sender detecting losses every congestion cycle must not allocate
	// a fresh slice per event.
	lostBuf []int64

	// Counters for inspection and tests.
	Sent      int64
	Acked     int64
	Lost      int64
	Backoffs  int64
	TimeoutEv int64
}

// NewSender returns a RAP sender with cfg (zero fields take defaults).
func NewSender(cfg Config) *Sender {
	cfg.setDefaults()
	return &Sender{
		cfg:         cfg,
		rate:        cfg.InitialRate,
		srtt:        cfg.InitialRTT,
		rttvar:      cfg.InitialRTT / 2,
		timeout:     cfg.InitialRTT + 2*cfg.InitialRTT,
		outstanding: make(map[int64]float64),
		highestAck:  -1,
		lastBackoff: math.Inf(-1),
		lastAckAt:   -1,
		fg:          fineGrain{enabled: cfg.FineGrain},
	}
}

// Rate returns the current transmission rate in bytes/s.
func (s *Sender) Rate() float64 { return s.rate }

// IPG returns the current inter-packet gap in seconds, including the
// fine-grain feedback adjustment when that variant is enabled.
func (s *Sender) IPG() float64 {
	return float64(s.cfg.PacketSize) / s.rate * s.fg.factor()
}

// FineGrainFactor returns the current fine-grain IPG multiplier (1 when
// the variant is disabled).
func (s *Sender) FineGrainFactor() float64 { return s.fg.factor() }

// SRTT returns the smoothed round-trip time estimate in seconds.
func (s *Sender) SRTT() float64 { return s.srtt }

// PacketSize returns the configured packet size in bytes.
func (s *Sender) PacketSize() int { return s.cfg.PacketSize }

// Slope returns the current additive-increase slope S in bytes/s²: RAP
// increases the rate by one packet per SRTT, once per SRTT.
func (s *Sender) Slope() float64 {
	return float64(s.cfg.PacketSize) / (s.srtt * s.srtt)
}

// ConservativeSlope returns a pessimistic slope estimate based on the
// peak-RTT envelope rather than the instantaneous SRTT. Queue buildup
// makes SRTT — and hence the instantaneous slope — swing several-fold
// within one congestion cycle; the paper (§2.2) names slope misestimation
// as a cause of critical situations, so quality adaptation decisions use
// this slower, smaller estimate.
func (s *Sender) ConservativeSlope() float64 {
	rtt := s.peakRTT
	if rtt <= 0 {
		rtt = s.srtt
	}
	return float64(s.cfg.PacketSize) / (rtt * rtt)
}

// StepInterval returns how often Step should be invoked (one SRTT).
func (s *Sender) StepInterval() float64 { return s.srtt }

// Outstanding returns the number of unacknowledged packets.
func (s *Sender) Outstanding() int { return len(s.outstanding) }

// OnSend registers a packet transmission at time now and returns its
// sequence number.
func (s *Sender) OnSend(now float64) int64 {
	seq := s.nextSeq
	s.nextSeq++
	s.outstanding[seq] = now
	s.Sent++
	return seq
}

// OnAck processes an acknowledgement for seq received at time now. It
// returns the backoff performed, if any (loss inferred from the ACK
// pattern), or nil.
func (s *Sender) OnAck(now float64, seq int64) *Backoff {
	if s.ins != nil {
		if s.lastAckAt >= 0 {
			s.ins.AckGap.Observe(now - s.lastAckAt)
		}
		s.lastAckAt = now
	}
	sendTime, ok := s.outstanding[seq]
	if ok {
		delete(s.outstanding, seq)
		s.Acked++
		s.updateRTT(now - sendTime)
		s.fg.sample(now - sendTime)
	}
	if seq > s.highestAck {
		s.highestAck = seq
	}
	// ACK-based loss detection: any packet still outstanding whose
	// sequence trails the highest ACK by more than the reorder gap is
	// considered lost.
	lost := s.lostBuf[:0]
	for o := range s.outstanding {
		if o <= s.highestAck-s.cfg.ReorderGap {
			lost = append(lost, o)
			delete(s.outstanding, o)
			s.Lost++
		}
	}
	s.lostBuf = lost
	if len(lost) == 0 {
		return nil
	}
	return s.lossEvent(now, lost)
}

// Step performs the periodic (once per SRTT) rate decision: checking for
// timed-out packets and, absent loss, applying the additive increase. It
// returns the backoff performed, if any.
func (s *Sender) Step(now float64) *Backoff {
	// Timeout-based loss detection.
	lost := s.lostBuf[:0]
	for o, st := range s.outstanding {
		if now-st > s.timeout {
			lost = append(lost, o)
			delete(s.outstanding, o)
			s.Lost++
		}
	}
	s.lostBuf = lost
	if len(lost) > 0 {
		s.TimeoutEv++
		if s.ins != nil {
			s.ins.Timeouts.Inc()
		}
		if b := s.lossEvent(now, lost); b != nil {
			return b
		}
		return nil
	}
	// Additive increase: one packet per SRTT.
	s.rate += float64(s.cfg.PacketSize) / s.srtt
	if s.cfg.MaxRate > 0 && s.rate > s.cfg.MaxRate {
		s.rate = s.cfg.MaxRate
	}
	return nil
}

// lossEvent applies one multiplicative decrease per loss cluster: losses
// of packets sent before the current backoff fence belong to the cluster
// already reacted to.
func (s *Sender) lossEvent(now float64, lost []int64) *Backoff {
	if len(lost) == 0 {
		return nil
	}
	if now < s.backoffFence {
		return nil // still reacting to the previous cluster
	}
	old := s.rate
	s.rate /= 2
	if s.rate < s.cfg.MinRate {
		s.rate = s.cfg.MinRate
	}
	s.Backoffs++
	if s.ins != nil {
		s.ins.Backoffs.Inc()
	}
	s.lastBackoff = now
	// One SRTT of grace: losses detected within it are the same cluster.
	s.backoffFence = now + s.srtt
	return &Backoff{Time: now, OldRate: old, NewRate: s.rate, LostSeqs: lost}
}

func (s *Sender) updateRTT(sample float64) {
	if sample <= 0 {
		return
	}
	if !s.gotRTT {
		s.srtt = sample
		s.rttvar = sample / 2
		s.gotRTT = true
	} else {
		const alpha, beta = 1.0 / 8.0, 1.0 / 4.0
		s.rttvar = (1-beta)*s.rttvar + beta*math.Abs(s.srtt-sample)
		s.srtt = (1-alpha)*s.srtt + alpha*sample
	}
	s.timeout = s.srtt + 4*s.rttvar
	if s.timeout < 2*s.srtt {
		s.timeout = 2 * s.srtt
	}
	// Peak envelope: jumps up with SRTT, decays slowly (~1% per sample).
	if s.srtt > s.peakRTT {
		s.peakRTT = s.srtt
	} else {
		s.peakRTT += 0.01 * (s.srtt - s.peakRTT)
	}
	if s.ins != nil {
		s.ins.SRTT.Observe(s.srtt)
	}
}

// String summarizes the sender state, for traces and debugging.
func (s *Sender) String() string {
	return fmt.Sprintf("rap(rate=%.0fB/s srtt=%.1fms out=%d backoffs=%d)",
		s.rate, s.srtt*1000, len(s.outstanding), s.Backoffs)
}
