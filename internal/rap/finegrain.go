package rap

// Fine-grain rate adaptation (the RAP variant the QA paper sets aside
// because its sawtooth is harder to predict, included here as the
// documented extension): the effective inter-packet gap is modulated by
// the ratio of a short-term to a long-term RTT average, so the sender
// eases off as the bottleneck queue builds — before losses occur — and
// speeds up as it drains. This emulates TCP's ACK-clock self-pacing and
// improves RAP's fairness against TCP at DropTail bottlenecks.
//
// Feedback factor (per the RAP paper): fine = srttShort / srttLong,
// clamped to [0.5, 2]; effective IPG = base IPG × fine.

// fineGrain holds the short/long RTT averages for the fine-grain
// feedback term.
type fineGrain struct {
	enabled    bool
	srttShort  float64
	srttLong   float64
	haveSample bool
}

const (
	fgShortGain = 1.0 / 4.0  // fast-moving average
	fgLongGain  = 1.0 / 32.0 // slow-moving average
	fgMin       = 0.5
	fgMax       = 2.0
)

func (f *fineGrain) sample(rtt float64) {
	if !f.enabled || rtt <= 0 {
		return
	}
	if !f.haveSample {
		f.srttShort, f.srttLong = rtt, rtt
		f.haveSample = true
		return
	}
	f.srttShort += fgShortGain * (rtt - f.srttShort)
	f.srttLong += fgLongGain * (rtt - f.srttLong)
}

// factor returns the multiplicative IPG adjustment.
func (f *fineGrain) factor() float64 {
	if !f.enabled || !f.haveSample || f.srttLong <= 0 {
		return 1
	}
	r := f.srttShort / f.srttLong
	if r < fgMin {
		return fgMin
	}
	if r > fgMax {
		return fgMax
	}
	return r
}
