// Package core implements the paper's quality adaptation mechanism for
// layered video over an AIMD congestion controlled transport: the
// buffer-requirement formulas for single- and multiple-backoff scenarios
// (§2.4, §4.1, Appendix A), the maximally efficient state sequence
// (Figs 8-10), the per-packet filling allocator (§4.1's SendPacket), the
// reverse-path draining allocator (§4.2), and the coarse-grain layer
// add/drop rules (§2.1, §2.2) with smoothing factor Kmax (§3).
//
// Conventions: rates are bytes/s, buffering is bytes, time is seconds,
// and S is the AIMD additive-increase slope in bytes/s². Layers are
// linearly spaced: every layer consumes C bytes/s (the paper's analysis
// assumption).
package core

import "fmt"

// Allocation selects the inter-layer buffer allocation policy. The
// paper's contribution is the optimal policy; the other two are the
// strawmen §2.3 argues against, kept for the ablation benches.
type Allocation int

const (
	// AllocOptimal follows the maximally efficient path (the paper).
	AllocOptimal Allocation = iota
	// AllocEqual spreads surplus toward equal per-layer buffering
	// (§2.3's "dropping layers with buffered data" strawman).
	AllocEqual
	// AllocBase sends all surplus to the base layer (§2.3's
	// "insufficient distribution of buffered data" strawman).
	AllocBase
)

func (a Allocation) String() string {
	switch a {
	case AllocOptimal:
		return "optimal"
	case AllocEqual:
		return "equal"
	case AllocBase:
		return "base-only"
	default:
		return "?"
	}
}

// Params configures a quality adaptation controller.
type Params struct {
	// C is the per-layer consumption rate in bytes/s.
	C float64
	// Kmax is the smoothing factor: the number of backoffs worth of
	// buffering accumulated before a new layer is added (§3.1).
	Kmax int
	// MaxLayers bounds the number of encoded layers available.
	MaxLayers int
	// StartupSec is how many seconds of base-layer data must be buffered
	// before playback starts.
	StartupSec float64
	// PlanHorizon is the draining-allocator planning horizon in seconds
	// (clamped to [PlanHorizonMin, PlanHorizonMax] around the RTT).
	PlanHorizon float64
	// ExtraStates lets buffers keep growing past Kmax while the adding
	// condition's rate test fails (the paper's 2.9-layer modem example):
	// scenario-2 states up to Kmax+ExtraStates are pursued.
	ExtraStates int
	// AddSpacing is the minimum time between layer changes and a
	// subsequent add. Until the first RTT sample the slope estimate is
	// arbitrary, and §2.1 warns against several layers being added per
	// congestion-control cycle; spacing bounds the damage.
	AddSpacing float64
	// Alloc selects the inter-layer buffer allocation policy (the
	// default AllocOptimal is the paper's contribution; the others are
	// §2.3's strawmen for ablations).
	Alloc Allocation
	// ProtectSec keeps at least this many seconds of data buffered in
	// every active layer once the Kmax targets are met, before surplus
	// chases the deeper (bottom-heavy) states. Buffer draining is
	// bounded per layer by the consumption rate C, so a top layer with
	// zero buffer starves in deep multi-backoff dips no matter how much
	// the base layer holds; a small reserve prevents exactly the
	// "poor distribution" drops Table 2 counts.
	ProtectSec float64
	// MaxEvents bounds the decision log: past the cap the oldest half
	// is discarded, keeping recent history. Zero keeps the full log
	// (the simulator's default — analyses replay the whole run); a
	// long-running server sets a cap so a churning stream cannot grow
	// memory without bound.
	MaxEvents int
}

// Validate checks parameter sanity.
func (p *Params) Validate() error {
	if p.C <= 0 {
		return fmt.Errorf("core: C must be positive, got %v", p.C)
	}
	if p.Kmax < 1 {
		return fmt.Errorf("core: Kmax must be >= 1, got %d", p.Kmax)
	}
	if p.MaxLayers < 1 {
		return fmt.Errorf("core: MaxLayers must be >= 1, got %d", p.MaxLayers)
	}
	return nil
}

func (p *Params) setDefaults() {
	if p.Kmax == 0 {
		p.Kmax = 2
	}
	if p.MaxLayers == 0 {
		p.MaxLayers = 8
	}
	if p.StartupSec == 0 {
		p.StartupSec = 1.0
	}
	if p.PlanHorizon == 0 {
		p.PlanHorizon = 0.05
	}
	if p.ExtraStates == 0 {
		p.ExtraStates = 24
	}
	if p.AddSpacing == 0 {
		p.AddSpacing = 0.5
	}
	if p.ProtectSec == 0 {
		p.ProtectSec = 0.5
	}
}
