package core

import (
	"math"
	"math/rand"
	"testing"
)

// loopback drives a controller against an idealized network: whatever
// share the controller allocates is delivered after a fixed delay of one
// tick. It lets us test the adaptation logic without the simulator.
type loopback struct {
	c   *Controller
	now float64
	dt  float64
}

func newLoopback(t *testing.T, p Params) *loopback {
	t.Helper()
	c, err := NewController(p)
	if err != nil {
		t.Fatal(err)
	}
	return &loopback{c: c, dt: 0.005}
}

// run advances the loop for dur seconds at rate R(t), delivering the
// allocated shares perfectly.
func (lb *loopback) run(dur float64, rate func(t float64) float64, slope float64) {
	end := lb.now + dur
	for lb.now < end {
		R := rate(lb.now)
		lb.c.Tick(lb.now, R, slope)
		for i, w := range lb.c.Shares() {
			if b := int(w * lb.dt); b > 0 {
				lb.c.OnDelivered(lb.now, i, b)
			}
		}
		lb.now += lb.dt
	}
}

const (
	cC = 1000.0  // per-layer rate
	cS = 40000.0 // slope
)

func baseParams() Params {
	return Params{C: cC, Kmax: 2, MaxLayers: 6, StartupSec: 0.5}
}

func TestControllerStartsPlayback(t *testing.T) {
	lb := newLoopback(t, baseParams())
	lb.run(2.0, func(float64) float64 { return 2500 }, cS)
	if !lb.c.Playing() {
		t.Fatal("playback did not start with ample bandwidth")
	}
	found := false
	for _, e := range lb.c.Events {
		if e.Kind == EvPlayStart {
			found = true
		}
	}
	if !found {
		t.Fatal("no EvPlayStart event")
	}
}

func TestControllerAddsLayersWithBandwidth(t *testing.T) {
	lb := newLoopback(t, baseParams())
	// Sustained 3.6 layers worth of bandwidth.
	lb.run(60, func(float64) float64 { return 3600 }, cS)
	if got := lb.c.ActiveLayers(); got < 3 {
		t.Fatalf("active layers = %d after 60s at 3.6C, want >= 3", got)
	}
	if got := lb.c.ActiveLayers(); got > 3 {
		t.Fatalf("active layers = %d exceeds instantaneous-rate limit 3", got)
	}
}

func TestControllerAddNeedsRateHeadroom(t *testing.T) {
	lb := newLoopback(t, baseParams())
	// 1.8 layers worth: must stay at one layer (R < 2C) forever.
	lb.run(60, func(float64) float64 { return 1800 }, cS)
	if got := lb.c.ActiveLayers(); got != 1 {
		t.Fatalf("active layers = %d at R=1.8C, want 1", got)
	}
}

func TestControllerAddWaitsForKmaxBuffering(t *testing.T) {
	p := baseParams()
	p.Kmax = 4
	lbSlow, lbFast := newLoopback(t, p), newLoopback(t, baseParams())
	rate := func(float64) float64 { return 3600 }
	// A small slope makes draining phases long and buffer requirements
	// substantial, so the Kmax difference is visible in add times.
	const slope = 100.0
	addTime := func(lb *loopback) float64 {
		for lb.now < 300 {
			lb.run(lb.dt, rate, slope)
			for _, e := range lb.c.Events {
				if e.Kind == EvAddLayer {
					return e.Time
				}
			}
		}
		return math.Inf(1)
	}
	t1, t2 := addTime(lbFast), addTime(lbSlow)
	if math.IsInf(t1, 1) || math.IsInf(t2, 1) {
		t.Fatalf("layers never added: Kmax=2 at %v, Kmax=4 at %v", t1, t2)
	}
	if !(t1 < t2) {
		t.Fatalf("Kmax=2 added at %v, Kmax=4 at %v; higher Kmax must wait longer", t1, t2)
	}
}

func TestControllerBackoffDropsWithoutBuffer(t *testing.T) {
	lb := newLoopback(t, baseParams())
	lb.run(30, func(float64) float64 { return 3600 }, cS)
	na := lb.c.ActiveLayers()
	if na < 2 {
		t.Fatalf("precondition: want >=2 layers, got %d", na)
	}
	// Brutal collapse: rate to a tenth of one layer with a slow recovery
	// slope, so the recovery triangle dwarfs any buffering. The §2.2 rule
	// must shed layers immediately.
	lb.c.OnBackoff(lb.now, 100, 20)
	if got := lb.c.ActiveLayers(); got >= na {
		t.Fatalf("no drop after catastrophic backoff: %d -> %d", na, got)
	}
}

func TestControllerSurvivesSawtoothSteadily(t *testing.T) {
	// AIMD sawtooth between 2.2C and 4.4C (average ~3.3C): after
	// convergence the controller should hold 3 layers through backoffs
	// without stalling — the whole point of the paper.
	lb := newLoopback(t, baseParams())
	period := 2.2 // seconds per sawtooth cycle
	// Peak below 4C so the 4th layer's rate condition never fires; the
	// average (~3.15C) sustains 3 layers through every backoff.
	low, high := 2400.0, 3900.0
	slope := (high - low) / period
	rate := func(tm float64) float64 {
		frac := math.Mod(tm, period) / period
		return low + (high-low)*frac
	}
	// Drive manually so backoffs hit the controller at cycle edges.
	for cycle := 0; cycle < 40; cycle++ {
		lb.run(period, rate, slope)
		lb.c.OnBackoff(lb.now, low, slope)
	}
	if lb.c.StallSec > 0 {
		t.Fatalf("stalled %.2fs during a steady sawtooth", lb.c.StallSec)
	}
	if got := lb.c.ActiveLayers(); got != 3 {
		t.Fatalf("steady sawtooth holds %d layers, want 3", got)
	}
	// Quality changes must be rare after convergence: count add/drop in
	// the second half.
	half := lb.now / 2
	changes := 0
	for _, e := range lb.c.Events {
		if e.Time >= half && (e.Kind == EvAddLayer || e.Kind == EvDropLayer) {
			changes++
		}
	}
	if changes > 4 {
		t.Fatalf("%d quality changes in steady state, want <= 4", changes)
	}
}

func TestControllerRecoversAfterCollapse(t *testing.T) {
	lb := newLoopback(t, baseParams())
	lb.run(40, func(float64) float64 { return 3600 }, cS)
	before := lb.c.ActiveLayers()
	// Collapse to half a layer for 10 seconds.
	lb.c.OnBackoff(lb.now, 500, cS)
	lb.run(10, func(float64) float64 { return 500 }, cS)
	during := lb.c.ActiveLayers()
	if during != 1 {
		t.Fatalf("during collapse: %d layers, want 1", during)
	}
	// Recovery.
	lb.run(40, func(float64) float64 { return 3600 }, cS)
	after := lb.c.ActiveLayers()
	if after < before-1 {
		t.Fatalf("no recovery: %d layers before, %d after", before, after)
	}
}

func TestControllerBuffersNeverNegative(t *testing.T) {
	lb := newLoopback(t, baseParams())
	rate := func(tm float64) float64 { return 2000 + 1500*math.Sin(tm/3) }
	for i := 0; i < 20; i++ {
		lb.run(3, rate, cS)
		lb.c.OnBackoff(lb.now, rate(lb.now)/2, cS)
		for l, b := range lb.c.Buffers() {
			if b < 0 {
				t.Fatalf("negative buffer on layer %d: %v", l, b)
			}
		}
	}
}

func TestControllerPickLayerFollowsShares(t *testing.T) {
	c, err := NewController(baseParams())
	if err != nil {
		t.Fatal(err)
	}
	// Warm up to multiple layers with perfect delivery.
	now := 0.0
	const pkt = 100
	counts := map[int]int{}
	for i := 0; i < 40000; i++ {
		layer := c.PickLayer(now, 3600, cS, pkt)
		c.OnDelivered(now, layer, pkt)
		if i > 20000 {
			counts[layer]++
		}
		now += float64(pkt) / 3600.0
	}
	if c.ActiveLayers() < 3 {
		t.Fatalf("warmup reached only %d layers", c.ActiveLayers())
	}
	// In steady filling each consuming layer must receive about C worth
	// of packets; sends per layer should be within a factor-2 band of the
	// fair pattern for the lower layers.
	if counts[0] == 0 || counts[1] == 0 || counts[2] == 0 {
		t.Fatalf("some active layer starved: %v", counts)
	}
}

func TestControllerStallAndResume(t *testing.T) {
	p := baseParams()
	lb := newLoopback(t, p)
	lb.run(5, func(float64) float64 { return 1500 }, cS)
	if !lb.c.Playing() {
		t.Fatal("precondition: playing")
	}
	// Starve below the base-layer rate long enough to exhaust buffering.
	lb.c.OnBackoff(lb.now, 100, cS)
	lb.run(30, func(float64) float64 { return 100 }, cS)
	if !lb.c.Stalled() && lb.c.StallSec == 0 {
		t.Fatal("expected a stall during starvation")
	}
	// Recover.
	lb.run(10, func(float64) float64 { return 2000 }, cS)
	if lb.c.Stalled() {
		t.Fatal("stall did not clear after recovery")
	}
	if lb.c.StallSec <= 0 {
		t.Fatal("StallSec not accounted")
	}
}

func TestControllerDropEventMetrics(t *testing.T) {
	lb := newLoopback(t, baseParams())
	lb.run(30, func(float64) float64 { return 3600 }, cS)
	lb.c.OnBackoff(lb.now, 200, 20)
	var drops []Event
	for _, e := range lb.c.Events {
		if e.Kind == EvDropLayer {
			drops = append(drops, e)
		}
	}
	if len(drops) == 0 {
		t.Fatal("no drop events recorded")
	}
	for _, d := range drops {
		if d.BufTotal < d.BufDrop {
			t.Fatalf("drop event inconsistent: total %v < dropped %v", d.BufTotal, d.BufDrop)
		}
		if d.Layer <= 0 {
			t.Fatalf("dropped layer %d; base layer must never drop", d.Layer)
		}
	}
}

func TestControllerParamsValidation(t *testing.T) {
	if _, err := NewController(Params{C: -1}); err == nil {
		t.Fatal("negative C accepted")
	}
	c, err := NewController(Params{C: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if c.P.Kmax < 1 || c.P.MaxLayers < 1 {
		t.Fatal("defaults not applied")
	}
}

func TestControllerDegenerateSlope(t *testing.T) {
	c, err := NewController(baseParams())
	if err != nil {
		t.Fatal(err)
	}
	// NaN/zero slopes must not poison the math.
	c.Tick(0, 2000, math.NaN())
	c.Tick(1, 2000, 0)
	c.Tick(2, 2000, math.Inf(1))
	for _, b := range c.Buffers() {
		if math.IsNaN(b) {
			t.Fatal("NaN leaked into buffers")
		}
	}
}

func TestControllerTimeMonotonicityPanics(t *testing.T) {
	c, _ := NewController(baseParams())
	c.Tick(5, 2000, cS)
	defer func() {
		if recover() == nil {
			t.Fatal("backwards Tick did not panic")
		}
	}()
	c.Tick(4, 2000, cS)
}

func TestAllocationPolicyFillTargets(t *testing.T) {
	mk := func(a Allocation) *loopback {
		p := baseParams()
		p.Alloc = a
		return newLoopback(t, p)
	}
	// Equal-share: surplus flows to the emptiest layer, so buffers stay
	// roughly level. Base-only: everything lands on layer 0.
	lbEq, lbBase := mk(AllocEqual), mk(AllocBase)
	rate := func(float64) float64 { return 3600 }
	const slope = 200.0
	lbEq.run(30, rate, slope)
	lbBase.run(30, rate, slope)

	if lbEq.c.ActiveLayers() < 2 || lbBase.c.ActiveLayers() < 2 {
		t.Fatalf("strawmen failed to add layers: eq=%d base=%d",
			lbEq.c.ActiveLayers(), lbBase.c.ActiveLayers())
	}
	eb := lbEq.c.Buffers()
	spread := eb[0] - eb[len(eb)-1]
	if spread > 0.5*eb[0] {
		t.Fatalf("equal policy left skewed buffers: %v", eb)
	}
	bb := lbBase.c.Buffers()
	for i := 1; i < len(bb); i++ {
		if bb[i] > bb[0]/4 {
			t.Fatalf("base-only policy buffered on layer %d: %v", i, bb)
		}
	}
}

// §2.3's argument, measured: under the same loss pattern the optimal
// allocation wastes less buffered data on dropped layers than the
// equal-share strawman.
func TestAllocationPolicyEfficiencyOrdering(t *testing.T) {
	run := func(a Allocation) (eff float64, drops int) {
		p := baseParams()
		p.Alloc = a
		p.Kmax = 3
		lb := newLoopback(t, p)
		// Sawtooth with periodic deep collapses that force drops.
		const slope = 300.0
		for cycle := 0; cycle < 30; cycle++ {
			lb.run(3, func(float64) float64 { return 4300 }, slope)
			depth := 700.0
			lb.c.OnBackoff(lb.now, depth, slope)
			lb.run(2, func(float64) float64 { return depth }, slope)
		}
		sum, n := 0.0, 0
		for _, e := range lb.c.Events {
			if e.Kind == EvDropLayer && e.BufTotal > 0 {
				sum += (e.BufTotal - e.BufDrop) / e.BufTotal
				n++
			}
		}
		if n == 0 {
			return 1, 0
		}
		return sum / float64(n), n
	}
	effOpt, dOpt := run(AllocOptimal)
	effEq, dEq := run(AllocEqual)
	if dOpt == 0 || dEq == 0 {
		t.Skipf("no drops to compare (opt=%d eq=%d)", dOpt, dEq)
	}
	if effOpt < effEq {
		t.Fatalf("optimal efficiency %.3f < equal-share %.3f", effOpt, effEq)
	}
}

// Fuzz-style property run: under an arbitrary bounded random rate
// process with random backoffs, the controller must never corrupt its
// invariants — buffers non-negative, layer count in [1, MaxLayers],
// shares non-negative and summing to at most the offered rate (plus
// epsilon), events well-formed.
func TestControllerInvariantsUnderRandomProcess(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		lb := newLoopback(t, baseParams())
		R := 2500.0
		for step := 0; step < 4000; step++ {
			// Random walk the rate; occasional multiplicative decrease.
			R += (rng.Float64() - 0.48) * 200
			if R < 200 {
				R = 200
			}
			if R > 8000 {
				R = 8000
			}
			if rng.Float64() < 0.01 {
				R /= 2
				lb.c.OnBackoff(lb.now, R, cS)
			}
			lb.run(lb.dt, func(float64) float64 { return R }, cS)

			if na := lb.c.ActiveLayers(); na < 1 || na > lb.c.P.MaxLayers {
				t.Fatalf("seed %d: layer count %d out of range", seed, na)
			}
			sum := 0.0
			for i, w := range lb.c.Shares() {
				if w < -1e-9 {
					t.Fatalf("seed %d: negative share on layer %d", seed, i)
				}
				sum += w
			}
			// Shares are mixing targets (PickLayer normalizes by their
			// sum); during unmet-drain periods they deliberately exceed
			// R, but never the consumption ceiling plus the rate.
			if sum > R+float64(lb.c.ActiveLayers())*cC+1e-6 {
				t.Fatalf("seed %d: shares %.0f exceed R+naC bound (R=%.0f)", seed, sum, R)
			}
			for i, b := range lb.c.Buffers() {
				if b < 0 || math.IsNaN(b) {
					t.Fatalf("seed %d: bad buffer on layer %d: %v", seed, i, b)
				}
			}
		}
		// Event log sanity: drops never exceed adds+initial, times ordered.
		adds, drops := 0, 0
		prev := -1.0
		for _, e := range lb.c.Events {
			if e.Time < prev {
				t.Fatalf("seed %d: event times unordered", seed)
			}
			prev = e.Time
			switch e.Kind {
			case EvAddLayer:
				adds++
			case EvDropLayer:
				drops++
			}
		}
		if drops > adds {
			t.Fatalf("seed %d: %d drops > %d adds", seed, drops, adds)
		}
	}
}

// TestEventLogBounded: with MaxEvents set, the decision log keeps only
// recent history instead of growing without bound — the serving path
// depends on this for hour-long streams whose rate straddles a layer
// boundary (perpetual add/drop churn).
func TestEventLogBounded(t *testing.T) {
	c, err := NewController(Params{C: 1000, MaxEvents: 64})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10_000; i++ {
		c.event(Event{Time: float64(i)})
	}
	if len(c.Events) > 64 {
		t.Fatalf("event log holds %d entries, cap is 64", len(c.Events))
	}
	if cap(c.Events) > 128 {
		t.Fatalf("event log capacity %d kept growing past the cap", cap(c.Events))
	}
	// The survivors must be the newest events.
	last := c.Events[len(c.Events)-1]
	if last.Time != 9999 {
		t.Fatalf("newest event lost: tail is t=%v", last.Time)
	}
	for i := 1; i < len(c.Events); i++ {
		if c.Events[i].Time <= c.Events[i-1].Time {
			t.Fatalf("event order broken at %d: %v after %v", i, c.Events[i].Time, c.Events[i-1].Time)
		}
	}

	// Unset cap: the full log survives (simulator behavior unchanged).
	c2, err := NewController(Params{C: 1000})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10_000; i++ {
		c2.event(Event{Time: float64(i)})
	}
	if len(c2.Events) != 10_000 {
		t.Fatalf("uncapped log truncated to %d", len(c2.Events))
	}
}
