package core

// State is one optimal buffer state on the maximally efficient path
// (Figs 8-10): the per-layer buffer targets required to survive K
// backoffs under Scen, made cumulative along the path so that filling
// never implies draining a previously filled layer.
type State struct {
	Scen  Scenario
	K     int
	Layer []float64 // per-layer target, index 0 = base layer
	Total float64   // sum of Layer
	// RawTotal is the formula total before the monotonic adjustment.
	RawTotal float64
}

// StateLadder builds the ordered sequence of optimal buffer states for
// na layers at rate R, covering k = kmin..kmax in both scenarios:
//
//  1. raw states are computed from the Appendix A formulas,
//  2. sorted by increasing total requirement (Fig 9), scenario 1 first
//     on ties (its distribution is the more flexible one),
//  3. per-layer targets are made monotonically non-decreasing along the
//     sequence (the running max), realizing §4.1's constraint that both
//     the total and every layer's buffering only grow while filling
//     (Fig 10).
//
// States whose raw total is zero (k too small to pull R below na·C) are
// omitted. kmin of 0 includes the "finish the current drain" state used
// by the draining allocator when R is already below na·C.
func StateLadder(R float64, na, kmin, kmax int, C, S float64) []State {
	return AppendStateLadder(nil, R, na, kmin, kmax, C, S)
}

// AppendStateLadder is StateLadder reusing dst's backing storage — the
// returned slice and the Layer slices of its entries are recycled, so a
// caller that rebuilds the ladder on every backoff (the serving path's
// draining allocator) holds the heap steady. The result aliases dst and
// is valid until the next call with the same dst.
func AppendStateLadder(dst []State, R float64, na, kmin, kmax int, C, S float64) []State {
	raw := dst[:0]
	if na <= 0 || kmax < kmin {
		return raw
	}
	for k := kmin; k <= kmax; k++ {
		for _, sc := range []Scenario{Scenario1, Scenario2} {
			tot := BufTotal(sc, R, na, k, C, S)
			if tot <= 0 {
				continue
			}
			if sc == Scenario2 && BufTotal(Scenario1, R, na, k, C, S) == tot {
				// Identical to the scenario-1 state (k <= k1): skip dup.
				continue
			}
			var layer []float64
			if n := len(raw); n < cap(raw) {
				layer = raw[:n+1][n].Layer // recycle the evicted entry's slice
			}
			if cap(layer) < na {
				layer = make([]float64, na)
			}
			layer = layer[:na]
			for i := 0; i < na; i++ {
				layer[i] = BufLayer(sc, R, na, k, i, C, S)
			}
			raw = append(raw, State{Scen: sc, K: k, RawTotal: tot, Layer: layer})
		}
	}
	// Stable insertion sort by (RawTotal, Scen): the ladder holds at
	// most 2·(kmax-kmin+1) entries, and avoiding sort.SliceStable keeps
	// the reflection-based swapper off the hot path.
	for i := 1; i < len(raw); i++ {
		for j := i; j > 0 && stateLess(&raw[j], &raw[j-1]); j-- {
			raw[j], raw[j-1] = raw[j-1], raw[j]
		}
	}
	// Monotonic per-layer adjustment; the previous entry's adjusted
	// targets are exactly the running max.
	for idx := range raw {
		tot := 0.0
		for i := 0; i < na; i++ {
			v := raw[idx].Layer[i]
			if idx > 0 && v < raw[idx-1].Layer[i] {
				v = raw[idx-1].Layer[i]
				raw[idx].Layer[i] = v
			}
			tot += v
		}
		raw[idx].Total = tot
	}
	return raw
}

func stateLess(a, b *State) bool {
	if a.RawTotal != b.RawTotal {
		return a.RawTotal < b.RawTotal
	}
	return a.Scen < b.Scen
}

// FillTarget implements the paper's per-packet SendPacket scan (§4.1):
// given the current per-layer buffering, it returns the layer whose
// buffer the transmission surplus should currently extend, or ok=false
// when every target up to kmax in both scenarios is satisfied.
//
// The scan finds, in each scenario, the first state whose *total*
// requirement exceeds the available buffering, works toward whichever of
// the two needs less, and fills the lowest layer below its per-layer
// target in that state. While scenario-1 states remain unsatisfied, a
// layer is never filled beyond its next scenario-1 target (the paper's
// clamp keeping scenario-2 allocations inside the scenario-1 envelope).
func FillTarget(R float64, bufs []float64, C, S float64, kmax int) (layer int, ok bool) {
	na := len(bufs)
	if na == 0 {
		return 0, false
	}
	total := 0.0
	for _, b := range bufs {
		total += b
	}

	k1n, bufReq1 := 0, 0.0
	for bufReq1 <= total && k1n < kmax {
		k1n++
		bufReq1 = BufTotal(Scenario1, R, na, k1n, C, S)
	}
	s1Done := bufReq1 <= total // all scenario-1 states up to kmax satisfied

	k2n, bufReq2 := 0, 0.0
	for bufReq2 <= total && k2n < kmax {
		k2n++
		bufReq2 = BufTotal(Scenario2, R, na, k2n, C, S)
	}
	s2Done := bufReq2 <= total

	if s1Done && s2Done {
		return 0, false
	}

	const eps = 1e-9
	workS1 := !s1Done && (s2Done || bufReq1 <= bufReq2)
	for i := 0; i < na; i++ {
		l1 := BufLayer(Scenario1, R, na, k1n, i, C, S)
		l2 := BufLayer(Scenario2, R, na, k2n, i, C, S)
		if workS1 {
			if l1 > bufs[i]+eps {
				return i, true
			}
		} else {
			if l2 > bufs[i]+eps && (s1Done || l1 > bufs[i]+eps) {
				return i, true
			}
		}
	}
	// Totals said unsatisfied but every layer met its per-layer target:
	// numerical corner (monotone adjustment exceeding raw totals). Top
	// up the base layer; it is always the most valuable.
	return 0, true
}
