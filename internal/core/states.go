package core

import "sort"

// State is one optimal buffer state on the maximally efficient path
// (Figs 8-10): the per-layer buffer targets required to survive K
// backoffs under Scen, made cumulative along the path so that filling
// never implies draining a previously filled layer.
type State struct {
	Scen  Scenario
	K     int
	Layer []float64 // per-layer target, index 0 = base layer
	Total float64   // sum of Layer
	// RawTotal is the formula total before the monotonic adjustment.
	RawTotal float64
}

// StateLadder builds the ordered sequence of optimal buffer states for
// na layers at rate R, covering k = kmin..kmax in both scenarios:
//
//  1. raw states are computed from the Appendix A formulas,
//  2. sorted by increasing total requirement (Fig 9), scenario 1 first
//     on ties (its distribution is the more flexible one),
//  3. per-layer targets are made monotonically non-decreasing along the
//     sequence (the running max), realizing §4.1's constraint that both
//     the total and every layer's buffering only grow while filling
//     (Fig 10).
//
// States whose raw total is zero (k too small to pull R below na·C) are
// omitted. kmin of 0 includes the "finish the current drain" state used
// by the draining allocator when R is already below na·C.
func StateLadder(R float64, na, kmin, kmax int, C, S float64) []State {
	if na <= 0 || kmax < kmin {
		return nil
	}
	var raw []State
	for k := kmin; k <= kmax; k++ {
		for _, sc := range []Scenario{Scenario1, Scenario2} {
			tot := BufTotal(sc, R, na, k, C, S)
			if tot <= 0 {
				continue
			}
			if sc == Scenario2 && BufTotal(Scenario1, R, na, k, C, S) == tot {
				// Identical to the scenario-1 state (k <= k1): skip dup.
				continue
			}
			st := State{Scen: sc, K: k, RawTotal: tot, Layer: make([]float64, na)}
			for i := 0; i < na; i++ {
				st.Layer[i] = BufLayer(sc, R, na, k, i, C, S)
			}
			raw = append(raw, st)
		}
	}
	sort.SliceStable(raw, func(i, j int) bool {
		if raw[i].RawTotal != raw[j].RawTotal {
			return raw[i].RawTotal < raw[j].RawTotal
		}
		return raw[i].Scen < raw[j].Scen
	})
	// Monotonic per-layer adjustment.
	prev := make([]float64, na)
	for idx := range raw {
		tot := 0.0
		for i := 0; i < na; i++ {
			if raw[idx].Layer[i] < prev[i] {
				raw[idx].Layer[i] = prev[i]
			}
			prev[i] = raw[idx].Layer[i]
			tot += raw[idx].Layer[i]
		}
		raw[idx].Total = tot
	}
	return raw
}

// FillTarget implements the paper's per-packet SendPacket scan (§4.1):
// given the current per-layer buffering, it returns the layer whose
// buffer the transmission surplus should currently extend, or ok=false
// when every target up to kmax in both scenarios is satisfied.
//
// The scan finds, in each scenario, the first state whose *total*
// requirement exceeds the available buffering, works toward whichever of
// the two needs less, and fills the lowest layer below its per-layer
// target in that state. While scenario-1 states remain unsatisfied, a
// layer is never filled beyond its next scenario-1 target (the paper's
// clamp keeping scenario-2 allocations inside the scenario-1 envelope).
func FillTarget(R float64, bufs []float64, C, S float64, kmax int) (layer int, ok bool) {
	na := len(bufs)
	if na == 0 {
		return 0, false
	}
	total := 0.0
	for _, b := range bufs {
		total += b
	}

	k1n, bufReq1 := 0, 0.0
	for bufReq1 <= total && k1n < kmax {
		k1n++
		bufReq1 = BufTotal(Scenario1, R, na, k1n, C, S)
	}
	s1Done := bufReq1 <= total // all scenario-1 states up to kmax satisfied

	k2n, bufReq2 := 0, 0.0
	for bufReq2 <= total && k2n < kmax {
		k2n++
		bufReq2 = BufTotal(Scenario2, R, na, k2n, C, S)
	}
	s2Done := bufReq2 <= total

	if s1Done && s2Done {
		return 0, false
	}

	const eps = 1e-9
	workS1 := !s1Done && (s2Done || bufReq1 <= bufReq2)
	for i := 0; i < na; i++ {
		l1 := BufLayer(Scenario1, R, na, k1n, i, C, S)
		l2 := BufLayer(Scenario2, R, na, k2n, i, C, S)
		if workS1 {
			if l1 > bufs[i]+eps {
				return i, true
			}
		} else {
			if l2 > bufs[i]+eps && (s1Done || l1 > bufs[i]+eps) {
				return i, true
			}
		}
	}
	// Totals said unsatisfied but every layer met its per-layer target:
	// numerical corner (monotone adjustment exceeding raw totals). Top
	// up the base layer; it is always the most valuable.
	return 0, true
}
