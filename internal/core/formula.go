package core

import "math"

// The geometry (§2.4, Appendix A): after backoffs drop the transmission
// rate below the total consumption rate na·C, the deficit over time is a
// triangle of height H (the instantaneous rate shortfall) declining to
// zero at slope S. Its area H²/(2S) is the buffering required to keep all
// layers playing. The optimal inter-layer split slices that triangle into
// horizontal bands of thickness C: the bottom band (largest area) belongs
// to the base layer, the next to layer 1, and so on — buffered data in
// low layers stays useful even when higher layers are dropped.

// Band returns the optimal buffer share of layer i for a deficit triangle
// of height H: the area of the i-th horizontal band of thickness C.
// Bands sum exactly to H²/(2S).
func Band(H, C, S float64, i int) float64 {
	if H <= 0 || i < 0 {
		return 0
	}
	lo := float64(i) * C
	if H <= lo {
		return 0
	}
	hi := lo + C
	if H < hi {
		// Partial top band: a small triangle.
		d := H - lo
		return d * d / (2 * S)
	}
	// Full band: trapezoid between levels lo and hi.
	return C * (2*H - (2*float64(i)+1)*C) / (2 * S)
}

// TriangleArea returns the total buffering required to absorb a deficit
// triangle of height H with recovery slope S: H²/(2S).
func TriangleArea(H, S float64) float64 {
	if H <= 0 {
		return 0
	}
	return H * H / (2 * S)
}

// NumBufLayers returns n_b, the minimum number of layers that must hold
// buffering to absorb a deficit of height H (§2.4): ceil(H/C).
func NumBufLayers(H, C float64) int {
	if H <= 0 {
		return 0
	}
	return int(math.Ceil(H/C - 1e-12))
}

// K1 returns the minimum number of backoffs needed to drop rate R below
// the consumption rate naC (Appendix A.4). It is 0 when R is already
// below naC.
func K1(R, naC float64) int {
	if R < naC {
		return 0
	}
	k := 0
	for r := R; r >= naC; r /= 2 {
		k++
		if k > 64 {
			break // R/naC overflow guard; 2^64 halvings never happen
		}
	}
	return k
}

// Scenario identifies one of the two extreme multi-backoff loss patterns
// of §4 (Fig 7): Scenario1 = all k backoffs hit back-to-back at the start
// of the draining phase (needs the most buffering layers); Scenario2 =
// enough immediate backoffs to fall below the consumption rate, then each
// remaining backoff strikes just as the rate climbs back to na·C (needs
// the most total buffering).
type Scenario int

// The two extreme loss scenarios.
const (
	Scenario1 Scenario = 1
	Scenario2 Scenario = 2
)

// BufTotal returns the total buffering required to survive k backoffs
// under the given scenario with na active layers at transmission rate R
// (Appendix A.4). R may be below na·C (mid-drain): the current shortfall
// then counts as the first triangle with k1 = 0.
func BufTotal(s Scenario, R float64, na int, k int, C, S float64) float64 {
	naC := float64(na) * C
	if k < 0 || naC <= 0 {
		return 0
	}
	switch s {
	case Scenario1:
		h := naC - R/math.Pow(2, float64(k))
		return TriangleArea(h, S)
	case Scenario2:
		k1 := K1(R, naC)
		if k < k1 {
			return 0
		}
		first := TriangleArea(naC-R/math.Pow(2, float64(k1)), S)
		rest := float64(k-k1) * TriangleArea(naC/2, S)
		return first + rest
	default:
		panic("core: unknown scenario")
	}
}

// BufLayer returns the maximally efficient buffer share of layer i needed
// to survive k backoffs under the given scenario (Appendix A.5).
func BufLayer(s Scenario, R float64, na, k, i int, C, S float64) float64 {
	naC := float64(na) * C
	if k < 0 || i < 0 || i >= na {
		return 0
	}
	switch s {
	case Scenario1:
		h := naC - R/math.Pow(2, float64(k))
		return Band(h, C, S, i)
	case Scenario2:
		k1 := K1(R, naC)
		if k < k1 {
			return 0
		}
		first := Band(naC-R/math.Pow(2, float64(k1)), C, S, i)
		rest := float64(k-k1) * Band(naC/2, C, S, i)
		return first + rest
	default:
		panic("core: unknown scenario")
	}
}

// AddCondition reports whether §2.1's two conditions to add layer na+1
// hold with k-backoff smoothing (§3.1): the instantaneous rate sustains
// all layers plus the new one, and total buffering survives k backoffs at
// the enlarged consumption rate under whichever extreme scenario demands
// more.
func AddCondition(R float64, na int, totalBuf, C, S float64, k int) bool {
	newC := float64(na+1) * C
	if R < newC {
		return false
	}
	need := math.Max(
		BufTotal(Scenario1, R, na+1, k, C, S),
		BufTotal(Scenario2, R, na+1, k, C, S),
	)
	return totalBuf >= need
}

// DropCount returns how many layers must be dropped under §2.2's rule
// given post-backoff rate R and the per-layer buffer levels bufs (index 0
// = base layer): layers are shed highest-first until the recovery
// triangle fits in the buffering of the *surviving* layers — a dropped
// layer's buffered data no longer assists recovery. The base layer is
// never dropped.
func DropCount(R float64, bufs []float64, C, S float64) int {
	na := len(bufs)
	total := 0.0
	for _, b := range bufs {
		total += b
	}
	drops := 0
	for na-drops > 1 {
		h := float64(na-drops)*C - R
		if TriangleArea(h, S) <= total {
			break
		}
		total -= bufs[na-drops-1]
		drops++
	}
	return drops
}
