package core

import (
	"math"
	"sort"
)

// Non-linear layer spacing (the paper's §7 future work: "quality
// adaptation with a non-linear distribution of bandwidth among layers").
// The geometry of §2.4 generalizes directly: the deficit triangle is
// sliced into horizontal bands whose thicknesses are the individual
// layer rates, bottom band = base layer. All invariants of the linear
// case carry over (bands sum to the triangle area; lower layers hold
// more per unit of rate); what is lost is the paper's closed-form
// n_b and the uniform-step state pictures.
//
// The Controller itself follows the paper's linear analysis; these
// functions provide the generalized planning math for codecs with
// unequal layer rates (e.g. exponentially spaced enhancement layers).

// BandN returns the optimal buffer share of layer i for a deficit
// triangle of height H when layer j consumes rates[j] bytes/s: the area
// of the horizontal band between cumulative rate levels
// sum(rates[:i]) and sum(rates[:i+1]).
func BandN(H float64, rates []float64, S float64, i int) float64 {
	if H <= 0 || i < 0 || i >= len(rates) {
		return 0
	}
	lo := 0.0
	for j := 0; j < i; j++ {
		lo += rates[j]
	}
	hi := lo + rates[i]
	if H <= lo {
		return 0
	}
	if H < hi {
		d := H - lo
		return d * d / (2 * S)
	}
	// Full trapezoid between levels lo and hi.
	return (rates[i] * (2*H - lo - hi)) / (2 * S)
}

// TotalRateN returns the aggregate consumption rate of the layer set.
func TotalRateN(rates []float64) float64 {
	t := 0.0
	for _, r := range rates {
		t += r
	}
	return t
}

// BufTotalN is BufTotal generalized to unequal layer rates.
func BufTotalN(s Scenario, R float64, rates []float64, k int, S float64) float64 {
	naC := TotalRateN(rates)
	if k < 0 || naC <= 0 {
		return 0
	}
	switch s {
	case Scenario1:
		return TriangleArea(naC-R/math.Pow(2, float64(k)), S)
	case Scenario2:
		k1 := K1(R, naC)
		if k < k1 {
			return 0
		}
		first := TriangleArea(naC-R/math.Pow(2, float64(k1)), S)
		return first + float64(k-k1)*TriangleArea(naC/2, S)
	default:
		panic("core: unknown scenario")
	}
}

// BufLayerN is BufLayer generalized to unequal layer rates.
func BufLayerN(s Scenario, R float64, rates []float64, k, i int, S float64) float64 {
	naC := TotalRateN(rates)
	if k < 0 || i < 0 || i >= len(rates) {
		return 0
	}
	switch s {
	case Scenario1:
		return BandN(naC-R/math.Pow(2, float64(k)), rates, S, i)
	case Scenario2:
		k1 := K1(R, naC)
		if k < k1 {
			return 0
		}
		first := BandN(naC-R/math.Pow(2, float64(k1)), rates, S, i)
		return first + float64(k-k1)*BandN(naC/2, rates, S, i)
	default:
		panic("core: unknown scenario")
	}
}

// StateLadderN builds the maximally efficient state sequence for
// unequal layer rates, with the same ordering and per-layer
// monotonicity rules as StateLadder.
func StateLadderN(R float64, rates []float64, kmin, kmax int, S float64) []State {
	na := len(rates)
	if na == 0 || kmax < kmin {
		return nil
	}
	var raw []State
	for k := kmin; k <= kmax; k++ {
		for _, sc := range []Scenario{Scenario1, Scenario2} {
			tot := BufTotalN(sc, R, rates, k, S)
			if tot <= 0 {
				continue
			}
			if sc == Scenario2 && BufTotalN(Scenario1, R, rates, k, S) == tot {
				continue
			}
			st := State{Scen: sc, K: k, RawTotal: tot, Layer: make([]float64, na)}
			for i := 0; i < na; i++ {
				st.Layer[i] = BufLayerN(sc, R, rates, k, i, S)
			}
			raw = append(raw, st)
		}
	}
	sort.SliceStable(raw, func(i, j int) bool {
		if raw[i].RawTotal != raw[j].RawTotal {
			return raw[i].RawTotal < raw[j].RawTotal
		}
		return raw[i].Scen < raw[j].Scen
	})
	prev := make([]float64, na)
	for idx := range raw {
		tot := 0.0
		for i := 0; i < na; i++ {
			if raw[idx].Layer[i] < prev[i] {
				raw[idx].Layer[i] = prev[i]
			}
			prev[i] = raw[idx].Layer[i]
			tot += raw[idx].Layer[i]
		}
		raw[idx].Total = tot
	}
	return raw
}

// DropCountN generalizes §2.2's drop rule to unequal layer rates:
// layers are shed highest-first until the recovery triangle for the
// surviving set fits in the surviving buffering.
func DropCountN(R float64, rates, bufs []float64, S float64) int {
	if len(rates) != len(bufs) {
		panic("core: rates/bufs length mismatch")
	}
	na := len(rates)
	total := 0.0
	cons := TotalRateN(rates)
	for _, b := range bufs {
		total += b
	}
	drops := 0
	for na-drops > 1 {
		h := cons - R
		if TriangleArea(h, S) <= total {
			break
		}
		total -= bufs[na-drops-1]
		cons -= rates[na-drops-1]
		drops++
	}
	return drops
}
