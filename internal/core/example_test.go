package core_test

import (
	"fmt"

	"qav/internal/core"
)

// The deficit triangle after one backoff from 40 KB/s against three
// 10 KB/s layers, and its optimal split across layers (§2.4).
func ExampleBand() {
	const (
		C  = 10_000.0 // per-layer rate, B/s
		S  = 25_000.0 // recovery slope, B/s²
		R  = 40_000.0 // rate before the backoff
		na = 3
	)
	H := float64(na)*C - R/2 // deficit height after halving
	fmt.Printf("deficit %.0f B/s, total buffering %.0f B\n", H, core.TriangleArea(H, S))
	for i := 0; i < na; i++ {
		fmt.Printf("layer %d optimal share: %.0f B\n", i, core.Band(H, C, S, i))
	}
	// Output:
	// deficit 10000 B/s, total buffering 2000 B
	// layer 0 optimal share: 2000 B
	// layer 1 optimal share: 0 B
	// layer 2 optimal share: 0 B
}

// Total buffering needed to ride out k backoffs under the two extreme
// loss scenarios of §4.
func ExampleBufTotal() {
	const (
		C = 10_000.0
		S = 25_000.0
		R = 60_000.0
	)
	for k := 1; k <= 3; k++ {
		s1 := core.BufTotal(core.Scenario1, R, 4, k, C, S)
		s2 := core.BufTotal(core.Scenario2, R, 4, k, C, S)
		fmt.Printf("k=%d: scenario1 %.0f B, scenario2 %.0f B\n", k, s1, s2)
	}
	// Output:
	// k=1: scenario1 2000 B, scenario2 2000 B
	// k=2: scenario1 12500 B, scenario2 10000 B
	// k=3: scenario1 21125 B, scenario2 18000 B
}

// A controller integrated with a custom transport: the four calls of
// the public API.
func ExampleController() {
	ctrl, err := core.NewController(core.Params{
		C: 1_000, Kmax: 2, MaxLayers: 4, StartupSec: 0.2,
	})
	if err != nil {
		panic(err)
	}
	now, rate, slope := 0.0, 3_500.0, 20_000.0
	for i := 0; i < 3000; i++ {
		layer := ctrl.PickLayer(now, rate, slope, 500)
		ctrl.OnDelivered(now, layer, 500) // pretend instant delivery
		now += 500 / rate
	}
	fmt.Printf("layers after warmup: %d, playing: %v\n", ctrl.ActiveLayers(), ctrl.Playing())
	ctrl.OnBackoff(now, 100, 2) // catastrophic collapse
	fmt.Printf("layers after collapse: %d\n", ctrl.ActiveLayers())
	// Output:
	// layers after warmup: 3, playing: true
	// layers after collapse: 1
}
