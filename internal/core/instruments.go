package core

import "qav/internal/metrics"

// Instruments are the metric handles the quality adaptation controller
// records through. Record sites live in the controller's event sink and
// are nil-guarded, so an uninstrumented controller pays one branch per
// decision event (not per packet).
type Instruments struct {
	// Adds counts layers added; Drops counts layers dropped (all causes).
	Adds  *metrics.Counter
	Drops *metrics.Counter
	// CriticalDrops counts drops forced by critical situations (§2.2's
	// persistent drain-plan infeasibility), a subset of Drops.
	CriticalDrops *metrics.Counter
	// PoorDistDrops counts drops where total buffering would have covered
	// the recovery but its distribution did not (Table 2's metric).
	PoorDistDrops *metrics.Counter
	// Backoffs counts congestion backoffs reported to the controller.
	Backoffs *metrics.Counter
	// Stalls counts base-layer underflow playback pauses.
	Stalls *metrics.Counter
}

// NewInstruments registers controller instruments on reg under prefix
// (e.g. prefix "qa" yields "qa.adds", ...). Controllers sharing a
// prefix share aggregated instruments.
func NewInstruments(reg *metrics.Registry, prefix string) *Instruments {
	return &Instruments{
		Adds:          reg.Counter(prefix + ".adds"),
		Drops:         reg.Counter(prefix + ".drops"),
		CriticalDrops: reg.Counter(prefix + ".drops.critical"),
		PoorDistDrops: reg.Counter(prefix + ".drops.poordist"),
		Backoffs:      reg.Counter(prefix + ".backoffs"),
		Stalls:        reg.Counter(prefix + ".stalls"),
	}
}

// Instrument attaches ins and publishes the controller's quality state
// on reg under the same prefix as snapshot-time Func metrics. Call
// before the simulation starts.
func (c *Controller) Instrument(reg *metrics.Registry, prefix string, ins *Instruments) {
	c.ins = ins
	reg.GaugeFunc(prefix+".layers", func() float64 { return float64(c.na) })
	reg.GaugeFunc(prefix+".buftotal", func() float64 { return c.TotalBuf() })
	reg.GaugeFunc(prefix+".played.sec", func() float64 { return c.PlayedSec })
	reg.GaugeFunc(prefix+".stalled.sec", func() float64 { return c.StallSec })
	reg.GaugeFunc(prefix+".layers.mean", func() float64 {
		if c.PlayedSec <= 0 {
			return 0
		}
		return c.LayerSeconds / c.PlayedSec
	})
}

// record forwards a decision event to the attached instruments, if any.
func (c *Controller) record(e Event) {
	if c.ins == nil {
		return
	}
	switch e.Kind {
	case EvAddLayer:
		c.ins.Adds.Inc()
	case EvDropLayer:
		c.ins.Drops.Inc()
		if e.Critical {
			c.ins.CriticalDrops.Inc()
		}
		if e.PoorDist {
			c.ins.PoorDistDrops.Inc()
		}
	case EvBackoff:
		c.ins.Backoffs.Inc()
	case EvStallStart:
		c.ins.Stalls.Inc()
	}
}
