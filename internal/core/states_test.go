package core

import (
	"math"
	"testing"
	"testing/quick"
)

func TestStateLadderAscendingAndMonotone(t *testing.T) {
	f := func(rRaw uint16, naRaw, kRaw uint8) bool {
		R := float64(rRaw) + 500
		na := int(naRaw)%6 + 1
		kmax := int(kRaw)%8 + 1
		ladder := StateLadder(R, na, 1, kmax, tC, tS)
		prevTotal := 0.0
		prev := make([]float64, na)
		for _, st := range ladder {
			if st.Total < prevTotal-1e-9 {
				return false // totals must ascend
			}
			sum := 0.0
			for i := 0; i < na; i++ {
				if st.Layer[i] < prev[i]-1e-9 {
					return false // per-layer targets must never shrink
				}
				prev[i] = st.Layer[i]
				sum += st.Layer[i]
			}
			if !almostEq(sum, st.Total, 1e-6*math.Max(1, st.Total)) {
				return false
			}
			prevTotal = st.Total
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStateLadderCoversBothScenarios(t *testing.T) {
	// R=8000, na=4, Kmax=3: k1=2, so scenario-2 states for k=3 differ
	// from scenario 1 and must both appear.
	ladder := StateLadder(8000, 4, 1, 3, tC, tS)
	has := map[Scenario]int{}
	for _, st := range ladder {
		has[st.Scen]++
	}
	if has[Scenario1] == 0 || has[Scenario2] == 0 {
		t.Fatalf("ladder missing a scenario: %+v", has)
	}
	// States below k1 (zero requirement) are omitted.
	for _, st := range ladder {
		if st.RawTotal <= 0 {
			t.Fatalf("zero-requirement state present: %+v", st)
		}
	}
}

func TestStateLadderDropsScenario2Duplicates(t *testing.T) {
	// k <= k1 makes the two scenarios identical; only one copy belongs.
	ladder := StateLadder(3000, 2, 1, 1, tC, tS) // k1(3000,2000)=1
	if len(ladder) != 1 {
		t.Fatalf("ladder has %d states, want 1 (k=1 duplicate removed)", len(ladder))
	}
	if ladder[0].Scen != Scenario1 {
		t.Fatalf("surviving state is %v, want scenario 1", ladder[0].Scen)
	}
}

func TestStateLadderBaseLayerAlwaysLargest(t *testing.T) {
	f := func(rRaw uint16, naRaw uint8) bool {
		R := float64(rRaw) + 500
		na := int(naRaw)%6 + 1
		for _, st := range StateLadder(R, na, 1, 5, tC, tS) {
			for i := 1; i < na; i++ {
				if st.Layer[i] > st.Layer[i-1]+1e-9 {
					return false // lower layers get more protection
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Simulate the sequential filling process: repeatedly pour a small
// increment into the layer FillTarget selects and verify the invariants
// the paper's Figs 5 and 10 promise.
func TestFillTargetSequentialFilling(t *testing.T) {
	const (
		R    = 6000.0
		na   = 4
		kmax = 3
		inc  = 25.0
	)
	bufs := make([]float64, na)
	var firstNonZero []int // order in which layers first receive data
	seen := make([]bool, na)

	for step := 0; step < 100000; step++ {
		layer, ok := FillTarget(R, bufs, tC, tS, kmax)
		if !ok {
			break
		}
		if layer < 0 || layer >= na {
			t.Fatalf("FillTarget returned out-of-range layer %d", layer)
		}
		if !seen[layer] {
			seen[layer] = true
			firstNonZero = append(firstNonZero, layer)
		}
		bufs[layer] += inc
	}

	// Filling must terminate.
	if _, ok := FillTarget(R, bufs, tC, tS, kmax); ok {
		t.Fatal("filling did not terminate")
	}
	// The base layer is filled first.
	if len(firstNonZero) == 0 || firstNonZero[0] != 0 {
		t.Fatalf("first filled layer = %v, want base layer first", firstNonZero)
	}
	// Layers begin receiving data in bottom-up order.
	for i := 1; i < len(firstNonZero); i++ {
		if firstNonZero[i] < firstNonZero[i-1] {
			t.Fatalf("layers first touched out of order: %v", firstNonZero)
		}
	}
	// Every target for k <= kmax in both scenarios is now satisfied.
	for k := 1; k <= kmax; k++ {
		for _, sc := range []Scenario{Scenario1, Scenario2} {
			for i := 0; i < na; i++ {
				want := BufLayer(sc, R, na, k, i, tC, tS)
				if bufs[i]+inc < want {
					t.Fatalf("layer %d buf %.0f misses %v k=%d target %.0f", i, bufs[i], sc, k, want)
				}
			}
		}
	}
	// No wild overfill: total is within one increment per layer of the
	// final ladder total.
	ladder := StateLadder(R, na, 1, kmax, tC, tS)
	finalTotal := ladder[len(ladder)-1].Total
	got := 0.0
	for _, b := range bufs {
		got += b
	}
	if got > finalTotal+float64(na)*inc {
		t.Fatalf("overfilled: %v > ladder max %v", got, finalTotal)
	}
}

// While scenario-1 states remain unsatisfied, filling for a scenario-2
// goal must not push a layer beyond its next scenario-1 target.
func TestFillTargetScenario2Clamp(t *testing.T) {
	const (
		R    = 8000.0 // k1 = 2 for naC = 4000
		na   = 4
		kmax = 5
		inc  = 10.0
	)
	bufs := make([]float64, na)
	for step := 0; step < 300000; step++ {
		layer, ok := FillTarget(R, bufs, tC, tS, kmax)
		if !ok {
			break
		}
		bufs[layer] += inc

		// Invariant: whenever a layer holds data, either some prior
		// state justifies it or it is within the scenario-1 envelope at
		// the *final* k (the loosest clamp the paper allows).
		for i := 0; i < na; i++ {
			s1Env := BufLayer(Scenario1, R, na, kmax, i, tC, tS)
			s2Env := BufLayer(Scenario2, R, na, kmax, i, tC, tS)
			env := math.Max(s1Env, s2Env)
			if bufs[i] > env+inc {
				t.Fatalf("step %d: layer %d buf %.0f exceeds envelope %.0f", step, i, bufs[i], env)
			}
		}
	}
}

func TestFillTargetEmpty(t *testing.T) {
	if _, ok := FillTarget(5000, nil, tC, tS, 2); ok {
		t.Fatal("no layers: nothing to fill")
	}
	// Zero buffers always need filling (given R above consumption).
	layer, ok := FillTarget(5000, []float64{0, 0}, tC, tS, 2)
	if !ok || layer != 0 {
		t.Fatalf("zero buffers: got (%d,%v), want (0,true)", layer, ok)
	}
}

func TestDrainPlanBasics(t *testing.T) {
	R, na := 2000.0, 3 // naC=3000, draining
	ladder := StateLadder(R, na, 0, 2, tC, tS)
	bufs := []float64{4000, 2500, 1000}

	drains, unmet := DrainPlan(ladder, bufs, 500, 1000)
	if unmet != 0 {
		t.Fatalf("unmet = %v, want 0", unmet)
	}
	sum := 0.0
	for i, d := range drains {
		if d < 0 {
			t.Fatalf("negative drain on layer %d", i)
		}
		if d > 1000 {
			t.Fatalf("layer %d drains %v > per-layer cap", i, d)
		}
		if d > bufs[i] {
			t.Fatalf("layer %d drains more than it holds", i)
		}
		sum += d
	}
	if !almostEq(sum, 500, 1e-9) {
		t.Fatalf("total drained %v, want 500", sum)
	}
}

func TestDrainPlanPrefersHigherLayers(t *testing.T) {
	// Plenty everywhere: the drain should come from the top layer first
	// (reverse of the fill order).
	R, na := 2000.0, 3
	ladder := StateLadder(R, na, 0, 2, tC, tS)
	bufs := []float64{50000, 50000, 50000}
	drains, _ := DrainPlan(ladder, bufs, 300, 1000)
	if drains[2] != 300 || drains[0] != 0 || drains[1] != 0 {
		t.Fatalf("drains = %v, want all 300 from the top layer", drains)
	}
}

func TestDrainPlanRespectsFloors(t *testing.T) {
	R, na := 2000.0, 3
	ladder := StateLadder(R, na, 0, 2, tC, tS)
	if len(ladder) == 0 {
		t.Fatal("empty ladder")
	}
	// Buffers exactly at the top state's targets: draining a small amount
	// must not take any layer below the *previous* state's target.
	top := ladder[len(ladder)-1]
	bufs := make([]float64, na)
	copy(bufs, top.Layer)
	var prev []float64
	prevTotal := 0.0
	if len(ladder) >= 2 {
		prev = ladder[len(ladder)-2].Layer
		prevTotal = ladder[len(ladder)-2].Total
	} else {
		prev = make([]float64, na)
	}
	// Drain only half the headroom between the top two states, so the
	// previous state's floors must hold exactly.
	need := (top.Total - prevTotal) / 2
	if need <= 0 {
		t.Skip("degenerate ladder: top two states coincide")
	}
	drains, unmet := DrainPlan(ladder, bufs, need, top.Total)
	if unmet != 0 {
		t.Fatalf("unmet = %v", unmet)
	}
	for i := range drains {
		if bufs[i]-drains[i] < prev[i]-1e-9 {
			t.Fatalf("layer %d drained below previous state floor", i)
		}
	}
}

func TestDrainPlanUnmet(t *testing.T) {
	R, na := 500.0, 2
	ladder := StateLadder(R, na, 0, 2, tC, tS)
	// Nearly empty buffers: a large need cannot be met.
	drains, unmet := DrainPlan(ladder, []float64{50, 10}, 500, 1000)
	if unmet <= 0 {
		t.Fatalf("expected unmet demand, got drains=%v unmet=%v", drains, unmet)
	}
	if !almostEq(drains[0]+drains[1]+unmet, 500, 1e-9) {
		t.Fatal("drained + unmet must equal need")
	}
}

func TestDrainPlanZeroNeed(t *testing.T) {
	drains, unmet := DrainPlan(nil, []float64{100, 100}, 0, 50)
	if unmet != 0 || drains[0] != 0 || drains[1] != 0 {
		t.Fatalf("zero need produced work: %v %v", drains, unmet)
	}
}

// Conservation property: drained total + unmet always equals need, no
// layer exceeds its buffer or the per-layer cap.
func TestDrainPlanConservationProperty(t *testing.T) {
	f := func(b0, b1, b2 uint16, needRaw uint16) bool {
		bufs := []float64{float64(b0), float64(b1), float64(b2)}
		need := float64(needRaw)
		ladder := StateLadder(1500, 3, 0, 3, tC, tS)
		drains, unmet := DrainPlan(ladder, bufs, need, 800)
		sum := 0.0
		for i, d := range drains {
			if d < -1e-9 || d > bufs[i]+1e-9 || d > 800+1e-9 {
				return false
			}
			sum += d
		}
		return almostEq(sum+unmet, need, 1e-6) && unmet >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
