package core

// EventKind classifies controller events.
type EventKind int

// Controller event kinds.
const (
	// EvPlayStart marks the beginning of playback (startup buffering met).
	EvPlayStart EventKind = iota
	// EvAddLayer marks a layer addition (§2.1 conditions satisfied).
	EvAddLayer
	// EvDropLayer marks a layer drop (backoff rule or critical situation).
	EvDropLayer
	// EvBackoff records a congestion backoff seen by the controller.
	EvBackoff
	// EvStallStart marks a base-layer underflow pausing playback.
	EvStallStart
	// EvStallEnd marks playback resuming after a stall.
	EvStallEnd
)

func (k EventKind) String() string {
	switch k {
	case EvPlayStart:
		return "play"
	case EvAddLayer:
		return "add"
	case EvDropLayer:
		return "drop"
	case EvBackoff:
		return "backoff"
	case EvStallStart:
		return "stall"
	case EvStallEnd:
		return "resume"
	default:
		return "?"
	}
}

// Event is one controller decision or observation, the raw material for
// the paper's Table 1 (buffering efficiency) and Table 2 (drops due to
// poor buffer distribution).
type Event struct {
	Time  float64
	Kind  EventKind
	Layer int // layer index affected (add/drop events)
	Rate  float64

	// Drop-event details.
	BufDrop  float64 // buffering held by the dropped layer
	BufTotal float64 // total buffering across all layers just before drop
	// PoorDist marks a drop that occurred although total buffering was
	// sufficient for recovery — the distribution made it unusable.
	PoorDist bool
	// Critical marks a §2.2 "critical situation" drop (mid-drain), as
	// opposed to the immediate post-backoff rule.
	Critical bool
}
