package core

import (
	"math"
	"testing"
	"testing/quick"
)

const (
	tC = 1000.0  // bytes/s per layer
	tS = 20000.0 // bytes/s²
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestBandBasicGeometry(t *testing.T) {
	// H = 2.5 layers worth of deficit: three buffering layers.
	H := 2.5 * tC
	if got := NumBufLayers(H, tC); got != 3 {
		t.Fatalf("NumBufLayers = %d, want 3", got)
	}
	b0 := Band(H, tC, tS, 0)
	b1 := Band(H, tC, tS, 1)
	b2 := Band(H, tC, tS, 2)
	b3 := Band(H, tC, tS, 3)
	if b3 != 0 {
		t.Fatalf("band above n_b = %v, want 0", b3)
	}
	if !(b0 > b1 && b1 > b2 && b2 > 0) {
		t.Fatalf("bands not decreasing: %v %v %v", b0, b1, b2)
	}
	// Top band is a pure triangle of height 0.5C.
	wantTop := (0.5 * tC) * (0.5 * tC) / (2 * tS)
	if !almostEq(b2, wantTop, 1e-9) {
		t.Fatalf("top band = %v, want %v", b2, wantTop)
	}
}

func TestBandsSumToTriangle(t *testing.T) {
	f := func(hRaw uint16) bool {
		H := float64(hRaw) // 0..65535 bytes/s deficit
		sum := 0.0
		for i := 0; i <= NumBufLayers(H, tC); i++ {
			sum += Band(H, tC, tS, i)
		}
		return almostEq(sum, TriangleArea(H, tS), 1e-6*math.Max(1, TriangleArea(H, tS)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBandMonotoneDecreasing(t *testing.T) {
	f := func(hRaw uint16) bool {
		H := float64(hRaw)
		prev := math.Inf(1)
		for i := 0; i < 70; i++ {
			b := Band(H, tC, tS, i)
			if b > prev+1e-9 {
				return false
			}
			prev = b
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBandEdgeCases(t *testing.T) {
	if Band(0, tC, tS, 0) != 0 {
		t.Error("zero deficit should need zero buffering")
	}
	if Band(-5, tC, tS, 0) != 0 {
		t.Error("negative deficit should need zero buffering")
	}
	if Band(500, tC, tS, -1) != 0 {
		t.Error("negative layer index should yield zero")
	}
	// Exactly one full band.
	H := tC
	if !almostEq(Band(H, tC, tS, 0), TriangleArea(H, tS), 1e-9) {
		t.Error("single-band deficit should be entirely the base layer's")
	}
	if Band(H, tC, tS, 1) != 0 {
		t.Error("layer 1 should hold nothing for a one-band deficit")
	}
}

func TestK1(t *testing.T) {
	cases := []struct {
		R, naC float64
		want   int
	}{
		{1000, 2000, 0},  // already below
		{2000, 2000, 1},  // equal: one halving needed (strictly below)
		{3000, 2000, 1},  // one halving: 1500 < 2000
		{4000, 2000, 2},  // 4000->2000->1000
		{16000, 2000, 4}, // 16->8->4->2->1 (strict)
		{15000, 2000, 3},
	}
	for _, c := range cases {
		if got := K1(c.R, c.naC); got != c.want {
			t.Errorf("K1(%v, %v) = %d, want %d", c.R, c.naC, got, c.want)
		}
	}
}

func TestBufTotalScenario1(t *testing.T) {
	// na=3, R=4000: one backoff leaves 2000 < 3000 -> H=1000.
	got := BufTotal(Scenario1, 4000, 3, 1, tC, tS)
	want := TriangleArea(3000-2000, tS)
	if !almostEq(got, want, 1e-9) {
		t.Fatalf("BufTotal s1 k=1 = %v, want %v", got, want)
	}
	// k=0 with R above consumption: no buffering needed.
	if BufTotal(Scenario1, 4000, 3, 0, tC, tS) != 0 {
		t.Fatal("no backoffs above consumption rate should need zero buffer")
	}
	// k below k1: rate stays above consumption.
	if BufTotal(Scenario1, 16000, 3, 1, tC, tS) != 0 {
		t.Fatal("one backoff from 16000 stays above 3000; want zero")
	}
}

func TestBufTotalScenario2Decomposition(t *testing.T) {
	// na=3 (naC=3000), R=4000, k=3: k1=1 (2000<3000), first triangle
	// height 1000, then two sequential triangles of height 1500.
	got := BufTotal(Scenario2, 4000, 3, 3, tC, tS)
	want := TriangleArea(1000, tS) + 2*TriangleArea(1500, tS)
	if !almostEq(got, want, 1e-9) {
		t.Fatalf("BufTotal s2 = %v, want %v", got, want)
	}
	// Scenarios agree at k = k1.
	s1 := BufTotal(Scenario1, 4000, 3, 1, tC, tS)
	s2 := BufTotal(Scenario2, 4000, 3, 1, tC, tS)
	if !almostEq(s1, s2, 1e-9) {
		t.Fatalf("scenarios differ at k=k1: %v vs %v", s1, s2)
	}
}

func TestBufTotalMonotoneInK(t *testing.T) {
	f := func(rRaw uint16, naRaw, kRaw uint8) bool {
		R := float64(rRaw) + 1
		na := int(naRaw)%6 + 1
		kmax := int(kRaw)%10 + 1
		for _, sc := range []Scenario{Scenario1, Scenario2} {
			prev := -1.0
			for k := 0; k <= kmax; k++ {
				tot := BufTotal(sc, R, na, k, tC, tS)
				if tot < prev-1e-9 {
					return false
				}
				prev = tot
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBufLayerSumsToTotal(t *testing.T) {
	f := func(rRaw uint16, naRaw, kRaw uint8) bool {
		R := float64(rRaw) + 1
		na := int(naRaw)%6 + 1
		k := int(kRaw) % 8
		for _, sc := range []Scenario{Scenario1, Scenario2} {
			tot := BufTotal(sc, R, na, k, tC, tS)
			sum := 0.0
			for i := 0; i < na; i++ {
				sum += BufLayer(sc, R, na, k, i, tC, tS)
			}
			// Per-layer shares can sum to less than the total when the
			// deficit needs more buffering layers than exist (n_b > na);
			// never more.
			if sum > tot+1e-6 {
				return false
			}
			naC := float64(na) * tC
			var H float64
			if sc == Scenario1 {
				H = naC - R/math.Pow(2, float64(k))
			} else {
				H = math.Max(naC-R/math.Pow(2, float64(K1(R, naC))), naC/2)
			}
			if NumBufLayers(H, tC) <= na && !almostEq(sum, tot, 1e-6*math.Max(1, tot)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestScenario1NeedsMoreBufferingLayers(t *testing.T) {
	// The paper's key observation (§4): scenario 1 spreads buffering over
	// more layers; scenario 2 concentrates more total in fewer layers.
	R, na, k := 8000.0, 4, 3
	nb1, nb2 := 0, 0
	for i := 0; i < na; i++ {
		if BufLayer(Scenario1, R, na, k, i, tC, tS) > 0 {
			nb1++
		}
		if BufLayer(Scenario2, R, na, k, i, tC, tS) > 0 {
			nb2++
		}
	}
	if nb1 < nb2 {
		t.Fatalf("scenario 1 uses %d buffering layers < scenario 2's %d", nb1, nb2)
	}
}

func TestAddCondition(t *testing.T) {
	// R comfortably above (na+1)C and plenty of buffer: addable.
	if !AddCondition(5000, 3, 1e9, tC, tS, 1) {
		t.Fatal("should add with huge buffer and sufficient rate")
	}
	// Rate below (na+1)C: never.
	if AddCondition(3500, 3, 1e9, tC, tS, 1) {
		t.Fatal("must not add when R < (na+1)C")
	}
	// Rate fine but buffer short of the k=1 requirement for na+1 layers.
	need := BufTotal(Scenario1, 5000, 4, 1, tC, tS)
	if AddCondition(5000, 3, need-1, tC, tS, 1) {
		t.Fatal("must not add just below the buffer requirement")
	}
	if !AddCondition(5000, 3, need, tC, tS, 1) {
		t.Fatal("should add exactly at the buffer requirement")
	}
}

func TestDropCount(t *testing.T) {
	// Post-backoff R=1000, 4 layers (naC=4000), no buffering at all:
	// required triangle for na layers is (na*1000-1000)²/2S; with zero
	// buffer we must drop down to the base layer.
	if got := DropCount(1000, []float64{0, 0, 0, 0}, tC, tS); got != 3 {
		t.Fatalf("DropCount zero-buffer = %d, want 3", got)
	}
	// Massive buffering: no drops.
	if got := DropCount(1000, []float64{1e9, 0, 0, 0}, tC, tS); got != 0 {
		t.Fatalf("DropCount huge-buffer = %d, want 0", got)
	}
	// Buffer exactly the 4-layer requirement: no drops.
	need4 := TriangleArea(4*tC-1000, tS)
	if got := DropCount(1000, []float64{need4, 0, 0, 0}, tC, tS); got != 0 {
		t.Fatalf("DropCount exact requirement = %d, want 0", got)
	}
	// §2.2 is a *total*-buffering criterion: even if all the buffering
	// sits in the top layer, no immediate drop is required (the misuse
	// surfaces later as a critical situation / poor-distribution drop).
	if got := DropCount(1000, []float64{0, 0, 0, need4}, tC, tS); got != 0 {
		t.Fatalf("DropCount top-heavy-but-sufficient = %d, want 0", got)
	}
	// Cascade: top layer holds slightly too little; dropping it discards
	// that buffer, so the insufficiency cascades down to the next check.
	need3after := TriangleArea(3*tC-1000, tS)
	bufs := []float64{need3after, 0, 0, need4 - need3after - 1}
	if got := DropCount(1000, bufs, tC, tS); got != 1 {
		t.Fatalf("DropCount cascade = %d, want 1", got)
	}
	// Everything in the doomed top layer: cascades all the way down.
	if got := DropCount(1000, []float64{0, 0, 0, need4 - 1}, tC, tS); got != 3 {
		t.Fatalf("DropCount full cascade = %d, want 3", got)
	}
}

func TestTriangleArea(t *testing.T) {
	if TriangleArea(0, tS) != 0 || TriangleArea(-1, tS) != 0 {
		t.Fatal("non-positive deficits need no buffering")
	}
	if !almostEq(TriangleArea(2000, tS), 2000*2000/(2*tS), 1e-9) {
		t.Fatal("triangle area formula mismatch")
	}
}
