package core

import (
	"math"
	"testing"
	"testing/quick"
)

func ratesFrom(raw []uint8, n int) []float64 {
	rates := make([]float64, n)
	for i := range rates {
		v := 100.0
		if i < len(raw) {
			v = float64(raw[i]) + 100
		}
		rates[i] = v * 10
	}
	return rates
}

func TestBandNReducesToLinear(t *testing.T) {
	rates := []float64{tC, tC, tC, tC}
	f := func(hRaw uint16) bool {
		H := float64(hRaw)
		for i := 0; i < 4; i++ {
			if !almostEq(BandN(H, rates, tS, i), Band(H, tC, tS, i), 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBandNSumsToTriangle(t *testing.T) {
	f := func(hRaw uint16, raw []uint8) bool {
		rates := ratesFrom(raw, 5)
		H := math.Min(float64(hRaw), TotalRateN(rates)) // within the layer stack
		sum := 0.0
		for i := range rates {
			sum += BandN(H, rates, tS, i)
		}
		want := TriangleArea(H, tS)
		return almostEq(sum, want, 1e-6*math.Max(1, want))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBandNExponentialSpacing(t *testing.T) {
	// Exponentially spaced layers: 1000, 2000, 4000, 8000 B/s.
	rates := []float64{1000, 2000, 4000, 8000}
	H := 6000.0 // reaches into layer 2
	b0 := BandN(H, rates, tS, 0)
	b1 := BandN(H, rates, tS, 1)
	b2 := BandN(H, rates, tS, 2)
	b3 := BandN(H, rates, tS, 3)
	if b3 != 0 {
		t.Fatalf("layer above the deficit has buffer %v", b3)
	}
	// Band 2 is a partial triangle of height 3000.
	if !almostEq(b2, 3000*3000/(2*tS), 1e-9) {
		t.Fatalf("partial band = %v", b2)
	}
	// Per unit of rate, lower layers hold at least as much (longer
	// draining durations).
	if b0/rates[0] < b1/rates[1] || b1/rates[1] < b2/rates[2] {
		t.Fatalf("per-rate protection not decreasing: %v %v %v",
			b0/rates[0], b1/rates[1], b2/rates[2])
	}
}

func TestBufTotalNMatchesLinear(t *testing.T) {
	rates := []float64{tC, tC, tC}
	for _, sc := range []Scenario{Scenario1, Scenario2} {
		for k := 0; k < 6; k++ {
			got := BufTotalN(sc, 4000, rates, k, tS)
			want := BufTotal(sc, 4000, 3, k, tC, tS)
			if !almostEq(got, want, 1e-9) {
				t.Fatalf("%v k=%d: %v != %v", sc, k, got, want)
			}
		}
	}
}

func TestBufLayerNSumsToTotal(t *testing.T) {
	f := func(rRaw uint16, kRaw, raw uint8) bool {
		rates := ratesFrom([]uint8{raw, raw / 2, raw / 3}, 3)
		R := float64(rRaw) + 1
		k := int(kRaw) % 6
		for _, sc := range []Scenario{Scenario1, Scenario2} {
			tot := BufTotalN(sc, R, rates, k, tS)
			sum := 0.0
			for i := range rates {
				sum += BufLayerN(sc, R, rates, k, i, tS)
			}
			if sum > tot+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStateLadderNMonotone(t *testing.T) {
	rates := []float64{2000, 1000, 500, 250}
	ladder := StateLadderN(6000, rates, 1, 5, tS)
	if len(ladder) == 0 {
		t.Fatal("empty ladder")
	}
	prevTotal := 0.0
	prev := make([]float64, len(rates))
	for _, st := range ladder {
		if st.Total < prevTotal-1e-9 {
			t.Fatalf("totals not ascending: %v < %v", st.Total, prevTotal)
		}
		for i, v := range st.Layer {
			if v < prev[i]-1e-9 {
				t.Fatalf("layer %d target shrank", i)
			}
			prev[i] = v
		}
		prevTotal = st.Total
	}
}

func TestStateLadderNWorksWithDrainPlan(t *testing.T) {
	// The generalized ladder plugs straight into the drain allocator.
	rates := []float64{2000, 1000, 500}
	ladder := StateLadderN(2500, rates, 0, 3, tS)
	bufs := []float64{5000, 2500, 1200}
	drains, unmet := DrainPlan(ladder, bufs, 400, 600)
	if unmet != 0 {
		t.Fatalf("unmet = %v", unmet)
	}
	sum := 0.0
	for _, d := range drains {
		sum += d
	}
	if !almostEq(sum, 400, 1e-9) {
		t.Fatalf("drained %v, want 400", sum)
	}
}

func TestDropCountN(t *testing.T) {
	rates := []float64{1000, 2000, 4000}
	// R=500 against 7000 consumption with no buffer: drop to base.
	if got := DropCountN(500, rates, []float64{0, 0, 0}, tS); got != 2 {
		t.Fatalf("DropCountN = %d, want 2", got)
	}
	// Huge base buffer: nothing dropped.
	if got := DropCountN(500, rates, []float64{1e9, 0, 0}, tS); got != 0 {
		t.Fatalf("DropCountN = %d, want 0", got)
	}
	// Mismatched lengths panic.
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched lengths did not panic")
		}
	}()
	DropCountN(500, rates, []float64{0}, tS)
}

func TestDropCountNMatchesLinear(t *testing.T) {
	f := func(rRaw uint16, b0, b1, b2 uint16) bool {
		rates := []float64{tC, tC, tC}
		bufs := []float64{float64(b0), float64(b1), float64(b2)}
		return DropCountN(float64(rRaw), rates, bufs, tS) ==
			DropCount(float64(rRaw), bufs, tC, tS)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
