package core

// DrainPlan distributes need bytes of buffer draining across layers for
// one planning horizon, realizing §4.2: the maximally efficient path is
// walked in reverse, so the highest layers' buffers are drained first,
// no layer is drained below its share at the preceding optimal state,
// and no layer is drained faster than it can be consumed (maxPerLayer =
// C × horizon bytes).
//
// ladder must be ascending (as returned by StateLadder). The returned
// drains has len(bufs) entries; unmet is the portion of need that could
// not be covered even after draining every layer to zero at full
// consumption rate — a critical situation (§2.2) requiring layer drops.
func DrainPlan(ladder []State, bufs []float64, need, maxPerLayer float64) (drains []float64, unmet float64) {
	return DrainPlanInto(nil, ladder, bufs, need, maxPerLayer)
}

// DrainPlanInto is DrainPlan writing into dst when its capacity
// suffices, so a per-tick caller reuses one buffer instead of
// allocating a plan per recomputation. The result aliases dst.
func DrainPlanInto(dst []float64, ladder []State, bufs []float64, need, maxPerLayer float64) (drains []float64, unmet float64) {
	na := len(bufs)
	if cap(dst) >= na {
		drains = dst[:na]
		for i := range drains {
			drains[i] = 0
		}
	} else {
		drains = make([]float64, na)
	}
	if need <= 0 {
		return drains, 0
	}
	// Pass floors from the top state down to zero floors; passes whose
	// floors the buffers already sit below contribute nothing, so the
	// walk implicitly starts at the current position on the path.
	for m := len(ladder); m >= 0 && need > 0; m-- {
		var floors []float64
		if m > 0 {
			floors = ladder[m-1].Layer
		}
		for i := na - 1; i >= 0 && need > 0; i-- {
			floor := 0.0
			if floors != nil && i < len(floors) {
				floor = floors[i]
			}
			avail := bufs[i] - drains[i] - floor
			if avail <= 0 {
				continue
			}
			room := maxPerLayer - drains[i]
			if room <= 0 {
				continue
			}
			take := avail
			if take > room {
				take = room
			}
			if take > need {
				take = need
			}
			drains[i] += take
			need -= take
		}
	}
	return drains, need
}
