package core

import (
	"fmt"
	"math"
)

// Controller is the server-side quality adaptation engine. It tracks the
// receiver's per-layer buffering (from delivery acknowledgements and the
// playout clock), decides when layers are added and dropped, and assigns
// each outgoing packet to a layer so that buffers follow the maximally
// efficient path during filling and are drained along the same path in
// reverse.
//
// The controller is clock-agnostic: all methods take the current time,
// so it runs unchanged in the simulator and over real UDP. It is not
// goroutine-safe.
type Controller struct {
	P Params

	na   int       // active layers
	bufs []float64 // estimated receiver buffering per active layer, bytes

	playing bool
	stalled bool

	lastTick float64
	credits  []float64

	// Cached allocation (recomputed on every Tick).
	shares []float64 // per-layer network share, bytes/s

	// Scratch buffers reused across allocation recomputations: the
	// draining planner runs on every backoff, and a long-lived serving
	// session must not allocate there.
	ladder    []State
	drainsBuf []float64

	rate  float64 // last known transmission rate
	slope float64 // last known additive-increase slope

	// arrears accumulates consumption bytes the drain plan could not
	// cover; a critical-situation drop requires persistent shortfall,
	// not a single infeasible planning horizon.
	arrears float64
	tickDt  float64 // duration covered by the current Tick

	// lastChange is the time of the most recent add/drop/play event,
	// for AddSpacing enforcement.
	lastChange float64

	// Allocation cache: shares are recomputed at most every
	// PlanHorizon/5 (or immediately after add/drop/backoff or a rate
	// swing), not on every packet.
	lastAlloc     float64
	lastAllocRate float64
	allocDirty    bool

	// Events is the append-only decision log.
	Events []Event

	// ins, when set via Instrument, receives decision events as counter
	// increments. Nil on uninstrumented controllers.
	ins *Instruments

	// Cumulative quality/playback statistics.
	StallSec     float64
	stallBegin   float64
	PlayedSec    float64
	LayerSeconds float64 // integral of active layer count over played time
}

// NewController returns a controller with one active (base) layer and
// empty buffers.
func NewController(p Params) (*Controller, error) {
	p.setDefaults()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Controller{
		P:       p,
		na:      1,
		bufs:    make([]float64, 1),
		credits: make([]float64, 1),
		shares:  make([]float64, 1),
	}, nil
}

// ActiveLayers returns the number of currently active layers.
func (c *Controller) ActiveLayers() int { return c.na }

// Playing reports whether playback has started and is not stalled.
func (c *Controller) Playing() bool { return c.playing && !c.stalled }

// Stalled reports whether playback is paused on base-layer underflow.
func (c *Controller) Stalled() bool { return c.stalled }

// Buffers returns a copy of the per-layer buffer estimates in bytes.
func (c *Controller) Buffers() []float64 {
	out := make([]float64, c.na)
	copy(out, c.bufs)
	return out
}

// Shares returns a copy of the current per-layer bandwidth shares in
// bytes/s (valid after a Tick).
func (c *Controller) Shares() []float64 {
	out := make([]float64, c.na)
	copy(out, c.shares)
	return out
}

// TotalBuf returns the total buffering across active layers, bytes.
func (c *Controller) TotalBuf() float64 {
	t := 0.0
	for _, b := range c.bufs {
		t += b
	}
	return t
}

// ConsumptionRate returns the aggregate consumption rate na·C while
// playing (zero before playback or during a stall).
func (c *Controller) ConsumptionRate() float64 {
	if !c.Playing() {
		return 0
	}
	return float64(c.na) * c.P.C
}

// OnDelivered credits bytes of layer data confirmed delivered to the
// receiver. Deliveries for layers that have since been dropped are
// ignored (their data plays out but no longer provides buffering, per
// the paper's efficiency argument).
func (c *Controller) OnDelivered(now float64, layer int, bytes int) {
	if layer < 0 || layer >= c.na || bytes <= 0 {
		return
	}
	c.bufs[layer] += float64(bytes)
}

// OnBackoff informs the controller of a congestion backoff. rate is the
// new (post-decrease) transmission rate and slope the current additive
// increase slope estimate. The §2.2 drop rule runs immediately.
func (c *Controller) OnBackoff(now, rate, slope float64) {
	c.rate, c.slope = rate, c.safeSlope(slope)
	c.event(Event{Time: now, Kind: EvBackoff, Rate: rate})
	if !c.playing {
		return // nothing is being consumed; no recovery needed
	}
	drops := DropCount(rate, c.bufs[:c.na], c.P.C, c.slope)
	for i := 0; i < drops; i++ {
		c.dropTop(now, false)
	}
	c.allocDirty = true
}

// Tick advances the playout clock to now under transmission rate R and
// slope S, runs the coarse-grain add/drop checks, and recomputes the
// fine-grain per-layer bandwidth shares.
func (c *Controller) Tick(now, R, S float64) {
	if now < c.lastTick {
		panic(fmt.Sprintf("core: Tick time went backwards: %v < %v", now, c.lastTick))
	}
	c.rate, c.slope = R, c.safeSlope(S)
	dt := now - c.lastTick
	c.lastTick = now
	c.tickDt = dt

	// Playout consumption.
	if c.playing && !c.stalled && dt > 0 {
		c.PlayedSec += dt
		c.LayerSeconds += dt * float64(c.na)
		for i := 0; i < c.na; i++ {
			c.bufs[i] -= c.P.C * dt
			if c.bufs[i] < 0 {
				// In-flight jitter; systematic shortfalls surface as
				// drain-plan infeasibility below.
				c.bufs[i] = 0
			}
		}
	}

	// Startup and stall-recovery thresholds on the base-layer buffer.
	startup := c.P.StartupSec * c.P.C
	if !c.playing {
		if c.bufs[0] >= startup {
			c.playing = true
			c.lastChange = now
			c.event(Event{Time: now, Kind: EvPlayStart, Rate: R})
		}
	} else if c.stalled {
		if c.bufs[0] >= startup/2 {
			c.stalled = false
			c.StallSec += now - c.stallBegin
			c.event(Event{Time: now, Kind: EvStallEnd, Rate: R})
		}
	}

	if c.allocStale(now) {
		c.maybeAdd(now)
		c.computeShares(now)
		c.lastAlloc = now
		c.lastAllocRate = c.rate
		c.allocDirty = false
	}
}

// allocStale reports whether the cached allocation must be refreshed.
func (c *Controller) allocStale(now float64) bool {
	if c.allocDirty || c.lastAllocRate <= 0 {
		return true
	}
	if now-c.lastAlloc >= c.P.PlanHorizon/5 {
		return true
	}
	swing := math.Abs(c.rate-c.lastAllocRate) / c.lastAllocRate
	return swing > 0.05
}

// PickLayer chooses the layer for the next outgoing packet of pktSize
// bytes. It ticks the controller first, so calling it on every packet is
// the only integration needed on the send path.
//
// Packets are distributed by a deficit counter: each send injects
// exactly one packet's worth of credit, split across layers in
// proportion to their bandwidth shares, and the richest layer wins the
// packet. Crediting by packet rather than wall time keeps the
// distribution exact even when the caller's pacing jitters (real-clock
// sleeps always overshoot the inter-packet gap).
func (c *Controller) PickLayer(now, R, S float64, pktSize int) int {
	c.Tick(now, R, S)
	sum := 0.0
	for i := 0; i < c.na; i++ {
		sum += c.shares[i]
	}
	if sum > 0 {
		for i := 0; i < c.na; i++ {
			c.credits[i] += float64(pktSize) * c.shares[i] / sum
		}
	}
	best, bestCredit := 0, math.Inf(-1)
	for i := 0; i < c.na; i++ {
		if c.credits[i] > bestCredit {
			best, bestCredit = i, c.credits[i]
		}
	}
	c.credits[best] -= float64(pktSize)
	return best
}

// maybeAdd applies §2.1's adding conditions with §3.1's Kmax smoothing.
func (c *Controller) maybeAdd(now float64) {
	if c.na >= c.P.MaxLayers || c.stalled {
		return
	}
	// A new layer's playout is anchored to the base layer's (§2.1's
	// inter-layer timing dependency): no adds before playback starts,
	// and no adds within AddSpacing of the previous quality change.
	if !c.playing || now-c.lastChange < c.P.AddSpacing {
		return
	}
	// Condition 1: the instantaneous rate sustains all layers plus one.
	if c.rate < float64(c.na+1)*c.P.C {
		return
	}
	// Condition 2 (smoothed): every per-layer target up to Kmax backoffs
	// in both scenarios is met, and the buffering on hand would let the
	// *enlarged* layer set survive Kmax backoffs — adding must not
	// endanger existing layers (§2.1) even under Kmax-deep loss (§3.1).
	if c.P.Alloc == AllocOptimal {
		if _, needMore := FillTarget(c.rate, c.bufs[:c.na], c.P.C, c.slope, c.P.Kmax); needMore {
			return
		}
	}
	if !AddCondition(c.rate, c.na, c.TotalBuf(), c.P.C, c.slope, c.P.Kmax) {
		return
	}
	c.na++
	c.bufs = append(c.bufs, 0)
	c.credits = append(c.credits, 0)
	c.shares = append(c.shares, 0)
	c.lastChange = now
	c.event(Event{Time: now, Kind: EvAddLayer, Layer: c.na - 1, Rate: c.rate})
}

// dropTop removes the highest layer, recording the efficiency metrics.
func (c *Controller) dropTop(now float64, critical bool) {
	if c.na <= 1 {
		return
	}
	total := c.TotalBuf()
	top := c.na - 1
	bufDrop := c.bufs[top]
	// A drop is due to poor distribution when the total buffering on hand
	// would have covered the recovery triangle, yet a layer had to go.
	required := TriangleArea(float64(c.na)*c.P.C-c.rate, c.slope)
	poor := total >= required && required > 0
	c.event(Event{
		Time: now, Kind: EvDropLayer, Layer: top, Rate: c.rate,
		BufDrop: bufDrop, BufTotal: total, PoorDist: poor, Critical: critical,
	})
	c.na--
	c.bufs = c.bufs[:c.na]
	c.credits = c.credits[:c.na]
	c.shares = c.shares[:c.na]
	c.lastChange = now
}

// computeShares performs the fine-grain inter-layer bandwidth allocation
// for the instant: filling surplus placement when R exceeds the
// consumption rate, reverse-path draining when it does not.
func (c *Controller) computeShares(now float64) {
	R := c.rate
	cons := 0.0
	if c.playing && !c.stalled {
		cons = c.P.C
	}
	total := cons * float64(c.na)

	if R >= total {
		// Filling phase: every consuming layer gets C; the surplus goes
		// to the layer the SendPacket scan selects. Past Kmax the scan is
		// extended (ExtraStates) so buffers keep absorbing bandwidth that
		// cannot yet become a new layer.
		for i := 0; i < c.na; i++ {
			c.shares[i] = cons
		}
		surplus := R - total
		if surplus > 0 {
			c.shares[c.fillLayer()] += surplus
		}
		return
	}

	// Draining phase.
	h := c.P.PlanHorizon
	need := (total - R) * h
	ladder := c.drainLadder(R)
	drains, unmet := DrainPlanInto(c.drainsBuf, ladder, c.bufs[:c.na], need, cons*h)
	c.drainsBuf = drains
	if unmet > 1e-9 {
		// Shortfall this horizon: count it toward the arrears (scaled to
		// the time actually elapsed) and only treat it as a critical
		// situation (§2.2) once it persists — a single infeasible plan
		// is usually a transient dip, and the ACK-based buffer estimate
		// ignores in-flight data anyway.
		c.arrears += unmet * (c.tickDt / h)
		tol := 0.1 * c.P.C
		for c.arrears > tol && unmet > 1e-9 && c.na > 1 {
			c.dropTop(now, true)
			c.arrears = 0
			total = cons * float64(c.na)
			if R >= total {
				c.computeShares(now)
				return
			}
			need = (total - R) * h
			ladder = c.drainLadder(R)
			drains, unmet = DrainPlanInto(c.drainsBuf, ladder, c.bufs[:c.na], need, cons*h)
			c.drainsBuf = drains
		}
	} else {
		c.arrears = 0
	}
	if unmet > 1e-9 && c.arrears > 0.1*c.P.C && c.na == 1 && c.playing && !c.stalled {
		// Base layer underflow: pause playback.
		c.stalled = true
		c.stallBegin = now
		c.event(Event{Time: now, Kind: EvStallStart, Rate: R})
		c.shares[0] = R
		return
	}
	for i := 0; i < c.na; i++ {
		c.shares[i] = cons - drains[i]/h
		if c.shares[i] < 0 {
			c.shares[i] = 0
		}
	}
}

// fillLayer picks the layer the filling surplus should extend, under
// the configured allocation policy.
func (c *Controller) fillLayer() int {
	switch c.P.Alloc {
	case AllocEqual:
		// Strawman: equalize per-layer buffering.
		best, min := 0, math.Inf(1)
		for i := 0; i < c.na; i++ {
			if c.bufs[i] < min {
				best, min = i, c.bufs[i]
			}
		}
		return best
	case AllocBase:
		// Strawman: everything to the base layer.
		return 0
	default:
		layer, ok := FillTarget(c.rate, c.bufs[:c.na], c.P.C, c.slope, c.P.Kmax)
		if ok {
			return layer
		}
		// Kmax targets met. Before chasing the deeper states (whose
		// bands are bottom-heavy), keep a small protective reserve in
		// every layer — draining is rate-limited to C per layer, so an
		// empty top-layer buffer cannot be compensated by the base
		// layer's riches.
		reserve := c.P.ProtectSec * c.P.C
		for i := 0; i < c.na; i++ {
			if c.bufs[i] < reserve {
				return i
			}
		}
		layer, ok = FillTarget(c.rate, c.bufs[:c.na], c.P.C, c.slope, c.P.Kmax+c.P.ExtraStates)
		if !ok {
			layer = 0
		}
		return layer
	}
}

// drainLadder returns the reverse-path floors for draining: the optimal
// state ladder, or no floors at all for the strawman policies (they
// have no notion of a maximally efficient path).
func (c *Controller) drainLadder(R float64) []State {
	if c.P.Alloc != AllocOptimal {
		return nil
	}
	c.ladder = AppendStateLadder(c.ladder, R, c.na, 0, c.P.Kmax, c.P.C, c.slope)
	return c.ladder
}

func (c *Controller) safeSlope(s float64) float64 {
	if s <= 0 || math.IsNaN(s) || math.IsInf(s, 0) {
		// A degenerate slope estimate would blow up the triangle areas;
		// fall back to something conservative: one C per second².
		return c.P.C
	}
	return s
}

func (c *Controller) event(e Event) {
	if c.P.MaxEvents > 0 && len(c.Events) >= c.P.MaxEvents {
		// Keep the most recent half; amortized O(1) per event and the
		// slice capacity never exceeds the cap.
		n := copy(c.Events, c.Events[len(c.Events)-c.P.MaxEvents/2:])
		c.Events = c.Events[:n]
	}
	c.Events = append(c.Events, e)
	c.record(e)
}
