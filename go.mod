module qav

go 1.22
